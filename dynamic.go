package wanify

// Dynamic multi-job deployments: the Framework re-entrancy layer the
// serving control plane (internal/serve) runs on. Where EnableJobSet
// deploys a FIXED roster of N jobs and runs them to completion, a
// dynamic deployment opens a fixed number of job SLOTS over one global
// plan and lets jobs attach and detach while everything runs:
//
//   - AdmitJob claims a free slot, re-partitions the current global
//     plan across the now-occupied slots, atomically narrows every
//     running job's windows to its new share (agent.SwapWindow — the
//     same primitive the re-gauging controller swaps with), and deploys
//     fresh agents for the newcomer.
//   - ReleaseJob stops a finished job's agents, frees its slot, and
//     widens the survivors' windows back out in the same way.
//   - The shared runtime controller keeps arbitrating throughout:
//     admission and release reswizzle its roster (Controller.SetGroups)
//     at the instant they happen, and a re-gauge snapshot in flight
//     simply applies against the post-churn roster.
//
// Slot identity is stable: a job keeps its slot index for its whole
// life, so connection policies and the controller's per-group swap
// state never shift under a running job. Free slots carry share weight
// zero — optimize.PartitionPlan hands them zero-connection windows and
// nobody deploys agents for them.
//
// Share policy is ShareFair or SharePriority (per-job weight given at
// AdmitJob). ShareRemaining is a roster-wide progress signal that the
// fixed-roster path polls from its JobSet; a churning roster has no
// single set to poll, so dynamic deployments reject it.

import (
	"fmt"

	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
)

// DynamicJobSetOptions configures a dynamic multi-job deployment.
type DynamicJobSetOptions struct {
	// Slots is the maximum number of concurrently admitted jobs.
	Slots int
	// Share selects how occupied slots split the global plan:
	// ShareFair (default) or SharePriority (weights from AdmitJob).
	Share optimize.ShareMode
	// Optimize carries the §3.3 heterogeneity inputs of the shared
	// global optimization.
	Optimize OptimizeOptions
}

// dynamicState tracks slot occupancy of a dynamic deployment.
type dynamicState struct {
	opts DynamicJobSetOptions
	used []bool
	prio []float64
}

// EnableDynamicJobSet gauges the cluster once (snapshot → predict →
// optimize) and opens a dynamic multi-job deployment with all slots
// free. When Config.Runtime is enabled the shared arbitration
// controller starts immediately — over an empty roster, which it
// tolerates: epochs aggregate nothing until the first AdmitJob attaches
// agents. Returns the predicted matrix and the measurement bill.
func (f *Framework) EnableDynamicJobSet(o DynamicJobSetOptions) (bwmatrix.Matrix, measure.Report, error) {
	if o.Slots < 1 {
		return nil, measure.Report{}, fmt.Errorf("wanify: dynamic job set needs at least one slot, got %d", o.Slots)
	}
	if o.Share == optimize.ShareRemaining {
		return nil, measure.Report{}, fmt.Errorf("wanify: dynamic job sets support fair or priority sharing only")
	}
	f.StopAgents()
	pred, rep := f.DetermineRuntimeBW()
	plan := f.Optimize(pred, o.Optimize)
	f.deployed = pred.Clone()
	f.dyn = &dynamicState{
		opts: o,
		used: make([]bool, o.Slots),
		prio: make([]float64, o.Slots),
	}
	f.jobAgents = make([][]*agent.Agent, o.Slots)
	if f.cfg.Agent.Throttle {
		f.applyGlobalThrottles(plan)
	}
	if f.cfg.Runtime.Enabled {
		f.startDynamicController()
	}
	return pred, rep, nil
}

// DynamicSlots reports (occupied, total) slots of a dynamic deployment,
// (0, 0) when none is enabled.
func (f *Framework) DynamicSlots() (used, total int) {
	if f.dyn == nil {
		return 0, 0
	}
	for _, u := range f.dyn.used {
		if u {
			used++
		}
	}
	return used, len(f.dyn.used)
}

// dynamicWeights evaluates the per-slot share weights: zero for free
// slots, the admit-time priority (fair: 1) for occupied ones.
func (f *Framework) dynamicWeights() []float64 {
	w := make([]float64, len(f.dyn.used))
	for i, used := range f.dyn.used {
		if !used {
			continue
		}
		if f.dyn.opts.Share == optimize.SharePriority && f.dyn.prio[i] > 0 {
			w[i] = f.dyn.prio[i]
		} else {
			w[i] = 1
		}
	}
	return w
}

// partitionDynamic splits a global plan across the slots per the
// deployment's current occupancy.
func (f *Framework) partitionDynamic(plan optimize.Plan) []optimize.Plan {
	return optimize.PartitionPlan(plan, f.dynamicWeights())
}

// startDynamicController launches the shared arbitration controller
// over the (initially empty) slot roster.
func (f *Framework) startDynamicController() {
	deps := f.controllerDeps(f.dyn.opts.Optimize)
	deps.Groups = f.jobAgents
	deps.Partition = f.partitionDynamic
	if f.cfg.Agent.Throttle {
		deps.OnPlanSwap = func(_ bwmatrix.Matrix, plan optimize.Plan) {
			f.applyGlobalThrottles(plan)
		}
	}
	f.controller = rgauge.Start(deps, f.cfg.Runtime, f.deployed, f.plan)
}

// currentBelief returns the prediction/plan pair the deployment is
// currently running: the controller's when one arbitrates (it owns the
// replan history), the enable-time pair otherwise.
func (f *Framework) currentBelief() (bwmatrix.Matrix, optimize.Plan) {
	if f.controller != nil {
		return f.controller.CurrentPred(), f.controller.CurrentPlan()
	}
	return f.deployed, f.plan
}

// AdmitJob claims a free slot for a new job with the given priority
// weight (ignored under ShareFair), re-partitions the current plan
// across the occupied slots — every running job's windows narrow to
// their new share within this call — and deploys the newcomer's agents.
// It returns the slot index and the connection policy the job's
// transfers must use. Errors when no slot is free (the caller queues).
func (f *Framework) AdmitJob(priority float64) (int, spark.ConnPolicy, error) {
	if f.dyn == nil {
		return 0, nil, fmt.Errorf("wanify: AdmitJob without EnableDynamicJobSet")
	}
	slot := -1
	for i, used := range f.dyn.used {
		if !used {
			slot = i
			break
		}
	}
	if slot < 0 {
		return 0, nil, fmt.Errorf("wanify: all %d job slots occupied", len(f.dyn.used))
	}
	f.dyn.used[slot] = true
	f.dyn.prio[slot] = priority
	f.rebalanceDynamic(slot)
	return slot, spark.NewAgentConn(f.jobAgents[slot]), nil
}

// ReleaseJob frees a slot — the job finished or was canceled — stopping
// its agents and widening the surviving jobs' windows back out to their
// new shares.
func (f *Framework) ReleaseJob(slot int) error {
	if f.dyn == nil {
		return fmt.Errorf("wanify: ReleaseJob without EnableDynamicJobSet")
	}
	if slot < 0 || slot >= len(f.dyn.used) || !f.dyn.used[slot] {
		return fmt.Errorf("wanify: release of unoccupied slot %d", slot)
	}
	for _, a := range f.jobAgents[slot] {
		a.Stop()
	}
	f.jobAgents[slot] = nil
	f.dyn.used[slot] = false
	f.dyn.prio[slot] = 0
	f.rebalanceDynamic(-1)
	return nil
}

// rebalanceDynamic re-partitions the current plan across occupied slots
// after an occupancy change, swapping new windows into every running
// job and — when newSlot is a fresh admission — deploying its agents.
func (f *Framework) rebalanceDynamic(newSlot int) {
	pred, plan := f.currentBelief()
	parts := f.partitionDynamic(plan)
	sim := f.cfg.Cluster
	agentCfg := f.cfg.Agent
	agentCfg.Throttle = false
	for g := range parts {
		if !f.dyn.used[g] {
			continue
		}
		rows := agent.ChunkPlan(sim, pred, parts[g])
		if g == newSlot {
			var group []*agent.Agent
			for dc := 0; dc < sim.NumDCs(); dc++ {
				for _, vm := range sim.VMsOfDC(dc) {
					a := agent.New(sim, vm, agentCfg)
					a.ApplyPlan(rows[vm])
					a.Start()
					group = append(group, a)
				}
			}
			f.jobAgents[g] = group
		} else {
			for _, a := range f.jobAgents[g] {
				a.SwapWindow(rows[a.VM()])
			}
		}
	}
	f.syncControllerGroups()
}

// syncControllerGroups reswizzles the controller's roster to the
// current slot occupancy.
func (f *Framework) syncControllerGroups() {
	if f.controller == nil {
		return
	}
	var union []*agent.Agent
	for _, group := range f.jobAgents {
		union = append(union, group...)
	}
	f.controller.SetGroups(union, f.jobAgents)
}

// SetModel swaps the framework's prediction model — the serving layer's
// model-cache refresh hook. The new model takes effect at the next
// prediction (a controller re-gauge or DetermineRuntimeBW); windows
// already deployed are untouched until then. Nil is ignored.
func (f *Framework) SetModel(m *predict.Model) {
	if m != nil {
		f.model = m
	}
}
