package wanify_test

import (
	"testing"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// testModel caches one quick offline model for the whole test package:
// the offline module is cluster-independent, so tests reuse it the way
// a real deployment would.
var testModel *predict.Model

func getModel(t *testing.T) *predict.Model {
	t.Helper()
	if testModel == nil {
		m, _, err := wanify.QuickModel(42)
		if err != nil {
			t.Fatalf("QuickModel: %v", err)
		}
		testModel = m
	}
	return testModel
}

// TestOfflineModuleAccuracy trains the offline module and checks the
// §5.1 claim shape: high accuracy at the 100 Mbps significance
// threshold (the paper reports 98.51% on its full dataset).
func TestOfflineModuleAccuracy(t *testing.T) {
	model, rep, err := wanify.QuickModel(7)
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	if rep.Rows < 200 {
		t.Errorf("collected only %d rows", rep.Rows)
	}
	if rep.TrainAccuracy < 0.90 {
		t.Errorf("train accuracy %.3f, want >= 0.90", rep.TrainAccuracy)
	}
	if rep.TestAccuracy < 0.80 {
		t.Errorf("test accuracy %.3f, want >= 0.80", rep.TestAccuracy)
	}
	t.Logf("rows=%d train=%.2f%% test=%.2f%% rmse=%.1f r2=%.3f importance=%v",
		rep.Rows, rep.TrainAccuracy*100, rep.TestAccuracy*100, rep.RMSE, rep.R2, rep.FeatureImportance)
}

// TestEndToEndTeraSort runs TeraSort under vanilla locality scheduling
// with a single connection, then under full WANify (predicted BWs +
// heterogeneous agent-managed connections + throttling), and checks the
// headline direction: WANify reduces JCT and raises the minimum
// observed bandwidth.
func TestEndToEndTeraSort(t *testing.T) {
	model := getModel(t)
	rates := cost.DefaultRates()
	input := workloads.UniformInput(8, 20e9) // scaled-down TeraSort

	runVanilla := func() spark.RunResult {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, 99))
		eng := spark.NewEngine(sim, rates)
		res, err := eng.RunJob(workloads.TeraSort(input), gda.Locality{}, spark.SingleConn{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runWANify := func() spark.RunResult {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, 99))
		fw, err := wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: 1,
			Agent: agent.Config{Throttle: true},
		}, model)
		if err != nil {
			t.Fatal(err)
		}
		_, policy, _ := fw.Enable(wanify.OptimizeOptions{})
		defer fw.StopAgents()
		eng := spark.NewEngine(sim, rates)
		res, err := eng.RunJob(workloads.TeraSort(input), gda.Locality{}, policy)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	vanilla := runVanilla()
	wan := runWANify()
	t.Logf("vanilla: JCT=%.0fs cost=$%.2f minBW=%.0f Mbps", vanilla.JCTSeconds, vanilla.Cost.Total(), vanilla.MinShuffleMbps)
	t.Logf("wanify:  JCT=%.0fs cost=$%.2f minBW=%.0f Mbps", wan.JCTSeconds, wan.Cost.Total(), wan.MinShuffleMbps)

	if wan.JCTSeconds >= vanilla.JCTSeconds {
		t.Errorf("WANify JCT %.0fs did not beat vanilla %.0fs", wan.JCTSeconds, vanilla.JCTSeconds)
	}
	if wan.MinShuffleMbps <= vanilla.MinShuffleMbps {
		t.Errorf("WANify min BW %.0f did not beat vanilla %.0f", wan.MinShuffleMbps, vanilla.MinShuffleMbps)
	}
}
