// Package wanify is a from-scratch reproduction of WANify (Mohapatra &
// Oh, IISWC 2025): a framework that gauges achievable *runtime* WAN
// bandwidth for geo-distributed data analytics via a Random-Forest
// prediction model over cheap 1-second snapshots, and balances WAN
// usage by assigning an optimal *heterogeneous* number of parallel
// connections per DC pair — trading bandwidth on strong links for the
// weak links that gate job completion time.
//
// The package wires together the paper's architecture (Fig. 3):
//
//   - Offline module: the Bandwidth Analyzer collects labeled snapshots
//     (TrainOffline → internal dataset generation) and trains the WAN
//     Prediction Model (Random Forest, 100 trees).
//   - Online module: Runtime Bandwidth Determination predicts the
//     current runtime BW matrix from a snapshot
//     (Framework.DetermineRuntimeBW); the Global Optimizer derives
//     min/max connection windows and achievable-BW targets
//     (Framework.Optimize, Algorithm 1 + Eq. 2–3).
//   - Local Agents: one per VM, AIMD-tuning connection counts within
//     the window, monitoring achieved rates, and throttling BW-rich
//     links (Framework.DeployAgents).
//
// Everything runs against a deterministic WAN simulator standing in for
// the paper's 8-region AWS testbed; see DESIGN.md for the substitution
// argument and EXPERIMENTS.md for paper-vs-measured results.
package wanify

import (
	"fmt"

	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// Config configures a Framework instance for one cluster.
type Config struct {
	// Cluster is the WAN substrate the deployment runs on (a netsim
	// simulation, a tracesim replay, or any future backend).
	Cluster substrate.Cluster
	// Rates prices measurement and query activity.
	Rates cost.Rates
	// Seed drives snapshot noise and any tie-breaking.
	Seed uint64
	// MaxConnsPerPair is the optimizer's M (default 8).
	MaxConnsPerPair int
	// RelationD is Algorithm 1's minimum significant BW difference
	// (default 30 Mbps, the paper's worked example).
	RelationD float64
	// Agent configures the local agents (epoch, thresholds, throttle).
	Agent agent.Config
	// Runtime configures the mid-job re-gauging controller
	// (internal/runtime). Default off: the plan computed at Enable time
	// stays fixed for the whole job, the base §4.1 behaviour.
	Runtime rgauge.Config
}

// Framework is a WANify deployment bound to one cluster.
type Framework struct {
	cfg   Config
	model *predict.Model
	rng   *simrand.Source

	predicted  bwmatrix.Matrix
	plan       optimize.Plan
	deployed   bwmatrix.Matrix // the matrix the deployed agents' plan was built from
	agents     []*agent.Agent
	controller *rgauge.Controller
}

// New builds a Framework around a trained prediction model.
func New(cfg Config, model *predict.Model) (*Framework, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("wanify: config needs a cluster backend")
	}
	if model == nil {
		return nil, fmt.Errorf("wanify: nil prediction model")
	}
	if cfg.MaxConnsPerPair == 0 {
		cfg.MaxConnsPerPair = optimize.DefaultM
	}
	if cfg.RelationD == 0 {
		cfg.RelationD = optimize.DefaultD
	}
	return &Framework{
		cfg:   cfg,
		model: model,
		rng:   simrand.Derive(cfg.Seed, "wanify"),
	}, nil
}

// Model returns the framework's prediction model.
func (f *Framework) Model() *predict.Model { return f.model }

// DetermineRuntimeBW takes a 1-second snapshot of the cluster and
// predicts the stable runtime bandwidth matrix — the §4.1.2 Runtime
// Bandwidth Determination sub-module. The returned matrix is shaped
// exactly like the static matrices existing GDA systems consume, so it
// can be fed to them unmodified (the Table 4 usage). The measurement
// report prices the snapshot.
func (f *Framework) DetermineRuntimeBW() (bwmatrix.Matrix, measure.Report) {
	features, rep := dataset.SnapshotFeatures(f.cfg.Cluster, f.rng.Derive("snapshot"))
	f.predicted = f.model.PredictMatrix(features)
	return f.predicted.Clone(), rep
}

// Predicted returns the most recent runtime-BW prediction (nil before
// DetermineRuntimeBW).
func (f *Framework) Predicted() bwmatrix.Matrix {
	if f.predicted == nil {
		return nil
	}
	return f.predicted.Clone()
}

// OptimizeOptions carries the heterogeneity inputs of §3.3.
type OptimizeOptions struct {
	// SkewWeights is ws: per-DC input-data weights (nil = uniform).
	SkewWeights []float64
	// RVec is the per-pair refactoring matrix for heterogeneous
	// providers (nil = all ones).
	RVec bwmatrix.Matrix
}

// Optimize runs global optimization (Algorithm 1 + Eq. 2–3) on a
// predicted runtime BW matrix, returning the connection/BW windows.
func (f *Framework) Optimize(pred bwmatrix.Matrix, opts OptimizeOptions) optimize.Plan {
	f.plan = optimize.GlobalOptimize(pred, optimize.Options{
		M:           f.cfg.MaxConnsPerPair,
		D:           f.cfg.RelationD,
		SkewWeights: opts.SkewWeights,
		RVec:        opts.RVec,
	})
	return f.plan
}

// Plan returns the most recent global-optimization plan.
func (f *Framework) Plan() optimize.Plan { return f.plan }

// DeployAgents starts one local agent per VM, loaded with the plan
// chunked per VM (association, §3.3.3). Any previously deployed agents
// are stopped first.
func (f *Framework) DeployAgents(pred bwmatrix.Matrix, plan optimize.Plan) []*agent.Agent {
	f.StopAgents()
	f.deployed = pred.Clone()
	sim := f.cfg.Cluster
	rows := agent.ChunkPlan(sim, pred, plan)
	var agents []*agent.Agent
	for dc := 0; dc < sim.NumDCs(); dc++ {
		for _, vm := range sim.VMsOfDC(dc) {
			a := agent.New(sim, vm, f.cfg.Agent)
			a.ApplyPlan(rows[vm])
			a.Start()
			agents = append(agents, a)
		}
	}
	f.agents = agents
	return agents
}

// Agents returns the currently deployed agents (nil when none).
func (f *Framework) Agents() []*agent.Agent { return f.agents }

// StopAgents stops the re-gauging controller (when one is running) and
// all deployed agents, clearing their throttles.
func (f *Framework) StopAgents() {
	if f.controller != nil {
		f.controller.Stop()
		f.controller = nil
	}
	for _, a := range f.agents {
		a.Stop()
	}
	f.agents = nil
	f.deployed = nil
}

// Controller returns the running re-gauging controller, or nil when
// Config.Runtime is disabled or agents are not deployed.
func (f *Framework) Controller() *rgauge.Controller { return f.controller }

// StartController launches the mid-job re-gauging loop over the
// currently deployed agents, re-planning with the given optimizer
// options whenever drift or staleness triggers (internal/runtime).
// Enable calls this automatically when Config.Runtime.Enabled is set;
// callers driving the deploy steps by hand (including ones whose plan
// was built from a measured rather than predicted matrix) can invoke
// it directly after DeployAgents.
func (f *Framework) StartController(opts OptimizeOptions) *rgauge.Controller {
	if f.deployed == nil {
		panic("wanify: StartController before DeployAgents")
	}
	if f.controller != nil {
		f.controller.Stop()
	}
	f.controller = rgauge.Start(rgauge.Deps{
		Cluster: f.cfg.Cluster,
		Agents:  f.agents,
		SnapshotOpts: func() measure.Options {
			return measure.SnapshotOptions(f.rng.Derive("snapshot"))
		},
		Predict: func(snap bwmatrix.Matrix, stats []substrate.VMStats) bwmatrix.Matrix {
			features := dataset.FeaturesFromSnapshot(f.cfg.Cluster, snap, stats)
			f.predicted = f.model.PredictMatrix(features)
			return f.predicted.Clone()
		},
		Optimize: func(pred bwmatrix.Matrix) optimize.Plan {
			return f.Optimize(pred, opts)
		},
	}, f.cfg.Runtime, f.deployed, f.plan)
	return f.controller
}

// ConnPolicy returns the connection policy a spark engine should use so
// transfers are sized and managed by the deployed agents.
func (f *Framework) ConnPolicy() spark.ConnPolicy {
	return spark.NewAgentConn(f.agents)
}

// Enable is the one-call integration path (§4.1, "any GDA system that
// transfers data among DCs can reap WANify's benefits using the WANify
// Interface"): snapshot → predict → optimize → deploy agents — plus,
// when Config.Runtime is enabled, the mid-job re-gauging loop that
// revisits that plan as WAN conditions shift. It returns the predicted
// matrix (for the GDA system's placement decisions) and the connection
// policy (for its shuffle transfers).
func (f *Framework) Enable(opts OptimizeOptions) (bwmatrix.Matrix, spark.ConnPolicy, measure.Report) {
	pred, rep := f.DetermineRuntimeBW()
	plan := f.Optimize(pred, opts)
	f.DeployAgents(pred, plan)
	if f.cfg.Runtime.Enabled {
		f.StartController(opts)
	}
	return pred, f.ConnPolicy(), rep
}
