// Package wanify is a from-scratch reproduction of WANify (Mohapatra &
// Oh, IISWC 2025): a framework that gauges achievable *runtime* WAN
// bandwidth for geo-distributed data analytics via a Random-Forest
// prediction model over cheap 1-second snapshots, and balances WAN
// usage by assigning an optimal *heterogeneous* number of parallel
// connections per DC pair — trading bandwidth on strong links for the
// weak links that gate job completion time.
//
// The package wires together the paper's architecture (Fig. 3):
//
//   - Offline module: the Bandwidth Analyzer collects labeled snapshots
//     (TrainOffline → internal dataset generation) and trains the WAN
//     Prediction Model (Random Forest, 100 trees).
//   - Online module: Runtime Bandwidth Determination predicts the
//     current runtime BW matrix from a snapshot
//     (Framework.DetermineRuntimeBW); the Global Optimizer derives
//     min/max connection windows and achievable-BW targets
//     (Framework.Optimize, Algorithm 1 + Eq. 2–3).
//   - Local Agents: one per VM, AIMD-tuning connection counts within
//     the window, monitoring achieved rates, and throttling BW-rich
//     links (Framework.DeployAgents).
//
// Everything runs against a deterministic WAN simulator standing in for
// the paper's 8-region AWS testbed; see DESIGN.md for the substitution
// argument and EXPERIMENTS.md for paper-vs-measured results.
package wanify

import (
	"fmt"

	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// Config configures a Framework instance for one cluster.
type Config struct {
	// Cluster is the WAN substrate the deployment runs on (a netsim
	// simulation, a tracesim replay, or any future backend).
	Cluster substrate.Cluster
	// Rates prices measurement and query activity.
	Rates cost.Rates
	// Energy parameterizes the energy/carbon account behind the
	// carbon-aware placement scorer and the engine's per-job
	// EnergyBreakdown (zero value: DefaultEnergyRates).
	Energy cost.EnergyRates
	// Seed drives snapshot noise and any tie-breaking.
	Seed uint64
	// MaxConnsPerPair is the optimizer's M (default 8).
	MaxConnsPerPair int
	// RelationD is Algorithm 1's minimum significant BW difference
	// (default 30 Mbps, the paper's worked example).
	RelationD float64
	// Agent configures the local agents (epoch, thresholds, throttle).
	Agent agent.Config
	// Runtime configures the mid-job re-gauging controller
	// (internal/runtime). Default off: the plan computed at Enable time
	// stays fixed for the whole job, the base §4.1 behaviour.
	Runtime rgauge.Config
}

// Framework is a WANify deployment bound to one cluster.
type Framework struct {
	cfg   Config
	model *predict.Model
	rng   *simrand.Source

	predicted  bwmatrix.Matrix
	plan       optimize.Plan
	deployed   bwmatrix.Matrix // the matrix the deployed agents' plan was built from
	agents     []*agent.Agent
	controller *rgauge.Controller

	// optScratch backs the optimizer's interior temporaries across
	// replans (the plan itself is freshly allocated per Optimize call,
	// since plans outlive the next replan in agents and the controller).
	optScratch optimize.Scratch

	// Multi-job deployment state (EnableJobSet).
	jobAgents  [][]*agent.Agent
	jobSetOpts JobSetOptions
	throttled  bool // cluster-level tc limits installed by the job set

	// Dynamic slot state (EnableDynamicJobSet; see dynamic.go).
	dyn *dynamicState
}

// New builds a Framework around a trained prediction model.
func New(cfg Config, model *predict.Model) (*Framework, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("wanify: config needs a cluster backend")
	}
	if model == nil {
		return nil, fmt.Errorf("wanify: nil prediction model")
	}
	if cfg.MaxConnsPerPair == 0 {
		cfg.MaxConnsPerPair = optimize.DefaultM
	}
	if cfg.RelationD == 0 {
		cfg.RelationD = optimize.DefaultD
	}
	if cfg.Energy.IsZero() {
		cfg.Energy = cost.DefaultEnergyRates()
	}
	return &Framework{
		cfg:   cfg,
		model: model,
		rng:   simrand.Derive(cfg.Seed, "wanify"),
	}, nil
}

// Model returns the framework's prediction model.
func (f *Framework) Model() *predict.Model { return f.model }

// EnergyRates returns the deployment's energy/carbon parameters
// (Config.Energy, or the defaults when unset) — what schedulers and
// engines built next to this framework should price carbon with.
func (f *Framework) EnergyRates() cost.EnergyRates { return f.cfg.Energy }

// DetermineRuntimeBW takes a 1-second snapshot of the cluster and
// predicts the stable runtime bandwidth matrix — the §4.1.2 Runtime
// Bandwidth Determination sub-module. The returned matrix is shaped
// exactly like the static matrices existing GDA systems consume, so it
// can be fed to them unmodified (the Table 4 usage). The measurement
// report prices the snapshot.
func (f *Framework) DetermineRuntimeBW() (bwmatrix.Matrix, measure.Report) {
	features, rep := dataset.SnapshotFeatures(f.cfg.Cluster, f.rng.Derive("snapshot"))
	f.predicted = f.model.PredictMatrixInto(f.predicted, features)
	return f.predicted.Clone(), rep
}

// Predicted returns the most recent runtime-BW prediction (nil before
// DetermineRuntimeBW).
func (f *Framework) Predicted() bwmatrix.Matrix {
	if f.predicted == nil {
		return nil
	}
	return f.predicted.Clone()
}

// OptimizeOptions carries the heterogeneity inputs of §3.3.
type OptimizeOptions struct {
	// SkewWeights is ws: per-DC input-data weights (nil = uniform).
	SkewWeights []float64
	// RVec is the per-pair refactoring matrix for heterogeneous
	// providers (nil = all ones).
	RVec bwmatrix.Matrix
}

// Optimize runs global optimization (Algorithm 1 + Eq. 2–3) on a
// predicted runtime BW matrix, returning the connection/BW windows.
func (f *Framework) Optimize(pred bwmatrix.Matrix, opts OptimizeOptions) optimize.Plan {
	var plan optimize.Plan
	optimize.GlobalOptimizeInto(&plan, pred, optimize.Options{
		M:           f.cfg.MaxConnsPerPair,
		D:           f.cfg.RelationD,
		SkewWeights: opts.SkewWeights,
		RVec:        opts.RVec,
	}, &f.optScratch)
	f.plan = plan
	return f.plan
}

// Plan returns the most recent global-optimization plan.
func (f *Framework) Plan() optimize.Plan { return f.plan }

// DeployAgents starts one local agent per VM, loaded with the plan
// chunked per VM (association, §3.3.3). Any previously deployed agents
// are stopped first.
func (f *Framework) DeployAgents(pred bwmatrix.Matrix, plan optimize.Plan) []*agent.Agent {
	f.StopAgents()
	f.deployed = pred.Clone()
	sim := f.cfg.Cluster
	rows := agent.ChunkPlan(sim, pred, plan)
	var agents []*agent.Agent
	for dc := 0; dc < sim.NumDCs(); dc++ {
		for _, vm := range sim.VMsOfDC(dc) {
			a := agent.New(sim, vm, f.cfg.Agent)
			a.ApplyPlan(rows[vm])
			a.Start()
			agents = append(agents, a)
		}
	}
	f.agents = agents
	return agents
}

// Agents returns the currently deployed agents (nil when none).
func (f *Framework) Agents() []*agent.Agent { return f.agents }

// StopAgents stops the re-gauging controller (when one is running) and
// all deployed agents — single-job and per-job alike — clearing their
// throttles and any cluster-level limits a job-set deployment holds.
func (f *Framework) StopAgents() {
	if f.controller != nil {
		f.controller.Stop()
		f.controller = nil
	}
	for _, a := range f.agents {
		a.Stop()
	}
	for _, group := range f.jobAgents {
		for _, a := range group {
			a.Stop()
		}
	}
	if f.throttled {
		sim := f.cfg.Cluster
		for i := 0; i < sim.NumDCs(); i++ {
			for j := 0; j < sim.NumDCs(); j++ {
				if i != j {
					sim.ClearPairLimit(i, j)
				}
			}
		}
		f.throttled = false
	}
	f.agents = nil
	f.jobAgents = nil
	f.deployed = nil
	f.dyn = nil
}

// Controller returns the running re-gauging controller, or nil when
// Config.Runtime is disabled or agents are not deployed.
func (f *Framework) Controller() *rgauge.Controller { return f.controller }

// StartController launches the mid-job re-gauging loop over the
// currently deployed agents, re-planning with the given optimizer
// options whenever drift or staleness triggers (internal/runtime).
// Enable calls this automatically when Config.Runtime.Enabled is set;
// callers driving the deploy steps by hand (including ones whose plan
// was built from a measured rather than predicted matrix) can invoke
// it directly after DeployAgents.
func (f *Framework) StartController(opts OptimizeOptions) *rgauge.Controller {
	if f.deployed == nil {
		panic("wanify: StartController before DeployAgents")
	}
	if f.controller != nil {
		f.controller.Stop()
	}
	deps := f.controllerDeps(opts)
	deps.Agents = f.agents
	f.controller = rgauge.Start(deps, f.cfg.Runtime, f.deployed, f.plan)
	return f.controller
}

// controllerDeps builds the snapshot/predict/optimize hooks shared by
// the single-job and job-set controller paths.
func (f *Framework) controllerDeps(opts OptimizeOptions) rgauge.Deps {
	return rgauge.Deps{
		Cluster: f.cfg.Cluster,
		SnapshotOpts: func() measure.Options {
			return measure.SnapshotOptions(f.rng.Derive("snapshot"))
		},
		Predict: func(snap bwmatrix.Matrix, stats []substrate.VMStats) bwmatrix.Matrix {
			features := dataset.FeaturesFromSnapshot(f.cfg.Cluster, snap, stats)
			f.predicted = f.model.PredictMatrixInto(f.predicted, features)
			return f.predicted.Clone()
		},
		Optimize: func(pred bwmatrix.Matrix) optimize.Plan {
			return f.Optimize(pred, opts)
		},
	}
}

// ConnPolicy returns the connection policy a spark engine should use so
// transfers are sized and managed by the deployed agents.
func (f *Framework) ConnPolicy() spark.ConnPolicy {
	return spark.NewAgentConn(f.agents)
}

// Enable is the one-call integration path (§4.1, "any GDA system that
// transfers data among DCs can reap WANify's benefits using the WANify
// Interface"): snapshot → predict → optimize → deploy agents — plus,
// when Config.Runtime is enabled, the mid-job re-gauging loop that
// revisits that plan as WAN conditions shift. It returns the predicted
// matrix (for the GDA system's placement decisions) and the connection
// policy (for its shuffle transfers).
func (f *Framework) Enable(opts OptimizeOptions) (bwmatrix.Matrix, spark.ConnPolicy, measure.Report) {
	pred, rep := f.DetermineRuntimeBW()
	plan := f.Optimize(pred, opts)
	f.DeployAgents(pred, plan)
	if f.cfg.Runtime.Enabled {
		f.StartController(opts)
	}
	return pred, f.ConnPolicy(), rep
}

// --- multi-job deployments (DESIGN.md §5) ---

// JobSetOptions configures a multi-tenant WANify deployment: N
// concurrent jobs over one cluster, each receiving its share of the
// global plan's connection windows and achievable-BW targets.
type JobSetOptions struct {
	// Jobs is how many concurrent jobs share the cluster.
	Jobs int
	// Share selects the partitioning policy (fair, priority,
	// bytes-remaining).
	Share optimize.ShareMode
	// Priorities are the per-job weights under SharePriority (len
	// Jobs; nil degrades to fair).
	Priorities []float64
	// Remaining yields the live per-job remaining bytes under
	// ShareRemaining — typically spark.JobSet.RemainingBytes. Nil
	// degrades to fair; the hook is re-polled at every controller
	// replan so shares track job progress.
	Remaining func() []float64
	// Oversubscribe hands every job the WHOLE window instead of a
	// partition — the naive multi-tenant baseline (each job plans as
	// if it owned the cluster) the multijob experiment contrasts
	// against. Off by default.
	Oversubscribe bool
	// Optimize carries the §3.3 heterogeneity inputs of the shared
	// global optimization.
	Optimize OptimizeOptions
}

// jobSetShares evaluates the deployment's current share weights.
func (f *Framework) jobSetShares() []float64 {
	o := f.jobSetOpts
	var rem []float64
	if o.Share == optimize.ShareRemaining && o.Remaining != nil {
		rem = o.Remaining()
	}
	return optimize.ShareWeights(o.Share, o.Jobs, o.Priorities, rem)
}

// partitionForJobSet splits a global plan per the deployment's policy.
func (f *Framework) partitionForJobSet(plan optimize.Plan) []optimize.Plan {
	if f.jobSetOpts.Oversubscribe {
		parts := make([]optimize.Plan, f.jobSetOpts.Jobs)
		for g := range parts {
			parts[g] = plan
		}
		return parts
	}
	return optimize.PartitionPlan(plan, f.jobSetShares())
}

// applyGlobalThrottles installs the §3.2.2 BW-rich-link caps at the
// cluster level: per source DC, links whose achievable bandwidth
// exceeds the mean are limited to it. Job-set deployments throttle
// here — once per cluster from the GLOBAL plan — because per-job
// agents each see only a slice of the achievable bandwidth and would
// fight over the shared tc limits.
func (f *Framework) applyGlobalThrottles(plan optimize.Plan) {
	sim := f.cfg.Cluster
	n := sim.NumDCs()
	thresholds := optimize.ThrottleThresholds(plan.MaxBW)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if plan.MaxBW[i][j] > thresholds[i] {
				sim.SetPairLimit(i, j, thresholds[i])
			} else {
				sim.ClearPairLimit(i, j)
			}
		}
	}
	f.throttled = true
}

// DeployJobSetAgents partitions the plan across the configured jobs
// and starts one agent per (job, VM), each loaded with its job's
// chunk. Any previous deployment (single- or multi-job) is stopped
// first. Per-job agents run with Throttle off; when Config.Agent
// requests throttling the deployment installs cluster-level limits
// from the global plan instead.
func (f *Framework) DeployJobSetAgents(pred bwmatrix.Matrix, plan optimize.Plan, o JobSetOptions) ([][]*agent.Agent, error) {
	if o.Jobs < 1 {
		return nil, fmt.Errorf("wanify: job set needs at least one job, got %d", o.Jobs)
	}
	if o.Priorities != nil && len(o.Priorities) != o.Jobs {
		return nil, fmt.Errorf("wanify: %d priorities for %d jobs", len(o.Priorities), o.Jobs)
	}
	f.StopAgents()
	f.jobSetOpts = o
	f.deployed = pred.Clone()
	sim := f.cfg.Cluster
	agentCfg := f.cfg.Agent
	agentCfg.Throttle = false
	parts := f.partitionForJobSet(plan)
	for g := range parts {
		rows := agent.ChunkPlan(sim, pred, parts[g])
		var group []*agent.Agent
		for dc := 0; dc < sim.NumDCs(); dc++ {
			for _, vm := range sim.VMsOfDC(dc) {
				a := agent.New(sim, vm, agentCfg)
				a.ApplyPlan(rows[vm])
				a.Start()
				group = append(group, a)
			}
		}
		f.jobAgents = append(f.jobAgents, group)
	}
	if f.cfg.Agent.Throttle {
		f.applyGlobalThrottles(plan)
	}
	return f.jobAgents, nil
}

// JobAgents returns the per-job agent groups (nil when no job set is
// deployed).
func (f *Framework) JobAgents() [][]*agent.Agent { return f.jobAgents }

// JobPolicies returns one connection policy per job, each consulting
// that job's agents — what a spark.JobRun plugs in as its Policy.
func (f *Framework) JobPolicies() []spark.ConnPolicy {
	out := make([]spark.ConnPolicy, len(f.jobAgents))
	for g, group := range f.jobAgents {
		out[g] = spark.NewAgentConn(group)
	}
	return out
}

// StartJobSetController launches ONE re-gauging controller arbitrating
// for every job in the deployed set: monitored rates aggregate across
// jobs per DC pair, a drift or staleness trigger re-gauges the cluster
// once, and each job's partition of the new windows swaps in
// atomically (with shares re-evaluated, so bytes-remaining sharing
// follows job progress).
func (f *Framework) StartJobSetController() *rgauge.Controller {
	if f.jobAgents == nil {
		panic("wanify: StartJobSetController before DeployJobSetAgents")
	}
	if f.controller != nil {
		f.controller.Stop()
	}
	deps := f.controllerDeps(f.jobSetOpts.Optimize)
	var union []*agent.Agent
	for _, group := range f.jobAgents {
		union = append(union, group...)
	}
	deps.Agents = union
	deps.Groups = f.jobAgents
	deps.Partition = f.partitionForJobSet
	if f.cfg.Agent.Throttle {
		deps.OnPlanSwap = func(_ bwmatrix.Matrix, plan optimize.Plan) {
			f.applyGlobalThrottles(plan)
		}
	}
	f.controller = rgauge.Start(deps, f.cfg.Runtime, f.deployed, f.plan)
	return f.controller
}

// EnableJobSet is the multi-tenant Enable: snapshot → predict →
// optimize once → partition across jobs → deploy per-job agents (plus
// the shared arbitration controller when Config.Runtime is enabled).
// It returns the predicted matrix, one connection policy per job, and
// the measurement bill.
func (f *Framework) EnableJobSet(o JobSetOptions) (bwmatrix.Matrix, []spark.ConnPolicy, measure.Report, error) {
	pred, rep := f.DetermineRuntimeBW()
	plan := f.Optimize(pred, o.Optimize)
	if _, err := f.DeployJobSetAgents(pred, plan, o); err != nil {
		return nil, nil, rep, err
	}
	if f.cfg.Runtime.Enabled {
		f.StartJobSetController()
	}
	return pred, f.JobPolicies(), rep, nil
}
