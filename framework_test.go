package wanify_test

import (
	"testing"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// newFramework builds a framework over a fresh frozen cluster.
func newFramework(t *testing.T, vmsPerDC []int, throttle bool) (*wanify.Framework, *netsim.Sim) {
	t.Helper()
	model := getModel(t)
	regions := geo.TestbedSubset(len(vmsPerDC))
	vms := make([][]substrate.VMSpec, len(regions))
	for i, k := range vmsPerDC {
		for j := 0; j < k; j++ {
			vms[i] = append(vms[i], substrate.T2Medium)
		}
	}
	sim := netsim.NewSim(netsim.Config{Regions: regions, VMs: vms, Seed: 5, Frozen: true})
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: cost.DefaultRates(), Seed: 5,
		Agent: agent.Config{Throttle: throttle},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	return fw, sim
}

// TestNewValidation checks constructor error paths.
func TestNewValidation(t *testing.T) {
	model := getModel(t)
	if _, err := wanify.New(wanify.Config{}, model); err == nil {
		t.Error("nil sim accepted")
	}
	_, sim := newFramework(t, []int{1, 1, 1}, false)
	if _, err := wanify.New(wanify.Config{Cluster: sim}, nil); err == nil {
		t.Error("nil model accepted")
	}
}

// TestDetermineRuntimeBWShape checks the online prediction path.
func TestDetermineRuntimeBWShape(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1, 1}, false)
	if fw.Predicted() != nil {
		t.Error("prediction exists before DetermineRuntimeBW")
	}
	before := sim.Now()
	pred, rep := fw.DetermineRuntimeBW()
	if sim.Now()-before != 1 {
		t.Errorf("snapshot consumed %v s, want 1", sim.Now()-before)
	}
	if pred.N() != 4 {
		t.Fatalf("matrix size %d", pred.N())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && pred[i][j] <= 0 {
				t.Errorf("prediction [%d][%d] = %v", i, j, pred[i][j])
			}
		}
	}
	if rep.BytesTransferred <= 0 {
		t.Error("snapshot transferred no bytes")
	}
	// Predicted() returns a defensive copy.
	cp := fw.Predicted()
	cp[0][1] = -1
	if fw.Predicted()[0][1] == -1 {
		t.Error("Predicted aliases internal state")
	}
}

// TestEnableDeploysAgentsPerVM checks the association path: one agent
// per VM, with DC-level connection counts chunked across a DC's VMs.
func TestEnableDeploysAgentsPerVM(t *testing.T) {
	fw, sim := newFramework(t, []int{3, 1, 1}, false)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()

	agents := fw.Agents()
	if len(agents) != 5 {
		t.Fatalf("%d agents, want 5 (one per VM)", len(agents))
	}
	// DC0 has 3 VMs; the per-VM chunks of any destination's max conns
	// must sum to at least the DC-level plan (chunks floor at 1).
	plan := fw.Plan()
	var dc0Sum int
	for _, a := range agents {
		if a.DC() == 0 {
			dc0Sum += a.ConnsTo(1)
		}
	}
	if dc0Sum < plan.MaxConns[0][1] {
		t.Errorf("chunked conns to DC1 sum to %d, below DC-level %d", dc0Sum, plan.MaxConns[0][1])
	}
	// The policy resolves per sending VM.
	for _, vm := range sim.VMsOfDC(0) {
		if got := policy.Conns(vm, 1); got < 1 {
			t.Errorf("policy conns for VM %d = %d", vm, got)
		}
	}
	if pred.N() != 3 {
		t.Errorf("predicted size %d", pred.N())
	}
}

// TestStopAgentsClearsThrottles checks lifecycle cleanup: pair limits
// installed by throttling agents disappear after StopAgents.
func TestStopAgentsClearsThrottles(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1, 1}, true)
	fw.Enable(wanify.OptimizeOptions{})
	// A probe on the strongest link runs under the agent throttle.
	probe := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 8)
	sim.RunFor(5)
	throttled := probe.Rate()
	fw.StopAgents()
	sim.RunFor(5)
	freed := probe.Rate()
	if freed < throttled {
		t.Errorf("rate after StopAgents %.0f below throttled %.0f", freed, throttled)
	}
	if fw.Agents() != nil {
		t.Error("agents not cleared")
	}
	probe.Stop()
}

// TestOptimizeAppliesRVec checks the §3.3.3 provider refactoring path
// through the public API.
func TestOptimizeAppliesRVec(t *testing.T) {
	fw, _ := newFramework(t, []int{1, 1, 1}, false)
	pred, _ := fw.DetermineRuntimeBW()
	providers := []string{"aws", "gcp", "aws"}
	rvec := optimize.RefactorFromProviders(providers, map[string]float64{"gcp": 0.8})
	plain := fw.Optimize(pred, wanify.OptimizeOptions{})
	scaled := fw.Optimize(pred, wanify.OptimizeOptions{RVec: rvec})
	// Connection counts unchanged; bandwidth targets scaled on
	// GCP-touching pairs.
	if scaled.MaxConns[0][1] != plain.MaxConns[0][1] {
		t.Error("rvec changed connection counts")
	}
	wantFactor := rvec[0][1]
	if got := scaled.MaxBW[0][1] / plain.MaxBW[0][1]; got < wantFactor-1e-9 || got > wantFactor+1e-9 {
		t.Errorf("cross-provider maxBW factor %v, want %v", got, wantFactor)
	}
	if scaled.MaxBW[0][2] != plain.MaxBW[0][2] {
		t.Error("aws-aws pair scaled despite factor 1")
	}
}

// TestRefactorFromProviders checks the helper's shape.
func TestRefactorFromProviders(t *testing.T) {
	rv := optimize.RefactorFromProviders([]string{"aws", "gcp"}, map[string]float64{"gcp": 0.64})
	if rv[0][0] != 1 {
		t.Errorf("aws-aws = %v", rv[0][0])
	}
	if rv[1][1] != 0.64 {
		t.Errorf("gcp-gcp = %v, want 0.64", rv[1][1])
	}
	if rv[0][1] != 0.8 { // sqrt(1 * 0.64)
		t.Errorf("aws-gcp = %v, want 0.8", rv[0][1])
	}
	if got := optimize.RefactorFromProviders([]string{"x"}, nil); got[0][0] != 1 {
		t.Error("unknown providers should default to 1")
	}
}

// TestEnableIsRepeatable checks Enable can be called again (fresh
// query, new snapshot) without leaking agents.
func TestEnableIsRepeatable(t *testing.T) {
	fw, _ := newFramework(t, []int{1, 1, 1}, true)
	fw.Enable(wanify.OptimizeOptions{})
	first := fw.Agents()
	fw.Enable(wanify.OptimizeOptions{})
	second := fw.Agents()
	defer fw.StopAgents()
	if len(second) != len(first) {
		t.Errorf("agent count changed: %d -> %d", len(first), len(second))
	}
	for _, a := range first {
		for _, b := range second {
			if a == b {
				t.Fatal("old agents leaked into the new deployment")
			}
		}
	}
}

// TestPlanRowsRespectEquationBounds cross-checks the deployed agents'
// windows against the plan they were chunked from.
func TestPlanRowsRespectEquationBounds(t *testing.T) {
	fw, _ := newFramework(t, []int{1, 1, 1, 1}, false)
	pred, _ := fw.DetermineRuntimeBW()
	plan := fw.Optimize(pred, wanify.OptimizeOptions{})
	fw.DeployAgents(pred, plan)
	defer fw.StopAgents()
	for _, a := range fw.Agents() {
		for j, c := range a.Conns() {
			if j == a.DC() {
				continue
			}
			if c < 1 || c > plan.MaxConns[a.DC()][j] {
				t.Errorf("agent DC%d conns to %d = %d outside [1, %d]",
					a.DC(), j, c, plan.MaxConns[a.DC()][j])
			}
		}
	}
}

// TestWANifyWinsAcrossSeeds is the paper's 5-run protocol in miniature:
// on the heavy query, full WANify must beat the vanilla baseline under
// (at least) a clear majority of network-weather draws.
func TestWANifyWinsAcrossSeeds(t *testing.T) {
	model := getModel(t)
	rates := cost.DefaultRates()
	input := make([]float64, 8)
	for i := range input {
		input[i] = 10e9 / 8
	}
	wins := 0
	const runs = 3
	for s := uint64(0); s < runs; s++ {
		vanilla := runSeedQuery(t, model, rates, input, 100+s, false)
		wan := runSeedQuery(t, model, rates, input, 100+s, true)
		if wan < vanilla {
			wins++
		}
		t.Logf("seed %d: vanilla %.1fs vs wanify %.1fs", 100+s, vanilla, wan)
	}
	if wins < runs-1 {
		t.Errorf("WANify won only %d/%d seeds", wins, runs)
	}
}

// runSeedQuery runs TPC-DS 78 once and returns the JCT.
func runSeedQuery(t *testing.T, model *predict.Model, rates cost.Rates, input []float64, seed uint64, useWANify bool) float64 {
	t.Helper()
	sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
	job, err := workloads.TPCDS(78, input)
	if err != nil {
		t.Fatal(err)
	}
	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)

	if !useWANify {
		believed, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
		sim.RunUntil(700)
		res, err := eng.RunJob(job, gda.Tetrium{Believed: believed, Info: info}, spark.SingleConn{})
		if err != nil {
			t.Fatal(err)
		}
		return res.JCTSeconds
	}
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: seed,
		Agent: agent.Config{Throttle: true},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(699)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()
	res, err := eng.RunJob(job, gda.Tetrium{Believed: pred, Info: info}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return res.JCTSeconds
}

// TestRuntimeControllerDisabledByDefault checks the default Enable path
// deploys no re-gauging controller (the base single-plan behaviour all
// golden outputs are locked against).
func TestRuntimeControllerDisabledByDefault(t *testing.T) {
	fw, _ := newFramework(t, []int{1, 1, 1}, false)
	fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()
	if fw.Controller() != nil {
		t.Error("controller running without Runtime.Enabled")
	}
}

// TestRuntimeControllerEndToEnd runs a job with the re-gauging
// controller enabled (staleness-forced) and checks replans fire, the
// job completes, and StopAgents tears the controller down.
func TestRuntimeControllerEndToEnd(t *testing.T) {
	model := getModel(t)
	sim := netsim.NewSim(netsim.Config{
		Regions: geo.TestbedSubset(3),
		VMs: [][]substrate.VMSpec{
			{substrate.T2Medium}, {substrate.T2Medium}, {substrate.T2Medium},
		},
		Seed: 11, Frozen: true,
	})
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: cost.DefaultRates(), Seed: 11,
		Agent: agent.Config{Throttle: true},
		Runtime: rgauge.Config{
			Enabled: true, EpochS: 5, StaleAfterS: 20, CooldownS: 10,
		},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	ctl := fw.Controller()
	if ctl == nil {
		t.Fatal("Runtime.Enabled did not start a controller")
	}

	job := workloads.TeraSort(workloads.UniformInput(3, 30e9))
	eng := spark.NewEngine(sim, cost.DefaultRates())
	res, err := eng.RunJob(job, gda.Tetrium{Believed: pred, Info: gda.NewClusterInfo(sim, cost.DefaultRates())}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCTSeconds <= 0 {
		t.Fatalf("job did not run")
	}
	if got := ctl.Replans(); got < 1 {
		t.Errorf("no staleness replans during a %.0fs job with StaleAfterS=20", res.JCTSeconds)
	}
	fw.StopAgents()
	if fw.Controller() != nil {
		t.Error("controller survived StopAgents")
	}
	if got := sim.ActiveFlows(); got != 0 {
		t.Errorf("%d flows left after teardown", got)
	}
}
