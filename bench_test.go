package wanify_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §3 maps ids to artifacts):
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment driver at a
// reduced input scale (benchScale) so the full suite completes in
// minutes; cmd/wanify-bench runs the same drivers at paper scale.
// The first iteration of each benchmark logs the rendered result,
// so `go test -bench=. -v` doubles as a report generator.

import (
	"sync"
	"testing"

	"github.com/wanify/wanify/internal/experiments"
	"github.com/wanify/wanify/internal/predict"
)

const benchScale = 0.1

var (
	benchModel     *predict.Model
	benchModelOnce sync.Once
)

// benchParams shares one trained prediction model across benchmarks
// (the offline module is cluster-independent, as in a real deployment).
// Training happens once, on first use, so benchmark iterations measure
// the experiment drivers rather than model training.
func benchParams(b *testing.B) experiments.Params {
	b.Helper()
	benchModelOnce.Do(func() {
		m, err := experiments.SharedModel(experiments.Params{Seed: 1, Scale: benchScale})
		if err != nil {
			b.Fatalf("training shared bench model: %v", err)
		}
		benchModel = m
	})
	return experiments.Params{Seed: 1, Scale: benchScale, Model: benchModel}
}

// runExperiment executes one registered experiment b.N times, logging
// the rendered result once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := runner(p)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkFig1TopologyMatrix regenerates the Fig. 1 single-connection
// bandwidth map (anchors: 1700 Mbps US East-US West, 121 Mbps US
// East-AP SE).
func BenchmarkFig1TopologyMatrix(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1StaticVsRuntimeGaps regenerates Table 1: bucketed
// significant differences between static and runtime bandwidths.
func BenchmarkTable1StaticVsRuntimeGaps(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2MonitoringCostSavings regenerates Table 2: Eq. 1
// runtime-monitoring cost vs session-based training/prediction cost
// (~96% savings).
func BenchmarkTable2MonitoringCostSavings(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig2ConnectionStrategies regenerates Fig. 2: single vs
// uniform vs heterogeneous connections on the 3-DC cluster, plus the
// reduce-plan bottleneck latency.
func BenchmarkFig2ConnectionStrategies(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkTable4RuntimeBWGains regenerates Table 4: Tetrium/Kimchi
// improvements from simultaneous and predicted BWs over static, single
// connection.
func BenchmarkTable4RuntimeBWGains(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig4MLQuantization regenerates Fig. 4: NoQ/SAGQ/SimQ/PredQ/WQ
// training time and cost.
func BenchmarkFig4MLQuantization(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5ParallelApproaches regenerates Fig. 5: TeraSort under
// no-WAN-aware / WANify-P / WANify-Dynamic / WANify-TC.
func BenchmarkFig5ParallelApproaches(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ShuffleSizes regenerates Fig. 6: WordCount across
// intermediate data sizes.
func BenchmarkFig6ShuffleSizes(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7StateOfTheArt regenerates Fig. 7: TPC-DS on Tetrium and
// Kimchi with and without WANify.
func BenchmarkFig7StateOfTheArt(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8aAblation regenerates Fig. 8(a): vanilla / global-only /
// local-only / full WANify on query 78.
func BenchmarkFig8aAblation(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8bPredictionError regenerates Fig. 8(b): WANify vs
// WANify-err (±100 Mbps injected prediction error).
func BenchmarkFig8bPredictionError(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig9AIMDTracking regenerates Fig. 9: SD of AIMD target BWs
// vs monitored BWs per epoch, and the 20%-error significant deltas.
func BenchmarkFig9AIMDTracking(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10SkewedInputs regenerates Fig. 10: skewed WordCount
// under the four §5.8.1 variants on Tetrium and Kimchi.
func BenchmarkFig10SkewedInputs(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11aHeteroDCs regenerates Fig. 11(a): static vs predicted
// accuracy across cluster sizes.
func BenchmarkFig11aHeteroDCs(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkFig11bHeteroVMs regenerates Fig. 11(b): accuracy with 1-5
// extra VMs at 3 DCs (association).
func BenchmarkFig11bHeteroVMs(b *testing.B) { runExperiment(b, "fig11b") }

// BenchmarkSec583HeteroCompute regenerates §5.8.3's text numbers:
// vanilla Tetrium vs Tetrium-r vs full WANify with an extra US East
// worker.
func BenchmarkSec583HeteroCompute(b *testing.B) { runExperiment(b, "sec583") }

// BenchmarkAblationModelChoice runs the §3.1 model-choice ablation: RF
// vs snapshot-passthrough vs linear regression vs k-NN.
func BenchmarkAblationModelChoice(b *testing.B) { runExperiment(b, "ablation-model") }

// BenchmarkAblationNetsimKnobs sweeps the simulator's RTT-bias exponent
// and congestion knee, showing which design choices the paper's Fig. 2
// phenomena depend on.
func BenchmarkAblationNetsimKnobs(b *testing.B) { runExperiment(b, "ablation-netsim") }

// BenchmarkMultiCloudAccuracy runs the AWS+GCP accuracy check §5.8.3
// mentions but omits for space.
func BenchmarkMultiCloudAccuracy(b *testing.B) { runExperiment(b, "multicloud") }
