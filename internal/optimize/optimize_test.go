package optimize

import (
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/bwmatrix"
)

// paperExample is the worked example of §3.2.1: bw = {1000, 400, 120;
// 380, 1000, 130; 110, 120, 1000}, D = 30.
func paperExample() bwmatrix.Matrix {
	m := bwmatrix.New(3)
	m[0] = []float64{1000, 400, 120}
	m[1] = []float64{380, 1000, 130}
	m[2] = []float64{110, 120, 1000}
	return m
}

// TestInferDCRelationsPaperExample verifies Algorithm 1 against the
// paper's own trace: unique levels {110,120,130,380,400,1000} filter to
// {110, 380, 1000}; closeness 1 for 1000, 2 for {400, 380}, 3 for
// {120, 130, 110}.
func TestInferDCRelationsPaperExample(t *testing.T) {
	rel := InferDCRelations(paperExample(), 30)
	want := [][]int{
		{1, 2, 3},
		{2, 1, 3},
		{3, 3, 1},
	}
	for i := range want {
		for j := range want[i] {
			if rel[i][j] != want[i][j] {
				t.Errorf("DCrel[%d][%d] = %d, want %d", i, j, rel[i][j], want[i][j])
			}
		}
	}
}

// TestInferDCRelationsFloatNoiseStable locks the dedupe fix: two
// predicted values differing by a float artifact (1e-9 Mbps) must form
// ONE bandwidth level, so a noisy copy of the §3.2.1 worked example
// yields the exact closeness matrix of the clean one. Under the old
// exact-equality set, the phantom level sat within D of its twin,
// shifted the reverse-traversal comparisons and could re-index every
// pair.
func TestInferDCRelationsFloatNoiseStable(t *testing.T) {
	clean := InferDCRelations(paperExample(), 30)
	noisy := paperExample()
	noisy[1][0] = 380 + 1e-9 // duplicate 380 an artifact apart
	noisy[2][1] = 120 - 1e-9 // and 120, in the other direction
	got := InferDCRelations(noisy, 30)
	for i := range clean {
		for j := range clean[i] {
			if got[i][j] != clean[i][j] {
				t.Errorf("noisy DCrel[%d][%d] = %d, clean = %d", i, j, got[i][j], clean[i][j])
			}
		}
	}
}

// TestInferDCRelationsPhantomLevel pins the concrete failure mode: with
// levels {100, 100+ε, 130} and D=30, the ε-duplicate sat exactly under
// the legitimate 130 level (130 − (100+ε) < D), so the reverse
// traversal dropped 130 — and then the ε twin — collapsing three levels
// into one. After tolerance dedupe the comparison is 130 − 100 = D and
// the significant level survives.
func TestInferDCRelationsPhantomLevel(t *testing.T) {
	m := bwmatrix.New(3)
	m[0] = []float64{1000, 100, 130}
	m[1] = []float64{100 + 1e-9, 1000, 130}
	m[2] = []float64{130, 130, 1000}
	rel := InferDCRelations(m, 30)
	// Levels must be {100, 130, 1000}: closeness 1 on the diagonal, 2
	// for the 130 links, 3 for the 100 links.
	want := [][]int{
		{1, 3, 2},
		{3, 1, 2},
		{2, 2, 1},
	}
	for i := range want {
		for j := range want[i] {
			if rel[i][j] != want[i][j] {
				t.Errorf("DCrel[%d][%d] = %d, want %d (phantom ε-level dropped the 130 level)",
					i, j, rel[i][j], want[i][j])
			}
		}
	}
}

// TestGlobalOptimizePaperExample verifies Eq. 2–3 against the paper's
// numbers: sumall = 16, M = 8 yields minCons all ones and maxCons
// {_, 6, 8; 6, _, 8; 8, 8, _} off-diagonal (the diagonal is 1 per the
// equation; see DESIGN.md §2 for the worked-example discrepancy).
func TestGlobalOptimizePaperExample(t *testing.T) {
	// GlobalOptimize replaces the diagonal itself, so feed off-diagonal
	// values only.
	pred := paperExample()
	for i := range pred {
		pred[i][i] = 0
	}
	plan := GlobalOptimize(pred, Options{M: 8, D: 30})

	wantMax := [][]int{
		{1, 6, 8},
		{6, 1, 8},
		{8, 8, 1},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if plan.MinConns[i][j] != 1 {
				t.Errorf("minCons[%d][%d] = %d, want 1", i, j, plan.MinConns[i][j])
			}
			if plan.MaxConns[i][j] != wantMax[i][j] {
				t.Errorf("maxCons[%d][%d] = %d, want %d", i, j, plan.MaxConns[i][j], wantMax[i][j])
			}
		}
	}
	// Achievable BWs are bw × cons (rvec = 1): e.g. maxBW[0][2] = 120×8.
	if got, want := plan.MaxBW[0][2], 120.0*8; got != want {
		t.Errorf("maxBW[0][2] = %v, want %v", got, want)
	}
	if got, want := plan.MinBW[0][1], 400.0; got != want {
		t.Errorf("minBW[0][1] = %v, want %v", got, want)
	}
}

// TestGlobalOptimizeFavorsWeakLinks checks the core design property:
// distant DC pairs (lower predicted BW) receive at least as many max
// connections as nearby pairs.
func TestGlobalOptimizeFavorsWeakLinks(t *testing.T) {
	pred := paperExample()
	for i := range pred {
		pred[i][i] = 0
	}
	plan := GlobalOptimize(pred, Options{M: 8, D: 30})
	if plan.MaxConns[0][2] <= plan.MaxConns[0][1] {
		t.Errorf("weak link maxCons %d should exceed strong link %d",
			plan.MaxConns[0][2], plan.MaxConns[0][1])
	}
}

// TestSkewWeightsShiftConnections checks §3.3.1: a data-heavy DC's
// pairs receive proportionally more connections.
func TestSkewWeightsShiftConnections(t *testing.T) {
	pred := paperExample()
	for i := range pred {
		pred[i][i] = 0
	}
	base := GlobalOptimize(pred, Options{M: 8, D: 30})
	skewed := GlobalOptimize(pred, Options{M: 8, D: 30, SkewWeights: []float64{3, 1, 1}})
	// DC0 is data-heavy: its links should not lose connections, and at
	// least one should gain.
	gained := false
	for j := 1; j < 3; j++ {
		if skewed.MaxConns[0][j] < base.MaxConns[0][j] {
			t.Errorf("maxCons[0][%d] dropped from %d to %d despite DC0 skew",
				j, base.MaxConns[0][j], skewed.MaxConns[0][j])
		}
		if skewed.MaxConns[0][j] > base.MaxConns[0][j] {
			gained = true
		}
	}
	if !gained {
		t.Error("skew weights had no effect on DC0's connection counts")
	}
}

// TestRVecScalesBandwidth checks §3.3.3: the refactoring vector scales
// achievable bandwidths but not connection counts.
func TestRVecScalesBandwidth(t *testing.T) {
	pred := paperExample()
	for i := range pred {
		pred[i][i] = 0
	}
	rv := bwmatrix.NewFilled(3, 0.5)
	base := GlobalOptimize(pred, Options{M: 8, D: 30})
	scaled := GlobalOptimize(pred, Options{M: 8, D: 30, RVec: rv})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if scaled.MaxConns[i][j] != base.MaxConns[i][j] {
				t.Errorf("rvec changed maxCons[%d][%d]", i, j)
			}
			if i != j && scaled.MaxBW[i][j] != 0.5*base.MaxBW[i][j] {
				t.Errorf("maxBW[%d][%d] = %v, want %v", i, j, scaled.MaxBW[i][j], 0.5*base.MaxBW[i][j])
			}
		}
	}
}

// TestPlanInvariants property-checks GlobalOptimize over random
// bandwidth matrices: connection counts stay within [1, 2M], min <= max
// everywhere, and bandwidth targets are non-negative with min <= max.
func TestPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 2 + rng.IntN(7)
		pred := bwmatrix.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					pred[i][j] = rng.Uniform(20, 2200)
				}
			}
		}
		plan := GlobalOptimize(pred, Options{})
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				minC, maxC := plan.MinConns[i][j], plan.MaxConns[i][j]
				if minC < 1 || maxC < minC || maxC > 2*DefaultM {
					return false
				}
				if plan.MinBW[i][j] < 0 || plan.MaxBW[i][j] < plan.MinBW[i][j] {
					return false
				}
				if i != j && plan.DCRel[i][j] < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestThrottleThresholds checks the §3.2.2 throttle threshold: the mean
// of achievable BWs per source row.
func TestThrottleThresholds(t *testing.T) {
	m := bwmatrix.New(3)
	m[0] = []float64{0, 900, 300}
	m[1] = []float64{800, 0, 400}
	m[2] = []float64{200, 100, 0}
	th := ThrottleThresholds(m)
	want := []float64{600, 600, 150}
	for i := range want {
		if th[i] != want[i] {
			t.Errorf("T[%d] = %v, want %v", i, th[i], want[i])
		}
	}
}

// TestSplitAcrossVMs checks association chunking.
func TestSplitAcrossVMs(t *testing.T) {
	cases := []struct {
		conns, k int
		want     []int
	}{
		{8, 1, []int{8}},
		{8, 3, []int{3, 3, 2}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 2, []int{0, 0}},
	}
	for _, c := range cases {
		got := SplitAcrossVMs(c.conns, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("SplitAcrossVMs(%d,%d) len = %d", c.conns, c.k, len(got))
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitAcrossVMs(%d,%d) = %v, want %v", c.conns, c.k, got, c.want)
				break
			}
			sum += got[i]
		}
		if sum != c.conns {
			t.Errorf("SplitAcrossVMs(%d,%d) sums to %d", c.conns, c.k, sum)
		}
	}
}

// TestAggregateByDC checks association summing.
func TestAggregateByDC(t *testing.T) {
	vmBW := bwmatrix.New(3) // VMs 0,1 in DC0; VM 2 in DC1
	vmBW[0] = []float64{0, 500, 100}
	vmBW[1] = []float64{450, 0, 150}
	vmBW[2] = []float64{120, 130, 0}
	dc := AggregateByDC(vmBW, []int{0, 0, 1}, 2)
	if dc[0][1] != 250 {
		t.Errorf("DC0->DC1 = %v, want 250", dc[0][1])
	}
	if dc[1][0] != 250 {
		t.Errorf("DC1->DC0 = %v, want 250", dc[1][0])
	}
	if dc[0][0] != 0 {
		t.Errorf("intra-DC aggregated to %v, want 0", dc[0][0])
	}
}

// TestInferDCRelationsEdgeBranches exercises the binary-search interval
// handling: values below the lowest retained level, above the highest,
// and exactly between two levels.
func TestInferDCRelationsEdgeBranches(t *testing.T) {
	// Levels after filtering with D=30: {100, 500, 1000}.
	m := bwmatrix.New(2)
	m[0] = []float64{1000, 50}  // 50 is below the lowest level
	m[1] = []float64{2000, 100} // 2000 is above the highest level
	rel := InferDCRelations(m, 30)
	// L = 5 levels? set = {1000, 50, 2000, 100}; sorted {50,100,1000,2000};
	// filtering: 2000-1000 keep, 1000-100 keep, 100-50=50>=30 keep -> L=4.
	// closeness: 2000 -> 1, 1000 -> 2, 100 -> 3, 50 -> 4.
	if rel[1][0] != 1 {
		t.Errorf("highest value closeness = %d, want 1", rel[1][0])
	}
	if rel[0][0] != 2 || rel[1][1] != 3 || rel[0][1] != 4 {
		t.Errorf("rel = %v", rel)
	}

	// Values removed by the D-filter resolve to their nearest retained
	// level. With D=30: {100, 120, 985, 1000} filters to {100, 985};
	// 1000 (above the top level) joins 985's closeness, 120 joins 100's.
	mid := bwmatrix.New(2)
	mid[0] = []float64{1000, 985}
	mid[1] = []float64{120, 100}
	relMid := InferDCRelations(mid, 30)
	if relMid[0][0] != relMid[0][1] {
		t.Errorf("1000 got closeness %d, 985 got %d — want equal (merged level)", relMid[0][0], relMid[0][1])
	}
	if relMid[1][0] != relMid[1][1] {
		t.Errorf("120 got closeness %d, 100 got %d — want equal (merged level)", relMid[1][0], relMid[1][1])
	}
	if relMid[0][0] != 1 || relMid[1][1] != 2 {
		t.Errorf("rel = %v, want closeness 1 for the high level, 2 for the low", relMid)
	}
}

// TestGlobalOptimizeSingleDC checks the degenerate 1-DC cluster.
func TestGlobalOptimizeSingleDC(t *testing.T) {
	plan := GlobalOptimize(bwmatrix.New(1), Options{})
	if plan.MinConns[0][0] != 1 || plan.MaxConns[0][0] != 1 {
		t.Errorf("1-DC plan conns = %d/%d", plan.MinConns[0][0], plan.MaxConns[0][0])
	}
}
