// Package optimize implements WANify's static global optimization
// (§3.2.1): inferring data-center relationships from predicted runtime
// bandwidths (Algorithm 1) and deriving the optimal range of
// heterogeneous parallel connections and achievable bandwidths per DC
// pair (Eq. 2–3), including the heterogeneity adjustments of §3.3 —
// skewness weights (ws), the refactoring vector (rvec) for multi-cloud
// deployments, and association/chunking for DCs with multiple VMs.
//
// The outputs are the [minCons, maxCons] connection windows and
// [minBW, maxBW] achievable-bandwidth targets that WANify's local
// agents fine-tune at runtime (§3.2.2).
package optimize

import (
	"fmt"
	"math"
	"sort"

	"github.com/wanify/wanify/internal/bwmatrix"
)

// DefaultM is the default cap on parallel connections from a reference
// DC toward one peer. The paper's measurements found no benefit past 8
// connections per link (§2.2).
const DefaultM = 8

// DefaultD is the default minimum bandwidth difference (Mbps) for two
// BW levels to be considered distinct when inferring DC relationships
// (the worked example in §3.2.1 uses 30).
const DefaultD = 30.0

// levelEps is the relative float tolerance under which two bandwidth
// values are the *same* level during relation inference: predictions
// are tree-ensemble averages, so values meant to be equal can differ by
// rounding noise many orders of magnitude below any meaningful D.
const levelEps = 1e-9

// Scratch holds the reusable temporaries of the Into variants below.
// The runtime re-gauging controller re-plans on the live path every
// replan, so GlobalOptimize's interior allocations (the diagonal-lifted
// matrix clone, the level set, the weight and row-max buffers) are
// caller-poolable. A zero Scratch is ready to use; it grows to the
// largest cluster seen and is NOT safe for concurrent use.
type Scratch struct {
	bw     bwmatrix.Matrix
	levels []float64
	maxR   []int
	ws     []float64
}

// levelBuf returns a zero-length level buffer with capacity n².
func (s *Scratch) levelBuf(n int) []float64 {
	if s == nil {
		return nil
	}
	if cap(s.levels) < n*n {
		s.levels = make([]float64, 0, n*n)
	}
	return s.levels[:0]
}

// reuseRel returns dst when it is already n×n, else a fresh matrix
// with one contiguous backing.
func reuseRel(dst [][]int, n int) [][]int {
	if len(dst) == n && (n == 0 || len(dst[0]) == n) {
		return dst
	}
	dst = make([][]int, n)
	backing := make([]int, n*n)
	for i := range dst {
		dst[i], backing = backing[:n:n], backing[n:]
	}
	return dst
}

// InferDCRelations implements Algorithm 1 (INFER_DC_RELATIONS).
//
// Given a runtime bandwidth matrix and the minimum significant
// difference D, it returns the closeness-index matrix DCrel: 1 for the
// closest relationship (highest bandwidth level) up to L for the most
// distant, where L is the number of distinct bandwidth levels after
// filtering. The input's diagonal participates exactly as written in
// the paper (callers place an intra-DC bandwidth there; see
// GlobalOptimize).
//
// Note: the paper's pseudocode loops i,j over 1..N/2, but its own
// worked example assigns closeness to every pair; we iterate all pairs
// (see DESIGN.md §2, "known paper quirks").
func InferDCRelations(bw bwmatrix.Matrix, d float64) [][]int {
	return InferDCRelationsInto(nil, bw, d, nil)
}

// InferDCRelationsInto is InferDCRelations with a caller-owned result
// matrix (reused when already n×n) and scratch temporaries. Results
// are identical to InferDCRelations'.
func InferDCRelationsInto(dst [][]int, bw bwmatrix.Matrix, d float64, s *Scratch) [][]int {
	n := bw.N()

	// bwu = sort(set(bw)) — unique bandwidth levels, ascending. The set
	// is built with a float tolerance rather than exact equality: two
	// predictions differing by a rounding artifact (1e-9 Mbps) are one
	// level, not two. An exact-equality set would keep both, and the
	// D filter below compares each level against its *immediate* lower
	// neighbor — so a phantom ε-duplicate sitting D below a legitimate
	// level makes that level look insignificant and drops it, shifting
	// every closeness index derived from the survivors.
	bwu := s.levelBuf(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bwu = append(bwu, bw[i][j])
		}
	}
	sort.Float64s(bwu)
	uniq := bwu[:0]
	for _, v := range bwu {
		if len(uniq) == 0 || v-uniq[len(uniq)-1] > levelEps*math.Max(1, math.Abs(v)) {
			uniq = append(uniq, v)
		}
	}
	bwu = uniq

	// Reverse traversal: drop levels within D of their lower neighbor.
	for i := len(bwu) - 1; i >= 1; i-- {
		if bwu[i]-bwu[i-1] < d {
			bwu = append(bwu[:i], bwu[i+1:]...)
		}
	}

	l := len(bwu)
	rel := reuseRel(dst, n)
	for i := range rel {
		for j := range rel[i] {
			rel[i][j] = 1
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := bw[i][j]
			k := sort.SearchFloat64s(bwu, v)
			switch {
			case k < l && bwu[k] == v:
				// Exact match at (0-based) index k.
				rel[i][j] = l - k
			case k == 0:
				rel[i][j] = l // below the lowest level
			case k == l:
				rel[i][j] = 1 // above the highest level
			default:
				// Between bwu[k-1] and bwu[k]: pick the nearer level.
				chosen := k - 1
				if math.Abs(bwu[k]-v) < math.Abs(v-bwu[k-1]) {
					chosen = k
				}
				rel[i][j] = l - chosen
			}
		}
	}
	return rel
}

// Plan is the output of global optimization: the connection window and
// achievable-bandwidth targets per DC pair (§2.3's two matrices, as
// ranges), which local agents consume.
type Plan struct {
	// DCRel is the closeness-index matrix from Algorithm 1.
	DCRel [][]int
	// MinConns and MaxConns bound the heterogeneous connection counts.
	MinConns, MaxConns bwmatrix.ConnMatrix
	// MinBW and MaxBW are the corresponding achievable-bandwidth
	// targets (predicted BW × connections × rvec, Eq. 3).
	MinBW, MaxBW bwmatrix.Matrix
}

// Options configures global optimization.
type Options struct {
	// M is the maximum parallel connections from a reference DC toward
	// a peer (default DefaultM).
	M int
	// D is the minimum significant bandwidth difference for relation
	// inference (default DefaultD).
	D float64
	// SkewWeights (ws, §3.3.1) holds one weight per DC, proportional to
	// its share of input data. nil means uniform. Weights are
	// normalized to mean 1 and applied symmetrically to each pair.
	SkewWeights []float64
	// RVec (§3.3.3) is an optional per-pair refactoring matrix for
	// heterogeneous providers/instance types; nil means all ones.
	RVec bwmatrix.Matrix
}

func (o Options) withDefaults() Options {
	if o.M == 0 {
		o.M = DefaultM
	}
	if o.D == 0 {
		o.D = DefaultD
	}
	return o
}

// GlobalOptimize derives the optimal connection and bandwidth ranges
// from a predicted runtime bandwidth matrix (Eq. 2–3).
//
// The input matrix carries off-diagonal pairwise bandwidths; its
// diagonal is replaced by a level strictly above every off-diagonal
// value (an intra-DC transfer never crosses the WAN), mirroring the
// paper's example where diagonal entries hold the highest level.
func GlobalOptimize(pred bwmatrix.Matrix, opts Options) Plan {
	var plan Plan
	GlobalOptimizeInto(&plan, pred, opts, nil)
	return plan
}

// GlobalOptimizeInto is GlobalOptimize writing into a caller-owned
// plan: dst's matrices are reused when they already have the right
// shape (a zero Plan allocates them once) and s, when non-nil,
// supplies the interior temporaries. Results are identical to
// GlobalOptimize's. Ownership rule: the returned plan aliases dst's
// matrices, so callers that retain plans across replans must pass a
// fresh dst per call and reuse only the Scratch (the framework does
// exactly this).
func GlobalOptimizeInto(dst *Plan, pred bwmatrix.Matrix, opts Options, s *Scratch) {
	opts = opts.withDefaults()
	n := pred.N()
	if n == 0 {
		*dst = Plan{}
		return
	}
	if opts.SkewWeights != nil && len(opts.SkewWeights) != n {
		panic(fmt.Sprintf("optimize: %d skew weights for %d DCs", len(opts.SkewWeights), n))
	}
	if opts.RVec != nil && opts.RVec.N() != n {
		panic(fmt.Sprintf("optimize: rvec is %dx%d, want %dx%d", opts.RVec.N(), opts.RVec.N(), n, n))
	}

	var bw bwmatrix.Matrix
	if s != nil {
		if s.bw.N() != n {
			s.bw = bwmatrix.New(n)
		}
		bw = s.bw
		for i := range pred {
			copy(bw[i], pred[i])
		}
	} else {
		bw = pred.Clone()
	}
	diag := bw.MaxOffDiagonal()*1.5 + 10*opts.D
	for i := 0; i < n; i++ {
		bw[i][i] = diag
	}
	rel := InferDCRelationsInto(dst.DCRel, bw, opts.D, s)

	// Eq. 2.
	sumAll := 0
	var maxR []int
	if s != nil {
		if cap(s.maxR) < n {
			s.maxR = make([]int, n)
		}
		maxR = s.maxR[:n]
		clear(maxR)
	} else {
		maxR = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sumAll += rel[i][j]
			if rel[i][j] > maxR[i] {
				maxR[i] = rel[i][j]
			}
		}
	}
	sumAll -= n // skip closeness index 1 on the diagonal

	var ws []float64
	if s != nil {
		if cap(s.ws) < n {
			s.ws = make([]float64, n)
		}
		ws = normalizedWeightsInto(s.ws[:n], opts.SkewWeights)
	} else {
		ws = normalizedWeightsInto(make([]float64, n), opts.SkewWeights)
	}

	if dst.MinConns.N() != n {
		dst.MinConns = bwmatrix.NewConn(n)
		dst.MaxConns = bwmatrix.NewConn(n)
		dst.MinBW = bwmatrix.New(n)
		dst.MaxBW = bwmatrix.New(n)
	}
	plan := Plan{
		DCRel:    rel,
		MinConns: dst.MinConns,
		MaxConns: dst.MaxConns,
		MinBW:    dst.MinBW,
		MaxBW:    dst.MaxBW,
	}
	m := float64(opts.M)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Skew weights apply source-side: a data-intensive DC is a
			// shuffle *source* ("data locality-aware task assignment
			// creates large-scale intermediate data in skewed DCs,
			// demanding higher network capacities in shuffle stages",
			// §3.3.1), so its outgoing links get extra connections.
			// The boost is one-sided: data-poor DCs keep their plain
			// window rather than being starved below it — their residual
			// traffic still needs at least the un-skewed connections,
			// and the AIMD agents shed any excess at runtime.
			wsPair := math.Max(1, ws[i])
			var minC, maxC int
			if i == j {
				minC, maxC = 1, 1
			} else {
				cand := int(math.Floor(float64(rel[i][j]) / float64(sumAll) * (m - 1)))
				minC = clampConns(float64(max(cand, 1))*wsPair, opts.M)
				maxC = clampConns(math.Ceil(m*float64(rel[i][j])/float64(maxR[i]))*wsPair, opts.M)
				if maxC < minC {
					maxC = minC
				}
			}
			plan.MinConns[i][j] = minC
			plan.MaxConns[i][j] = maxC
			rv := 1.0
			if opts.RVec != nil {
				rv = opts.RVec[i][j]
			}
			if i != j {
				plan.MinBW[i][j] = pred[i][j] * float64(minC) * rv
				plan.MaxBW[i][j] = pred[i][j] * float64(maxC) * rv
			}
		}
	}
	*dst = plan
}

// clampConns rounds a (possibly skew-scaled) connection count to an
// integer in [1, M]: M is the hard per-pair cap ("the maximum parallel
// connections from a VM in a given DC is limited, and increasing
// connections beyond this optimal threshold causes performance
// degradation", §3.2.1), so skew re-allocation redistributes headroom
// below M rather than stacking connections past the congestion knee.
func clampConns(v float64, m int) int {
	c := int(math.Round(v))
	if c < 1 {
		c = 1
	}
	if c > m {
		c = m
	}
	return c
}

// normalizedWeightsInto writes ws normalized to mean 1 into out
// (uniform when ws is nil or degenerate) and returns it.
func normalizedWeightsInto(out []float64, ws []float64) []float64 {
	n := len(out)
	if ws == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	total := 0.0
	for _, w := range ws {
		if w < 0 {
			w = 0
		}
		total += w
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	mean := total / float64(n)
	for i, w := range ws {
		if w < 0 {
			w = 0
		}
		out[i] = w / mean
	}
	return out
}

// RefactorFromProviders builds the refactoring matrix rvec of §3.3.3
// for a multi-cloud deployment: the paper observes that bandwidths
// "between such providers and machine types vary proportionally", so
// cross-provider pairs are scaled by the geometric mean of the two
// providers' factors. providerFactor maps provider names (geo.Region
// Provider values) to their relative WAN efficiency; absent providers
// default to 1.
func RefactorFromProviders(providers []string, providerFactor map[string]float64) bwmatrix.Matrix {
	n := len(providers)
	f := func(p string) float64 {
		if v, ok := providerFactor[p]; ok && v > 0 {
			return v
		}
		return 1
	}
	out := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i][j] = math.Sqrt(f(providers[i]) * f(providers[j]))
		}
	}
	return out
}

// ThrottleThresholds returns, per source DC, the throttling threshold T
// of §3.2.2: the mean of achievable (max) bandwidths from that DC.
// Local agents cap links richer than T at T so nearby DCs cannot
// consume the bulk of the network.
func ThrottleThresholds(maxBW bwmatrix.Matrix) []float64 {
	n := maxBW.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum, cnt := 0.0, 0
		for j := 0; j < n; j++ {
			if i != j {
				sum += maxBW[i][j]
				cnt++
			}
		}
		if cnt > 0 {
			out[i] = sum / float64(cnt)
		}
	}
	return out
}

// SplitAcrossVMs distributes a DC-level connection count over k VMs
// (the chunking step of association, §3.3.3): results are
// proportionally chunked so each worker runs its share of the pool.
// The returned slice has k entries summing to conns, each at least 1
// when conns >= k.
func SplitAcrossVMs(conns, k int) []int {
	if k <= 0 {
		return nil
	}
	out := make([]int, k)
	base := conns / k
	rem := conns % k
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// AggregateByDC sums a VM-level bandwidth matrix into a DC-level matrix
// given the DC index of each VM — the "association" of §3.3.3 ("BWs are
// summed to reflect the combined BW of a DC").
func AggregateByDC(vmBW bwmatrix.Matrix, dcOfVM []int, numDCs int) bwmatrix.Matrix {
	if vmBW.N() != len(dcOfVM) {
		panic(fmt.Sprintf("optimize: %dx%d VM matrix with %d DC mappings", vmBW.N(), vmBW.N(), len(dcOfVM)))
	}
	out := bwmatrix.New(numDCs)
	for i := range vmBW {
		for j := range vmBW[i] {
			di, dj := dcOfVM[i], dcOfVM[j]
			if di != dj {
				out[di][dj] += vmBW[i][j]
			}
		}
	}
	return out
}
