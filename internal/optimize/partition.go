package optimize

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
)

// ShareMode selects how a global plan's per-pair connection windows and
// achievable-BW targets split across concurrent jobs sharing the
// cluster. The WAN the paper gauges is shared infrastructure — the
// whole reason achievable bandwidth shifts at runtime — so when the
// sharing tenants are *our own* jobs, the global optimizer's windows
// become a budget to divide rather than a window each job may fill.
type ShareMode int

// Sharing policies.
const (
	// ShareFair splits every pair's window evenly across jobs.
	ShareFair ShareMode = iota
	// SharePriority splits windows proportional to static per-job
	// priorities (higher priority, more connections).
	SharePriority
	// ShareRemaining splits windows proportional to each job's
	// remaining bytes, so almost-done jobs release capacity to the
	// jobs that still need it (shortest-remaining-first in spirit).
	ShareRemaining
)

// String names the mode (the -share flag values of cmd/wanify-sim).
func (m ShareMode) String() string {
	switch m {
	case SharePriority:
		return "priority"
	case ShareRemaining:
		return "remaining"
	default:
		return "fair"
	}
}

// ParseShareMode resolves a -share flag value.
func ParseShareMode(s string) (ShareMode, error) {
	switch s {
	case "", "fair":
		return ShareFair, nil
	case "priority":
		return SharePriority, nil
	case "remaining":
		return ShareRemaining, nil
	default:
		return ShareFair, fmt.Errorf("optimize: unknown share mode %q (want fair, priority or remaining)", s)
	}
}

// ShareWeights turns a mode plus per-job attributes into the positive
// weight vector PartitionPlan consumes. priorities and remainingBytes
// may be nil (or degenerate: all zero), in which case the split is
// even; jobs with zero remaining bytes under ShareRemaining keep a
// vanishing weight rather than zero so the largest-remainder split
// still hands them slots only when every needy job is served.
func ShareWeights(mode ShareMode, jobs int, priorities, remainingBytes []float64) []float64 {
	w := make([]float64, jobs)
	for i := range w {
		w[i] = 1
	}
	pick := func(src []float64) {
		if len(src) != jobs {
			return
		}
		total := 0.0
		for _, v := range src {
			if v > 0 {
				total += v
			}
		}
		if total <= 0 {
			return
		}
		for i, v := range src {
			w[i] = math.Max(v, total*1e-9)
		}
	}
	switch mode {
	case SharePriority:
		pick(priorities)
	case ShareRemaining:
		pick(remainingBytes)
	}
	return w
}

// SplitProportional divides total integer units across positive weights
// using the largest-remainder method: shares sum exactly to total, and
// ties break toward the lowest index so the split is deterministic.
// Non-positive weights receive units only after every positive weight's
// remainder is exhausted.
func SplitProportional(total int, weights []float64) []int {
	k := len(weights)
	out := make([]int, k)
	if k == 0 || total <= 0 {
		return out
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		// Degenerate: behave as an even split.
		for i := range out {
			out[i] = total / k
			if i < total%k {
				out[i]++
			}
		}
		return out
	}
	given := 0
	rem := make([]float64, k)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(total) * w / sum
		out[i] = int(math.Floor(exact))
		rem[i] = exact - float64(out[i])
		given += out[i]
	}
	for given < total {
		best := -1
		for i := 0; i < k; i++ {
			if best == -1 || rem[i] > rem[best]+1e-12 {
				best = i
			}
		}
		out[best]++
		rem[best] = -1 // each job gets at most one remainder unit per lap
		given++
	}
	return out
}

// PartitionPlan splits a global plan into one plan per job, weighted by
// the given (positive) shares — the §3.3 association idea turned
// job-wise: the DC pair's [minCons, maxCons] window and achievable-BW
// targets are a cluster-level budget, and each concurrent job receives
// the slice its weight earns. Invariants (locked by partition_test.go):
//
//   - per pair, the jobs' MaxConns sum to exactly the global MaxConns
//     (and MinConns to at most the global MinConns), so concurrent
//     jobs can never oversubscribe the window the optimizer derived;
//   - per pair, the jobs' achievable-BW targets sum to the global
//     targets (same per-connection bandwidth, Eq. 3 linearity);
//   - every job's MinConns ≤ MaxConns, with spare slots going to the
//     lowest-index (highest-weight-first on ties) jobs.
//
// A job whose share of a pair rounds to zero connections gets a zero
// window there: its transfers still open one physical connection (the
// agents' ConnsTo floor), but its AIMD targets stay at the floor so it
// yields the pair to the jobs that own the budget.
func PartitionPlan(plan Plan, shares []float64) []Plan {
	jobs := len(shares)
	if jobs == 0 {
		return nil
	}
	n := len(plan.MinConns)
	parts := make([]Plan, jobs)
	for g := range parts {
		parts[g] = Plan{
			DCRel:    plan.DCRel,
			MinConns: bwmatrix.NewConn(n),
			MaxConns: bwmatrix.NewConn(n),
			MinBW:    bwmatrix.New(n),
			MaxBW:    bwmatrix.New(n),
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				// Intra-DC slots are not a WAN budget; every job keeps
				// the conventional single connection.
				for g := range parts {
					parts[g].MinConns[i][j] = plan.MinConns[i][j]
					parts[g].MaxConns[i][j] = plan.MaxConns[i][j]
				}
				continue
			}
			minC, maxC := plan.MinConns[i][j], plan.MaxConns[i][j]
			minParts := SplitProportional(minC, shares)
			maxParts := SplitProportional(maxC, shares)
			// Per-connection achievable bandwidth (Eq. 3 is linear in the
			// connection count, so the global targets recover by scaling).
			perConnMin, perConnMax := 0.0, 0.0
			if minC > 0 {
				perConnMin = plan.MinBW[i][j] / float64(minC)
			}
			if maxC > 0 {
				perConnMax = plan.MaxBW[i][j] / float64(maxC)
			}
			for g := range parts {
				lo, hi := minParts[g], maxParts[g]
				if lo > hi {
					// Rounding can hand a job its min slot on a pair where
					// its max share rounded lower; the window stays
					// consistent by ceding the min slot (the sum-cap
					// invariant binds on MaxConns).
					lo = hi
				}
				parts[g].MinConns[i][j] = lo
				parts[g].MaxConns[i][j] = hi
				parts[g].MinBW[i][j] = perConnMin * float64(lo)
				parts[g].MaxBW[i][j] = perConnMax * float64(hi)
			}
		}
	}
	return parts
}
