package optimize

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
)

func TestSplitProportionalConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		total := rng.Intn(20)
		w := make([]float64, k)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		parts := SplitProportional(total, w)
		sum := 0
		for _, p := range parts {
			if p < 0 {
				t.Fatalf("negative share %v for total=%d weights=%v", parts, total, w)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("shares %v sum to %d, want %d (weights %v)", parts, sum, total, w)
		}
	}
}

func TestSplitProportionalDeterministicTies(t *testing.T) {
	a := SplitProportional(3, []float64{1, 1})
	if a[0] != 2 || a[1] != 1 {
		t.Fatalf("tie should break toward the lowest index, got %v", a)
	}
	b := SplitProportional(1, []float64{1, 1, 1})
	if b[0] != 1 || b[1] != 0 || b[2] != 0 {
		t.Fatalf("single slot should land on job 0, got %v", b)
	}
}

func TestSplitProportionalDegenerateWeights(t *testing.T) {
	got := SplitProportional(5, []float64{0, 0, 0})
	if got[0]+got[1]+got[2] != 5 {
		t.Fatalf("zero weights should fall back to an even split, got %v", got)
	}
}

// randomPlan builds a structurally valid plan over n DCs.
func randomPlan(n int, m int, rng *rand.Rand) Plan {
	pred := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pred[i][j] = 50 + rng.Float64()*900
			}
		}
	}
	return GlobalOptimize(pred, Options{M: m})
}

// TestPartitionPlanInvariants is the multi-tenant safety property the
// issue demands: per-pair connection windows partitioned across jobs
// never exceed the global window, and the achievable-BW targets sum
// back to the global targets.
func TestPartitionPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		plan := randomPlan(n, 2+rng.Intn(7), rng)
		jobs := 1 + rng.Intn(4)
		w := make([]float64, jobs)
		for g := range w {
			w[g] = 0.2 + rng.Float64()*5
		}
		parts := PartitionPlan(plan, w)
		if len(parts) != jobs {
			t.Fatalf("got %d parts for %d jobs", len(parts), jobs)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				sumMin, sumMax := 0, 0
				sumMinBW, sumMaxBW := 0.0, 0.0
				for g := range parts {
					p := parts[g]
					if p.MinConns[i][j] > p.MaxConns[i][j] {
						t.Fatalf("job %d pair (%d,%d): min %d > max %d",
							g, i, j, p.MinConns[i][j], p.MaxConns[i][j])
					}
					if p.MinConns[i][j] < 0 {
						t.Fatalf("job %d pair (%d,%d): negative window", g, i, j)
					}
					sumMin += p.MinConns[i][j]
					sumMax += p.MaxConns[i][j]
					sumMinBW += p.MinBW[i][j]
					sumMaxBW += p.MaxBW[i][j]
				}
				if sumMax != plan.MaxConns[i][j] {
					t.Fatalf("pair (%d,%d): job MaxConns sum %d != global %d",
						i, j, sumMax, plan.MaxConns[i][j])
				}
				if sumMin > plan.MinConns[i][j] {
					t.Fatalf("pair (%d,%d): job MinConns sum %d exceeds global %d",
						i, j, sumMin, plan.MinConns[i][j])
				}
				if math.Abs(sumMaxBW-plan.MaxBW[i][j]) > 1e-6*math.Max(1, plan.MaxBW[i][j]) {
					t.Fatalf("pair (%d,%d): job MaxBW sum %.6f != global %.6f",
						i, j, sumMaxBW, plan.MaxBW[i][j])
				}
				if sumMinBW > plan.MinBW[i][j]*(1+1e-9)+1e-9 {
					t.Fatalf("pair (%d,%d): job MinBW sum %.6f exceeds global %.6f",
						i, j, sumMinBW, plan.MinBW[i][j])
				}
			}
		}
	}
}

func TestPartitionPlanPriorityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plan := randomPlan(4, 8, rng)
	parts := PartitionPlan(plan, ShareWeights(SharePriority, 2, []float64{3, 1}, nil))
	richer, poorer := 0, 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			richer += parts[0].MaxConns[i][j]
			poorer += parts[1].MaxConns[i][j]
		}
	}
	if richer <= poorer {
		t.Fatalf("priority 3 job got %d total conns, priority 1 job %d", richer, poorer)
	}
}

func TestShareWeights(t *testing.T) {
	if w := ShareWeights(ShareFair, 3, nil, nil); w[0] != 1 || w[1] != 1 || w[2] != 1 {
		t.Fatalf("fair weights = %v", w)
	}
	w := ShareWeights(ShareRemaining, 2, nil, []float64{0, 5e9})
	if w[0] <= 0 {
		t.Fatalf("drained job must keep a positive (vanishing) weight, got %v", w)
	}
	if w[0] >= w[1]/1000 {
		t.Fatalf("drained job should weigh vanishingly little, got %v", w)
	}
	// Mismatched attribute length falls back to fair.
	if w := ShareWeights(SharePriority, 2, []float64{1, 2, 3}, nil); w[0] != 1 || w[1] != 1 {
		t.Fatalf("mismatched priorities should fall back to fair, got %v", w)
	}
}

func TestParseShareMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ShareMode
	}{{"", ShareFair}, {"fair", ShareFair}, {"priority", SharePriority}, {"remaining", ShareRemaining}} {
		got, err := ParseShareMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseShareMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseShareMode("lottery"); err == nil {
		t.Fatal("unknown mode should error")
	}
}
