package optimize

import "github.com/wanify/wanify/internal/simrand"

// newTestRand adapts arbitrary (possibly negative) quick.Check seeds to
// a deterministic stream.
func newTestRand(seed int64) *simrand.Source {
	return simrand.New(uint64(seed), 0x9e3779b97f4a7c15)
}
