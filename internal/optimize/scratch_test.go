package optimize

import (
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/simrand"
)

// randomPred builds a prediction matrix with clustered bandwidth
// levels, exact ties and near-ties around the D threshold — the inputs
// relation inference is sensitive to.
func randomPred(n int, seed uint64) bwmatrix.Matrix {
	rng := simrand.Derive(seed, "opt-scratch")
	levels := []float64{80, 250, 600, 1100}
	m := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			base := levels[rng.IntN(len(levels))]
			switch rng.IntN(4) {
			case 0:
				m[i][j] = base // exact tie
			case 1:
				m[i][j] = base + 1e-9 // sub-epsilon duplicate
			case 2:
				m[i][j] = base + DefaultD*0.9 // inside the D filter
			default:
				m[i][j] = base + rng.Uniform(-20, 20)
			}
		}
	}
	return m
}

// requirePlansEqual compares two plans entry for entry (bit-exact).
func requirePlansEqual(t *testing.T, a, b Plan, label string) {
	t.Helper()
	n := len(a.DCRel)
	if len(b.DCRel) != n {
		t.Fatalf("%s: DCRel size %d vs %d", label, n, len(b.DCRel))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.DCRel[i][j] != b.DCRel[i][j] {
				t.Fatalf("%s: DCRel[%d][%d] %d vs %d", label, i, j, a.DCRel[i][j], b.DCRel[i][j])
			}
			if a.MinConns[i][j] != b.MinConns[i][j] || a.MaxConns[i][j] != b.MaxConns[i][j] {
				t.Fatalf("%s: conns[%d][%d] (%d,%d) vs (%d,%d)", label, i, j,
					a.MinConns[i][j], a.MaxConns[i][j], b.MinConns[i][j], b.MaxConns[i][j])
			}
			if a.MinBW[i][j] != b.MinBW[i][j] || a.MaxBW[i][j] != b.MaxBW[i][j] {
				t.Fatalf("%s: BW[%d][%d] (%v,%v) vs (%v,%v)", label, i, j,
					a.MinBW[i][j], a.MaxBW[i][j], b.MinBW[i][j], b.MaxBW[i][j])
			}
		}
	}
}

// TestGlobalOptimizeIntoMatchesPlain locks the scratch path's outputs
// against the allocating path across sizes, options and reuse: a dirty
// reused dst from a different problem must not leak into the result.
func TestGlobalOptimizeIntoMatchesPlain(t *testing.T) {
	var s Scratch
	var reused Plan
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 4; trial++ {
			pred := randomPred(n, uint64(n*10+trial))
			opts := Options{}
			if trial%2 == 1 {
				ws := make([]float64, n)
				for i := range ws {
					ws[i] = float64(i + 1)
				}
				opts.SkewWeights = ws
			}
			if trial%3 == 2 {
				opts.RVec = bwmatrix.NewFilled(n, 0.95)
			}
			want := GlobalOptimize(pred, opts)
			GlobalOptimizeInto(&reused, pred, opts, &s)
			requirePlansEqual(t, reused, want, "into-vs-plain")

			rel := InferDCRelationsInto(nil, pred, DefaultD, &s)
			relPlain := InferDCRelations(pred, DefaultD)
			for i := range rel {
				for j := range rel[i] {
					if rel[i][j] != relPlain[i][j] {
						t.Fatalf("n=%d trial=%d: InferDCRelationsInto[%d][%d] %d vs %d",
							n, trial, i, j, rel[i][j], relPlain[i][j])
					}
				}
			}
		}
	}
}

// TestGlobalOptimizeIntoSteadyStateAllocs checks the replan hot path
// reaches zero allocations once dst and scratch are warm.
func TestGlobalOptimizeIntoSteadyStateAllocs(t *testing.T) {
	pred := randomPred(8, 3)
	var s Scratch
	var dst Plan
	GlobalOptimizeInto(&dst, pred, Options{}, &s) // warm
	avg := testing.AllocsPerRun(50, func() {
		GlobalOptimizeInto(&dst, pred, Options{}, &s)
	})
	if avg != 0 {
		t.Fatalf("GlobalOptimizeInto allocates %.1f times per warm call, want 0", avg)
	}
}
