// Package spark is a minimal geo-distributed analytics engine — the
// Spark stand-in that hosts WANify in this reproduction. It models what
// the paper's evaluation actually measures: jobs as chains of stages,
// stage placement as a fraction of tasks per DC, hash-partitioned
// all-to-all shuffles whose bytes move over the netsim WAN, compute
// time scaled by per-DC capacity, and itemized job cost.
//
// The engine is deliberately policy-free: a gda.Scheduler decides where
// tasks run (based on whatever bandwidth matrix it believes), and a
// ConnPolicy decides how many parallel connections each transfer opens
// (single connection for vanilla systems, agent-managed heterogeneous
// pools under WANify). Everything the paper varies is injected.
package spark

import "fmt"

// StageKind distinguishes how a stage's input reaches its tasks.
type StageKind int

const (
	// MapKind stages read bulk input: only the imbalance between the
	// current data layout and the task placement moves over the WAN
	// (input migration). A locality-aligned placement moves nothing.
	MapKind StageKind = iota
	// ReduceKind stages consume hash-partitioned intermediate data:
	// every source DC sends every destination DC its share, the
	// all-to-all shuffle of §2.1.
	ReduceKind
)

// String names the kind.
func (k StageKind) String() string {
	if k == MapKind {
		return "map"
	}
	return "reduce"
}

// Stage describes one stage of a job.
type Stage struct {
	// Name identifies the stage in reports.
	Name string
	// Kind selects migration vs shuffle semantics.
	Kind StageKind
	// SecPerGB is the compute time per GB of stage input on a DC with
	// unit compute rate.
	SecPerGB float64
	// Selectivity is output bytes per input byte.
	Selectivity float64
}

// Job is a chain of stages over a geo-distributed input.
type Job struct {
	// Name identifies the job.
	Name string
	// InputBytes is the initial data layout: bytes resident per DC.
	InputBytes []float64
	// Stages run in order; the first is normally a MapKind stage.
	Stages []Stage
}

// TotalInputBytes returns the job's total input size.
func (j Job) TotalInputBytes() float64 {
	t := 0.0
	for _, b := range j.InputBytes {
		t += b
	}
	return t
}

// Validate checks the job shape against a cluster of n DCs.
func (j Job) Validate(n int) error {
	if len(j.InputBytes) != n {
		return fmt.Errorf("spark: job %q has input for %d DCs, cluster has %d", j.Name, len(j.InputBytes), n)
	}
	if len(j.Stages) == 0 {
		return fmt.Errorf("spark: job %q has no stages", j.Name)
	}
	for _, s := range j.Stages {
		if s.Selectivity < 0 || s.SecPerGB < 0 {
			return fmt.Errorf("spark: job %q stage %q has negative parameters", j.Name, s.Name)
		}
	}
	return nil
}

// Placement is the fraction of a stage's tasks assigned to each DC.
// Entries are non-negative and sum to 1.
type Placement []float64

// Normalize returns a copy scaled to sum to 1 (uniform if degenerate).
func (p Placement) Normalize() Placement {
	out := make(Placement, len(p))
	total := 0.0
	for _, v := range p {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(p))
		}
		return out
	}
	for i, v := range p {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// LocalityPlacement returns the placement proportional to the current
// data layout — vanilla Spark's data-locality preference.
func LocalityPlacement(layout []float64) Placement {
	return Placement(append([]float64(nil), layout...)).Normalize()
}

// UniformPlacement spreads tasks evenly over n DCs.
func UniformPlacement(n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// MatrixScratch holds the reusable interior buffers of the Into matrix
// variants, for callers (the scheduler search, the replan loop) that
// rebuild transfer matrices at high frequency.
type MatrixScratch struct {
	surplus, deficit []float64
}

func (s *MatrixScratch) buffers(n int) (surplus, deficit []float64) {
	if cap(s.surplus) < n {
		s.surplus = make([]float64, n)
		s.deficit = make([]float64, n)
	}
	return s.surplus[:n], s.deficit[:n]
}

// reuseMatrix returns dst zeroed when it already has the right shape,
// or a fresh zero n×n matrix otherwise.
func reuseMatrix(dst [][]float64, n int) [][]float64 {
	if len(dst) != n {
		dst = make([][]float64, n)
		backing := make([]float64, n*n)
		for i := range dst {
			dst[i], backing = backing[:n:n], backing[n:]
		}
		return dst
	}
	for i := range dst {
		row := dst[i]
		for j := range row {
			row[j] = 0
		}
	}
	return dst
}

// MigrationMatrix computes the minimal bulk movement (bytes from i to
// j) that turns the current layout into the target distribution: DCs
// with surplus send, DCs with deficit receive, matched proportionally.
func MigrationMatrix(layout []float64, target Placement) [][]float64 {
	return MigrationMatrixInto(nil, layout, target, nil)
}

// MigrationMatrixInto is MigrationMatrix with caller-owned result and
// scratch buffers: dst is reused when it is already n×n (nil allocates)
// and s, when non-nil, supplies the surplus/deficit temporaries. The
// entries are bit-identical to MigrationMatrix's — the same expressions
// evaluate in the same order.
func MigrationMatrixInto(dst [][]float64, layout []float64, target Placement, s *MatrixScratch) [][]float64 {
	n := len(layout)
	t := reuseMatrix(dst, n)
	total := 0.0
	for _, b := range layout {
		total += b
	}
	if total <= 0 {
		return t
	}
	if s == nil {
		s = &MatrixScratch{}
	}
	surplus, deficit := s.buffers(n)
	var totalDeficit float64
	for i := 0; i < n; i++ {
		want := total * target[i]
		if layout[i] > want {
			surplus[i] = layout[i] - want
			deficit[i] = 0
		} else {
			surplus[i] = 0
			deficit[i] = want - layout[i]
			totalDeficit += deficit[i]
		}
	}
	if totalDeficit <= 0 {
		return t
	}
	for i := 0; i < n; i++ {
		if surplus[i] <= 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if deficit[j] > 0 {
				t[i][j] = surplus[i] * (deficit[j] / totalDeficit)
			}
		}
	}
	return t
}

// ShuffleMatrix computes the all-to-all hash-shuffle transfer: source
// DC i holds layout[i] intermediate bytes, of which the fraction
// target[j] belongs to reduce tasks at DC j. The diagonal (local data)
// is zeroed — it never crosses the WAN.
func ShuffleMatrix(layout []float64, target Placement) [][]float64 {
	return ShuffleMatrixInto(nil, layout, target)
}

// ShuffleMatrixInto is ShuffleMatrix with a caller-owned result matrix,
// reused when already n×n (nil allocates).
func ShuffleMatrixInto(dst [][]float64, layout []float64, target Placement) [][]float64 {
	n := len(layout)
	t := reuseMatrix(dst, n)
	for i := range t {
		for j := 0; j < n; j++ {
			if i != j {
				t[i][j] = layout[i] * target[j]
			}
		}
	}
	return t
}
