package spark

import (
	"testing"

	"github.com/wanify/wanify/internal/simrand"
)

// TestMatrixIntoVariantsMatch locks the Into transfer-matrix variants
// bit-exact against the allocating ones, across shapes and with dirty
// reused buffers (the scheduler search leans on this equality).
func TestMatrixIntoVariantsMatch(t *testing.T) {
	rng := simrand.Derive(17, "spark-into")
	var dst [][]float64
	var scr MatrixScratch
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 5; trial++ {
			layout := make([]float64, n)
			target := make(Placement, n)
			for i := range layout {
				if !rng.Bool(0.2) {
					layout[i] = rng.Uniform(0, 40) * 1e9
				}
				target[i] = rng.Float64()
			}
			target = target.Normalize()
			if trial == 4 {
				// Degenerate cases: empty layout / all-local target.
				for i := range layout {
					layout[i] = 0
				}
			}

			want := MigrationMatrix(layout, target)
			dst = MigrationMatrixInto(dst, layout, target, &scr)
			requireSameMatrix(t, dst, want, "migration", n, trial)

			wantS := ShuffleMatrix(layout, target)
			dst = ShuffleMatrixInto(dst, layout, target)
			requireSameMatrix(t, dst, wantS, "shuffle", n, trial)
		}
	}
}

func requireSameMatrix(t *testing.T, got, want [][]float64, label string, n, trial int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s n=%d trial=%d: %d vs %d rows", label, n, trial, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s n=%d trial=%d: [%d][%d] %v vs %v", label, n, trial, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestMatrixIntoSteadyStateAllocs checks the Into variants are
// allocation-free once the buffers are warm.
func TestMatrixIntoSteadyStateAllocs(t *testing.T) {
	layout := []float64{4e9, 0, 7e9, 1e9, 2e9, 9e9, 3e9, 5e9}
	target := Placement{0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.2, 0.1}
	var scr MatrixScratch
	dst := MigrationMatrixInto(nil, layout, target, &scr)
	avg := testing.AllocsPerRun(50, func() {
		dst = MigrationMatrixInto(dst, layout, target, &scr)
		dst = ShuffleMatrixInto(dst, layout, target)
	})
	if avg != 0 {
		t.Fatalf("Into matrix variants allocate %.1f times per warm call, want 0", avg)
	}
}
