package spark

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *netsim.Sim {
	cfg := netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return netsim.NewSim(cfg)
}

// localitySched is a minimal in-package scheduler for engine tests.
type localitySched struct{}

func (localitySched) Name() string { return "test-locality" }
func (localitySched) Place(_ int, _ Stage, layout []float64) Placement {
	return LocalityPlacement(layout)
}

// TestPlacementNormalize checks normalization semantics.
func TestPlacementNormalize(t *testing.T) {
	p := Placement{2, 0, 2}.Normalize()
	if p[0] != 0.5 || p[1] != 0 || p[2] != 0.5 {
		t.Errorf("normalize = %v", p)
	}
	u := Placement{0, 0}.Normalize()
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Errorf("degenerate normalize = %v, want uniform", u)
	}
	neg := Placement{-1, 1}.Normalize()
	if neg[0] != 0 || neg[1] != 1 {
		t.Errorf("negative entries mishandled: %v", neg)
	}
}

// TestMigrationMatrixMinimal checks migration only moves the imbalance.
func TestMigrationMatrixMinimal(t *testing.T) {
	layout := []float64{100, 0, 0}
	target := Placement{0.5, 0.25, 0.25}
	m := MigrationMatrix(layout, target)
	if m[0][1] != 25 || m[0][2] != 25 {
		t.Errorf("migration = %v", m)
	}
	if m[1][0] != 0 && m[2][0] != 0 {
		t.Error("deficit DCs should not send")
	}
	// Locality placement moves nothing.
	z := MigrationMatrix(layout, LocalityPlacement(layout))
	for i := range z {
		for j := range z[i] {
			if z[i][j] != 0 {
				t.Errorf("locality migration [%d][%d] = %v", i, j, z[i][j])
			}
		}
	}
}

// TestShuffleMatrixAllToAll checks hash-shuffle semantics: every source
// sends every destination its share, local data excluded.
func TestShuffleMatrixAllToAll(t *testing.T) {
	layout := []float64{80, 20, 0}
	target := Placement{0.5, 0.25, 0.25}
	m := ShuffleMatrix(layout, target)
	if m[0][1] != 20 || m[0][2] != 20 {
		t.Errorf("row 0 = %v", m[0])
	}
	if m[1][0] != 10 || m[1][2] != 5 {
		t.Errorf("row 1 = %v", m[1])
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Error("diagonal must be zero (local data is free)")
	}
}

// TestTransferConservation property-checks both transfer builders:
// migration moves exactly the total imbalance; shuffle moves
// layout[i]*(1-target[i]) from each source.
func TestTransferConservation(t *testing.T) {
	f := func(raw [4]uint16, tRaw [4]uint8) bool {
		layout := make([]float64, 4)
		for i, v := range raw {
			layout[i] = float64(v)
		}
		target := make(Placement, 4)
		for i, v := range tRaw {
			target[i] = float64(v) + 1
		}
		target = target.Normalize()
		total := 0.0
		for _, b := range layout {
			total += b
		}
		if total == 0 {
			return true
		}
		// Migration: inflow at each deficit DC equals its deficit.
		mig := MigrationMatrix(layout, target)
		for j := 0; j < 4; j++ {
			in, out := 0.0, 0.0
			for i := 0; i < 4; i++ {
				in += mig[i][j]
				out += mig[j][i]
			}
			want := total*target[j] - layout[j]
			if math.Abs((in-out)-want) > 1e-6*total {
				return false
			}
		}
		// Shuffle: each source exports layout[i] * (1 - target[i]).
		sh := ShuffleMatrix(layout, target)
		for i := 0; i < 4; i++ {
			out := 0.0
			for j := 0; j < 4; j++ {
				out += sh[i][j]
			}
			if math.Abs(out-layout[i]*(1-target[i])) > 1e-6*total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestJobValidate checks shape validation.
func TestJobValidate(t *testing.T) {
	good := Job{Name: "j", InputBytes: []float64{1, 2}, Stages: []Stage{{Name: "s", Selectivity: 1}}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Name: "wrong-n", InputBytes: []float64{1}, Stages: []Stage{{}}},
		{Name: "no-stages", InputBytes: []float64{1, 2}},
		{Name: "neg", InputBytes: []float64{1, 2}, Stages: []Stage{{Selectivity: -1}}},
	}
	for _, j := range bad {
		if err := j.Validate(2); err == nil {
			t.Errorf("job %q accepted", j.Name)
		}
	}
}

// TestEngineRunsSimpleJob executes a two-stage job and checks the
// accounting: non-zero JCT, WAN bytes matching the shuffle, itemized
// cost, stage reports.
func TestEngineRunsSimpleJob(t *testing.T) {
	sim := frozenSim(4, 1)
	eng := NewEngine(sim, cost.DefaultRates())
	job := Job{
		Name:       "smoke",
		InputBytes: []float64{4e9, 4e9, 4e9, 4e9},
		Stages: []Stage{
			{Name: "map", Kind: MapKind, SecPerGB: 2, Selectivity: 0.5},
			{Name: "reduce", Kind: ReduceKind, SecPerGB: 3, Selectivity: 0.1},
		},
	}
	res, err := eng.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	if res.JCTSeconds <= 0 {
		t.Error("zero JCT")
	}
	if len(res.Stages) != 2 {
		t.Fatalf("%d stage reports", len(res.Stages))
	}
	// Map stage under locality moves nothing; reduce shuffles
	// 8 GB x (3/4 cross-DC) = 6 GB.
	if res.Stages[0].WANBytes != 0 {
		t.Errorf("map moved %v bytes under locality", res.Stages[0].WANBytes)
	}
	if math.Abs(res.Stages[1].WANBytes-6e9) > 1e6 {
		t.Errorf("shuffle moved %v bytes, want 6e9", res.Stages[1].WANBytes)
	}
	if res.Cost.ComputeUSD <= 0 || res.Cost.NetworkUSD <= 0 || res.Cost.StorageUSD <= 0 {
		t.Errorf("cost breakdown has zeros: %+v", res.Cost)
	}
	if res.MinShuffleMbps <= 0 {
		t.Error("min shuffle BW not observed")
	}
	// Compute time: map 4 GB/DC x 2 s/GB = 8 s; reduce 2 GB/DC x 3 = 6 s.
	if math.Abs(res.Stages[0].ComputeS-8) > 0.01 {
		t.Errorf("map compute %v s, want 8", res.Stages[0].ComputeS)
	}
	if math.Abs(res.Stages[1].ComputeS-6) > 0.01 {
		t.Errorf("reduce compute %v s, want 6", res.Stages[1].ComputeS)
	}
}

// TestEngineHeterogeneousCompute checks per-DC compute rates gate the
// stage: an extra VM halves a DC's compute time share.
func TestEngineHeterogeneousCompute(t *testing.T) {
	regions := geo.TestbedSubset(2)
	cfg := netsim.Config{
		Regions: regions,
		VMs: [][]substrate.VMSpec{
			{substrate.T2Medium, substrate.T2Medium}, // double compute in DC0
			{substrate.T2Medium},
		},
		Seed: 2, Frozen: true,
	}
	sim := netsim.NewSim(cfg)
	eng := NewEngine(sim, cost.DefaultRates())
	rates := eng.ComputeRates()
	if rates[0] != 2 || rates[1] != 1 {
		t.Fatalf("compute rates %v", rates)
	}
}

// TestConnPolicies checks the three static policies.
func TestConnPolicies(t *testing.T) {
	sim := frozenSim(3, 3)
	if got := (SingleConn{}).Conns(0, 1); got != 1 {
		t.Errorf("single = %d", got)
	}
	if got := (UniformConn{K: 8}).Conns(0, 1); got != 8 {
		t.Errorf("uniform = %d", got)
	}
	if got := (UniformConn{}).Conns(0, 1); got != 1 {
		t.Errorf("uniform zero-K = %d", got)
	}
	m := make([][]int, 3)
	for i := range m {
		m[i] = []int{1, 5, 9}
	}
	fc := FixedConn{Cluster: sim, Matrix: m}
	if got := fc.Conns(sim.FirstVMOfDC(0), 2); got != 9 {
		t.Errorf("fixed = %d", got)
	}
	if got := fc.Conns(sim.FirstVMOfDC(1), 1); got != 1 {
		t.Errorf("fixed same-DC = %d", got)
	}
}

// TestEngineDeterminism checks two identical runs agree exactly.
func TestEngineDeterminism(t *testing.T) {
	run := func() RunResult {
		cfg := netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 77)
		sim := netsim.NewSim(cfg) // fluctuation on
		eng := NewEngine(sim, cost.DefaultRates())
		job := Job{
			Name:       "det",
			InputBytes: []float64{2e9, 2e9, 2e9, 2e9},
			Stages: []Stage{
				{Name: "m", Kind: MapKind, SecPerGB: 1, Selectivity: 1},
				{Name: "r", Kind: ReduceKind, SecPerGB: 1, Selectivity: 0.1},
			},
		}
		res, err := eng.RunJob(job, localitySched{}, UniformConn{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.JCTSeconds != b.JCTSeconds || a.WANBytes != b.WANBytes || a.MinShuffleMbps != b.MinShuffleMbps {
		t.Errorf("runs differ: %.6f/%.6f JCT, %v/%v bytes", a.JCTSeconds, b.JCTSeconds, a.WANBytes, b.WANBytes)
	}
}

// TestEngineRejectsBadJob checks validation wiring.
func TestEngineRejectsBadJob(t *testing.T) {
	sim := frozenSim(3, 4)
	eng := NewEngine(sim, cost.DefaultRates())
	_, err := eng.RunJob(Job{Name: "bad", InputBytes: []float64{1}}, localitySched{}, SingleConn{})
	if err == nil {
		t.Error("bad job accepted")
	}
}

// TestOverlapFetchCompute checks the SDTP-style pipelining option: with
// overlap enabled the stage ends after ~max(transfer, compute) rather
// than their sum, so JCT drops for transfer-and-compute-balanced jobs.
func TestOverlapFetchCompute(t *testing.T) {
	job := Job{
		Name:       "overlap",
		InputBytes: []float64{4e9, 4e9, 4e9, 4e9},
		Stages: []Stage{
			{Name: "m", Kind: MapKind, SecPerGB: 2, Selectivity: 1},
			{Name: "r", Kind: ReduceKind, SecPerGB: 4, Selectivity: 0.1},
		},
	}
	run := func(overlap bool) RunResult {
		sim := frozenSim(4, 9)
		eng := NewEngine(sim, cost.DefaultRates())
		eng.OverlapFetchCompute = overlap
		res, err := eng.RunJob(job, localitySched{}, SingleConn{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	overlapped := run(true)
	if overlapped.JCTSeconds >= plain.JCTSeconds {
		t.Errorf("overlap JCT %.1f not below plain %.1f", overlapped.JCTSeconds, plain.JCTSeconds)
	}
	// The reduce stage's compute (16 GB x 4 s/GB / 4 DCs = 16 s) should
	// be partially hidden behind its shuffle.
	if overlapped.Stages[1].ComputeS >= plain.Stages[1].ComputeS {
		t.Errorf("overlap residual compute %.1f not below plain %.1f",
			overlapped.Stages[1].ComputeS, plain.Stages[1].ComputeS)
	}
}
