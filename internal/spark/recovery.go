package spark

import (
	"fmt"

	"github.com/wanify/wanify/internal/substrate"
)

// RecoveryConfig controls how the engine reacts to substrate faults
// (substrate.Cluster's KillVM / ResetPair). Disabled by default: a
// fault then fails the run with a descriptive error instead of leaving
// it to the transfer watchdog. When enabled, JobSet state machines
// re-enter the transfer phase instead of aborting: failed flows are
// detected through the flow-failure callback, batched for DetectS
// seconds, and their lost bytes re-sent in a recovery wave — from the
// original source when it survives, from its ring replica ((dc+1) mod
// n, replication factor 2 for stage outputs) when the source DC died,
// or re-executed from durable input across the survivors when neither
// holds a copy (charged as extra compute time for stages past the
// first). Everything runs through substrate timers, so recovery is as
// deterministic as the fault schedule that triggered it.
type RecoveryConfig struct {
	// Enabled turns fault recovery on. Off by default: fault-free runs
	// are byte-identical either way, and synchronous RunJob calls are
	// delegated to the (equivalent) JobSet path only when enabled.
	Enabled bool
	// DetectS batches flow failures before launching a recovery wave,
	// modeling the failure-detection latency of a driver heartbeat.
	// Default 1 s.
	DetectS float64
	// MaxWaves caps recovery waves per stage; a stage still losing
	// flows after that many waves aborts the set. Default 8.
	MaxWaves int
}

func (c RecoveryConfig) detectS() float64 {
	if c.DetectS > 0 {
		return c.DetectS
	}
	return 1.0
}

func (c RecoveryConfig) maxWaves() int {
	if c.MaxWaves > 0 {
		return c.MaxWaves
	}
	return 8
}

// flowRec ties a launched flow to its pair bookkeeping so a failure
// can be re-routed: the pair identifies src/dst DCs, bytes the payload
// share this flow carried.
type flowRec struct {
	f     substrate.Flow
	pp    *pendingPair
	bytes float64
}

// aliveDCs reports, per DC, whether at least one of its VMs is alive.
func aliveDCs(sim substrate.Cluster) []bool {
	out := make([]bool, sim.NumDCs())
	for dc := range out {
		for _, vm := range sim.VMsOfDC(dc) {
			if sim.VMAlive(vm) {
				out[dc] = true
				break
			}
		}
	}
	return out
}

func countAlive(alive []bool) int {
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

// aliveVMs returns the DC's living VMs; when every VM is dead it
// returns the full list so callers keep a well-defined (failing) path
// instead of dividing by zero — flows against dead VMs are born failed
// and surface through the failure machinery.
func aliveVMs(sim substrate.Cluster, dc int) []substrate.VMID {
	all := sim.VMsOfDC(dc)
	var alive []substrate.VMID
	for _, vm := range all {
		if sim.VMAlive(vm) {
			alive = append(alive, vm)
		}
	}
	if len(alive) == 0 {
		return all
	}
	return alive
}

// maskPlacement zeroes dead DCs' fractions and renormalizes; if the
// placement put everything on dead DCs it falls back to uniform over
// the survivors. Callers guarantee at least one DC is alive.
func maskPlacement(p Placement, alive []bool) Placement {
	out := make(Placement, len(p))
	sum := 0.0
	for j := range p {
		if alive[j] {
			out[j] = p[j]
			sum += p[j]
		}
	}
	if sum <= 0 {
		uniform := 1.0 / float64(countAlive(alive))
		for j := range out {
			if alive[j] {
				out[j] = uniform
			}
		}
		return out
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// inputWeights distributes re-executed bytes over surviving DCs in
// proportion to the job's durable input layout (uniform over survivors
// when the surviving input is empty).
func inputWeights(js *jobState, alive []bool) []float64 {
	w := make([]float64, len(alive))
	sum := 0.0
	for k, b := range js.run.Job.InputBytes {
		if alive[k] {
			w[k] = b
			sum += b
		}
	}
	if sum <= 0 {
		uniform := 1.0 / float64(countAlive(alive))
		for k := range w {
			if alive[k] {
				w[k] = uniform
			} else {
				w[k] = 0
			}
		}
		return w
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

// armRecs registers the stage's flow-failure handlers. Called after
// the stage's counters are set up: a flow born failed (started against
// a VM that died before launch) fires its handler synchronously from
// inside this call.
func (s *JobSet) armRecs(js *jobState, recs []*flowRec, computeRates []float64) {
	stageIdx := js.stage
	for _, rec := range recs {
		rec := rec
		rec.f.OnFail(func() { s.flowFailed(js, rec, stageIdx, computeRates) })
	}
}

// flowFailed is the flow-failure callback: it settles the flow's
// accounting, and either aborts the set (recovery disabled) or queues
// the loss for the next recovery wave. Failures are batched: the first
// one in a quiet stage schedules one wave DetectS seconds out, and
// later failures ride along.
func (s *JobSet) flowFailed(js *jobState, rec *flowRec, stageIdx int, computeRates []float64) {
	if s.err != nil || js.phase != phaseTransfer || js.stage != stageIdx {
		return
	}
	e := s.eng
	moved := rec.f.TransferredBytes()
	rec.pp.delivered += moved
	rec.pp.failedTransferred += moved
	js.flowsLeft--
	stage := js.run.Job.Stages[js.stage]
	if !e.Recovery.Enabled {
		s.abort(fmt.Errorf("spark: job %q stage %q: flow #%d dc%d->dc%d failed by a fault and recovery is disabled",
			js.run.Job.Name, stage.Name, rec.f.ID(), rec.pp.i, rec.pp.j))
		return
	}
	js.failedRecs = append(js.failedRecs, rec)
	if js.recovering {
		return
	}
	js.recovering = true
	detect := e.Recovery.detectS()
	s.extendDeadline(e.sim.Now() + detect)
	e.sim.After(detect, func(now float64) {
		if s.err != nil || js.phase != phaseTransfer || js.stage != stageIdx {
			return
		}
		s.recoverStage(js, computeRates, now)
	})
}

// recoverStage launches one recovery wave: every batched loss is
// re-routed onto the surviving topology and re-sent. Bytes headed to a
// dead DC are re-spread per the (re-masked) placement; bytes whose
// source DC died come from the ring replica, or are re-executed from
// durable input when the replica died too. The wave's flows carry the
// same failure handlers, so cascading faults trigger further waves up
// to the MaxWaves cap.
func (s *JobSet) recoverStage(js *jobState, computeRates []float64, now float64) {
	e := s.eng
	n := e.sim.NumDCs()
	js.recovering = false
	js.attempts++
	stage := js.run.Job.Stages[js.stage]
	if js.attempts > e.Recovery.maxWaves() {
		s.abort(fmt.Errorf("spark: job %q stage %q: still losing flows after %d recovery waves",
			js.run.Job.Name, stage.Name, e.Recovery.maxWaves()))
		return
	}
	failed := js.failedRecs
	js.failedRecs = nil
	alive := aliveDCs(e.sim)
	if countAlive(alive) == 0 {
		s.abort(fmt.Errorf("spark: job %q: no data center left alive", js.run.Job.Name))
		return
	}

	// A dead destination keeps nothing: re-mask the stage placement onto
	// survivors so the re-routed bytes and the stage's output layout
	// agree about where the data ends up.
	for _, rec := range failed {
		if !alive[rec.pp.j] {
			js.curPlacement = maskPlacement(js.curPlacement, alive)
			break
		}
	}

	makeup := make([][]float64, n)
	for i := range makeup {
		makeup[i] = make([]float64, n)
	}
	reexec := 0.0
	routeFrom := func(srcDC, dst int, b float64) {
		switch {
		case alive[srcDC]:
			makeup[srcDC][dst] += b
		case alive[(srcDC+1)%n]:
			// The ring replica holds a copy of the dead DC's outputs.
			makeup[(srcDC+1)%n][dst] += b
		default:
			// No replica survived: re-execute from durable input.
			for k, wk := range inputWeights(js, alive) {
				if wk > 0 {
					makeup[k][dst] += b * wk
				}
			}
			reexec += b
		}
	}
	route := func(srcDC, dstDC int, b float64) {
		if alive[dstDC] {
			routeFrom(srcDC, dstDC, b)
			return
		}
		for k := 0; k < n; k++ {
			if f := js.curPlacement[k]; f > 0 {
				routeFrom(srcDC, k, b*f)
			}
		}
	}

	for _, rec := range failed {
		pp := rec.pp
		var lost float64
		if alive[pp.j] {
			lost = rec.bytes - rec.f.TransferredBytes()
		} else {
			// Everything this flow carried is void — and, once per pair,
			// so is whatever its sibling flows already delivered there.
			lost = rec.bytes
			if !pp.reclaimed {
				pp.reclaimed = true
				lost += pp.delivered - pp.failedTransferred
			}
		}
		if lost < 1 {
			continue
		}
		js.stLost += lost
		js.stRecovered += lost
		route(pp.i, pp.j, lost)
	}
	if reexec > 0 && js.stage > 0 {
		prev := js.run.Job.Stages[js.stage-1]
		rate := 0.0
		for k := range alive {
			if alive[k] {
				rate += computeRates[k]
			}
		}
		if rate > 0 {
			js.stRecomputeS += reexec / 1e9 * prev.SecPerGB / rate
		}
	}
	js.stWaves++

	flows, pairs, wanBytes, recs := e.launchTransfers(makeup, js.run.Policy, s.transferDone(js, computeRates))
	js.flows = append(js.flows, flows...)
	js.pairs = append(js.pairs, pairs...)
	js.flowsLeft += len(flows)
	js.res.WANBytes += wanBytes
	if len(flows) > 0 {
		s.extendDeadline(now + e.MaxStageTransferS)
		stageIdx := js.stage
		e.sim.After(e.MaxStageTransferS, func(float64) {
			if s.err != nil || js.phase != phaseTransfer || js.stage != stageIdx {
				return
			}
			s.abort(fmt.Errorf("spark: job %q stage %q: recovery wave not drained after %.1fs of simulated time",
				js.run.Job.Name, stage.Name, e.MaxStageTransferS))
		})
		s.armRecs(js, recs, computeRates)
	}
	if js.flowsLeft == 0 && !js.recovering && len(js.failedRecs) == 0 {
		s.finishTransfers(js, computeRates, now)
	}
}

// repairLayout moves stage-input bytes resident at dead DCs onto
// survivors before placement: the ring replica takes over when it
// survives, otherwise the bytes are re-executed from durable input
// across the survivors (charged to the stage's recompute time for
// stages past the first). Runs at every stage boundary when recovery
// is enabled, so DC deaths during a compute phase surface at the next
// stage instead of silently keeping work on a dead DC.
func (s *JobSet) repairLayout(js *jobState, alive []bool, computeRates []float64) {
	n := len(js.layout)
	reexec := 0.0
	for dc := 0; dc < n; dc++ {
		if alive[dc] || js.layout[dc] <= 0 {
			continue
		}
		b := js.layout[dc]
		js.layout[dc] = 0
		js.stLost += b
		js.stRecovered += b
		if r := (dc + 1) % n; alive[r] {
			js.layout[r] += b
			continue
		}
		reexec += b
	}
	if reexec > 0 {
		for k, wk := range inputWeights(js, alive) {
			if wk > 0 {
				js.layout[k] += reexec * wk
			}
		}
		if js.stage > 0 {
			prev := js.run.Job.Stages[js.stage-1]
			rate := 0.0
			for k := range alive {
				if alive[k] {
					rate += computeRates[k]
				}
			}
			if rate > 0 {
				js.stRecomputeS += reexec / 1e9 * prev.SecPerGB / rate
			}
		}
	}
}
