package spark

import (
	"math"
	"strings"
	"testing"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/substrate"
)

// faultJob is a two-stage all-shuffle job: WAN transfers start at t=0,
// so tests can schedule faults mid-transfer without calibrating stage
// boundaries first.
func faultJob(n int, totalBytes float64) Job {
	input := make([]float64, n)
	for i := range input {
		input[i] = totalBytes / float64(n)
	}
	return Job{
		Name:       "faulty",
		InputBytes: input,
		Stages: []Stage{
			{Name: "shuffle-1", Kind: ReduceKind, SecPerGB: 2, Selectivity: 0.5},
			{Name: "shuffle-2", Kind: ReduceKind, SecPerGB: 2, Selectivity: 0.1},
		},
	}
}

func killDC(s interface {
	VMsOfDC(dc int) []substrate.VMID
	KillVM(id substrate.VMID, t float64)
}, dc int, t float64) {
	for _, vm := range s.VMsOfDC(dc) {
		s.KillVM(vm, t)
	}
}

// TestRecoveryDeadDC: a DC dies mid-shuffle; with recovery enabled the
// job completes on the surviving topology — bytes headed to the dead
// DC re-spread over survivors, bytes sourced there re-sent from the
// ring replica — and the byte accounting closes.
func TestRecoveryDeadDC(t *testing.T) {
	job := faultJob(3, 30e9)
	run := func() (RunResult, float64) {
		sim := frozenSim(3, 21)
		eng := NewEngine(sim, cost.DefaultRates())
		eng.Recovery.Enabled = true
		killDC(sim, 2, 5) // mid-shuffle: stage 1 lasts ~20 s
		res, err := eng.RunJob(job, localitySched{}, SingleConn{})
		if err != nil {
			t.Fatalf("recovery-enabled run failed: %v", err)
		}
		return res, float64(sim.ActiveFlows())
	}
	res, active := run()
	if active != 0 {
		t.Errorf("%v flows still active after the job", active)
	}
	if res.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want at least one wave", res.Recoveries)
	}
	if res.LostBytes <= 0 {
		t.Error("no bytes recorded lost despite a DC death mid-shuffle")
	}
	if math.Abs(res.RecoveredBytes-res.LostBytes) > 64 {
		t.Errorf("recovered %.0f != lost %.0f: recovery dropped bytes", res.RecoveredBytes, res.LostBytes)
	}
	if res.RecomputeS != 0 {
		t.Errorf("RecomputeS = %v, want 0 (the replica survived)", res.RecomputeS)
	}
	for si, st := range res.Stages {
		if st.Placement[2] != 0 {
			t.Errorf("stage %d placement still uses the dead DC: %v", si, st.Placement)
		}
	}
	wantOut := 30e9 * 0.5 * 0.1
	if math.Abs(res.OutputBytes-wantOut)/wantOut > 1e-6 {
		t.Errorf("OutputBytes = %.0f, want %.0f: faults broke byte conservation", res.OutputBytes, wantOut)
	}

	// Recovery is as deterministic as the fault schedule that caused it.
	res2, _ := run()
	if res.JCTSeconds != res2.JCTSeconds || res.WANBytes != res2.WANBytes || res.Recoveries != res2.Recoveries {
		t.Errorf("identical faulted runs diverged: JCT %v/%v WAN %v/%v waves %d/%d",
			res.JCTSeconds, res2.JCTSeconds, res.WANBytes, res2.WANBytes, res.Recoveries, res2.Recoveries)
	}
}

// TestRecoveryReexecute: both a source DC and its ring replica die, so
// the lost partitions must be re-executed from durable input — charged
// as extra compute on the survivors.
func TestRecoveryReexecute(t *testing.T) {
	job := faultJob(3, 30e9)

	// Calibrate stage-2's transfer window on a fault-free twin.
	ref := frozenSim(3, 22)
	refEng := NewEngine(ref, cost.DefaultRates())
	refRes, err := refEng.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	st1 := refRes.Stages[0]
	killAt := st1.TransferS + st1.ComputeS + 0.3*refRes.Stages[1].TransferS

	sim := frozenSim(3, 22)
	eng := NewEngine(sim, cost.DefaultRates())
	eng.Recovery.Enabled = true
	killDC(sim, 0, killAt)
	killDC(sim, 1, killAt) // DC 0's replica dies with it
	res, err := eng.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatalf("re-execution run failed: %v", err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want at least one wave", res.Recoveries)
	}
	if res.RecomputeS <= 0 {
		t.Error("RecomputeS = 0: re-executed partitions were not charged")
	}
	last := res.Stages[len(res.Stages)-1]
	if last.Placement[2] != 1 {
		t.Errorf("final placement %v, want everything on the sole survivor", last.Placement)
	}
	wantOut := 30e9 * 0.5 * 0.1
	if math.Abs(res.OutputBytes-wantOut)/wantOut > 1e-6 {
		t.Errorf("OutputBytes = %.0f, want %.0f", res.OutputBytes, wantOut)
	}
}

// TestRecoveryComputePhaseKill: a DC that dies during a compute phase
// fails no flows; the loss surfaces at the next stage boundary, where
// repairLayout moves its resident bytes onto the ring replica.
func TestRecoveryComputePhaseKill(t *testing.T) {
	job := faultJob(3, 30e9)
	ref := frozenSim(3, 23)
	refEng := NewEngine(ref, cost.DefaultRates())
	refRes, err := refEng.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	st1 := refRes.Stages[0]
	killAt := st1.TransferS + 0.5*st1.ComputeS // inside stage 1's compute

	sim := frozenSim(3, 23)
	eng := NewEngine(sim, cost.DefaultRates())
	eng.Recovery.Enabled = true
	killDC(sim, 1, killAt)
	res, err := eng.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatalf("compute-phase kill run failed: %v", err)
	}
	st2 := res.Stages[1]
	if st2.LostBytes <= 0 {
		t.Error("stage 2 recorded no loss from the dead DC's resident bytes")
	}
	if st2.Placement[1] != 0 {
		t.Errorf("stage 2 placement still uses the dead DC: %v", st2.Placement)
	}
	wantOut := 30e9 * 0.5 * 0.1
	if math.Abs(res.OutputBytes-wantOut)/wantOut > 1e-6 {
		t.Errorf("OutputBytes = %.0f, want %.0f", res.OutputBytes, wantOut)
	}
}

// TestPartitionDoesNotTriggerRecovery: a transient partition stalls
// flows without failing them, so recovery must stay quiet and the job
// simply takes longer.
func TestPartitionDoesNotTriggerRecovery(t *testing.T) {
	sim := frozenSim(3, 24)
	eng := NewEngine(sim, cost.DefaultRates())
	eng.Recovery.Enabled = true
	sim.PartitionDC(1, 5, 25)
	res, err := eng.RunJob(faultJob(3, 30e9), localitySched{}, SingleConn{})
	if err != nil {
		t.Fatalf("partitioned run failed: %v", err)
	}
	if res.Recoveries != 0 {
		t.Errorf("Recoveries = %d for a pure partition, want 0", res.Recoveries)
	}
	if res.JCTSeconds < 25 {
		t.Errorf("JCT %.1f < partition end 25: the stall did not bite", res.JCTSeconds)
	}
	if res.LostBytes != 0 {
		t.Errorf("LostBytes = %.0f for a pure partition, want 0", res.LostBytes)
	}
}

// TestRecoveryDisabledFailsFast: without recovery a fault must fail
// the run promptly and descriptively on both execution paths — and
// stop every outstanding flow, so nothing leaks into the substrate.
func TestRecoveryDisabledFailsFast(t *testing.T) {
	// Synchronous RunJob path.
	sim := frozenSim(3, 25)
	eng := NewEngine(sim, cost.DefaultRates())
	killDC(sim, 2, 5)
	_, err := eng.RunJob(faultJob(3, 30e9), localitySched{}, SingleConn{})
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("RunJob error = %v, want a fault-failure error", err)
	}
	if n := sim.ActiveFlows(); n != 0 {
		t.Errorf("RunJob leaked %d active flows after its error", n)
	}

	// Event-driven JobSet path.
	sim2 := frozenSim(3, 25)
	eng2 := NewEngine(sim2, cost.DefaultRates())
	killDC(sim2, 2, 5)
	_, err = eng2.RunJobSet([]JobRun{{Job: faultJob(3, 30e9), Sched: localitySched{}, Policy: SingleConn{}}})
	if err == nil || !strings.Contains(err.Error(), "recovery is disabled") {
		t.Errorf("JobSet error = %v, want the recovery-disabled abort", err)
	}
	if n := sim2.ActiveFlows(); n != 0 {
		t.Errorf("JobSet abort leaked %d active flows", n)
	}
}

// TestRunJobTimeoutStopsFlows is the leak-audit regression for the
// synchronous error path: an AwaitFlows timeout used to return with
// the stalled flows still alive in the substrate, polluting any
// co-tenant's allocator state. Every error path must stop its flows.
func TestRunJobTimeoutStopsFlows(t *testing.T) {
	sim := frozenSim(3, 26)
	eng := NewEngine(sim, cost.DefaultRates())
	eng.MaxStageTransferS = 50
	sim.PartitionDC(1, 0, 1e9) // permanent: flows to/from DC 1 never drain
	_, err := eng.RunJob(faultJob(3, 30e9), localitySched{}, SingleConn{})
	if err == nil {
		t.Fatal("undrainable transfer did not error")
	}
	if !strings.Contains(err.Error(), "pending") {
		t.Errorf("timeout error %q does not name the pending flows", err)
	}
	if n := sim.ActiveFlows(); n != 0 {
		t.Errorf("timeout leaked %d active flows into the substrate", n)
	}
}

// failAtSched behaves like localitySched until stage `at`, where it
// returns a mis-shaped placement and forces the set to abort.
type failAtSched struct{ at int }

func (failAtSched) Name() string { return "fail-at" }
func (f failAtSched) Place(si int, _ Stage, layout []float64) Placement {
	if si >= f.at {
		return Placement{1}
	}
	return LocalityPlacement(layout)
}

// TestJobSetAbortLeakAudit: a job aborting between stages (the compute
// → startStage transition, where its load is already released but its
// phase still says compute) must leave the substrate exactly as the
// co-tenants had it: no flows, and external CPU load untouched.
func TestJobSetAbortLeakAudit(t *testing.T) {
	sim := frozenSim(3, 27)
	eng := NewEngine(sim, cost.DefaultRates())
	const base = 0.4
	for v := 0; v < sim.NumVMs(); v++ {
		sim.SetCPULoad(substrate.VMID(v), base)
	}
	_, err := eng.RunJobSet([]JobRun{
		{Job: faultJob(3, 3e9), Sched: failAtSched{at: 1}, Policy: SingleConn{}},
		{Job: faultJob(3, 30e9), Sched: localitySched{}, Policy: SingleConn{}},
	})
	if err == nil {
		t.Fatal("failing scheduler did not abort the set")
	}
	if n := sim.ActiveFlows(); n != 0 {
		t.Errorf("abort leaked %d active flows", n)
	}
	for v := 0; v < sim.NumVMs(); v++ {
		if got := sim.VMStats(substrate.VMID(v)).CPULoad; math.Abs(got-base) > 1e-9 {
			t.Errorf("VM %d load after abort = %v, want the co-tenant base %v", v, got, base)
		}
	}
}

// TestLoadHoldReleaseIdempotent pins the fix for the double-release
// bug: releasing a job's load twice must not subtract a co-tenant's
// live contribution from the ledger.
func TestLoadHoldReleaseIdempotent(t *testing.T) {
	sim := frozenSim(2, 28)
	eng := NewEngine(sim, cost.DefaultRates())
	s := &JobSet{eng: eng}
	tenant := &jobState{loadDeltas: eng.ledger().uniform(nil, 0.3)}
	victim := &jobState{loadDeltas: eng.ledger().uniform(nil, 0.5)}
	s.holdLoad(tenant)
	s.holdLoad(victim)
	s.releaseLoad(victim)
	s.releaseLoad(victim) // double release: must be inert
	if got := sim.VMStats(0).CPULoad; math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("co-tenant load after double release = %v, want 0.3", got)
	}
	s.releaseLoad(tenant)
	if got := sim.VMStats(0).CPULoad; math.Abs(got) > 1e-9 {
		t.Fatalf("residual load %v after all releases", got)
	}
}

// TestRecoveryEnabledFaultFreeIdentical locks the opt-in contract:
// with no fault in the schedule, enabling recovery changes nothing
// observable — RunJob delegates to the equivalent JobSet path (same
// flows at the same instants, up to clock-advance rounding) and no
// recovery machinery ever engages.
func TestRecoveryEnabledFaultFreeIdentical(t *testing.T) {
	job := faultJob(3, 12e9)
	simA := frozenSim(3, 29)
	engA := NewEngine(simA, cost.DefaultRates())
	want, err := engA.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	simB := frozenSim(3, 29)
	engB := NewEngine(simB, cost.DefaultRates())
	engB.Recovery.Enabled = true
	got, err := engB.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.JCTSeconds-want.JCTSeconds) > 1e-9*want.JCTSeconds || got.WANBytes != want.WANBytes {
		t.Errorf("fault-free recovery run diverged: JCT %v/%v WAN %v/%v",
			got.JCTSeconds, want.JCTSeconds, got.WANBytes, want.WANBytes)
	}
	if got.Recoveries != 0 || got.LostBytes != 0 {
		t.Errorf("fault-free run recorded recovery activity: %d waves, %.0f lost", got.Recoveries, got.LostBytes)
	}
}
