package spark

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/substrate"
)

// Scheduler decides stage placement. Implementations (internal/gda)
// hold whatever bandwidth matrix they believe — statically measured,
// simultaneous, or WANify-predicted — which is the independent variable
// of Tables 1/4 and Figs. 7/8/10/11.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Place returns the task-fraction placement for a stage, given the
	// stage description and the current data layout (bytes per DC).
	Place(stageIdx int, stage Stage, layout []float64) Placement
}

// StageReport describes one executed stage.
type StageReport struct {
	Name      string
	Kind      StageKind
	Placement Placement
	TransferS float64 // WAN transfer (migration or shuffle) duration
	ComputeS  float64 // compute phase duration
	WANBytes  float64 // bytes launched across DCs (including recovery waves)
	PairMbps  [][]float64
	PairBytes [][]float64

	// Fault-recovery accounting (all zero on fault-free runs).
	DeliveredBytes float64 // bytes physically delivered by the stage's flows
	LostBytes      float64 // bytes voided by faults (undelivered or landed on a dead DC)
	RecoveredBytes float64 // bytes re-routed by recovery waves and layout repair
	RecomputeS     float64 // extra compute charged for re-executed partitions
	Recoveries     int     // recovery waves this stage ran
}

// RunResult is the outcome of one job execution.
type RunResult struct {
	Job        string
	Scheduler  string
	JCTSeconds float64
	Stages     []StageReport
	WANBytes   float64
	// MinShuffleMbps is the paper's "minimum BW of the cluster": the
	// lowest per-pair average rate observed across all meaningful
	// (≥1 MB) WAN transfers of the job.
	MinShuffleMbps float64
	Cost           cost.Breakdown
	// Energy is the job's energy/carbon account, itemized like Cost:
	// compute kWh for every VM held over the JCT, network kWh for the
	// WAN bytes moved, each converted to kgCO₂-eq through the grid
	// intensity of the region where the energy was drawn.
	Energy cost.EnergyBreakdown

	// Fault-recovery totals over all stages (zero on fault-free runs).
	LostBytes      float64
	RecoveredBytes float64
	RecomputeS     float64
	Recoveries     int
	// OutputBytes is the job's final resident data volume — input times
	// the product of stage selectivities, conserved through recovery.
	OutputBytes float64
}

// Engine executes jobs on a simulated geo-distributed cluster.
type Engine struct {
	sim   substrate.Cluster
	rates cost.Rates
	loads *loadLedger

	// ComputeLoadDuringTransfer is the CPU load set on worker VMs while
	// shuffles run (serialization/IO work, default 0.3).
	ComputeLoadDuringTransfer float64
	// MaxStageTransferS bounds a single transfer phase in simulated
	// seconds before the engine reports an error (default 6 hours).
	MaxStageTransferS float64
	// OverlapFetchCompute pipelines each stage's computation with its
	// data transfer (SDTP-style [13], "simultaneous data transfer and
	// processing"): the stage ends after max(transfer, compute) instead
	// of their sum, at the price of full CPU load during the transfer
	// (which slows sending, the coupling SDTP has to manage). Default
	// off — plain Spark semantics.
	OverlapFetchCompute bool
	// Recovery controls reaction to substrate faults (see
	// RecoveryConfig). Zero value: disabled, faults fail the run.
	Recovery RecoveryConfig
	// Energy parameterizes the energy/carbon account (NewEngine fills
	// the defaults; zero-value Engines report zero energy).
	Energy cost.EnergyRates
}

// NewEngine builds an engine over a simulator with the given pricing.
func NewEngine(sim substrate.Cluster, rates cost.Rates) *Engine {
	return &Engine{
		sim:                       sim,
		rates:                     rates,
		ComputeLoadDuringTransfer: 0.3,
		MaxStageTransferS:         6 * 3600,
		Energy:                    cost.DefaultEnergyRates(),
	}
}

// Cluster exposes the underlying WAN substrate.
func (e *Engine) Cluster() substrate.Cluster { return e.sim }

// ledger returns the engine's CPU-load ledger, building it on first
// use so zero-value Engines (tests) keep working.
func (e *Engine) ledger() *loadLedger {
	if e.loads == nil {
		e.loads = newLoadLedger(e.sim)
	}
	return e.loads
}

// ComputeRates returns the aggregate compute rate per DC.
func (e *Engine) ComputeRates() []float64 {
	out := make([]float64, e.sim.NumDCs())
	for dc := range out {
		for _, vm := range e.sim.VMsOfDC(dc) {
			out[dc] += e.sim.Spec(vm).ComputeRate
		}
	}
	return out
}

// RunJob executes the job under the given scheduler and connection
// policy, returning timing, bandwidth and cost observations. With
// fault recovery enabled it delegates to the event-driven JobSet path
// (locked bit-identical for a single job), where the recovery state
// machine lives; the synchronous path below fails fast when a fault
// hits one of its flows.
func (e *Engine) RunJob(job Job, sched Scheduler, policy ConnPolicy) (RunResult, error) {
	if e.Recovery.Enabled {
		set, err := NewJobSet(e, []JobRun{{Job: job, Sched: sched, Policy: policy}})
		if err != nil {
			return RunResult{}, err
		}
		out, err := set.Run()
		if err != nil {
			return RunResult{}, err
		}
		return out.Results[0], nil
	}
	n := e.sim.NumDCs()
	if err := job.Validate(n); err != nil {
		return RunResult{}, err
	}
	start := e.sim.Now()
	layout := append([]float64(nil), job.InputBytes...)
	computeRates := e.ComputeRates()

	res := RunResult{Job: job.Name, Scheduler: sched.Name(), MinShuffleMbps: math.Inf(1)}
	for si, stage := range job.Stages {
		p := sched.Place(si, stage, layout).Normalize()
		if len(p) != n {
			return RunResult{}, fmt.Errorf("spark: scheduler %q returned %d fractions for %d DCs", sched.Name(), len(p), n)
		}

		var transfer [][]float64
		if stage.Kind == MapKind {
			transfer = MigrationMatrix(layout, p)
		} else {
			transfer = ShuffleMatrix(layout, p)
		}

		rep := StageReport{Name: stage.Name, Kind: stage.Kind, Placement: p}
		transferS, pairMbps, wanBytes, err := e.executeTransfers(transfer, policy)
		if err != nil {
			return RunResult{}, fmt.Errorf("spark: job %q stage %q: %w", job.Name, stage.Name, err)
		}
		rep.TransferS = transferS
		rep.PairMbps = pairMbps
		rep.PairBytes = transfer
		rep.WANBytes = wanBytes
		res.WANBytes += wanBytes
		for i := range pairMbps {
			for j := range pairMbps[i] {
				if transfer[i][j] >= 1<<20 && pairMbps[i][j] > 0 && pairMbps[i][j] < res.MinShuffleMbps {
					res.MinShuffleMbps = pairMbps[i][j]
				}
			}
		}

		// The stage's input is now distributed per the placement.
		total := 0.0
		for _, b := range layout {
			total += b
		}
		for j := 0; j < n; j++ {
			layout[j] = total * p[j]
		}

		// Compute phase: the stage finishes when its slowest DC does.
		computeS := computeSeconds(stage, layout, computeRates)
		if e.OverlapFetchCompute {
			// The transfer window already processed min(transfer,
			// compute) seconds of work; only the residue remains.
			computeS -= rep.TransferS
			if computeS < 0 {
				computeS = 0
			}
		}
		if computeS > 0 {
			// Shift the compute load in and back out through the ledger:
			// only the load this stage set is restored, so load placed by
			// anything else sharing the cluster survives the stage
			// boundary (see loadLedger).
			deltas := e.computeLoadDeltas(nil, layout)
			e.ledger().shift(1, deltas)
			e.sim.RunFor(computeS)
			e.ledger().shift(-1, deltas)
		}
		rep.ComputeS = computeS
		res.Stages = append(res.Stages, rep)

		for j := 0; j < n; j++ {
			layout[j] *= stage.Selectivity
		}
	}

	res.JCTSeconds = e.sim.Now() - start
	if math.IsInf(res.MinShuffleMbps, 1) {
		res.MinShuffleMbps = 0
	}
	for _, b := range layout {
		res.OutputBytes += b
	}
	res.Cost = e.price(job, res)
	res.Energy = e.energy(res)
	return res, nil
}

// pendingPair tracks one DC pair's transfer within a stage.
type pendingPair struct {
	i, j  int
	bytes float64
	done  float64 // completion time of the pair's last flow
	left  int

	// Fault accounting (recovery machinery; zero when no fault hits).
	delivered         float64 // bytes physically delivered (complete + partial)
	failedTransferred float64 // the part of delivered carried by failed flows
	reclaimed         bool    // dead-destination wastage already re-routed
}

// launchTransfers starts one flow per (source VM, destination DC) pair
// share and returns the started flows plus the per-pair bookkeeping.
// each, when non-nil, runs after every flow completion (after the
// pair's own accounting) — the JobSet runner counts a stage's
// outstanding flows through it; the synchronous RunJob path passes
// nil and waits on the flows instead. recs ties each flow to its pair
// for the recovery machinery; flows are spread over living VMs only
// (identical to the full set when no fault has fired).
func (e *Engine) launchTransfers(transfer [][]float64, policy ConnPolicy, each func()) (flows []substrate.Flow, pairs []*pendingPair, wanBytes float64, recs []*flowRec) {
	n := e.sim.NumDCs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := transfer[i][j]
			if i == j || b < 1 {
				continue
			}
			wanBytes += b
			pp := &pendingPair{i: i, j: j, bytes: b}
			pairs = append(pairs, pp)
			srcVMs := aliveVMs(e.sim, i)
			dstVMs := aliveVMs(e.sim, j)
			// Spread the pair's bytes across source VMs; each source VM
			// sends to one destination VM (round-robin).
			share := b / float64(len(srcVMs))
			for k, src := range srcVMs {
				dst := dstVMs[k%len(dstVMs)]
				conns := policy.Conns(src, j)
				pp.left++
				pair := pp
				f := e.sim.StartFlow(src, dst, conns, share, func() {
					pair.delivered += share
					pair.left--
					if pair.left == 0 {
						pair.done = e.sim.Now()
					}
					if each != nil {
						each()
					}
				})
				policy.Register(f)
				flows = append(flows, f)
				recs = append(recs, &flowRec{f: f, pp: pp, bytes: share})
			}
		}
	}
	return flows, pairs, wanBytes, recs
}

// pairRates converts per-pair completion bookkeeping into the average
// achieved Mbps per DC pair for a transfer phase that began at start.
func pairRates(n int, pairs []*pendingPair, start float64) [][]float64 {
	pairMbps := make([][]float64, n)
	for i := range pairMbps {
		pairMbps[i] = make([]float64, n)
	}
	for _, pp := range pairs {
		d := pp.done - start
		if d > 0 {
			pairMbps[pp.i][pp.j] = pp.bytes * 8 / 1e6 / d
		}
	}
	return pairMbps
}

// computeSeconds is the stage-compute model shared by RunJob and the
// JobSet runner: the stage finishes when its slowest DC does.
func computeSeconds(stage Stage, layout, computeRates []float64) float64 {
	computeS := 0.0
	for j := range layout {
		if layout[j] <= 0 {
			continue
		}
		t := layout[j] / 1e9 * stage.SecPerGB / computeRates[j]
		if t > computeS {
			computeS = t
		}
	}
	return computeS
}

// computeLoadDeltas fills a per-VM load-delta vector for a compute
// phase: 0.9 on every VM of a DC with work, 0 elsewhere.
func (e *Engine) computeLoadDeltas(dst []float64, layout []float64) []float64 {
	if len(dst) != e.sim.NumVMs() {
		dst = make([]float64, e.sim.NumVMs())
	}
	for v := range dst {
		dst[v] = 0
	}
	for j := range layout {
		if layout[j] > 0 {
			for _, vm := range e.sim.VMsOfDC(j) {
				dst[vm] = 0.9
			}
		}
	}
	return dst
}

// transferLoad is the per-VM CPU load applied while a transfer phase
// runs: workers burn some CPU feeding the network — all of it when the
// engine pipelines compute into the transfer window.
func (e *Engine) transferLoad() float64 {
	if e.OverlapFetchCompute {
		return 0.9
	}
	return e.ComputeLoadDuringTransfer
}

// executeTransfers starts one flow per (source VM, destination DC) pair
// share, waits for all to drain, and returns the elapsed time plus the
// per-DC-pair average achieved rates. On any error — timeout or a
// fault-failed flow — every outstanding flow is stopped before
// returning, so a failed synchronous run cannot leak live flows into a
// substrate shared with other tenants.
func (e *Engine) executeTransfers(transfer [][]float64, policy ConnPolicy) (elapsed float64, pairMbps [][]float64, wanBytes float64, err error) {
	n := e.sim.NumDCs()
	start := e.sim.Now()
	flows, pairs, wanBytes, recs := e.launchTransfers(transfer, policy, nil)
	if len(flows) == 0 {
		return 0, pairRates(n, nil, start), 0, nil
	}

	deltas := e.ledger().uniform(nil, e.transferLoad())
	e.ledger().shift(1, deltas)
	err = e.sim.AwaitFlows(e.MaxStageTransferS, flows...)
	e.ledger().shift(-1, deltas)
	if err == nil {
		for _, rec := range recs {
			if rec.f.Failed() {
				err = fmt.Errorf("flow #%d dc%d->dc%d failed by a fault (enable Engine.Recovery to survive faults)",
					rec.f.ID(), rec.pp.i, rec.pp.j)
				break
			}
		}
	}
	if err != nil {
		for _, f := range flows {
			if !f.Done() {
				f.Stop()
			}
		}
		return 0, nil, 0, err
	}
	return e.sim.Now() - start, pairRates(n, pairs, start), wanBytes, nil
}

// price itemizes the job cost: every cluster VM is held for the full
// JCT (compute), cross-DC bytes pay their source region's egress rate
// (network), and the input is stored for the job duration (storage).
func (e *Engine) price(job Job, res RunResult) cost.Breakdown {
	var b cost.Breakdown
	for v := 0; v < e.sim.NumVMs(); v++ {
		b.ComputeUSD += e.rates.ComputeUSD(e.sim.Spec(substrate.VMID(v)), res.JCTSeconds)
	}
	regions := e.sim.Regions()
	for _, st := range res.Stages {
		for i := range st.PairBytes {
			for j := range st.PairBytes[i] {
				if i != j {
					b.NetworkUSD += e.rates.EgressUSD(regions[i], st.PairBytes[i][j])
				}
			}
		}
	}
	b.StorageUSD = e.rates.StorageUSD(job.TotalInputBytes()/1e9, res.JCTSeconds)
	return b
}

// energy itemizes the job's energy/carbon account the way price
// itemizes dollars: every cluster VM draws its attributable watts for
// the full JCT (converted through its own region's grid intensity),
// and cross-DC bytes pay the WAN transport energy at the sender's
// grid — the accounting the carbon-aware placement scorer plans
// against.
func (e *Engine) energy(res RunResult) cost.EnergyBreakdown {
	var b cost.EnergyBreakdown
	regions := e.sim.Regions()
	for v := 0; v < e.sim.NumVMs(); v++ {
		id := substrate.VMID(v)
		kwh := e.Energy.ComputeKWh(e.sim.Spec(id), res.JCTSeconds)
		b.ComputeKWh += kwh
		b.ComputeKgCO2 += kwh * e.Energy.IntensityFor(regions[e.sim.DCOf(id)]) / 1000
	}
	for _, st := range res.Stages {
		for i := range st.PairBytes {
			for j := range st.PairBytes[i] {
				if i != j {
					kwh := e.Energy.NetworkKWh(st.PairBytes[i][j])
					b.NetworkKWh += kwh
					b.NetworkKgCO2 += kwh * e.Energy.IntensityFor(regions[i]) / 1000
				}
			}
		}
	}
	return b
}
