package spark

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/substrate"
)

// Scheduler decides stage placement. Implementations (internal/gda)
// hold whatever bandwidth matrix they believe — statically measured,
// simultaneous, or WANify-predicted — which is the independent variable
// of Tables 1/4 and Figs. 7/8/10/11.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Place returns the task-fraction placement for a stage, given the
	// stage description and the current data layout (bytes per DC).
	Place(stageIdx int, stage Stage, layout []float64) Placement
}

// StageReport describes one executed stage.
type StageReport struct {
	Name      string
	Kind      StageKind
	Placement Placement
	TransferS float64 // WAN transfer (migration or shuffle) duration
	ComputeS  float64 // compute phase duration
	WANBytes  float64 // bytes moved across DCs
	PairMbps  [][]float64
	PairBytes [][]float64
}

// RunResult is the outcome of one job execution.
type RunResult struct {
	Job        string
	Scheduler  string
	JCTSeconds float64
	Stages     []StageReport
	WANBytes   float64
	// MinShuffleMbps is the paper's "minimum BW of the cluster": the
	// lowest per-pair average rate observed across all meaningful
	// (≥1 MB) WAN transfers of the job.
	MinShuffleMbps float64
	Cost           cost.Breakdown
}

// Engine executes jobs on a simulated geo-distributed cluster.
type Engine struct {
	sim   substrate.Cluster
	rates cost.Rates

	// ComputeLoadDuringTransfer is the CPU load set on worker VMs while
	// shuffles run (serialization/IO work, default 0.3).
	ComputeLoadDuringTransfer float64
	// MaxStageTransferS bounds a single transfer phase in simulated
	// seconds before the engine reports an error (default 6 hours).
	MaxStageTransferS float64
	// OverlapFetchCompute pipelines each stage's computation with its
	// data transfer (SDTP-style [13], "simultaneous data transfer and
	// processing"): the stage ends after max(transfer, compute) instead
	// of their sum, at the price of full CPU load during the transfer
	// (which slows sending, the coupling SDTP has to manage). Default
	// off — plain Spark semantics.
	OverlapFetchCompute bool
}

// NewEngine builds an engine over a simulator with the given pricing.
func NewEngine(sim substrate.Cluster, rates cost.Rates) *Engine {
	return &Engine{
		sim:                       sim,
		rates:                     rates,
		ComputeLoadDuringTransfer: 0.3,
		MaxStageTransferS:         6 * 3600,
	}
}

// Cluster exposes the underlying WAN substrate.
func (e *Engine) Cluster() substrate.Cluster { return e.sim }

// ComputeRates returns the aggregate compute rate per DC.
func (e *Engine) ComputeRates() []float64 {
	out := make([]float64, e.sim.NumDCs())
	for dc := range out {
		for _, vm := range e.sim.VMsOfDC(dc) {
			out[dc] += e.sim.Spec(vm).ComputeRate
		}
	}
	return out
}

// RunJob executes the job under the given scheduler and connection
// policy, returning timing, bandwidth and cost observations.
func (e *Engine) RunJob(job Job, sched Scheduler, policy ConnPolicy) (RunResult, error) {
	n := e.sim.NumDCs()
	if err := job.Validate(n); err != nil {
		return RunResult{}, err
	}
	start := e.sim.Now()
	layout := append([]float64(nil), job.InputBytes...)
	computeRates := e.ComputeRates()

	res := RunResult{Job: job.Name, Scheduler: sched.Name(), MinShuffleMbps: math.Inf(1)}
	for si, stage := range job.Stages {
		p := sched.Place(si, stage, layout).Normalize()
		if len(p) != n {
			return RunResult{}, fmt.Errorf("spark: scheduler %q returned %d fractions for %d DCs", sched.Name(), len(p), n)
		}

		var transfer [][]float64
		if stage.Kind == MapKind {
			transfer = MigrationMatrix(layout, p)
		} else {
			transfer = ShuffleMatrix(layout, p)
		}

		rep := StageReport{Name: stage.Name, Kind: stage.Kind, Placement: p}
		transferS, pairMbps, wanBytes, err := e.executeTransfers(transfer, policy)
		if err != nil {
			return RunResult{}, fmt.Errorf("spark: job %q stage %q: %w", job.Name, stage.Name, err)
		}
		rep.TransferS = transferS
		rep.PairMbps = pairMbps
		rep.PairBytes = transfer
		rep.WANBytes = wanBytes
		res.WANBytes += wanBytes
		for i := range pairMbps {
			for j := range pairMbps[i] {
				if transfer[i][j] >= 1<<20 && pairMbps[i][j] > 0 && pairMbps[i][j] < res.MinShuffleMbps {
					res.MinShuffleMbps = pairMbps[i][j]
				}
			}
		}

		// The stage's input is now distributed per the placement.
		total := 0.0
		for _, b := range layout {
			total += b
		}
		for j := 0; j < n; j++ {
			layout[j] = total * p[j]
		}

		// Compute phase: the stage finishes when its slowest DC does.
		computeS := 0.0
		for j := 0; j < n; j++ {
			if layout[j] <= 0 {
				continue
			}
			t := layout[j] / 1e9 * stage.SecPerGB / computeRates[j]
			if t > computeS {
				computeS = t
			}
		}
		if e.OverlapFetchCompute {
			// The transfer window already processed min(transfer,
			// compute) seconds of work; only the residue remains.
			computeS -= rep.TransferS
			if computeS < 0 {
				computeS = 0
			}
		}
		if computeS > 0 {
			for j := 0; j < n; j++ {
				busy := 0.0
				if layout[j] > 0 {
					busy = 0.9
				}
				for _, vm := range e.sim.VMsOfDC(j) {
					e.sim.SetCPULoad(vm, busy)
				}
			}
			e.sim.RunFor(computeS)
			for v := 0; v < e.sim.NumVMs(); v++ {
				e.sim.SetCPULoad(substrate.VMID(v), 0)
			}
		}
		rep.ComputeS = computeS
		res.Stages = append(res.Stages, rep)

		for j := 0; j < n; j++ {
			layout[j] *= stage.Selectivity
		}
	}

	res.JCTSeconds = e.sim.Now() - start
	if math.IsInf(res.MinShuffleMbps, 1) {
		res.MinShuffleMbps = 0
	}
	res.Cost = e.price(job, res)
	return res, nil
}

// executeTransfers starts one flow per (source VM, destination DC) pair
// share, waits for all to drain, and returns the elapsed time plus the
// per-DC-pair average achieved rates.
func (e *Engine) executeTransfers(transfer [][]float64, policy ConnPolicy) (elapsed float64, pairMbps [][]float64, wanBytes float64, err error) {
	n := e.sim.NumDCs()
	pairMbps = make([][]float64, n)
	for i := range pairMbps {
		pairMbps[i] = make([]float64, n)
	}

	type pendingPair struct {
		i, j  int
		bytes float64
		done  float64 // completion time of the pair's last flow
		left  int
	}
	var flows []substrate.Flow
	var pairs []*pendingPair
	start := e.sim.Now()

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := transfer[i][j]
			if i == j || b < 1 {
				continue
			}
			wanBytes += b
			pp := &pendingPair{i: i, j: j, bytes: b}
			pairs = append(pairs, pp)
			srcVMs := e.sim.VMsOfDC(i)
			dstVMs := e.sim.VMsOfDC(j)
			// Spread the pair's bytes across source VMs; each source VM
			// sends to one destination VM (round-robin).
			share := b / float64(len(srcVMs))
			for k, src := range srcVMs {
				dst := dstVMs[k%len(dstVMs)]
				conns := policy.Conns(src, j)
				pp.left++
				pair := pp
				f := e.sim.StartFlow(src, dst, conns, share, func() {
					pair.left--
					if pair.left == 0 {
						pair.done = e.sim.Now()
					}
				})
				policy.Register(f)
				flows = append(flows, f)
			}
		}
	}
	if len(flows) == 0 {
		return 0, pairMbps, 0, nil
	}

	// Workers burn some CPU feeding the network — all of it when the
	// engine pipelines compute into the transfer window.
	load := e.ComputeLoadDuringTransfer
	if e.OverlapFetchCompute {
		load = 0.9
	}
	for v := 0; v < e.sim.NumVMs(); v++ {
		e.sim.SetCPULoad(substrate.VMID(v), load)
	}
	err = e.sim.AwaitFlows(e.MaxStageTransferS, flows...)
	for v := 0; v < e.sim.NumVMs(); v++ {
		e.sim.SetCPULoad(substrate.VMID(v), 0)
	}
	if err != nil {
		return 0, nil, 0, err
	}
	elapsed = e.sim.Now() - start
	for _, pp := range pairs {
		d := pp.done - start
		if d > 0 {
			pairMbps[pp.i][pp.j] = pp.bytes * 8 / 1e6 / d
		}
	}
	return elapsed, pairMbps, wanBytes, nil
}

// price itemizes the job cost: every cluster VM is held for the full
// JCT (compute), cross-DC bytes pay their source region's egress rate
// (network), and the input is stored for the job duration (storage).
func (e *Engine) price(job Job, res RunResult) cost.Breakdown {
	var b cost.Breakdown
	for v := 0; v < e.sim.NumVMs(); v++ {
		b.ComputeUSD += e.rates.ComputeUSD(e.sim.Spec(substrate.VMID(v)), res.JCTSeconds)
	}
	regions := e.sim.Regions()
	for _, st := range res.Stages {
		for i := range st.PairBytes {
			for j := range st.PairBytes[i] {
				if i != j {
					b.NetworkUSD += e.rates.EgressUSD(regions[i], st.PairBytes[i][j])
				}
			}
		}
	}
	b.StorageUSD = e.rates.StorageUSD(job.TotalInputBytes()/1e9, res.JCTSeconds)
	return b
}
