package spark

import (
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/substrate"
)

// ConnPolicy decides how many parallel connections a transfer opens,
// and observes the flows the engine starts so a manager (WANify's
// local agents) can resize them mid-transfer.
type ConnPolicy interface {
	// Conns returns the connection count for a new transfer from srcVM
	// toward dstDC.
	Conns(srcVM substrate.VMID, dstDC int) int
	// Register offers a started flow to the policy; policies without
	// runtime management ignore it.
	Register(f substrate.Flow)
}

// SingleConn is vanilla Spark: one connection per transfer (§2.1,
// "existing GDA systems transfer data among DCs using a single
// connection").
type SingleConn struct{}

// Conns returns 1.
func (SingleConn) Conns(substrate.VMID, int) int { return 1 }

// Register ignores the flow.
func (SingleConn) Register(substrate.Flow) {}

// UniformConn opens the same K connections on every pair — the
// WANify-P baseline of §5.3.1 (the paper uses K=8).
type UniformConn struct{ K int }

// Conns returns K (at least 1).
func (u UniformConn) Conns(substrate.VMID, int) int {
	if u.K < 1 {
		return 1
	}
	return u.K
}

// Register ignores the flow.
func (UniformConn) Register(substrate.Flow) {}

// FixedConn opens a static per-pair connection count from a matrix —
// the "Global only" ablation variant of §5.5, which applies the global
// optimizer's heterogeneous solution without runtime fine-tuning.
type FixedConn struct {
	// Cluster resolves sending VMs to their DCs.
	Cluster substrate.Cluster
	// Matrix is the static DC-pair connection matrix (typically a
	// global-optimization MaxConns).
	Matrix bwmatrix.ConnMatrix
}

// Conns returns the matrix entry for the sending VM's DC.
func (f FixedConn) Conns(srcVM substrate.VMID, dstDC int) int {
	src := f.Cluster.DCOf(srcVM)
	if src == dstDC {
		return 1
	}
	c := f.Matrix[src][dstDC]
	if c < 1 {
		return 1
	}
	return c
}

// Register ignores the flow.
func (FixedConn) Register(substrate.Flow) {}

// AgentConn delegates to WANify local agents: connection counts come
// from the sending VM's Connections Manager, and flows are registered
// so the AIMD loop can resize them as epochs pass.
type AgentConn struct {
	// ByVM maps each sending VM to its local agent. VMs without an
	// agent fall back to a single connection.
	ByVM map[substrate.VMID]*agent.Agent
}

// NewAgentConn builds the policy from a set of agents.
func NewAgentConn(agents []*agent.Agent) AgentConn {
	m := make(map[substrate.VMID]*agent.Agent, len(agents))
	for _, a := range agents {
		if a != nil {
			m[a.VM()] = a
		}
	}
	return AgentConn{ByVM: m}
}

// Conns asks the sending VM's agent.
func (a AgentConn) Conns(srcVM substrate.VMID, dstDC int) int {
	if ag, ok := a.ByVM[srcVM]; ok {
		return ag.ConnsTo(dstDC)
	}
	return 1
}

// Register hands the flow to the sending VM's agent.
func (a AgentConn) Register(f substrate.Flow) {
	if ag, ok := a.ByVM[f.Src()]; ok {
		ag.Register(f)
	}
}
