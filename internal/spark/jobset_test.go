package spark

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/substrate"
)

// testJob is a two-stage job (map + shuffle) sized to run a few
// simulated minutes on the test clusters.
func testJob(name string, n int, totalBytes float64) Job {
	input := make([]float64, n)
	for i := range input {
		input[i] = totalBytes / float64(n)
	}
	return Job{
		Name:       name,
		InputBytes: input,
		Stages: []Stage{
			{Name: "scan", Kind: MapKind, SecPerGB: 4, Selectivity: 1.0},
			{Name: "shuffle", Kind: ReduceKind, SecPerGB: 8, Selectivity: 0.1},
		},
	}
}

// TestConcurrentLoadSurvivesStageBoundary is the regression test for
// the engine.go CPU-load clobber: RunJob used to reset CPU load to 0
// on ALL VMs after each compute phase, erasing load set by anything
// else sharing the cluster. With the load ledger, only the load the
// stage itself set is restored.
func TestConcurrentLoadSurvivesStageBoundary(t *testing.T) {
	sim := frozenSim(3, 1)
	eng := NewEngine(sim, cost.DefaultRates())

	// A co-tenant (another job, a monitoring service) holds 0.4 load on
	// every VM before the job starts.
	const coLoad = 0.4
	for v := 0; v < sim.NumVMs(); v++ {
		sim.SetCPULoad(substrate.VMID(v), coLoad)
	}

	_, err := eng.RunJob(testJob("tenant", 3, 3e9), localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < sim.NumVMs(); v++ {
		if got := sim.VMStats(substrate.VMID(v)).CPULoad; math.Abs(got-coLoad) > 1e-9 {
			t.Fatalf("VM %d load after job = %v, want the co-tenant's %v to survive", v, got, coLoad)
		}
	}
}

// TestLoadLedgerComposesDuringPhases checks the mid-phase composition:
// while the job computes, the substrate sees co-tenant + stage load,
// clamped into [0, 1].
func TestLoadLedgerComposesDuringPhases(t *testing.T) {
	sim := frozenSim(3, 2)
	eng := NewEngine(sim, cost.DefaultRates())
	for v := 0; v < sim.NumVMs(); v++ {
		sim.SetCPULoad(substrate.VMID(v), 0.4)
	}
	// The job's map stage moves nothing (locality on a uniform layout)
	// and computes for exactly 4 s; the shuffle transfer starts at t=4.
	var duringCompute, duringTransfer float64
	sim.After(1.0, func(float64) {
		duringCompute = sim.VMStats(sim.FirstVMOfDC(0)).CPULoad
	})
	sim.After(4.5, func(float64) {
		duringTransfer = sim.VMStats(sim.FirstVMOfDC(0)).CPULoad
	})
	if _, err := eng.RunJob(testJob("tenant", 3, 3e9), localitySched{}, SingleConn{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(duringCompute-1.0) > 1e-9 { // 0.4 + 0.9 clamped to the substrate domain
		t.Fatalf("mid-compute load = %v, want 0.4 + 0.9 clamped to 1", duringCompute)
	}
	want := 0.4 + eng.ComputeLoadDuringTransfer
	if math.Abs(duringTransfer-want) > 1e-9 {
		t.Fatalf("mid-transfer load = %v, want co-tenant 0.4 + transfer %v", duringTransfer, eng.ComputeLoadDuringTransfer)
	}
}

// TestJobSetSingleJobMatchesRunJob locks the equivalence contract: a
// JobSet of one job reproduces RunJob's result exactly (same flows at
// the same instants on an identically-seeded cluster), so the
// single-job path is unchanged by the multi-job machinery.
func TestJobSetSingleJobMatchesRunJob(t *testing.T) {
	job := testJob("solo", 4, 8e9)

	simA := frozenSim(4, 7)
	engA := NewEngine(simA, cost.DefaultRates())
	want, err := engA.RunJob(job, localitySched{}, SingleConn{})
	if err != nil {
		t.Fatal(err)
	}

	simB := frozenSim(4, 7)
	engB := NewEngine(simB, cost.DefaultRates())
	got, err := engB.RunJobSet([]JobRun{{Job: job, Sched: localitySched{}, Policy: SingleConn{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 {
		t.Fatalf("got %d results", len(got.Results))
	}
	r := got.Results[0]
	if r.JCTSeconds != want.JCTSeconds {
		t.Errorf("JCT: jobset %v, runjob %v", r.JCTSeconds, want.JCTSeconds)
	}
	if r.WANBytes != want.WANBytes {
		t.Errorf("WAN bytes: jobset %v, runjob %v", r.WANBytes, want.WANBytes)
	}
	if r.MinShuffleMbps != want.MinShuffleMbps {
		t.Errorf("min BW: jobset %v, runjob %v", r.MinShuffleMbps, want.MinShuffleMbps)
	}
	if len(r.Stages) != len(want.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(r.Stages), len(want.Stages))
	}
	for i := range r.Stages {
		if r.Stages[i].TransferS != want.Stages[i].TransferS {
			t.Errorf("stage %d transfer: %v vs %v", i, r.Stages[i].TransferS, want.Stages[i].TransferS)
		}
		if r.Stages[i].ComputeS != want.Stages[i].ComputeS {
			t.Errorf("stage %d compute: %v vs %v", i, r.Stages[i].ComputeS, want.Stages[i].ComputeS)
		}
	}
	if got.MakespanS != want.JCTSeconds {
		t.Errorf("makespan %v != JCT %v", got.MakespanS, want.JCTSeconds)
	}
}

// TestJobSetContentionAndConservation runs two jobs concurrently and
// checks the multi-tenant physics: WAN bytes are conserved exactly
// (contention changes timing, never volume — every job moves the same
// bytes it moves when running alone), and sharing the WAN cannot make
// either job faster than its solo run.
func TestJobSetContentionAndConservation(t *testing.T) {
	jobs := []Job{testJob("a", 4, 8e9), testJob("b", 4, 6e9)}

	solo := make([]RunResult, len(jobs))
	for i, job := range jobs {
		sim := frozenSim(4, 11)
		eng := NewEngine(sim, cost.DefaultRates())
		r, err := eng.RunJob(job, localitySched{}, SingleConn{})
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = r
	}

	sim := frozenSim(4, 11)
	eng := NewEngine(sim, cost.DefaultRates())
	got, err := eng.RunJobSet([]JobRun{
		{Job: jobs[0], Sched: localitySched{}, Policy: SingleConn{}},
		{Job: jobs[1], Sched: localitySched{}, Policy: SingleConn{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Results {
		if r.WANBytes != solo[i].WANBytes {
			t.Errorf("job %d WAN bytes under contention %v, solo %v (bytes not conserved)",
				i, r.WANBytes, solo[i].WANBytes)
		}
		if r.JCTSeconds < solo[i].JCTSeconds-1e-9 {
			t.Errorf("job %d finished faster under contention (%v) than solo (%v)",
				i, r.JCTSeconds, solo[i].JCTSeconds)
		}
		var stageBytes float64
		for _, st := range r.Stages {
			stageBytes += st.WANBytes
		}
		if math.Abs(stageBytes-r.WANBytes) > 1 {
			t.Errorf("job %d stage bytes %v != job bytes %v", i, stageBytes, r.WANBytes)
		}
	}
	// Genuine contention: at least one job must actually be slower.
	slower := false
	for i, r := range got.Results {
		if r.JCTSeconds > solo[i].JCTSeconds*1.01 {
			slower = true
		}
	}
	if !slower {
		t.Error("two concurrent shuffles showed no contention at all")
	}
}

// TestJobSetStartDelays staggers job entries and checks both the delay
// accounting (JCT measured from the job's own start) and the makespan.
func TestJobSetStartDelays(t *testing.T) {
	sim := frozenSim(3, 5)
	eng := NewEngine(sim, cost.DefaultRates())
	start := sim.Now()
	got, err := eng.RunJobSet([]JobRun{
		{Job: testJob("early", 3, 4e9), Sched: localitySched{}, Policy: SingleConn{}},
		{Job: testJob("late", 3, 4e9), Sched: localitySched{}, Policy: SingleConn{}, StartDelayS: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].JCTSeconds <= 0 || got.Results[1].JCTSeconds <= 0 {
		t.Fatalf("zero JCTs: %+v", got.Results)
	}
	wantMakespan := 60 + got.Results[1].JCTSeconds
	if math.Abs(got.MakespanS-wantMakespan) > 1e-6 && got.MakespanS < wantMakespan {
		t.Errorf("makespan %v, want >= late start + late JCT = %v", got.MakespanS, wantMakespan)
	}
	_ = start
}

// TestJobSetValidates checks construction errors.
func TestJobSetValidates(t *testing.T) {
	sim := frozenSim(3, 1)
	eng := NewEngine(sim, cost.DefaultRates())
	if _, err := eng.RunJobSet(nil); err == nil {
		t.Error("empty set should error")
	}
	bad := testJob("bad", 4, 1e9) // 4-DC job on a 3-DC cluster
	if _, err := eng.RunJobSet([]JobRun{{Job: bad, Sched: localitySched{}}}); err == nil {
		t.Error("mis-shaped job should error")
	}
	if _, err := eng.RunJobSet([]JobRun{{Job: testJob("x", 3, 1e9)}}); err == nil {
		t.Error("missing scheduler should error")
	}
	if _, err := eng.RunJobSet([]JobRun{{Job: testJob("x", 3, 1e9), Sched: localitySched{}, StartDelayS: -1}}); err == nil {
		t.Error("negative delay should error")
	}
}

// TestJobSetRemainingBytes checks the bytes-remaining signal drains to
// zero as jobs finish.
func TestJobSetRemainingBytes(t *testing.T) {
	sim := frozenSim(3, 3)
	eng := NewEngine(sim, cost.DefaultRates())
	js, err := NewJobSet(eng, []JobRun{
		{Job: testJob("a", 3, 4e9), Sched: localitySched{}, Policy: SingleConn{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := js.RemainingBytes()
	if before[0] != 4e9 {
		t.Fatalf("initial remaining = %v, want full input", before)
	}
	var mid []float64
	sim.After(1, func(float64) { mid = js.RemainingBytes() })
	if _, err := js.Run(); err != nil {
		t.Fatal(err)
	}
	if mid == nil || mid[0] <= 0 {
		t.Errorf("mid-run remaining = %v, want positive", mid)
	}
	after := js.RemainingBytes()
	if after[0] != 0 {
		t.Errorf("post-run remaining = %v, want 0", after)
	}
}

// TestJobSetComputeDominatedNotAborted guards the liveness bound: the
// deadline must extend with scheduled compute, so a set whose compute
// time dwarfs MaxStageTransferS (which bounds only transfer phases)
// still completes — exactly as RunJob would.
func TestJobSetComputeDominatedNotAborted(t *testing.T) {
	sim := frozenSim(3, 13)
	eng := NewEngine(sim, cost.DefaultRates())
	eng.MaxStageTransferS = 60 // transfers are quick; compute is not
	job := Job{
		Name:       "crunch",
		InputBytes: []float64{3e9, 3e9, 3e9},
		Stages: []Stage{
			{Name: "think", Kind: MapKind, SecPerGB: 100, Selectivity: 1}, // ~300 s compute, no transfer
			{Name: "mix", Kind: ReduceKind, SecPerGB: 100, Selectivity: 1},
		},
	}
	got, err := eng.RunJobSet([]JobRun{{Job: job, Sched: localitySched{}, Policy: SingleConn{}}})
	if err != nil {
		t.Fatalf("compute-dominated set aborted: %v", err)
	}
	if got.Results[0].JCTSeconds < 300 {
		t.Fatalf("JCT %v, expected several hundred seconds of compute", got.Results[0].JCTSeconds)
	}
}
