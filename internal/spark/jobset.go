package spark

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/substrate"
)

// JobRun binds one job to the scheduler and connection policy it runs
// under inside a JobSet. Policies are per-job on purpose: under WANify
// multi-tenancy each job's agents hold that job's slice of the global
// plan (optimize.PartitionPlan), so its transfers must consult its own
// Connections Managers, not a cluster-wide pool.
type JobRun struct {
	Job    Job
	Sched  Scheduler
	Policy ConnPolicy
	// StartDelayS delays the job's first stage relative to Run (0 =
	// the job enters with the set).
	StartDelayS float64
}

// JobSetResult is the outcome of a concurrent multi-job execution.
type JobSetResult struct {
	// Results holds one RunResult per job, in input order. JCTSeconds
	// is measured from each job's own (possibly delayed) start.
	Results []RunResult
	// MakespanS is the time from Run to the last job's completion.
	MakespanS float64
}

// jobPhase is where a running job currently is.
type jobPhase int8

const (
	phaseWaiting  jobPhase = iota // start delay not reached
	phaseTransfer                 // WAN transfers in flight
	phaseCompute                  // compute timer pending
	phaseDone
)

// jobState is one job's event-driven execution state.
type jobState struct {
	idx       int
	run       JobRun
	layout    []float64
	stage     int
	phase     jobPhase
	startedAt float64

	// Transfer-phase bookkeeping.
	transferStart float64
	pairs         []*pendingPair
	flows         []substrate.Flow
	flowsLeft     int
	curTransfer   [][]float64
	curPlacement  Placement

	// loadDeltas is the job's live CPU-load contribution, held between
	// a phase's shift-in and shift-out. Per job, because concurrent
	// jobs' phases overlap in time. loadHeld marks a live contribution
	// so releases are idempotent (see holdLoad).
	loadDeltas []float64
	loadHeld   bool

	// Fault-recovery state (see recovery.go), reset per stage.
	failedRecs   []*flowRec
	recovering   bool // a recovery wave is scheduled
	attempts     int  // waves run this stage
	stLost       float64
	stRecovered  float64
	stRecomputeS float64
	stWaves      int

	res RunResult
}

// JobSet interleaves N jobs' stages over one engine's shared substrate
// clock — the multi-tenant execution layer. Where RunJob owns the
// clock (AwaitFlows/RunFor between synchronous phases), a JobSet turns
// each job into an event-driven state machine: stage transfers complete
// through flow callbacks, compute phases through substrate timers, and
// the set advances the clock until every machine reaches its end. The
// jobs' transfers therefore genuinely contend — flows of different
// jobs share DC-pair capacity inside the same allocator, and their
// compute loads compose through the engine's load ledger (each job
// sees the TCP slowdown the others' busy CPUs cause, and nobody's
// stage boundary clobbers anybody's load).
//
// Build one with NewJobSet, then call Run. RemainingBytes may be
// polled while Run drives the clock (from substrate callbacks, e.g.
// the re-gauging controller's bytes-remaining share weighting).
type JobSet struct {
	eng    *Engine
	states []*jobState

	startAt  float64
	deadline float64 // liveness bound, extended as phases schedule events
	running  int
	err      error

	// Open-mode state (NewOpenJobSet): an open set accepts Admit and
	// Cancel while an external driver advances the clock, instead of
	// being run to completion over a fixed roster by Run.
	open         bool
	computeRates []float64
	onDone       func(idx int, res RunResult)
}

// NewJobSet validates the jobs against the engine's cluster and
// prepares the runner. Policies default to SingleConn when nil.
func NewJobSet(e *Engine, runs []JobRun) (*JobSet, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("spark: job set needs at least one job")
	}
	n := e.sim.NumDCs()
	s := &JobSet{eng: e}
	for i, run := range runs {
		if err := run.Job.Validate(n); err != nil {
			return nil, err
		}
		if run.Sched == nil {
			return nil, fmt.Errorf("spark: job %q has no scheduler", run.Job.Name)
		}
		if run.Policy == nil {
			run.Policy = SingleConn{}
		}
		if run.StartDelayS < 0 {
			return nil, fmt.Errorf("spark: job %q has negative start delay", run.Job.Name)
		}
		s.states = append(s.states, &jobState{
			idx:    i,
			run:    run,
			layout: append([]float64(nil), run.Job.InputBytes...),
			res: RunResult{
				Job:            run.Job.Name,
				Scheduler:      run.Sched.Name(),
				MinShuffleMbps: math.Inf(1),
			},
		})
	}
	return s, nil
}

// RemainingBytes reports each job's current resident bytes (the data
// its remaining stages still have to process); finished jobs report 0.
// It is an ordinal signal for capacity sharing (optimize.
// ShareRemaining), not a WAN-volume prediction — how much of it will
// actually cross the WAN depends on placements not yet chosen.
func (s *JobSet) RemainingBytes() []float64 {
	out := make([]float64, len(s.states))
	for i, js := range s.states {
		if js.phase == phaseDone {
			continue
		}
		for _, b := range js.layout {
			out[i] += b
		}
	}
	return out
}

// NewOpenJobSet prepares an OPEN job set: one that starts with no jobs
// and accepts Admit (and Cancel) while something else — a serving
// control plane, a test harness — advances the substrate clock. Where
// Run owns the drive loop for a fixed roster, an open set is pure
// event machinery: admissions arm their start events at the current
// instant, jobs run exactly as under Run (same contention, same load
// ledger, same recovery), and completion surfaces through the OnJobDone
// hook instead of a collected result. The per-stage transfer watchdogs
// still bound liveness; the caller polls Err for a failed set.
func NewOpenJobSet(e *Engine) *JobSet {
	return &JobSet{
		eng:          e,
		open:         true,
		startAt:      e.sim.Now(),
		computeRates: e.ComputeRates(),
	}
}

// OnJobDone registers the completion hook an open set calls — within
// the substrate event that finishes the job — with the job's Admit
// index and final result. Canceled jobs do not fire it: the canceller
// already knows.
func (s *JobSet) OnJobDone(fn func(idx int, res RunResult)) { s.onDone = fn }

// Err reports the error that failed the set, nil while it is healthy.
func (s *JobSet) Err() error { return s.err }

// Running reports how many admitted jobs have not yet finished.
func (s *JobSet) Running() int { return s.running }

// Result returns the final result of job idx, with ok false while the
// job is still running (or was canceled mid-flight, leaving partials).
func (s *JobSet) Result(idx int) (RunResult, bool) {
	if idx < 0 || idx >= len(s.states) {
		return RunResult{}, false
	}
	js := s.states[idx]
	return js.res, js.phase == phaseDone
}

// Admit adds a job to an open set at the current simulated instant and
// returns its index (the identity OnJobDone and Cancel use). The job's
// first stage starts after run.StartDelayS, exactly as under Run.
func (s *JobSet) Admit(run JobRun) (int, error) {
	if !s.open {
		return 0, fmt.Errorf("spark: Admit on a closed job set (use NewOpenJobSet)")
	}
	if s.err != nil {
		return 0, fmt.Errorf("spark: job set already failed: %w", s.err)
	}
	e := s.eng
	if err := run.Job.Validate(e.sim.NumDCs()); err != nil {
		return 0, err
	}
	if run.Sched == nil {
		return 0, fmt.Errorf("spark: job %q has no scheduler", run.Job.Name)
	}
	if run.Policy == nil {
		run.Policy = SingleConn{}
	}
	if run.StartDelayS < 0 {
		return 0, fmt.Errorf("spark: job %q has negative start delay", run.Job.Name)
	}
	js := &jobState{
		idx:    len(s.states),
		run:    run,
		layout: append([]float64(nil), run.Job.InputBytes...),
		res: RunResult{
			Job:            run.Job.Name,
			Scheduler:      run.Sched.Name(),
			MinShuffleMbps: math.Inf(1),
		},
	}
	s.states = append(s.states, js)
	s.running++
	now := e.sim.Now()
	e.sim.After(run.StartDelayS, func(at float64) {
		if s.err != nil || js.phase == phaseDone {
			return
		}
		js.startedAt = at
		s.startStage(js, s.computeRates, at)
	})
	s.extendDeadline(now + run.StartDelayS + e.MaxStageTransferS)
	return js.idx, nil
}

// Cancel tears job idx out of an open set at the current instant: its
// in-flight flows stop (delivered bytes stay delivered — substrate
// flows keep their history), its held CPU load releases, and its state
// machine parks on done so every pending timer (compute completion,
// watchdog, recovery wave) finds a finished job and fires inert. The
// job's partial result remains readable via Result-with-ok-false
// semantics; co-tenants are untouched.
func (s *JobSet) Cancel(idx int) error {
	if !s.open {
		return fmt.Errorf("spark: Cancel on a closed job set")
	}
	if idx < 0 || idx >= len(s.states) {
		return fmt.Errorf("spark: cancel of unknown job %d", idx)
	}
	js := s.states[idx]
	if js.phase == phaseDone {
		return fmt.Errorf("spark: job %q already finished", js.run.Job.Name)
	}
	for _, f := range js.flows {
		if !f.Done() {
			f.Stop()
		}
	}
	s.releaseLoad(js)
	js.flows, js.pairs = nil, nil
	js.phase = phaseDone
	s.running--
	return nil
}

// Run executes all jobs concurrently and returns when the last one
// finishes. The first failing job aborts the whole set, stopping every
// outstanding transfer.
func (s *JobSet) Run() (JobSetResult, error) {
	if s.open {
		return JobSetResult{}, fmt.Errorf("spark: Run on an open job set (drive the clock externally)")
	}
	e := s.eng
	s.startAt = e.sim.Now()
	s.running = len(s.states)
	computeRates := e.ComputeRates()

	for _, js := range s.states {
		js := js
		e.sim.After(js.run.StartDelayS, func(now float64) {
			if s.err != nil || js.phase == phaseDone {
				return
			}
			js.startedAt = now
			s.startStage(js, computeRates, now)
		})
	}

	// Drive the shared clock. Every state transition happens inside
	// substrate events at exact instants; the tick only bounds how far
	// the clock runs between liveness checks, so its size does not
	// affect any recorded time. The deadline is a pure liveness bound:
	// every phase extends it past its own scheduled completion (the
	// transfer watchdog or the compute timer), so it trips only if a
	// scheduled event failed to fire — never on a slow-but-progressing
	// set, however compute-dominated.
	const tick = 5.0
	var maxDelay float64
	for _, js := range s.states {
		maxDelay = math.Max(maxDelay, js.run.StartDelayS)
	}
	s.extendDeadline(s.startAt + maxDelay + e.MaxStageTransferS)
	for s.running > 0 && s.err == nil {
		if e.sim.Now() > s.deadline+tick {
			s.abort(fmt.Errorf("spark: job set stalled at t=%.0fs with %d jobs unfinished", e.sim.Now(), s.running))
			break
		}
		e.sim.RunFor(tick)
	}
	if s.err != nil {
		return JobSetResult{}, s.err
	}

	out := JobSetResult{}
	for _, js := range s.states {
		out.Results = append(out.Results, js.res)
		end := js.startedAt + js.res.JCTSeconds
		if m := end - s.startAt; m > out.MakespanS {
			out.MakespanS = m
		}
	}
	return out, nil
}

// extendDeadline pushes the liveness bound to cover an event scheduled
// for time t.
func (s *JobSet) extendDeadline(t float64) {
	if t > s.deadline {
		s.deadline = t
	}
}

// transferDone builds the flow-completion callback counting a stage's
// outstanding flows. The stage's transfer phase ends only when no flow
// is in flight AND no failure is awaiting a recovery wave.
func (s *JobSet) transferDone(js *jobState, computeRates []float64) func() {
	return func() {
		js.flowsLeft--
		if js.flowsLeft == 0 && !js.recovering && len(js.failedRecs) == 0 {
			s.finishTransfers(js, computeRates, s.eng.sim.Now())
		}
	}
}

// startStage places the current stage and launches its WAN transfers;
// with nothing to move it proceeds straight to compute.
func (s *JobSet) startStage(js *jobState, computeRates []float64, now float64) {
	e := s.eng
	n := e.sim.NumDCs()
	if js.stage == len(js.run.Job.Stages) {
		s.finishJob(js, now)
		return
	}
	stage := js.run.Job.Stages[js.stage]
	js.failedRecs, js.recovering, js.attempts = nil, false, 0
	js.stLost, js.stRecovered, js.stRecomputeS, js.stWaves = 0, 0, 0, 0
	var alive []bool
	if e.Recovery.Enabled {
		alive = aliveDCs(e.sim)
		if countAlive(alive) == 0 {
			s.abort(fmt.Errorf("spark: job %q: no data center left alive", js.run.Job.Name))
			return
		}
		s.repairLayout(js, alive, computeRates)
	}
	p := js.run.Sched.Place(js.stage, stage, js.layout).Normalize()
	if len(p) != n {
		s.abort(fmt.Errorf("spark: scheduler %q returned %d fractions for %d DCs",
			js.run.Sched.Name(), len(p), n))
		return
	}
	if alive != nil {
		p = maskPlacement(p, alive)
	}
	var transfer [][]float64
	if stage.Kind == MapKind {
		transfer = MigrationMatrix(js.layout, p)
	} else {
		transfer = ShuffleMatrix(js.layout, p)
	}
	js.curTransfer = transfer
	js.curPlacement = p
	js.transferStart = now
	js.phase = phaseTransfer

	flows, pairs, wanBytes, recs := e.launchTransfers(transfer, js.run.Policy, s.transferDone(js, computeRates))
	js.flows = flows
	js.pairs = pairs
	js.flowsLeft = len(flows)
	js.res.WANBytes += wanBytes

	if len(flows) == 0 {
		s.finishTransfers(js, computeRates, now)
		return
	}
	js.loadDeltas = e.ledger().uniform(js.loadDeltas, e.transferLoad())
	s.holdLoad(js)

	// Watchdog: a transfer phase that outlives MaxStageTransferS fails
	// the set, exactly as AwaitFlows does for a single job.
	s.extendDeadline(now + e.MaxStageTransferS)
	stageIdx := js.stage
	e.sim.After(e.MaxStageTransferS, func(float64) {
		if s.err != nil || js.phase != phaseTransfer || js.stage != stageIdx {
			return
		}
		s.abort(fmt.Errorf("spark: job %q stage %q: transfers not drained after %.1fs of simulated time",
			js.run.Job.Name, stage.Name, e.MaxStageTransferS))
	})
	// Arm failure handlers last: a flow born failed (endpoint already
	// dead) fires its handler synchronously from inside armRecs, which
	// needs the counters and watchdog above in place.
	s.armRecs(js, recs, computeRates)
}

// finishTransfers closes a stage's transfer phase (at the exact instant
// the last flow drained) and begins its compute phase.
func (s *JobSet) finishTransfers(js *jobState, computeRates []float64, now float64) {
	e := s.eng
	n := e.sim.NumDCs()
	stage := js.run.Job.Stages[js.stage]
	s.releaseLoad(js)
	rep := StageReport{
		Name:       stage.Name,
		Kind:       stage.Kind,
		Placement:  js.curPlacement,
		TransferS:  now - js.transferStart,
		PairMbps:   pairRates(n, js.pairs, js.transferStart),
		PairBytes:  js.curTransfer,
		LostBytes:  js.stLost,
		RecomputeS: js.stRecomputeS,
		Recoveries: js.stWaves,
	}
	rep.RecoveredBytes = js.stRecovered
	for _, pp := range js.pairs {
		rep.WANBytes += pp.bytes
		rep.DeliveredBytes += pp.delivered
	}
	js.res.LostBytes += js.stLost
	js.res.RecoveredBytes += js.stRecovered
	js.res.RecomputeS += js.stRecomputeS
	js.res.Recoveries += js.stWaves
	for i := range rep.PairMbps {
		for j := range rep.PairMbps[i] {
			if js.curTransfer[i][j] >= 1<<20 && rep.PairMbps[i][j] > 0 && rep.PairMbps[i][j] < js.res.MinShuffleMbps {
				js.res.MinShuffleMbps = rep.PairMbps[i][j]
			}
		}
	}
	js.flows, js.pairs = nil, nil

	// The stage's input is now distributed per the placement.
	total := 0.0
	for _, b := range js.layout {
		total += b
	}
	for j := 0; j < n; j++ {
		js.layout[j] = total * js.curPlacement[j]
	}

	computeS := computeSeconds(stage, js.layout, computeRates)
	if e.OverlapFetchCompute {
		computeS -= rep.TransferS
		if computeS < 0 {
			computeS = 0
		}
	}
	// Re-executed partitions (recovery with no surviving replica) are
	// recomputed work: it serializes with the stage's own compute and is
	// not hidden by fetch/compute overlap.
	computeS += js.stRecomputeS
	rep.ComputeS = computeS
	if computeS <= 0 {
		s.endStage(js, rep, computeRates, now)
		return
	}
	js.phase = phaseCompute
	js.loadDeltas = e.computeLoadDeltas(js.loadDeltas, js.layout)
	s.holdLoad(js)
	s.extendDeadline(now + computeS)
	e.sim.After(computeS, func(end float64) {
		if s.err != nil || js.phase != phaseCompute {
			return
		}
		s.releaseLoad(js)
		s.endStage(js, rep, computeRates, end)
	})
}

// endStage records the stage and moves the job to its next one.
func (s *JobSet) endStage(js *jobState, rep StageReport, computeRates []float64, now float64) {
	js.res.Stages = append(js.res.Stages, rep)
	stage := js.run.Job.Stages[js.stage]
	for j := range js.layout {
		js.layout[j] *= stage.Selectivity
	}
	js.stage++
	s.startStage(js, computeRates, now)
}

// finishJob completes a job's state machine.
func (s *JobSet) finishJob(js *jobState, now float64) {
	js.phase = phaseDone
	js.res.JCTSeconds = now - js.startedAt
	if math.IsInf(js.res.MinShuffleMbps, 1) {
		js.res.MinShuffleMbps = 0
	}
	for _, b := range js.layout {
		js.res.OutputBytes += b
	}
	js.res.Cost = s.eng.price(js.run.Job, js.res)
	js.res.Energy = s.eng.energy(js.res)
	s.running--
	if s.onDone != nil {
		s.onDone(js.idx, js.res)
	}
}

// holdLoad shifts the job's current loadDeltas into the shared ledger
// and marks them held; releaseLoad undoes exactly one hold and is a
// no-op otherwise. The flag is what makes abort safe in transition
// windows: a compute phase's timer releases its load before endStage
// runs, but the job's phase field still says phaseCompute while the
// next startStage executes — an abort raised there (scheduler error)
// used to release the same load a second time, driving the co-tenant's
// composed CPU load in the ledger below its true value.
func (s *JobSet) holdLoad(js *jobState) {
	s.eng.ledger().shift(1, js.loadDeltas)
	js.loadHeld = true
}

func (s *JobSet) releaseLoad(js *jobState) {
	if !js.loadHeld {
		return
	}
	s.eng.ledger().shift(-1, js.loadDeltas)
	js.loadHeld = false
}

// abort fails the whole set: every outstanding flow of every job is
// stopped and every held load released, whatever phase each job is in,
// so an aborted set cannot leak flows or CPU load into a co-tenant's
// allocator state. Pending substrate timers (watchdogs, compute
// completions, recovery waves) cannot be cancelled, but every one of
// them checks s.err before acting and so fires inert.
func (s *JobSet) abort(err error) {
	if s.err != nil {
		return
	}
	s.err = err
	for _, js := range s.states {
		for _, f := range js.flows {
			if !f.Done() {
				f.Stop()
			}
		}
		s.releaseLoad(js)
		js.phase = phaseDone
	}
	s.running = 0
}

// RunJobSet is the convenience wrapper: build a JobSet over the engine
// and run it to completion.
func (e *Engine) RunJobSet(runs []JobRun) (JobSetResult, error) {
	s, err := NewJobSet(e, runs)
	if err != nil {
		return JobSetResult{}, err
	}
	return s.Run()
}
