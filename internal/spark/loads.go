package spark

import "github.com/wanify/wanify/internal/substrate"

// loadLedger composes an engine's CPU-load contributions per VM on top
// of whatever load the rest of the deployment has placed there.
//
// substrate.Cluster.SetCPULoad is absolute, and the engine used to
// exploit that: after every compute phase it wrote 0 to every VM,
// clobbering load set by anything else sharing the cluster — a
// concurrent job in a JobSet, or a test standing in for a co-located
// service. The ledger makes engine loads additive instead: each phase
// *shifts* its contribution in and back out, and the value written to
// the substrate is always (observed external base) + (sum of this
// engine's live contributions), clamped to the substrate's [0, 1]
// domain. Phases of concurrent jobs run through one shared ledger (the
// JobSet path shares one Engine), so their contributions sum exactly
// even past the clamp; external absolute writes between engine phases
// are folded into the base the next time the ledger touches the VM.
type loadLedger struct {
	sim substrate.Cluster
	own []float64 // summed live engine contributions per VM
	ext []float64 // external base load observed under our writes
	set []float64 // the absolute value this ledger last wrote
}

func newLoadLedger(sim substrate.Cluster) *loadLedger {
	n := sim.NumVMs()
	return &loadLedger{
		sim: sim,
		own: make([]float64, n),
		ext: make([]float64, n),
		set: make([]float64, n),
	}
}

// shift adds sign*deltas[vm] to every VM's engine contribution and
// rewrites the substrate loads. The read pass runs before any write so
// external load changes are observed once, not interleaved with our
// own writes.
func (l *loadLedger) shift(sign float64, deltas []float64) {
	for v := range l.own {
		cur := l.sim.VMStats(substrate.VMID(v)).CPULoad
		if cur != l.set[v] { // someone moved the load since our last write
			l.ext[v] += cur - l.set[v]
			if l.ext[v] < 0 {
				l.ext[v] = 0
			}
		}
	}
	for v := range l.own {
		l.own[v] += sign * deltas[v]
		if l.own[v] < 0 { // guard float drift on release
			l.own[v] = 0
		}
		target := l.ext[v] + l.own[v]
		if target > 1 {
			target = 1
		}
		l.sim.SetCPULoad(substrate.VMID(v), target)
		l.set[v] = target
	}
}

// uniform fills dst with the same delta for every VM.
func (l *loadLedger) uniform(dst []float64, delta float64) []float64 {
	if len(dst) != len(l.own) {
		dst = make([]float64, len(l.own))
	}
	for i := range dst {
		dst[i] = delta
	}
	return dst
}
