package gda

import (
	"time"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
)

// PlaceNsPerOp times one scheduler-placement round on the 8-region
// testbed — a Kimchi reduce-stage placement (which embeds the
// three-start Tetrium descent) plus a Tetrium map-stage placement, the
// mix the scheduler-comparison experiments hammer. optimized=true runs
// the pooled delta-evaluating search; false replays the kept-verbatim
// reference (descendReference). cmd/wanify-bench records both so the
// CI guard can gate on their hardware-independent ratio, mirroring
// netsim.ChurnNsPerOp.
func PlaceNsPerOp(optimized bool, rounds int) float64 {
	info, believed, layout := benchCluster()
	mapStage := spark.Stage{Name: "m", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.4}
	reduceStage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	tet := Tetrium{Believed: believed, Info: info}
	kim := Kimchi{Believed: believed, Info: info}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		if optimized {
			kim.Place(0, reduceStage, layout)
			tet.Place(0, mapStage, layout)
		} else {
			placeKimchiReference(kim, reduceStage, layout)
			placeTetriumReference(tet, mapStage, layout)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}

// benchCluster is a deterministic 8-DC planning problem: heterogeneous
// compute, a skewed layout, and a believed matrix with strong and weak
// links (including one near-blackout pair to exercise the BW floor).
func benchCluster() (ClusterInfo, bwmatrix.Matrix, []float64) {
	regions := geo.Testbed()
	n := len(regions)
	rates := cost.DefaultRates()
	info := ClusterInfo{
		Regions:      regions,
		ComputeRates: make([]float64, n),
		EgressPerGB:  make([]float64, n),
	}
	rng := simrand.Derive(42, "gda-bench")
	believed := bwmatrix.New(n)
	layout := make([]float64, n)
	for i := 0; i < n; i++ {
		info.ComputeRates[i] = 1 + float64(rng.IntN(4))
		info.EgressPerGB[i] = rates.EgressPerGBFor(regions[i])
		layout[i] = rng.Uniform(1, 40) * 1e9
		for j := 0; j < n; j++ {
			if i != j {
				believed[i][j] = rng.Uniform(40, 1200)
			}
		}
	}
	believed[0][n-1] = 0.5 // near-blackout link
	return info, believed, layout
}
