package gda

import (
	"time"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
)

// PlaceNsPerOp times one scheduler-placement round on the 8-region
// testbed — a Kimchi reduce-stage placement (which embeds the
// three-start Tetrium descent) plus a Tetrium map-stage placement, the
// mix the scheduler-comparison experiments hammer. optimized=true runs
// the pooled delta-evaluating search; false replays the kept-verbatim
// reference (descendReference). cmd/wanify-bench records both so the
// CI guard can gate on their hardware-independent ratio, mirroring
// netsim.ChurnNsPerOp.
func PlaceNsPerOp(optimized bool, rounds int) float64 {
	info, believed, layout := benchCluster()
	mapStage := spark.Stage{Name: "m", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.4}
	reduceStage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	tet := Tetrium{Believed: believed, Info: info}
	kim := Kimchi{Believed: believed, Info: info}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		if optimized {
			kim.Place(0, reduceStage, layout)
			tet.Place(0, mapStage, layout)
		} else {
			placeKimchiReference(kim, reduceStage, layout)
			placeTetriumReference(tet, mapStage, layout)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}

// ScorerPlaceNsPerOp times one PlaceScored round (a reduce plus a map
// placement, like PlaceNsPerOp) for the named scorer on the 8-region
// testbed. optimized=false replays the full-evaluation
// placeScorerReference oracle; cmd/wanify-bench records both per
// scorer so the CI guard gates their hardware-independent ratios.
func ScorerPlaceNsPerOp(spec string, optimized bool, rounds int) float64 {
	sc, err := ParseScorer(spec)
	if err != nil {
		panic(err)
	}
	info, believed, layout := benchCluster()
	mapStage := spark.Stage{Name: "m", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.4}
	reduceStage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		if optimized {
			PlaceScored(sc, believed, info, reduceStage, layout)
			PlaceScored(sc, believed, info, mapStage, layout)
		} else {
			placeScorerReference(sc, believed, info, reduceStage, layout)
			placeScorerReference(sc, believed, info, mapStage, layout)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}

// benchCluster is a deterministic 8-DC planning problem: heterogeneous
// compute, a skewed layout, and a believed matrix with strong and weak
// links (including one near-blackout pair to exercise the BW floor).
// Carbon coefficients come from the default energy rates so the
// carbon-pricing scorer benchmarks descend on real gradients.
func benchCluster() (ClusterInfo, bwmatrix.Matrix, []float64) {
	regions := geo.Testbed()
	n := len(regions)
	rates := cost.DefaultRates()
	energy := cost.DefaultEnergyRates()
	info := ClusterInfo{
		Regions:          regions,
		ComputeRates:     make([]float64, n),
		EgressPerGB:      make([]float64, n),
		CarbonPerCompSec: make([]float64, n),
		CarbonPerGB:      make([]float64, n),
	}
	rng := simrand.Derive(42, "gda-bench")
	believed := bwmatrix.New(n)
	layout := make([]float64, n)
	for i := 0; i < n; i++ {
		info.ComputeRates[i] = 1 + float64(rng.IntN(4))
		info.EgressPerGB[i] = rates.EgressPerGBFor(regions[i])
		info.CarbonPerCompSec[i] = energy.ComputeKgCO2PerSec(info.ComputeRates[i]*11, regions[i])
		info.CarbonPerGB[i] = energy.WANKgCO2PerGB(regions[i])
		layout[i] = rng.Uniform(1, 40) * 1e9
		for j := 0; j < n; j++ {
			if i != j {
				believed[i][j] = rng.Uniform(40, 1200)
			}
		}
	}
	believed[0][n-1] = 0.5 // near-blackout link
	return info, believed, layout
}
