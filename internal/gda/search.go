package gda

import (
	"sync"

	"github.com/wanify/wanify/internal/spark"
)

// search is the reusable context behind the estimator-based scheduler
// descents (every Scorer-composed scheduler: Tetrium, Kimchi, the
// cost/carbon/blend Scheds). The reference search re-allocates a
// candidate Placement and rebuilds the full O(n²) Shuffle/Migration
// matrix for every single-move candidate at every step level; the
// context instead keeps per-entry caches of the base placement's
// estimate and delta-evaluates each (from,to) move:
//
//   - Shuffle stages: moving mass from DC `from` to DC `to` changes
//     only columns `from` and `to` of the transfer matrix
//     (ShuffleMatrix[i][j] = layout[i]·p[j]) and the two compute
//     terms, so a candidate recomputes O(n) expensive entries (the
//     divisions by believed bandwidth) against the cached rest.
//   - Map stages: migration volumes couple every entry through the
//     total deficit, so candidates rebuild the matrix — but into
//     scratch, with zero allocations.
//
// Bit-exactness contract (locked by TestPlaceMatchesReference and the
// experiment goldens): every cached or delta-computed term is produced
// by exactly the float expressions estimateDetail evaluates, and the
// secs/loadSum/usd aggregates are reduced over the entries in
// estimateDetail's canonical row-major order. Zero-valued skipped
// entries may be added where the reference skips them — x + (+0.0) is
// an identity on the non-negative partial sums involved — but sums are
// never delta-updated, because floating-point addition does not
// associate; the cheap re-reduction is the price of returning the
// identical bits. Base caches refresh once per accepted move, in O(n)
// for shuffle stages.
//
// Sparsity: fleet-shaped problems place a job's data on a handful of
// DCs out of hundreds, so the transfer matrices are mostly zero rows
// (a shuffle row i is layout[i]·p[j]; a migration row is nonzero only
// for surplus DCs, and surplus requires layout > 0). The shuffle hot
// paths therefore iterate nzRows — the source DCs with layout[i] > 0 —
// instead of all n rows: skipped entries are exact +0.0 contributions,
// so sums, maxes and cached columns are bit-identical to the dense
// sweep, while candidate evaluation drops from O(n²) to O(nz·n).
// Zero-layout rows of the tE/uE slabs are never written or read by the
// shuffle paths (map-stage fillBase rewrites every row before map
// screening reads arbitrary corners).
//
// Contexts are pooled (schedulers are stateless values called from
// concurrent experiment drivers) and reach zero steady-state
// allocations after the first Place at a given cluster size.
type search struct {
	n      int
	est    estimator
	stage  spark.Stage
	layout []float64
	total  float64 // sum(layout), accumulated in estimateDetail's order
	nzRows []int   // source DCs with layout[i] > 0, ascending

	bwDen []float64 // n×n flattened: floored believed BW × 1e6 (denominators)
	rate  []float64 // per-DC compute rate with estimateDetail's 1e-6 floor

	p spark.Placement // current placement (owned buffer)

	transfer [][]float64 // n×n transfer-bytes scratch
	mscr     spark.MatrixScratch

	tE   []float64 // n×n per-entry network seconds for p (0 on diag / b<=0)
	uE   []float64 // n×n per-entry egress dollars for p
	comp []float64 // per-DC compute seconds for p

	agg Aggregates // estimateAgg(p) aggregates (KgCO2 only when needC)

	// Shuffle-candidate scratch: replacement columns `from` and `to`.
	tF, tT, uF, uT []float64

	// Carbon machinery, maintained only while the active scorer's
	// NeedsCarbon — the aggregate is column-linear for shuffle stages
	// and deficit-scalable for map stages exactly like usd, so it rides
	// the same delta and screen structure. When needC is false every
	// carbon aggregate is exactly 0 and the screens' added carbon terms
	// are exact +0.0 identities, keeping the non-carbon path
	// bit-identical to the pre-scorer search.
	needC       bool
	carbonReady bool      // per-lease: coefficient slabs filled
	netC        []float64 // per-DC kgCO₂ per GB sent (ClusterInfo.CarbonPerGB)
	compC       []float64 // per-DC kgCO₂ per compute-second
	cE          []float64 // n×n per-entry network kgCO₂ for p
	cbF, cbT    []float64 // shuffle-candidate carbon columns
	colRateCSum []float64 // Σ_{i≠j} layout[i]/1e9·netC[i]
	colSumC     []float64 // Σ_i cE[i][j]
	totalC      float64   // Σ colSumC
	compCarbSum float64   // Σ comp[j]·compC[j]
	mapRowC     []float64 // per-row Σ cE (map stages)
	mapColC     []float64 // per-column Σ cE (map stages)
	mapTotC     float64

	// Map-stage state: the base placement's surplus/deficit split
	// (maintained like the shuffle column caches — two entries per
	// accepted move) and the per-DC deficit-ratio scratch.
	mapSur, mapDef, drB []float64

	// Map-stage screening aggregates over the base entry caches. A
	// migration entry is surplus_i·(deficit_j/totalDeficit)·8/den, so
	// every entry whose DCs are untouched by a move scales by the one
	// factor totalDeficit/totalDeficit' — the unchanged block's sums and
	// max scale with it, giving an O(n) rejection bound (approximate,
	// margin-guarded, exactly like the shuffle screen).
	mapRowT, mapColT []float64 // per-row / per-column Σ tE
	mapRowU, mapColU []float64 // per-row / per-column Σ uE
	mapTotT, mapTotU float64
	mapTotalDef      float64
	mapTop           [6]mapEntry   // largest base entries, for the block max
	mapRow2, mapCol2 [][2]mapEntry // per-row / per-column two largest entries

	// Screening aggregates (shuffle stages only). The scan over the 2n
	// single-move candidates is dominated by provably non-improving
	// moves; the screen rejects most of them in O(n) flops without
	// divisions. Everything here is APPROXIMATE and used strictly for
	// rejection behind a wide error margin — any candidate that might
	// improve still gets the exact canonical evaluation, so the
	// bit-exact contract is untouched.
	//
	// Placement-independent column rates (a shuffle column j's entries
	// are layout[i]·p[j]·8/den, so sums and maxes scale linearly with
	// p[j] to within ulps):
	colRateSum []float64 // Σ_{i≠j} layout[i]·8/den[i][j]
	colRateMax []float64 // max_{i≠j} layout[i]·8/den[i][j]
	colUsdSum  []float64 // Σ_{i≠j} layout[i]/1e9·egress[i]
	compRate   []float64 // total/1e9·SecPerGB/rate[j]
	// Placement-dependent column aggregates of the cached base entries,
	// refreshed with the O(n) column updates of applyMove:
	colSumT []float64 // Σ_i tE[i][j]
	colMaxT []float64 // max_i tE[i][j]
	colSumU []float64 // Σ_i uE[i][j]
	totalT  float64   // Σ colSumT
	totalU  float64   // Σ colSumU
	compSum float64   // Σ comp

	starts  [3]spark.Placement // descent start buffers
	bestBuf spark.Placement    // winning placement across starts
}

// mapEntry is one ranked base migration entry for the map screen.
type mapEntry struct {
	v    float64
	i, j int
}

var searchPool = sync.Pool{New: func() any { return new(search) }}

// getSearch leases a context from the pool, sized and primed for the
// scheduler's believed matrix, stage and layout.
func getSearch(est estimator, stage spark.Stage, layout []float64) *search {
	s := searchPool.Get().(*search)
	s.init(est, stage, layout)
	return s
}

func putSearch(s *search) {
	// Drop the caller's data (layout slice, believed matrix, cluster
	// info, stage) so an idle pooled context retains only its own
	// scratch slabs.
	s.layout = nil
	s.est = estimator{}
	s.stage = spark.Stage{}
	searchPool.Put(s)
}

// init sizes the scratch slabs and precomputes the placement-invariant
// terms: the bandwidth denominators (with estimateDetail's 1 Mbps
// blackout floor folded in) and the floored compute rates.
func (s *search) init(est estimator, stage spark.Stage, layout []float64) {
	n := est.info.N()
	if s.n != n {
		s.n = n
		s.bwDen = make([]float64, n*n)
		s.rate = make([]float64, n)
		s.p = make(spark.Placement, n)
		s.tE = make([]float64, n*n)
		s.uE = make([]float64, n*n)
		s.comp = make([]float64, n)
		s.tF = make([]float64, n)
		s.tT = make([]float64, n)
		s.uF = make([]float64, n)
		s.uT = make([]float64, n)
		for i := range s.starts {
			s.starts[i] = make(spark.Placement, n)
		}
		s.bestBuf = make(spark.Placement, n)
		s.colRateSum = make([]float64, n)
		s.colRateMax = make([]float64, n)
		s.colUsdSum = make([]float64, n)
		s.compRate = make([]float64, n)
		s.colSumT = make([]float64, n)
		s.colMaxT = make([]float64, n)
		s.colSumU = make([]float64, n)
		s.mapSur = make([]float64, n)
		s.mapDef = make([]float64, n)
		s.drB = make([]float64, n)
		s.mapRowT = make([]float64, n)
		s.mapColT = make([]float64, n)
		s.mapRowU = make([]float64, n)
		s.mapColU = make([]float64, n)
		s.mapRow2 = make([][2]mapEntry, n)
		s.mapCol2 = make([][2]mapEntry, n)
		s.netC = make([]float64, n)
		s.compC = make([]float64, n)
		s.cE = make([]float64, n*n)
		s.cbF = make([]float64, n)
		s.cbT = make([]float64, n)
		s.colRateCSum = make([]float64, n)
		s.colSumC = make([]float64, n)
		s.mapRowC = make([]float64, n)
		s.mapColC = make([]float64, n)
		s.transfer = nil
	}
	s.est, s.stage, s.layout = est, stage, layout
	s.needC, s.carbonReady = false, false
	total := 0.0
	s.nzRows = s.nzRows[:0]
	for i, b := range layout {
		total += b
		if b > 0 {
			s.nzRows = append(s.nzRows, i)
		}
	}
	s.total = total
	// Denominators are only ever divided into with a positive numerator,
	// which requires layout[i] > 0 (shuffle entries are layout[i]·p[j],
	// migration entries need surplus, surplus needs layout); zero rows
	// are left stale and unread.
	for _, i := range s.nzRows {
		row := est.believed[i]
		base := i * n
		for j := 0; j < n; j++ {
			bw := row[j]
			if bw < 1 {
				bw = 1
			}
			s.bwDen[base+j] = bw * 1e6
		}
	}
	for j := 0; j < n; j++ {
		r := est.info.ComputeRates[j]
		if r <= 0 {
			r = 1e-6
		}
		s.rate[j] = r
	}
	for j := 0; j < n; j++ {
		sum, max, usum := 0.0, 0.0, 0.0
		for _, i := range s.nzRows {
			if i == j {
				continue
			}
			r := layout[i] * 8 / s.bwDen[i*n+j]
			sum += r
			if r > max {
				max = r
			}
			usum += layout[i] / 1e9 * est.info.EgressPerGB[i]
		}
		s.colRateSum[j] = sum
		s.colRateMax[j] = max
		s.colUsdSum[j] = usum
		s.compRate[j] = total / 1e9 / s.rate[j] * stage.SecPerGB
	}
}

// entryTerms computes one transfer entry's network time and egress
// dollars — the exact per-entry expressions of estimateDetail.
func (s *search) entryTerms(i, j int, b float64) (t, u float64) {
	if i == j || b <= 0 {
		return 0, 0
	}
	return b * 8 / s.bwDen[i*s.n+j], b / 1e9 * s.est.info.EgressPerGB[i]
}

// entryCarbon is the carbon counterpart of entryTerms — estimateAgg's
// exact per-entry transport expression. Only called while needC.
func (s *search) entryCarbon(i, j int, b float64) float64 {
	if i == j || b <= 0 {
		return 0
	}
	return b / 1e9 * s.netC[i]
}

// prepCarbon fills the carbon coefficient slabs and their
// placement-independent screen rates, once per lease and only when a
// carbon-pricing scorer actually descends on this context.
func (s *search) prepCarbon() {
	info := s.est.info
	for i := 0; i < s.n; i++ {
		s.netC[i] = carbonAt(info.CarbonPerGB, i)
		s.compC[i] = carbonAt(info.CarbonPerCompSec, i)
	}
	for j := 0; j < s.n; j++ {
		csum := 0.0
		for _, i := range s.nzRows {
			if i == j {
				continue
			}
			csum += s.layout[i] / 1e9 * s.netC[i]
		}
		s.colRateCSum[j] = csum
	}
	s.carbonReady = true
}

// splitSD is MigrationMatrix's surplus/deficit split for DC x holding
// task share px — the builder's exact expressions.
func (s *search) splitSD(x int, px float64) (sur, def float64) {
	want := s.total * px
	if s.layout[x] > want {
		return s.layout[x] - want, 0
	}
	return 0, want - s.layout[x]
}

// compTerm is estimateDetail's per-DC compute time for task share pj.
func (s *search) compTerm(pj float64, j int) float64 {
	share := s.total * pj
	if share <= 0 {
		return 0
	}
	return share / 1e9 * s.stage.SecPerGB / s.rate[j]
}

// fillBase populates the per-entry caches and aggregates for the
// current placement s.p — one full estimate, shared by every candidate
// of the following sweep.
func (s *search) fillBase() {
	n := s.n
	if s.stage.Kind == spark.MapKind {
		// Migration entries couple through the total deficit; build the
		// full matrix and rewrite every tE/uE row (zero rows included —
		// mapScreen reads arbitrary corner entries, so no row may be
		// left stale here).
		s.transfer = spark.MigrationMatrixInto(s.transfer, s.layout, s.p, &s.mscr)
		for i := 0; i < n; i++ {
			row := s.transfer[i]
			base := i * n
			for j := 0; j < n; j++ {
				s.tE[base+j], s.uE[base+j] = s.entryTerms(i, j, row[j])
			}
		}
		if s.needC {
			for i := 0; i < n; i++ {
				row := s.transfer[i]
				base := i * n
				for j := 0; j < n; j++ {
					s.cE[base+j] = s.entryCarbon(i, j, row[j])
				}
			}
		}
	} else {
		// A shuffle entry is layout[i]·p[j] — ShuffleMatrixInto's exact
		// expression, computed inline so zero rows need no matrix build
		// and the nonzero rows need no n² intermediate.
		for _, i := range s.nzRows {
			base := i * n
			for j := 0; j < n; j++ {
				s.tE[base+j], s.uE[base+j] = s.entryTerms(i, j, s.layout[i]*s.p[j])
			}
		}
		if s.needC {
			for _, i := range s.nzRows {
				base := i * n
				for j := 0; j < n; j++ {
					s.cE[base+j] = s.entryCarbon(i, j, s.layout[i]*s.p[j])
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		s.comp[j] = s.compTerm(s.p[j], j)
	}
	s.agg = s.reduceBase()
	if s.stage.Kind == spark.MapKind {
		s.mapTotalDef = 0
		for i := 0; i < n; i++ {
			s.mapSur[i], s.mapDef[i] = s.splitSD(i, s.p[i])
			s.mapTotalDef += s.mapDef[i]
		}
		s.mapTotT, s.mapTotU = 0, 0
		for k := range s.mapTop {
			s.mapTop[k] = mapEntry{i: -1, j: -1}
		}
		for i := 0; i < n; i++ {
			rowT, rowU := 0.0, 0.0
			base := i * n
			s.mapRow2[i] = [2]mapEntry{{i: -1, j: -1}, {i: -1, j: -1}}
			for j := 0; j < n; j++ {
				t := s.tE[base+j]
				rowT += t
				rowU += s.uE[base+j]
				if t > s.mapTop[len(s.mapTop)-1].v {
					// Insertion into the small descending top list.
					k := len(s.mapTop) - 1
					for k > 0 && t > s.mapTop[k-1].v {
						s.mapTop[k] = s.mapTop[k-1]
						k--
					}
					s.mapTop[k] = mapEntry{v: t, i: i, j: j}
				}
				if t > s.mapRow2[i][0].v {
					s.mapRow2[i][1] = s.mapRow2[i][0]
					s.mapRow2[i][0] = mapEntry{v: t, i: i, j: j}
				} else if t > s.mapRow2[i][1].v {
					s.mapRow2[i][1] = mapEntry{v: t, i: i, j: j}
				}
			}
			s.mapRowT[i], s.mapRowU[i] = rowT, rowU
			s.mapTotT += rowT
			s.mapTotU += rowU
		}
		for j := 0; j < n; j++ {
			colT, colU := 0.0, 0.0
			s.mapCol2[j] = [2]mapEntry{{i: -1, j: -1}, {i: -1, j: -1}}
			for i := 0; i < n; i++ {
				t := s.tE[i*n+j]
				colT += t
				colU += s.uE[i*n+j]
				if t > s.mapCol2[j][0].v {
					s.mapCol2[j][1] = s.mapCol2[j][0]
					s.mapCol2[j][0] = mapEntry{v: t, i: i, j: j}
				} else if t > s.mapCol2[j][1].v {
					s.mapCol2[j][1] = mapEntry{v: t, i: i, j: j}
				}
			}
			s.mapColT[j], s.mapColU[j] = colT, colU
		}
		if s.needC {
			s.mapTotC = 0
			for i := 0; i < n; i++ {
				rowC := 0.0
				base := i * n
				for j := 0; j < n; j++ {
					rowC += s.cE[base+j]
				}
				s.mapRowC[i] = rowC
				s.mapTotC += rowC
			}
			for j := 0; j < n; j++ {
				colC := 0.0
				for i := 0; i < n; i++ {
					colC += s.cE[i*n+j]
				}
				s.mapColC[j] = colC
			}
		}
	} else {
		for j := 0; j < n; j++ {
			s.refreshColumn(j)
		}
		s.refreshTotals()
	}
}

// refreshColumn recomputes the screening aggregates of base column j
// (shuffle stages only, so the zero layout rows — exact zero entries —
// can be skipped).
func (s *search) refreshColumn(j int) {
	sum, max, usum := 0.0, 0.0, 0.0
	for _, i := range s.nzRows {
		t := s.tE[i*s.n+j]
		sum += t
		if t > max {
			max = t
		}
		usum += s.uE[i*s.n+j]
	}
	s.colSumT[j] = sum
	s.colMaxT[j] = max
	s.colSumU[j] = usum
	if s.needC {
		csum := 0.0
		for _, i := range s.nzRows {
			csum += s.cE[i*s.n+j]
		}
		s.colSumC[j] = csum
	}
}

// refreshTotals re-derives the grand screening totals from the column
// aggregates (O(n); avoids error drift across accepted moves).
func (s *search) refreshTotals() {
	s.totalT, s.totalU, s.compSum = 0, 0, 0
	for j := 0; j < s.n; j++ {
		s.totalT += s.colSumT[j]
		s.totalU += s.colSumU[j]
		s.compSum += s.comp[j]
	}
	if s.needC {
		s.totalC, s.compCarbSum = 0, 0
		for j := 0; j < s.n; j++ {
			s.totalC += s.colSumC[j]
			s.compCarbSum += s.comp[j] * s.compC[j]
		}
	}
}

// reduceBase folds the cached entries into the estimate Aggregates in
// estimateDetail/estimateAgg's canonical order: network entries
// row-major, then compute terms by DC. The carbon fold is a separate
// pass over the same order — KgCO2 has its own accumulator, so its
// bits only depend on its own addition sequence, and skipped zero
// entries contribute exact +0.0 identities.
func (s *search) reduceBase() Aggregates {
	var a Aggregates
	tNet := 0.0
	for _, i := range s.nzRows {
		base := i * s.n
		for j := 0; j < s.n; j++ {
			t := s.tE[base+j]
			a.LoadSum += t
			if t > tNet {
				tNet = t
			}
			a.USD += s.uE[base+j]
		}
	}
	tComp := 0.0
	for _, c := range s.comp {
		a.LoadSum += c
		if c > tComp {
			tComp = c
		}
	}
	a.Secs = tNet + tComp
	if s.needC {
		for _, i := range s.nzRows {
			base := i * s.n
			for j := 0; j < s.n; j++ {
				a.KgCO2 += s.cE[base+j]
			}
		}
		for j, c := range s.comp {
			a.KgCO2 += c * s.compC[j]
		}
	}
	return a
}

// evalShuffleCand delta-evaluates the move (from→to, pf/pt being the
// two changed placement entries) for a shuffle stage: O(n) fresh
// divisions for the two changed transfer columns, then the canonical
// reduction substituting them over the cached rest. The carbon fold,
// when the scorer needs it, is the same substitution replayed for the
// KgCO2 accumulator in its own canonical-order pass.
func (s *search) evalShuffleCand(from, to int, pf, pt float64) Aggregates {
	n := s.n
	for _, i := range s.nzRows {
		s.tF[i], s.uF[i] = s.entryTerms(i, from, s.layout[i]*pf)
		s.tT[i], s.uT[i] = s.entryTerms(i, to, s.layout[i]*pt)
	}
	cF := s.compTerm(pf, from)
	cT := s.compTerm(pt, to)

	var a Aggregates
	tNet := 0.0
	for _, i := range s.nzRows {
		base := i * n
		for j := 0; j < n; j++ {
			var t, u float64
			switch j {
			case from:
				t, u = s.tF[i], s.uF[i]
			case to:
				t, u = s.tT[i], s.uT[i]
			default:
				t, u = s.tE[base+j], s.uE[base+j]
			}
			a.LoadSum += t
			if t > tNet {
				tNet = t
			}
			a.USD += u
		}
	}
	tComp := 0.0
	for j := 0; j < n; j++ {
		c := s.comp[j]
		switch j {
		case from:
			c = cF
		case to:
			c = cT
		}
		a.LoadSum += c
		if c > tComp {
			tComp = c
		}
	}
	a.Secs = tNet + tComp
	if s.needC {
		for _, i := range s.nzRows {
			s.cbF[i] = s.entryCarbon(i, from, s.layout[i]*pf)
			s.cbT[i] = s.entryCarbon(i, to, s.layout[i]*pt)
		}
		for _, i := range s.nzRows {
			base := i * n
			for j := 0; j < n; j++ {
				switch j {
				case from:
					a.KgCO2 += s.cbF[i]
				case to:
					a.KgCO2 += s.cbT[i]
				default:
					a.KgCO2 += s.cE[base+j]
				}
			}
		}
		for j := 0; j < n; j++ {
			c := s.comp[j]
			switch j {
			case from:
				c = cF
			case to:
				c = cT
			}
			a.KgCO2 += c * s.compC[j]
		}
	}
	return a
}

// evalMapCand evaluates a candidate for a map stage. The migration
// matrix couples every entry through the total deficit, so there is no
// column delta — but the nonzero block is only surplus-DCs × deficit-
// DCs, so the evaluation fuses MigrationMatrix's construction with
// estimateDetail's fold: surplus/deficit are computed with the matrix
// builder's exact expressions, whole zero rows/columns are skipped
// (they contribute nothing in the reference either), the deficit
// ratios are hoisted per destination (the same division the reference
// performs per entry, evaluated once), and the unchanged compute terms
// come from the base cache. The nonzero entries fold in the reference's
// row-major order, so the result bits match a full rebuild.
func (s *search) evalMapCand(from, to int, pf, pt float64) Aggregates {
	n := s.n
	oldF, oldT := s.p[from], s.p[to]
	s.p[from], s.p[to] = pf, pt

	var a Aggregates
	tNet := 0.0
	if s.total > 0 {
		// Surplus/deficit differ from the maintained base split only at
		// the two moved DCs; the total deficit still folds over every DC
		// in index order (surplus DCs contribute an exact 0) so its bits
		// match the builder's fresh accumulation.
		surF, defF := s.splitSD(from, pf)
		surT, defT := s.splitSD(to, pt)
		var totalDeficit float64
		for i := 0; i < n; i++ {
			switch i {
			case from:
				totalDeficit += defF
			case to:
				totalDeficit += defT
			default:
				totalDeficit += s.mapDef[i]
			}
		}
		if totalDeficit > 0 {
			for j := 0; j < n; j++ {
				d := s.mapDef[j]
				switch j {
				case from:
					d = defF
				case to:
					d = defT
				}
				s.drB[j] = d / totalDeficit
			}
			for i := 0; i < n; i++ {
				sur := s.mapSur[i]
				switch i {
				case from:
					sur = surF
				case to:
					sur = surT
				}
				if sur <= 0 {
					continue
				}
				base := i * n
				for j := 0; j < n; j++ {
					if s.drB[j] <= 0 {
						continue
					}
					b := sur * s.drB[j]
					if b <= 0 {
						continue
					}
					t := b * 8 / s.bwDen[base+j]
					a.LoadSum += t
					if t > tNet {
						tNet = t
					}
					a.USD += b / 1e9 * s.est.info.EgressPerGB[i]
					if s.needC {
						a.KgCO2 += b / 1e9 * s.netC[i]
					}
				}
			}
		}
	}
	cF := s.compTerm(pf, from)
	cT := s.compTerm(pt, to)
	tComp := 0.0
	for j := 0; j < n; j++ {
		c := s.comp[j]
		switch j {
		case from:
			c = cF
		case to:
			c = cT
		}
		a.LoadSum += c
		if c > tComp {
			tComp = c
		}
		if s.needC {
			a.KgCO2 += c * s.compC[j]
		}
	}
	s.p[from], s.p[to] = oldF, oldT
	a.Secs = tNet + tComp
	return a
}

// applyMove commits the accepted move into s.p and refreshes the base
// caches: O(n) column/compute updates for shuffle stages (the
// recomputed entries land on exactly the winning candidate's bits),
// nothing for map stages, whose candidates never read the caches.
func (s *search) applyMove(from, to int, step float64) {
	s.p[from] -= step
	s.p[to] += step
	if s.stage.Kind == spark.MapKind {
		// Every migration entry changes through the total deficit, so
		// re-derive the full base (caches + screening aggregates) — the
		// once-per-accepted-move full estimate.
		s.fillBase()
		return
	}
	n := s.n
	pf, pt := s.p[from], s.p[to]
	for _, i := range s.nzRows {
		base := i * n
		s.tE[base+from], s.uE[base+from] = s.entryTerms(i, from, s.layout[i]*pf)
		s.tE[base+to], s.uE[base+to] = s.entryTerms(i, to, s.layout[i]*pt)
	}
	if s.needC {
		for _, i := range s.nzRows {
			base := i * n
			s.cE[base+from] = s.entryCarbon(i, from, s.layout[i]*pf)
			s.cE[base+to] = s.entryCarbon(i, to, s.layout[i]*pt)
		}
	}
	s.comp[from] = s.compTerm(pf, from)
	s.comp[to] = s.compTerm(pt, to)
	s.refreshColumn(from)
	s.refreshColumn(to)
	s.refreshTotals()
}

// screen cheaply decides whether the move (from→to) is provably
// non-improving, in O(n) flops with no divisions: column sums and
// maxes of the candidate's two fresh columns are the base column rates
// scaled by pf/pt (exact up to ulps), the rest comes from the
// maintained aggregates. The approximation is guarded by an error
// margin orders of magnitude wider than the float noise, so a true
// improvement can never be screened out — it merely falls through to
// the exact canonical evaluation. Rejections are safe by construction:
// the screen's value understates the candidate's true objective by at
// most the margin — which is why only ScreenSafe (monotone) scorers
// reach this path. The carbon terms are exact +0.0 when the scorer
// doesn't price carbon, so the non-carbon margin bits are unchanged.
func (s *search) screen(from, to int, pf, pt float64, bestV float64, sc Scorer) bool {
	tNet := pf * s.colRateMax[from]
	if v := pt * s.colRateMax[to]; v > tNet {
		tNet = v
	}
	tComp := pf * s.compRate[from]
	if v := pt * s.compRate[to]; v > tComp {
		tComp = v
	}
	for j := 0; j < s.n; j++ {
		if j == from || j == to {
			continue
		}
		if s.colMaxT[j] > tNet {
			tNet = s.colMaxT[j]
		}
		if s.comp[j] > tComp {
			tComp = s.comp[j]
		}
	}
	load := s.totalT - s.colSumT[from] - s.colSumT[to] +
		pf*s.colRateSum[from] + pt*s.colRateSum[to] +
		s.compSum - s.comp[from] - s.comp[to] +
		pf*s.compRate[from] + pt*s.compRate[to]
	usd := s.totalU - s.colSumU[from] - s.colSumU[to] +
		pf*s.colUsdSum[from] + pt*s.colUsdSum[to]
	if load < 0 {
		load = 0
	}
	if usd < 0 {
		usd = 0
	}
	co2, cm := 0.0, 0.0
	if s.needC {
		// The carbon aggregate is column-linear exactly like usd, with
		// the per-DC compute carbon scaling by pf/pt through compRate.
		co2 = s.totalC - s.colSumC[from] - s.colSumC[to] +
			pf*s.colRateCSum[from] + pt*s.colRateCSum[to] +
			s.compCarbSum - s.comp[from]*s.compC[from] - s.comp[to]*s.compC[to] +
			pf*s.compRate[from]*s.compC[from] + pt*s.compRate[to]*s.compC[to]
		if co2 < 0 {
			co2 = 0
		}
		cm = s.totalC + s.compCarbSum
	}
	secs := tNet + tComp
	v := sc.Score(Aggregates{Secs: secs, LoadSum: load, USD: usd, KgCO2: co2})
	// The margin dominates every error source: ulp-level scale
	// factorization, arbitrary- vs canonical-order summation, the
	// cancellation in the total-minus-columns differences (covered by
	// the absolute term) and the ×1e6 amplification at Kimchi's
	// latency wall (covered by the 1e-7·secs share, three orders wider
	// than 1e6 × the relative secs error).
	margin := 1e-7*(secs+load+usd+co2) + 1e-12*(s.totalT+s.totalU+s.compSum+cm)
	return v-margin >= bestV-1e-9
}

// mapScreen is the map-stage counterpart of screen: entries of the
// candidate whose source and destination DCs are untouched by the move
// are the base entries scaled by totalDeficit/totalDeficit', so the
// unchanged block's sums and max bound the candidate's objective from
// below in O(n) (the changed rows and columns contribute ≥ 0 and are
// dropped). Approximate, margin-guarded, rejection-only.
func (s *search) mapScreen(from, to int, pf, pt float64, bestV float64, sc Scorer) bool {
	n := s.n
	surF, defF := s.splitSD(from, pf)
	surT, defT := s.splitSD(to, pt)
	totalDefC := s.mapTotalDef - s.mapDef[from] - s.mapDef[to] + defF + defT
	k := 0.0
	if totalDefC > 0 && s.mapTotalDef > 0 {
		if totalDefC < 1e-6*s.mapTotalDef {
			// Near-total cancellation: the delta-computed denominator is
			// too noisy to bound the scale factor — never skip here.
			// (A non-positive totalDefC is different: the candidate
			// moves nothing, so k=0 under-counts and stays a valid
			// lower bound.)
			return false
		}
		k = s.mapTotalDef / totalDefC
	}
	cornerT := s.tE[from*n+to] + s.tE[to*n+from] + s.tE[from*n+from] + s.tE[to*n+to]
	cornerU := s.uE[from*n+to] + s.uE[to*n+from] + s.uE[from*n+from] + s.uE[to*n+to]
	blockT := s.mapTotT - s.mapRowT[from] - s.mapRowT[to] - s.mapColT[from] - s.mapColT[to] + cornerT
	blockU := s.mapTotU - s.mapRowU[from] - s.mapRowU[to] - s.mapColU[from] - s.mapColU[to] + cornerU
	if blockT < 0 {
		blockT = 0
	}
	if blockU < 0 {
		blockU = 0
	}
	blockMax := 0.0
	for _, e := range s.mapTop {
		if e.i != from && e.i != to && e.j != from && e.j != to {
			blockMax = e.v
			break
		}
	}

	// The moved DCs' own rows and columns scale entrywise too: for
	// j∉{from,to}, cand[from][j] = base[from][j]·(sur'/sur)·k, and
	// likewise columns by deficit ratios — so their sums and maxes join
	// the bound scaled, instead of being dropped (the corners, which
	// scale by two ratios at once, stay dropped — they are ≥ 0).
	rsF, rsT, csF, csT := 0.0, 0.0, 0.0, 0.0
	if k > 0 {
		if s.mapSur[from] > 0 {
			rsF = surF / s.mapSur[from] * k
		}
		if s.mapSur[to] > 0 {
			rsT = surT / s.mapSur[to] * k
		}
		if s.mapDef[from] > 0 {
			csF = defF / s.mapDef[from] * k
		}
		if s.mapDef[to] > 0 {
			csT = defT / s.mapDef[to] * k
		}
	}
	clamp0 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	netLoad := k*blockT +
		rsF*clamp0(s.mapRowT[from]-s.tE[from*n+from]-s.tE[from*n+to]) +
		rsT*clamp0(s.mapRowT[to]-s.tE[to*n+to]-s.tE[to*n+from]) +
		csF*clamp0(s.mapColT[from]-s.tE[from*n+from]-s.tE[to*n+from]) +
		csT*clamp0(s.mapColT[to]-s.tE[to*n+to]-s.tE[from*n+to])
	netUsd := k*blockU +
		rsF*clamp0(s.mapRowU[from]-s.uE[from*n+from]-s.uE[from*n+to]) +
		rsT*clamp0(s.mapRowU[to]-s.uE[to*n+to]-s.uE[to*n+from]) +
		csF*clamp0(s.mapColU[from]-s.uE[from*n+from]-s.uE[to*n+from]) +
		csT*clamp0(s.mapColU[to]-s.uE[to*n+to]-s.uE[from*n+to])
	tNet := k * blockMax
	rowMax := func(two [2]mapEntry, scale float64) {
		for _, e := range two {
			if e.i < 0 || e.j == from || e.j == to {
				continue // corner entries scale by two ratios; dropped
			}
			if v := scale * e.v; v > tNet {
				tNet = v
			}
			break
		}
	}
	colMax := func(two [2]mapEntry, scale float64) {
		for _, e := range two {
			if e.i < 0 || e.i == from || e.i == to {
				continue
			}
			if v := scale * e.v; v > tNet {
				tNet = v
			}
			break
		}
	}
	rowMax(s.mapRow2[from], rsF)
	rowMax(s.mapRow2[to], rsT)
	colMax(s.mapCol2[from], csF)
	colMax(s.mapCol2[to], csT)

	cF := pf * s.compRate[from]
	cT := pt * s.compRate[to]
	tComp, compLoad := 0.0, 0.0
	for j := 0; j < n; j++ {
		c := s.comp[j]
		switch j {
		case from:
			c = cF
		case to:
			c = cT
		}
		compLoad += c
		if c > tComp {
			tComp = c
		}
	}

	co2, cm := 0.0, 0.0
	if s.needC {
		// Carbon entries scale entrywise like dollars: the unchanged
		// block by k, the moved DCs' rows/columns by their surplus/
		// deficit ratios, plus the compute carbon of the candidate.
		cornerC := s.cE[from*n+to] + s.cE[to*n+from] + s.cE[from*n+from] + s.cE[to*n+to]
		blockC := s.mapTotC - s.mapRowC[from] - s.mapRowC[to] - s.mapColC[from] - s.mapColC[to] + cornerC
		if blockC < 0 {
			blockC = 0
		}
		co2 = k*blockC +
			rsF*clamp0(s.mapRowC[from]-s.cE[from*n+from]-s.cE[from*n+to]) +
			rsT*clamp0(s.mapRowC[to]-s.cE[to*n+to]-s.cE[to*n+from]) +
			csF*clamp0(s.mapColC[from]-s.cE[from*n+from]-s.cE[to*n+from]) +
			csT*clamp0(s.mapColC[to]-s.cE[to*n+to]-s.cE[from*n+to])
		for j := 0; j < n; j++ {
			c := s.comp[j]
			switch j {
			case from:
				c = cF
			case to:
				c = cT
			}
			co2 += c * s.compC[j]
		}
		cm = s.mapTotC
	}

	secs := tNet + tComp
	load := netLoad + compLoad
	usd := netUsd
	v := sc.Score(Aggregates{Secs: secs, LoadSum: load, USD: usd, KgCO2: co2})
	margin := 1e-7*(secs+load+usd+co2) + 1e-12*(s.mapTotT+s.mapTotU+compLoad+cm)
	return v-margin >= bestV-1e-9
}

// normalizeInto is Placement.Normalize writing into an owned buffer —
// the same float operations, without the copy allocation.
func normalizeInto(dst, src spark.Placement) {
	total := 0.0
	for _, v := range src {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		u := 1 / float64(len(src))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i, v := range src {
		if v > 0 {
			dst[i] = v / total
		} else {
			dst[i] = 0
		}
	}
}

// descend runs the greedy shrinking-step descent from start under the
// scorer's objective, leaving the final placement in s.p (with its
// estimate aggregates in s.agg) and returning the final objective
// value. Moves, acceptance rule (strict 1e-9 improvement against the
// best-so-far) and step schedule replicate descendReference exactly.
// Only ScreenSafe scorers get the rejection screens; the rest pay the
// exact canonical evaluation for every candidate — slower, never wrong.
func (s *search) descend(start spark.Placement, sc Scorer) float64 {
	s.needC = sc.NeedsCarbon()
	if s.needC && !s.carbonReady {
		s.prepCarbon()
	}
	useScreens := sc.ScreenSafe()
	normalizeInto(s.p, start)
	s.fillBase()
	best := sc.Score(s.agg)
	isMap := s.stage.Kind == spark.MapKind
	step := 0.10
	for step >= 0.005 {
		for {
			bestV := best
			bestFrom, bestTo := -1, -1
			var bestAgg Aggregates
			for from := 0; from < s.n; from++ {
				if s.p[from] < step {
					continue
				}
				pf := s.p[from] - step
				for to := 0; to < s.n; to++ {
					if to == from {
						continue
					}
					pt := s.p[to] + step
					var a Aggregates
					if isMap {
						if useScreens && s.mapScreen(from, to, pf, pt, bestV, sc) {
							continue
						}
						a = s.evalMapCand(from, to, pf, pt)
					} else {
						if useScreens && s.screen(from, to, pf, pt, bestV, sc) {
							continue
						}
						a = s.evalShuffleCand(from, to, pf, pt)
					}
					if v := sc.Score(a); v < bestV-1e-9 {
						bestV = v
						bestFrom, bestTo = from, to
						bestAgg = a
					}
				}
			}
			if bestFrom < 0 {
				break
			}
			s.applyMove(bestFrom, bestTo, step)
			best = bestV
			s.agg = bestAgg
		}
		step /= 2
	}
	return best
}

// placeMultiStart runs the three-start descent under any Scorer and
// returns the winning placement in s.bestBuf along with its estimate
// aggregates. Kimchi reads the JCT phase's seconds for its latency
// budget directly instead of re-estimating the placement the descent
// just scored, and both of its phases share this one context.
func (s *search) placeMultiStart(sc Scorer) (best spark.Placement, agg Aggregates) {
	normalizeInto(s.starts[0], s.layout) // data locality
	u := 1 / float64(s.n)
	for i := range s.starts[1] {
		s.starts[1][i] = u // uniform
	}
	normalizeInto(s.starts[2], s.est.info.ComputeRates) // compute-proportional

	bestV := 0.0
	for i := 0; i < 3; i++ {
		v := s.descend(s.starts[i], sc)
		if i == 0 || v < bestV {
			bestV = v
			copy(s.bestBuf, s.p)
			agg = s.agg
		}
	}
	return s.bestBuf, agg
}

// descendGeneric is the allocation-light descent for objectives without
// estimator structure (Iridium's per-site model): identical moves and
// acceptance to descendReference, with one reused candidate buffer
// instead of a fresh slice per evaluation.
func descendGeneric(n int, start spark.Placement, objective func(spark.Placement) float64) spark.Placement {
	p := start.Normalize()
	cand := make(spark.Placement, n)
	best := objective(p)
	step := 0.10
	for step >= 0.005 {
		for {
			bestV := best
			bestFrom, bestTo := -1, -1
			for from := 0; from < n; from++ {
				if p[from] < step {
					continue
				}
				for to := 0; to < n; to++ {
					if to == from {
						continue
					}
					copy(cand, p)
					cand[from] -= step
					cand[to] += step
					if v := objective(cand); v < bestV-1e-9 {
						bestV = v
						bestFrom, bestTo = from, to
					}
				}
			}
			if bestFrom < 0 {
				break
			}
			p[bestFrom] -= step
			p[bestTo] += step
			best = bestV
		}
		step /= 2
	}
	return p
}
