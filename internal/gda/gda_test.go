package gda

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// testInfo builds a 4-DC cluster description with unit compute and the
// default egress prices.
func testInfo() ClusterInfo {
	regions := geo.TestbedSubset(4)
	rates := cost.DefaultRates()
	info := ClusterInfo{Regions: regions}
	for _, r := range regions {
		info.ComputeRates = append(info.ComputeRates, 1)
		info.EgressPerGB = append(info.EgressPerGB, rates.EgressPerGBFor(r))
	}
	return info
}

// asymmetricBW builds a believed matrix where DC3's inbound links are
// weak but its outbound links are fine — the situation where placement
// genuinely matters: reduce tasks placed at DC3 pull data over 80 Mbps,
// while DC3's own intermediate can leave at full speed.
func asymmetricBW() bwmatrix.Matrix {
	m := bwmatrix.NewFilled(4, 900)
	for i := 0; i < 4; i++ {
		m[i][i] = 0
		m[i][3] = 80
	}
	return m
}

// reduceStage is a shuffle-heavy stage for placement tests.
var reduceStage = spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1, Selectivity: 1}

// TestLocalityFollowsData checks the vanilla policy.
func TestLocalityFollowsData(t *testing.T) {
	p := Locality{}.Place(0, reduceStage, []float64{30, 10, 0, 0})
	if p[0] != 0.75 || p[1] != 0.25 || p[2] != 0 {
		t.Errorf("locality placement %v", p)
	}
}

// TestTetriumAvoidsWeakDC checks the core WAN-aware behavior: with a
// weak DC3, Tetrium places fewer reduce tasks there than locality
// would, cutting the estimated stage time.
func TestTetriumAvoidsWeakDC(t *testing.T) {
	info := testInfo()
	believed := asymmetricBW()
	layout := []float64{10e9, 10e9, 10e9, 10e9}

	tp := Tetrium{Believed: believed, Info: info}.Place(0, reduceStage, layout)
	lp := spark.LocalityPlacement(layout)

	if tp[3] >= lp[3] {
		t.Errorf("Tetrium kept %.2f of tasks on the weak DC (locality %.2f)", tp[3], lp[3])
	}
	est := estimator{believed: believed, info: info}
	tSecs, _ := est.estimate(reduceStage, layout, tp)
	lSecs, _ := est.estimate(reduceStage, layout, lp)
	if tSecs >= lSecs {
		t.Errorf("Tetrium est %.1fs not below locality %.1fs", tSecs, lSecs)
	}
}

// TestTetriumBalancesCompute checks the multi-resource side: with a
// uniform network but one fast DC, placement shifts toward compute.
func TestTetriumBalancesCompute(t *testing.T) {
	info := testInfo()
	info.ComputeRates = []float64{4, 1, 1, 1}
	believed := bwmatrix.NewFilled(4, 800)
	computeHeavy := spark.Stage{Name: "c", Kind: spark.ReduceKind, SecPerGB: 200, Selectivity: 1}
	layout := []float64{5e9, 5e9, 5e9, 5e9}
	p := Tetrium{Believed: believed, Info: info}.Place(0, computeHeavy, layout)
	for j := 1; j < 4; j++ {
		if p[0] <= p[j] {
			t.Errorf("fast DC got %.2f, slow DC %d got %.2f", p[0], j, p[j])
		}
	}
}

// TestKimchiCheaperWithinEnvelope checks Kimchi's contract: its
// placement costs no more dollars than Tetrium's, and its estimated
// time stays within the slack envelope.
func TestKimchiCheaperWithinEnvelope(t *testing.T) {
	info := testInfo()
	believed := asymmetricBW()
	layout := []float64{20e9, 10e9, 5e9, 5e9}
	est := estimator{believed: believed, info: info}

	tp := Tetrium{Believed: believed, Info: info}.Place(0, reduceStage, layout)
	kp := Kimchi{Believed: believed, Info: info, Slack: 0.15}.Place(0, reduceStage, layout)

	tSecs, tUSD := est.estimate(reduceStage, layout, tp)
	kSecs, kUSD := est.estimate(reduceStage, layout, kp)
	if kUSD > tUSD*1.0001 {
		t.Errorf("Kimchi $%.3f costs more than Tetrium $%.3f", kUSD, tUSD)
	}
	if kSecs > tSecs*1.151 {
		t.Errorf("Kimchi est %.1fs breaks the 15%% envelope over %.1fs", kSecs, tSecs)
	}
}

// TestPlacementsAreDistributions property-checks every scheduler
// returns a valid distribution over DCs.
func TestPlacementsAreDistributions(t *testing.T) {
	info := testInfo()
	f := func(seedBW [12]uint16, layoutRaw [4]uint16) bool {
		believed := bwmatrix.New(4)
		k := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					believed[i][j] = float64(seedBW[k]%2000) + 20
					k++
				}
			}
		}
		layout := make([]float64, 4)
		for i, v := range layoutRaw {
			layout[i] = float64(v) * 1e6
		}
		for _, sched := range []spark.Scheduler{
			Locality{},
			Tetrium{Believed: believed, Info: info},
			Kimchi{Believed: believed, Info: info},
		} {
			p := sched.Place(0, reduceStage, layout)
			sum := 0.0
			for _, v := range p {
				if v < -1e-9 {
					return false
				}
				sum += v
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestNewClusterInfo checks extraction from a live sim.
func TestNewClusterInfo(t *testing.T) {
	cfg := netsim.UniformCluster(geo.TestbedSubset(3), substrate.T2Medium, 1)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)
	info := NewClusterInfo(sim, cost.DefaultRates())
	if info.N() != 3 {
		t.Fatalf("N = %d", info.N())
	}
	for i, r := range info.ComputeRates {
		if r != substrate.T2Medium.ComputeRate {
			t.Errorf("compute rate %d = %v", i, r)
		}
	}
	if info.EgressPerGB[0] != 0.02 {
		t.Errorf("US East egress = %v", info.EgressPerGB[0])
	}
}

// TestSchedulerNames checks labels flow through.
func TestSchedulerNames(t *testing.T) {
	if (Tetrium{Label: "tetrium(static)"}).Name() != "tetrium(static)" {
		t.Error("label ignored")
	}
	if (Tetrium{}).Name() != "tetrium" {
		t.Error("default name wrong")
	}
	if (Kimchi{}).Name() != "kimchi" {
		t.Error("kimchi default name wrong")
	}
}

// TestIridiumAvoidsWeakUplink checks the Iridium baseline: a DC with a
// weak aggregate downlink receives fewer reduce tasks than locality
// would give it.
func TestIridiumAvoidsWeakUplink(t *testing.T) {
	info := testInfo()
	believed := asymmetricBW() // DC3's inbound links are 80 Mbps
	layout := []float64{10e9, 10e9, 10e9, 10e9}
	p := Iridium{Believed: believed, Info: info}.Place(0, reduceStage, layout)
	lp := spark.LocalityPlacement(layout)
	if p[3] >= lp[3] {
		t.Errorf("Iridium kept %.2f of tasks on the weak-downlink DC (locality %.2f)", p[3], lp[3])
	}
}

// TestIridiumIgnoresCompute contrasts Iridium with Tetrium: on a
// network-uniform cluster with one fast DC, Iridium (network-only
// objective) stays near uniform while Tetrium shifts toward compute.
func TestIridiumIgnoresCompute(t *testing.T) {
	info := testInfo()
	info.ComputeRates = []float64{4, 1, 1, 1}
	believed := bwmatrix.NewFilled(4, 800)
	computeHeavy := spark.Stage{Name: "c", Kind: spark.ReduceKind, SecPerGB: 200, Selectivity: 1}
	layout := []float64{5e9, 5e9, 5e9, 5e9}
	ip := Iridium{Believed: believed, Info: info}.Place(0, computeHeavy, layout)
	tp := Tetrium{Believed: believed, Info: info}.Place(0, computeHeavy, layout)
	if tp[0] <= ip[0] {
		t.Errorf("Tetrium (%.2f on fast DC) should exceed Iridium (%.2f): Iridium ignores compute", tp[0], ip[0])
	}
}

// TestEstimateDetailBlackoutFloor locks the estimator's 1 Mbps
// bandwidth floor as a decision rather than an accident: a believed
// blackout (0 Mbps on a pair the placement must ship bytes over)
// still yields finite estimates — huge enough to steer the descent
// away, never +Inf (which would flatten the objective and freeze the
// greedy search).
func TestEstimateDetailBlackoutFloor(t *testing.T) {
	believed := bwmatrix.NewFilled(4, 900)
	for i := range believed {
		believed[i][i] = 0
	}
	believed[0][3] = 0  // believed blackout
	believed[1][3] = -5 // stale/garbage measurement
	est := estimator{believed: believed, info: testInfo()}

	layout := []float64{40e9, 30e9, 20e9, 10e9}
	// A placement that routes real bytes over the dead pairs.
	p := spark.Placement{0.1, 0.1, 0.1, 0.7}
	secs, loadSum, usd := est.estimateDetail(reduceStage, layout, p)
	for name, v := range map[string]float64{"secs": secs, "loadSum": loadSum, "usd": usd} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("%s = %v for a believed-blackout pair, want finite (1 Mbps floor)", name, v)
		}
	}
	if secs <= 0 {
		t.Fatalf("secs = %v, want positive", secs)
	}
	// The floored estimate must still rank the blackout placement far
	// behind one that avoids the dead links entirely.
	avoid := spark.Placement{0.4, 0.3, 0.3, 0}
	fast, _, _ := est.estimateDetail(reduceStage, layout, avoid)
	if secs < fast*10 {
		t.Errorf("blackout placement estimated at %.1fs vs %.1fs avoiding it; floor lost the gradient", secs, fast)
	}

	// And the schedulers consuming the estimate keep producing valid
	// placements on a believed-blackout matrix.
	place := Tetrium{Believed: believed, Info: testInfo()}.Place(0, reduceStage, layout)
	sum := 0.0
	for _, v := range place {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("tetrium placement %v invalid under blackout beliefs", place)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("tetrium placement %v does not sum to 1", place)
	}
	if place[3] > 0.05 {
		t.Errorf("tetrium still routes %.0f%% of tasks to the DC behind dead links", place[3]*100)
	}
}
