// Package gda implements the WAN-aware geo-distributed analytics
// schedulers the paper evaluates WANify with:
//
//   - Locality: vanilla Spark's data-locality placement (the
//     "No WAN-aware" baseline of §5.3.1).
//   - Tetrium [21]: multi-resource placement minimizing estimated stage
//     completion time (network transfer + compute) over task fractions.
//   - Kimchi [30]: network-cost-aware placement minimizing dollar cost
//     of WAN transfers subject to staying within a latency envelope of
//     the fastest placement.
//
// Each scheduler consumes a *believed* bandwidth matrix. Feeding the
// same scheduler statically-independent, statically-simultaneous, or
// WANify-predicted matrices is exactly how the paper's Table 4 and
// Figs. 7/8/10/11 vary their conditions — bad beliefs yield bad
// placements on the real (simulated) network.
package gda

import (
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// ClusterInfo describes what schedulers know about the cluster.
type ClusterInfo struct {
	// Regions in cluster order.
	Regions []geo.Region
	// ComputeRates is the aggregate task-processing rate per DC.
	ComputeRates []float64
	// EgressPerGB is the WAN egress price per DC.
	EgressPerGB []float64
	// CarbonPerCompSec is the kgCO₂-eq of one second of the DC's full
	// compute draw (aggregate watts × grid intensity). Nil is treated
	// as all zeros — only carbon-aware scorers read it.
	CarbonPerCompSec []float64
	// CarbonPerGB is the kgCO₂-eq of one GB leaving the DC over the
	// WAN, attributed to the sender like egress pricing. Nil = zeros.
	CarbonPerGB []float64
}

// NewClusterInfo extracts scheduler-visible cluster facts from a
// simulator and pricing table, with the default energy/carbon rates.
func NewClusterInfo(sim substrate.Cluster, rates cost.Rates) ClusterInfo {
	return NewClusterInfoEnergy(sim, rates, cost.DefaultEnergyRates())
}

// NewClusterInfoEnergy is NewClusterInfo with explicit energy rates
// (wanify.Config.Energy feeds through here).
func NewClusterInfoEnergy(sim substrate.Cluster, rates cost.Rates, energy cost.EnergyRates) ClusterInfo {
	n := sim.NumDCs()
	info := ClusterInfo{
		Regions:          sim.Regions(),
		ComputeRates:     make([]float64, n),
		EgressPerGB:      make([]float64, n),
		CarbonPerCompSec: make([]float64, n),
		CarbonPerGB:      make([]float64, n),
	}
	for dc := 0; dc < n; dc++ {
		watts := 0.0
		for _, vm := range sim.VMsOfDC(dc) {
			info.ComputeRates[dc] += sim.Spec(vm).ComputeRate
			watts += sim.Spec(vm).Watts
		}
		info.EgressPerGB[dc] = rates.EgressPerGBFor(info.Regions[dc])
		info.CarbonPerCompSec[dc] = energy.ComputeKgCO2PerSec(watts, info.Regions[dc])
		info.CarbonPerGB[dc] = energy.WANKgCO2PerGB(info.Regions[dc])
	}
	return info
}

// carbonAt reads a carbon coefficient with nil-as-zeros semantics, so
// ClusterInfo literals predating the energy model keep working.
func carbonAt(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// N returns the cluster size.
func (c ClusterInfo) N() int { return len(c.Regions) }

// Locality is vanilla Spark: tasks go where the data is, for every
// stage. Map stages move nothing; shuffles land proportional to the
// intermediate data.
type Locality struct{}

// Name implements spark.Scheduler.
func (Locality) Name() string { return "locality" }

// Place implements spark.Scheduler.
func (Locality) Place(_ int, _ spark.Stage, layout []float64) spark.Placement {
	return spark.LocalityPlacement(layout)
}

// estimator predicts a stage's completion time and WAN cost for a
// candidate placement under a believed bandwidth matrix — the planning
// model Tetrium and Kimchi share.
type estimator struct {
	believed bwmatrix.Matrix
	info     ClusterInfo
}

// estimate returns (seconds, networkUSD) for running the stage with
// placement p over the current layout.
func (e estimator) estimate(stage spark.Stage, layout []float64, p spark.Placement) (float64, float64) {
	secs, _, usd := e.estimateDetail(stage, layout, p)
	return secs, usd
}

// estimateDetail additionally returns the *sum* of per-link and per-DC
// times. Greedy descent on a pure max() objective plateaus (a single
// move cannot lower the max when several DCs tie at it), so schedulers
// add a small multiple of the sum as gradient pressure.
func (e estimator) estimateDetail(stage spark.Stage, layout []float64, p spark.Placement) (secs, loadSum, usd float64) {
	var transfer [][]float64
	if stage.Kind == spark.MapKind {
		transfer = spark.MigrationMatrix(layout, p)
	} else {
		transfer = spark.ShuffleMatrix(layout, p)
	}
	n := e.info.N()
	tNet := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := transfer[i][j]
			if i == j || b <= 0 {
				continue
			}
			bw := e.believed[i][j]
			// Deliberate 1 Mbps floor: a believed blackout (0 Mbps, or a
			// stale/garbage negative) must still yield a finite — merely
			// enormous — transfer-time estimate, so the greedy descent
			// ranks placements away from the dead link instead of
			// drowning every candidate in the same +Inf (which would
			// erase the gradient entirely and freeze the search at its
			// start). Locked by TestEstimateDetailBlackoutFloor.
			if bw < 1 {
				bw = 1
			}
			t := b * 8 / (bw * 1e6)
			loadSum += t
			if t > tNet {
				tNet = t
			}
			usd += b / 1e9 * e.info.EgressPerGB[i]
		}
	}
	total := 0.0
	for _, b := range layout {
		total += b
	}
	tComp := 0.0
	for j := 0; j < n; j++ {
		share := total * p[j]
		if share <= 0 {
			continue
		}
		rate := e.info.ComputeRates[j]
		if rate <= 0 {
			rate = 1e-6
		}
		t := share / 1e9 * stage.SecPerGB / rate
		loadSum += t
		if t > tComp {
			tComp = t
		}
	}
	return tNet + tComp, loadSum, usd
}

// estimateAgg is estimateDetail extended with the carbon aggregate:
// the Secs/LoadSum/USD fields evaluate the identical expressions in
// the identical order (locked bit-equal by
// TestEstimateAggMatchesDetail), and KgCO2 accumulates each network
// entry's sender-attributed transport carbon followed by each DC's
// compute carbon — the canonical order the search context's carbon
// delta paths replicate. This is the full-evaluation oracle behind
// placeScorerReference.
func (e estimator) estimateAgg(stage spark.Stage, layout []float64, p spark.Placement) Aggregates {
	var transfer [][]float64
	if stage.Kind == spark.MapKind {
		transfer = spark.MigrationMatrix(layout, p)
	} else {
		transfer = spark.ShuffleMatrix(layout, p)
	}
	n := e.info.N()
	var a Aggregates
	tNet := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b := transfer[i][j]
			if i == j || b <= 0 {
				continue
			}
			bw := e.believed[i][j]
			if bw < 1 {
				bw = 1
			}
			t := b * 8 / (bw * 1e6)
			a.LoadSum += t
			if t > tNet {
				tNet = t
			}
			a.USD += b / 1e9 * e.info.EgressPerGB[i]
			a.KgCO2 += b / 1e9 * carbonAt(e.info.CarbonPerGB, i)
		}
	}
	total := 0.0
	for _, b := range layout {
		total += b
	}
	tComp := 0.0
	for j := 0; j < n; j++ {
		share := total * p[j]
		if share <= 0 {
			continue
		}
		rate := e.info.ComputeRates[j]
		if rate <= 0 {
			rate = 1e-6
		}
		t := share / 1e9 * stage.SecPerGB / rate
		a.LoadSum += t
		if t > tComp {
			tComp = t
		}
		a.KgCO2 += t * carbonAt(e.info.CarbonPerCompSec, j)
	}
	a.Secs = tNet + tComp
	return a
}

// The descent's step schedule halves unconditionally after each
// exhausted sweep. An earlier revision tracked an `improved` flag and
// then halved in both arms of `if !improved` — evidently a
// restart-at-full-step idea that was never wired up. Restarting at the
// full step after an improvement would re-search coarse moves from the
// new point and produce different (occasionally better, always slower)
// placements, which would invalidate every golden experiment output;
// we keep the always-halve schedule as the locked decision and dropped
// the dead flag. The search itself lives in search.go (delta-evaluated)
// with the original kept as descendReference in reference.go.

// Tetrium minimizes estimated stage completion time (network + compute)
// over task placements, following Hung et al.'s multi-resource
// formulation [21].
type Tetrium struct {
	// Label distinguishes variants in reports, e.g. "tetrium(static)".
	Label string
	// Believed is the bandwidth matrix the scheduler plans with.
	Believed bwmatrix.Matrix
	// Info is the cluster description.
	Info ClusterInfo
}

// Name implements spark.Scheduler.
func (t Tetrium) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "tetrium"
}

// Place implements spark.Scheduler. Tetrium optimizes completion time;
// the JCT scorer's loadSum term guides the greedy descent off max()
// plateaus, and the (weaker still) dollar term breaks ties among
// near-equal placements (Hung et al. break ties toward lower cost) so
// WAN bytes don't drift up. Three deterministic starts — data locality,
// uniform, and compute-proportional — because the max() objective has
// valleys a single-move greedy cannot cross (e.g. shifting work toward
// a fast DC raises the network max before the compute max falls).
// The descent itself runs on the pooled delta-evaluating context
// (search.go), bit-identical to placeTetriumReference.
func (t Tetrium) Place(_ int, stage spark.Stage, layout []float64) spark.Placement {
	return PlaceScored(JCT{}, t.Believed, t.Info, stage, layout)
}

// Kimchi minimizes the WAN dollar cost of a stage subject to its
// estimated completion time staying within Slack of the fastest
// placement found — Oh et al.'s network-cost-aware placement [30].
type Kimchi struct {
	// Label distinguishes variants in reports.
	Label string
	// Believed is the bandwidth matrix the scheduler plans with.
	Believed bwmatrix.Matrix
	// Info is the cluster description.
	Info ClusterInfo
	// Slack is the tolerated latency inflation over the fastest
	// placement (default 0.10 = 10%).
	Slack float64
}

// Name implements spark.Scheduler.
func (k Kimchi) Name() string {
	if k.Label != "" {
		return k.Label
	}
	return "kimchi"
}

// Place implements spark.Scheduler: the fastest placement first
// (Tetrium objective), then a descent on dollars with the latency
// envelope as a penalty wall. Both phases share one pooled search
// context, and the budget reads the seconds the Tetrium phase already
// computed for its winner instead of re-estimating it — the reference
// ran the full three-start descent and then estimated the same
// placement again (see placeKimchiReference).
func (k Kimchi) Place(_ int, stage spark.Stage, layout []float64) spark.Placement {
	slack := k.Slack
	if slack == 0 {
		slack = 0.10
	}
	s := getSearch(estimator{believed: k.Believed, info: k.Info}, stage, layout)
	fast, agg := s.placeMultiStart(JCT{})
	s.descend(fast, Cost{BudgetS: agg.Secs * (1 + slack)})
	out := append(spark.Placement(nil), s.p...)
	putSearch(s)
	return out
}

// Iridium is the classic WAN-aware placement of Pu et al. [33], the
// lineage Tetrium and Kimchi extend: choose reduce-task fractions
// minimizing the slowest DC's shuffle time, where each DC is modelled
// by an aggregate uplink and downlink derived from the believed matrix
// (Iridium's per-site bandwidth model predates pairwise matrices).
// It ignores compute — the gap Tetrium's multi-resource objective
// closes — and is included as a third comparison baseline.
type Iridium struct {
	// Label distinguishes variants in reports.
	Label string
	// Believed is the bandwidth matrix the scheduler plans with.
	Believed bwmatrix.Matrix
	// Info is the cluster description.
	Info ClusterInfo
}

// Name implements spark.Scheduler.
func (ir Iridium) Name() string {
	if ir.Label != "" {
		return ir.Label
	}
	return "iridium"
}

// Place implements spark.Scheduler: minimize max_i max(upload_i,
// download_i) with upload_i = data_i·(1−p_i)/U_i and download_i =
// (total−data_i)·p_i/D_i, U/D being the believed aggregate egress and
// ingress of site i.
func (ir Iridium) Place(_ int, stage spark.Stage, layout []float64) spark.Placement {
	obj, n := ir.objective(stage, layout)
	a := descendGeneric(n, spark.LocalityPlacement(layout), obj)
	b := descendGeneric(n, spark.UniformPlacement(n), obj)
	if obj(a) <= obj(b) {
		return a
	}
	return b
}

// objective builds Iridium's per-site transfer-time objective over the
// current layout (shared by Place and the reference path).
func (ir Iridium) objective(stage spark.Stage, layout []float64) (func(spark.Placement) float64, int) {
	n := ir.Info.N()
	up := make([]float64, n)
	down := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				up[i] += ir.Believed[i][j]
				down[i] += ir.Believed[j][i]
			}
		}
		if up[i] < 1 {
			up[i] = 1
		}
		if down[i] < 1 {
			down[i] = 1
		}
	}
	total := 0.0
	for _, b := range layout {
		total += b
	}
	obj := func(p spark.Placement) float64 {
		if stage.Kind == spark.MapKind {
			// Iridium moves input only when tasks leave the data; use
			// the same upload/download model on the migration volume.
			worst, sum := 0.0, 0.0
			for i := 0; i < n; i++ {
				deficit := total*p[i] - layout[i]
				var t float64
				if deficit < 0 {
					t = -deficit * 8 / (up[i] * 1e6)
				} else {
					t = deficit * 8 / (down[i] * 1e6)
				}
				sum += t
				if t > worst {
					worst = t
				}
			}
			return worst + 1e-3*sum
		}
		worst, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tu := layout[i] * (1 - p[i]) * 8 / (up[i] * 1e6)
			td := (total - layout[i]) * p[i] * 8 / (down[i] * 1e6)
			t := math.Max(tu, td)
			sum += t
			if t > worst {
				worst = t
			}
		}
		return worst + 1e-3*sum
	}
	return obj, n
}

var (
	_ spark.Scheduler = Locality{}
	_ spark.Scheduler = Tetrium{}
	_ spark.Scheduler = Kimchi{}
	_ spark.Scheduler = Iridium{}
)

// MinBelievedBW is a convenience for experiments: the weakest believed
// link, used when reporting "minimum BW of the cluster" improvements.
func MinBelievedBW(m bwmatrix.Matrix) float64 { return m.MinOffDiagonal() }
