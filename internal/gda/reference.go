package gda

import (
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/spark"
)

// This file keeps the pre-optimization scheduler search verbatim — the
// same playbook as netsim's allocateReference and rf's trainReference.
// descendReference is the oracle the delta-evaluated search context is
// locked against (TestPlaceMatchesReference compares final placements
// element for element across randomized clusters) and the benchmark
// baseline behind BenchmarkSchedulerPlaceReference / wanify-bench's
// scheduler_place_reference_ns_per_op.

// descendReference greedily improves a placement under the given
// objective (lower is better), moving probability mass between DCs in
// shrinking steps — the original descend: a fresh candidate Placement
// is allocated for every single-move evaluation, and each objective
// call rebuilds the full O(n²) transfer matrix. It is deterministic and
// terminates after the step underflows.
//
// The original tracked an `improved` flag across each sweep and then
// halved the step identically in both arms of `if !improved`; the dead
// branch is collapsed here (and in the optimized search) — same
// descent, locked by the experiment goldens. See gda.go for the
// restart-at-full-step alternative we deliberately did not take.
func descendReference(n int, start spark.Placement, objective func(spark.Placement) float64) spark.Placement {
	p := append(spark.Placement(nil), start.Normalize()...)
	best := objective(p)
	step := 0.10
	for step >= 0.005 {
		for {
			var bestP spark.Placement
			bestV := best
			for from := 0; from < n; from++ {
				if p[from] < step {
					continue
				}
				for to := 0; to < n; to++ {
					if to == from {
						continue
					}
					cand := append(spark.Placement(nil), p...)
					cand[from] -= step
					cand[to] += step
					if v := objective(cand); v < bestV-1e-9 {
						bestV = v
						bestP = cand
					}
				}
			}
			if bestP == nil {
				break
			}
			p, best = bestP, bestV
		}
		step /= 2
	}
	return p
}

// placeTetriumReference is the original Tetrium.Place: one estimator
// per call, three descents, and a final re-evaluation of each descent's
// result (the value descend already knew).
func placeTetriumReference(t Tetrium, stage spark.Stage, layout []float64) spark.Placement {
	est := estimator{believed: t.Believed, info: t.Info}
	obj := func(p spark.Placement) float64 {
		secs, loadSum, usd := est.estimateDetail(stage, layout, p)
		return secs + 1e-3*loadSum + 0.05*usd
	}
	n := t.Info.N()
	starts := []spark.Placement{
		spark.LocalityPlacement(layout),
		spark.UniformPlacement(n),
		spark.Placement(append([]float64(nil), t.Info.ComputeRates...)).Normalize(),
	}
	var best spark.Placement
	bestV := 0.0
	for i, s := range starts {
		cand := descendReference(n, s, obj)
		if v := obj(cand); i == 0 || v < bestV {
			best, bestV = cand, v
		}
	}
	return best
}

// placeScorerReference is the full-evaluation oracle for PlaceScored:
// the same three starts and descendReference moves, with every
// candidate priced by sc.Score over estimateAgg's from-scratch
// aggregates (fresh transfer matrix per evaluation, no caches, no
// screens). TestScorerPlaceMatchesReference locks PlaceScored to this
// element for element, for every registered scorer.
func placeScorerReference(sc Scorer, believed bwmatrix.Matrix, info ClusterInfo, stage spark.Stage, layout []float64) spark.Placement {
	est := estimator{believed: believed, info: info}
	obj := func(p spark.Placement) float64 {
		return sc.Score(est.estimateAgg(stage, layout, p))
	}
	n := info.N()
	starts := []spark.Placement{
		spark.LocalityPlacement(layout),
		spark.UniformPlacement(n),
		spark.Placement(append([]float64(nil), info.ComputeRates...)).Normalize(),
	}
	var best spark.Placement
	bestV := 0.0
	for i, s := range starts {
		cand := descendReference(n, s, obj)
		if v := obj(cand); i == 0 || v < bestV {
			best, bestV = cand, v
		}
	}
	return best
}

// placeKimchiReference is the original Kimchi.Place: it re-runs the
// full three-start Tetrium descent for the latency envelope, then
// re-estimates the placement that descent had already scored.
func placeKimchiReference(k Kimchi, stage spark.Stage, layout []float64) spark.Placement {
	slack := k.Slack
	if slack == 0 {
		slack = 0.10
	}
	est := estimator{believed: k.Believed, info: k.Info}
	fast := placeTetriumReference(Tetrium{Believed: k.Believed, Info: k.Info}, stage, layout)
	tBest, _ := est.estimate(stage, layout, fast)
	budget := tBest * (1 + slack)

	obj := func(p spark.Placement) float64 {
		secs, usd := est.estimate(stage, layout, p)
		if secs > budget {
			return usd + 1e6*(secs-budget)
		}
		return usd
	}
	return descendReference(k.Info.N(), fast, obj)
}

// placeIridiumReference runs Iridium's two descents through the
// allocating reference search (the live path uses descendGeneric, which
// reuses one candidate buffer).
func placeIridiumReference(ir Iridium, stage spark.Stage, layout []float64) spark.Placement {
	obj, n := ir.objective(stage, layout)
	a := descendReference(n, spark.LocalityPlacement(layout), obj)
	b := descendReference(n, spark.UniformPlacement(n), obj)
	if obj(a) <= obj(b) {
		return a
	}
	return b
}
