package gda

import (
	"fmt"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
)

// randomPlanningProblem builds a cluster description, believed matrix
// and layout of size n from a named stream, deliberately including the
// hostile cases: blackout (0 Mbps) and garbage (negative) believed
// links, empty DCs, zero compute rates and tied bandwidth values.
func randomPlanningProblem(n int, seed uint64) (ClusterInfo, bwmatrix.Matrix, []float64) {
	rng := simrand.Derive(seed, "gda-eqtest")
	ci := ClusterInfo{
		Regions:      make([]geo.Region, n), // placeholders; the search reads only rates
		ComputeRates: make([]float64, n),
		EgressPerGB:  make([]float64, n),
	}
	believed := bwmatrix.New(n)
	layout := make([]float64, n)
	for i := 0; i < n; i++ {
		switch rng.IntN(5) {
		case 0:
			ci.ComputeRates[i] = 0 // exercises the 1e-6 rate floor
		default:
			ci.ComputeRates[i] = rng.Uniform(0.5, 6)
		}
		ci.EgressPerGB[i] = rng.Uniform(0.01, 0.2)
		if rng.Bool(0.2) {
			layout[i] = 0 // empty DC
		} else {
			layout[i] = rng.Uniform(0.1, 50) * 1e9
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch rng.IntN(8) {
			case 0:
				believed[i][j] = 0 // believed blackout
			case 1:
				believed[i][j] = -3 // stale/garbage measurement
			case 2:
				believed[i][j] = 500 // ties across pairs
			default:
				believed[i][j] = rng.Uniform(10, 1500)
			}
		}
	}
	return ci, believed, layout
}

// TestPlaceMatchesReference locks the delta-evaluated search bit-exact
// against the kept-verbatim reference: for randomized clusters of every
// size (hostile believed matrices included), Tetrium, Kimchi and
// Iridium must return element-for-element identical placements on both
// map and reduce stages. This is the contract that keeps the
// scheduler-comparison goldens byte-identical.
func TestPlaceMatchesReference(t *testing.T) {
	stages := []spark.Stage{
		{Name: "m", Kind: spark.MapKind, SecPerGB: 3, Selectivity: 0.5},
		{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1.5, Selectivity: 1},
		{Name: "r0", Kind: spark.ReduceKind, SecPerGB: 0, Selectivity: 1}, // network-only
	}
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 6; trial++ {
			ci, believed, layout := randomPlanningProblem(n, uint64(n*100+trial))

			for _, stage := range stages {
				label := fmt.Sprintf("n=%d trial=%d stage=%s", n, trial, stage.Name)

				tet := Tetrium{Believed: believed, Info: ci}
				got := tet.Place(0, stage, layout)
				want := placeTetriumReference(tet, stage, layout)
				requirePlacementsEqual(t, got, want, label+" tetrium")

				kim := Kimchi{Believed: believed, Info: ci, Slack: 0.1 + 0.05*float64(trial%3)}
				got = kim.Place(0, stage, layout)
				want = placeKimchiReference(kim, stage, layout)
				requirePlacementsEqual(t, got, want, label+" kimchi")

				ir := Iridium{Believed: believed, Info: ci}
				got = ir.Place(0, stage, layout)
				want = placeIridiumReference(ir, stage, layout)
				requirePlacementsEqual(t, got, want, label+" iridium")
			}
		}
	}
}

// fleetPlanningProblem builds a fleet-shaped problem: n DCs but data on
// only nz of them, the mostly-zero layouts the sparse search rows are
// built for. Hostile believed entries (blackouts, garbage) are kept in
// the mix.
func fleetPlanningProblem(n, nz int, seed uint64) (ClusterInfo, bwmatrix.Matrix, []float64) {
	rng := simrand.Derive(seed, "gda-fleet-eqtest")
	ci := ClusterInfo{
		Regions:      make([]geo.Region, n),
		ComputeRates: make([]float64, n),
		EgressPerGB:  make([]float64, n),
	}
	believed := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		if rng.IntN(6) == 0 {
			ci.ComputeRates[i] = 0
		} else {
			ci.ComputeRates[i] = rng.Uniform(0.5, 6)
		}
		ci.EgressPerGB[i] = rng.Uniform(0.01, 0.2)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch rng.IntN(10) {
			case 0:
				believed[i][j] = 0
			case 1:
				believed[i][j] = -3
			default:
				believed[i][j] = rng.Uniform(10, 1500)
			}
		}
	}
	layout := make([]float64, n)
	for _, i := range rng.Perm(n)[:nz] {
		layout[i] = rng.Uniform(0.5, 50) * 1e9
	}
	return ci, believed, layout
}

// TestPlaceMatchesReferenceFleetSparse extends the equivalence lock
// past the paper's n=8 to fleet-shaped sparse problems: randomized
// clusters up to n=64 with data on only a handful of DCs, where the
// search iterates its nzRows fast paths. Every scheduler must still
// return element-for-element identical placements to the dense
// reference on map and reduce stages.
func TestPlaceMatchesReferenceFleetSparse(t *testing.T) {
	stages := []spark.Stage{
		{Name: "m", Kind: spark.MapKind, SecPerGB: 3, Selectivity: 0.5},
		{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1.5, Selectivity: 1},
	}
	type dims struct{ n, nz, trials int }
	for _, d := range []dims{{12, 3, 2}, {24, 4, 2}, {48, 5, 1}, {64, 6, 1}} {
		for trial := 0; trial < d.trials; trial++ {
			ci, believed, layout := fleetPlanningProblem(d.n, d.nz+trial, uint64(d.n*1000+trial))

			// The dense reference is O(n⁴) per descent; past n=24 run
			// the reduce stage only to keep the suite fast (the map
			// path's sparse handling is covered at 12 and 24).
			checkStages := stages
			if d.n > 24 {
				checkStages = stages[1:]
			}
			for _, stage := range checkStages {
				label := fmt.Sprintf("n=%d nz=%d trial=%d stage=%s", d.n, d.nz+trial, trial, stage.Name)

				tet := Tetrium{Believed: believed, Info: ci}
				got := tet.Place(0, stage, layout)
				want := placeTetriumReference(tet, stage, layout)
				requirePlacementsEqual(t, got, want, label+" tetrium")

				if d.n > 24 {
					// The dense reference alone costs seconds at these
					// sizes; Tetrium covers the shared descent machinery.
					continue
				}
				kim := Kimchi{Believed: believed, Info: ci, Slack: 0.1 + 0.05*float64(trial%3)}
				got = kim.Place(0, stage, layout)
				want = placeKimchiReference(kim, stage, layout)
				requirePlacementsEqual(t, got, want, label+" kimchi")

				ir := Iridium{Believed: believed, Info: ci}
				got = ir.Place(0, stage, layout)
				want = placeIridiumReference(ir, stage, layout)
				requirePlacementsEqual(t, got, want, label+" iridium")
			}
		}
	}
}

func requirePlacementsEqual(t *testing.T, got, want spark.Placement, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: %v vs %v\n got %v\nwant %v", label, i, got[i], want[i], got, want)
		}
	}
}

// TestSearchAggregatesMatchEstimateDetail checks the invariant the
// Kimchi budget threading rests on: after a descent, the context's
// cached (secs, loadSum, usd) are bit-equal to a fresh estimateDetail
// of the final placement.
func TestSearchAggregatesMatchEstimateDetail(t *testing.T) {
	for n := 2; n <= 8; n += 2 {
		ci, believed, layout := randomPlanningProblem(n, uint64(n)*7+3)

		est := estimator{believed: believed, info: ci}
		for _, stage := range []spark.Stage{
			{Name: "m", Kind: spark.MapKind, SecPerGB: 2, Selectivity: 1},
			{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1},
		} {
			s := getSearch(est, stage, layout)
			s.descend(spark.UniformPlacement(n), JCT{})
			secs, load, usd := est.estimateDetail(stage, layout, s.p)
			if s.agg.Secs != secs || s.agg.LoadSum != load || s.agg.USD != usd {
				t.Fatalf("n=%d %s: cached aggregates (%v,%v,%v) != fresh (%v,%v,%v)",
					n, stage.Name, s.agg.Secs, s.agg.LoadSum, s.agg.USD, secs, load, usd)
			}
			putSearch(s)
		}
	}
}

// TestPlaceSteadyStateAllocs checks the pooled context reaches a small
// constant allocation count per Place (starts and the returned
// placement only — no per-candidate garbage).
func TestPlaceSteadyStateAllocs(t *testing.T) {
	ci, believed, layout := randomPlanningProblem(8, 99)

	stage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	tet := Tetrium{Believed: believed, Info: ci}
	tet.Place(0, stage, layout) // warm the pool
	avg := testing.AllocsPerRun(20, func() { tet.Place(0, stage, layout) })
	// Reference needs thousands of allocations per Place (a fresh
	// candidate slice per move evaluation plus a rebuilt matrix per
	// estimate); the context needs a handful of fixed ones.
	if avg > 12 {
		t.Fatalf("Tetrium.Place allocates %.1f times per call in steady state", avg)
	}
}

func BenchmarkSchedulerPlace(b *testing.B) {
	info, believed, layout := benchCluster()
	stage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	kim := Kimchi{Believed: believed, Info: info}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kim.Place(0, stage, layout)
	}
}

func BenchmarkSchedulerPlaceReference(b *testing.B) {
	info, believed, layout := benchCluster()
	stage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	kim := Kimchi{Believed: believed, Info: info}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placeKimchiReference(kim, stage, layout)
	}
}
