package gda

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/spark"
)

// Aggregates are the estimator's per-placement totals a Scorer ranks
// candidates by. They are exactly what estimateDetail computes —
// bottleneck seconds, summed per-link/per-DC times, egress dollars —
// plus the carbon aggregate maintained only when the scorer asks for
// it (KgCO2 is exactly 0 otherwise). Restricting scorers to these
// aggregates is what makes every scorer delta-able by construction:
// the search context already knows how to delta-evaluate and screen
// each aggregate per changed placement column (DESIGN.md §10), so a
// new objective plugs into the PR-5 machinery without touching it.
type Aggregates struct {
	// Secs is the estimated stage completion time: the slowest link's
	// transfer plus the slowest DC's compute.
	Secs float64
	// LoadSum is the sum of all per-link and per-DC times — the
	// gradient pressure that walks the descent off max() plateaus.
	LoadSum float64
	// USD is the WAN egress cost of the placement's transfers.
	USD float64
	// KgCO2 is the compute + network carbon of the stage (compute
	// attributed to each DC's grid, transfers to the sender's), priced
	// through cost.EnergyRates. Zero unless the scorer's NeedsCarbon.
	KgCO2 float64
}

// Scorer is the pluggable descent objective: it folds a candidate
// placement's estimate aggregates into one value (lower is better).
// Implementations must be pure functions of the Aggregates — no state,
// no allocation — because Score runs on the descent hot path for every
// candidate the screens cannot reject.
//
// The delta-or-screen contract: the search delta-evaluates the
// aggregates themselves, so any Scorer gets exact O(n) candidate
// evaluation for free. ScreenSafe additionally enables the O(1)/O(n)
// rejection screens, which are only sound for scorers monotone
// non-decreasing in every aggregate (the screens understate each
// aggregate; a monotone scorer then understates the objective, so a
// rejection is safe). Non-monotone scorers return false and fall back
// to exact evaluation for every candidate — slower, never wrong.
type Scorer interface {
	// Name identifies the scorer in flags, reports and benchmarks.
	Name() string
	// Score folds the aggregates into the descent objective.
	Score(a Aggregates) float64
	// NeedsCarbon reports whether Score reads a.KgCO2, so the search
	// maintains the carbon aggregate (and its screen bounds) only when
	// an objective actually prices it.
	NeedsCarbon() bool
	// ScreenSafe reports whether Score is monotone non-decreasing in
	// every aggregate, enabling the rejection screens.
	ScreenSafe() bool
}

// JCT is Tetrium's completion-time objective: bottleneck seconds, the
// loadSum gradient pressure, and the (weaker still) dollar tie-break —
// the exact expression of the original placeTetrium closure.
type JCT struct{}

// Name implements Scorer.
func (JCT) Name() string { return "jct" }

// Score implements Scorer.
func (JCT) Score(a Aggregates) float64 { return a.Secs + 1e-3*a.LoadSum + 0.05*a.USD }

// NeedsCarbon implements Scorer.
func (JCT) NeedsCarbon() bool { return false }

// ScreenSafe implements Scorer.
func (JCT) ScreenSafe() bool { return true }

// Cost is Kimchi's budgeted dollar objective: WAN egress dollars, with
// the latency envelope as a penalty wall — the exact expression of the
// original Kimchi closure. With BudgetS = +Inf the wall never fires
// and the descent minimizes dollars unconditionally (the standalone
// "cost" scorer).
type Cost struct {
	// BudgetS is the tolerated stage completion time in seconds.
	BudgetS float64
}

// Name implements Scorer.
func (Cost) Name() string { return "cost" }

// Score implements Scorer.
func (c Cost) Score(a Aggregates) float64 {
	if a.Secs > c.BudgetS {
		return a.USD + 1e6*(a.Secs-c.BudgetS)
	}
	return a.USD
}

// NeedsCarbon implements Scorer.
func (Cost) NeedsCarbon() bool { return false }

// ScreenSafe implements Scorer.
func (Cost) ScreenSafe() bool { return true }

// Carbon minimizes the stage's compute + network kgCO₂-eq. Unlike the
// max()-shaped JCT, carbon is a pure sum over entries, so the descent
// always has a full gradient and needs no pressure term.
type Carbon struct{}

// Name implements Scorer.
func (Carbon) Name() string { return "carbon" }

// Score implements Scorer.
func (Carbon) Score(a Aggregates) float64 { return a.KgCO2 }

// NeedsCarbon implements Scorer.
func (Carbon) NeedsCarbon() bool { return true }

// ScreenSafe implements Scorer.
func (Carbon) ScreenSafe() bool { return true }

// Exchange rates folding dollars and kilograms into the blend's
// second-denominated objective. A blend's weights apply to roughly
// commensurate axes — blend:jct=0.5,cost=0.5 trades seconds against
// dollars at USDToSecs seconds per dollar, not 1:1 (a testbed-scale
// stage runs hundreds of seconds but moves single dollars and
// fractional kilograms; unscaled weights would let seconds drown the
// other axes). The constants are part of the golden-locked objective.
const (
	// USDToSecs weighs one WAN dollar like five minutes of JCT.
	USDToSecs = 300
	// KgCO2ToSecs weighs one kgCO₂-eq like twenty minutes of JCT.
	KgCO2ToSecs = 1200
)

// Blend is the weighted multi-objective scorer: WJCT prices the
// completion-time axis (seconds, with JCT's loadSum pressure so the
// descent keeps its plateau gradient), WCost the dollar axis and
// WCarbon the carbon axis, each folded to seconds through the exchange
// rates above. Sweeping the weights traces the JCT-vs-$-vs-kgCO₂
// Pareto frontier (the `pareto` experiment driver).
type Blend struct {
	WJCT, WCost, WCarbon float64
}

// Name implements Scorer, rendering the spec the blend parser accepts.
func (b Blend) Name() string {
	return fmt.Sprintf("blend:jct=%g,cost=%g,carbon=%g", b.WJCT, b.WCost, b.WCarbon)
}

// Score implements Scorer.
func (b Blend) Score(a Aggregates) float64 {
	return b.WJCT*(a.Secs+1e-3*a.LoadSum) + b.WCost*(USDToSecs*a.USD) + b.WCarbon*(KgCO2ToSecs*a.KgCO2)
}

// NeedsCarbon implements Scorer: a zero-weight carbon axis keeps the
// search on the cheaper three-aggregate path.
func (b Blend) NeedsCarbon() bool { return b.WCarbon != 0 }

// ScreenSafe implements Scorer: non-negative weights over monotone
// axes stay monotone. (ParseScorer rejects negative weights; a
// hand-built Blend with one falls back to exact evaluation.)
func (b Blend) ScreenSafe() bool { return b.WJCT >= 0 && b.WCost >= 0 && b.WCarbon >= 0 }

// scorerSpecs is the single scorer registry: ScorerNames, ParseScorer
// and the blend component parser all read it, so a name is valid in
// `-sched <name>` exactly when it is valid inside `blend:<name>=W`.
var scorerSpecs = []struct {
	name   string
	make   func() Scorer
	weight func(*Blend) *float64
}{
	{"jct", func() Scorer { return JCT{} }, func(b *Blend) *float64 { return &b.WJCT }},
	{"cost", func() Scorer { return Cost{BudgetS: math.Inf(1)} }, func(b *Blend) *float64 { return &b.WCost }},
	{"carbon", func() Scorer { return Carbon{} }, func(b *Blend) *float64 { return &b.WCarbon }},
}

// ScorerNames returns the registered scorer names, sorted. Each is a
// valid ParseScorer spec and a valid blend component.
func ScorerNames() []string {
	out := make([]string, len(scorerSpecs))
	for i, s := range scorerSpecs {
		out[i] = s.name
	}
	sort.Strings(out)
	return out
}

// ParseScorer resolves a scorer spec: a registered name ("jct",
// "cost", "carbon") or a weighted blend like
// "blend:jct=0.5,cost=0.3,carbon=0.2" (weights non-negative, at least
// one positive; omitted components default to 0).
func ParseScorer(spec string) (Scorer, error) {
	for _, s := range scorerSpecs {
		if spec == s.name {
			return s.make(), nil
		}
	}
	if !strings.HasPrefix(spec, "blend:") {
		return nil, fmt.Errorf("gda: unknown scorer %q (want %s, or blend:jct=W,cost=W,carbon=W)",
			spec, strings.Join(ScorerNames(), " | "))
	}
	var b Blend
	for _, kv := range strings.Split(strings.TrimPrefix(spec, "blend:"), ",") {
		name, val, ok := cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("gda: bad blend component %q in %q (want name=weight)", kv, spec)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(w) {
			return nil, fmt.Errorf("gda: bad blend weight %q in %q", val, spec)
		}
		if w < 0 {
			return nil, fmt.Errorf("gda: negative blend weight %q in %q", kv, spec)
		}
		found := false
		for _, s := range scorerSpecs {
			if name == s.name {
				*s.weight(&b) = w
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("gda: unknown blend component %q in %q (want %s)",
				name, spec, strings.Join(ScorerNames(), " | "))
		}
	}
	if b.WJCT == 0 && b.WCost == 0 && b.WCarbon == 0 {
		return nil, fmt.Errorf("gda: blend %q needs at least one positive weight", spec)
	}
	return b, nil
}

// cut is strings.Cut, kept local for the repo's minimum Go version.
func cut(s, sep string) (before, after string, found bool) {
	if i := strings.Index(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// PlaceScored runs the three-start descent under any Scorer on the
// pooled delta-evaluating search context — the generic placement every
// scorer-composed scheduler is a one-liner over. Bit-exact against
// placeScorerReference (TestScorerPlaceMatchesReference).
func PlaceScored(sc Scorer, believed bwmatrix.Matrix, info ClusterInfo, stage spark.Stage, layout []float64) spark.Placement {
	s := getSearch(estimator{believed: believed, info: info}, stage, layout)
	best, _ := s.placeMultiStart(sc)
	out := append(spark.Placement(nil), best...)
	putSearch(s)
	return out
}

// Sched adapts any Scorer into a spark.Scheduler — the thin
// composition Tetrium is an instance of (Sched with JCT), and the
// scheduler `-sched jct|cost|carbon|blend:...` flags construct.
type Sched struct {
	// Label distinguishes variants in reports; defaults to the
	// scorer's name.
	Label string
	// Scorer is the descent objective.
	Scorer Scorer
	// Believed is the bandwidth matrix the scheduler plans with.
	Believed bwmatrix.Matrix
	// Info is the cluster description (carbon coefficients included).
	Info ClusterInfo
}

// Name implements spark.Scheduler.
func (s Sched) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return s.Scorer.Name()
}

// Place implements spark.Scheduler.
func (s Sched) Place(_ int, stage spark.Stage, layout []float64) spark.Placement {
	return PlaceScored(s.Scorer, s.Believed, s.Info, stage, layout)
}

var _ spark.Scheduler = Sched{}
