package gda

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
)

// withCarbon fills a planning problem's carbon coefficient tables from
// a named stream, with clean-grid zeros in the mix — the scorer
// equivalence sweeps need real carbon gradients and the zero edge.
func withCarbon(ci ClusterInfo, seed uint64) ClusterInfo {
	rng := simrand.Derive(seed, "gda-carbon-eqtest")
	n := ci.N()
	ci.CarbonPerCompSec = make([]float64, n)
	ci.CarbonPerGB = make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.IntN(5) == 0 {
			ci.CarbonPerCompSec[i] = 0 // hydro-clean grid
		} else {
			ci.CarbonPerCompSec[i] = rng.Uniform(1e-6, 5e-4)
		}
		ci.CarbonPerGB[i] = rng.Uniform(0, 0.05)
	}
	return ci
}

// equivalenceScorers is the sweep set for the delta-vs-full locks:
// every registered scorer plus blends with zero weights (which must
// stay on the cheaper non-carbon path) and a finite Kimchi-style
// budget wall.
func equivalenceScorers() []Scorer {
	return []Scorer{
		JCT{},
		Cost{BudgetS: math.Inf(1)},
		Cost{BudgetS: 120},
		Carbon{},
		Blend{WJCT: 1},
		Blend{WJCT: 0.5, WCost: 0.5},
		Blend{WCarbon: 1},
		Blend{WJCT: 0.5, WCost: 0.3, WCarbon: 0.2},
	}
}

// TestScorerPlaceMatchesReference locks PlaceScored bit-exact against
// the full-evaluation placeScorerReference oracle for every scorer in
// the sweep set, across randomized hostile clusters (believed
// blackouts, negative measurements, empty DCs, zero compute rates) on
// map and reduce stages.
func TestScorerPlaceMatchesReference(t *testing.T) {
	stages := []spark.Stage{
		{Name: "m", Kind: spark.MapKind, SecPerGB: 3, Selectivity: 0.5},
		{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1.5, Selectivity: 1},
	}
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 2; trial++ {
			ci, believed, layout := randomPlanningProblem(n, uint64(n*300+trial))
			ci = withCarbon(ci, uint64(n*300+trial))

			for _, stage := range stages {
				for _, sc := range equivalenceScorers() {
					label := fmt.Sprintf("n=%d trial=%d stage=%s scorer=%s", n, trial, stage.Name, sc.Name())
					got := PlaceScored(sc, believed, ci, stage, layout)
					want := placeScorerReference(sc, believed, ci, stage, layout)
					requirePlacementsEqual(t, got, want, label)
				}
			}
		}
	}
}

// TestScorerPlaceMatchesReferenceFleetSparse extends the scorer lock to
// fleet-shaped sparse problems where the search runs its nzRows fast
// paths — including n=64 with data on a handful of DCs.
func TestScorerPlaceMatchesReferenceFleetSparse(t *testing.T) {
	scorers := []Scorer{
		JCT{},
		Cost{BudgetS: math.Inf(1)},
		Carbon{},
		Blend{WJCT: 0.5, WCost: 0.3, WCarbon: 0.2},
	}
	stages := []spark.Stage{
		{Name: "m", Kind: spark.MapKind, SecPerGB: 3, Selectivity: 0.5},
		{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1.5, Selectivity: 1},
	}
	type dims struct{ n, nz int }
	for _, d := range []dims{{24, 4}, {64, 6}} {
		ci, believed, layout := fleetPlanningProblem(d.n, d.nz, uint64(d.n*5000+d.nz))
		ci = withCarbon(ci, uint64(d.n*5000+d.nz))

		// The dense reference is O(n⁴) per descent; at n=64 run the
		// reduce stage only (the sparse map path is covered at 24).
		checkStages := stages
		if d.n > 24 {
			checkStages = stages[1:]
		}
		for _, stage := range checkStages {
			for _, sc := range scorers {
				label := fmt.Sprintf("n=%d nz=%d stage=%s scorer=%s", d.n, d.nz, stage.Name, sc.Name())
				got := PlaceScored(sc, believed, ci, stage, layout)
				want := placeScorerReference(sc, believed, ci, stage, layout)
				requirePlacementsEqual(t, got, want, label)
			}
		}
	}
}

// TestScorerPlaceZeroLayout sweeps the all-zero-layout edge (no data
// anywhere: empty nzRows, zero total, zero migration deficits) across
// every scorer — the search must still agree with the reference
// instead of tripping over its sparsity fast paths.
func TestScorerPlaceZeroLayout(t *testing.T) {
	ci, believed, _ := randomPlanningProblem(5, 77)
	ci = withCarbon(ci, 77)
	layout := make([]float64, 5)
	for _, stage := range []spark.Stage{
		{Name: "m", Kind: spark.MapKind, SecPerGB: 3, Selectivity: 0.5},
		{Name: "r", Kind: spark.ReduceKind, SecPerGB: 1.5, Selectivity: 1},
	} {
		for _, sc := range equivalenceScorers() {
			label := fmt.Sprintf("zero-layout stage=%s scorer=%s", stage.Name, sc.Name())
			got := PlaceScored(sc, believed, ci, stage, layout)
			want := placeScorerReference(sc, believed, ci, stage, layout)
			requirePlacementsEqual(t, got, want, label)
		}
	}
}

// TestEstimateAggMatchesDetail locks estimateAgg's shared fields to
// estimateDetail bit for bit: the carbon-extended estimator must not
// perturb the original aggregates by a single ulp, or every golden
// breaks.
func TestEstimateAggMatchesDetail(t *testing.T) {
	for n := 2; n <= 8; n += 2 {
		ci, believed, layout := randomPlanningProblem(n, uint64(n)*31+7)
		ci = withCarbon(ci, uint64(n)*31+7)
		est := estimator{believed: believed, info: ci}
		for _, stage := range []spark.Stage{
			{Name: "m", Kind: spark.MapKind, SecPerGB: 2, Selectivity: 1},
			{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1},
		} {
			for _, p := range []spark.Placement{
				spark.UniformPlacement(n),
				spark.LocalityPlacement(layout),
			} {
				secs, load, usd := est.estimateDetail(stage, layout, p)
				a := est.estimateAgg(stage, layout, p)
				if a.Secs != secs || a.LoadSum != load || a.USD != usd {
					t.Fatalf("n=%d %s: estimateAgg (%v,%v,%v) != estimateDetail (%v,%v,%v)",
						n, stage.Name, a.Secs, a.LoadSum, a.USD, secs, load, usd)
				}
			}
		}
	}
}

// TestSearchCarbonAggregatesMatchEstimateAgg checks the carbon
// counterpart of the Kimchi budget invariant: after a carbon-pricing
// descent, the context's cached Aggregates — KgCO2 included — are
// bit-equal to a fresh estimateAgg of the final placement.
func TestSearchCarbonAggregatesMatchEstimateAgg(t *testing.T) {
	for n := 2; n <= 8; n += 2 {
		ci, believed, layout := randomPlanningProblem(n, uint64(n)*13+5)
		ci = withCarbon(ci, uint64(n)*13+5)
		est := estimator{believed: believed, info: ci}
		for _, stage := range []spark.Stage{
			{Name: "m", Kind: spark.MapKind, SecPerGB: 2, Selectivity: 1},
			{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1},
		} {
			for _, sc := range []Scorer{Carbon{}, Blend{WJCT: 0.4, WCost: 0.3, WCarbon: 0.3}} {
				s := getSearch(est, stage, layout)
				s.descend(spark.UniformPlacement(n), sc)
				if want := est.estimateAgg(stage, layout, s.p); s.agg != want {
					t.Fatalf("n=%d %s %s: cached %+v != fresh %+v", n, stage.Name, sc.Name(), s.agg, want)
				}
				putSearch(s)
			}
		}
	}
}

// TestScorerPlaceSteadyStateAllocs checks no scorer implementation
// allocates in the warm descent loop: after pool warm-up, a Place is a
// handful of fixed allocations (the returned placement and interface
// boxing) for every scorer, carbon-pricing blends included.
func TestScorerPlaceSteadyStateAllocs(t *testing.T) {
	ci, believed, layout := randomPlanningProblem(8, 99)
	ci = withCarbon(ci, 99)
	stage := spark.Stage{Name: "r", Kind: spark.ReduceKind, SecPerGB: 2, Selectivity: 1}
	for _, sc := range equivalenceScorers() {
		PlaceScored(sc, believed, ci, stage, layout) // warm the pool
		avg := testing.AllocsPerRun(20, func() { PlaceScored(sc, believed, ci, stage, layout) })
		if avg > 12 {
			t.Fatalf("%s: PlaceScored allocates %.1f times per call in steady state", sc.Name(), avg)
		}
	}
}

func TestParseScorer(t *testing.T) {
	cases := []struct {
		spec string
		want Scorer
	}{
		{"jct", JCT{}},
		{"cost", Cost{BudgetS: math.Inf(1)}},
		{"carbon", Carbon{}},
		{"blend:jct=0.5,cost=0.3,carbon=0.2", Blend{WJCT: 0.5, WCost: 0.3, WCarbon: 0.2}},
		{"blend:carbon=1", Blend{WCarbon: 1}},
		{"blend:jct=1,cost=0", Blend{WJCT: 1}},
	}
	for _, c := range cases {
		got, err := ParseScorer(c.spec)
		if err != nil {
			t.Fatalf("ParseScorer(%q): %v", c.spec, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseScorer(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}

	bad := []string{
		"", "tetrium", "blend:", "blend:jct", "blend:jct=x", "blend:jct=NaN",
		"blend:jct=-1", "blend:watts=1", "blend:jct=0,cost=0,carbon=0",
	}
	for _, spec := range bad {
		if _, err := ParseScorer(spec); err == nil {
			t.Fatalf("ParseScorer(%q) unexpectedly succeeded", spec)
		}
	}

	// A blend's Name round-trips through the parser.
	b := Blend{WJCT: 0.25, WCost: 0.5, WCarbon: 0.25}
	got, err := ParseScorer(b.Name())
	if err != nil {
		t.Fatalf("ParseScorer(%q): %v", b.Name(), err)
	}
	if got != b {
		t.Fatalf("round-trip %q = %#v", b.Name(), got)
	}
}

func TestScorerNames(t *testing.T) {
	names := ScorerNames()
	want := []string{"carbon", "cost", "jct"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ScorerNames() = %v, want %v", names, want)
	}
}

// TestSchedName checks the Scorer→Scheduler adapter's report labels.
func TestSchedName(t *testing.T) {
	if got := (Sched{Scorer: Carbon{}}).Name(); got != "carbon" {
		t.Fatalf("Sched name = %q", got)
	}
	if got := (Sched{Label: "green", Scorer: Carbon{}}).Name(); got != "green" {
		t.Fatalf("labelled Sched name = %q", got)
	}
}
