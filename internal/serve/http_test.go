package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServerEndToEnd drives the full HTTP surface — submit, list,
// status, cancel, cluster, metrics, health — against a live Driver
// loop, the same deployment shape cmd/wanify-serve runs.
func TestServerEndToEnd(t *testing.T) {
	p, sink := newTestPlane(t, 31, func(c *Config) { c.MaxRunning = 1 })
	d := NewDriver(p)
	d.TickS = 1
	d.Speed = 2000 // faster-than-life clock so the test drains quickly
	go d.Run()
	defer d.Close()

	ts := httptest.NewServer(NewServer(p, d, sink))
	defer ts.Close()

	postJob := func(spec JobSpec) (JobStatus, *http.Response) {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		defer resp.Body.Close()
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		return st, resp
	}

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	// Submit two jobs: one runs, one queues.
	st1, r1 := postJob(JobSpec{Workload: "terasort", InputGB: 20, Tenant: "web"})
	if r1.StatusCode != http.StatusAccepted || st1.ID != 1 || st1.State != "running" {
		t.Fatalf("submit 1: code=%d st=%+v", r1.StatusCode, st1)
	}
	st2, r2 := postJob(JobSpec{Workload: "wordcount", InputGB: 20, Tenant: "web"})
	if r2.StatusCode != http.StatusAccepted || st2.State != "queued" {
		t.Fatalf("submit 2: code=%d st=%+v", r2.StatusCode, st2)
	}

	// A malformed spec is a 400 with a JSON error envelope.
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"terasort"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-input spec: code=%d", resp.StatusCode)
	}
	var apiErr apiError
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if apiErr.Error == "" {
		t.Fatalf("400 carried no error envelope")
	}

	// Cancel the queued job over the API.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, st2.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v code=%d", err, resp.StatusCode)
	}
	var canceled JobStatus
	json.NewDecoder(resp.Body).Decode(&canceled)
	resp.Body.Close()
	if canceled.State != "canceled" {
		t.Fatalf("cancel returned state %s", canceled.State)
	}

	// Unknown id → 404; double cancel → 409.
	resp, _ = http.Get(ts.URL + "/v1/jobs/99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: code=%d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, st2.ID), nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: code=%d", resp.StatusCode)
	}
	resp.Body.Close()

	// Poll until job 1 completes on the driver's clock.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/1")
		if err != nil {
			t.Fatalf("status poll: %v", err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == "done" {
			if st.JCTSeconds <= 0 || st.CostUSD <= 0 {
				t.Fatalf("done job missing economics: %+v", st)
			}
			break
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %q", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 still %s at deadline", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// List shows both records.
	resp, _ = http.Get(ts.URL + "/v1/jobs")
	var jobs []JobStatus
	json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if len(jobs) != 2 {
		t.Fatalf("list returned %d jobs, want 2", len(jobs))
	}

	// Cluster snapshot reflects the accounting.
	resp, _ = http.Get(ts.URL + "/v1/cluster")
	var cs ClusterStatus
	json.NewDecoder(resp.Body).Decode(&cs)
	resp.Body.Close()
	if cs.DCs == 0 || cs.VMs == 0 || cs.Slots != 1 {
		t.Fatalf("cluster shape: %+v", cs)
	}
	if cs.Done != 1 || cs.Canceled != 1 {
		t.Fatalf("cluster accounting: %+v", cs)
	}

	// /metrics serves the Graphite buffer and every line is well-formed.
	resp, _ = http.Get(ts.URL + "/metrics")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: code=%d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("metrics endpoint empty")
	}
	for _, ln := range lines {
		if !ValidLine(ln) {
			t.Fatalf("metrics served invalid line %q", ln)
		}
	}
}
