package serve

import (
	"net"
	"strings"
	"sync"
	"testing"
)

func TestLineString(t *testing.T) {
	cases := []struct {
		line Line
		want string
	}{
		{Line{Name: "wanify.serve.queue.depth", Value: 3, TS: 120}, "wanify.serve.queue.depth 3 120"},
		{Line{Name: "wanify.serve.admit.wait_s", Value: 0.5, TS: 0}, "wanify.serve.admit.wait_s 0.5 0"},
		{Line{Name: "wanify.serve.pair.0.1.mbps", Value: 512.25, TS: 900}, "wanify.serve.pair.0.1.mbps 512.25 900"},
	}
	for _, c := range cases {
		if got := c.line.String(); got != c.want {
			t.Fatalf("Line.String() = %q, want %q", got, c.want)
		}
		if !ValidLine(c.line.String()) {
			t.Fatalf("rendered line %q fails its own validator", c.line.String())
		}
	}
}

func TestValidLine(t *testing.T) {
	good := []string{
		"a.b 1 0",
		"wanify.serve.jobs.done 42 1000",
		"x.y.z -3.5 12345",
	}
	bad := []string{
		"",
		"nodots 1 0",    // path must be dotted
		"a.b 1",         // missing timestamp
		"a.b one 0",     // non-numeric value
		"a.b 1 later",   // non-numeric timestamp
		"a.b 1 0 extra", // too many fields
		"a.b  1  0 trailing junk",
	}
	for _, s := range good {
		if !ValidLine(s) {
			t.Fatalf("ValidLine(%q) = false, want true", s)
		}
	}
	for _, s := range bad {
		if ValidLine(s) {
			t.Fatalf("ValidLine(%q) = true, want false", s)
		}
	}
}

func TestMemorySinkCapAndRender(t *testing.T) {
	s := &MemorySink{Cap: 3}
	for i := 0; i < 5; i++ {
		s.Emit(Line{Name: "a.b", Value: float64(i), TS: int64(i)})
	}
	if s.Len() != 3 {
		t.Fatalf("sink kept %d lines, cap is 3", s.Len())
	}
	lines := s.Lines()
	if lines[0].Value != 2 || lines[2].Value != 4 {
		t.Fatalf("cap did not keep the newest lines: %+v", lines)
	}
	var b strings.Builder
	s.Render(&b)
	rendered := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(rendered) != 3 {
		t.Fatalf("rendered %d lines, want 3", len(rendered))
	}
	for _, ln := range rendered {
		if !ValidLine(ln) {
			t.Fatalf("rendered line %q is not valid Graphite plaintext", ln)
		}
	}
}

func TestMemorySinkConcurrent(t *testing.T) {
	s := &MemorySink{Cap: 64}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit(Line{Name: "a.b", Value: 1, TS: int64(i)})
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 64 {
		t.Fatalf("len = %d, want cap 64", s.Len())
	}
}

func TestWriterSinkAndMultiSink(t *testing.T) {
	var a, b strings.Builder
	sink := MultiSink(WriterSink{W: &a}, WriterSink{W: &b})
	sink.Emit(Line{Name: "m.n", Value: 7, TS: 9})
	want := "m.n 7 9\n"
	if a.String() != want || b.String() != want {
		t.Fatalf("multi-sink fanout wrong: %q / %q", a.String(), b.String())
	}
}

func TestTCPSinkSpeaksPlaintext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	got := make(chan string, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- ""
			return
		}
		defer conn.Close()
		buf := make([]byte, 256)
		n, _ := conn.Read(buf)
		got <- string(buf[:n])
	}()

	s := &TCPSink{Addr: ln.Addr().String()}
	s.Emit(Line{Name: "wanify.serve.jobs.done", Value: 12, TS: 600})
	s.Close()

	payload := <-got
	if payload != "wanify.serve.jobs.done 12 600\n" {
		t.Fatalf("carbon payload = %q", payload)
	}
	if !ValidLine(strings.TrimRight(payload, "\n")) {
		t.Fatalf("payload fails ValidLine")
	}
}
