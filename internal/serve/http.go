package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// HTTP/JSON API — the system's public surface. Handlers are thin: each
// decodes its request, crosses onto the plane's timeline via
// Driver.Do, and encodes the result. Endpoints:
//
//	POST   /v1/jobs       submit a JobSpec, returns JobStatus (202)
//	GET    /v1/jobs       list all job statuses
//	GET    /v1/jobs/{id}  one job's status
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /v1/cluster    cluster snapshot (ClusterStatus)
//	GET    /metrics       telemetry buffer, Graphite plaintext
//	GET    /healthz       liveness
//
// Admission rejections map onto HTTP status codes: a full queue is 429
// Too Many Requests, a tenant over quota is 429, an unknown id is 404,
// an uncancelable job is 409 Conflict, a malformed spec is 400.

// Server is the HTTP face of one Plane/Driver pair.
type Server struct {
	plane   *Plane
	driver  *Driver
	metrics *MemorySink
	mux     *http.ServeMux
}

// NewServer builds the handler. metrics may be nil, disabling
// /metrics; wire the same MemorySink into the Plane's Sink (directly
// or via MultiSink) so the endpoint sees the telemetry stream.
func NewServer(p *Plane, d *Driver, metrics *MemorySink) *Server {
	s := &Server{plane: p, driver: d, metrics: metrics, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/cluster", s.cluster)
	s.mux.HandleFunc("GET /metrics", s.metricsDump)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func errCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrNotCancelable):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	var st JobStatus
	var err error
	s.driver.Do(func() { st, err = s.plane.Submit(spec) })
	if err != nil {
		writeJSON(w, errCode(err), apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id"})
		return 0, false
	}
	return id, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	var st JobStatus
	var err error
	s.driver.Do(func() { st, err = s.plane.Status(id) })
	if err != nil {
		writeJSON(w, errCode(err), apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	var st JobStatus
	var err error
	s.driver.Do(func() { st, err = s.plane.Cancel(id) })
	if err != nil {
		writeJSON(w, errCode(err), apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	var jobs []JobStatus
	s.driver.Do(func() { jobs = s.plane.Jobs() })
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) cluster(w http.ResponseWriter, _ *http.Request) {
	var st ClusterStatus
	s.driver.Do(func() { st = s.plane.Cluster() })
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) metricsDump(w http.ResponseWriter, _ *http.Request) {
	if s.metrics == nil {
		http.Error(w, "metrics sink not configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.Render(w)
}

// healthz answers 200 with "ok" normally and 200 with "degraded" while
// the hardened controller is refusing to replan — the process is alive
// and serving either way (liveness probes must not kill a plane that
// is correctly riding out a WAN outage), but the body flips so
// monitors can alarm on measurement health.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	degraded := false
	s.driver.Do(func() { degraded = s.plane.Degraded() })
	w.WriteHeader(http.StatusOK)
	if degraded {
		w.Write([]byte("degraded\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
