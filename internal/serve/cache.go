package serve

import (
	"sync"

	"github.com/wanify/wanify/internal/predict"
)

// ModelCache is the serving layer's trained-model store: an LRU keyed
// by snapshot fingerprint (predict.Fingerprint) with staleness
// eviction. The paper's offline module trains ONE model and the batch
// drivers reuse it per run; a long-running control plane instead meets
// a stream of cluster regimes — diurnal swings, congestion episodes,
// topology changes — and pays a full Random-Forest training run
// whenever it treats one as new. The cache bounds that cost: regimes
// the cluster revisits hit (same quantized fingerprint → same model,
// byte-identical plans), rarely-seen regimes age out of the LRU, and
// two staleness rules evict models that are no longer trustworthy even
// when their key matches:
//
//   - TTL: an entry older than TTLSeconds of SIMULATED time is stale —
//     wall time means nothing on a simulated timeline, so age is
//     measured through the Now hook.
//   - Accuracy: a model whose own §3.3.4 staleness detector trips
//     (predict.Model.NeedsRetrain — observed-error windows exceeding
//     the paper's significance threshold) is evicted on lookup
//     regardless of age. This is the cache hook into predict's
//     staleness machinery: serving keeps feeding observed rates to the
//     model via ObserveActual, and the cache honors the verdict.
//
// All methods are safe for concurrent use: the simulated control plane
// is single-timeline, but the HTTP layer and tests (-race) reach the
// cache from other goroutines.
type ModelCache struct {
	mu      sync.Mutex
	cap     int
	ttl     float64
	now     func() float64
	entries map[uint64]*cacheEntry
	order   []uint64 // LRU order, oldest first
	stats   CacheStats
}

type cacheEntry struct {
	model    *predict.Model
	storedAt float64
}

// CacheConfig configures a ModelCache.
type CacheConfig struct {
	// Capacity bounds resident models (default 4).
	Capacity int
	// TTLSeconds expires entries older than this much simulated time;
	// 0 disables TTL eviction.
	TTLSeconds float64
	// Now reads the current simulated time. Required when TTLSeconds is
	// set; defaults to a zero clock otherwise.
	Now func() float64
}

// NewModelCache builds an empty cache.
func NewModelCache(cfg CacheConfig) *ModelCache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4
	}
	if cfg.Now == nil {
		cfg.Now = func() float64 { return 0 }
	}
	return &ModelCache{
		cap:     cfg.Capacity,
		ttl:     cfg.TTLSeconds,
		now:     cfg.Now,
		entries: make(map[uint64]*cacheEntry),
	}
}

// CacheStats counts cache outcomes since construction.
type CacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions"`
}

// Get returns the model cached under fp, or (nil, false) on a miss. A
// TTL-expired or accuracy-stale entry is evicted and reported as a
// miss — the caller retrains exactly as if the regime were new.
func (c *ModelCache) Get(fp uint64) (*predict.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if (c.ttl > 0 && c.now()-e.storedAt > c.ttl) || e.model.NeedsRetrain() {
		c.remove(fp)
		c.stats.Evictions++
		c.stats.Misses++
		return nil, false
	}
	c.touch(fp)
	c.stats.Hits++
	return e.model, true
}

// Put stores a model under fp, evicting the least-recently-used entry
// when the cache is full. Re-putting an existing key refreshes its
// model, its TTL clock, and its LRU position.
func (c *ModelCache) Put(fp uint64, m *predict.Model) {
	if m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; ok {
		c.entries[fp] = &cacheEntry{model: m, storedAt: c.now()}
		c.touch(fp)
		return
	}
	if len(c.order) >= c.cap {
		c.remove(c.order[0])
		c.stats.Evictions++
	}
	c.entries[fp] = &cacheEntry{model: m, storedAt: c.now()}
	c.order = append(c.order, fp)
}

// Len reports resident entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the outcome counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Keys returns the resident fingerprints in LRU order, oldest first.
func (c *ModelCache) Keys() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.order...)
}

// touch moves fp to the most-recently-used end. Caller holds mu.
func (c *ModelCache) touch(fp uint64) {
	for i, k := range c.order {
		if k == fp {
			c.order = append(append(c.order[:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// remove deletes fp from the map and the order list. Caller holds mu.
func (c *ModelCache) remove(fp uint64) {
	delete(c.entries, fp)
	for i, k := range c.order {
		if k == fp {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}
