// Package serve is the WANify control plane: the long-running service
// that turns the repo's batch pipeline — snapshot → Random-Forest
// prediction → global optimization → per-VM agents → re-gauging
// controller — into an always-on planner jobs are submitted TO, the
// ROADMAP's planner-as-a-service refactor (and the deployment shape
// Terra argues GDA optimizers need to be usable at all).
//
// The heart is Plane: it wraps one wanify.Framework in dynamic
// multi-job mode, admits jobs through a bounded queue with per-tenant
// quotas, runs them concurrently on an open spark.JobSet over shared
// substrate state (one arbitrating runtime controller re-gauges for
// everyone), caches trained prediction models in an LRU keyed by
// snapshot fingerprint (ModelCache), and streams Graphite-plaintext
// telemetry through a pluggable Sink.
//
// Everything on the Plane runs on the SUBSTRATE clock: submissions,
// admissions, completions, telemetry epochs, and model refreshes are
// substrate events on one timeline, so a scripted load — thousands of
// submissions — replays byte-identically per seed (the golden `serve`
// experiment locks exactly that). Real-time access comes from the thin
// HTTP layer (Server + Driver): a single driver goroutine owns the
// timeline, alternately draining serialized commands from HTTP
// handlers and advancing the clock, so the deterministic core never
// sees concurrency. See DESIGN.md §9 for the architecture.
package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// Admission errors. The HTTP layer maps these onto status codes.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity and no slot is free.
	ErrQueueFull = fmt.Errorf("serve: admission queue full")
	// ErrTenantQuota rejects a submission that would push its tenant
	// past the per-tenant quota of queued+running jobs.
	ErrTenantQuota = fmt.Errorf("serve: tenant quota exceeded")
	// ErrUnknownJob reports a job id the plane has never issued.
	ErrUnknownJob = fmt.Errorf("serve: unknown job")
	// ErrNotCancelable reports a cancel of a job already finished,
	// failed, or canceled.
	ErrNotCancelable = fmt.Errorf("serve: job not cancelable")
	// ErrClosed rejects submissions after Close.
	ErrClosed = fmt.Errorf("serve: plane closed")
)

// Config configures a Plane.
type Config struct {
	// Rates prices jobs and measurement (required; the engine's table).
	Rates cost.Rates
	// Seed derives the plane's noise streams (refresh snapshots).
	Seed uint64
	// MaxRunning is how many jobs run concurrently — the dynamic
	// deployment's slot count (default 4).
	MaxRunning int
	// QueueCap bounds the admission queue (default 64).
	QueueCap int
	// TenantQuota caps one tenant's queued+running jobs (0 = no cap).
	TenantQuota int
	// Share selects fair or priority sharing across running jobs.
	Share optimize.ShareMode
	// EpochS is the telemetry emission period in simulated seconds
	// (default 15, the controller's epoch).
	EpochS float64
	// RefreshS re-fingerprints the cluster every this many simulated
	// seconds and refreshes the model through the cache (0 = off).
	// Requires Train.
	RefreshS float64
	// Train builds a model for a fingerprint on a cache miss. It must
	// be deterministic per fingerprint so cache-hit and retrain runs
	// stay byte-identical.
	Train func(fp uint64) (*predict.Model, error)
	// Cache configures the model cache. Cache.Now defaults to the
	// substrate clock.
	Cache CacheConfig
	// QuantMbps is the fingerprint bandwidth bucket (0 = 1000, coarse
	// enough that testbed regimes recur and the cache earns hits).
	QuantMbps float64
	// Sink receives telemetry (nil = discard).
	Sink Sink
	// Optimize carries the §3.3 heterogeneity inputs.
	Optimize wanify.OptimizeOptions
}

func (c Config) withDefaults() Config {
	if c.MaxRunning == 0 {
		c.MaxRunning = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.EpochS == 0 {
		c.EpochS = 15
	}
	if c.Sink == nil {
		c.Sink = discardSink{}
	}
	if c.QuantMbps == 0 {
		// Serving wants regimes that RECUR: on the netsim testbed,
		// 1000 Mbps buckets fold the per-snapshot probe wobble into a
		// handful of recurring fingerprints (diurnal regimes), where the
		// library default of predict.DefaultQuantMbps would mint a fresh
		// fingerprint — and a cold cache — almost every refresh.
		c.QuantMbps = 1000
	}
	return c
}

// JobState is where a submitted job is in its lifecycle.
type JobState int8

// Job lifecycle states.
const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateCanceled
	StateFailed
)

// String names the state for reports and JSON.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	default:
		return "failed"
	}
}

// JobSpec is a job submission — what POST /v1/jobs carries.
type JobSpec struct {
	// Name labels the job in statuses (default: the workload).
	Name string `json:"name,omitempty"`
	// Tenant owns the job for quota accounting (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Workload is "terasort", "wordcount", or "tpcds:<query>" (82, 95,
	// 11, 78).
	Workload string `json:"workload"`
	// InputGB is the job's total input volume in GB.
	InputGB float64 `json:"input_gb"`
	// HotDCs concentrates the input: these DCs hold HotShare of it
	// (default: uniform across the cluster).
	HotDCs []int `json:"hot_dcs,omitempty"`
	// HotShare is the input fraction on HotDCs (default 0.8 when
	// HotDCs is set).
	HotShare float64 `json:"hot_share,omitempty"`
	// DCs restricts placement to these data centers (default: all).
	DCs []int `json:"dcs,omitempty"`
	// Priority weights the job's WAN share under priority sharing
	// (default 1).
	Priority float64 `json:"priority,omitempty"`
}

// JobStatus is a job's externally visible state — what the status
// endpoints return. Times are simulated seconds.
type JobStatus struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Tenant      string  `json:"tenant"`
	Workload    string  `json:"workload"`
	State       string  `json:"state"`
	SubmittedAt float64 `json:"submitted_at"`
	StartedAt   float64 `json:"started_at,omitempty"`
	FinishedAt  float64 `json:"finished_at,omitempty"`
	// QueueWaitS is the simulated time spent queued before admission.
	QueueWaitS float64 `json:"queue_wait_s"`
	JCTSeconds float64 `json:"jct_seconds,omitempty"`
	WANGB      float64 `json:"wan_gb,omitempty"`
	CostUSD    float64 `json:"cost_usd,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// ClusterStatus is the cluster snapshot — what GET /v1/cluster returns.
type ClusterStatus struct {
	NowS        float64    `json:"now_s"`
	DCs         int        `json:"dcs"`
	VMs         int        `json:"vms"`
	Slots       int        `json:"slots"`
	SlotsUsed   int        `json:"slots_used"`
	Queued      int        `json:"queued"`
	Running     int        `json:"running"`
	Done        int        `json:"done"`
	Canceled    int        `json:"canceled"`
	Failed      int        `json:"failed"`
	Rejected    int        `json:"rejected"`
	Replans     int        `json:"replans"`
	DriftEpochs int        `json:"drift_epochs"`
	Cache       CacheStats `json:"cache"`
	// MinBelievedMbps is the weakest pair of the current runtime-BW
	// belief — the quantity WANify exists to keep honest.
	MinBelievedMbps float64 `json:"min_believed_mbps"`
	// Gauge surfaces the failure-aware gauging state (DESIGN.md §11).
	// Omitted entirely when the controller runs the legacy path, so
	// legacy /v1/cluster responses are byte-identical.
	Gauge *GaugeStatus `json:"gauge,omitempty"`
}

// GaugeStatus is the failure-aware gauging section of /v1/cluster:
// the runtime controller's GaugeStats rendered for the API.
type GaugeStatus struct {
	// Degraded reports the controller is refusing to replan — the
	// breaker is open or the last snapshot was rejected. /healthz
	// mirrors this as its body.
	Degraded bool `json:"degraded"`
	// LastCoverage is the measured-pair fraction of the most recent
	// re-gauge snapshot.
	LastCoverage float64 `json:"last_coverage"`
	// RejectedSnapshots counts snapshots refused for low coverage.
	RejectedSnapshots int `json:"rejected_snapshots"`
	// Retries counts replacement probes across all snapshots.
	Retries int `json:"retries"`
	// UnmeasurablePairs is the most recent snapshot's unmeasurable
	// pair count.
	UnmeasurablePairs int `json:"unmeasurable_pairs"`
	// FusedPairs counts readings filled from the belief store.
	FusedPairs int `json:"fused_pairs"`
	// BreakerOpen and BreakerUntil describe the circuit breaker.
	BreakerOpen  bool    `json:"breaker_open"`
	BreakerUntil float64 `json:"breaker_until,omitempty"`
}

// PlaneStats are the plane's cumulative admission counters.
type PlaneStats struct {
	Submitted     int
	Admitted      int
	RejectedQueue int
	RejectedQuota int
	Canceled      int
	Done          int
	Failed        int
}

// jobRecord is the plane's internal per-job state.
type jobRecord struct {
	id     int
	spec   JobSpec
	job    spark.Job
	state  JobState
	slot   int
	setIdx int

	submittedAt float64
	startedAt   float64
	finishedAt  float64

	res    spark.RunResult
	errMsg string
}

// Plane is the control plane: one Framework, one open JobSet, a
// bounded admission queue, a model cache, and a telemetry stream, all
// driven by the substrate clock. Not safe for concurrent use — wrap it
// in a Driver for HTTP access.
type Plane struct {
	cfg   Config
	fw    *wanify.Framework
	eng   *spark.Engine
	set   *spark.JobSet
	cache *ModelCache
	rng   *simrand.Source
	info  gda.ClusterInfo

	jobs     []*jobRecord
	bySetIdx map[int]*jobRecord
	queue    []*jobRecord
	tenant   map[string]int
	free     int

	stats       PlaneStats
	admitNanos  []int64
	epochWaits  []float64 // sim queue waits of jobs admitted this epoch
	refreshBusy bool
	cancels     []func()
	started     bool
	closed      bool
}

// New builds a Plane over a framework and engine sharing one cluster.
// Call Start before submitting.
func New(fw *wanify.Framework, eng *spark.Engine, cfg Config) (*Plane, error) {
	if fw == nil || eng == nil {
		return nil, fmt.Errorf("serve: plane needs a framework and an engine")
	}
	cfg = cfg.withDefaults()
	if cfg.RefreshS > 0 && cfg.Train == nil {
		return nil, fmt.Errorf("serve: model refresh needs a Train hook")
	}
	if cfg.Share == optimize.ShareRemaining {
		return nil, fmt.Errorf("serve: plane supports fair or priority sharing only")
	}
	sim := eng.Cluster()
	if cfg.Cache.Now == nil {
		cfg.Cache.Now = sim.Now
	}
	return &Plane{
		cfg:      cfg,
		fw:       fw,
		eng:      eng,
		cache:    NewModelCache(cfg.Cache),
		rng:      simrand.Derive(cfg.Seed, "serve"),
		info:     gda.NewClusterInfo(sim, cfg.Rates),
		bySetIdx: make(map[int]*jobRecord),
		tenant:   make(map[string]int),
		free:     cfg.MaxRunning,
	}, nil
}

// Cache exposes the model cache (telemetry, tests).
func (p *Plane) Cache() *ModelCache { return p.cache }

// Stats returns the cumulative admission counters.
func (p *Plane) Stats() PlaneStats { return p.stats }

// AdmitNanos returns the wall-clock nanoseconds each admission spent
// in its critical path (slot claim + window re-partition + agent
// deployment + job-set admission), in admission order. This is the
// admission→plan latency BENCH_netsim.json records; it never enters
// golden output, which stays wall-clock free.
func (p *Plane) AdmitNanos() []int64 { return append([]int64(nil), p.admitNanos...) }

// Start gauges the cluster, opens the dynamic deployment with every
// slot free, and arms the telemetry and model-refresh timers. It must
// run before the first Submit and outside substrate callbacks (the
// initial gauge advances the clock).
func (p *Plane) Start() error {
	if p.started {
		return fmt.Errorf("serve: plane already started")
	}
	sim := p.eng.Cluster()
	if p.cfg.RefreshS > 0 {
		// Seed the cache with the boot regime's model so the first
		// refresh epoch hits instead of training twice.
		if err := p.refreshModelSync(); err != nil {
			return err
		}
	}
	_, _, err := p.fw.EnableDynamicJobSet(wanify.DynamicJobSetOptions{
		Slots:    p.cfg.MaxRunning,
		Share:    p.cfg.Share,
		Optimize: p.cfg.Optimize,
	})
	if err != nil {
		return err
	}
	p.set = spark.NewOpenJobSet(p.eng)
	p.set.OnJobDone(p.jobDone)
	p.cancels = append(p.cancels, sim.Every(p.cfg.EpochS, p.telemetryEpoch))
	if p.cfg.RefreshS > 0 {
		p.cancels = append(p.cancels, sim.Every(p.cfg.RefreshS, p.refreshModel))
	}
	p.started = true
	return nil
}

// refreshModelSync is the boot-time refresh: snapshot synchronously,
// fingerprint, and install the regime's model through the cache.
func (p *Plane) refreshModelSync() error {
	feats, _ := dataset.SnapshotFeatures(p.eng.Cluster(), p.rng.Derive("refresh"))
	return p.installModel(predict.Fingerprint(feats, p.cfg.QuantMbps))
}

// refreshModel is the periodic re-fingerprint: an asynchronous snapshot
// (probes run concurrently with tenant traffic, exactly like the
// re-gauging controller's) whose features key the cache when it lands.
func (p *Plane) refreshModel(float64) {
	if p.refreshBusy || p.closed {
		return
	}
	p.refreshBusy = true
	sim := p.eng.Cluster()
	ps := measure.BeginSnapshot(sim, measure.SnapshotOptions(p.rng.Derive("refresh")))
	sim.After(ps.DurationS(), func(float64) {
		p.refreshBusy = false
		if p.closed {
			ps.Abandon()
			return
		}
		snap, stats, _ := ps.Collect()
		feats := dataset.FeaturesFromSnapshot(sim, snap, stats)
		// Install errors are not fatal mid-flight: the plane keeps
		// serving on the model it has.
		_ = p.installModel(predict.Fingerprint(feats, p.cfg.QuantMbps))
	})
}

// installModel resolves fp through the cache — training on a miss —
// and hands the winning model to the framework.
func (p *Plane) installModel(fp uint64) error {
	m, ok := p.cache.Get(fp)
	if !ok {
		var err error
		m, err = p.cfg.Train(fp)
		if err != nil {
			return fmt.Errorf("serve: training model for fingerprint %x: %w", fp, err)
		}
		p.cache.Put(fp, m)
	}
	p.fw.SetModel(m)
	return nil
}

// buildJob materializes a spec into a spark job.
func buildJob(spec JobSpec, n int) (spark.Job, error) {
	if spec.InputGB <= 0 {
		return spark.Job{}, fmt.Errorf("serve: job needs input_gb > 0")
	}
	bytes := spec.InputGB * 1e9
	var input []float64
	if len(spec.HotDCs) > 0 {
		share := spec.HotShare
		if share == 0 {
			share = 0.8
		}
		for _, dc := range spec.HotDCs {
			if dc < 0 || dc >= n {
				return spark.Job{}, fmt.Errorf("serve: hot DC %d out of range [0,%d)", dc, n)
			}
		}
		input = workloads.SkewedInput(n, bytes, spec.HotDCs, share)
	} else {
		input = workloads.UniformInput(n, bytes)
	}
	switch {
	case spec.Workload == "terasort":
		return workloads.TeraSort(input), nil
	case spec.Workload == "wordcount":
		return workloads.WordCount(input, 0.3*bytes), nil
	case strings.HasPrefix(spec.Workload, "tpcds:"):
		qs := strings.TrimPrefix(spec.Workload, "tpcds:")
		q, err := strconv.Atoi(strings.TrimPrefix(qs, "q"))
		if err != nil {
			return spark.Job{}, fmt.Errorf("serve: bad TPC-DS query %q", qs)
		}
		return workloads.TPCDS(q, input)
	default:
		return spark.Job{}, fmt.Errorf("serve: unknown workload %q (want terasort, wordcount, tpcds:<q>)", spec.Workload)
	}
}

// maskedSched restricts a scheduler's placements to allowed DCs,
// renormalizing; a placement with no allowed mass degrades to uniform
// over the allowed set.
type maskedSched struct {
	inner   spark.Scheduler
	allowed []bool
}

// Name implements spark.Scheduler.
func (m maskedSched) Name() string { return m.inner.Name() }

// Place implements spark.Scheduler.
func (m maskedSched) Place(stageIdx int, stage spark.Stage, layout []float64) spark.Placement {
	p := m.inner.Place(stageIdx, stage, layout)
	total := 0.0
	for i := range p {
		if !m.allowed[i] {
			p[i] = 0
		}
		total += p[i]
	}
	if total <= 0 {
		cnt := 0
		for _, ok := range m.allowed {
			if ok {
				cnt++
			}
		}
		for i := range p {
			if m.allowed[i] {
				p[i] = 1 / float64(cnt)
			}
		}
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// schedulerFor builds the job's placement scheduler: Tetrium over the
// belief current at admission (windows keep adapting afterward through
// the controller; placements are per-stage decisions made from the
// freshest belief the plane had when the job entered).
func (p *Plane) schedulerFor(spec JobSpec) (spark.Scheduler, error) {
	var s spark.Scheduler = gda.Tetrium{Label: "tetrium(serve)", Believed: p.fw.Predicted(), Info: p.info}
	if len(spec.DCs) == 0 {
		return s, nil
	}
	n := p.eng.Cluster().NumDCs()
	allowed := make([]bool, n)
	for _, dc := range spec.DCs {
		if dc < 0 || dc >= n {
			return nil, fmt.Errorf("serve: placement DC %d out of range [0,%d)", dc, n)
		}
		allowed[dc] = true
	}
	return maskedSched{inner: s, allowed: allowed}, nil
}

// Submit admits a job or queues it, returning its immediate status.
// Rejections (ErrQueueFull, ErrTenantQuota, bad specs) leave no record.
func (p *Plane) Submit(spec JobSpec) (JobStatus, error) {
	if !p.started {
		return JobStatus{}, fmt.Errorf("serve: Submit before Start")
	}
	if p.closed {
		return JobStatus{}, ErrClosed
	}
	if err := p.set.Err(); err != nil {
		return JobStatus{}, fmt.Errorf("serve: job set failed: %w", err)
	}
	p.stats.Submitted++
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.Name == "" {
		spec.Name = spec.Workload
	}
	sim := p.eng.Cluster()
	job, err := buildJob(spec, sim.NumDCs())
	if err != nil {
		return JobStatus{}, err
	}
	if p.cfg.TenantQuota > 0 && p.tenant[spec.Tenant] >= p.cfg.TenantQuota {
		p.stats.RejectedQuota++
		return JobStatus{}, fmt.Errorf("%w: tenant %q has %d jobs in flight", ErrTenantQuota, spec.Tenant, p.tenant[spec.Tenant])
	}
	if p.free == 0 && len(p.queue) >= p.cfg.QueueCap {
		p.stats.RejectedQueue++
		return JobStatus{}, fmt.Errorf("%w: %d queued", ErrQueueFull, len(p.queue))
	}
	rec := &jobRecord{
		id:          len(p.jobs) + 1,
		spec:        spec,
		job:         job,
		state:       StateQueued,
		slot:        -1,
		setIdx:      -1,
		submittedAt: sim.Now(),
	}
	p.jobs = append(p.jobs, rec)
	p.tenant[spec.Tenant]++
	if p.free > 0 {
		if err := p.admitNow(rec); err != nil {
			return JobStatus{}, err
		}
	} else {
		p.queue = append(p.queue, rec)
	}
	return p.status(rec), nil
}

// admitNow runs the admission critical path for rec: claim a slot,
// re-partition the running jobs' windows, deploy the newcomer's agents,
// and admit it into the open job set. Its wall-clock cost is the
// admission→plan latency the benchmarks record.
func (p *Plane) admitNow(rec *jobRecord) error {
	t0 := time.Now()
	sched, err := p.schedulerFor(rec.spec)
	if err != nil {
		p.dropRecord(rec, err.Error())
		return err
	}
	prio := rec.spec.Priority
	if prio <= 0 {
		prio = 1
	}
	slot, policy, err := p.fw.AdmitJob(prio)
	if err != nil {
		p.dropRecord(rec, err.Error())
		return err
	}
	idx, err := p.set.Admit(spark.JobRun{Job: rec.job, Sched: sched, Policy: policy})
	if err != nil {
		p.fw.ReleaseJob(slot)
		p.dropRecord(rec, err.Error())
		return err
	}
	now := p.eng.Cluster().Now()
	rec.slot, rec.setIdx = slot, idx
	rec.state = StateRunning
	rec.startedAt = now
	p.bySetIdx[idx] = rec
	p.free--
	p.stats.Admitted++
	p.epochWaits = append(p.epochWaits, now-rec.submittedAt)
	p.admitNanos = append(p.admitNanos, time.Since(t0).Nanoseconds())
	return nil
}

// dropRecord fails a record that could not be admitted.
func (p *Plane) dropRecord(rec *jobRecord, msg string) {
	rec.state = StateFailed
	rec.errMsg = msg
	rec.finishedAt = p.eng.Cluster().Now()
	p.tenant[rec.spec.Tenant]--
	p.stats.Failed++
}

// jobDone is the open set's completion hook: close out the record,
// free the slot, and pump the queue — all within the substrate event
// that finished the job, so the next job's windows swap in at the same
// instant the finisher's capacity frees.
func (p *Plane) jobDone(idx int, res spark.RunResult) {
	rec := p.bySetIdx[idx]
	if rec == nil || rec.state != StateRunning {
		return
	}
	rec.state = StateDone
	rec.res = res
	rec.finishedAt = p.eng.Cluster().Now()
	p.fw.ReleaseJob(rec.slot)
	p.free++
	p.tenant[rec.spec.Tenant]--
	p.stats.Done++
	p.pump()
}

// pump admits queued jobs while slots are free.
func (p *Plane) pump() {
	for p.free > 0 && len(p.queue) > 0 {
		rec := p.queue[0]
		p.queue = p.queue[1:]
		// A failed admission (bad spec caught late) just moves on.
		_ = p.admitNow(rec)
	}
}

// Cancel stops a queued or running job.
func (p *Plane) Cancel(id int) (JobStatus, error) {
	rec, err := p.record(id)
	if err != nil {
		return JobStatus{}, err
	}
	switch rec.state {
	case StateQueued:
		for i, q := range p.queue {
			if q == rec {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				break
			}
		}
	case StateRunning:
		if err := p.set.Cancel(rec.setIdx); err != nil {
			return JobStatus{}, err
		}
		p.fw.ReleaseJob(rec.slot)
		p.free++
	default:
		return JobStatus{}, fmt.Errorf("%w: job %d is %s", ErrNotCancelable, id, rec.state)
	}
	rec.state = StateCanceled
	rec.finishedAt = p.eng.Cluster().Now()
	p.tenant[rec.spec.Tenant]--
	p.stats.Canceled++
	p.pump()
	return p.status(rec), nil
}

// record resolves a job id.
func (p *Plane) record(id int) (*jobRecord, error) {
	if id < 1 || id > len(p.jobs) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return p.jobs[id-1], nil
}

// status renders a record.
func (p *Plane) status(rec *jobRecord) JobStatus {
	st := JobStatus{
		ID:          rec.id,
		Name:        rec.spec.Name,
		Tenant:      rec.spec.Tenant,
		Workload:    rec.spec.Workload,
		State:       rec.state.String(),
		SubmittedAt: rec.submittedAt,
		StartedAt:   rec.startedAt,
		FinishedAt:  rec.finishedAt,
		Error:       rec.errMsg,
	}
	if rec.state != StateQueued {
		st.QueueWaitS = rec.startedAt - rec.submittedAt
	}
	if rec.state == StateDone {
		st.JCTSeconds = rec.res.JCTSeconds
		st.WANGB = rec.res.WANBytes / 1e9
		st.CostUSD = rec.res.Cost.Total()
	}
	return st
}

// Status returns one job's status.
func (p *Plane) Status(id int) (JobStatus, error) {
	rec, err := p.record(id)
	if err != nil {
		return JobStatus{}, err
	}
	return p.status(rec), nil
}

// Jobs returns every recorded job's status, in submission order.
func (p *Plane) Jobs() []JobStatus {
	out := make([]JobStatus, len(p.jobs))
	for i, rec := range p.jobs {
		out[i] = p.status(rec)
	}
	return out
}

// Cluster returns the cluster snapshot.
func (p *Plane) Cluster() ClusterStatus {
	sim := p.eng.Cluster()
	used, total := p.fw.DynamicSlots()
	st := ClusterStatus{
		NowS:      sim.Now(),
		DCs:       sim.NumDCs(),
		VMs:       sim.NumVMs(),
		Slots:     total,
		SlotsUsed: used,
		Queued:    len(p.queue),
		Running:   p.cfg.MaxRunning - p.free,
		Done:      p.stats.Done,
		Canceled:  p.stats.Canceled,
		Failed:    p.stats.Failed,
		Rejected:  p.stats.RejectedQueue + p.stats.RejectedQuota,
		Cache:     p.cache.Stats(),
	}
	if c := p.fw.Controller(); c != nil {
		st.Replans = c.Replans()
		st.DriftEpochs = c.DriftEpochs()
		if g := c.Gauge(); g.Hardened {
			st.Gauge = &GaugeStatus{
				Degraded:          g.Degraded,
				LastCoverage:      g.LastCoverage,
				RejectedSnapshots: g.RejectedSnapshots,
				Retries:           g.Retries,
				UnmeasurablePairs: g.UnmeasurablePairs,
				FusedPairs:        g.FusedPairs,
				BreakerOpen:       g.BreakerOpen,
				BreakerUntil:      g.BreakerUntil,
			}
		}
	}
	if pred := p.fw.Predicted(); pred != nil {
		st.MinBelievedMbps = pred.MinOffDiagonal()
	}
	return st
}

// telemetryEpoch emits the plane's Graphite lines for one epoch; see
// DESIGN.md §9 for the name schema.
func (p *Plane) telemetryEpoch(now float64) {
	ts := int64(now)
	emit := func(name string, v float64) {
		p.cfg.Sink.Emit(Line{Name: name, Value: v, TS: ts})
	}
	emit("wanify.serve.queue.depth", float64(len(p.queue)))
	emit("wanify.serve.jobs.running", float64(p.cfg.MaxRunning-p.free))
	emit("wanify.serve.jobs.done", float64(p.stats.Done))
	emit("wanify.serve.jobs.canceled", float64(p.stats.Canceled))
	emit("wanify.serve.jobs.rejected", float64(p.stats.RejectedQueue+p.stats.RejectedQuota))
	wait := 0.0
	for _, w := range p.epochWaits {
		wait += w
	}
	if len(p.epochWaits) > 0 {
		wait /= float64(len(p.epochWaits))
	}
	emit("wanify.serve.admit.wait_s", wait)
	p.epochWaits = p.epochWaits[:0]
	cs := p.cache.Stats()
	emit("wanify.serve.cache.hits", float64(cs.Hits))
	emit("wanify.serve.cache.misses", float64(cs.Misses))
	emit("wanify.serve.cache.evictions", float64(cs.Evictions))
	if c := p.fw.Controller(); c != nil {
		emit("wanify.serve.replans", float64(c.Replans()))
		emit("wanify.serve.drift_epochs", float64(c.DriftEpochs()))
		// The gauge family exists only on hardened deployments, so
		// legacy runs keep their telemetry line counts (and goldens)
		// unchanged.
		if g := c.Gauge(); g.Hardened {
			b2f := func(b bool) float64 {
				if b {
					return 1
				}
				return 0
			}
			emit("wanify.serve.gauge.degraded", b2f(g.Degraded))
			emit("wanify.serve.gauge.coverage", g.LastCoverage)
			emit("wanify.serve.gauge.rejected", float64(g.RejectedSnapshots))
			emit("wanify.serve.gauge.breaker_open", b2f(g.BreakerOpen))
			emit("wanify.serve.gauge.retries", float64(g.Retries))
			emit("wanify.serve.gauge.unmeasurable", float64(g.UnmeasurablePairs))
		}
		if live := c.Live(); live != nil {
			for i := 0; i < live.N(); i++ {
				for j := 0; j < live.N(); j++ {
					if i != j && live[i][j] > 0 {
						emit(fmt.Sprintf("wanify.serve.pair.%d.%d.mbps", i, j), live[i][j])
					}
				}
			}
		}
	}
}

// Degraded reports whether the hardened re-gauging controller is
// refusing to replan (always false on legacy deployments). /healthz
// answers "degraded" while this holds.
func (p *Plane) Degraded() bool {
	if c := p.fw.Controller(); c != nil {
		return c.Degraded()
	}
	return false
}

// Idle reports whether nothing is queued or running.
func (p *Plane) Idle() bool {
	return len(p.queue) == 0 && p.free == p.cfg.MaxRunning
}

// Step advances the substrate clock by tickS and surfaces a failed job
// set.
func (p *Plane) Step(tickS float64) error {
	p.eng.Cluster().RunFor(tickS)
	return p.set.Err()
}

// DriveUntilIdle advances the clock in tickS steps until the plane is
// idle or maxS simulated seconds have elapsed — the batch driver's
// drain loop (the HTTP Driver has its own).
func (p *Plane) DriveUntilIdle(tickS, maxS float64) error {
	deadline := p.eng.Cluster().Now() + maxS
	for !p.Idle() {
		if err := p.Step(tickS); err != nil {
			return err
		}
		if p.eng.Cluster().Now() > deadline {
			return fmt.Errorf("serve: plane not idle after %.0fs (queued=%d running=%d)",
				maxS, len(p.queue), p.cfg.MaxRunning-p.free)
		}
	}
	return nil
}

// Close stops accepting submissions and disarms the plane's timers.
// Running jobs are left to the caller: drain first (DriveUntilIdle) or
// cancel them for an immediate teardown.
func (p *Plane) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, cancel := range p.cancels {
		cancel()
	}
	p.cancels = nil
}

// pctlNanos returns the q-quantile (0..1) of the given samples by the
// nearest-rank method, 0 when empty.
func pctlNanos(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// AdmitLatencyNanos returns the (p50, p99) of the recorded admission
// critical-path wall latencies.
func (p *Plane) AdmitLatencyNanos() (p50, p99 int64) {
	return pctlNanos(p.admitNanos, 0.50), pctlNanos(p.admitNanos, 0.99)
}
