package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Telemetry: the control plane streams its observability as Graphite
// plaintext lines — `<metric.path> <value> <unix-ish timestamp>\n`, the
// line protocol of the carbon ingest port (2003) every Graphite-family
// TSDB stack speaks. Timestamps are SIMULATED seconds: the plane's
// whole life runs on the substrate clock, so its metrics do too, which
// is what makes the emitted stream byte-reproducible per seed (and
// assertable in tests via MemorySink). The metric name schema is
// documented in DESIGN.md §9.
//
// Sinks are pluggable: MemorySink for tests and the /metrics endpoint,
// WriterSink for logs, TCPSink for a real carbon relay, MultiSink to
// fan out.

// Line is one Graphite plaintext sample.
type Line struct {
	// Name is the dotted metric path, e.g. "wanify.serve.queue.depth".
	Name string
	// Value is the sample value.
	Value float64
	// TS is the sample instant in whole simulated seconds.
	TS int64
}

// String renders the line in Graphite plaintext format, newline
// excluded. Values format with strconv 'g' so rendering is
// byte-deterministic.
func (l Line) String() string {
	return l.Name + " " + strconv.FormatFloat(l.Value, 'g', -1, 64) + " " + strconv.FormatInt(l.TS, 10)
}

// Sink receives telemetry lines. Emit is called from substrate events
// on the plane's timeline; implementations used concurrently with an
// HTTP reader must lock (MemorySink does).
type Sink interface {
	Emit(l Line)
}

// MemorySink collects lines in memory — the test collector and the
// backing store of the server's /metrics endpoint. Safe for concurrent
// Emit/read.
type MemorySink struct {
	// Cap bounds retained lines (oldest dropped); 0 keeps everything.
	Cap int

	mu    sync.Mutex
	lines []Line
}

// Emit implements Sink.
func (s *MemorySink) Emit(l Line) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, l)
	if s.Cap > 0 && len(s.lines) > s.Cap {
		drop := len(s.lines) - s.Cap
		s.lines = append(s.lines[:0], s.lines[drop:]...)
	}
}

// Lines returns a copy of the retained lines.
func (s *MemorySink) Lines() []Line {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Line(nil), s.lines...)
}

// Len reports how many lines are retained.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lines)
}

// Render writes the retained lines in wire format, one per line.
func (s *MemorySink) Render(w io.Writer) {
	for _, l := range s.Lines() {
		fmt.Fprintf(w, "%s\n", l)
	}
}

// WriterSink streams lines in wire format to an io.Writer.
type WriterSink struct {
	W io.Writer
}

// Emit implements Sink.
func (s WriterSink) Emit(l Line) {
	fmt.Fprintf(s.W, "%s\n", l)
}

// TCPSink streams lines to a Graphite carbon plaintext port
// (conventionally :2003). Delivery is best-effort: a failed dial or
// write drops the line and the next Emit redials, so a flapping relay
// never stalls the control plane.
type TCPSink struct {
	// Addr is the carbon endpoint, host:port.
	Addr string

	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// Emit implements Sink.
func (s *TCPSink) Emit(l Line) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		conn, err := net.Dial("tcp", s.Addr)
		if err != nil {
			return
		}
		s.conn = conn
		s.w = bufio.NewWriter(conn)
	}
	if _, err := fmt.Fprintf(s.w, "%s\n", l); err == nil {
		err = s.w.Flush()
		if err == nil {
			return
		}
	}
	s.conn.Close()
	s.conn, s.w = nil, nil
}

// Close tears the connection down.
func (s *TCPSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.w = nil, nil
	}
}

// MultiSink fans every line out to all children.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(l Line) {
	for _, s := range m {
		s.Emit(l)
	}
}

// discardSink is the default when a Plane is configured without one.
type discardSink struct{}

func (discardSink) Emit(Line) {}

// ValidLine reports whether a rendered line parses back as well-formed
// Graphite plaintext: `path value timestamp` with a dotted metric path.
// The CI smoke and telemetry tests assert the emitted stream through
// this single definition.
func ValidLine(s string) bool {
	parts := strings.Fields(strings.TrimSpace(s))
	if len(parts) != 3 {
		return false
	}
	if parts[0] == "" || strings.Count(parts[0], ".") < 1 {
		return false
	}
	if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
		return false
	}
	if _, err := strconv.ParseInt(parts[2], 10, 64); err != nil {
		return false
	}
	return true
}
