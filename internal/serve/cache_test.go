package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// trainTestModel fits a small but real model, deterministic per seed.
func trainTestModel(t testing.TB, seed uint64) *predict.Model {
	t.Helper()
	ds, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 4}, DrawsPerSize: 2, Seed: seed})
	m, err := predict.Train(ds, predict.TrainConfig{Forest: rf.Config{NumTrees: 10, Seed: seed}})
	if err != nil {
		t.Fatalf("training test model: %v", err)
	}
	return m
}

func TestModelCacheLRUEvictionOrder(t *testing.T) {
	c := NewModelCache(CacheConfig{Capacity: 2})
	m := trainTestModel(t, 1)
	c.Put(1, m)
	c.Put(2, m)
	if _, ok := c.Get(1); !ok { // 1 becomes most recently used
		t.Fatalf("warm entry missing")
	}
	c.Put(3, m) // capacity 2: evicts 2, the least recently used
	if _, ok := c.Get(2); ok {
		t.Fatalf("LRU entry 2 survived eviction")
	}
	for _, fp := range []uint64{1, 3} {
		if _, ok := c.Get(fp); !ok {
			t.Fatalf("entry %d wrongly evicted", fp)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestModelCacheTTLExpiry(t *testing.T) {
	now := 0.0
	c := NewModelCache(CacheConfig{Capacity: 4, TTLSeconds: 100, Now: func() float64 { return now }})
	c.Put(7, trainTestModel(t, 1))
	now = 50
	if _, ok := c.Get(7); !ok {
		t.Fatalf("entry expired before its TTL")
	}
	now = 151 // 151 - 0 > 100: stored-at clock, not touch time
	if _, ok := c.Get(7); ok {
		t.Fatalf("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 eviction and 1 miss from expiry", st)
	}
}

func TestModelCacheAccuracyStalenessEvicts(t *testing.T) {
	// A model whose own §3.3.4 staleness detector trips is evicted on
	// lookup even with no TTL configured.
	ds, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 4}, DrawsPerSize: 2, Seed: 1})
	m, err := predict.Train(ds, predict.TrainConfig{
		Forest:    rf.Config{NumTrees: 10, Seed: 1},
		FlagLimit: 0.01,
		ErrWindow: 1,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	c := NewModelCache(CacheConfig{Capacity: 4})
	c.Put(9, m)
	if _, ok := c.Get(9); !ok {
		t.Fatalf("fresh model should hit")
	}
	// Observe the model being wildly wrong: every pair off by far more
	// than the significance threshold.
	n := 4
	feats := make([][]dataset.PairFeatures, n)
	actual := bwmatrix.New(n)
	for i := range feats {
		feats[i] = make([]dataset.PairFeatures, n)
		for j := range feats[i] {
			if i != j {
				feats[i][j] = dataset.PairFeatures{N: n, SnapshotMbps: 500, DistanceMiles: 1000}
				actual[i][j] = 1e5
			}
		}
	}
	m.ObserveActual(feats, actual)
	if !m.NeedsRetrain() {
		t.Fatalf("test setup: model did not flag itself stale")
	}
	if _, ok := c.Get(9); ok {
		t.Fatalf("accuracy-stale model served from cache")
	}
	if c.Len() != 0 {
		t.Fatalf("stale model still resident")
	}
}

func TestFingerprintStableAcrossIdenticalSnapshots(t *testing.T) {
	// Two separately built clusters with the same seed, advanced to the
	// same instant, snapshotted with the same derived noise stream,
	// must fingerprint identically — the property that makes the cache
	// key a regime identity rather than a per-snapshot serial number.
	fps := make([]uint64, 2)
	for k := range fps {
		sim := netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 42))
		sim.RunUntil(300)
		feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(42, "fp-test"))
		fps[k] = predict.Fingerprint(feats, 0)
	}
	if fps[0] != fps[1] {
		t.Fatalf("identical snapshots fingerprinted %x vs %x", fps[0], fps[1])
	}
}

func TestModelCacheConcurrentAccess(t *testing.T) {
	// Hammer Get/Put from many goroutines; -race is the assertion.
	c := NewModelCache(CacheConfig{Capacity: 3})
	m := trainTestModel(t, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := uint64(i % 5)
				if i%3 == 0 {
					c.Put(fp, m)
				} else {
					c.Get(fp)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 3 {
		t.Fatalf("cache overflowed its capacity: %d entries", c.Len())
	}
}

func TestCacheHitMatchesRetrainByteIdentical(t *testing.T) {
	// The contract the serving layer relies on: serving a cached model
	// and retraining from the same fingerprint must produce the same
	// plan, byte for byte. Train is deterministic per fingerprint, so
	// a hit (model A) and a miss-retrain (model B) predict identical
	// matrices and optimize to identical windows.
	train := func(fp uint64) *predict.Model { return trainTestModel(t, 77^fp) }
	const fp = 0xbeef

	sim := netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 7))
	sim.RunUntil(200)
	feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(7, "plan-test"))

	planFor := func(m *predict.Model) (bwmatrix.Matrix, optimize.Plan) {
		pred := m.PredictMatrix(feats)
		return pred, optimize.GlobalOptimize(pred, optimize.Options{})
	}

	cached := train(fp) // what the cache would serve on a hit
	retrained := train(fp)
	if cached == retrained {
		t.Fatalf("test setup: want two independent model instances")
	}
	predA, planA := planFor(cached)
	predB, planB := planFor(retrained)
	if !reflect.DeepEqual(predA, predB) {
		t.Fatalf("cache-hit vs retrain predicted different matrices")
	}
	if !reflect.DeepEqual(planA, planB) {
		t.Fatalf("cache-hit vs retrain optimized different plans")
	}
}

func TestModelCacheStatsCount(t *testing.T) {
	c := NewModelCache(CacheConfig{Capacity: 2})
	m := trainTestModel(t, 1)
	if _, ok := c.Get(1); ok {
		t.Fatalf("empty cache hit")
	}
	c.Put(1, m)
	c.Get(1)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
	if got := fmt.Sprintf("%d/%d/%d", st.Hits, st.Misses, st.Evictions); got != "1/1/0" {
		t.Fatalf("counter rendering drifted: %s", got)
	}
}
