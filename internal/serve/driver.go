package serve

import (
	"sync"
	"time"
)

// Driver gives a deterministic Plane a real-time face. The substrate
// is single-timeline — nothing about the Plane tolerates concurrent
// callers — so exactly one goroutine (Run) owns the clock: it
// alternates between draining serialized commands that HTTP handlers
// enqueue via Do and advancing simulated time, pacing the advance
// against the wall clock per Speed. Commands therefore execute at
// well-defined simulated instants, between clock slices, and the
// Plane's determinism survives contact with the network.
type Driver struct {
	// TickS is the simulated seconds advanced per loop iteration
	// (default 1).
	TickS float64
	// Speed is simulated seconds per wall second (default 60; <=0
	// free-runs the clock as fast as the host allows).
	Speed float64

	plane *Plane
	cmds  chan func()
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// NewDriver wraps a started Plane.
func NewDriver(p *Plane) *Driver {
	return &Driver{
		TickS: 1,
		Speed: 60,
		plane: p,
		cmds:  make(chan func(), 64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Do runs fn on the driver goroutine — between clock slices, at the
// current simulated instant — and returns when it has executed. Every
// HTTP handler reaches the Plane through this. After Close, fn runs
// inline on the caller: the loop no longer owns the clock. (The send
// below cannot be raced against done in one select: cmds is buffered,
// so the send would win even against a long-closed driver and leave
// the caller waiting on a command no loop will ever drain.)
func (d *Driver) Do(fn func()) {
	ran := make(chan struct{})
	select {
	case <-d.done:
		fn()
		return
	default:
	}
	select {
	case d.cmds <- func() { fn(); close(ran) }:
	case <-d.done:
		fn()
		return
	}
	select {
	case <-ran:
	case <-d.done:
		// The loop exited while the command was queued. Its shutdown
		// drain completes before done closes, so by now the command
		// either ran (ran is closed) or is stranded in the buffer for
		// good — run it inline then.
		select {
		case <-ran:
		default:
			fn()
		}
	}
}

// Run owns the timeline until Close: drain commands, advance the
// clock one tick, pace against the wall. Call it on its own goroutine.
func (d *Driver) Run() {
	defer close(d.done)
	defer d.drainCmds()
	var sleep time.Duration
	if d.Speed > 0 {
		sleep = time.Duration(d.TickS / d.Speed * float64(time.Second))
	}
	for {
		select {
		case <-d.stop:
			return
		case fn := <-d.cmds:
			fn()
			continue
		default:
		}
		d.plane.Step(d.TickS)
		if sleep > 0 {
			timer := time.NewTimer(sleep)
			select {
			case <-d.stop:
				timer.Stop()
				return
			case fn := <-d.cmds:
				timer.Stop()
				fn()
			case <-timer.C:
			}
		}
	}
}

// drainCmds executes commands enqueued between the stop signal and the
// loop's exit, so no Do caller is left waiting on a dead loop. It runs
// before done closes, which is what makes Do's stranded-command check
// race-free.
func (d *Driver) drainCmds() {
	for {
		select {
		case fn := <-d.cmds:
			fn()
		default:
			return
		}
	}
}

// Close stops the loop; pending Do calls complete inline afterwards.
func (d *Driver) Close() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
}
