package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// newHardenedPlane stands up a serving stack whose runtime controller
// runs failure-aware gauging, returning the sim so tests can inject
// faults on its timeline.
func newHardenedPlane(t *testing.T, seed uint64) (*Plane, *MemorySink, *netsim.Sim) {
	t.Helper()
	rates := cost.DefaultRates()
	sim := netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, seed))
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: seed,
		Agent: agent.Config{Throttle: true},
		Runtime: rgauge.Config{
			Enabled: true, EpochS: 5, StaleAfterS: 15, CooldownS: 5,
			Hardened: true,
		},
	}, trainTestModel(t, seed))
	if err != nil {
		t.Fatalf("framework: %v", err)
	}
	sim.RunUntil(60)
	sink := &MemorySink{}
	p, err := New(fw, spark.NewEngine(sim, rates), Config{Rates: rates, Seed: seed, MaxRunning: 2, Sink: sink})
	if err != nil {
		t.Fatalf("plane: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return p, sink, sim
}

// stepUntilDegraded advances the clock in epoch-sized steps until the
// hardened controller reports degraded, failing the test if it never
// does.
func stepUntilDegraded(t *testing.T, p *Plane) {
	t.Helper()
	for i := 0; i < 40; i++ {
		if p.Degraded() {
			return
		}
		p.Step(5)
	}
	t.Fatal("controller never went degraded under a full partition")
}

// TestGaugeSurfaceDegradedAndRecovery walks the serve surface through
// an outage: /healthz flips ok → degraded → ok (always HTTP 200),
// /v1/cluster grows a gauge section, and the telemetry stream carries
// the wanify.serve.gauge.* family.
func TestGaugeSurfaceDegradedAndRecovery(t *testing.T) {
	p, sink, sim := newHardenedPlane(t, 61)
	defer p.Close()

	// Inline driver: start and immediately close so Do executes on the
	// caller, keeping the clock fully test-controlled.
	d := NewDriver(p)
	go d.Run()
	d.Close()
	srv := NewServer(p, d, sink)

	getHealthz := func() (int, string) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := getHealthz(); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthy healthz = %d %q, want 200 ok", code, body)
	}
	if st := p.Cluster(); st.Gauge == nil || st.Gauge.Degraded {
		t.Fatalf("healthy hardened cluster gauge = %+v, want present and clean", st.Gauge)
	}

	// Sever most of the cluster so every re-gauge snapshot is
	// rejected: coverage 1/6 with DCs 1 and 2 unreachable.
	now := sim.Now()
	sim.PartitionDC(1, now, now+500)
	sim.PartitionDC(2, now, now+500)
	stepUntilDegraded(t, p)

	if code, body := getHealthz(); code != http.StatusOK || body != "degraded\n" {
		t.Fatalf("degraded healthz = %d %q, want 200 degraded (liveness must not fail)", code, body)
	}
	st := p.Cluster()
	if st.Gauge == nil {
		t.Fatal("degraded cluster status has no gauge section")
	}
	if !st.Gauge.Degraded || st.Gauge.RejectedSnapshots == 0 {
		t.Errorf("degraded gauge = %+v, want Degraded with rejections", st.Gauge)
	}
	if st.Gauge.LastCoverage >= 0.6 {
		t.Errorf("degraded LastCoverage = %v, want below the threshold", st.Gauge.LastCoverage)
	}
	if st.Replans != 0 {
		t.Errorf("%d replans swapped during the outage", st.Replans)
	}

	// The JSON shape: gauge is a nested object keyed "gauge".
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatalf("cluster JSON: %v", err)
	}
	if _, ok := raw["gauge"]; !ok {
		t.Error("cluster JSON omits the gauge section on a hardened plane")
	}

	// Heal and ride past the breaker backoff: a clean replan recovers.
	p.Step(600)
	if p.Degraded() {
		t.Error("plane still degraded long after the partition healed")
	}
	if code, body := getHealthz(); code != http.StatusOK || body != "ok\n" {
		t.Errorf("recovered healthz = %d %q, want 200 ok", code, body)
	}
	if st := p.Cluster(); st.Replans == 0 {
		t.Error("no replan landed after recovery")
	}

	// Telemetry carried the gauge family, well-formed.
	family := map[string]bool{}
	for _, l := range sink.Lines() {
		if !ValidLine(l.String()) {
			t.Fatalf("invalid telemetry line %q", l.String())
		}
		if strings.HasPrefix(l.Name, "wanify.serve.gauge.") {
			family[l.Name] = true
		}
	}
	for _, want := range []string{
		"wanify.serve.gauge.degraded",
		"wanify.serve.gauge.coverage",
		"wanify.serve.gauge.rejected",
		"wanify.serve.gauge.breaker_open",
		"wanify.serve.gauge.retries",
		"wanify.serve.gauge.unmeasurable",
	} {
		if !family[want] {
			t.Errorf("telemetry missing %s", want)
		}
	}
}

// TestLegacyClusterOmitsGauge locks byte-compatibility: a plane whose
// controller is legacy (or absent) serializes no gauge key and emits
// no gauge telemetry.
func TestLegacyClusterOmitsGauge(t *testing.T) {
	p, sink := newTestPlane(t, 63, nil)
	defer p.Close()
	p.Step(40) // a few telemetry epochs

	st := p.Cluster()
	if st.Gauge != nil {
		t.Errorf("legacy cluster status grew a gauge section: %+v", st.Gauge)
	}
	buf, _ := json.Marshal(st)
	if strings.Contains(string(buf), "gauge") {
		t.Errorf("legacy cluster JSON mentions gauge: %s", buf)
	}
	for _, l := range sink.Lines() {
		if strings.HasPrefix(l.Name, "wanify.serve.gauge.") {
			t.Errorf("legacy plane emitted %s", l.Name)
		}
	}
	if p.Degraded() {
		t.Error("legacy plane reports degraded")
	}
}
