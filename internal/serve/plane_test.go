package serve

import (
	"errors"
	"reflect"
	"testing"

	"github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// newTestPlane stands up a small serving stack — netsim testbed,
// framework, engine, plane — started and ready for submissions.
func newTestPlane(t *testing.T, seed uint64, mut func(*Config)) (*Plane, *MemorySink) {
	t.Helper()
	rates := cost.DefaultRates()
	sim := netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, seed))
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: seed,
		Agent: agent.Config{Throttle: true},
	}, trainTestModel(t, seed))
	if err != nil {
		t.Fatalf("framework: %v", err)
	}
	sim.RunUntil(60)
	sink := &MemorySink{}
	cfg := Config{Rates: rates, Seed: seed, MaxRunning: 2, Sink: sink}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(fw, spark.NewEngine(sim, rates), cfg)
	if err != nil {
		t.Fatalf("plane: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return p, sink
}

func TestPlaneLifecycle(t *testing.T) {
	p, sink := newTestPlane(t, 11, func(c *Config) {
		c.RefreshS = 300
		c.Train = func(fp uint64) (*predict.Model, error) { return trainTestModel(t, fp), nil }
	})
	st, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.5, Tenant: "alpha"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != "running" || st.ID != 1 {
		t.Fatalf("first submit should run immediately, got %+v", st)
	}
	if _, err := p.Submit(JobSpec{Workload: "tpcds:q78", InputGB: 0.3}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := p.Submit(JobSpec{Workload: "wordcount", InputGB: 0.2}); err != nil {
		t.Fatalf("submit 3: %v", err) // queues: both slots busy
	}
	if got, _ := p.Status(3); got.State != "queued" {
		t.Fatalf("third job state = %s, want queued", got.State)
	}
	if err := p.DriveUntilIdle(1, 20000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	p.Step(16) // cross at least one telemetry epoch boundary
	for id := 1; id <= 3; id++ {
		st, err := p.Status(id)
		if err != nil {
			t.Fatalf("status %d: %v", id, err)
		}
		if st.State != "done" {
			t.Fatalf("job %d finished as %s (err %q)", id, st.State, st.Error)
		}
		if st.JCTSeconds <= 0 || st.WANGB <= 0 || st.CostUSD <= 0 {
			t.Fatalf("job %d missing result economics: %+v", id, st)
		}
	}
	if got := p.Stats(); got.Submitted != 3 || got.Admitted != 3 || got.Done != 3 {
		t.Fatalf("stats = %+v", got)
	}
	// The queued job must have a positive simulated queue wait.
	st3, _ := p.Status(3)
	if st3.QueueWaitS <= 0 {
		t.Fatalf("queued job reports no queue wait: %+v", st3)
	}
	// The boot refresh populated the cache through one miss.
	if cs := p.Cache().Stats(); cs.Misses < 1 {
		t.Fatalf("boot model refresh never touched the cache: %+v", cs)
	}
	// Three admissions → three wall-latency samples, and percentiles
	// derived from them.
	if got := p.AdmitNanos(); len(got) != 3 {
		t.Fatalf("admission latency samples = %d, want 3", len(got))
	}
	if p50, p99 := p.AdmitLatencyNanos(); p50 <= 0 || p99 < p50 {
		t.Fatalf("admission percentiles p50=%d p99=%d", p50, p99)
	}
	// Telemetry flowed and every line is well-formed Graphite plaintext.
	lines := sink.Lines()
	if len(lines) == 0 {
		t.Fatalf("no telemetry emitted")
	}
	for _, l := range lines {
		if !ValidLine(l.String()) {
			t.Fatalf("invalid telemetry line %q", l.String())
		}
	}
	p.Close()
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestPlaneQueueAndQuotaRejections(t *testing.T) {
	p, _ := newTestPlane(t, 13, func(c *Config) {
		c.MaxRunning = 1
		c.QueueCap = 1
		c.TenantQuota = 2
	})
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.3, Tenant: "a"}); err != nil {
		t.Fatalf("submit 1: %v", err) // runs
	}
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.3, Tenant: "a"}); err != nil {
		t.Fatalf("submit 2: %v", err) // queues
	}
	// Tenant a now has 2 in flight — the quota. A third is rejected even
	// though nothing about the queue itself is full for other tenants.
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.3, Tenant: "a"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("quota breach: %v", err)
	}
	// Tenant b hits the queue bound instead: 1 queued, cap 1.
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.3, Tenant: "b"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue overflow: %v", err)
	}
	st := p.Stats()
	if st.RejectedQuota != 1 || st.RejectedQueue != 1 {
		t.Fatalf("rejection counters = %+v", st)
	}
	// Rejections leave no job record.
	if got := len(p.Jobs()); got != 2 {
		t.Fatalf("rejections left records: %d jobs", got)
	}
	// Bad specs are rejected up front.
	if _, err := p.Submit(JobSpec{Workload: "mapreduce", InputGB: 1}); err == nil {
		t.Fatalf("unknown workload accepted")
	}
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0}); err == nil {
		t.Fatalf("zero-input job accepted")
	}
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 1, DCs: []int{99}}); err == nil {
		t.Fatalf("out-of-range placement mask accepted")
	}
}

func TestPlaneCancel(t *testing.T) {
	p, _ := newTestPlane(t, 17, func(c *Config) { c.MaxRunning = 1 })
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.4}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := p.Submit(JobSpec{Workload: "wordcount", InputGB: 0.4}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := p.Submit(JobSpec{Workload: "terasort", InputGB: 0.2}); err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	// Cancel the queued job 2: slot math must be untouched.
	if st, err := p.Cancel(2); err != nil || st.State != "canceled" {
		t.Fatalf("cancel queued: %v %+v", err, st)
	}
	// Cancel the running job 1: frees the slot, job 3 pumps in.
	if st, err := p.Cancel(1); err != nil || st.State != "canceled" {
		t.Fatalf("cancel running: %v %+v", err, st)
	}
	if st, _ := p.Status(3); st.State != "running" {
		t.Fatalf("queue did not pump after cancel: job 3 is %s", st.State)
	}
	// Double cancel and unknown ids are typed errors.
	if _, err := p.Cancel(1); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("double cancel: %v", err)
	}
	if _, err := p.Cancel(404); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown id: %v", err)
	}
	// The survivor still completes after the surrounding churn.
	if err := p.DriveUntilIdle(1, 20000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := p.Status(3); st.State != "done" {
		t.Fatalf("job 3 finished as %s (err %q)", st.State, st.Error)
	}
	if got := p.Stats(); got.Canceled != 2 || got.Done != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestPlaneDeterministicReplay is the property the golden `serve`
// experiment locks at scale: the same scripted load on the same seed
// yields identical job histories and an identical telemetry stream.
func TestPlaneDeterministicReplay(t *testing.T) {
	run := func() ([]JobStatus, []Line) {
		p, sink := newTestPlane(t, 23, func(c *Config) { c.MaxRunning = 2 })
		script := []JobSpec{
			{Workload: "terasort", InputGB: 0.4, Tenant: "a"},
			{Workload: "tpcds:q95", InputGB: 0.3, Tenant: "b", Priority: 2},
			{Workload: "wordcount", InputGB: 0.5, Tenant: "a", HotDCs: []int{0}, HotShare: 0.7},
			{Workload: "terasort", InputGB: 0.2, Tenant: "b", DCs: []int{0, 1, 2}},
		}
		for i, spec := range script {
			if _, err := p.Submit(spec); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if i == 2 {
				// Cancel job 3 before the clock moves, while it is
				// freshly admitted (or queued).
				if _, err := p.Cancel(3); err != nil {
					t.Fatalf("cancel: %v", err)
				}
			}
			p.Step(5) // stagger arrivals on the simulated clock
		}
		if err := p.DriveUntilIdle(1, 30000); err != nil {
			t.Fatalf("drain: %v", err)
		}
		p.Step(16) // collect a post-drain telemetry epoch
		return p.Jobs(), sink.Lines()
	}
	jobsA, linesA := run()
	jobsB, linesB := run()
	if !reflect.DeepEqual(jobsA, jobsB) {
		t.Fatalf("job histories diverged:\n%+v\n%+v", jobsA, jobsB)
	}
	if !reflect.DeepEqual(linesA, linesB) {
		t.Fatalf("telemetry streams diverged (%d vs %d lines)", len(linesA), len(linesB))
	}
}
