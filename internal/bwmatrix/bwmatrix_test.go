package bwmatrix

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestNewAndClone checks construction and deep copying.
func TestNewAndClone(t *testing.T) {
	m := New(3)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	m[0][1] = 42
	c := m.Clone()
	c[0][1] = 7
	if m[0][1] != 42 {
		t.Error("Clone aliases the original")
	}
	f := NewFilled(2, 5)
	if f[0][0] != 5 || f[1][0] != 5 {
		t.Error("NewFilled did not fill")
	}
}

// TestMinMaxOffDiagonal checks the cluster-min/max helpers ignore the
// diagonal.
func TestMinMaxOffDiagonal(t *testing.T) {
	m := New(3)
	m[0] = []float64{999, 400, 120}
	m[1] = []float64{380, 999, 130}
	m[2] = []float64{110, 120, 999}
	if got := m.MinOffDiagonal(); got != 110 {
		t.Errorf("min = %v, want 110", got)
	}
	if got := m.MaxOffDiagonal(); got != 400 {
		t.Errorf("max = %v, want 400", got)
	}
	if New(1).MinOffDiagonal() != 0 {
		t.Error("1x1 min should be 0")
	}
}

// TestOffDiagonal checks extraction order and length.
func TestOffDiagonal(t *testing.T) {
	m := New(2)
	m[0][1] = 1
	m[1][0] = 2
	od := m.OffDiagonal()
	if len(od) != 2 || od[0] != 1 || od[1] != 2 {
		t.Errorf("offdiagonal = %v", od)
	}
}

// TestAbsDiffAndCount checks the significance counting used by the
// accuracy experiments.
func TestAbsDiffAndCount(t *testing.T) {
	a := New(2)
	b := New(2)
	a[0][1], b[0][1] = 500, 350 // diff 150
	a[1][0], b[1][0] = 200, 180 // diff 20
	d := a.AbsDiff(b)
	if d[0][1] != 150 || d[1][0] != 20 {
		t.Errorf("absdiff = %v", d)
	}
	if got := d.CountOffDiagAbove(100); got != 1 {
		t.Errorf("significant count = %d, want 1", got)
	}
}

// TestAbsDiffPanicsOnMismatch checks the size guard.
func TestAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on size mismatch")
		}
	}()
	New(2).AbsDiff(New(3))
}

// TestSymmetrize checks direction folding.
func TestSymmetrize(t *testing.T) {
	m := New(2)
	m[0][1], m[1][0] = 100, 200
	s := m.Symmetrize()
	if s[0][1] != 150 || s[1][0] != 150 {
		t.Errorf("symmetrize = %v", s)
	}
	if m[0][1] != 100 {
		t.Error("Symmetrize mutated the receiver")
	}
}

// TestScale checks scalar multiplication.
func TestScale(t *testing.T) {
	m := New(2)
	m[0][1] = 10
	s := m.Scale(2.5)
	if s[0][1] != 25 || m[0][1] != 10 {
		t.Errorf("scale: got %v, orig %v", s[0][1], m[0][1])
	}
}

// TestConnMatrix checks construction and the budget helper.
func TestConnMatrix(t *testing.T) {
	c := NewConnFilled(3, 8)
	for i := range c {
		c[i][i] = 1
	}
	if got := c.TotalOffDiagonal(); got != 48 {
		t.Errorf("total = %d, want 48 (8 conns x 6 links)", got)
	}
	cl := c.Clone()
	cl[0][1] = 99
	if c[0][1] != 8 {
		t.Error("ConnMatrix clone aliases")
	}
}

// TestMul checks the Eq. 3 achievable-BW construction.
func TestMul(t *testing.T) {
	bw := New(2)
	bw[0][1] = 120
	conns := NewConn(2)
	conns[0][1] = 8
	got := Mul(bw, conns)
	if got[0][1] != 960 {
		t.Errorf("mul = %v, want 960", got[0][1])
	}
}

// TestMulPanicsOnMismatch checks the size guard.
func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on size mismatch")
		}
	}()
	Mul(New(2), NewConn(3))
}

// TestStringRendering checks both String methods produce grid output.
func TestStringRendering(t *testing.T) {
	m := NewFilled(2, 1.5)
	if s := m.String(); !strings.Contains(s, "1.5") || strings.Count(s, "\n") != 2 {
		t.Errorf("matrix string: %q", s)
	}
	c := NewConnFilled(2, 3)
	if s := c.String(); !strings.Contains(s, "3") {
		t.Errorf("conn string: %q", s)
	}
}

// TestMatrixProperties property-checks Clone/Scale/AbsDiff identities.
func TestMatrixProperties(t *testing.T) {
	f := func(vals [16]float64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		m := New(4)
		k := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				v := vals[k]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				m[i][j] = v
				k++
			}
		}
		// AbsDiff with self is zero.
		d := m.AbsDiff(m)
		for i := range d {
			for j := range d[i] {
				if d[i][j] != 0 {
					return false
				}
			}
		}
		// Symmetrize is idempotent.
		s1 := m.Symmetrize()
		s2 := s1.Symmetrize()
		for i := range s1 {
			for j := range s1[i] {
				if s1[i][j] != s2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
