// Package bwmatrix defines the two matrix types the paper's §2.3 builds
// WANify around: pairwise bandwidth matrices (Mbps, float64) and
// pairwise connection-count matrices (int). Both are dense N×N with DC
// indices in cluster order; the diagonal represents intra-DC values.
package bwmatrix

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense N×N matrix of pairwise bandwidths in Mbps.
// Matrix[i][j] is the bandwidth from DC i to DC j. Matrices are not
// required to be symmetric: WAN paths are measured per direction.
type Matrix [][]float64

// New returns an n×n bandwidth matrix initialized to zero.
func New(n int) Matrix {
	m := make(Matrix, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i], backing = backing[:n:n], backing[n:]
	}
	return m
}

// NewFilled returns an n×n matrix with every cell set to v.
func NewFilled(n int, v float64) Matrix {
	m := New(n)
	for i := range m {
		for j := range m[i] {
			m[i][j] = v
		}
	}
	return m
}

// N returns the dimension of the matrix.
func (m Matrix) N() int { return len(m) }

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := New(len(m))
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}

// MinOffDiagonal returns the smallest off-diagonal entry — the paper's
// "minimum BW of the cluster", the quantity WANify tries to raise.
// It returns 0 for matrices smaller than 2×2.
func (m Matrix) MinOffDiagonal() float64 {
	if len(m) < 2 {
		return 0
	}
	best := math.Inf(1)
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] < best {
				best = m[i][j]
			}
		}
	}
	return best
}

// MaxOffDiagonal returns the largest off-diagonal entry, or 0 for
// matrices smaller than 2×2.
func (m Matrix) MaxOffDiagonal() float64 {
	if len(m) < 2 {
		return 0
	}
	best := math.Inf(-1)
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] > best {
				best = m[i][j]
			}
		}
	}
	return best
}

// OffDiagonal returns all off-diagonal entries in row-major order.
func (m Matrix) OffDiagonal() []float64 {
	out := make([]float64, 0, len(m)*(len(m)-1))
	for i := range m {
		for j := range m[i] {
			if i != j {
				out = append(out, m[i][j])
			}
		}
	}
	return out
}

// Scale returns a new matrix with every entry multiplied by f.
func (m Matrix) Scale(f float64) Matrix {
	c := m.Clone()
	for i := range c {
		for j := range c[i] {
			c[i][j] *= f
		}
	}
	return c
}

// AbsDiff returns |m - o| entrywise. The matrices must have equal size.
func (m Matrix) AbsDiff(o Matrix) Matrix {
	if len(m) != len(o) {
		panic(fmt.Sprintf("bwmatrix: size mismatch %d vs %d", len(m), len(o)))
	}
	d := New(len(m))
	for i := range m {
		for j := range m[i] {
			d[i][j] = math.Abs(m[i][j] - o[i][j])
		}
	}
	return d
}

// CountOffDiagAbove counts off-diagonal entries strictly greater than
// threshold. Used for the paper's "significant difference" counts
// (> 100 Mbps, Figs. 9/11, Table 1).
func (m Matrix) CountOffDiagAbove(threshold float64) int {
	n := 0
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] > threshold {
				n++
			}
		}
	}
	return n
}

// Symmetrize returns a new matrix where each (i,j)/(j,i) pair holds
// their average. Measurement experiments that treat links as
// bidirectional use this.
func (m Matrix) Symmetrize() Matrix {
	c := m.Clone()
	for i := range c {
		for j := i + 1; j < len(c); j++ {
			avg := (c[i][j] + c[j][i]) / 2
			c[i][j], c[j][i] = avg, avg
		}
	}
	return c
}

// String renders the matrix with one row per line, entries in Mbps.
func (m Matrix) String() string {
	var b strings.Builder
	for i := range m {
		for j := range m[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.1f", m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ConnMatrix is a dense N×N matrix of parallel-connection counts.
// ConnMatrix[i][j] is the number of TCP connections DC i opens toward
// DC j for data transfer.
type ConnMatrix [][]int

// NewConn returns an n×n connection matrix initialized to zero.
func NewConn(n int) ConnMatrix {
	m := make(ConnMatrix, n)
	backing := make([]int, n*n)
	for i := range m {
		m[i], backing = backing[:n:n], backing[n:]
	}
	return m
}

// NewConnFilled returns an n×n connection matrix with all cells set to v.
func NewConnFilled(n int, v int) ConnMatrix {
	m := NewConn(n)
	for i := range m {
		for j := range m[i] {
			m[i][j] = v
		}
	}
	return m
}

// N returns the dimension of the matrix.
func (m ConnMatrix) N() int { return len(m) }

// Clone returns a deep copy.
func (m ConnMatrix) Clone() ConnMatrix {
	c := NewConn(len(m))
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}

// TotalOffDiagonal returns the total number of off-diagonal connections,
// the "total parallel connections" budget discussed with Fig. 2(c).
func (m ConnMatrix) TotalOffDiagonal() int {
	t := 0
	for i := range m {
		for j := range m[i] {
			if i != j {
				t += m[i][j]
			}
		}
	}
	return t
}

// String renders the connection matrix.
func (m ConnMatrix) String() string {
	var b strings.Builder
	for i := range m {
		for j := range m[i] {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%3d", m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Mul returns bw ⊙ conns entrywise as a new bandwidth matrix — the
// paper's "achievable BW" construction (Eq. 3 uses the product of
// predicted BW and determined connections).
func Mul(bw Matrix, conns ConnMatrix) Matrix {
	if len(bw) != len(conns) {
		panic(fmt.Sprintf("bwmatrix: size mismatch %d vs %d", len(bw), len(conns)))
	}
	out := New(len(bw))
	for i := range bw {
		for j := range bw[i] {
			out[i][j] = bw[i][j] * float64(conns[i][j])
		}
	}
	return out
}
