package workloads

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// TestUniformInput checks even spreading.
func TestUniformInput(t *testing.T) {
	in := UniformInput(8, 100e9)
	sum := 0.0
	for _, b := range in {
		if b != 12.5e9 {
			t.Errorf("share %v, want 12.5e9", b)
		}
		sum += b
	}
	if sum != 100e9 {
		t.Errorf("total %v", sum)
	}
}

// TestSkewedInput checks hot/cold distribution.
func TestSkewedInput(t *testing.T) {
	in := SkewedInput(8, 600e6, []int{0, 1, 2, 3}, 0.95)
	hot := in[0] + in[1] + in[2] + in[3]
	if math.Abs(hot-570e6) > 1 {
		t.Errorf("hot share %v, want 570e6", hot)
	}
	if math.Abs(in[4]-7.5e6) > 1 {
		t.Errorf("cold share %v, want 7.5e6", in[4])
	}
	total := 0.0
	for _, b := range in {
		total += b
	}
	if math.Abs(total-600e6) > 1 {
		t.Errorf("total %v", total)
	}
}

// TestSkewWeights checks the ws conversion: mean 1, proportional to
// data share.
func TestSkewWeights(t *testing.T) {
	in := []float64{300, 100, 0, 0}
	ws := SkewWeights(in)
	if ws[0] != 3 || ws[1] != 1 || ws[2] != 0 {
		t.Errorf("ws = %v", ws)
	}
	mean := (ws[0] + ws[1] + ws[2] + ws[3]) / 4
	if mean != 1 {
		t.Errorf("mean weight %v", mean)
	}
	flat := SkewWeights([]float64{0, 0})
	if flat[0] != 1 || flat[1] != 1 {
		t.Errorf("degenerate ws = %v", flat)
	}
}

// TestTeraSortShape checks the job profile: full-data shuffle.
func TestTeraSortShape(t *testing.T) {
	job := TeraSort(UniformInput(4, 10e9))
	if err := job.Validate(4); err != nil {
		t.Fatal(err)
	}
	if len(job.Stages) != 2 {
		t.Fatalf("%d stages", len(job.Stages))
	}
	if job.Stages[0].Kind != spark.MapKind || job.Stages[1].Kind != spark.ReduceKind {
		t.Error("stage kinds wrong")
	}
	if job.Stages[0].Selectivity != 1.0 {
		t.Error("TeraSort must shuffle its full input")
	}
}

// TestWordCountShuffleControl checks the paper's §5.3.2 mechanism: the
// shuffle volume is pinned regardless of input size.
func TestWordCountShuffleControl(t *testing.T) {
	in := UniformInput(8, 400e6)
	job := WordCount(in, 7.4e6)
	sel := job.Stages[0].Selectivity
	if math.Abs(sel*400e6-7.4e6) > 1 {
		t.Errorf("selectivity %v does not pin shuffle to 7.4 MB", sel)
	}
}

// TestTPCDSProfiles checks all four paper queries exist with the
// documented weight ordering (82 light ... 78 heavy).
func TestTPCDSProfiles(t *testing.T) {
	in := UniformInput(8, 100e9)
	var shuffles []float64
	for _, q := range TPCDSQueries() {
		job, err := TPCDS(q, in)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Validate(8); err != nil {
			t.Fatal(err)
		}
		// First-exchange volume = input x map selectivity.
		shuffles = append(shuffles, 100e9*job.Stages[0].Selectivity)
	}
	// Order is 82, 95, 11, 78: strictly increasing shuffle volume.
	for i := 1; i < len(shuffles); i++ {
		if shuffles[i] <= shuffles[i-1] {
			t.Errorf("query weights not increasing: %v", shuffles)
		}
	}
	if _, err := TPCDS(99, in); err == nil {
		t.Error("unknown query accepted")
	}
}

// TestAllocateBits checks the SAGQ allocation rule: weak believed links
// get few bits, the accuracy budget lifts the strongest links first,
// and NoQ (nil matrix) disables quantization.
func TestAllocateBits(t *testing.T) {
	if AllocateBits(nil, 0, 16) != nil {
		t.Error("nil believed should mean NoQ")
	}
	b := bwmatrix.New(4)
	// Links to master (DC0): DC1 strong, DC2 mid, DC3 weak.
	b[1][0], b[2][0], b[3][0] = 900, 300, 60
	bits := AllocateBits(b, 0, 4) // tiny budget: no raising needed
	if bits[0] != 32 {
		t.Errorf("master bits %d", bits[0])
	}
	if bits[1] != 32 || bits[3] != 4 {
		t.Errorf("bits = %v: strong link should stay 32, weak drop to 4", bits)
	}
	if bits[2] >= bits[1] || bits[2] <= bits[3] {
		t.Errorf("mid link bits %d not between weak and strong", bits[2])
	}

	// A high budget raises precisions, strongest-believed first.
	raised := AllocateBits(b, 0, 30)
	mean := float64(raised[1]+raised[2]+raised[3]) / 3
	if mean < 30-8 { // one step of quantization slack
		t.Errorf("budget not enforced: bits %v mean %.1f", raised, mean)
	}
}

// TestQuantizedTrainingRuns executes a short training loop end to end
// and checks the variant ordering: quantized training beats NoQ on both
// time and cost.
func TestQuantizedTrainingRuns(t *testing.T) {
	rates := cost.DefaultRates()
	run := func(believed bwmatrix.Matrix) MLResult {
		cfg := netsim.UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 5)
		cfg.Frozen = true
		sim := netsim.NewSim(cfg)
		mc := MLConfig{Epochs: 3, ModelBytes: 100e6, ComputeSecPerEpoch: 5, MasterDC: 0, MinMeanBits: 12}
		res, err := RunQuantizedTraining(sim, rates, believed, spark.SingleConn{}, mc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noq := run(nil)
	believed := bwmatrix.New(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				believed[i][j] = 100 // everything believed weak -> heavy quantization
			}
		}
	}
	quant := run(believed)
	if quant.TrainSeconds >= noq.TrainSeconds {
		t.Errorf("quantized %.1fs not faster than NoQ %.1fs", quant.TrainSeconds, noq.TrainSeconds)
	}
	if quant.Cost.Total() >= noq.Cost.Total() {
		t.Errorf("quantized $%.3f not cheaper than NoQ $%.3f", quant.Cost.Total(), noq.Cost.Total())
	}
	if len(noq.BitsPerDC) != 4 || noq.BitsPerDC[1] != 32 {
		t.Errorf("NoQ bits %v", noq.BitsPerDC)
	}
}
