package workloads

import (
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// The geo-distributed ML workload of §5.6: synchronous training where
// every epoch each worker exchanges gradients/weights with a parameter
// server (the Spark master's DC), and a quantization policy picks the
// float precision per link from the bandwidth it *believes* that link
// has (SAGQ [15]). All variants reach the same accuracy in the same
// number of epochs (the paper reports ~97% for all); what differs — and
// what Fig. 4 plots — is wall-clock training time and cost.

// QuantBits are the supported gradient precisions.
var QuantBits = []int{4, 8, 16, 32}

// MLConfig configures a quantized training run.
type MLConfig struct {
	// Epochs is the number of synchronous epochs (10 in Fig. 4).
	Epochs int
	// ModelBytes is the full-precision (32-bit) gradient payload each
	// worker exchanges with the master per epoch, per direction.
	ModelBytes float64
	// ComputeSecPerEpoch is the local gradient-computation time per
	// epoch on a unit-rate worker.
	ComputeSecPerEpoch float64
	// MasterDC hosts the parameter server (US East in the paper).
	MasterDC int
	// MinMeanBits is the accuracy budget: the mean precision across
	// links may not drop below this (16 keeps test accuracy at ~97%;
	// quantizing everything to 4 bits would not).
	MinMeanBits float64
}

// DefaultMLConfig returns the Fig. 4 setup.
func DefaultMLConfig() MLConfig {
	return MLConfig{
		Epochs:             10,
		ModelBytes:         150e6,
		ComputeSecPerEpoch: 18,
		MasterDC:           0,
		MinMeanBits:        12,
	}
}

// MLResult is the outcome of a training run.
type MLResult struct {
	// TrainSeconds is total wall-clock training time.
	TrainSeconds float64
	// Cost itemizes compute + network for the run.
	Cost cost.Breakdown
	// BitsPerDC is the precision assigned to each worker's link
	// (32 for the master's own DC).
	BitsPerDC []int
	// MinLinkMbps is the weakest observed per-epoch exchange rate.
	MinLinkMbps float64
}

// bitBandMbps maps believed link bandwidth to gradient precision:
// SAGQ keeps full precision on links it believes can carry it and
// degrades precision as believed bandwidth shrinks. The bands follow
// the transfer-time-equalizing idea (a 4x smaller payload on a 4x
// slower link takes the same time).
func bitBandMbps(bw float64) int {
	switch {
	case bw >= 800:
		return 32
	case bw >= 400:
		return 16
	case bw >= 160:
		return 8
	default:
		return 4
	}
}

// AllocateBits picks per-worker gradient precisions from believed
// bandwidths to the master: links believed fast keep full precision,
// links believed slow degrade, and the mean precision across workers
// must stay at or above minMeanBits (the accuracy budget). A nil
// believed matrix disables quantization (32 bits everywhere — NoQ).
//
// This is where belief accuracy matters (§5.6): static-independent
// measurements overestimate runtime bandwidth (no contention), so SAGQ
// keeps too many links at high precision and the congested ones stall
// the synchronous exchange. Simultaneous/predicted beliefs see the
// contended values and quantize accordingly.
func AllocateBits(believed bwmatrix.Matrix, masterDC int, minMeanBits float64) []int {
	if believed == nil {
		return nil
	}
	n := believed.N()
	bits := make([]int, n)
	workers := 0
	for d := 0; d < n; d++ {
		if d == masterDC {
			bits[d] = 32
			continue
		}
		workers++
		bits[d] = bitBandMbps(believed[d][masterDC])
	}
	if workers == 0 {
		return bits
	}
	// Raise precisions (strongest believed links first) until the mean
	// meets the accuracy budget.
	for meanBits(bits, masterDC) < minMeanBits {
		bestDC, bestBW := -1, -1.0
		for d := 0; d < n; d++ {
			if d == masterDC || bits[d] >= 32 {
				continue
			}
			if believed[d][masterDC] > bestBW {
				bestBW = believed[d][masterDC]
				bestDC = d
			}
		}
		if bestDC < 0 {
			break
		}
		bits[bestDC] = nextBits(bits[bestDC])
	}
	return bits
}

func nextBits(b int) int {
	for _, q := range QuantBits {
		if q > b {
			return q
		}
	}
	return b
}

func meanBits(bits []int, masterDC int) float64 {
	sum, n := 0.0, 0
	for d, b := range bits {
		if d != masterDC {
			sum += float64(b)
			n++
		}
	}
	if n == 0 {
		return 32
	}
	return sum / float64(n)
}

// RunQuantizedTraining executes the training loop on the simulator.
// believed selects the quantization policy's bandwidth beliefs (nil =
// NoQ); policy selects the connection strategy (spark.SingleConn for
// all paper variants except WQ, which passes agent-managed pools).
func RunQuantizedTraining(sim substrate.Cluster, rates cost.Rates, believed bwmatrix.Matrix, policy spark.ConnPolicy, cfg MLConfig) (MLResult, error) {
	n := sim.NumDCs()
	bits := AllocateBits(believed, cfg.MasterDC, cfg.MinMeanBits)
	if bits == nil {
		bits = make([]int, n)
		for d := range bits {
			bits[d] = 32
		}
	}

	res := MLResult{BitsPerDC: bits, MinLinkMbps: math.Inf(1)}
	start := sim.Now()
	var wanBytesBySrc = make([]float64, n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Local gradient computation (synchronous): slowest DC gates.
		computeS := 0.0
		for d := 0; d < n; d++ {
			rate := 0.0
			for _, vm := range sim.VMsOfDC(d) {
				rate += sim.Spec(vm).ComputeRate
			}
			if t := cfg.ComputeSecPerEpoch / rate; t > computeS {
				computeS = t
			}
		}
		for v := 0; v < sim.NumVMs(); v++ {
			sim.SetCPULoad(substrate.VMID(v), 0.9)
		}
		sim.RunFor(computeS)
		for v := 0; v < sim.NumVMs(); v++ {
			sim.SetCPULoad(substrate.VMID(v), 0.2)
		}

		// Gradient push + weight pull, all workers concurrently.
		var flows []substrate.Flow
		var payloads []float64
		exchangeStart := sim.Now()
		for d := 0; d < n; d++ {
			if d == cfg.MasterDC {
				continue
			}
			payload := cfg.ModelBytes * float64(bits[d]) / 32
			src := sim.FirstVMOfDC(d)
			dst := sim.FirstVMOfDC(cfg.MasterDC)
			wanBytesBySrc[d] += payload
			wanBytesBySrc[cfg.MasterDC] += payload

			up := sim.StartFlow(src, dst, policy.Conns(src, cfg.MasterDC), payload, nil)
			policy.Register(up)
			down := sim.StartFlow(dst, src, policy.Conns(dst, d), payload, nil)
			policy.Register(down)
			flows = append(flows, up, down)
			payloads = append(payloads, payload, payload)
		}
		if err := sim.AwaitFlows(3600, flows...); err != nil {
			return MLResult{}, err
		}
		exchangeS := sim.Now() - exchangeStart
		if exchangeS > 0 {
			for _, p := range payloads {
				// Lower bound on the link's achieved rate: its payload
				// over the whole (slowest-gated) exchange window.
				rate := p * 8 / 1e6 / exchangeS
				if rate < res.MinLinkMbps {
					res.MinLinkMbps = rate
				}
			}
		}
		for v := 0; v < sim.NumVMs(); v++ {
			sim.SetCPULoad(substrate.VMID(v), 0)
		}
	}

	res.TrainSeconds = sim.Now() - start
	if math.IsInf(res.MinLinkMbps, 1) {
		res.MinLinkMbps = 0
	}
	for v := 0; v < sim.NumVMs(); v++ {
		res.Cost.ComputeUSD += rates.ComputeUSD(sim.Spec(substrate.VMID(v)), res.TrainSeconds)
	}
	regions := sim.Regions()
	for d := 0; d < n; d++ {
		res.Cost.NetworkUSD += rates.EgressUSD(regions[d], wanBytesBySrc[d])
	}
	return res, nil
}
