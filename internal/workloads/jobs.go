// Package workloads models the applications the paper evaluates WANify
// with (§5.1): TeraSort, WordCount with controllable intermediate data,
// four TPC-DS queries spanning light to heavy shuffle volumes, and a
// geo-distributed ML training loop with bandwidth-driven gradient
// quantization (SAGQ [15] and variants).
//
// Job profiles are expressed as stage chains with per-stage compute
// intensity (seconds per GB on a unit-rate worker) and selectivity
// (output bytes per input byte). The TPC-DS profiles are shaped to the
// paper's classification — query 82 light-weight, 95 and 11
// average-weight, 78 heavy-weight — so the WAN-bound fraction, and
// therefore WANify's headroom, grows in that order.
package workloads

import (
	"fmt"

	"github.com/wanify/wanify/internal/spark"
)

// UniformInput spreads totalBytes evenly over n DCs — the default HDFS
// layout of the paper's experiments.
func UniformInput(n int, totalBytes float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = totalBytes / float64(n)
	}
	return out
}

// SkewedInput concentrates hotShare of totalBytes on the given hot DCs
// (evenly among them), spreading the remainder over the others — the
// §5.8.1 skew setup where HDFS blocks are moved toward a few regions.
func SkewedInput(n int, totalBytes float64, hotDCs []int, hotShare float64) []float64 {
	out := make([]float64, n)
	hot := make(map[int]bool, len(hotDCs))
	for _, d := range hotDCs {
		hot[d] = true
	}
	cold := n - len(hot)
	for i := range out {
		if hot[i] {
			out[i] = totalBytes * hotShare / float64(len(hot))
		} else if cold > 0 {
			out[i] = totalBytes * (1 - hotShare) / float64(cold)
		}
	}
	return out
}

// SkewWeights converts an input layout to per-DC skew weights ws for
// the global optimizer (§3.3.1): weight proportional to the DC's share
// of input bytes.
func SkewWeights(layout []float64) []float64 {
	total := 0.0
	for _, b := range layout {
		total += b
	}
	out := make([]float64, len(layout))
	if total <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for i, b := range layout {
		out[i] = b / total * float64(len(layout))
	}
	return out
}

// TeraSort builds the paper's TeraSort job: a scan map stage followed
// by a full-data sort whose shuffle moves the entire dataset.
func TeraSort(inputPerDC []float64) spark.Job {
	return spark.Job{
		Name:       "terasort",
		InputBytes: append([]float64(nil), inputPerDC...),
		Stages: []spark.Stage{
			{Name: "sample-partition", Kind: spark.MapKind, SecPerGB: 5, Selectivity: 1.0},
			{Name: "sort", Kind: spark.ReduceKind, SecPerGB: 16, Selectivity: 1.0},
		},
	}
}

// WordCount builds a WordCount whose intermediate (shuffle) volume is
// controlled directly — the paper generates all-distinct words to pin
// the shuffle size (§5.3.2). shuffleBytes is the total map-output
// volume subject to the all-to-all exchange.
func WordCount(inputPerDC []float64, shuffleBytes float64) spark.Job {
	total := 0.0
	for _, b := range inputPerDC {
		total += b
	}
	sel := 1.0
	if total > 0 {
		sel = shuffleBytes / total
	}
	return spark.Job{
		Name:       "wordcount",
		InputBytes: append([]float64(nil), inputPerDC...),
		Stages: []spark.Stage{
			{Name: "tokenize", Kind: spark.MapKind, SecPerGB: 8, Selectivity: sel},
			{Name: "count", Kind: spark.ReduceKind, SecPerGB: 6, Selectivity: 0.1},
		},
	}
}

// tpcdsProfiles maps query number → stage chain. Selectivities are
// relative to each stage's input; with 100 GB total input, query 78
// shuffles ~15 GB in its first exchange, 82 only ~0.2 GB.
var tpcdsProfiles = map[int][]spark.Stage{
	82: {
		{Name: "scan-filter", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.004},
		{Name: "join-agg", Kind: spark.ReduceKind, SecPerGB: 10, Selectivity: 0.5},
	},
	95: {
		{Name: "scan-filter", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.22},
		{Name: "join", Kind: spark.ReduceKind, SecPerGB: 8, Selectivity: 0.40},
		{Name: "agg", Kind: spark.ReduceKind, SecPerGB: 6, Selectivity: 0.10},
	},
	11: {
		{Name: "scan-filter", Kind: spark.MapKind, SecPerGB: 4, Selectivity: 0.32},
		{Name: "join", Kind: spark.ReduceKind, SecPerGB: 8, Selectivity: 0.45},
		{Name: "agg", Kind: spark.ReduceKind, SecPerGB: 6, Selectivity: 0.10},
	},
	78: {
		{Name: "scan-filter", Kind: spark.MapKind, SecPerGB: 5, Selectivity: 0.55},
		{Name: "join-1", Kind: spark.ReduceKind, SecPerGB: 9, Selectivity: 0.60},
		{Name: "join-2", Kind: spark.ReduceKind, SecPerGB: 8, Selectivity: 0.40},
		{Name: "agg", Kind: spark.ReduceKind, SecPerGB: 6, Selectivity: 0.10},
	},
}

// TPCDSQueries lists the implemented query numbers in the paper's
// order: light (82), average (95, 11), heavy (78).
func TPCDSQueries() []int { return []int{82, 95, 11, 78} }

// TPCDS builds the job model for one of the paper's TPC-DS queries
// (82, 95, 11 or 78) over the given input layout.
func TPCDS(query int, inputPerDC []float64) (spark.Job, error) {
	stages, ok := tpcdsProfiles[query]
	if !ok {
		return spark.Job{}, fmt.Errorf("workloads: TPC-DS query %d not modelled (have 82, 95, 11, 78)", query)
	}
	cp := make([]spark.Stage, len(stages))
	copy(cp, stages)
	return spark.Job{
		Name:       fmt.Sprintf("tpcds-q%d", query),
		InputBytes: append([]float64(nil), inputPerDC...),
		Stages:     cp,
	}, nil
}
