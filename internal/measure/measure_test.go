package measure

import (
	"math"
	"reflect"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *netsim.Sim {
	cfg := netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return netsim.NewSim(cfg)
}

// TestStaticIndependentMatchesUncontendedCaps checks that one-at-a-time
// probing on a frozen network reads close to the per-connection caps
// (the probes run alone, so nothing contends).
func TestStaticIndependentMatchesUncontendedCaps(t *testing.T) {
	sim := frozenSim(4, 1)
	m, rep := StaticIndependent(sim, Options{DurationS: 10, Conns: 1})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				if m[i][j] != 0 {
					t.Errorf("diagonal [%d][%d] = %v", i, j, m[i][j])
				}
				continue
			}
			cap := math.Min(sim.PerConnCapMbps(i, j), substrate.T2Medium.EgressMbps)
			// The slow-start ramp costs a little of the 10 s window.
			if m[i][j] < cap*0.85 || m[i][j] > cap*1.01 {
				t.Errorf("static[%d][%d] = %.0f, want ~%.0f (pair cap)", i, j, m[i][j], cap)
			}
		}
	}
	if rep.BytesTransferred <= 0 || rep.ElapsedS != 12*10 {
		t.Errorf("report = %+v: want 120s elapsed (12 ordered pairs x 10s)", rep)
	}
}

// TestSimultaneousBelowIndependent checks the §2.2 motivation on the
// measurement layer itself: contended readings cannot exceed the
// uncontended ones on strong links.
func TestSimultaneousBelowIndependent(t *testing.T) {
	sim := frozenSim(8, 2)
	indep, _ := StaticIndependent(sim, Options{DurationS: 6, Conns: 1})
	simul, _ := StaticSimultaneous(sim, StableOptions())
	if simul.MaxOffDiagonal() >= indep.MaxOffDiagonal() {
		t.Errorf("simultaneous max %.0f >= independent max %.0f", simul.MaxOffDiagonal(), indep.MaxOffDiagonal())
	}
	// Total egress of any DC stays within its VM cap.
	for i := 0; i < 8; i++ {
		sum := 0.0
		for j := 0; j < 8; j++ {
			sum += simul[i][j]
		}
		if sum > substrate.T2Medium.EgressMbps*1.01 {
			t.Errorf("DC %d simultaneous egress sum %.0f exceeds cap", i, sum)
		}
	}
}

// TestSnapshotNoise checks that snapshots are noisy but unbiased-ish,
// and that noiseless options produce deterministic readings.
func TestSnapshotNoise(t *testing.T) {
	sim := frozenSim(3, 3)
	rng := simrand.Derive(9, "test")
	a, _, _ := Snapshot(sim, SnapshotOptions(rng))
	b, _, _ := Snapshot(sim, SnapshotOptions(rng))
	diff := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && a[i][j] != b[i][j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("consecutive noisy snapshots identical; noise not applied")
	}
}

// TestSnapshotPanicsWithoutRng checks the misuse guard.
func TestSnapshotPanicsWithoutRng(t *testing.T) {
	sim := frozenSim(2, 4)
	defer func() {
		if recover() == nil {
			t.Error("no panic for NoiseSD without Rng")
		}
	}()
	StaticSimultaneous(sim, Options{DurationS: 1, Conns: 1, NoiseSD: 0.1})
}

// TestSnapshotUnderreportsFarLinks checks the slow-start interaction
// the prediction model must learn: a 1-second probe over a long-RTT
// path reads below the stable value.
func TestSnapshotUnderreportsFarLinks(t *testing.T) {
	sim := frozenSim(4, 5)
	short, _ := StaticSimultaneous(sim, Options{DurationS: 1, Conns: 1})
	long, _ := StaticSimultaneous(sim, Options{DurationS: 20, Conns: 1})
	// DC0 (US East) -> DC3 (AP SE): ~220 ms RTT, ramp eats most of 1 s.
	if short[0][3] >= long[0][3]*0.95 {
		t.Errorf("1s far-link reading %.0f not below 20s reading %.0f", short[0][3], long[0][3])
	}
}

// TestSnapshotByVM checks the VM-granularity association path.
func TestSnapshotByVM(t *testing.T) {
	regions := geo.TestbedSubset(3)
	vms := [][]substrate.VMSpec{
		{substrate.T2Medium, substrate.T2Medium}, // 2 VMs in DC0
		{substrate.T2Medium},
		{substrate.T2Medium},
	}
	cfg := netsim.Config{Regions: regions, VMs: vms, Seed: 6, Frozen: true}
	sim := netsim.NewSim(cfg)
	m, stats, _ := SnapshotByVM(sim, Options{DurationS: 5, Conns: 1})
	if m.N() != 4 {
		t.Fatalf("VM matrix is %dx%d, want 4x4", m.N(), m.N())
	}
	if len(stats) != 4 {
		t.Fatalf("%d stat entries", len(stats))
	}
	// Intra-DC pairs (VM 0 and 1 share DC0) must be zero.
	if m[0][1] != 0 || m[1][0] != 0 {
		t.Error("intra-DC VM pairs measured")
	}
	// Cross-DC pairs measured positive.
	if m[0][2] <= 0 || m[1][2] <= 0 {
		t.Errorf("cross-DC VM pairs not measured: %v %v", m[0][2], m[1][2])
	}
}

// TestMonitorWindowedAverage checks the ifTop-like monitor.
func TestMonitorWindowedAverage(t *testing.T) {
	sim := frozenSim(3, 7)
	mon := NewMonitor(sim, 0, 1.0, 5)
	defer mon.Close()
	if r := mon.Rates(); r[1] != 0 {
		t.Error("monitor reported rates before any sample")
	}
	f := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 1)
	sim.RunFor(6)
	rates := mon.Rates()
	if rates[1] <= 0 {
		t.Error("monitor missed an active flow")
	}
	got := f.Rate()
	if math.Abs(rates[1]-got) > got*0.25 {
		t.Errorf("windowed avg %.0f far from instantaneous %.0f", rates[1], got)
	}
	if rates[2] != 0 {
		t.Errorf("idle destination shows %.1f Mbps", rates[2])
	}
	f.Stop()
}

// TestMonitorClose checks sampling stops after Close.
func TestMonitorClose(t *testing.T) {
	sim := frozenSim(3, 8)
	mon := NewMonitor(sim, 0, 1.0, 3)
	f := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 1)
	sim.RunFor(4)
	mon.Close()
	before := mon.Rates()[1]
	f.Stop()
	sim.RunFor(5)
	after := mon.Rates()[1]
	if before != after {
		t.Error("monitor kept sampling after Close")
	}
}

// TestReportAccounting checks measurement-cost bookkeeping.
func TestReportAccounting(t *testing.T) {
	sim := frozenSim(3, 9)
	_, rep := StaticSimultaneous(sim, Options{DurationS: 10, Conns: 1})
	if rep.ElapsedS != 10 {
		t.Errorf("elapsed %v, want 10", rep.ElapsedS)
	}
	if rep.VMSeconds != 30 {
		t.Errorf("VM-seconds %v, want 30", rep.VMSeconds)
	}
	// 6 ordered pairs at a few hundred Mbps for 10s: order-of-GB total.
	if rep.BytesTransferred < 1e8 || rep.BytesTransferred > 1e11 {
		t.Errorf("bytes transferred %.3g implausible", rep.BytesTransferred)
	}
	sum := rep.Add(rep)
	if sum.ElapsedS != 20 || sum.VMSeconds != 60 {
		t.Errorf("Add broken: %+v", sum)
	}
}

// TestBeginSnapshotMatchesSnapshot checks the async snapshot path is
// byte-identical to the synchronous one on an idle cluster: same probe
// layout, same noise order, same stats and bill. The runtime
// re-gauging controller relies on this equivalence when it samples from
// inside a timer callback.
func TestBeginSnapshotMatchesSnapshot(t *testing.T) {
	optsFor := func() Options { return SnapshotOptions(simrand.Derive(99, "snap-equiv")) }

	simA := frozenSim(4, 7)
	wantBW, wantStats, wantRep := Snapshot(simA, optsFor())

	simB := frozenSim(4, 7)
	ps := BeginSnapshot(simB, optsFor())
	if ps.Ready() {
		t.Fatal("snapshot ready before its window elapsed")
	}
	simB.RunFor(ps.DurationS())
	if !ps.Ready() {
		t.Fatal("snapshot not ready after its window elapsed")
	}
	gotBW, gotStats, gotRep := ps.Collect()

	for i := range wantBW {
		for j := range wantBW[i] {
			if gotBW[i][j] != wantBW[i][j] {
				t.Errorf("bw[%d][%d] = %v, want %v", i, j, gotBW[i][j], wantBW[i][j])
			}
		}
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("stats diverge: %v vs %v", gotStats, wantStats)
	}
	if gotRep != wantRep {
		t.Errorf("report = %+v, want %+v", gotRep, wantRep)
	}
	if simB.ActiveFlows() != 0 {
		t.Errorf("%d probes left after Collect", simB.ActiveFlows())
	}
}

// TestPendingSnapshotGuards pins the misuse panics: early collection
// and double collection.
func TestPendingSnapshotGuards(t *testing.T) {
	sim := frozenSim(3, 8)
	ps := BeginSnapshot(sim, Options{DurationS: 1, Conns: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic collecting before the window elapsed")
			}
		}()
		ps.Collect()
	}()
	sim.RunFor(1)
	ps.Collect()
	defer func() {
		if recover() == nil {
			t.Error("no panic on double collection")
		}
	}()
	ps.Collect()
}

// TestPendingSnapshotAbandon checks Abandon tears probes down without
// producing a sample.
func TestPendingSnapshotAbandon(t *testing.T) {
	sim := frozenSim(3, 9)
	ps := BeginSnapshot(sim, Options{DurationS: 1, Conns: 1})
	if sim.ActiveFlows() == 0 {
		t.Fatal("no probes started")
	}
	ps.Abandon()
	if sim.ActiveFlows() != 0 {
		t.Errorf("%d probes left after Abandon", sim.ActiveFlows())
	}
}
