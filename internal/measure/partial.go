package measure

// Failure-aware gauging: the hardened counterpart of the snapshot
// primitive. The legacy path (BeginSnapshot + Collect) assumes every
// probe survives its window; a PR-6 fault landing mid-snapshot used to
// freeze a probe's byte count and silently poison the pair average.
// The hardened path instead treats probe failure as a first-class
// outcome: failed probes are retried with capped exponential backoff
// on the substrate clock, and collection returns a PartialSnapshot
// that tags every ordered DC pair Measured, Retried or Unmeasurable
// with a confidence score — never a fabricated zero. The re-gauging
// controller (internal/runtime) fuses these tagged samples with its
// last-known-good belief store; see DESIGN.md §11.

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/substrate"
)

// PairOutcome classifies how one ordered DC pair's measurement went.
type PairOutcome int8

// The pair outcomes of a hardened snapshot.
const (
	// PairMeasured: every probe of the pair survived the full window.
	PairMeasured PairOutcome = iota
	// PairRetried: at least one probe failed but retries (or surviving
	// sibling probes) still produced a usable reading.
	PairRetried
	// PairUnmeasurable: the pair produced no usable reading — probes
	// kept dying past the retry budget, an endpoint is dead, or the
	// flows stalled at blackout rates (a partition holds the pair).
	PairUnmeasurable
)

// String names the outcome.
func (o PairOutcome) String() string {
	switch o {
	case PairRetried:
		return "retried"
	case PairUnmeasurable:
		return "unmeasurable"
	default:
		return "measured"
	}
}

// RetryPolicy governs probe retries in a hardened snapshot. The zero
// value selects the defaults noted per field.
type RetryPolicy struct {
	// MaxRetries is how many replacement probes one VM pair may start
	// after its current probe fails (default 2).
	MaxRetries int
	// BackoffS is the delay before the first retry (default 0.1 s).
	BackoffS float64
	// BackoffMult grows the delay per attempt (default 2).
	BackoffMult float64
	// MaxBackoffS caps the delay (default 1 s — a retry scheduled
	// beyond the probe window would never contribute anyway).
	MaxBackoffS float64
	// StallMbps is the stalled-flow detection floor: a pair whose
	// probes ran but integrated below this rate is tagged
	// Unmeasurable — a partition stalls flows at rate zero without
	// failing them, and a stalled probe measures the fault, not the
	// link (default 0.5 Mbps, half the locked blackout belief).
	StallMbps float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.BackoffS == 0 {
		p.BackoffS = 0.1
	}
	if p.BackoffMult == 0 {
		p.BackoffMult = 2
	}
	if p.MaxBackoffS == 0 {
		p.MaxBackoffS = 1
	}
	if p.StallMbps == 0 {
		p.StallMbps = 0.5
	}
	return p
}

// PairSample is one ordered DC pair's tagged measurement.
type PairSample struct {
	// Outcome classifies the measurement.
	Outcome PairOutcome
	// Mbps is the byte-integrated rate over the pair's live probe
	// time (zero when Unmeasurable with no live time).
	Mbps float64
	// Confidence is the fraction of the probe window the pair was
	// actually observed, in [0, 1]; zero for Unmeasurable pairs.
	Confidence float64
	// Retries counts replacement probes started for the pair.
	Retries int
	// FailedProbes counts probe flows of the pair a fault terminated.
	FailedProbes int
}

// PartialSnapshot is the hardened snapshot's result: a bandwidth
// matrix over the pairs that could be measured, a per-pair outcome
// tag, and the host metrics and bill of the legacy snapshot.
type PartialSnapshot struct {
	// BW holds the measured rates (noise applied); Unmeasurable pairs
	// are zero and must be filled from belief, not trusted.
	BW bwmatrix.Matrix
	// Samples tags every ordered DC pair (key [src, dst]).
	Samples map[[2]int]PairSample
	// Pairs lists the ordered DC pairs in deterministic order.
	Pairs [][2]int
	// Stats are the post-probe host metrics.
	Stats []substrate.VMStats
	// Bill prices the measurement (retry probes included).
	Bill Report
}

// Coverage is the fraction of ordered pairs with a usable reading
// (Measured or Retried). 1.0 on a healthy cluster.
func (s *PartialSnapshot) Coverage() float64 {
	if len(s.Pairs) == 0 {
		return 1
	}
	usable := 0
	for _, p := range s.Pairs {
		if s.Samples[p].Outcome != PairUnmeasurable {
			usable++
		}
	}
	return float64(usable) / float64(len(s.Pairs))
}

// Unmeasurable counts the pairs with no usable reading.
func (s *PartialSnapshot) Unmeasurable() int {
	n := 0
	for _, p := range s.Pairs {
		if s.Samples[p].Outcome == PairUnmeasurable {
			n++
		}
	}
	return n
}

// Retries sums the replacement probes across all pairs.
func (s *PartialSnapshot) Retries() int {
	n := 0
	for _, p := range s.Pairs {
		n += s.Samples[p].Retries
	}
	return n
}

// probeChain is one VM pair's probe history within a hardened
// snapshot: the original probe plus any replacement probes retries
// started after failures.
type probeChain struct {
	pair      [2]int // ordered DC pair
	src, dst  substrate.VMID
	segs      []probeSeg
	retries   int
	failed    int  // probes of this chain a fault terminated
	exhausted bool // retry budget spent or endpoint confirmed dead
}

// probeSeg is one probe flow's contribution window.
type probeSeg struct {
	flow       substrate.Flow
	startBytes float64
	startT     float64
	endT       float64 // failure instant; -1 while live
}

// BeginSnapshotHardened starts a failure-aware all-pairs snapshot:
// the same probe layout as BeginSnapshot, but every probe carries a
// failure handler that retries it with capped exponential backoff on
// the substrate clock. Collect the result with CollectPartial once
// the window has elapsed.
func BeginSnapshotHardened(sim substrate.Cluster, opts Options, pol RetryPolicy) *PendingSnapshot {
	ps := BeginSnapshot(sim, opts)
	ps.hardened = true
	ps.policy = pol.withDefaults()
	conns := maxIntOne(opts.Conns)
	for _, pr := range ps.probes {
		ch := &probeChain{
			pair: pr.pair,
			src:  pr.flow.Src(),
			dst:  pr.flow.Dst(),
		}
		ch.segs = append(ch.segs, probeSeg{
			flow: pr.flow, startBytes: pr.start, startT: ps.begun, endT: -1,
		})
		ps.chains = append(ps.chains, ch)
		ps.armRetry(ch, conns)
	}
	// The chains own every probe from here on (Abandon and
	// CollectPartial tear them down); the legacy probe list would
	// double-visit the first segments.
	ps.probes = nil
	return ps
}

// armRetry registers the failure handler on the chain's live probe:
// close the segment at the failure instant and schedule a replacement
// probe after the chain's current backoff, unless the budget is spent
// or the window has closed. A probe born failed (dead endpoint) fires
// the handler immediately, so the first retry is scheduled from
// within BeginSnapshotHardened itself.
func (ps *PendingSnapshot) armRetry(ch *probeChain, conns int) {
	idx := len(ch.segs) - 1
	ch.segs[idx].flow.OnFail(func() {
		if ps.finished || ch.segs[idx].endT >= 0 {
			return
		}
		ch.segs[idx].endT = ps.sim.Now()
		ch.failed++
		if ch.retries >= ps.policy.MaxRetries {
			ch.exhausted = true
			return
		}
		backoff := ps.policy.BackoffS * math.Pow(ps.policy.BackoffMult, float64(ch.retries))
		if backoff > ps.policy.MaxBackoffS {
			backoff = ps.policy.MaxBackoffS
		}
		ch.retries++
		ps.sim.After(backoff, func(now float64) {
			if ps.finished || ch.exhausted {
				return
			}
			if now >= ps.begun+ps.opts.DurationS {
				ch.exhausted = true // window closed; nothing to salvage
				return
			}
			if !ps.sim.VMAlive(ch.src) || !ps.sim.VMAlive(ch.dst) {
				ch.exhausted = true // dead endpoint: the pair is unmeasurable
				return
			}
			f := ps.sim.StartProbe(ch.src, ch.dst, conns)
			ch.segs = append(ch.segs, probeSeg{
				flow: f, startBytes: f.TransferredBytes(), startT: now, endT: -1,
			})
			ps.armRetry(ch, conns)
		})
	})
}

// CollectPartial tears the hardened snapshot down and returns the
// tagged partial sample. Per pair, every probe segment contributes
// its bytes over its live time, so a probe that died mid-window still
// reports the rate it saw while alive instead of a diluted average;
// pairs with no live time — or whose flows stalled below
// RetryPolicy.StallMbps, the partition signature — are tagged
// Unmeasurable and left at zero for the caller's belief fusion.
func (ps *PendingSnapshot) CollectPartial() *PartialSnapshot {
	if !ps.hardened {
		panic("measure: CollectPartial on a legacy snapshot; use Collect")
	}
	if ps.finished {
		panic("measure: PendingSnapshot collected twice")
	}
	const tol = 1e-9
	now := ps.sim.Now()
	elapsed := now - ps.begun
	if elapsed < ps.opts.DurationS-tol {
		panic(fmt.Sprintf("measure: snapshot collected after %.2fs of a %.2fs probe window", elapsed, ps.opts.DurationS))
	}
	window := elapsed
	if math.Abs(elapsed-ps.opts.DurationS) <= tol {
		window = ps.opts.DurationS
	}
	ps.finished = true

	type pairAgg struct {
		mbps    float64
		liveSum float64 // summed live seconds across chains
		chains  int
		retries int
		failed  int
	}
	agg := make(map[[2]int]*pairAgg, len(ps.pairs))
	for _, p := range ps.pairs {
		agg[p] = &pairAgg{}
	}
	totalBytes := 0.0
	totalFailed := 0
	for _, ch := range ps.chains {
		a := agg[ch.pair]
		a.chains++
		a.retries += ch.retries
		a.failed += ch.failed
		totalFailed += ch.failed
		// Time-average within the chain (its segments are the same VM
		// pair re-probed, never concurrent) and sum across chains (the
		// pair's distinct VM pairs — association, as in Collect).
		chBytes, chLive := 0.0, 0.0
		for i := range ch.segs {
			seg := &ch.segs[i]
			end := seg.endT
			if end < 0 {
				end = now // survived to collection
			}
			bytes := seg.flow.TransferredBytes() - seg.startBytes
			if !seg.flow.Failed() {
				// Billing convention (see Report.BytesTransferred):
				// fault-terminated probes are excluded, exactly as in
				// legacy Collect — their live-time rate still feeds the
				// pair average below, but not the bill.
				totalBytes += bytes
			}
			if live := end - seg.startT; live > 0 {
				chBytes += bytes
				chLive += live
			}
			if !seg.flow.Failed() && !seg.flow.Done() {
				seg.flow.Stop()
			}
		}
		if chLive > 0 {
			a.mbps += chBytes * 8 / 1e6 / chLive
			a.liveSum += chLive
		}
	}
	ps.chains = nil

	n := ps.sim.NumDCs()
	out := &PartialSnapshot{
		BW:      bwmatrix.New(n),
		Samples: make(map[[2]int]PairSample, len(ps.pairs)),
		Pairs:   ps.pairs,
	}
	// Iterate the ordered pair list so noise draws attach to pairs
	// deterministically, exactly as in Collect.
	for _, p := range ps.pairs {
		a := agg[p]
		s := PairSample{Mbps: a.mbps, Retries: a.retries, FailedProbes: a.failed}
		if a.chains > 0 {
			s.Confidence = a.liveSum / (float64(a.chains) * window)
			if s.Confidence > 1 {
				s.Confidence = 1
			}
		}
		switch {
		case a.liveSum <= 0 || a.mbps < ps.policy.StallMbps:
			s.Outcome = PairUnmeasurable
			s.Confidence = 0
		case a.retries > 0 || a.failed > 0:
			s.Outcome = PairRetried
		default:
			s.Outcome = PairMeasured
		}
		// One noise draw per pair regardless of outcome keeps the
		// stream aligned across fault schedules for a fixed seed.
		v := noisy(s.Mbps, ps.opts)
		if s.Outcome != PairUnmeasurable {
			s.Mbps = v
			out.BW[p[0]][p[1]] = v
		}
		out.Samples[p] = s
	}
	stats := make([]substrate.VMStats, ps.sim.NumVMs())
	for v := 0; v < ps.sim.NumVMs(); v++ {
		stats[v] = ps.sim.VMStats(substrate.VMID(v))
	}
	out.Stats = stats
	out.Bill = Report{
		ElapsedS:         window,
		BytesTransferred: totalBytes,
		VMSeconds:        window * float64(ps.sim.NumVMs()),
		FailedProbes:     totalFailed,
	}
	return out
}
