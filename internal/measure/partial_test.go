package measure

import (
	"reflect"
	"testing"

	"github.com/wanify/wanify/internal/substrate"
)

// collectHardened begins a hardened snapshot on a fresh frozen sim,
// applies the fault schedule, runs out the window and collects. The
// helper rebuilds everything from the seed so determinism tests can
// compare two complete runs.
func collectHardened(n int, seed uint64, sched substrate.FaultSchedule, pol RetryPolicy) *PartialSnapshot {
	sim := frozenSim(n, seed)
	sim.RunFor(5) // settle away from t=0 so fault times are mid-stream
	ps := BeginSnapshotHardened(sim, Options{DurationS: 1, Conns: 1}, pol)
	sched.Apply(sim)
	sim.RunFor(1)
	return ps.CollectPartial()
}

// TestHardenedMatchesLegacyOnHealthyCluster: with no faults the
// hardened snapshot must read exactly what the legacy snapshot reads —
// every pair Measured at confidence 1, coverage 1, same matrix.
func TestHardenedMatchesLegacyOnHealthyCluster(t *testing.T) {
	opts := Options{DurationS: 1, Conns: 1}

	legacySim := frozenSim(4, 7)
	legacy := BeginSnapshot(legacySim, opts)
	legacySim.RunFor(1)
	want, _, wantRep := legacy.Collect()

	hardSim := frozenSim(4, 7)
	hard := BeginSnapshotHardened(hardSim, opts, RetryPolicy{})
	hardSim.RunFor(1)
	got := hard.CollectPartial()

	if !reflect.DeepEqual(got.BW, want) {
		t.Errorf("hardened BW diverges from legacy on a healthy cluster:\n got %v\nwant %v", got.BW, want)
	}
	if cov := got.Coverage(); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	if got.Retries() != 0 || got.Unmeasurable() != 0 {
		t.Errorf("healthy cluster reported retries=%d unmeasurable=%d", got.Retries(), got.Unmeasurable())
	}
	for _, p := range got.Pairs {
		s := got.Samples[p]
		if s.Outcome != PairMeasured || s.Confidence != 1 || s.FailedProbes != 0 {
			t.Errorf("pair %v = %+v, want Measured at confidence 1", p, s)
		}
	}
	if got.Bill.FailedProbes != 0 || got.Bill.BytesTransferred != wantRep.BytesTransferred {
		t.Errorf("bill %+v diverges from legacy %+v", got.Bill, wantRep)
	}
}

// TestCollectPartialUnderFaults exercises the three fault kinds inside
// one probe window: a VM kill (pairs lose their endpoint mid-window),
// a pair reset (probe dies, retry succeeds) and a DC partition (probes
// stall at rate zero without failing). Asserts the outcome tags,
// retry counts and coverage arithmetic.
func TestCollectPartialUnderFaults(t *testing.T) {
	// 5 DCs, 1 VM each: VM i lives in DC i. Window is [5, 6).
	sched := substrate.FaultSchedule{
		{Kind: substrate.FaultKillVM, VM: 3, At: 5.3},
		{Kind: substrate.FaultResetPair, SrcDC: 0, DstDC: 1, At: 5.4},
		{Kind: substrate.FaultPartitionDC, DC: 4, At: 5.0, Until: 10},
	}
	part := collectHardened(5, 3, sched, RetryPolicy{})

	if len(part.Pairs) != 20 {
		t.Fatalf("pairs = %d, want 20", len(part.Pairs))
	}
	for _, p := range part.Pairs {
		s := part.Samples[p]
		switch {
		case p[0] == 4 || p[1] == 4:
			// Partitioned the whole window: stalled at rate 0, tagged
			// unmeasurable rather than read as a zero-bandwidth link.
			if s.Outcome != PairUnmeasurable || s.Confidence != 0 {
				t.Errorf("partitioned pair %v = %+v, want Unmeasurable at confidence 0", p, s)
			}
			if part.BW[p[0]][p[1]] != 0 {
				t.Errorf("partitioned pair %v left %.1f Mbps in BW, want 0", p, part.BW[p[0]][p[1]])
			}
		case p[0] == 3 || p[1] == 3:
			// Endpoint killed at 5.3: the 0.3 s before the kill is a
			// usable (low-confidence) reading; the retry found the VM
			// dead and gave up.
			if s.Outcome != PairRetried {
				t.Errorf("killed-endpoint pair %v = %+v, want Retried", p, s)
			}
			if s.FailedProbes == 0 {
				t.Errorf("killed-endpoint pair %v counted no failed probes", p)
			}
			if s.Confidence <= 0 || s.Confidence > 0.45 {
				t.Errorf("killed-endpoint pair %v confidence %.2f, want ~0.3", p, s.Confidence)
			}
		case p[0] == 0 && p[1] == 1:
			// Reset at 5.4: probe died, backoff 0.1 s, replacement ran
			// out the window. Both segments are live time.
			if s.Outcome != PairRetried || s.Retries == 0 || s.FailedProbes == 0 {
				t.Errorf("reset pair %v = %+v, want Retried with retries", p, s)
			}
			if s.Confidence < 0.8 || s.Confidence > 1 {
				t.Errorf("reset pair %v confidence %.2f, want ~0.9 (0.4+0.5 of 1 s)", p, s.Confidence)
			}
			// The chain time-averages its segments: the reading must be
			// in the vicinity of the healthy pairs, not doubled by
			// summing two segment rates.
			if healthy := part.Samples[[2]int{1, 0}]; s.Mbps > 1.6*healthy.Mbps {
				t.Errorf("reset pair %v reads %.0f Mbps vs healthy reverse %.0f — segment rates summed instead of time-averaged?", p, s.Mbps, healthy.Mbps)
			}
		default:
			if s.Outcome != PairMeasured || s.Confidence != 1 {
				t.Errorf("healthy pair %v = %+v, want Measured at confidence 1", p, s)
			}
		}
	}
	// 8 partitioned pairs out of 20 are unmeasurable.
	if got, want := part.Coverage(), 12.0/20.0; got != want {
		t.Errorf("coverage = %v, want %v", got, want)
	}
	if part.Unmeasurable() != 8 {
		t.Errorf("unmeasurable = %d, want 8", part.Unmeasurable())
	}
	if part.Retries() == 0 {
		t.Error("no retries recorded across kill + reset faults")
	}
	if part.Bill.FailedProbes == 0 {
		t.Error("bill counted no failed probes")
	}
}

// TestCollectPartialDeterministicPerSeed: the hardened collection under
// a fault schedule is a pure function of the seed.
func TestCollectPartialDeterministicPerSeed(t *testing.T) {
	sched := substrate.FaultSchedule{
		{Kind: substrate.FaultKillVM, VM: 2, At: 5.25},
		{Kind: substrate.FaultResetPair, SrcDC: 0, DstDC: 1, At: 5.5},
	}
	a := collectHardened(4, 11, sched, RetryPolicy{})
	b := collectHardened(4, 11, sched, RetryPolicy{})
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Errorf("samples diverge across identical runs:\n a=%v\n b=%v", a.Samples, b.Samples)
	}
	if !reflect.DeepEqual(a.BW, b.BW) {
		t.Error("BW matrices diverge across identical runs")
	}
	if a.Bill != b.Bill {
		t.Errorf("bills diverge: %+v vs %+v", a.Bill, b.Bill)
	}
}

// TestRetryBudgetExhaustion: a pair reset over and over burns the
// retry budget and the chain gives up instead of probing forever.
func TestRetryBudgetExhaustion(t *testing.T) {
	sim := frozenSim(3, 5)
	sim.RunFor(5)
	ps := BeginSnapshotHardened(sim, Options{DurationS: 1, Conns: 1}, RetryPolicy{MaxRetries: 2})
	// Reset the pair at every instant a probe could be running.
	for _, at := range []float64{5.1, 5.25, 5.5, 5.75, 5.9} {
		sim.ResetPair(0, 1, at)
	}
	sim.RunFor(1)
	part := ps.CollectPartial()
	s := part.Samples[[2]int{0, 1}]
	if s.Retries != 2 {
		t.Errorf("retries = %d, want exactly the budget of 2", s.Retries)
	}
	if s.FailedProbes < 3 {
		t.Errorf("failed probes = %d, want original + both retries", s.FailedProbes)
	}
	// Whatever live slivers it saw, the reverse pair stayed healthy.
	if rev := part.Samples[[2]int{1, 0}]; rev.Outcome != PairMeasured {
		t.Errorf("reverse pair = %+v, want untouched", rev)
	}
}

// TestFailedProbesExcludedFromLegacyCollect locks the satellite bugfix:
// a probe a fault froze mid-window contributes nothing to the pair
// average and is counted in Report.FailedProbes instead.
func TestFailedProbesExcludedFromLegacyCollect(t *testing.T) {
	sim := frozenSim(3, 9)
	sim.RunFor(5)
	ps := BeginSnapshot(sim, Options{DurationS: 1, Conns: 1})
	sim.KillVM(2, 5.5)
	sim.RunFor(1)
	bw, _, rep := ps.Collect()
	// Pairs touching DC 2 lost their only probe; the pair average must
	// be zero, not a half-window byte count diluted to a bogus rate.
	for _, p := range [][2]int{{0, 2}, {1, 2}, {2, 0}, {2, 1}} {
		if bw[p[0]][p[1]] != 0 {
			t.Errorf("pair %v = %.2f Mbps from a failed probe, want 0", p, bw[p[0]][p[1]])
		}
	}
	if bw[0][1] <= 0 || bw[1][0] <= 0 {
		t.Error("healthy pairs lost their reading")
	}
	if rep.FailedProbes != 4 {
		t.Errorf("FailedProbes = %d, want 4", rep.FailedProbes)
	}
}

// TestAbandonIdempotentUnderFaults locks the satellite bugfix: Abandon
// after a mid-probe VM kill skips the already-failed flows, tears down
// hardened retry probes too, and a second Abandon is a no-op.
func TestAbandonIdempotentUnderFaults(t *testing.T) {
	t.Run("legacy", func(t *testing.T) {
		sim := frozenSim(3, 13)
		sim.RunFor(5)
		ps := BeginSnapshot(sim, Options{DurationS: 1, Conns: 1})
		sim.KillVM(1, 5.2)
		sim.RunFor(0.5) // mid-window: 4 probes already dead
		ps.Abandon()
		ps.Abandon() // must be a no-op, not a double-Stop
	})
	t.Run("hardened", func(t *testing.T) {
		sim := frozenSim(3, 13)
		sim.RunFor(5)
		ps := BeginSnapshotHardened(sim, Options{DurationS: 1, Conns: 1}, RetryPolicy{})
		sim.ResetPair(0, 1, 5.2) // spawns a retry probe at ~5.3
		sim.RunFor(0.5)
		ps.Abandon()
		ps.Abandon()
		// The abandoned window keeps its timers armed on the substrate;
		// running past them must not resurrect probes or panic.
		sim.RunFor(2)
	})
	t.Run("collect-after-abandon-panics", func(t *testing.T) {
		sim := frozenSim(3, 13)
		ps := BeginSnapshotHardened(sim, Options{DurationS: 1, Conns: 1}, RetryPolicy{})
		sim.RunFor(1)
		ps.Abandon()
		defer func() {
			if recover() == nil {
				t.Error("CollectPartial after Abandon did not panic")
			}
		}()
		ps.CollectPartial()
	})
}

// TestHardenedGuards: the two collection paths refuse each other's
// snapshots.
func TestHardenedGuards(t *testing.T) {
	sim := frozenSim(3, 1)
	ps := BeginSnapshotHardened(sim, Options{DurationS: 1, Conns: 1}, RetryPolicy{})
	sim.RunFor(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Collect on a hardened snapshot did not panic")
			}
		}()
		ps.Collect()
	}()

	sim2 := frozenSim(3, 1)
	legacy := BeginSnapshot(sim2, Options{DurationS: 1, Conns: 1})
	sim2.RunFor(1)
	defer func() {
		if recover() == nil {
			t.Error("CollectPartial on a legacy snapshot did not panic")
		}
	}()
	legacy.CollectPartial()
}
