// Package measure reproduces the paper's bandwidth measurement
// methodology on top of any substrate.Cluster backend:
//
//   - Static-independent probing (§2.2): one DC pair at a time, the way
//     existing GDA systems run iPerf.
//   - Static-simultaneous probing: all DC pairs at once, capturing the
//     contention that actually occurs during shuffle stages.
//   - Snapshots: 1-second all-pairs samples with measurement noise, the
//     cheap input to WANify's prediction model.
//   - Stable runtime measurement: ≥20-second all-pairs averages, the
//     ground truth (and training label).
//   - Monitor: an ifTop-like per-node rate monitor used by local agents.
//
// All probing consumes simulated time and bytes; Report carries what a
// cost model needs to price the measurement, which is how Table 2's
// monitoring-cost comparison is produced.
package measure

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// Options configures a measurement run.
type Options struct {
	// DurationS is how long each probe set runs (seconds). The paper
	// uses 20 s for stable runtime BWs and 1 s for snapshots.
	DurationS float64
	// Conns is the number of parallel connections per probe (1 for all
	// of the paper's measurements; the connection experiments use the
	// optimizer instead).
	Conns int
	// NoiseSD is the relative standard deviation of multiplicative
	// measurement noise applied to reported values. Snapshots are noisy
	// (0.04 by default for SnapshotOptions); long averages are not.
	NoiseSD float64
	// Rng supplies measurement noise; required when NoiseSD > 0.
	Rng *simrand.Source
}

// StableOptions returns the paper's stable-runtime measurement setup
// (20-second all-pairs run, no reporting noise).
func StableOptions() Options { return Options{DurationS: 20, Conns: 1} }

// SnapshotOptions returns the paper's snapshot setup (1-second all-pairs
// run with light measurement noise).
func SnapshotOptions(rng *simrand.Source) Options {
	return Options{DurationS: 1, Conns: 1, NoiseSD: 0.04, Rng: rng}
}

// Report describes the resources a measurement consumed, for pricing.
type Report struct {
	// ElapsedS is the simulated wall time the measurement took.
	ElapsedS float64
	// BytesTransferred is the total probe traffic over the WAN. Every
	// collector — legacy and hardened alike — excludes the bytes of
	// fault-terminated probe flows, so bills are comparable across the
	// two paths for the same fault schedule.
	BytesTransferred float64
	// VMSeconds is the aggregate busy VM time (N VMs × elapsed).
	VMSeconds float64
	// FailedProbes counts probe flows a fault terminated mid-window
	// (endpoint death, pair reset, born-failed against a dead VM).
	// Their bytes are excluded from the pair averages — a flow frozen
	// at its failure instant integrated over the full window would
	// read as a fabricated near-zero bandwidth.
	FailedProbes int
}

// Add returns the element-wise sum of two reports.
func (r Report) Add(o Report) Report {
	return Report{
		ElapsedS:         r.ElapsedS + o.ElapsedS,
		BytesTransferred: r.BytesTransferred + o.BytesTransferred,
		VMSeconds:        r.VMSeconds + o.VMSeconds,
		FailedProbes:     r.FailedProbes + o.FailedProbes,
	}
}

// StaticIndependent measures every ordered DC pair one at a time, the
// way Tetrium/Kimchi/Iridium run iPerf (§2.2: "we measured one DC-pair
// BW at a time"). The returned matrix holds the per-pair averages; the
// diagonal is zero.
func StaticIndependent(sim substrate.Cluster, opts Options) (bwmatrix.Matrix, Report) {
	n := sim.NumDCs()
	out := bwmatrix.New(n)
	var rep Report
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			mbps, r := probePairs(sim, [][2]int{{i, j}}, opts)
			out[i][j] = noisy(mbps[[2]int{i, j}], opts)
			rep = rep.Add(r)
		}
	}
	return out, rep
}

// StaticSimultaneous measures all ordered DC pairs at the same time,
// capturing runtime contention. This is the ground truth the prediction
// model learns to reproduce, and the expensive approach Table 2 prices.
func StaticSimultaneous(sim substrate.Cluster, opts Options) (bwmatrix.Matrix, Report) {
	n := sim.NumDCs()
	pairs := make([][2]int, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	mbps, rep := probePairs(sim, pairs, opts)
	out := bwmatrix.New(n)
	// Iterate the ordered pair list (not the map) so measurement noise
	// attaches to pairs deterministically.
	for _, p := range pairs {
		out[p[0]][p[1]] = noisy(mbps[p], opts)
	}
	return out, rep
}

// Snapshot takes a 1-second (or opts.DurationS) all-pairs sample — the
// S_BWij feature of Table 3 — along with the host metrics the
// prediction model consumes. It is the synchronous composition of the
// asynchronous primitive below: begin, drive the clock, collect.
func Snapshot(sim substrate.Cluster, opts Options) (bwmatrix.Matrix, []substrate.VMStats, Report) {
	ps := BeginSnapshot(sim, opts)
	sim.RunFor(opts.DurationS)
	return ps.Collect()
}

// PendingSnapshot is an in-flight all-pairs snapshot whose probes run
// concurrently with whatever traffic the cluster is already carrying.
// Snapshot drives the clock itself (RunFor) and so cannot be taken from
// inside a substrate timer callback; the runtime re-gauging controller
// (internal/runtime) instead calls BeginSnapshot from its epoch tick,
// lets the simulation advance on its own for Options.DurationS, and
// then Collects — same probes, same noise order, no nested clock.
type PendingSnapshot struct {
	sim      substrate.Cluster
	opts     Options
	pairs    [][2]int
	probes   []pendingProbe
	begun    float64
	finished bool // Collect, CollectPartial or Abandon already ran

	// hardened-path state (BeginSnapshotHardened; see partial.go).
	// Both stay zero on the legacy path so BeginSnapshot + Collect is
	// byte-identical to builds that predate failure-aware gauging.
	hardened bool
	policy   RetryPolicy
	chains   []*probeChain
}

type pendingProbe struct {
	pair  [2]int
	flow  substrate.Flow
	start float64
}

// BeginSnapshot starts the probe set of an all-pairs snapshot and
// returns a handle to collect it once opts.DurationS of substrate time
// has passed. The probe layout, accumulation order and noise draws
// match Snapshot exactly: on an otherwise idle cluster,
// BeginSnapshot + RunFor + Collect is byte-identical to Snapshot.
func BeginSnapshot(sim substrate.Cluster, opts Options) *PendingSnapshot {
	if opts.DurationS <= 0 {
		panic("measure: non-positive probe duration")
	}
	conns := maxIntOne(opts.Conns)
	n := sim.NumDCs()
	ps := &PendingSnapshot{sim: sim, opts: opts, begun: sim.Now()}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ps.pairs = append(ps.pairs, [2]int{i, j})
			}
		}
	}
	for _, p := range ps.pairs {
		for _, src := range sim.VMsOfDC(p[0]) {
			for _, dst := range sim.VMsOfDC(p[1]) {
				f := sim.StartProbe(src, dst, conns)
				ps.probes = append(ps.probes, pendingProbe{pair: p, flow: f, start: f.TransferredBytes()})
			}
		}
	}
	return ps
}

// DurationS returns the configured probe duration.
func (ps *PendingSnapshot) DurationS() float64 { return ps.opts.DurationS }

// Ready reports whether the configured probe duration has elapsed.
func (ps *PendingSnapshot) Ready() bool {
	return ps.sim.Now() >= ps.begun+ps.opts.DurationS
}

// Abandon tears the probes down without producing a sample (the
// snapshot's owner is shutting down mid-window). Teardown is
// idempotent under faults: probes a VM kill or pair reset already
// terminated are skipped rather than re-Stopped, retry probes the
// hardened path started are torn down with the originals, and a
// second Abandon is a no-op.
func (ps *PendingSnapshot) Abandon() {
	if ps.finished {
		return
	}
	ps.finished = true
	for _, pr := range ps.probes {
		if pr.flow.Failed() {
			continue // the fault already tore this probe down
		}
		pr.flow.Stop()
	}
	ps.probes = nil
	for _, ch := range ps.chains {
		for i := range ch.segs {
			if f := ch.segs[i].flow; !f.Failed() && !f.Done() {
				f.Stop()
			}
		}
	}
	ps.chains = nil
}

// Collect tears the probes down and returns the sampled bandwidth
// matrix, the post-probe host metrics and the measurement bill. It
// must be called exactly once, after the probe duration has elapsed.
// Probes keep transferring until Collect stops them, so a collection
// later than the configured window integrates over the real elapsed
// time (rates stay honest); collecting at exactly DurationS matches
// Snapshot byte for byte.
func (ps *PendingSnapshot) Collect() (bwmatrix.Matrix, []substrate.VMStats, Report) {
	if ps.finished {
		panic("measure: PendingSnapshot collected twice")
	}
	if ps.hardened {
		panic("measure: hardened snapshot must be collected with CollectPartial")
	}
	// Clock subtraction can land an ulp either side of the configured
	// duration; treat anything within tol as on-time and use the
	// configured duration verbatim so the division is bit-identical to
	// the synchronous path.
	const tol = 1e-9
	elapsed := ps.sim.Now() - ps.begun
	if elapsed < ps.opts.DurationS-tol {
		panic(fmt.Sprintf("measure: snapshot collected after %.2fs of a %.2fs probe window", elapsed, ps.opts.DurationS))
	}
	window := elapsed
	if math.Abs(elapsed-ps.opts.DurationS) <= tol {
		window = ps.opts.DurationS
	}
	byPair := make(map[[2]int]float64, len(ps.pairs))
	totalBytes := 0.0
	failed := 0
	for _, pr := range ps.probes {
		if pr.flow.Failed() {
			// A fault terminated this probe mid-window: its frozen byte
			// count integrated over the full window would fabricate a
			// near-zero reading, so it contributes nothing to the pair
			// average (and needs no Stop — the fault tore it down).
			failed++
			continue
		}
		bytes := pr.flow.TransferredBytes() - pr.start
		totalBytes += bytes
		byPair[pr.pair] += bytes * 8 / 1e6 / window // Mbps
		pr.flow.Stop()
	}
	ps.probes = nil
	ps.finished = true
	n := ps.sim.NumDCs()
	out := bwmatrix.New(n)
	// Iterate the ordered pair list (not the map) so measurement noise
	// attaches to pairs deterministically, as in StaticSimultaneous.
	for _, p := range ps.pairs {
		out[p[0]][p[1]] = noisy(byPair[p], ps.opts)
	}
	stats := make([]substrate.VMStats, ps.sim.NumVMs())
	for v := 0; v < ps.sim.NumVMs(); v++ {
		stats[v] = ps.sim.VMStats(substrate.VMID(v))
	}
	rep := Report{
		ElapsedS:         window,
		BytesTransferred: totalBytes,
		VMSeconds:        window * float64(ps.sim.NumVMs()),
		FailedProbes:     failed,
	}
	return out, stats, rep
}

// SnapshotByVM takes a short all-pairs sample at VM granularity: one
// probe per ordered VM pair crossing DCs. Multi-VM deployments use this
// for the association path of §3.3.3 — per-VM-pair predictions are
// summed into a DC-level matrix rather than predicting on out-of-range
// aggregate bandwidths. The returned matrix is NumVMs×NumVMs.
func SnapshotByVM(sim substrate.Cluster, opts Options) (bwmatrix.Matrix, []substrate.VMStats, Report) {
	if opts.DurationS <= 0 {
		panic("measure: non-positive probe duration")
	}
	nv := sim.NumVMs()
	type probe struct {
		src, dst int
		flow     substrate.Flow
		start    float64
	}
	var probes []probe
	for s := 0; s < nv; s++ {
		for d := 0; d < nv; d++ {
			if s == d || sim.DCOf(substrate.VMID(s)) == sim.DCOf(substrate.VMID(d)) {
				continue
			}
			f := sim.StartProbe(substrate.VMID(s), substrate.VMID(d), maxIntOne(opts.Conns))
			probes = append(probes, probe{src: s, dst: d, flow: f, start: f.TransferredBytes()})
		}
	}
	sim.RunFor(opts.DurationS)
	out := bwmatrix.New(nv)
	totalBytes := 0.0
	failed := 0
	for _, pr := range probes {
		if pr.flow.Failed() {
			failed++
			continue // see Collect: a fault-frozen probe poisons the average
		}
		bytes := pr.flow.TransferredBytes() - pr.start
		totalBytes += bytes
		out[pr.src][pr.dst] = noisy(bytes*8/1e6/opts.DurationS, opts)
		pr.flow.Stop()
	}
	stats := make([]substrate.VMStats, nv)
	for v := 0; v < nv; v++ {
		stats[v] = sim.VMStats(substrate.VMID(v))
	}
	rep := Report{
		ElapsedS:         opts.DurationS,
		BytesTransferred: totalBytes,
		VMSeconds:        opts.DurationS * float64(nv),
		FailedProbes:     failed,
	}
	return out, stats, rep
}

func maxIntOne(c int) int {
	if c < 1 {
		return 1
	}
	return c
}

// probePairs starts one probe per ordered DC pair (between all VM pairs
// of the two DCs, so multi-VM DCs report their combined bandwidth — the
// paper's "association", §3.3.3), runs for the configured duration, and
// returns byte-integrated average rates per pair.
func probePairs(sim substrate.Cluster, pairs [][2]int, opts Options) (map[[2]int]float64, Report) {
	if opts.DurationS <= 0 {
		panic("measure: non-positive probe duration")
	}
	conns := opts.Conns
	if conns < 1 {
		conns = 1
	}
	type probe struct {
		pair  [2]int
		flow  substrate.Flow
		start float64
	}
	var probes []probe
	for _, p := range pairs {
		for _, src := range sim.VMsOfDC(p[0]) {
			for _, dst := range sim.VMsOfDC(p[1]) {
				f := sim.StartProbe(src, dst, conns)
				probes = append(probes, probe{pair: p, flow: f, start: f.TransferredBytes()})
			}
		}
	}
	sim.RunFor(opts.DurationS)
	out := make(map[[2]int]float64, len(pairs))
	totalBytes := 0.0
	failed := 0
	for _, pr := range probes {
		if pr.flow.Failed() {
			failed++
			continue // see Collect: a fault-frozen probe poisons the average
		}
		bytes := pr.flow.TransferredBytes() - pr.start
		totalBytes += bytes
		out[pr.pair] += bytes * 8 / 1e6 / opts.DurationS // Mbps
		pr.flow.Stop()
	}
	rep := Report{
		ElapsedS:         opts.DurationS,
		BytesTransferred: totalBytes,
		VMSeconds:        opts.DurationS * float64(sim.NumVMs()),
		FailedProbes:     failed,
	}
	return out, rep
}

func noisy(v float64, opts Options) float64 {
	if opts.NoiseSD <= 0 {
		return v
	}
	if opts.Rng == nil {
		panic("measure: NoiseSD set without Rng")
	}
	f := 1 + opts.Rng.Norm(0, opts.NoiseSD)
	if f < 0.05 {
		f = 0.05
	}
	return v * f
}

// Monitor is an ifTop-like node-level rate monitor. It observes the
// aggregate rate from one source DC to every destination DC by
// periodically sampling the simulator, and reports windowed averages.
// WANify's WAN Monitor sub-module (§4.1.3) is built on this.
type Monitor struct {
	sim    substrate.Cluster
	srcDC  int
	window int // samples per window

	samples [][]float64 // ring of per-DC rate samples
	next    int
	filled  int
	cancel  func()
}

// NewMonitor starts monitoring the given source DC, sampling every
// sampleEveryS seconds with a window of `window` samples.
func NewMonitor(sim substrate.Cluster, srcDC int, sampleEveryS float64, window int) *Monitor {
	if window < 1 {
		window = 1
	}
	m := &Monitor{sim: sim, srcDC: srcDC, window: window}
	m.samples = make([][]float64, window)
	m.cancel = sim.Every(sampleEveryS, func(now float64) {
		row := make([]float64, sim.NumDCs())
		for d := 0; d < sim.NumDCs(); d++ {
			if d != srcDC {
				row[d] = sim.PairRate(srcDC, d)
			}
		}
		m.samples[m.next] = row
		m.next = (m.next + 1) % m.window
		if m.filled < m.window {
			m.filled++
		}
	})
	return m
}

// Rates returns the windowed average rate (Mbps) from the monitored DC
// to each destination DC. Before any sample exists it returns zeros.
func (m *Monitor) Rates() []float64 {
	n := m.sim.NumDCs()
	out := make([]float64, n)
	if m.filled == 0 {
		return out
	}
	for i := 0; i < m.filled; i++ {
		for d, v := range m.samples[i] {
			out[d] += v
		}
	}
	for d := range out {
		out[d] /= float64(m.filled)
	}
	return out
}

// Close stops the monitor's sampling.
func (m *Monitor) Close() { m.cancel() }

// String describes the monitor.
func (m *Monitor) String() string {
	return fmt.Sprintf("measure.Monitor(srcDC=%d, window=%d)", m.srcDC, m.window)
}
