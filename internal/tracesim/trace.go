// Package tracesim is the trace-replay WAN backend: a deterministic
// substrate.Cluster implementation that drives per-DC-pair
// per-connection bandwidth from a recorded timeseries instead of the
// synthetic Ornstein–Uhlenbeck weather of internal/netsim.
//
// Replaying measured traces is how cross-layer GDA systems (Terra) and
// cloud inter-region bandwidth studies evaluate against real WAN
// behaviour; tracesim lets every WANify experiment driver run against
// such recordings (`-backend trace:<file>`) without forking the
// simulator. Two traces ship embedded: a synthetic-diurnal 8-region
// day (Diurnal8) and a cloud-measurement-shaped 4-region recording
// (Cloud4).
//
// A trace holds, for each sample time, the single-connection
// achievable throughput for each ordered DC pair — the same quantity
// netsim derives from geography (Sim.PerConnCapMbps). Everything else
// (contention, congestion knees, host factors, slow start, tc limits)
// still comes from the shared fluid model: tracesim wraps a frozen
// netsim.Sim and feeds the recorded caps into it at each sample
// boundary, so the incremental water-filling allocator, flow
// lifecycle and timer wheel are reused unchanged. See DESIGN.md §1b
// for the file format.
package tracesim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/wanify/wanify/internal/geo"
)

// Sample is one instant of a trace: the per-connection achievable
// throughput (Mbps) for every ordered DC pair. NaN entries mean "no
// override": the pair keeps its geography-derived cap.
type Sample struct {
	// T is the sample time in seconds from trace start.
	T float64
	// PerConnMbps is indexed [srcDC][dstDC]; the diagonal is ignored.
	PerConnMbps [][]float64
}

// Trace is a recorded per-DC-pair bandwidth timeseries.
type Trace struct {
	// Name identifies the trace in reports and scenario ids.
	Name string
	// Regions are the data centers the trace covers, in DC order.
	Regions []geo.Region
	// Samples are the recorded instants, in strictly ascending time.
	Samples []Sample
	// Loop replays the trace cyclically with the given period; when
	// false, the last sample's values hold forever.
	Loop bool
	// PeriodS is the loop period in seconds (must exceed the last
	// sample time). Ignored unless Loop is set.
	PeriodS float64
}

// N returns the number of DCs the trace covers.
func (tr *Trace) N() int { return len(tr.Regions) }

// DurationS returns the time of the last sample.
func (tr *Trace) DurationS() float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1].T
}

// Subset returns a view of the trace restricted to the first n regions
// (the same convention as geo.TestbedSubset). Sample matrices are
// re-sliced, not copied.
func (tr *Trace) Subset(n int) (*Trace, error) {
	if n < 1 || n > tr.N() {
		return nil, fmt.Errorf("tracesim: subset size %d out of range [1, %d] for trace %q", n, tr.N(), tr.Name)
	}
	if n == tr.N() {
		return tr, nil
	}
	out := &Trace{
		Name:    fmt.Sprintf("%s[:%d]", tr.Name, n),
		Regions: tr.Regions[:n],
		Loop:    tr.Loop,
		PeriodS: tr.PeriodS,
	}
	for _, s := range tr.Samples {
		m := make([][]float64, n)
		for i := 0; i < n; i++ {
			m[i] = s.PerConnMbps[i][:n]
		}
		out.Samples = append(out.Samples, Sample{T: s.T, PerConnMbps: m})
	}
	return out, nil
}

// validate checks structural invariants shared by both file formats.
func (tr *Trace) validate() error {
	if tr.N() < 2 {
		return fmt.Errorf("tracesim: trace %q has %d regions, need at least 2", tr.Name, tr.N())
	}
	if len(tr.Samples) == 0 {
		return fmt.Errorf("tracesim: trace %q has no samples", tr.Name)
	}
	prev := math.Inf(-1)
	for k, s := range tr.Samples {
		if s.T < 0 {
			return fmt.Errorf("tracesim: trace %q sample %d has negative time %v", tr.Name, k, s.T)
		}
		if s.T <= prev {
			return fmt.Errorf("tracesim: trace %q sample times not strictly ascending at index %d", tr.Name, k)
		}
		prev = s.T
		if len(s.PerConnMbps) != tr.N() {
			return fmt.Errorf("tracesim: trace %q sample %d has %d rows for %d regions", tr.Name, k, len(s.PerConnMbps), tr.N())
		}
		for i, row := range s.PerConnMbps {
			if len(row) != tr.N() {
				return fmt.Errorf("tracesim: trace %q sample %d row %d has %d columns for %d regions", tr.Name, k, i, len(row), tr.N())
			}
		}
	}
	if tr.Loop && tr.PeriodS <= tr.DurationS() {
		return fmt.Errorf("tracesim: trace %q loop period %.0fs must exceed last sample time %.0fs", tr.Name, tr.PeriodS, tr.DurationS())
	}
	return nil
}

// regionByName resolves a region name or provider code against the
// canonical testbed geography (RTTs and distances still come from
// coordinates, which traces do not carry).
func regionByName(name string) (geo.Region, error) {
	for _, r := range geo.Testbed() {
		if r.Name == name || r.Code == name {
			return r, nil
		}
	}
	return geo.Region{}, fmt.Errorf("tracesim: unknown region %q (traces use the canonical testbed names or codes)", name)
}

// --- JSON format ---

// jsonTrace is the on-disk JSON schema (DESIGN.md §1b): region names,
// loop settings and full per-sample matrices. Negative matrix entries
// mean "no override" (keep the geography-derived cap).
type jsonTrace struct {
	Name    string       `json:"name"`
	Regions []string     `json:"regions"`
	Loop    bool         `json:"loop,omitempty"`
	PeriodS float64      `json:"period_s,omitempty"`
	Samples []jsonSample `json:"samples"`
}

type jsonSample struct {
	T           float64     `json:"t"`
	PerConnMbps [][]float64 `json:"per_conn_mbps"`
}

// ParseJSON reads a JSON trace.
func ParseJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("tracesim: decode JSON trace: %w", err)
	}
	tr := &Trace{Name: jt.Name, Loop: jt.Loop, PeriodS: jt.PeriodS}
	for _, name := range jt.Regions {
		reg, err := regionByName(name)
		if err != nil {
			return nil, err
		}
		tr.Regions = append(tr.Regions, reg)
	}
	for _, s := range jt.Samples {
		m := make([][]float64, len(s.PerConnMbps))
		for i, row := range s.PerConnMbps {
			m[i] = make([]float64, len(row))
			for j, v := range row {
				if v < 0 {
					v = math.NaN() // no override
				}
				m[i][j] = v
			}
		}
		tr.Samples = append(tr.Samples, Sample{T: s.T, PerConnMbps: m})
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// --- CSV format ---

// ParseCSV reads a long-form CSV trace: a `time_s,src,dst,per_conn_mbps`
// header followed by one row per (time, pair) observation — the shape
// cloud bandwidth collectors (iperf cron jobs) naturally emit. The
// value column is the single-connection achievable throughput the
// replay installs as the pair's cap. A `rate_mbps` header (the long
// form trace.Recorder writes) is accepted too: a recording of
// single-connection probes measures exactly that achievable rate, so
// record-then-replay round-trips; recordings of multi-connection or
// contended runs replay as a (pessimistic) per-connection cap. DC
// order is the order of first appearance of a region name; pairs
// omitted at a timestamp hold their previous value (pairs never
// mentioned keep the geography cap).
func ParseCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tracesim: read CSV trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("tracesim: CSV trace %q is empty", name)
	}
	want := []string{"time_s", "src", "dst", "per_conn_mbps"}
	for i, col := range want {
		got := ""
		if i < len(rows[0]) {
			got = strings.TrimSpace(rows[0][i])
		}
		if got == col || (i == 3 && got == "rate_mbps") {
			continue
		}
		return nil, fmt.Errorf("tracesim: CSV trace %q: header %v, want %v (or rate_mbps as written by trace.Recorder)", name, rows[0], want)
	}

	// First pass: region order by first appearance.
	index := map[string]int{}
	tr := &Trace{Name: name}
	for _, row := range rows[1:] {
		for _, cell := range row[1:3] {
			if _, ok := index[cell]; !ok {
				reg, err := regionByName(cell)
				if err != nil {
					return nil, err
				}
				index[cell] = len(tr.Regions)
				tr.Regions = append(tr.Regions, reg)
			}
		}
	}
	n := len(tr.Regions)

	// Second pass: group rows into samples, carrying values forward.
	type obs struct {
		t        float64
		src, dst int
		mbps     float64
	}
	var all []obs
	for k, row := range rows[1:] {
		t, err1 := strconv.ParseFloat(strings.TrimSpace(row[0]), 64)
		v, err2 := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("tracesim: CSV trace %q row %d: bad numbers %q/%q", name, k+2, row[0], row[3])
		}
		all = append(all, obs{t: t, src: index[row[1]], dst: index[row[2]], mbps: v})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })

	current := make([][]float64, n)
	for i := range current {
		current[i] = make([]float64, n)
		for j := range current[i] {
			current[i][j] = math.NaN()
		}
	}
	flush := func(t float64) {
		m := make([][]float64, n)
		for i := range m {
			m[i] = append([]float64(nil), current[i]...)
		}
		tr.Samples = append(tr.Samples, Sample{T: t, PerConnMbps: m})
	}
	for k, o := range all {
		if k > 0 && o.t != all[k-1].t {
			flush(all[k-1].t)
		}
		current[o.src][o.dst] = o.mbps
	}
	flush(all[len(all)-1].t)
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Load reads a trace file, dispatching on the extension (.json or
// .csv). The trace name is the file's base name without extension.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracesim: %w", err)
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	switch strings.ToLower(filepath.Ext(base)) {
	case ".json":
		return ParseJSON(f)
	case ".csv":
		return ParseCSV(f, name)
	default:
		return nil, fmt.Errorf("tracesim: unsupported trace extension %q (want .json or .csv)", filepath.Ext(base))
	}
}
