// Command gen regenerates the bundled traces in ../testdata. The files
// are checked in (golden tests depend on their exact bytes); rerun this
// only when deliberately changing the bundled scenarios:
//
//	go run ./internal/tracesim/gen
//
// Two traces are produced:
//
//   - diurnal8.json: a synthetic diurnal day over the full 8-region
//     testbed. Each pair's single-connection cap swings ±28% around its
//     geography-derived base on a 24 h cycle, phased by the pair's mean
//     longitude (links peak during their local night, when business
//     traffic is low). Samples every 10 minutes, looped.
//   - cloud4.csv: a cloud-measurement-shaped recording over 4 regions,
//     in the long form a cron'd iperf collector emits: minutely rows,
//     plateaus with small multiplicative jitter, and one transient
//     congestion episode (US East -> EU West drops to ~45% for five
//     minutes), the shape seen in public inter-region datasets.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

func main() {
	if err := os.MkdirAll("internal/tracesim/testdata", 0o755); err != nil {
		log.Fatal(err)
	}
	writeDiurnal8("internal/tracesim/testdata/diurnal8.json")
	writeCloud4("internal/tracesim/testdata/cloud4.csv")
}

// baseCaps returns the geography-derived per-connection caps for the
// given regions (the same calibration netsim uses).
func baseCaps(regions []geo.Region) [][]float64 {
	sim := netsim.NewSim(netsim.Config{
		Regions: regions,
		VMs:     uniformVMs(len(regions)),
		Frozen:  true,
	})
	n := len(regions)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				out[i][j] = sim.PerConnCapMbps(i, j)
			}
		}
	}
	return out
}

func uniformVMs(n int) [][]substrate.VMSpec {
	vms := make([][]substrate.VMSpec, n)
	for i := range vms {
		vms[i] = []substrate.VMSpec{substrate.T2Medium}
	}
	return vms
}

func writeDiurnal8(path string) {
	regions := geo.Testbed()
	base := baseCaps(regions)
	n := len(regions)
	const (
		day   = 86400.0
		step  = 600.0
		depth = 0.28
	)
	var b strings.Builder
	b.WriteString("{\n  \"name\": \"diurnal8\",\n  \"regions\": [")
	for i, r := range regions {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", r.Name)
	}
	fmt.Fprintf(&b, "],\n  \"loop\": true,\n  \"period_s\": %d,\n  \"samples\": [\n", int(day))
	for t := 0.0; t < day; t += step {
		fmt.Fprintf(&b, "    {\"t\": %d, \"per_conn_mbps\": [", int(t))
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("[")
			for j := 0; j < n; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				if i == j {
					b.WriteString("0")
					continue
				}
				// Local solar time at the pair's mean longitude; links
				// peak at local 03:00, trough at local 15:00.
				meanLon := (regions[i].Lon + regions[j].Lon) / 2
				local := t/day + meanLon/360
				f := 1 + depth*math.Cos(2*math.Pi*(local-3.0/24))
				fmt.Fprintf(&b, "%.1f", base[i][j]*f)
			}
			b.WriteString("]")
		}
		if t+step < day {
			b.WriteString("]},\n")
		} else {
			b.WriteString("]}\n")
		}
	}
	b.WriteString("  ]\n}\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, b.Len())
}

func writeCloud4(path string) {
	regions := []geo.Region{geo.USEast, geo.USWest, geo.EUWest, geo.APSE}
	base := baseCaps(regions)
	rng := simrand.Derive(4, "cloud4-trace")
	var b strings.Builder
	b.WriteString("# cloud-measurement-shaped trace: minutely iperf-style samples,\n")
	b.WriteString("# 30 min, with a congestion episode on US East -> EU West at 600-900 s.\n")
	b.WriteString("time_s,src,dst,per_conn_mbps\n")
	for t := 0.0; t <= 1800; t += 60 {
		for i := range regions {
			for j := range regions {
				if i == j {
					continue
				}
				v := base[i][j] * (1 + rng.Norm(0, 0.05))
				if i == 0 && j == 2 && t >= 600 && t < 900 {
					v *= 0.45 // transient congestion episode
				}
				fmt.Fprintf(&b, "%d,%s,%s,%.1f\n", int(t), regions[i].Name, regions[j].Name, v)
			}
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, b.Len())
}
