package tracesim

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/substrate"
)

// Config configures a trace-replay cluster.
type Config struct {
	// Trace is the recorded timeseries to replay (required).
	Trace *Trace
	// VMs lists the virtual machines per DC; nil deploys one Spec VM
	// in every trace region (the paper's default 1-worker-per-DC).
	VMs [][]substrate.VMSpec
	// Spec is the uniform VM shape used when VMs is nil (default
	// substrate.T2Medium).
	Spec substrate.VMSpec
	// Seed drives the residual stochastic machinery (slow-start
	// scheduling noise is nil here, but snapshot callers derive their
	// noise streams from the cluster seed, as with netsim).
	Seed uint64
}

// Sim replays a bandwidth trace as a substrate.Cluster.
//
// It wraps a frozen netsim.Sim — no Ornstein–Uhlenbeck weather, no
// degradation episodes — and installs the trace's per-connection caps
// at every sample boundary via SetPerConnCap. The incremental
// water-filling allocator, flow lifecycle, timer heap and host-metric
// model are shared with netsim verbatim; the only difference between
// the two backends is where link quality comes from. Replays are
// bit-deterministic: the same trace, topology and workload reproduce
// identical rates.
type Sim struct {
	*netsim.Sim
	trace *Trace

	next    int     // index of the next sample to apply
	offsetS float64 // accumulated loop offset
}

// Sim implements the substrate contract (by embedding netsim.Sim and
// adding the replay schedule).
var _ substrate.Cluster = (*Sim)(nil)

// New builds a trace-replay cluster and applies the trace's first
// sample (samples at t=0 take effect immediately; a trace whose first
// sample is later starts on geography-derived caps until then).
func New(cfg Config) (*Sim, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("tracesim: config needs a trace")
	}
	if err := cfg.Trace.validate(); err != nil {
		return nil, err
	}
	spec := cfg.Spec
	if spec.Type == "" {
		spec = substrate.T2Medium
	}
	vms := cfg.VMs
	if vms == nil {
		vms = make([][]substrate.VMSpec, cfg.Trace.N())
		for i := range vms {
			vms[i] = []substrate.VMSpec{spec}
		}
	}
	if len(vms) != cfg.Trace.N() {
		return nil, fmt.Errorf("tracesim: VMs for %d DCs but trace %q has %d regions", len(vms), cfg.Trace.Name, cfg.Trace.N())
	}
	s := &Sim{
		Sim: netsim.NewSim(netsim.Config{
			Regions: cfg.Trace.Regions,
			VMs:     vms,
			Seed:    cfg.Seed,
			Frozen:  true, // the trace is the weather
		}),
		trace: cfg.Trace,
	}
	if s.trace.Samples[0].T == 0 {
		s.apply(0)
		s.next = 1
	}
	s.scheduleNext()
	return s, nil
}

// Trace returns the replayed trace.
func (s *Sim) Trace() *Trace { return s.trace }

// apply installs sample k's per-connection caps.
func (s *Sim) apply(k int) {
	m := s.trace.Samples[k].PerConnMbps
	for i := range m {
		for j, v := range m[i] {
			if i != j && !math.IsNaN(v) {
				s.SetPerConnCap(i, j, v)
			}
		}
	}
}

// scheduleNext arms a timer for the next sample boundary. Exactly one
// replay timer is pending at any moment; when the trace is exhausted
// and does not loop, the last values hold and no timer remains.
func (s *Sim) scheduleNext() {
	if s.next >= len(s.trace.Samples) {
		if !s.trace.Loop {
			return
		}
		s.next = 0
		s.offsetS += s.trace.PeriodS
	}
	at := s.offsetS + s.trace.Samples[s.next].T
	s.After(at-s.Now(), func(float64) {
		s.apply(s.next)
		s.next++
		s.scheduleNext()
	})
}
