package tracesim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/trace"
)

// tinyTrace builds a 3-region trace with hand-picked caps.
func tinyTrace(loop bool) *Trace {
	mk := func(v float64) [][]float64 {
		m := make([][]float64, 3)
		for i := range m {
			m[i] = make([]float64, 3)
			for j := range m[i] {
				if i != j {
					m[i][j] = v
				}
			}
		}
		return m
	}
	return &Trace{
		Name:    "tiny",
		Regions: geo.TestbedSubset(3),
		Samples: []Sample{
			{T: 0, PerConnMbps: mk(400)},
			{T: 10, PerConnMbps: mk(250)},
			{T: 20, PerConnMbps: mk(700)},
		},
		Loop:    loop,
		PeriodS: 30,
	}
}

// TestReplayAppliesSamples checks caps step exactly at sample
// boundaries and hold after a non-looping trace ends.
func TestReplayAppliesSamples(t *testing.T) {
	s, err := New(Config{Trace: tinyTrace(false), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PerConnCapMbps(0, 1); got != 400 {
		t.Fatalf("cap at t=0: %v, want 400 (first sample applies at construction)", got)
	}
	s.RunFor(15)
	if got := s.PerConnCapMbps(0, 1); got != 250 {
		t.Errorf("cap at t=15: %v, want 250", got)
	}
	s.RunFor(10)
	if got := s.PerConnCapMbps(2, 0); got != 700 {
		t.Errorf("cap at t=25: %v, want 700", got)
	}
	s.RunFor(1000)
	if got := s.PerConnCapMbps(1, 2); got != 700 {
		t.Errorf("cap long after a non-looping trace: %v, want last sample's 700", got)
	}
}

// TestReplayLoops checks cyclic replay: after the period, the first
// sample's values return.
func TestReplayLoops(t *testing.T) {
	s, err := New(Config{Trace: tinyTrace(true), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(25) // inside cycle 0, on sample 2
	if got := s.PerConnCapMbps(0, 1); got != 700 {
		t.Fatalf("cap at t=25: %v, want 700", got)
	}
	s.RunFor(10) // t=35 = period 30 + 5: cycle 1, sample 0
	if got := s.PerConnCapMbps(0, 1); got != 400 {
		t.Errorf("cap at t=35: %v, want 400 (loop wrapped)", got)
	}
	s.RunFor(37) // t=72: cycle 2 (starts at 60), local t=12, sample 1
	if got := s.PerConnCapMbps(0, 1); got != 250 {
		t.Errorf("cap at t=72: %v, want 250 (second wrap)", got)
	}
}

// TestReplayDeterminism mirrors netsim's repeated-allocate guarantee:
// two replays of the same trace under the same churn workload produce
// bit-identical rates at every checkpoint.
func TestReplayDeterminism(t *testing.T) {
	run := func() []float64 {
		s, err := New(Config{Trace: Diurnal8(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := simrand.Derive(7, "churn")
		var live []substrate.Flow
		var rates []float64
		for step := 0; step < 40; step++ {
			if len(live) < 12 || rng.Bool(0.6) {
				src := rng.IntN(s.NumDCs())
				dst := rng.IntN(s.NumDCs())
				if src != dst {
					conns := 1 + rng.IntN(6)
					if rng.Bool(0.3) {
						live = append(live, s.StartProbe(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), conns))
					} else {
						live = append(live, s.StartFlow(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), conns,
							float64(rng.IntN(300)+1)*1e6, nil))
					}
				}
			} else {
				k := rng.IntN(len(live))
				live[k].Stop()
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			s.RunFor(37.5) // crosses the 600 s sample boundaries mid-run
			for _, f := range live {
				if !f.Done() {
					rates = append(rates, f.Rate())
				}
			}
		}
		return rates
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rate %d differs across identical replays: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestReplayConservation mirrors alloc_invariants: under the replayed
// caps, per-flow rates respect the trace's per-connection envelope and
// per-VM egress/ingress stay within spec.
func TestReplayConservation(t *testing.T) {
	s, err := New(Config{Trace: Cloud4(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumDCs()
	var flows []substrate.Flow
	conns := func(i, j int) int { return (i*n+j)%5 + 1 }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				flows = append(flows, s.StartProbe(s.FirstVMOfDC(i), s.FirstVMOfDC(j), conns(i, j)))
			}
		}
	}
	const slack = 1 + 1e-9
	for _, stop := range []float64{100, 700, 1200} { // spans the 600-900 s episode
		s.RunUntil(stop)
		egress := make([]float64, s.NumVMs())
		ingress := make([]float64, s.NumVMs())
		for _, f := range flows {
			r := f.Rate()
			if r < 0 {
				t.Fatalf("negative rate %v", r)
			}
			i, j := s.DCOf(f.Src()), s.DCOf(f.Dst())
			if env := float64(f.Conns()) * s.PerConnCapMbps(i, j); r > env*slack {
				t.Fatalf("t=%.0f: flow %d->%d rate %.1f exceeds trace envelope %.1f", stop, i, j, r, env)
			}
			egress[f.Src()] += r
			ingress[f.Dst()] += r
		}
		for v := 0; v < s.NumVMs(); v++ {
			spec := s.Spec(substrate.VMID(v))
			if egress[v] > spec.EgressMbps*slack {
				t.Fatalf("t=%.0f: VM %d egress %.1f exceeds %.1f", stop, v, egress[v], spec.EgressMbps)
			}
			if ingress[v] > spec.IngressMbps*slack {
				t.Fatalf("t=%.0f: VM %d ingress %.1f exceeds %.1f", stop, v, ingress[v], spec.IngressMbps)
			}
		}
	}
}

// TestReplayEpisodeBites checks the Cloud4 congestion episode actually
// reaches flows: the US East -> EU West probe slows during 600-900 s.
func TestReplayEpisodeBites(t *testing.T) {
	s, err := New(Config{Trace: Cloud4(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := s.StartProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(2), 1) // US East -> EU West
	s.RunUntil(500)
	before := f.Rate()
	s.RunUntil(750)
	during := f.Rate()
	s.RunUntil(1100)
	after := f.Rate()
	if during >= before*0.7 {
		t.Errorf("episode rate %.0f not clearly below pre-episode %.0f", during, before)
	}
	if after <= during*1.3 {
		t.Errorf("post-episode rate %.0f did not recover from %.0f", after, during)
	}
	f.Stop()
}

// TestReplayFaults checks the fault model holds on the trace backend:
// a partition keeps the pair at zero rate ACROSS sample boundaries
// (the replay's SetPerConnCap updates must not resurrect a severed
// pair), flows stall rather than fail, and a VM kill fails its flows
// exactly as on netsim.
func TestReplayFaults(t *testing.T) {
	s, err := New(Config{Trace: tinyTrace(true), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	stalled := s.StartFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2, 50e9, nil)
	s.PartitionDC(1, 5, 95)
	s.RunFor(30) // crosses the t=10 and t=20 sample boundaries mid-partition
	if got := stalled.Rate(); got != 0 {
		t.Fatalf("rate %.1f during partition after sample boundaries, want 0", got)
	}
	if stalled.Done() || stalled.Failed() {
		t.Fatal("partition failed the flow on the trace backend")
	}
	s.RunFor(70) // partition heals at t=95
	if stalled.Rate() <= 0 {
		t.Error("flow did not resume after the partition healed")
	}

	failed := 0
	victim := s.StartFlow(s.FirstVMOfDC(2), s.FirstVMOfDC(0), 1, 50e9, nil)
	victim.OnFail(func() { failed++ })
	s.KillVM(s.FirstVMOfDC(2), s.Now()+5)
	s.RunFor(10)
	if !victim.Failed() || failed != 1 {
		t.Errorf("victim failed=%v onFail=%d after trace-backend kill", victim.Failed(), failed)
	}
	if s.VMAlive(s.FirstVMOfDC(2)) {
		t.Error("killed VM reported alive")
	}
}

// TestBundledTraces checks both embedded traces parse and have the
// documented shapes.
func TestBundledTraces(t *testing.T) {
	d := Diurnal8()
	if d.N() != 8 || !d.Loop || d.PeriodS != 86400 {
		t.Errorf("diurnal8 shape: n=%d loop=%v period=%v", d.N(), d.Loop, d.PeriodS)
	}
	if len(d.Samples) != 144 {
		t.Errorf("diurnal8 has %d samples, want 144 (10-minute cadence)", len(d.Samples))
	}
	c := Cloud4()
	if c.N() != 4 || c.Loop {
		t.Errorf("cloud4 shape: n=%d loop=%v", c.N(), c.Loop)
	}
	if c.DurationS() != 1800 {
		t.Errorf("cloud4 duration %v, want 1800", c.DurationS())
	}
	if _, err := Bundled("nope"); err == nil {
		t.Error("unknown bundled trace accepted")
	}
}

// TestSubset checks region subsetting for drivers that sweep cluster
// sizes.
func TestSubset(t *testing.T) {
	d := Diurnal8()
	s, err := d.Subset(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || len(s.Samples) != len(d.Samples) {
		t.Fatalf("subset shape: n=%d samples=%d", s.N(), len(s.Samples))
	}
	if s.Samples[3].PerConnMbps[1][2] != d.Samples[3].PerConnMbps[1][2] {
		t.Error("subset values diverge from parent")
	}
	if _, err := d.Subset(9); err == nil {
		t.Error("oversized subset accepted")
	}
	if full, _ := d.Subset(8); full != d {
		t.Error("full-size subset should return the trace itself")
	}
}

// TestParseCSVRoundTrip checks the long-form CSV reader: region order
// by first appearance, carry-forward for omitted pairs.
func TestParseCSVRoundTrip(t *testing.T) {
	csv := `time_s,src,dst,per_conn_mbps
0,US East,US West,1000
0,US West,US East,900
60,US East,US West,500
`
	tr, err := ParseCSV(strings.NewReader(csv), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 2 || tr.Regions[0].Name != "US East" {
		t.Fatalf("regions: %v", tr.Regions)
	}
	if len(tr.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(tr.Samples))
	}
	if tr.Samples[1].PerConnMbps[0][1] != 500 {
		t.Errorf("updated pair = %v, want 500", tr.Samples[1].PerConnMbps[0][1])
	}
	if tr.Samples[1].PerConnMbps[1][0] != 900 {
		t.Errorf("omitted pair = %v, want carried-forward 900", tr.Samples[1].PerConnMbps[1][0])
	}
}

// TestRecorderRoundTrip checks the record-then-replay loop: a rate
// series written by trace.Recorder (rate_mbps header) parses into a
// replayable trace.
func TestRecorderRoundTrip(t *testing.T) {
	cfg := netsim.UniformCluster(geo.TestbedSubset(2), substrate.T2Medium, 3)
	cfg.Frozen = true
	src := netsim.NewSim(cfg)
	rec := trace.NewRecorder(src, 1.0)
	f := src.StartProbe(src.FirstVMOfDC(0), src.FirstVMOfDC(1), 1)
	src.RunFor(5)
	f.Stop()
	rec.Close()
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseCSV(&buf, "recorded")
	if err != nil {
		t.Fatalf("parsing a Recorder CSV: %v", err)
	}
	if tr.N() != 2 || len(tr.Samples) == 0 {
		t.Fatalf("recorded trace shape: n=%d samples=%d", tr.N(), len(tr.Samples))
	}
	if _, err := New(Config{Trace: tr}); err != nil {
		t.Fatalf("replaying a recorded trace: %v", err)
	}
}

// TestParseErrors checks the loader rejects malformed traces loudly.
func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown region": `{"name":"x","regions":["Atlantis","US East"],"samples":[{"t":0,"per_conn_mbps":[[0,1],[1,0]]}]}`,
		"no samples":     `{"name":"x","regions":["US East","US West"],"samples":[]}`,
		"bad shape":      `{"name":"x","regions":["US East","US West"],"samples":[{"t":0,"per_conn_mbps":[[0,1]]}]}`,
		"time order":     `{"name":"x","regions":["US East","US West"],"samples":[{"t":5,"per_conn_mbps":[[0,1],[1,0]]},{"t":5,"per_conn_mbps":[[0,1],[1,0]]}]}`,
		"short period":   `{"name":"x","regions":["US East","US West"],"loop":true,"period_s":1,"samples":[{"t":0,"per_conn_mbps":[[0,1],[1,0]]},{"t":5,"per_conn_mbps":[[0,1],[1,0]]}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseCSV(strings.NewReader("wrong,header\n1,2"), "x"); err == nil {
		t.Error("bad CSV header accepted")
	}
}

// TestNegativeMeansNoOverride checks that negative JSON entries leave
// the geography-derived cap in place.
func TestNegativeMeansNoOverride(t *testing.T) {
	doc := `{"name":"x","regions":["US East","US West"],"samples":[{"t":0,"per_conn_mbps":[[0,-1],[700,0]]}]}`
	tr, err := ParseJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tr.Samples[0].PerConnMbps[0][1]) {
		t.Error("negative entry not mapped to no-override")
	}
	geoCap := s.PerConnCapMbps(0, 1)
	if geoCap < 1600 || geoCap > 1800 {
		t.Errorf("no-override pair cap %v, want the ~1700 geography anchor", geoCap)
	}
	if got := s.PerConnCapMbps(1, 0); got != 700 {
		t.Errorf("overridden pair cap %v, want 700", got)
	}
}
