// Package substrate defines the contract between WANify's online
// module and the WAN it runs on.
//
// Everything above the network — measurement probes (internal/measure),
// local agents (internal/agent), the analytics engine (internal/spark),
// the GDA schedulers (internal/gda), the offline feature pipeline
// (internal/ml/dataset) and the wanify.Framework itself — is defined
// over *any* wide-area substrate: the paper runs it on an AWS VPC
// testbed, this reproduction on a fluid simulator, and future backends
// may replay measured traces or drive live agents. Cluster is the
// narrow interface those layers actually consume; internal/netsim and
// internal/tracesim are its current implementations.
//
// The interface is deliberately minimal (see DESIGN.md §1a): upper
// layers may query topology and host metrics, start/resize/stop flows
// and probes, install tc-style pair limits, and step the shared clock.
// They may NOT reach into link physics (fluctuation processes,
// congestion knees, per-flow rate envelopes) — WANify's whole premise
// is that runtime bandwidth must be *gauged*, not read off; a backend
// that exposed its physics would let upper layers cheat. Anything not
// in Cluster is a backend construction detail and belongs next to the
// code that builds the concrete backend.
//
// All bandwidth values are in Mbps, sizes in bytes and time in
// substrate-defined seconds. Implementations must be deterministic for
// a given configuration/seed: the experiment drivers and golden tests
// rely on byte-identical replays.
package substrate

import "github.com/wanify/wanify/internal/geo"

// VMID identifies a virtual machine within a Cluster.
type VMID int

// FlowID identifies a flow within a Cluster.
type FlowID int

// VMSpec describes the network-relevant shape of a virtual machine.
type VMSpec struct {
	// Type is a descriptive instance type name, e.g. "t2.medium".
	Type string
	// EgressMbps is the sustained WAN egress capacity.
	EgressMbps float64
	// IngressMbps is the sustained WAN ingress capacity.
	IngressMbps float64
	// MemGB is the instance memory; parallel connections consume
	// buffer space out of it (the paper's Md feature, Table 3).
	MemGB float64
	// ComputeRate is the relative task-processing rate (1.0 = one
	// t2.medium vCPU pair). Used by the analytics engine.
	ComputeRate float64
	// VCPUs is the vCPU count, used for burst-surcharge pricing (the
	// paper adds $0.05 per vCPU-hour for unlimited CPU bursts, §5.1).
	VCPUs int
	// HourlyUSD is the on-demand instance price, used by the cost model.
	HourlyUSD float64
	// Watts is the instance's attributable average power draw, used by
	// the energy/carbon model (a vCPU-share slice of the host, not a
	// whole server).
	Watts float64
}

// Predefined instance shapes used across the paper's experiments.
// Capacities are calibrated so the paper's anchor bandwidths reproduce
// (see DESIGN.md §2): WAN caps are roughly half of peak NIC rate, as
// the paper notes for m5.large ("10 Gbps NIC, WAN throttled to half").
var (
	// T2Medium hosts Spark workers in the paper's evaluation.
	T2Medium = VMSpec{Type: "t2.medium", EgressMbps: 2400, IngressMbps: 2800, MemGB: 4, ComputeRate: 1.0, VCPUs: 2, HourlyUSD: 0.0464, Watts: 11}
	// T2Large hosts the Spark master.
	T2Large = VMSpec{Type: "t2.large", EgressMbps: 3000, IngressMbps: 3400, MemGB: 8, ComputeRate: 1.2, VCPUs: 2, HourlyUSD: 0.0928, Watts: 17}
	// T3Nano (unlimited burst) runs the bandwidth-monitoring probes.
	T3Nano = VMSpec{Type: "t3.nano", EgressMbps: 1000, IngressMbps: 1100, MemGB: 0.5, ComputeRate: 0.25, VCPUs: 2, HourlyUSD: 0.0052, Watts: 2.2}
	// E2Medium is the GCP instance used in the multi-cloud check (§5.8.3).
	E2Medium = VMSpec{Type: "e2-medium", EgressMbps: 2200, IngressMbps: 2600, MemGB: 4, ComputeRate: 0.95, VCPUs: 2, HourlyUSD: 0.0335, Watts: 10}
)

// VMStats is a snapshot of a VM's host-level metrics, the sources of
// the paper's Table 3 features (Md, Ci, Nr).
type VMStats struct {
	// CPULoad is the current CPU utilization in [0, 1] (feature Ci).
	CPULoad float64
	// MemUtil is the current memory utilization in [0, 1], including
	// per-connection socket buffers (feature Md).
	MemUtil float64
	// RetransPerSec is the current TCP retransmission rate (feature Nr).
	RetransPerSec float64
	// ActiveConns is the total number of connections terminating at
	// this VM (both directions).
	ActiveConns int
}

// Flow is an active WAN transfer between two VMs. A flow aggregates
// all parallel connections a sender maintains toward one receiver; the
// Conns count is the paper's per-pair connection number (§2.3). A flow
// with unbounded size (see Cluster.StartProbe) runs until stopped and
// is used by measurement tools; a sized flow completes when its bytes
// have been delivered.
type Flow interface {
	// ID returns the flow's identifier, unique and ascending within a
	// Cluster: sorting by ID recovers start order.
	ID() FlowID
	// Src returns the sending VM.
	Src() VMID
	// Dst returns the receiving VM.
	Dst() VMID
	// Conns returns the current number of parallel connections.
	Conns() int
	// SetConns changes the number of parallel connections (clamped to
	// at least 1). The Connections Manager of a WANify local agent
	// calls this when the AIMD optimizer adds or removes connections.
	SetConns(n int)
	// Rate returns the currently achieved rate in Mbps.
	Rate() float64
	// TransferredBytes returns the cumulative bytes delivered so far.
	TransferredBytes() float64
	// RemainingBytes returns the bytes still to deliver (+Inf for
	// probes).
	RemainingBytes() float64
	// Done reports whether the flow has completed or been stopped.
	Done() bool
	// Probe reports whether this is an unbounded measurement flow.
	Probe() bool
	// Stop terminates the flow immediately (probe tear-down or
	// cancelled transfer). Remaining bytes are not delivered.
	Stop()
	// Failed reports whether the flow was terminated by a fault (an
	// endpoint died or the pair was reset) rather than completing or
	// being stopped by its owner. A failed flow is Done, its onDone
	// callback never fires, and its remaining bytes were not delivered.
	Failed() bool
	// OnFail registers fn to run when the flow fails. Registering on an
	// already-failed flow fires fn immediately (a flow started against
	// a dead endpoint fails at start). At most one handler is held; a
	// later registration replaces the earlier one.
	OnFail(fn func())
}

// Cluster is a WAN substrate: a set of VMs spread over geo-distributed
// data centers, connected by links whose achievable bandwidth the
// upper layers can only observe through flows. Implementations are
// single-timeline and not safe for concurrent use; concurrency lives
// one level up (independent experiment drivers each own a Cluster).
type Cluster interface {
	// --- topology ---

	// NumDCs returns the number of data centers.
	NumDCs() int
	// NumVMs returns the total number of virtual machines.
	NumVMs() int
	// Regions returns the cluster's regions in DC order.
	Regions() []geo.Region
	// VMsOfDC returns the VM ids hosted in the given DC.
	VMsOfDC(dc int) []VMID
	// FirstVMOfDC returns the first (primary) VM of a DC.
	FirstVMOfDC(dc int) VMID
	// DCOf returns the DC index hosting the given VM.
	DCOf(id VMID) int
	// Spec returns the VMSpec of the given VM.
	Spec(id VMID) VMSpec
	// PerConnCapMbps returns the nominal single-connection throughput
	// cap between two DCs under current long-term conditions (for a
	// trace backend, the current trace sample; transient weather and
	// contention are not reflected — measure to see those).
	PerConnCapMbps(i, j int) float64

	// --- host metrics ---

	// SetCPULoad sets a VM's CPU utilization in [0, 1]. The analytics
	// engine calls this while tasks execute; high CPU load slightly
	// degrades achievable sending rate (sender-limited TCP).
	SetCPULoad(id VMID, load float64)
	// VMStats returns the current host metrics of a VM.
	VMStats(id VMID) VMStats

	// --- traffic control ---

	// SetPairLimit installs a rate limit (tc-style) on all traffic
	// from srcDC to dstDC, in Mbps. WANify's local agents use this to
	// throttle BW-rich links (§3.2.2).
	SetPairLimit(srcDC, dstDC int, mbps float64)
	// ClearPairLimit removes a pair rate limit.
	ClearPairLimit(srcDC, dstDC int)

	// --- flows ---

	// StartFlow starts a sized transfer of the given bytes from src to
	// dst using conns parallel connections. onDone, if non-nil, fires
	// when the transfer completes (not when it is stopped early).
	StartFlow(src, dst VMID, conns int, bytes float64, onDone func()) Flow
	// StartProbe starts an unbounded measurement flow (iPerf-style)
	// that runs until stopped.
	StartProbe(src, dst VMID, conns int) Flow
	// PairRate returns the current aggregate rate (Mbps) of all active
	// flows from srcDC to dstDC.
	PairRate(srcDC, dstDC int) float64
	// AwaitFlows advances the substrate until all given flows are
	// done, or until maxWait seconds have elapsed (returning an error
	// in that case). It stops at the exact completion instant of the
	// last flow.
	AwaitFlows(maxWait float64, flows ...Flow) error

	// --- faults ---
	//
	// Faults are injected, not emergent: the schedule is part of the
	// experiment configuration, empty by default, and every fault takes
	// effect through the substrate's own timer queue — so runs remain
	// deterministic per seed and fault-free runs are byte-identical to
	// builds that predate the fault model.

	// KillVM schedules the VM to die at absolute substrate time t (or
	// immediately when t <= Now). A dead VM stops accepting flows —
	// StartFlow/StartProbe against it return an already-failed flow —
	// and every active flow touching it fails at the instant of death.
	// Death is permanent.
	KillVM(id VMID, t float64)
	// PartitionDC severs a DC from the rest of the cluster during
	// [from, until): every inter-DC pair involving dc has achievable
	// rate zero while the partition holds. Flows on affected pairs are
	// not failed — they stall at rate 0 and resume when the partition
	// heals (TCP survives a transient partition; a peer that should
	// give up instead uses KillVM or ResetPair). Overlapping partitions
	// compose: a pair is severed while any partition covers it.
	PartitionDC(dc int, from, until float64)
	// ResetPair aborts every flow active on the (srcDC, dstDC) pair at
	// absolute time t — the mid-transfer connection-reset fault. The
	// affected flows fail; flows started on the pair afterwards are
	// unaffected.
	ResetPair(srcDC, dstDC int, t float64)
	// VMAlive reports whether the VM is accepting flows (true until a
	// KillVM fault fires for it).
	VMAlive(id VMID) bool

	// --- clock and timers ---

	// Now returns the current substrate time in seconds.
	Now() float64
	// RunFor advances the substrate by d seconds.
	RunFor(d float64)
	// RunUntil advances the substrate until time t.
	RunUntil(t float64)
	// After schedules fn to run once, delay seconds from now.
	After(delay float64, fn func(now float64))
	// Every schedules fn to run every interval seconds, starting one
	// interval from now. The returned cancel function stops future
	// firings.
	Every(interval float64, fn func(now float64)) (cancel func())
}
