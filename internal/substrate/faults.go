package substrate

import (
	"fmt"
	"strings"
)

// FaultKind names an injectable fault.
type FaultKind string

// The fault kinds a schedule may contain, mirroring the Cluster fault
// methods.
const (
	FaultKillVM      FaultKind = "kill-vm"
	FaultPartitionDC FaultKind = "partition-dc"
	FaultResetPair   FaultKind = "reset-pair"
)

// Fault is one scheduled fault. Which fields are meaningful depends on
// Kind: KillVM uses VM and At; PartitionDC uses DC, At and Until;
// ResetPair uses SrcDC, DstDC and At. The struct is plain data (JSON-
// marshalable) so a failing chaos schedule can be dumped verbatim as a
// repro artifact.
type Fault struct {
	Kind  FaultKind `json:"kind"`
	VM    VMID      `json:"vm,omitempty"`
	DC    int       `json:"dc,omitempty"`
	SrcDC int       `json:"srcDC,omitempty"`
	DstDC int       `json:"dstDC,omitempty"`
	At    float64   `json:"at"`
	Until float64   `json:"until,omitempty"`
}

// String renders one fault for reports.
func (f Fault) String() string {
	switch f.Kind {
	case FaultKillVM:
		return fmt.Sprintf("kill vm%d@t=%.0fs", f.VM, f.At)
	case FaultPartitionDC:
		return fmt.Sprintf("partition dc%d t=[%.0f,%.0f]s", f.DC, f.At, f.Until)
	case FaultResetPair:
		return fmt.Sprintf("reset %d->%d@t=%.0fs", f.SrcDC, f.DstDC, f.At)
	default:
		return string(f.Kind)
	}
}

// FaultSchedule is an ordered set of faults to inject into one run.
type FaultSchedule []Fault

// Apply installs every fault on the cluster. Faults arm through the
// substrate's own timers, so an Apply before RunFor/RunUntil keeps the
// run deterministic.
func (s FaultSchedule) Apply(c Cluster) {
	for _, f := range s {
		switch f.Kind {
		case FaultKillVM:
			c.KillVM(f.VM, f.At)
		case FaultPartitionDC:
			c.PartitionDC(f.DC, f.At, f.Until)
		case FaultResetPair:
			c.ResetPair(f.SrcDC, f.DstDC, f.At)
		}
	}
}

// String renders the schedule as one comma-joined line.
func (s FaultSchedule) String() string {
	if len(s) == 0 {
		return "none"
	}
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}
