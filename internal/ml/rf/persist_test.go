package rf

import (
	"bytes"
	"testing"
)

// TestSaveLoadRoundTrip checks persisted forests predict identically.
func TestSaveLoadRoundTrip(t *testing.T) {
	ds := synth(300, 30, func(x []float64) float64 { return 5*x[0] + x[2] })
	f, err := Train(ds, Config{NumTrees: 15, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() || g.NumFeatures() != f.NumFeatures() {
		t.Fatalf("shape mismatch after load")
	}
	for i := 0; i < 50; i++ {
		x := ds.X[i]
		if f.Predict(x) != g.Predict(x) {
			t.Fatalf("prediction mismatch on row %d", i)
		}
	}
	// Importances survive the round trip.
	fi, gi := f.FeatureImportance(), g.FeatureImportance()
	for k := range fi {
		if fi[k] != gi[k] {
			t.Errorf("importance %d differs", k)
		}
	}
}

// TestLoadedForestCanWarmStart checks restored models keep learning.
func TestLoadedForestCanWarmStart(t *testing.T) {
	ds := synth(200, 32, func(x []float64) float64 { return 10 })
	f, _ := Train(ds, Config{NumTrees: 10, Seed: 33})
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WarmStart(ds, 5); err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != 15 {
		t.Errorf("trees after warm start = %d", g.NumTrees())
	}
}

// TestLoadRejectsGarbage checks error handling on corrupt input.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
