package rf

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/stats"
)

// synth builds a regression dataset from a known function with noise.
func synth(n int, seed uint64, f func(x []float64) float64) Dataset {
	rng := simrand.Derive(seed, "synth")
	var ds Dataset
	for i := 0; i < n; i++ {
		x := []float64{rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10)}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, f(x)+rng.Norm(0, 0.5))
	}
	return ds
}

// TestLearnsPiecewiseFunction checks the forest fits an axis-aligned
// step function (CART's native shape) well out of sample.
func TestLearnsPiecewiseFunction(t *testing.T) {
	target := func(x []float64) float64 {
		if x[0] > 5 {
			return 100
		}
		if x[1] > 7 {
			return 50
		}
		return 10
	}
	train := synth(800, 1, target)
	test := synth(200, 2, target)
	f, err := Train(train, Config{NumTrees: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := f.PredictBatch(test.X)
	if r2 := stats.R2(pred, test.Y); r2 < 0.95 {
		t.Errorf("out-of-sample R2 = %.3f, want >= 0.95", r2)
	}
}

// TestLearnsLinearFunction checks reasonable fit on a smooth target
// (trees approximate, so the bar is lower).
func TestLearnsLinearFunction(t *testing.T) {
	target := func(x []float64) float64 { return 3*x[0] + 2*x[1] - x[2] }
	train := synth(1000, 4, target)
	test := synth(200, 5, target)
	f, err := Train(train, Config{NumTrees: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pred := f.PredictBatch(test.X)
	if r2 := stats.R2(pred, test.Y); r2 < 0.85 {
		t.Errorf("out-of-sample R2 = %.3f, want >= 0.85", r2)
	}
}

// TestPredictionsWithinLabelHull property-checks that forest predictions
// never leave the training-label range (they are averages of leaf
// means).
func TestPredictionsWithinLabelHull(t *testing.T) {
	train := synth(300, 7, func(x []float64) float64 { return x[0] * x[1] })
	f, err := Train(train, Config{NumTrees: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := stats.Min(train.Y), stats.Max(train.Y)
	check := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		p := f.Predict([]float64{a, b, c})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicTraining checks the same seed yields the same model.
func TestDeterministicTraining(t *testing.T) {
	ds := synth(300, 9, func(x []float64) float64 { return x[0] })
	f1, _ := Train(ds, Config{NumTrees: 10, Seed: 11})
	f2, _ := Train(ds, Config{NumTrees: 10, Seed: 11})
	probe := []float64{3.3, 4.4, 5.5}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Error("same-seed forests disagree")
	}
	f3, _ := Train(ds, Config{NumTrees: 10, Seed: 12})
	if f1.Predict(probe) == f3.Predict(probe) {
		t.Log("different seeds agreed (possible but unlikely)")
	}
}

// TestWarmStart checks the §3.3.2/§3.3.4 path: appending trees on new
// data grows the ensemble and shifts predictions toward the new regime.
func TestWarmStart(t *testing.T) {
	old := synth(400, 13, func(x []float64) float64 { return 10 })
	f, err := Train(old, Config{NumTrees: 20, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 20 {
		t.Fatalf("tree count %d", f.NumTrees())
	}
	probe := []float64{5, 5, 5}
	before := f.Predict(probe)

	newData := synth(400, 15, func(x []float64) float64 { return 90 })
	if err := f.WarmStart(newData, 40); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 60 {
		t.Fatalf("tree count after warm start %d, want 60", f.NumTrees())
	}
	after := f.Predict(probe)
	if after <= before+20 {
		t.Errorf("warm start barely moved prediction: %.1f -> %.1f", before, after)
	}

	// Width mismatch is rejected.
	bad := Dataset{X: [][]float64{{1, 2}}, Y: []float64{1}}
	if err := f.WarmStart(bad, 1); err == nil {
		t.Error("warm start accepted mismatched width")
	}
}

// TestOOBRMSE checks the out-of-bag error is a sane magnitude.
func TestOOBRMSE(t *testing.T) {
	ds := synth(600, 16, func(x []float64) float64 {
		if x[0] > 5 {
			return 100
		}
		return 10
	})
	f, err := Train(ds, Config{NumTrees: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	oob := f.OOBRMSE()
	if oob <= 0 || oob > 30 {
		t.Errorf("OOB RMSE = %.2f, want small positive", oob)
	}
}

// TestFeatureImportance checks that the only informative feature
// dominates.
func TestFeatureImportance(t *testing.T) {
	ds := synth(600, 18, func(x []float64) float64 { return 20 * x[1] })
	f, err := Train(ds, Config{NumTrees: 30, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance width %d", len(imp))
	}
	if imp[1] < 0.8 {
		t.Errorf("informative feature importance %.2f, want dominant", imp[1])
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

// TestDatasetValidate checks shape validation errors.
func TestDatasetValidate(t *testing.T) {
	cases := map[string]Dataset{
		"empty":        {},
		"len mismatch": {X: [][]float64{{1}}, Y: []float64{1, 2}},
		"zero width":   {X: [][]float64{{}}, Y: []float64{1}},
		"ragged":       {X: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}},
	}
	for name, ds := range cases {
		if err := ds.Validate(); err == nil {
			t.Errorf("%s: no validation error", name)
		}
	}
	ok := Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{1, 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
}

// TestDatasetSplitAndAppend checks partitioning helpers.
func TestDatasetSplitAndAppend(t *testing.T) {
	ds := synth(100, 20, func(x []float64) float64 { return x[0] })
	rng := simrand.Derive(21, "split")
	train, test := ds.Split(0.2, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d", train.Len(), test.Len())
	}
	joined := train.Append(test)
	if joined.Len() != 100 {
		t.Errorf("append len %d", joined.Len())
	}
	// Append must not alias the receiver.
	joined.Y[0] = -999
	if train.Y[0] == -999 {
		t.Error("Append aliases receiver labels")
	}
}

// TestTrainRejectsBadData checks error paths.
func TestTrainRejectsBadData(t *testing.T) {
	if _, err := Train(Dataset{}, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestPredictPanicsOnWidth checks the width guard.
func TestPredictPanicsOnWidth(t *testing.T) {
	ds := synth(50, 22, func(x []float64) float64 { return 1 })
	f, _ := Train(ds, Config{NumTrees: 5, Seed: 23})
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong feature width")
		}
	}()
	f.Predict([]float64{1})
}

// TestConstantLabels checks degenerate training works (single leaf).
func TestConstantLabels(t *testing.T) {
	var ds Dataset
	for i := 0; i < 50; i++ {
		ds.X = append(ds.X, []float64{float64(i), 0})
		ds.Y = append(ds.Y, 7)
	}
	f, err := Train(ds, Config{NumTrees: 5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{25, 0}); got != 7 {
		t.Errorf("constant-label prediction %v, want 7", got)
	}
}

// TestMaxDepthRespected checks the depth bound truncates trees.
func TestMaxDepthRespected(t *testing.T) {
	ds := synth(500, 40, func(x []float64) float64 { return x[0]*x[1] + x[2] })
	shallow, err := Train(ds, Config{NumTrees: 10, MaxDepth: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Train(ds, Config{NumTrees: 10, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// A depth-2 tree has at most 7 nodes; unbounded trees on 500 noisy
	// rows grow far larger. Compare total node counts via a proxy:
	// shallow must fit strictly worse in-sample.
	sp := shallow.PredictBatch(ds.X)
	dp := deep.PredictBatch(ds.X)
	var sErr, dErr float64
	for i := range ds.Y {
		sErr += (sp[i] - ds.Y[i]) * (sp[i] - ds.Y[i])
		dErr += (dp[i] - ds.Y[i]) * (dp[i] - ds.Y[i])
	}
	if dErr >= sErr {
		t.Errorf("unbounded trees (sse %.0f) should fit better in-sample than depth-2 (sse %.0f)", dErr, sErr)
	}
}

// TestMinLeafRespected checks large MinLeaf smooths predictions: with
// MinLeaf = n/2 a tree can split at most once.
func TestMinLeafRespected(t *testing.T) {
	ds := synth(100, 42, func(x []float64) float64 { return 10 * x[0] })
	coarse, err := Train(ds, Config{NumTrees: 5, MinLeaf: 50, MinSplit: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	// With at most one split, there are at most 2 distinct leaf values
	// per tree, so across 5 trees at most 2^5... in practice predictions
	// take few distinct values. Check far fewer distinct outputs than
	// inputs.
	seen := map[float64]bool{}
	for _, x := range ds.X {
		seen[coarse.Predict(x)] = true
	}
	if len(seen) > 40 {
		t.Errorf("%d distinct predictions from heavily constrained trees", len(seen))
	}
}
