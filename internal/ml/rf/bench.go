package rf

import (
	"math"
	"runtime"
	"time"

	"github.com/wanify/wanify/internal/simrand"
)

// Microbenchmark entry points for cmd/wanify-bench, mirroring
// netsim.ChurnNsPerOp: each times the optimized planning-layer path
// against its kept-verbatim reference so BENCH_netsim.json records the
// payoff and the CI guard can gate on the optimized/reference ratio
// (which cancels raw machine speed).

// benchTrainRows sizes the synthetic training set near the experiment
// suite's real one (6 sizes × 8 sessions × ~n(n-1) pairs ≈ 300 rows).
const benchTrainRows = 360

// BenchWorkers is the worker count the training benchmark and its CI
// guard both use: capped at 4 so the ratio recorded on a many-core
// laptop stays comparable to the 4-vCPU CI runners, and clamped to
// GOMAXPROCS so single-core environments measure the scheme's
// sequential overhead honestly rather than goroutine thrash.
func BenchWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

// benchDataset builds a deterministic synthetic regression set shaped
// like the Table 3 features (cluster size, snapshot BW, memory, CPU,
// retransmissions, distance) with a nonlinear noisy label.
func benchDataset(rows int, seed uint64) Dataset {
	rng := simrand.Derive(seed, "rf-bench")
	ds := Dataset{X: make([][]float64, rows), Y: make([]float64, rows)}
	for i := range ds.X {
		n := float64(2 + rng.IntN(7))
		snap := rng.Uniform(20, 1500)
		mem := rng.Float64()
		cpu := rng.Float64()
		retr := rng.Uniform(0, 40)
		dist := rng.Uniform(100, 9000)
		ds.X[i] = []float64{n, snap, mem, cpu, retr, dist}
		ds.Y[i] = snap*(0.6+0.3*math.Sin(dist/1500)) - 80*cpu - 40*mem - 2*retr + rng.Norm(0, 25)
	}
	return ds
}

// TrainNsPerOp times one forest fit on the synthetic dataset.
// optimized=true uses the scratch-slab grower with BenchWorkers()
// per-tree streams; false replays the kept-verbatim sequential
// reference (trainReference).
func TrainNsPerOp(optimized bool, rounds int) float64 {
	ds := benchDataset(benchTrainRows, 99)
	cfg := Config{NumTrees: 40, Seed: 7}
	if optimized {
		cfg.Workers = BenchWorkers()
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var err error
		if optimized {
			_, err = Train(ds, cfg)
		} else {
			_, err = trainReference(ds, cfg)
		}
		if err != nil {
			panic(err) // synthetic dataset is always valid
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}

// PredictBatchNsPerOp times one 512-row batch prediction against a
// 60-tree forest. optimized=true runs the goroutine fan-out
// (PredictBatchInto with a reused result slab); false the sequential
// reference loop. Outputs are bit-identical either way.
func PredictBatchNsPerOp(optimized bool, rounds int) float64 {
	f, err := Train(benchDataset(benchTrainRows, 99), Config{NumTrees: 60, Seed: 7})
	if err != nil {
		panic(err)
	}
	batch := benchDataset(512, 1234).X
	dst := make([]float64, len(batch))
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if optimized {
			f.PredictBatchInto(dst, batch)
		} else {
			predictBatchReference(f, batch)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}
