package rf

import (
	"math"
	"sort"

	"github.com/wanify/wanify/internal/simrand"
)

// node is one node of a CART regression tree. Leaves have feature == -1.
type node struct {
	feature   int     // split feature index, or -1 for a leaf
	threshold float64 // go left when x[feature] <= threshold
	value     float64 // leaf prediction (mean of training labels)
	left      int32   // child indices into tree.nodes
	right     int32
}

// tree is a CART regression tree grown by variance-reduction splitting.
// Nodes are stored in a flat slice for cache-friendly prediction.
type tree struct {
	nodes []node
	// featGain accumulates the total impurity (SSE) decrease attributed
	// to each feature, for feature-importance reporting.
	featGain []float64
}

// treeParams are the growth hyperparameters shared by the forest.
type treeParams struct {
	maxDepth    int // 0 = unbounded
	minLeaf     int // minimum samples per leaf
	minSplit    int // minimum samples to consider splitting
	maxFeatures int // features sampled per split
}

// growTree builds a regression tree on the given sample indices.
func growTree(x [][]float64, y []float64, idx []int, p treeParams, nFeat int, rng *simrand.Source) *tree {
	t := &tree{featGain: make([]float64, nFeat)}
	t.build(x, y, idx, p, 0, rng)
	return t
}

// build grows the subtree for idx and returns its node index.
func (t *tree) build(x [][]float64, y []float64, idx []int, p treeParams, depth int, rng *simrand.Source) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1, value: meanAt(y, idx)})

	if len(idx) < p.minSplit || (p.maxDepth > 0 && depth >= p.maxDepth) || constantAt(y, idx) {
		return self
	}

	feat, thr, gain, ok := bestSplit(x, y, idx, p, rng)
	if !ok {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < p.minLeaf || len(right) < p.minLeaf {
		return self
	}

	t.featGain[feat] += gain
	l := t.build(x, y, left, p, depth+1, rng)
	r := t.build(x, y, right, p, depth+1, rng)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thr
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit searches a random feature subset for the split with maximal
// SSE reduction, requiring minLeaf samples on both sides.
func bestSplit(x [][]float64, y []float64, idx []int, p treeParams, rng *simrand.Source) (feat int, thr, gain float64, ok bool) {
	nFeat := len(x[0])
	candidates := rng.Perm(nFeat)
	if p.maxFeatures < nFeat {
		candidates = candidates[:p.maxFeatures]
	}

	// Parent SSE.
	parentMean := meanAt(y, idx)
	parentSSE := 0.0
	for _, i := range idx {
		d := y[i] - parentMean
		parentSSE += d * d
	}

	order := make([]int, len(idx))
	bestGain := 0.0
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

		// Prefix scan: evaluate every boundary between distinct values.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			sumL += yi
			sumSqL += yi * yi
			sumR -= yi
			sumSqR -= yi * yi
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < p.minLeaf || int(nr) < p.minLeaf {
				continue
			}
			v, vNext := x[order[k]][f], x[order[k+1]][f]
			if v == vNext {
				continue // cannot split between equal values
			}
			sseL := sumSqL - sumL*sumL/nl
			sseR := sumSqR - sumR*sumR/nr
			g := parentSSE - sseL - sseR
			if g > bestGain {
				bestGain = g
				feat = f
				thr = (v + vNext) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

// predict walks the tree for one feature vector.
func (t *tree) predict(x []float64) float64 {
	ni := int32(0)
	for {
		nd := &t.nodes[ni]
		if nd.feature < 0 {
			return nd.value
		}
		if x[nd.feature] <= nd.threshold {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func constantAt(y []float64, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if math.Abs(y[i]-first) > 1e-12 {
			return false
		}
	}
	return true
}
