package rf

import (
	"math"
	"sort"

	"github.com/wanify/wanify/internal/simrand"
)

// node is one node of a CART regression tree. Leaves have feature == -1.
type node struct {
	feature   int     // split feature index, or -1 for a leaf
	threshold float64 // go left when x[feature] <= threshold
	value     float64 // leaf prediction (mean of training labels)
	left      int32   // child indices into tree.nodes
	right     int32
}

// tree is a CART regression tree grown by variance-reduction splitting.
// Nodes are stored in a flat slice for cache-friendly prediction.
type tree struct {
	nodes []node
	// featGain accumulates the total impurity (SSE) decrease attributed
	// to each feature, for feature-importance reporting.
	featGain []float64
}

// treeParams are the growth hyperparameters shared by the forest.
type treeParams struct {
	maxDepth    int // 0 = unbounded
	minLeaf     int // minimum samples per leaf
	minSplit    int // minimum samples to consider splitting
	maxFeatures int // features sampled per split
}

// grower grows CART trees over one dataset with reusable scratch slabs:
// the sort order, the stable-partition halves and the feature
// permutation are allocated once and shared by every node of every tree
// the grower builds, instead of the reference's fresh slices per node.
// Trees produced by a grower are bit-identical to growTreeReference for
// the same RNG state: the split search performs the same float
// operations in the same order, the partition preserves the reference's
// left-before-right stable ordering, and PermInto draws exactly the
// randoms Perm would (locked by TestTrainMatchesReference).
//
// A grower is single-goroutine state; parallel training gives each
// worker its own.
type grower struct {
	x     [][]float64
	y     []float64
	p     treeParams
	nFeat int
	rng   *simrand.Source

	order []int // bestSplit sort buffer (len = dataset size)
	lbuf  []int // stable-partition scratch, left half
	rbuf  []int // stable-partition scratch, right half
	perm  []int // feature-subsample buffer (len = nFeat)
}

// newGrower sizes the scratch for a dataset of len(x) rows.
func newGrower(x [][]float64, y []float64, p treeParams, nFeat int) *grower {
	n := len(x)
	return &grower{
		x: x, y: y, p: p, nFeat: nFeat,
		order: make([]int, n),
		lbuf:  make([]int, n),
		rbuf:  make([]int, n),
		perm:  make([]int, nFeat),
	}
}

// grow builds one tree on the bootstrap indices idx, consuming
// randomness from g.rng. idx is scratch: grow reorders it in place
// while recursing, so the caller must refill it before the next tree.
func (g *grower) grow(idx []int) *tree {
	t := &tree{featGain: make([]float64, g.nFeat)}
	g.build(t, idx, 0)
	return t
}

// build grows the subtree over idx and returns its node index.
func (g *grower) build(t *tree, idx []int, depth int) int32 {
	self := int32(len(t.nodes))
	mean := meanAt(g.y, idx)
	t.nodes = append(t.nodes, node{feature: -1, value: mean})

	if len(idx) < g.p.minSplit || (g.p.maxDepth > 0 && depth >= g.p.maxDepth) || constantAt(g.y, idx) {
		return self
	}

	feat, thr, gain, ok := g.bestSplit(idx, mean)
	if !ok {
		return self
	}

	// Stable partition into the scratch halves, then back into idx with
	// the left block first — the same ordering the reference's append
	// loops produced, so the recursion sees identical index sequences.
	nl, nr := 0, 0
	for _, i := range idx {
		if g.x[i][feat] <= thr {
			g.lbuf[nl] = i
			nl++
		} else {
			g.rbuf[nr] = i
			nr++
		}
	}
	if nl < g.p.minLeaf || nr < g.p.minLeaf {
		return self
	}
	copy(idx[:nl], g.lbuf[:nl])
	copy(idx[nl:], g.rbuf[:nr])

	t.featGain[feat] += gain
	l := g.build(t, idx[:nl], depth+1)
	r := g.build(t, idx[nl:], depth+1)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thr
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit searches a random feature subset for the split with maximal
// SSE reduction, requiring minLeaf samples on both sides. parentMean is
// the node mean build already computed (the reference recomputed it).
func (g *grower) bestSplit(idx []int, parentMean float64) (feat int, thr, gain float64, ok bool) {
	candidates := g.rng.PermInto(g.perm)
	if g.p.maxFeatures < g.nFeat {
		candidates = candidates[:g.p.maxFeatures]
	}

	// Parent SSE.
	parentSSE := 0.0
	for _, i := range idx {
		d := g.y[i] - parentMean
		parentSSE += d * d
	}

	x, y := g.x, g.y
	order := g.order[:len(idx)]
	bestGain := 0.0
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

		// Prefix scan: evaluate every boundary between distinct values.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			sumL += yi
			sumSqL += yi * yi
			sumR -= yi
			sumSqR -= yi * yi
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < g.p.minLeaf || int(nr) < g.p.minLeaf {
				continue
			}
			v, vNext := x[order[k]][f], x[order[k+1]][f]
			if v == vNext {
				continue // cannot split between equal values
			}
			sseL := sumSqL - sumL*sumL/nl
			sseR := sumSqR - sumR*sumR/nr
			gn := parentSSE - sseL - sseR
			if gn > bestGain {
				bestGain = gn
				feat = f
				thr = (v + vNext) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

// predict walks the tree for one feature vector.
func (t *tree) predict(x []float64) float64 {
	ni := int32(0)
	for {
		nd := &t.nodes[ni]
		if nd.feature < 0 {
			return nd.value
		}
		if x[nd.feature] <= nd.threshold {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func constantAt(y []float64, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if math.Abs(y[i]-first) > 1e-12 {
			return false
		}
	}
	return true
}
