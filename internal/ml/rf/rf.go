// Package rf implements a decision-tree-based Random Forest regressor
// from scratch, the prediction technique WANify selects in §3.1:
// bagged CART regression trees with per-split feature subsampling.
//
// The paper motivates the choice: the runtime-BW problem is a
// multivariate regression with many outliers, where ensembles of
// variance-reduction trees resist over-fitting and need far less
// training data than deep models. This implementation supports the two
// capabilities §3.3 depends on — warm-start retraining (new trees
// appended on fresh data when cluster sizes change or the model goes
// stale) and out-of-bag error tracking (the §3.3.4 staleness signal) —
// plus impurity-based feature importance used to validate that "all
// features in Table 3 were significant".
package rf

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/wanify/wanify/internal/simrand"
)

// Dataset is a supervised regression dataset: X[i] is a feature vector,
// Y[i] its label. All rows must share the same width.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of rows.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("rf: %d feature rows vs %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("rf: empty dataset")
	}
	w := len(d.X[0])
	if w == 0 {
		return errors.New("rf: zero-width feature vectors")
	}
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("rf: row %d has width %d, want %d", i, len(row), w)
		}
	}
	return nil
}

// Split partitions the dataset into train/test by the given test
// fraction, shuffled with rng.
func (d Dataset) Split(testFrac float64, rng *simrand.Source) (train, test Dataset) {
	n := d.Len()
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	for k, i := range perm {
		if k < nTest {
			test.X = append(test.X, d.X[i])
			test.Y = append(test.Y, d.Y[i])
		} else {
			train.X = append(train.X, d.X[i])
			train.Y = append(train.Y, d.Y[i])
		}
	}
	return train, test
}

// Append returns d with the rows of o appended.
func (d Dataset) Append(o Dataset) Dataset {
	return Dataset{
		X: append(append([][]float64{}, d.X...), o.X...),
		Y: append(append([]float64{}, d.Y...), o.Y...),
	}
}

// Config holds the forest hyperparameters. The zero value is usable:
// every field defaults as documented.
type Config struct {
	// NumTrees is the ensemble size (default 100, the paper's best
	// estimator count, §5.1).
	NumTrees int
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// MinSplit is the minimum node size to attempt a split (default 5).
	MinSplit int
	// MaxFeatures is the number of features sampled per split
	// (default max(1, p/3), the usual regression-forest heuristic).
	MaxFeatures int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed uint64
	// Workers selects the training execution mode.
	//
	// 0 (the default) is the legacy sequential scheme: one shared RNG
	// stream consumed tree after tree. It reproduces every forest ever
	// trained by this package bit for bit (the experiment goldens
	// depend on it), so it stays the default.
	//
	// Any non-zero value switches to deterministic per-tree RNG
	// streams, each derived from (Seed, absolute tree index), executed
	// on a pool of |Workers| goroutines (-1 = GOMAXPROCS). Because a
	// tree's randomness is self-contained and ensemble/OOB folds happen
	// in tree-index order, the forest is bit-identical for ANY worker
	// count at ANY GOMAXPROCS — Workers=1 is the sequential reference
	// of the scheme (locked by TestStreamedTrainInvariance). Forests
	// from the two schemes differ (statistically equivalent, not
	// bit-equal), so switching modes on an existing deployment is a
	// model change, not a speedup.
	Workers int
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.NumTrees == 0 {
		c.NumTrees = 100
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.MinSplit == 0 {
		c.MinSplit = 5
	}
	if c.MaxFeatures == 0 {
		c.MaxFeatures = nFeatures / 3
	}
	if c.MaxFeatures < 1 {
		c.MaxFeatures = 1
	}
	if c.MaxFeatures > nFeatures {
		c.MaxFeatures = nFeatures
	}
	return c
}

// Forest is a trained Random Forest regressor.
type Forest struct {
	cfg       Config
	nFeatures int
	trees     []*tree
	rng       *simrand.Source

	// oobSum/oobCount accumulate out-of-bag predictions per training
	// row of the most recent Train/WarmStart dataset.
	oobSum   []float64
	oobCount []int
	oobY     []float64
}

// Train fits a forest on the dataset.
func Train(ds Dataset, cfg Config) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	nFeat := len(ds.X[0])
	cfg = cfg.withDefaults(nFeat)
	f := &Forest{
		cfg:       cfg,
		nFeatures: nFeat,
		rng:       simrand.Derive(cfg.Seed, "rf"),
		oobSum:    make([]float64, ds.Len()),
		oobCount:  make([]int, ds.Len()),
		oobY:      append([]float64(nil), ds.Y...),
	}
	f.addTrees(ds, cfg.NumTrees)
	return f, nil
}

// params bundles the tree-growth hyperparameters.
func (f *Forest) params() treeParams {
	return treeParams{
		maxDepth:    f.cfg.MaxDepth,
		minLeaf:     f.cfg.MinLeaf,
		minSplit:    f.cfg.MinSplit,
		maxFeatures: f.cfg.MaxFeatures,
	}
}

// addTrees grows k bootstrap trees on ds and appends them, dispatching
// on the training mode (Config.Workers).
func (f *Forest) addTrees(ds Dataset, k int) {
	if f.cfg.Workers != 0 {
		f.addTreesStreamed(ds, k)
		return
	}
	f.addTreesSequential(ds, k)
}

// addTreesSequential is the legacy mode: one shared RNG stream consumed
// tree after tree. Bit-identical to addTreesReference — the bootstrap
// and split-subsample draws interleave exactly as before; only the
// allocations moved into the shared grower scratch (locked by
// TestTrainMatchesReference).
func (f *Forest) addTreesSequential(ds Dataset, k int) {
	if f.rng == nil {
		// Forests restored via Load have no RNG until they warm-start.
		f.rng = simrand.Derive(f.cfg.Seed, "rf-loaded")
	}
	n := ds.Len()
	g := newGrower(ds.X, ds.Y, f.params(), f.nFeatures)
	g.rng = f.rng
	inBag := make([]bool, n)
	idx := make([]int, n)
	for t := 0; t < k; t++ {
		clear(inBag)
		for i := range idx {
			j := f.rng.IntN(n)
			idx[i] = j
			inBag[j] = true
		}
		tr := g.grow(idx)
		f.trees = append(f.trees, tr)
		// Out-of-bag bookkeeping (only valid for rows of ds).
		if len(f.oobSum) == n {
			for i := 0; i < n; i++ {
				if !inBag[i] {
					f.oobSum[i] += tr.predict(ds.X[i])
					f.oobCount[i]++
				}
			}
		}
	}
}

// addTreesStreamed is the parallel mode: tree base+t draws every random
// it needs from its own stream Derive(Seed, "rf-tree-<base+t>"), so
// trees can grow concurrently yet land in a schedule-independent
// forest. Workers grow trees off a channel with per-worker grower
// scratch; the ensemble append and the floating-point OOB accumulation
// happen afterwards in tree-index order, which pins the result bits at
// any GOMAXPROCS and any worker count.
func (f *Forest) addTreesStreamed(ds Dataset, k int) {
	n := ds.Len()
	base := len(f.trees)
	workers := f.cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	trackOOB := len(f.oobSum) == n

	type grown struct {
		tr      *tree
		inBag   []bool
		oobPred []float64
	}
	out := make([]grown, k)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := newGrower(ds.X, ds.Y, f.params(), f.nFeatures)
			idx := make([]int, n)
			for t := range jobs {
				rng := simrand.Derive(f.cfg.Seed, fmt.Sprintf("rf-tree-%d", base+t))
				g.rng = rng
				inBag := make([]bool, n)
				for i := range idx {
					j := rng.IntN(n)
					idx[i] = j
					inBag[j] = true
				}
				gr := grown{tr: g.grow(idx), inBag: inBag}
				if trackOOB {
					gr.oobPred = make([]float64, n)
					for i := 0; i < n; i++ {
						if !inBag[i] {
							gr.oobPred[i] = gr.tr.predict(ds.X[i])
						}
					}
				}
				out[t] = gr
			}
		}()
	}
	for t := 0; t < k; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	for t := 0; t < k; t++ {
		f.trees = append(f.trees, out[t].tr)
		if trackOOB {
			for i := 0; i < n; i++ {
				if !out[t].inBag[i] {
					f.oobSum[i] += out[t].oobPred[i]
					f.oobCount[i]++
				}
			}
		}
	}
}

// WarmStart grows k additional trees on ds (which may contain new
// cluster sizes or freshly collected rows) and appends them to the
// ensemble — the paper's §3.3.2/§3.3.4 retraining path. OOB statistics
// are reset to the new dataset.
func (f *Forest) WarmStart(ds Dataset, k int) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if len(ds.X[0]) != f.nFeatures {
		return fmt.Errorf("rf: warm-start width %d != model width %d", len(ds.X[0]), f.nFeatures)
	}
	f.oobSum = make([]float64, ds.Len())
	f.oobCount = make([]int, ds.Len())
	f.oobY = append([]float64(nil), ds.Y...)
	f.addTrees(ds, k)
	return nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumFeatures returns the feature-vector width the model expects.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// Predict returns the ensemble mean prediction for one feature vector.
func (f *Forest) Predict(x []float64) float64 {
	if len(x) != f.nFeatures {
		panic(fmt.Sprintf("rf: predict width %d != model width %d", len(x), f.nFeatures))
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// parallelPredictMin is the work size (rows × trees) below which
// fanning PredictBatch across goroutines costs more than it saves.
const parallelPredictMin = 1 << 14

// PredictBatch predicts every row of X. Large batches fan out across
// GOMAXPROCS goroutines; every row is independent, so the output is
// bit-identical to the sequential loop regardless of parallelism
// (locked by TestPredictBatchMatchesReference).
func (f *Forest) PredictBatch(X [][]float64) []float64 {
	return f.PredictBatchInto(make([]float64, len(X)), X)
}

// PredictBatchInto is PredictBatch with a caller-owned result slice
// (len(dst) must equal len(X)), for allocation-free steady-state use on
// replan hot paths.
func (f *Forest) PredictBatchInto(dst []float64, X [][]float64) []float64 {
	if len(dst) != len(X) {
		panic(fmt.Sprintf("rf: predict-batch dst length %d != %d rows", len(dst), len(X)))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || len(X)*len(f.trees) < parallelPredictMin || len(X) < 2*workers {
		for i, x := range X {
			dst[i] = f.Predict(x)
		}
		return dst
	}
	chunk := (len(X) + workers - 1) / workers
	var wg sync.WaitGroup
	for s := 0; s < len(X); s += chunk {
		e := s + chunk
		if e > len(X) {
			e = len(X)
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				dst[i] = f.Predict(X[i])
			}
		}(s, e)
	}
	wg.Wait()
	return dst
}

// OOBRMSE returns the out-of-bag root-mean-square error over the most
// recent training dataset — an unbiased generalization estimate used as
// the staleness threshold signal (§3.3.4). Rows never out of bag are
// skipped; it returns 0 when no row qualifies.
func (f *Forest) OOBRMSE() float64 {
	var sse float64
	var n int
	for i := range f.oobSum {
		if f.oobCount[i] == 0 {
			continue
		}
		d := f.oobSum[i]/float64(f.oobCount[i]) - f.oobY[i]
		sse += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sse / float64(n))
}

// FeatureImportance returns per-feature importance: total SSE reduction
// attributed to splits on each feature, normalized to sum to 1 (when
// any split exists).
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.nFeatures)
	for _, t := range f.trees {
		for i, g := range t.featGain {
			imp[i] += g
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
