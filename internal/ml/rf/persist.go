package rf

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The on-disk format mirrors the in-memory structures with exported
// fields so encoding/gob can reach them. The format is versioned to
// fail loudly on incompatible files rather than mis-predicting.

const persistVersion = 1

type persistNode struct {
	Feature   int
	Threshold float64
	Value     float64
	Left      int32
	Right     int32
}

type persistTree struct {
	Nodes    []persistNode
	FeatGain []float64
}

type persistForest struct {
	Version   int
	NFeatures int
	Config    Config
	Trees     []persistTree
}

// Save serializes the forest (trees and hyperparameters; out-of-bag
// bookkeeping is training-time state and is not persisted).
func (f *Forest) Save(w io.Writer) error {
	pf := persistForest{
		Version:   persistVersion,
		NFeatures: f.nFeatures,
		Config:    f.cfg,
		Trees:     make([]persistTree, len(f.trees)),
	}
	for i, t := range f.trees {
		pt := persistTree{
			Nodes:    make([]persistNode, len(t.nodes)),
			FeatGain: append([]float64(nil), t.featGain...),
		}
		for j, nd := range t.nodes {
			pt.Nodes[j] = persistNode{
				Feature: nd.feature, Threshold: nd.threshold,
				Value: nd.value, Left: nd.left, Right: nd.right,
			}
		}
		pf.Trees[i] = pt
	}
	return gob.NewEncoder(w).Encode(pf)
}

// Load deserializes a forest saved with Save. Loaded forests predict
// and warm-start normally; out-of-bag statistics restart empty.
func Load(r io.Reader) (*Forest, error) {
	var pf persistForest
	if err := gob.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("rf: decode: %w", err)
	}
	if pf.Version != persistVersion {
		return nil, fmt.Errorf("rf: model file version %d, want %d", pf.Version, persistVersion)
	}
	if pf.NFeatures <= 0 || len(pf.Trees) == 0 {
		return nil, fmt.Errorf("rf: model file is empty")
	}
	f := &Forest{
		cfg:       pf.Config,
		nFeatures: pf.NFeatures,
		rng:       nil, // set lazily by WarmStart if ever needed
	}
	for _, pt := range pf.Trees {
		t := &tree{
			nodes:    make([]node, len(pt.Nodes)),
			featGain: append([]float64(nil), pt.FeatGain...),
		}
		for j, nd := range pt.Nodes {
			t.nodes[j] = node{
				feature: nd.Feature, threshold: nd.Threshold,
				value: nd.Value, left: nd.Left, right: nd.Right,
			}
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}
