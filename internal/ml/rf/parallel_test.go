package rf

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/wanify/wanify/internal/simrand"
)

// randomDataset builds a dataset with the given shape from a named
// stream, including duplicate feature values and constant-label pockets
// so the tie-handling branches of the split scan are exercised.
func randomDataset(rows, width int, seed uint64) Dataset {
	rng := simrand.Derive(seed, "rf-eqtest")
	ds := Dataset{X: make([][]float64, rows), Y: make([]float64, rows)}
	for i := range ds.X {
		row := make([]float64, width)
		for j := range row {
			switch rng.IntN(4) {
			case 0:
				row[j] = float64(rng.IntN(5)) // heavy ties
			default:
				row[j] = rng.Uniform(-100, 1500)
			}
		}
		ds.X[i] = row
		if rng.Bool(0.15) {
			ds.Y[i] = 42 // constant-label pocket
		} else {
			ds.Y[i] = row[0]*3 - row[width-1]*0.5 + rng.Norm(0, 10)
		}
	}
	return ds
}

// requireForestsEqual compares two forests bit for bit: tree structure,
// split constants, feature gains and OOB bookkeeping.
func requireForestsEqual(t *testing.T, a, b *Forest, label string) {
	t.Helper()
	if len(a.trees) != len(b.trees) {
		t.Fatalf("%s: %d vs %d trees", label, len(a.trees), len(b.trees))
	}
	for k := range a.trees {
		ta, tb := a.trees[k], b.trees[k]
		if len(ta.nodes) != len(tb.nodes) {
			t.Fatalf("%s: tree %d has %d vs %d nodes", label, k, len(ta.nodes), len(tb.nodes))
		}
		for ni := range ta.nodes {
			if ta.nodes[ni] != tb.nodes[ni] {
				t.Fatalf("%s: tree %d node %d differs: %+v vs %+v", label, k, ni, ta.nodes[ni], tb.nodes[ni])
			}
		}
		for fi := range ta.featGain {
			if ta.featGain[fi] != tb.featGain[fi] {
				t.Fatalf("%s: tree %d featGain[%d] %v vs %v", label, k, fi, ta.featGain[fi], tb.featGain[fi])
			}
		}
	}
	for i := range a.oobSum {
		if a.oobSum[i] != b.oobSum[i] || a.oobCount[i] != b.oobCount[i] {
			t.Fatalf("%s: OOB row %d differs: (%v,%d) vs (%v,%d)",
				label, i, a.oobSum[i], a.oobCount[i], b.oobSum[i], b.oobCount[i])
		}
	}
	if a.OOBRMSE() != b.OOBRMSE() {
		t.Fatalf("%s: OOBRMSE %v vs %v", label, a.OOBRMSE(), b.OOBRMSE())
	}
}

// TestTrainMatchesReference locks the scratch-slab grower (legacy
// Workers=0 mode) bit-exact against the kept-verbatim reference
// implementation across dataset shapes and hyperparameters — the
// contract that keeps every experiment golden byte-identical.
func TestTrainMatchesReference(t *testing.T) {
	cases := []struct {
		rows, width int
		cfg         Config
	}{
		{40, 6, Config{NumTrees: 12, Seed: 1}},
		{120, 6, Config{NumTrees: 20, Seed: 2}},
		{200, 9, Config{NumTrees: 15, Seed: 3, MaxDepth: 6}},
		{75, 4, Config{NumTrees: 10, Seed: 4, MinLeaf: 5, MinSplit: 12}},
		{55, 7, Config{NumTrees: 8, Seed: 5, MaxFeatures: 7}},
		{30, 3, Config{NumTrees: 25, Seed: 6, MaxFeatures: 1}},
	}
	for ci, tc := range cases {
		ds := randomDataset(tc.rows, tc.width, uint64(ci)*77+1)
		got, err := Train(ds, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := trainReference(ds, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireForestsEqual(t, got, want, fmt.Sprintf("case %d", ci))

		// Warm-start must stay on the same shared stream too.
		extra := randomDataset(tc.rows/2+5, tc.width, uint64(ci)*77+2)
		if err := got.WarmStart(extra, 6); err != nil {
			t.Fatal(err)
		}
		want.oobSum = make([]float64, extra.Len())
		want.oobCount = make([]int, extra.Len())
		want.oobY = append([]float64(nil), extra.Y...)
		want.addTreesReference(extra, 6)
		requireForestsEqual(t, got, want, fmt.Sprintf("case %d warm-start", ci))
	}
}

// TestStreamedTrainInvariance locks the parallel mode's determinism:
// the forest is bit-identical for any worker count and any GOMAXPROCS,
// because every tree owns its RNG stream and the folds happen in tree
// order.
func TestStreamedTrainInvariance(t *testing.T) {
	ds := randomDataset(150, 6, 11)
	cfg := Config{NumTrees: 24, Seed: 9, Workers: 1}
	sequential, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, -1} {
		cfg.Workers = workers
		got, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireForestsEqual(t, got, sequential, fmt.Sprintf("workers=%d", workers))
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		cfg.Workers = 4
		got, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = -1 // GOMAXPROCS-many workers
		gotAuto, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireForestsEqual(t, got, sequential, fmt.Sprintf("GOMAXPROCS=%d workers=4", procs))
		requireForestsEqual(t, gotAuto, sequential, fmt.Sprintf("GOMAXPROCS=%d workers=-1", procs))
	}

	// Warm-start trees derive their streams from the absolute tree
	// index, so parallel warm-starts are schedule-independent too.
	extra := randomDataset(60, 6, 12)
	cfg.Workers = 1
	if err := sequential.WarmStart(extra, 9); err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parallel.WarmStart(extra, 9); err != nil {
		t.Fatal(err)
	}
	requireForestsEqual(t, parallel, sequential, "warm-start workers=8 vs 1")
}

// TestPredictBatchMatchesReference checks the goroutine fan-out returns
// exactly the sequential loop's bits, on batches small (sequential
// path) and large (parallel path), plus the Into variant.
func TestPredictBatchMatchesReference(t *testing.T) {
	ds := randomDataset(200, 6, 21)
	f, err := Train(ds, Config{NumTrees: 90, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{3, 64, 600} {
		batch := randomDataset(rows, 6, uint64(rows)).X
		want := predictBatchReference(f, batch)
		got := f.PredictBatch(batch)
		dst := make([]float64, rows)
		f.PredictBatchInto(dst, batch)
		for i := range want {
			if got[i] != want[i] || dst[i] != want[i] {
				t.Fatalf("rows=%d: prediction %d differs: %v / %v vs %v", rows, i, got[i], dst[i], want[i])
			}
		}
	}
}

// TestPermIntoMatchesPerm locks the allocation-free permutation against
// the stdlib path it replaces: interleaved calls on twin streams must
// agree, or the legacy training mode would silently drift off the
// golden RNG sequence.
func TestPermIntoMatchesPerm(t *testing.T) {
	a := simrand.Derive(5, "perm")
	b := simrand.Derive(5, "perm")
	buf := make([]int, 16)
	for round := 0; round < 200; round++ {
		n := 1 + round%16
		want := a.Perm(n)
		got := b.PermInto(buf[:n])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: PermInto %v != Perm %v", round, got, want)
			}
		}
		// Interleave other draws so stream positions must stay aligned.
		if a.IntN(7) != b.IntN(7) {
			t.Fatalf("round %d: streams desynchronized", round)
		}
	}
}

func BenchmarkRFTrain(b *testing.B) {
	ds := benchDataset(benchTrainRows, 99)
	cfg := Config{NumTrees: 40, Seed: 7, Workers: BenchWorkers()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRFTrainReference(b *testing.B) {
	ds := benchDataset(benchTrainRows, 99)
	cfg := Config{NumTrees: 40, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainReference(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRFPredictBatch(b *testing.B) {
	f, err := Train(benchDataset(benchTrainRows, 99), Config{NumTrees: 60, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	batch := benchDataset(512, 1234).X
	dst := make([]float64, len(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictBatchInto(dst, batch)
	}
}

func BenchmarkRFPredictBatchReference(b *testing.B) {
	f, err := Train(benchDataset(benchTrainRows, 99), Config{NumTrees: 60, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	batch := benchDataset(512, 1234).X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictBatchReference(f, batch)
	}
}
