package rf

import (
	"sort"

	"github.com/wanify/wanify/internal/simrand"
)

// This file keeps the pre-optimization training and batch-prediction
// code verbatim, the same playbook as netsim's allocateReference: the
// reference is the bit-exactness oracle (TestTrainMatchesReference
// locks the scratch-slab grower against it node for node) and the
// benchmark baseline (BenchmarkRFTrainReference and wanify-bench's
// rf_train_reference_ns_per_op record what the optimization buys).
// It is compiled into the package, not the tests, precisely so the
// benchmarks can time it from cmd/wanify-bench.

// trainReference fits a forest exactly like the original Train: one
// shared RNG stream consumed tree after tree, with fresh allocations
// for every bootstrap, sort order and partition.
func trainReference(ds Dataset, cfg Config) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	nFeat := len(ds.X[0])
	cfg = cfg.withDefaults(nFeat)
	f := &Forest{
		cfg:       cfg,
		nFeatures: nFeat,
		rng:       simrand.Derive(cfg.Seed, "rf"),
		oobSum:    make([]float64, ds.Len()),
		oobCount:  make([]int, ds.Len()),
		oobY:      append([]float64(nil), ds.Y...),
	}
	f.addTreesReference(ds, cfg.NumTrees)
	return f, nil
}

// addTreesReference grows k bootstrap trees on ds and appends them —
// the original addTrees body.
func (f *Forest) addTreesReference(ds Dataset, k int) {
	if f.rng == nil {
		f.rng = simrand.Derive(f.cfg.Seed, "rf-loaded")
	}
	p := f.params()
	n := ds.Len()
	for t := 0; t < k; t++ {
		inBag := make([]bool, n)
		idx := make([]int, n)
		for i := range idx {
			j := f.rng.IntN(n)
			idx[i] = j
			inBag[j] = true
		}
		tr := growTreeReference(ds.X, ds.Y, idx, p, f.nFeatures, f.rng)
		f.trees = append(f.trees, tr)
		if len(f.oobSum) == n {
			for i := 0; i < n; i++ {
				if !inBag[i] {
					f.oobSum[i] += tr.predict(ds.X[i])
					f.oobCount[i]++
				}
			}
		}
	}
}

// growTreeReference builds a regression tree on the given sample
// indices — the original growTree.
func growTreeReference(x [][]float64, y []float64, idx []int, p treeParams, nFeat int, rng *simrand.Source) *tree {
	t := &tree{featGain: make([]float64, nFeat)}
	t.buildReference(x, y, idx, p, 0, rng)
	return t
}

// buildReference grows the subtree for idx and returns its node index —
// the original build, allocating fresh left/right index slices per node.
func (t *tree) buildReference(x [][]float64, y []float64, idx []int, p treeParams, depth int, rng *simrand.Source) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1, value: meanAt(y, idx)})

	if len(idx) < p.minSplit || (p.maxDepth > 0 && depth >= p.maxDepth) || constantAt(y, idx) {
		return self
	}

	feat, thr, gain, ok := bestSplitReference(x, y, idx, p, rng)
	if !ok {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < p.minLeaf || len(right) < p.minLeaf {
		return self
	}

	t.featGain[feat] += gain
	l := t.buildReference(x, y, left, p, depth+1, rng)
	r := t.buildReference(x, y, right, p, depth+1, rng)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thr
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplitReference searches a random feature subset for the split
// with maximal SSE reduction — the original bestSplit, with its
// per-call order allocation and duplicate parent-mean computation.
func bestSplitReference(x [][]float64, y []float64, idx []int, p treeParams, rng *simrand.Source) (feat int, thr, gain float64, ok bool) {
	nFeat := len(x[0])
	candidates := rng.Perm(nFeat)
	if p.maxFeatures < nFeat {
		candidates = candidates[:p.maxFeatures]
	}

	// Parent SSE.
	parentMean := meanAt(y, idx)
	parentSSE := 0.0
	for _, i := range idx {
		d := y[i] - parentMean
		parentSSE += d * d
	}

	order := make([]int, len(idx))
	bestGain := 0.0
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

		// Prefix scan: evaluate every boundary between distinct values.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		n := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			sumL += yi
			sumSqL += yi * yi
			sumR -= yi
			sumSqR -= yi * yi
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < p.minLeaf || int(nr) < p.minLeaf {
				continue
			}
			v, vNext := x[order[k]][f], x[order[k+1]][f]
			if v == vNext {
				continue // cannot split between equal values
			}
			sseL := sumSqL - sumL*sumL/nl
			sseR := sumSqR - sumR*sumR/nr
			g := parentSSE - sseL - sseR
			if g > bestGain {
				bestGain = g
				feat = f
				thr = (v + vNext) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

// predictBatchReference is the original PredictBatch: a sequential
// row-major loop. Kept as the baseline the parallel fan-out is
// benchmarked (and bit-compared) against.
func predictBatchReference(f *Forest, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}
