package baseline

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/stats"
)

// linearDataset builds a dataset with a known linear relationship over
// Table 3-shaped features.
func linearDataset(n int, seed uint64) rf.Dataset {
	rng := simrand.Derive(seed, "baseline-test")
	var ds rf.Dataset
	for i := 0; i < n; i++ {
		x := make([]float64, dataset.NumFeatures)
		x[dataset.FeatN] = float64(2 + rng.IntN(7))
		x[dataset.FeatSnapBW] = rng.Uniform(50, 1800)
		x[dataset.FeatMemDst] = rng.Uniform(0.2, 0.9)
		x[dataset.FeatCPUSrc] = rng.Uniform(0, 1)
		x[dataset.FeatRetrans] = rng.Uniform(0, 20)
		x[dataset.FeatDist] = rng.Uniform(300, 11000)
		y := 1.2*x[dataset.FeatSnapBW] - 0.01*x[dataset.FeatDist] + rng.Norm(0, 10)
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, math.Max(0, y))
	}
	return ds
}

// TestLinearRegressionRecoversLinearTarget checks OLS on its home turf.
func TestLinearRegressionRecoversLinearTarget(t *testing.T) {
	ds := linearDataset(800, 1)
	test := linearDataset(200, 2)
	var lr LinearRegression
	if err := lr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	acc, rmse, _ := Evaluate(&lr, test, 100)
	if acc < 0.95 {
		t.Errorf("linear accuracy %.3f on a linear target, want >= 0.95", acc)
	}
	if rmse > 30 {
		t.Errorf("linear rmse %.1f, want small", rmse)
	}
}

// TestPassthroughUsesSnapshot checks the no-model floor.
func TestPassthroughUsesSnapshot(t *testing.T) {
	var p Passthrough
	x := make([]float64, dataset.NumFeatures)
	x[dataset.FeatSnapBW] = 432.1
	if got := p.Predict(x); got != 432.1 {
		t.Errorf("passthrough = %v", got)
	}
}

// TestKNNBeatsMeanPredictor checks KNN carries real signal: its RMSE
// must be clearly below the label standard deviation (the error of
// predicting the global mean). With four irrelevant features diluting
// the distance metric, KNN cannot be expected to hit the 100 Mbps
// accuracy bar on this synthetic target — which is itself part of the
// §3.1 argument for trees (they select features; KNN cannot).
func TestKNNBeatsMeanPredictor(t *testing.T) {
	ds := linearDataset(800, 3)
	test := linearDataset(150, 4)
	knn := KNN{K: 5}
	if err := knn.Fit(ds); err != nil {
		t.Fatal(err)
	}
	_, rmse, _ := Evaluate(&knn, test, 100)
	labelSD := stats.StdDev(test.Y)
	if rmse > 0.7*labelSD {
		t.Errorf("knn rmse %.1f not clearly below label SD %.1f", rmse, labelSD)
	}
}

// TestModelComparisonOnRealData runs the §3.1 model-choice argument on
// simulator-generated data: the Random Forest must beat plain
// passthrough and at least match linear regression at the paper's
// significance threshold.
func TestModelComparisonOnRealData(t *testing.T) {
	train, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 5, 8}, DrawsPerSize: 5, Seed: 10})
	test, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{4, 6}, DrawsPerSize: 3, Seed: 11})

	models := []Regressor{
		Passthrough{},
		&LinearRegression{},
		&KNN{K: 7},
		&Forest{Config: rf.Config{NumTrees: 80, MaxFeatures: 4, Seed: 12}},
	}
	accs := map[string]float64{}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		acc, rmse, mae := Evaluate(m, test, 100)
		accs[m.Name()] = acc
		t.Logf("%-22s acc=%.3f rmse=%.1f mae=%.1f", m.Name(), acc, rmse, mae)
	}
	// On simulator data the snapshot-to-stable mapping is close to
	// linear, so OLS is a strong baseline here (the paper's RF argument
	// rests on real-WAN outliers; see EXPERIMENTS.md). The enforceable
	// claims: RF is accurate in absolute terms and competitive with
	// every baseline.
	if accs["random-forest"] < 0.90 {
		t.Errorf("RF accuracy %.3f, want >= 0.90", accs["random-forest"])
	}
	if accs["random-forest"]+0.03 < accs["snapshot-passthrough"] {
		t.Errorf("RF (%.3f) clearly lost to passthrough (%.3f)", accs["random-forest"], accs["snapshot-passthrough"])
	}
	if accs["random-forest"]+0.04 < accs["linear-regression"] {
		t.Errorf("RF (%.3f) clearly lost to linear regression (%.3f)", accs["random-forest"], accs["linear-regression"])
	}
}

// TestSolveSingular checks the elimination error path.
func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}} // rank 1
	if _, err := solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
}

// TestEvaluateEmpty checks the degenerate path.
func TestEvaluateEmpty(t *testing.T) {
	acc, rmse, mae := Evaluate(Passthrough{}, rf.Dataset{}, 100)
	if acc != 0 || rmse != 0 || mae != 0 {
		t.Error("empty evaluation should be zeros")
	}
}
