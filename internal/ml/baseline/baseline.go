// Package baseline provides the simpler predictors WANify's §3.1
// design discussion argues against, so the Random-Forest choice can be
// validated empirically (the paper reports trying CNN at ~85% accuracy
// and dismissing SVM/plain decision trees; we implement the
// stdlib-feasible comparison set):
//
//   - Passthrough: predict the stable runtime BW as exactly the
//     1-second snapshot reading. What a system would do with no model
//     at all — the floor any learned model must beat.
//   - LinearRegression: ordinary least squares on the Table 3 features
//     (a "statistical regression technique", which §3.1 notes is
//     vulnerable to the outliers in BW data).
//   - KNN: k-nearest-neighbor regression in normalized feature space —
//     a strong non-parametric baseline that, unlike trees, cannot be
//     warm-started and is expensive at prediction time.
//
// All satisfy Regressor, as does an adapter over the Random Forest.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
)

// Regressor is the minimal fit/predict contract shared by the
// comparison models.
type Regressor interface {
	// Name identifies the model in reports.
	Name() string
	// Fit trains on the dataset.
	Fit(ds rf.Dataset) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// --- snapshot passthrough ---

// Passthrough predicts stable runtime bandwidth = snapshot bandwidth.
type Passthrough struct{}

// Name implements Regressor.
func (Passthrough) Name() string { return "snapshot-passthrough" }

// Fit is a no-op.
func (Passthrough) Fit(rf.Dataset) error { return nil }

// Predict returns the S_BWij feature unchanged.
func (Passthrough) Predict(x []float64) float64 { return x[dataset.FeatSnapBW] }

// --- ordinary least squares ---

// LinearRegression fits y = w·x + b by the normal equations.
type LinearRegression struct {
	weights []float64 // last entry is the intercept
}

// Name implements Regressor.
func (l *LinearRegression) Name() string { return "linear-regression" }

// Fit solves (XᵀX)w = Xᵀy with Gaussian elimination (the feature count
// is tiny). A ridge term stabilizes near-singular systems.
func (l *LinearRegression) Fit(ds rf.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	p := len(ds.X[0]) + 1 // + intercept
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for r := range ds.X {
		copy(row, ds.X[r])
		row[p-1] = 1
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * ds.Y[r]
		}
	}
	const ridge = 1e-6
	for i := 0; i < p; i++ {
		xtx[i][i] += ridge * (xtx[i][i] + 1)
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	l.weights = w
	return nil
}

// Predict evaluates the linear model.
func (l *LinearRegression) Predict(x []float64) float64 {
	if l.weights == nil {
		return 0
	}
	s := l.weights[len(l.weights)-1]
	for i, v := range x {
		s += l.weights[i] * v
	}
	if s < 0 {
		s = 0
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// --- k-nearest neighbors ---

// KNN is distance-weighted k-nearest-neighbor regression over
// feature-normalized training rows.
type KNN struct {
	// K is the neighborhood size (default 7).
	K int

	x     [][]float64 // normalized training rows
	y     []float64
	scale []float64 // per-feature normalization (max abs)
}

// Name implements Regressor.
func (k *KNN) Name() string { return "knn" }

// Fit stores the normalized training set.
func (k *KNN) Fit(ds rf.Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	if k.K == 0 {
		k.K = 7
	}
	p := len(ds.X[0])
	k.scale = make([]float64, p)
	for _, row := range ds.X {
		for i, v := range row {
			if a := math.Abs(v); a > k.scale[i] {
				k.scale[i] = a
			}
		}
	}
	for i := range k.scale {
		if k.scale[i] == 0 {
			k.scale[i] = 1
		}
	}
	k.x = make([][]float64, len(ds.X))
	for r, row := range ds.X {
		nr := make([]float64, p)
		for i, v := range row {
			nr[i] = v / k.scale[i]
		}
		k.x[r] = nr
	}
	k.y = append([]float64(nil), ds.Y...)
	return nil
}

// Predict averages the K nearest training labels, weighted by inverse
// distance.
func (k *KNN) Predict(x []float64) float64 {
	if len(k.x) == 0 {
		return 0
	}
	nx := make([]float64, len(x))
	for i, v := range x {
		nx[i] = v / k.scale[i]
	}
	type cand struct {
		d float64
		y float64
	}
	cands := make([]cand, len(k.x))
	for r, row := range k.x {
		d := 0.0
		for i := range row {
			dv := row[i] - nx[i]
			d += dv * dv
		}
		cands[r] = cand{d: d, y: k.y[r]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	kk := k.K
	if kk > len(cands) {
		kk = len(cands)
	}
	num, den := 0.0, 0.0
	for _, c := range cands[:kk] {
		w := 1 / (c.d + 1e-9)
		num += w * c.y
		den += w
	}
	return num / den
}

// --- Random Forest adapter ---

// Forest adapts rf.Forest to the Regressor interface for side-by-side
// comparison.
type Forest struct {
	// Config holds the forest hyperparameters (zero value = defaults).
	Config rf.Config
	f      *rf.Forest
}

// Name implements Regressor.
func (fr *Forest) Name() string { return "random-forest" }

// Fit trains the forest.
func (fr *Forest) Fit(ds rf.Dataset) error {
	f, err := rf.Train(ds, fr.Config)
	if err != nil {
		return err
	}
	fr.f = f
	return nil
}

// Predict delegates to the forest.
func (fr *Forest) Predict(x []float64) float64 {
	v := fr.f.Predict(x)
	if v < 0 {
		v = 0
	}
	return v
}

// Evaluate scores a fitted regressor on a dataset: accuracy at the
// significance threshold, RMSE and mean absolute error.
func Evaluate(r Regressor, ds rf.Dataset, thresholdMbps float64) (acc, rmse, mae float64) {
	if ds.Len() == 0 {
		return 0, 0, 0
	}
	within := 0
	var sse, sae float64
	for i := range ds.X {
		p := r.Predict(ds.X[i])
		d := p - ds.Y[i]
		if math.Abs(d) <= thresholdMbps {
			within++
		}
		sse += d * d
		sae += math.Abs(d)
	}
	n := float64(ds.Len())
	return float64(within) / n, math.Sqrt(sse / n), sae / n
}
