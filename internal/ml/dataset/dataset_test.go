package dataset

import (
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/stats"
	"github.com/wanify/wanify/internal/substrate"
)

// TestFeatureVectorOrder checks the Table 3 canonical ordering.
func TestFeatureVectorOrder(t *testing.T) {
	pf := PairFeatures{
		N: 8, SnapshotMbps: 500, MemUtilDst: 0.4,
		CPULoadSrc: 0.7, RetransSrc: 3.2, DistanceMiles: 9000,
	}
	v := pf.Vector()
	if len(v) != NumFeatures {
		t.Fatalf("vector width %d, want %d", len(v), NumFeatures)
	}
	want := []float64{8, 500, 0.4, 0.7, 3.2, 9000}
	for i, w := range want {
		if v[i] != w {
			t.Errorf("feature %s = %v, want %v", FeatureNames[i], v[i], w)
		}
	}
}

// TestSnapshotFeaturesShape checks per-pair feature extraction on a
// live cluster.
func TestSnapshotFeaturesShape(t *testing.T) {
	cfg := netsim.UniformCluster(geo.TestbedSubset(4), substrate.T3Nano, 1)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)
	feats, rep := SnapshotFeatures(sim, simrand.Derive(1, "t"))
	if len(feats) != 4 {
		t.Fatalf("feature matrix size %d", len(feats))
	}
	if rep.ElapsedS != 1 {
		t.Errorf("snapshot consumed %v s, want 1", rep.ElapsedS)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pf := feats[i][j]
			if i == j {
				if pf.SnapshotMbps != 0 {
					t.Errorf("diagonal [%d][%d] has snapshot %v", i, j, pf.SnapshotMbps)
				}
				continue
			}
			if pf.N != 4 {
				t.Errorf("N = %d", pf.N)
			}
			if pf.SnapshotMbps <= 0 {
				t.Errorf("snapshot [%d][%d] = %v", i, j, pf.SnapshotMbps)
			}
			if pf.DistanceMiles <= 0 {
				t.Errorf("distance [%d][%d] = %v", i, j, pf.DistanceMiles)
			}
			if pf.MemUtilDst <= 0 || pf.MemUtilDst > 1 {
				t.Errorf("mem util [%d][%d] = %v", i, j, pf.MemUtilDst)
			}
		}
	}
}

// TestGenerateShapes checks session accounting: rows per size follow
// N(N-1) per draw, and the measurement report accumulates.
func TestGenerateShapes(t *testing.T) {
	ds, rep := Generate(GenConfig{Sizes: []int{3, 5}, DrawsPerSize: 2, Seed: 9})
	wantRows := 2*(3*2) + 2*(5*4)
	if ds.Len() != wantRows {
		t.Errorf("rows = %d, want %d", ds.Len(), wantRows)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("generated dataset invalid: %v", err)
	}
	for i, row := range ds.X {
		if len(row) != NumFeatures {
			t.Fatalf("row %d width %d", i, len(row))
		}
		if ds.Y[i] < 0 {
			t.Errorf("negative label %v", ds.Y[i])
		}
	}
	// 4 sessions, each 1 s snapshot + 20 s label.
	if rep.ElapsedS != 4*21 {
		t.Errorf("collection elapsed %v, want 84", rep.ElapsedS)
	}
}

// TestGenerateDeterminism checks the same seed yields the same dataset.
func TestGenerateDeterminism(t *testing.T) {
	a, _ := Generate(GenConfig{Sizes: []int{4}, DrawsPerSize: 2, Seed: 5})
	b, _ := Generate(GenConfig{Sizes: []int{4}, DrawsPerSize: 2, Seed: 5})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("label %d differs: %v vs %v", i, a.Y[i], b.Y[i])
		}
		for k := range a.X[i] {
			if a.X[i][k] != b.X[i][k] {
				t.Fatalf("feature [%d][%d] differs", i, k)
			}
		}
	}
	c, _ := Generate(GenConfig{Sizes: []int{4}, DrawsPerSize: 2, Seed: 6})
	same := true
	for i := range c.Y {
		if c.Y[i] != a.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

// TestSnapshotFeaturesByVM checks the association-path features.
func TestSnapshotFeaturesByVM(t *testing.T) {
	regions := geo.TestbedSubset(3)
	vms := [][]substrate.VMSpec{
		{substrate.T2Medium, substrate.T2Medium},
		{substrate.T2Medium},
		{substrate.T2Medium},
	}
	sim := netsim.NewSim(netsim.Config{Regions: regions, VMs: vms, Seed: 2, Frozen: true})
	feats, _ := SnapshotFeaturesByVM(sim, simrand.Derive(2, "t"))
	if len(feats) != 4 {
		t.Fatalf("VM feature matrix size %d", len(feats))
	}
	// Intra-DC pair (VM 0, VM 1) must be zero-valued.
	if feats[0][1].SnapshotMbps != 0 {
		t.Error("intra-DC VM pair has features")
	}
	// Cross-DC pair carries the DC-level N and distances.
	pf := feats[0][2]
	if pf.N != 3 || pf.SnapshotMbps <= 0 || pf.DistanceMiles <= 0 {
		t.Errorf("cross-DC VM features: %+v", pf)
	}
}

// TestCollectSession checks live-cluster collection.
func TestCollectSession(t *testing.T) {
	cfg := netsim.UniformCluster(geo.TestbedSubset(3), substrate.T3Nano, 3)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)
	before := sim.Now()
	lm, rep := CollectSession(sim, simrand.Derive(3, "t"))
	if sim.Now()-before != 21 {
		t.Errorf("session consumed %v s, want 21", sim.Now()-before)
	}
	if lm.Stable.N() != 3 || len(lm.Features) != 3 {
		t.Error("session shapes wrong")
	}
	if rep.ElapsedS != 21 {
		t.Errorf("report elapsed %v", rep.ElapsedS)
	}
}

// TestSnapshotStableCorrelation verifies the premise §2.2 rests on:
// 1-second snapshots have a positive Pearson correlation with the
// stable runtime bandwidths they are used to predict.
func TestSnapshotStableCorrelation(t *testing.T) {
	ds, _ := Generate(GenConfig{Sizes: []int{4, 6, 8}, DrawsPerSize: 4, Seed: 21})
	snaps := make([]float64, ds.Len())
	for i, row := range ds.X {
		snaps[i] = row[FeatSnapBW]
	}
	r := stats.Pearson(snaps, ds.Y)
	if r < 0.7 {
		t.Errorf("snapshot-stable Pearson correlation %.3f, want strongly positive (paper: positive)", r)
	}
	t.Logf("Pearson(snapshot, stable) = %.3f over %d pairs", r, ds.Len())
}
