// Package dataset implements the data-collection half of WANify's
// offline module — the Bandwidth Analyzer of §4.1.1.
//
// Each generated sample corresponds to one "monitoring session" of the
// paper: a cluster of some size is observed under randomized network
// weather and host load, a cheap 1-second snapshot is taken, and the
// expensive ≥20-second stable runtime bandwidth is recorded as the
// label. One session yields one feature row per ordered DC pair, with
// the features of Table 3:
//
//	N      number of DCs in the VM-based cluster
//	S_BWij real-time snapshot BW between VMs at DCs i and j
//	Md     memory utilization at the receiving end
//	Ci     CPU load at the VM in DC i
//	Nr     number of retransmissions (per second, at the sender)
//	Dij    physical distance (miles) between VMs at DCs i and j
package dataset

import (
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// Feature indices of the Table 3 feature vector.
const (
	FeatN       = iota // cluster size
	FeatSnapBW         // S_BWij, Mbps
	FeatMemDst         // Md, [0,1]
	FeatCPUSrc         // Ci, [0,1]
	FeatRetrans        // Nr, events/s
	FeatDist           // Dij, miles
	NumFeatures
)

// FeatureNames maps feature indices to the paper's names.
var FeatureNames = [NumFeatures]string{"N", "S_BWij", "Md", "Ci", "Nr", "Dij"}

// PairFeatures is the Table 3 feature set for one ordered DC pair.
type PairFeatures struct {
	N             int
	SnapshotMbps  float64
	MemUtilDst    float64
	CPULoadSrc    float64
	RetransSrc    float64
	DistanceMiles float64
}

// Vector flattens the features into the canonical order.
func (p PairFeatures) Vector() []float64 {
	return p.VectorInto(nil)
}

// VectorInto appends the canonical feature order into dst[:0] — the
// allocation-free variant for the per-pair prediction loops, which
// would otherwise allocate one vector per matrix cell per replan.
func (p PairFeatures) VectorInto(dst []float64) []float64 {
	return append(dst[:0],
		float64(p.N), p.SnapshotMbps, p.MemUtilDst,
		p.CPULoadSrc, p.RetransSrc, p.DistanceMiles,
	)
}

// SnapshotFeatures builds the per-pair feature matrix for the current
// state of a simulated cluster. It takes a 1-second all-pairs snapshot
// (consuming simulated time) and combines it with host metrics and
// geography. Both the Bandwidth Analyzer (offline, labeled) and the
// online Runtime Bandwidth Determination module use this path.
func SnapshotFeatures(sim substrate.Cluster, rng *simrand.Source) ([][]PairFeatures, measure.Report) {
	snap, stats, rep := measure.Snapshot(sim, measure.SnapshotOptions(rng))
	return FeaturesFromSnapshot(sim, snap, stats), rep
}

// FeaturesFromSnapshot assembles the per-pair feature matrix from
// already-collected snapshot parts (a sampled bandwidth matrix plus
// host metrics). SnapshotFeatures takes the snapshot and delegates
// here; the runtime re-gauging controller collects its snapshot
// asynchronously (measure.BeginSnapshot) and feeds the parts in
// directly.
func FeaturesFromSnapshot(sim substrate.Cluster, snap bwmatrix.Matrix, stats []substrate.VMStats) [][]PairFeatures {
	n := sim.NumDCs()
	regions := sim.Regions()
	out := make([][]PairFeatures, n)
	for i := 0; i < n; i++ {
		out[i] = make([]PairFeatures, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			src := sim.FirstVMOfDC(i)
			dst := sim.FirstVMOfDC(j)
			out[i][j] = PairFeatures{
				N:             n,
				SnapshotMbps:  snap[i][j],
				MemUtilDst:    stats[dst].MemUtil,
				CPULoadSrc:    stats[src].CPULoad,
				RetransSrc:    stats[src].RetransPerSec,
				DistanceMiles: geo.DistanceMiles(regions[i], regions[j]),
			}
		}
	}
	return out
}

// SnapshotFeaturesByVM builds per-VM-pair features for multi-VM
// deployments (association, §3.3.3). The returned matrix is indexed by
// VM; entries for VM pairs within one DC are zero-valued. Predictions
// over these rows are summed per DC pair by the caller.
func SnapshotFeaturesByVM(sim substrate.Cluster, rng *simrand.Source) ([][]PairFeatures, measure.Report) {
	snap, stats, rep := measure.SnapshotByVM(sim, measure.SnapshotOptions(rng))
	nv := sim.NumVMs()
	regions := sim.Regions()
	out := make([][]PairFeatures, nv)
	for s := 0; s < nv; s++ {
		out[s] = make([]PairFeatures, nv)
		for d := 0; d < nv; d++ {
			ds, dd := sim.DCOf(substrate.VMID(s)), sim.DCOf(substrate.VMID(d))
			if s == d || ds == dd {
				continue
			}
			out[s][d] = PairFeatures{
				N:             sim.NumDCs(),
				SnapshotMbps:  snap[s][d],
				MemUtilDst:    stats[d].MemUtil,
				CPULoadSrc:    stats[s].CPULoad,
				RetransSrc:    stats[s].RetransPerSec,
				DistanceMiles: geo.DistanceMiles(regions[ds], regions[dd]),
			}
		}
	}
	return out, rep
}

// GenConfig configures training-set generation.
type GenConfig struct {
	// Sizes are the cluster sizes to sample; default [2..8], matching
	// the paper's "[2, Nmax]" coverage (§3.3.2).
	Sizes []int
	// DrawsPerSize is the number of monitoring sessions per size
	// (default 20). The paper collected 600 sessions total.
	DrawsPerSize int
	// Seed drives all randomness.
	Seed uint64
	// Spec is the VM shape used for the monitoring cluster (default
	// T3Nano, the paper's monitoring instance).
	Spec substrate.VMSpec
	// MaxWarmupS is the maximum random warmup before sampling, which
	// diversifies the network-weather states seen (default 180).
	MaxWarmupS float64
}

func (c GenConfig) withDefaults() GenConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 4, 5, 6, 7, 8}
	}
	if c.DrawsPerSize == 0 {
		c.DrawsPerSize = 20
	}
	if c.Spec.Type == "" {
		c.Spec = substrate.T3Nano
	}
	if c.MaxWarmupS == 0 {
		c.MaxWarmupS = 180
	}
	return c
}

// Generate runs monitoring sessions across cluster sizes and returns
// the labeled dataset together with the aggregate measurement report
// (used to price data collection, cf. the paper's ~$150 collection
// cost note in §5.1).
func Generate(cfg GenConfig) (rf.Dataset, measure.Report) {
	cfg = cfg.withDefaults()
	rng := simrand.Derive(cfg.Seed, "dataset")
	var ds rf.Dataset
	var rep measure.Report
	for _, size := range cfg.Sizes {
		for d := 0; d < cfg.DrawsPerSize; d++ {
			rows, labels, r := session(cfg, size, rng.Derive("session"))
			for k := range rows {
				ds.X = append(ds.X, rows[k])
				ds.Y = append(ds.Y, labels[k])
			}
			rep = rep.Add(r)
		}
	}
	return ds, rep
}

// session runs one monitoring session: build a random cluster of the
// given size, randomize load, snapshot, then measure stable labels.
func session(cfg GenConfig, size int, rng *simrand.Source) (rows [][]float64, labels []float64, rep measure.Report) {
	// Random subset of the canonical testbed for distance diversity.
	all := geo.Testbed()
	perm := rng.Perm(len(all))
	regions := make([]geo.Region, size)
	for i := 0; i < size; i++ {
		regions[i] = all[perm[i]]
	}

	simCfg := netsim.UniformCluster(regions, cfg.Spec, rng.Uint64())
	sim := netsim.NewSim(simCfg)

	// Randomize host load: CPU busy on some VMs, background transfers
	// on some pairs, so Md/Ci/Nr vary across sessions.
	for v := 0; v < sim.NumVMs(); v++ {
		if rng.Bool(0.5) {
			sim.SetCPULoad(substrate.VMID(v), rng.Uniform(0.1, 0.9))
		}
	}
	var background []substrate.Flow
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i != j && rng.Bool(0.3) {
				f := sim.StartProbe(sim.FirstVMOfDC(i), sim.FirstVMOfDC(j), 1+rng.IntN(6))
				background = append(background, f)
			}
		}
	}
	sim.RunFor(rng.Uniform(5, cfg.MaxWarmupS))

	feats, r1 := SnapshotFeatures(sim, rng.Derive("noise"))
	label, r2 := measure.StaticSimultaneous(sim, measure.StableOptions())
	rep = r1.Add(r2)

	for _, f := range background {
		f.Stop()
	}

	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i == j {
				continue
			}
			rows = append(rows, feats[i][j].Vector())
			labels = append(labels, label[i][j])
		}
	}
	return rows, labels, rep
}

// LabeledMatrices bundles one session's snapshot features and stable
// label matrix, used by integration tests and the staleness monitor.
type LabeledMatrices struct {
	Features [][]PairFeatures
	Stable   bwmatrix.Matrix
}

// CollectSession captures features and a stable label matrix from an
// existing simulation (without constructing a new cluster), consuming
// ~21 seconds of simulated time.
func CollectSession(sim substrate.Cluster, rng *simrand.Source) (LabeledMatrices, measure.Report) {
	feats, r1 := SnapshotFeatures(sim, rng)
	stable, r2 := measure.StaticSimultaneous(sim, measure.StableOptions())
	return LabeledMatrices{Features: feats, Stable: stable}, r1.Add(r2)
}
