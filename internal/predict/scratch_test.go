package predict

import (
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/simrand"
)

// scratchModel trains a small model on synthetic rows.
func scratchModel(t *testing.T) *Model {
	t.Helper()
	rng := simrand.Derive(7, "predict-scratch")
	var ds rf.Dataset
	for i := 0; i < 150; i++ {
		pf := randomPair(rng, 5)
		ds.X = append(ds.X, pf.Vector())
		ds.Y = append(ds.Y, pf.SnapshotMbps*0.8+rng.Norm(0, 30))
	}
	m, err := Train(ds, TrainConfig{Forest: rf.Config{NumTrees: 25, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomPair(rng *simrand.Source, n int) dataset.PairFeatures {
	return dataset.PairFeatures{
		N:             n,
		SnapshotMbps:  rng.Uniform(10, 1400),
		MemUtilDst:    rng.Float64(),
		CPULoadSrc:    rng.Float64(),
		RetransSrc:    rng.Uniform(0, 30),
		DistanceMiles: rng.Uniform(50, 9000),
	}
}

// TestPredictMatrixIntoMatchesPlain locks the Into variants bit-exact
// against the allocating paths, including reuse of a dirty dst.
func TestPredictMatrixIntoMatchesPlain(t *testing.T) {
	m := scratchModel(t)
	rng := simrand.Derive(9, "predict-scratch-feats")
	var dst bwmatrix.Matrix
	for trial := 0; trial < 3; trial++ {
		n := 3 + trial*2
		feats := make([][]dataset.PairFeatures, n)
		for i := range feats {
			feats[i] = make([]dataset.PairFeatures, n)
			for j := range feats[i] {
				if i != j {
					feats[i][j] = randomPair(rng, n)
				}
			}
		}
		want := m.PredictMatrix(feats)
		dst = m.PredictMatrixInto(dst, feats)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dst[i][j] != want[i][j] {
					t.Fatalf("trial %d: PredictMatrixInto[%d][%d] %v vs %v", trial, i, j, dst[i][j], want[i][j])
				}
			}
		}

		// VM-association path: 2 VMs per DC.
		nv := n * 2
		vmFeats := make([][]dataset.PairFeatures, nv)
		dcOf := make([]int, nv)
		for s := range vmFeats {
			vmFeats[s] = make([]dataset.PairFeatures, nv)
			dcOf[s] = s / 2
			for d := range vmFeats[s] {
				if s != d && s/2 != d/2 {
					vmFeats[s][d] = randomPair(rng, n)
				}
			}
		}
		wantDC := m.PredictDCMatrixByVM(vmFeats, dcOf, n)
		gotDC := m.PredictDCMatrixByVMInto(bwmatrix.NewFilled(n, 123), vmFeats, dcOf, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if gotDC[i][j] != wantDC[i][j] {
					t.Fatalf("trial %d: PredictDCMatrixByVMInto[%d][%d] %v vs %v", trial, i, j, gotDC[i][j], wantDC[i][j])
				}
			}
		}
	}
}

// TestVectorIntoMatchesVector locks the flattening used by every
// prediction loop.
func TestVectorIntoMatchesVector(t *testing.T) {
	rng := simrand.Derive(3, "vec")
	buf := make([]float64, 0, dataset.NumFeatures)
	for trial := 0; trial < 20; trial++ {
		pf := randomPair(rng, 2+trial%7)
		want := pf.Vector()
		got := pf.VectorInto(buf)
		if len(got) != len(want) {
			t.Fatalf("VectorInto length %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("VectorInto[%d] %v vs %v", i, got[i], want[i])
			}
		}
	}
}
