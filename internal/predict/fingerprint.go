package predict

import (
	"math"

	"github.com/wanify/wanify/internal/ml/dataset"
)

// Snapshot fingerprinting: the cache key of the serving layer's model
// cache (internal/serve.ModelCache). A fingerprint condenses one
// cluster snapshot — the same [][]dataset.PairFeatures the model
// predicts from — into a stable 64-bit key. Two snapshots of the same
// cluster under the same network regime hash to the same key, so a
// control plane serving thousands of job admissions trains one model
// per regime instead of one per admission; a materially different
// snapshot (topology change, a link's bandwidth regime shifting)
// hashes elsewhere and forces a retrain.
//
// Stability across the measurement wobble the paper's 1-second
// snapshots carry comes from quantization, not tolerance comparison:
// every feature is bucketed before hashing (bandwidth to QuantMbps
// buckets, utilizations to 0.1, retransmissions to 1/s), so any two
// snapshots whose features land in the same buckets produce
// bit-identical keys — no "almost equal" fuzziness, which would break
// the byte-identical-replay discipline the golden tests rely on.

// DefaultQuantMbps is the default bandwidth bucket width. It sits at
// half the paper's 100 Mbps significance threshold: snapshots whose
// pairwise bandwidths differ by less than what the paper calls
// significant usually share a key, while a genuine regime shift (a
// diurnal swing, a congestion episode) moves at least one pair by
// several buckets.
const DefaultQuantMbps = 50.0

// Utilization and retransmission bucket widths (fixed: their scales
// are dimensionless or event-rate and do not vary by deployment).
const (
	quantUtil    = 0.1
	quantRetrans = 1.0
)

// Fingerprint hashes a snapshot feature matrix into the model-cache
// key. quantMbps is the bandwidth bucket width (<= 0 selects
// DefaultQuantMbps). The hash is FNV-1a over the bucketed features in
// row-major order, seeded with the cluster size, so it is deterministic
// across processes and Go versions (no map iteration, no float bits —
// only integer buckets enter the hash).
func Fingerprint(features [][]dataset.PairFeatures, quantMbps float64) uint64 {
	if quantMbps <= 0 {
		quantMbps = DefaultQuantMbps
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	mix(int64(len(features)))
	for i := range features {
		for j := range features[i] {
			if i == j {
				continue
			}
			f := features[i][j]
			mix(int64(f.N))
			mix(bucket(f.SnapshotMbps, quantMbps))
			mix(bucket(f.MemUtilDst, quantUtil))
			mix(bucket(f.CPULoadSrc, quantUtil))
			mix(bucket(f.RetransSrc, quantRetrans))
			// Distance is topology, not weather: bucket at one mile so
			// any topology change (and nothing else) moves it.
			mix(bucket(f.DistanceMiles, 1))
		}
	}
	return h
}

// bucket maps a feature value onto its quantization bucket index.
func bucket(v, step float64) int64 {
	return int64(math.Floor(v / step))
}
