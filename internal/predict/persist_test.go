package predict

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
)

func trainedModel(t *testing.T) (*Model, rf.Dataset) {
	t.Helper()
	ds, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 4}, DrawsPerSize: 3, Seed: 11})
	m, err := Train(ds, TrainConfig{Forest: rf.Config{NumTrees: 10, Seed: 11}, FlagLimit: 0.2, ErrWindow: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

// TestSaveLoadRoundTrip checks a reloaded model predicts identically
// and keeps its staleness configuration.
func TestSaveLoadRoundTrip(t *testing.T) {
	m, ds := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if a, b := m.forest.Predict(ds.X[i]), got.forest.Predict(ds.X[i]); a != b {
			t.Fatalf("row %d: prediction %v != %v after reload", i, a, b)
		}
	}
	if got.errCap != 7 || got.flagLimit != 0.2 {
		t.Errorf("staleness config not preserved: errCap=%d flagLimit=%v", got.errCap, got.flagLimit)
	}
	if got.NeedsRetrain() || got.PendingRows() != 0 {
		t.Error("loaded model carries runtime staleness state")
	}
}

// TestSaveLoadFile checks the file helpers.
func TestSaveLoadFile(t *testing.T) {
	m, ds := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := m.forest.Predict(ds.X[0]), got.forest.Predict(ds.X[0]); a != b {
		t.Errorf("prediction differs after file round trip: %v vs %v", a, b)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLoadRejectsGarbage checks corrupt input fails loudly.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestLoadLegacyForestFile checks backward compatibility: a bare
// forest gob (the pre-model persistence format) loads with default
// staleness thresholds.
func TestLoadLegacyForestFile(t *testing.T) {
	m, ds := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Forest().Save(&buf); err != nil { // legacy: forest only
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy forest file rejected: %v", err)
	}
	if a, b := m.forest.Predict(ds.X[0]), got.forest.Predict(ds.X[0]); a != b {
		t.Errorf("legacy prediction %v != %v", b, a)
	}
	if got.errCap != defaultErrWindow || got.flagLimit != defaultFlagLimit {
		t.Errorf("legacy load staleness config: errCap=%d flagLimit=%v", got.errCap, got.flagLimit)
	}
}
