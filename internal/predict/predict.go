// Package predict implements WANify's WAN Prediction Model (§3.1,
// §4.1.1): a Random-Forest regressor that gauges stable runtime WAN
// bandwidth for a whole cluster from a cheap 1-second snapshot, plus
// the staleness machinery of §3.3.4 (intermittent comparison of
// predictions with observed runtime values, a log-based retrain flag,
// and warm-start retraining on newly collected rows).
package predict

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/stats"
)

// SignificantMbps is the bandwidth-difference threshold the paper uses
// throughout to call a gap "significant" (100 Mbps, [13, 24]).
const SignificantMbps = 100.0

// Default staleness thresholds (§3.3.4), shared by Train and by the
// legacy model-file fallback in Load.
const (
	defaultFlagLimit = 0.15
	defaultErrWindow = 10
)

// Model is a trained runtime-bandwidth predictor.
type Model struct {
	forest *rf.Forest

	// Staleness tracking (§3.3.4).
	errWindow   []float64 // recent significant-error fractions
	errCap      int
	flagLimit   float64 // flag when mean significant-error fraction exceeds this
	retrainFlag bool

	// Rows collected during monitoring, available for warm-start
	// retraining when the flag raises.
	pending rf.Dataset
}

// TrainConfig configures model training.
type TrainConfig struct {
	// Forest holds the Random Forest hyperparameters; the zero value
	// uses the paper's 100 estimators.
	Forest rf.Config
	// FlagLimit is the mean significant-error fraction beyond which the
	// model flags itself for retraining (default 0.15).
	FlagLimit float64
	// ErrWindow is how many recent observations feed the staleness
	// statistic (default 10).
	ErrWindow int
}

// Train fits the model on a labeled dataset.
func Train(ds rf.Dataset, cfg TrainConfig) (*Model, error) {
	f, err := rf.Train(ds, cfg.Forest)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	if cfg.FlagLimit == 0 {
		cfg.FlagLimit = defaultFlagLimit
	}
	if cfg.ErrWindow == 0 {
		cfg.ErrWindow = defaultErrWindow
	}
	return &Model{forest: f, errCap: cfg.ErrWindow, flagLimit: cfg.FlagLimit}, nil
}

// Forest exposes the underlying ensemble (for importance reporting).
func (m *Model) Forest() *rf.Forest { return m.forest }

// PredictPair predicts the stable runtime bandwidth for one DC pair.
func (m *Model) PredictPair(pf dataset.PairFeatures) float64 {
	v := m.forest.Predict(pf.Vector())
	if v < 0 {
		v = 0
	}
	return v
}

// PredictMatrix predicts the full runtime bandwidth matrix from the
// per-pair snapshot features (diagonal left at zero). This is the
// Runtime Bandwidth Determination sub-module of §4.1.2: its output is
// shaped exactly like the static matrices existing GDA systems consume,
// which is what makes WANify a drop-in input (§2.3).
func (m *Model) PredictMatrix(features [][]dataset.PairFeatures) bwmatrix.Matrix {
	return m.PredictMatrixInto(nil, features)
}

// PredictMatrixInto is PredictMatrix with a caller-owned result matrix,
// reused when already n×n (nil allocates): the re-gauging controller
// predicts a fresh matrix every replan, and the per-pair feature
// vectors share one stack buffer instead of allocating n(n-1) slices.
// Entries are bit-identical to PredictMatrix's. The returned matrix is
// safe for concurrent readers only after this call returns; concurrent
// PredictMatrixInto calls on one Model need distinct dst matrices.
func (m *Model) PredictMatrixInto(dst bwmatrix.Matrix, features [][]dataset.PairFeatures) bwmatrix.Matrix {
	n := len(features)
	if dst.N() != n {
		dst = bwmatrix.New(n)
	}
	var vecArr [dataset.NumFeatures]float64
	vec := vecArr[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				vec = features[i][j].VectorInto(vec)
				dst[i][j] = m.predictVec(vec)
			} else {
				dst[i][j] = 0
			}
		}
	}
	return dst
}

// predictVec is PredictPair over an already-flattened feature vector.
func (m *Model) predictVec(vec []float64) float64 {
	v := m.forest.Predict(vec)
	if v < 0 {
		v = 0
	}
	return v
}

// PredictDCMatrixByVM predicts per VM pair and sums into a DC-level
// matrix — the association path of §3.3.3 ("BWs are summed to reflect
// the combined BW of a DC"). features is indexed by VM; dcOfVM maps
// each VM to its DC.
func (m *Model) PredictDCMatrixByVM(features [][]dataset.PairFeatures, dcOfVM []int, numDCs int) bwmatrix.Matrix {
	return m.PredictDCMatrixByVMInto(nil, features, dcOfVM, numDCs)
}

// PredictDCMatrixByVMInto is PredictDCMatrixByVM with a caller-owned
// result matrix (reused when already numDCs×numDCs, zeroed before the
// accumulation) and a shared feature-vector buffer.
func (m *Model) PredictDCMatrixByVMInto(dst bwmatrix.Matrix, features [][]dataset.PairFeatures, dcOfVM []int, numDCs int) bwmatrix.Matrix {
	if dst.N() != numDCs {
		dst = bwmatrix.New(numDCs)
	} else {
		for i := range dst {
			for j := range dst[i] {
				dst[i][j] = 0
			}
		}
	}
	var vecArr [dataset.NumFeatures]float64
	vec := vecArr[:0]
	for s := range features {
		for d := range features[s] {
			if s == d {
				continue
			}
			ds, dd := dcOfVM[s], dcOfVM[d]
			if ds == dd {
				continue
			}
			vec = features[s][d].VectorInto(vec)
			dst[ds][dd] += m.predictVec(vec)
		}
	}
	return dst
}

// Accuracy returns the fraction of rows whose prediction falls within
// the significance threshold of the label — the metric behind the
// paper's "98.51% training accuracy" claim — together with RMSE and R².
func (m *Model) Accuracy(ds rf.Dataset) (acc, rmse, r2 float64) {
	pred := m.forest.PredictBatch(ds.X)
	within := 0
	for i := range pred {
		if math.Abs(pred[i]-ds.Y[i]) <= SignificantMbps {
			within++
		}
	}
	if len(pred) > 0 {
		acc = float64(within) / float64(len(pred))
	}
	return acc, stats.RMSE(pred, ds.Y), stats.R2(pred, ds.Y)
}

// ObserveActual compares a prediction with actual runtime values
// observed during execution (§3.3.4) and updates the staleness
// statistic. It also banks the observed rows for warm-start retraining.
func (m *Model) ObserveActual(features [][]dataset.PairFeatures, actual bwmatrix.Matrix) {
	n := actual.N()
	total, sig := 0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			total++
			if math.Abs(m.PredictPair(features[i][j])-actual[i][j]) > SignificantMbps {
				sig++
			}
			m.pending.X = append(m.pending.X, features[i][j].Vector())
			m.pending.Y = append(m.pending.Y, actual[i][j])
		}
	}
	if total == 0 {
		return
	}
	frac := float64(sig) / float64(total)
	m.errWindow = append(m.errWindow, frac)
	if len(m.errWindow) > m.errCap {
		m.errWindow = m.errWindow[len(m.errWindow)-m.errCap:]
	}
	if stats.Mean(m.errWindow) > m.flagLimit {
		m.retrainFlag = true
	}
}

// NeedsRetrain reports whether the staleness flag is raised.
func (m *Model) NeedsRetrain() bool { return m.retrainFlag }

// PendingRows returns how many observed rows are banked for retraining.
func (m *Model) PendingRows() int { return m.pending.Len() }

// Retrain warm-starts the forest with extraTrees new trees grown on the
// banked rows (optionally augmented with extra data), then clears the
// flag. It is a no-op error if nothing was banked and extra is empty.
func (m *Model) Retrain(extra rf.Dataset, extraTrees int) error {
	ds := m.pending
	if extra.Len() > 0 {
		ds = ds.Append(extra)
	}
	if ds.Len() == 0 {
		return fmt.Errorf("predict: retrain with no banked or extra rows")
	}
	if extraTrees <= 0 {
		extraTrees = 20
	}
	if err := m.forest.WarmStart(ds, extraTrees); err != nil {
		return err
	}
	m.pending = rf.Dataset{}
	m.errWindow = nil
	m.retrainFlag = false
	return nil
}
