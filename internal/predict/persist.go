package predict

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/wanify/wanify/internal/ml/rf"
)

// Model persistence wraps the forest's gob format (internal/ml/rf)
// with the staleness configuration, so a reloaded model resumes §3.3.4
// monitoring with the thresholds it was trained with. Banked pending
// rows and the error window are runtime state and are not persisted —
// a freshly loaded model starts with a clean staleness slate, like a
// freshly trained one.

const persistVersion = 1

// persistMagic distinguishes a model header from a bare forest gob:
// gob matches struct fields by name, and the forest format also opens
// with a Version field, so version alone cannot tell them apart.
const persistMagic = "wanify-predict-model"

type persistModel struct {
	Magic     string
	Version   int
	ErrCap    int
	FlagLimit float64
}

// Save serializes the model (forest + staleness configuration).
func (m *Model) Save(w io.Writer) error {
	hdr := persistModel{Magic: persistMagic, Version: persistVersion, ErrCap: m.errCap, FlagLimit: m.flagLimit}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return fmt.Errorf("predict: encode header: %w", err)
	}
	return m.forest.Save(w)
}

// Load deserializes a model saved with Save. Bare forest files (the
// format `wanify-train -out` wrote before model-level persistence
// existed) are accepted too, with the default staleness thresholds.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	// The stream holds two consecutive gob messages (header, forest)
	// read by two decoders; a bytes.Reader keeps each decoder
	// byte-exact so the second starts where the first stopped.
	br := bytes.NewReader(data)
	var hdr persistModel
	if err := gob.NewDecoder(br).Decode(&hdr); err != nil || hdr.Magic != persistMagic {
		// Not a model header — try the legacy bare-forest format (what
		// `wanify-train -out` wrote before model-level persistence)
		// before giving up.
		f, ferr := rf.Load(bytes.NewReader(data))
		if ferr != nil {
			if err != nil {
				return nil, fmt.Errorf("predict: decode header: %w", err)
			}
			return nil, ferr
		}
		return &Model{forest: f, errCap: defaultErrWindow, flagLimit: defaultFlagLimit}, nil
	}
	if hdr.Version != persistVersion {
		return nil, fmt.Errorf("predict: model file version %d, want %d", hdr.Version, persistVersion)
	}
	if hdr.ErrCap <= 0 || hdr.FlagLimit <= 0 {
		return nil, fmt.Errorf("predict: model file has invalid staleness config %+v", hdr)
	}
	f, err := rf.Load(br)
	if err != nil {
		return nil, err
	}
	return &Model{forest: f, errCap: hdr.ErrCap, flagLimit: hdr.FlagLimit}, nil
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model written by SaveFile.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	defer f.Close()
	return Load(f)
}
