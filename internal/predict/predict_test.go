package predict

import (
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
)

// trainSmall builds a model on a small generated dataset.
func trainSmall(t *testing.T, seed uint64) (*Model, rf.Dataset) {
	t.Helper()
	ds, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 5, 8}, DrawsPerSize: 4, Seed: seed})
	m, err := Train(ds, TrainConfig{Forest: rf.Config{NumTrees: 30, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

// TestTrainAndAccuracy checks the model trains and is accurate at the
// paper's significance threshold on its own training data.
func TestTrainAndAccuracy(t *testing.T) {
	m, ds := trainSmall(t, 1)
	acc, rmse, r2 := m.Accuracy(ds)
	if acc < 0.9 {
		t.Errorf("train accuracy %.3f, want >= 0.9", acc)
	}
	if rmse <= 0 {
		t.Errorf("rmse = %v", rmse)
	}
	if r2 < 0.5 {
		t.Errorf("R2 = %v", r2)
	}
	t.Logf("acc=%.3f rmse=%.1f r2=%.3f", acc, rmse, r2)
}

// TestPredictPairNonNegative checks prediction clamping.
func TestPredictPairNonNegative(t *testing.T) {
	m, _ := trainSmall(t, 2)
	pf := dataset.PairFeatures{N: 8, SnapshotMbps: 0, MemUtilDst: 1, CPULoadSrc: 1, RetransSrc: 100, DistanceMiles: 12000}
	if v := m.PredictPair(pf); v < 0 {
		t.Errorf("negative prediction %v", v)
	}
}

// TestPredictMatrixShape checks matrix assembly from features.
func TestPredictMatrixShape(t *testing.T) {
	m, _ := trainSmall(t, 3)
	n := 4
	feats := make([][]dataset.PairFeatures, n)
	for i := range feats {
		feats[i] = make([]dataset.PairFeatures, n)
		for j := range feats[i] {
			if i != j {
				feats[i][j] = dataset.PairFeatures{N: n, SnapshotMbps: 300, DistanceMiles: 5000}
			}
		}
	}
	pred := m.PredictMatrix(feats)
	if pred.N() != n {
		t.Fatalf("matrix size %d", pred.N())
	}
	for i := 0; i < n; i++ {
		if pred[i][i] != 0 {
			t.Errorf("diagonal [%d] = %v", i, pred[i][i])
		}
		for j := 0; j < n; j++ {
			if i != j && pred[i][j] <= 0 {
				t.Errorf("prediction [%d][%d] = %v", i, j, pred[i][j])
			}
		}
	}
}

// TestPredictDCMatrixByVM checks association summing.
func TestPredictDCMatrixByVM(t *testing.T) {
	m, _ := trainSmall(t, 4)
	// 3 VMs: VMs 0,1 in DC0, VM 2 in DC1.
	feats := make([][]dataset.PairFeatures, 3)
	for i := range feats {
		feats[i] = make([]dataset.PairFeatures, 3)
	}
	pf := dataset.PairFeatures{N: 2, SnapshotMbps: 400, DistanceMiles: 3000}
	feats[0][2], feats[1][2] = pf, pf
	feats[2][0], feats[2][1] = pf, pf
	dcOf := []int{0, 0, 1}
	got := m.PredictDCMatrixByVM(feats, dcOf, 2)
	single := m.PredictPair(pf)
	if got[0][1] != 2*single {
		t.Errorf("DC0->DC1 = %v, want 2x single prediction %v", got[0][1], single)
	}
	if got[1][0] != 2*single {
		t.Errorf("DC1->DC0 = %v, want %v", got[1][0], 2*single)
	}
}

// TestStalenessFlagRaisesAndClears exercises §3.3.4: persistent
// significant errors raise the retrain flag; warm-start retraining on
// the banked rows clears it.
func TestStalenessFlagRaisesAndClears(t *testing.T) {
	m, _ := trainSmall(t, 5)
	n := 3
	feats := make([][]dataset.PairFeatures, n)
	actual := bwmatrix.New(n)
	for i := range feats {
		feats[i] = make([]dataset.PairFeatures, n)
		for j := range feats[i] {
			if i != j {
				feats[i][j] = dataset.PairFeatures{N: n, SnapshotMbps: 300, DistanceMiles: 4000}
				// Actual values wildly different from anything the
				// model could predict from these features.
				actual[i][j] = m.PredictPair(feats[i][j]) + 500
			}
		}
	}
	if m.NeedsRetrain() {
		t.Fatal("fresh model already flagged")
	}
	for k := 0; k < 12 && !m.NeedsRetrain(); k++ {
		m.ObserveActual(feats, actual)
	}
	if !m.NeedsRetrain() {
		t.Fatal("flag not raised after persistent significant errors")
	}
	if m.PendingRows() == 0 {
		t.Fatal("no rows banked for retraining")
	}
	trees := m.Forest().NumTrees()
	if err := m.Retrain(rf.Dataset{}, 10); err != nil {
		t.Fatal(err)
	}
	if m.NeedsRetrain() {
		t.Error("flag not cleared by retraining")
	}
	if m.Forest().NumTrees() != trees+10 {
		t.Errorf("tree count %d, want %d", m.Forest().NumTrees(), trees+10)
	}
	if m.PendingRows() != 0 {
		t.Error("banked rows not consumed")
	}
}

// TestAccurateObservationsDoNotFlag checks the flag stays down when
// predictions match reality.
func TestAccurateObservationsDoNotFlag(t *testing.T) {
	m, _ := trainSmall(t, 6)
	n := 3
	feats := make([][]dataset.PairFeatures, n)
	actual := bwmatrix.New(n)
	for i := range feats {
		feats[i] = make([]dataset.PairFeatures, n)
		for j := range feats[i] {
			if i != j {
				feats[i][j] = dataset.PairFeatures{N: n, SnapshotMbps: 300, DistanceMiles: 4000}
				actual[i][j] = m.PredictPair(feats[i][j]) // perfect match
			}
		}
	}
	for k := 0; k < 15; k++ {
		m.ObserveActual(feats, actual)
	}
	if m.NeedsRetrain() {
		t.Error("flag raised despite accurate predictions")
	}
}

// TestRetrainWithoutDataErrors checks the error path.
func TestRetrainWithoutDataErrors(t *testing.T) {
	m, _ := trainSmall(t, 7)
	if err := m.Retrain(rf.Dataset{}, 5); err == nil {
		t.Error("retrain with nothing banked should error")
	}
}

// TestSnapshotToPredictionPipeline runs the real online path end to
// end: snapshot features from a live sim, predict, compare to a
// measured stable matrix — prediction must beat the raw snapshot on
// far links (where the 1-second probe underreports).
func TestSnapshotToPredictionPipeline(t *testing.T) {
	m, _ := trainSmall(t, 8)
	// A fresh cluster the model has never seen.
	sims, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{6}, DrawsPerSize: 1, Seed: 99})
	if sims.Len() != 30 {
		t.Fatalf("unexpected session size %d", sims.Len())
	}
	pred := m.Forest().PredictBatch(sims.X)
	within := 0
	for i := range pred {
		d := pred[i] - sims.Y[i]
		if d < 0 {
			d = -d
		}
		if d <= SignificantMbps {
			within++
		}
	}
	frac := float64(within) / float64(len(pred))
	if frac < 0.7 {
		t.Errorf("out-of-cluster accuracy %.2f, want >= 0.7", frac)
	}
	t.Logf("unseen-cluster accuracy at 100 Mbps: %.2f", frac)
}
