package predict

import (
	"testing"

	"github.com/wanify/wanify/internal/ml/dataset"
)

// fpFeatures builds a small feature matrix with every off-diagonal
// pair set to the same values.
func fpFeatures(n int, mbps float64) [][]dataset.PairFeatures {
	out := make([][]dataset.PairFeatures, n)
	for i := range out {
		out[i] = make([]dataset.PairFeatures, n)
		for j := range out[i] {
			if i == j {
				continue
			}
			out[i][j] = dataset.PairFeatures{
				N:             n,
				SnapshotMbps:  mbps,
				MemUtilDst:    0.42,
				CPULoadSrc:    0.31,
				RetransSrc:    2.5,
				DistanceMiles: float64(1000 + 100*i + 10*j),
			}
		}
	}
	return out
}

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint(fpFeatures(4, 500), 0)
	b := Fingerprint(fpFeatures(4, 500), 0)
	if a != b {
		t.Fatalf("identical features hashed differently: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatalf("suspicious zero fingerprint")
	}
}

func TestFingerprintQuantizationAbsorbsWobble(t *testing.T) {
	base := Fingerprint(fpFeatures(4, 500), 0)
	// 500 and 520 Mbps land in the same 50 Mbps bucket ([500, 550)).
	wobble := Fingerprint(fpFeatures(4, 520), 0)
	if base != wobble {
		t.Fatalf("within-bucket wobble changed the fingerprint")
	}
	// A regime shift of several buckets must move it.
	shifted := Fingerprint(fpFeatures(4, 200), 0)
	if base == shifted {
		t.Fatalf("300 Mbps regime shift did not change the fingerprint")
	}
}

func TestFingerprintSeesTopology(t *testing.T) {
	if Fingerprint(fpFeatures(4, 500), 0) == Fingerprint(fpFeatures(5, 500), 0) {
		t.Fatalf("cluster size change did not change the fingerprint")
	}
	a := fpFeatures(4, 500)
	b := fpFeatures(4, 500)
	b[1][2].DistanceMiles += 5 // a topology edit, however small
	if Fingerprint(a, 0) == Fingerprint(b, 0) {
		t.Fatalf("distance change did not change the fingerprint")
	}
}

func TestFingerprintQuantKnob(t *testing.T) {
	// A coarser bucket merges regimes the default separates.
	a := fpFeatures(4, 500)
	b := fpFeatures(4, 620)
	if Fingerprint(a, 50) == Fingerprint(b, 50) {
		t.Fatalf("120 Mbps apart should differ at 50 Mbps buckets")
	}
	if Fingerprint(a, 1000) != Fingerprint(b, 1000) {
		t.Fatalf("120 Mbps apart should merge at 1000 Mbps buckets")
	}
}
