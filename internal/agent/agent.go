// Package agent implements WANify's Local Agent (§3.2.2, §4.1.3): the
// per-VM runtime component that fine-tunes the heterogeneous connection
// counts inside the [minCons, maxCons] window computed by the global
// optimizer.
//
// Each agent bundles the paper's three sub-modules:
//
//   - WAN Monitor: ifTop-like accounting of the VM's achieved outbound
//     rate toward every destination DC (derived from the bytes its
//     registered transfers moved during the last epoch).
//   - Local Optimizer: an AIMD loop on a 5-second epoch. Targets start
//     at the maximum of the window; when the monitored rate falls
//     significantly (>100 Mbps) below target — congestion — connections
//     and target BW halve (not below the minimum); otherwise they climb
//     additively (+1 connection, linear BW) back toward the maximum.
//     Pairs that moved less than 1 MB in the epoch are skipped, since
//     an idle link says nothing about congestion.
//   - Connections Manager: applies the chosen counts to the active
//     transfer pool and answers "how many connections should a new
//     transfer to DC j use?".
//
// Agents also throttle BW-rich destinations (simulated `tc`): links
// whose achievable bandwidth exceeds the source's mean achievable
// bandwidth T are capped at T, so nearby DCs cannot starve distant ones.
package agent

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/substrate"
)

// Mode is the AIMD decision an agent took for a pair in an epoch.
type Mode int8

// AIMD modes.
const (
	ModeIdle     Mode = iota // skipped: < MinTransferBytes moved
	ModeIncrease             // additive increase
	ModeDecrease             // multiplicative decrease
)

// Config configures a local agent.
type Config struct {
	// EpochS is the AIMD epoch (default 5 s, §5.7).
	EpochS float64
	// SignificantMbps is the congestion threshold Δ (default 100 Mbps).
	SignificantMbps float64
	// MinTransferBytes is the per-epoch transfer size below which a
	// pair is skipped (default 1 MB, §3.2.2).
	MinTransferBytes float64
	// Throttle enables BW-rich link throttling via simulated `tc`.
	Throttle bool
}

func (c Config) withDefaults() Config {
	if c.EpochS == 0 {
		c.EpochS = 5
	}
	if c.SignificantMbps == 0 {
		c.SignificantMbps = 100
	}
	if c.MinTransferBytes == 0 {
		c.MinTransferBytes = 1 << 20
	}
	return c
}

// PlanRow is the slice of a global-optimization Plan that concerns one
// source VM: per-destination-DC connection windows and BW targets. For
// multi-VM DCs the caller chunks the DC-level plan first
// (optimize.SplitAcrossVMs).
type PlanRow struct {
	MinConns, MaxConns []int
	MinBW, MaxBW       []float64
	// PredBW is the predicted per-connection runtime bandwidth toward
	// each destination; the linear achievable-BW model (Eq. 3) scales
	// it by the connection count.
	PredBW []float64
}

// ChunkPlan splits a DC-level global plan into one PlanRow per VM (the
// association/chunking path of §3.3.3): each VM gets its
// optimize.SplitAcrossVMs share of the DC's connection window and the
// per-VM slice of the DC's predicted bandwidth. The per-DC sum of the
// VM chunks equals the DC-level window exactly — when a DC has more
// VMs than connections the spare slots go to the lowest-index VMs and
// the rest get a zero window (their transfers still open one physical
// connection, the ConnsTo floor, but their AIMD targets stay down so
// the DC as a whole honors the optimizer's cap). An earlier version
// floored every chunk at one connection, which let k VMs oversubscribe
// a window of conns < k; see TestChunkPlanSumsToGlobalPlan. Both
// initial deployment (wanify.Framework.DeployAgents) and mid-job
// window swaps (internal/runtime) chunk through here, so a re-gauged
// plan lands on every agent exactly the way the original one did.
func ChunkPlan(sim substrate.Cluster, pred bwmatrix.Matrix, plan optimize.Plan) map[substrate.VMID]PlanRow {
	n := sim.NumDCs()
	rows := make(map[substrate.VMID]PlanRow, sim.NumVMs())
	minParts := make([]int, 0, 8)
	maxParts := make([]int, 0, 8)
	for dc := 0; dc < n; dc++ {
		vms := sim.VMsOfDC(dc)
		k := len(vms)
		vmRows := make([]PlanRow, k)
		for idx := range vmRows {
			vmRows[idx] = PlanRow{
				MinConns: make([]int, n),
				MaxConns: make([]int, n),
				MinBW:    make([]float64, n),
				MaxBW:    make([]float64, n),
				PredBW:   make([]float64, n),
			}
		}
		for j := 0; j < n; j++ {
			if j == dc {
				for idx := range vmRows {
					vmRows[idx].MinConns[j], vmRows[idx].MaxConns[j] = 1, 1
				}
				continue
			}
			minParts = append(minParts[:0], optimize.SplitAcrossVMs(plan.MinConns[dc][j], k)...)
			maxParts = append(maxParts[:0], optimize.SplitAcrossVMs(plan.MaxConns[dc][j], k)...)
			perVM := pred[dc][j] / float64(k)
			for idx := range vmRows {
				minChunk, maxChunk := minParts[idx], maxParts[idx]
				if maxChunk < minChunk {
					// SplitAcrossVMs is per-index monotone in the count, so
					// this can only mean the plan itself had min > max —
					// surface the malformed plan rather than silently
					// widening a chunk past the DC window.
					panic(fmt.Sprintf("agent: plan window min %d > max %d on pair (%d,%d)",
						plan.MinConns[dc][j], plan.MaxConns[dc][j], dc, j))
				}
				vmRows[idx].MinConns[j] = minChunk
				vmRows[idx].MaxConns[j] = maxChunk
				// Per-VM share of the DC-level predicted bandwidth.
				vmRows[idx].PredBW[j] = perVM
				vmRows[idx].MinBW[j] = perVM * float64(minChunk)
				vmRows[idx].MaxBW[j] = perVM * float64(maxChunk)
			}
		}
		for idx, vm := range vms {
			rows[vm] = vmRows[idx]
		}
	}
	return rows
}

// RowFor extracts the plan row of source DC i from a global Plan.
func RowFor(plan optimize.Plan, pred bwmatrix.Matrix, i int) PlanRow {
	n := len(plan.MinConns)
	row := PlanRow{
		MinConns: make([]int, n),
		MaxConns: make([]int, n),
		MinBW:    make([]float64, n),
		MaxBW:    make([]float64, n),
		PredBW:   make([]float64, n),
	}
	copy(row.MinConns, plan.MinConns[i])
	copy(row.MaxConns, plan.MaxConns[i])
	copy(row.MinBW, plan.MinBW[i])
	copy(row.MaxBW, plan.MaxBW[i])
	copy(row.PredBW, pred[i])
	return row
}

// EpochRecord captures one AIMD epoch for analysis (Fig. 9 computes the
// standard deviation of TargetBW across destinations per epoch).
type EpochRecord struct {
	Now       float64
	TargetBW  []float64
	Monitored []float64
	Conns     []int
	Modes     []Mode
}

// Agent is a local agent bound to one VM.
type Agent struct {
	sim substrate.Cluster
	vm  substrate.VMID
	dc  int
	cfg Config

	row        PlanRow
	conns      []int     // current target connections per destination DC
	targetBW   []float64 // current target bandwidth per destination DC
	active     []substrate.Flow
	lastBytes  map[substrate.FlowID]float64
	epochBytes []float64 // per destination DC, bytes moved this epoch
	monitored  []float64 // last epoch's WAN-monitor rates, Mbps per destination DC

	history []EpochRecord
	cancel  func()
	started bool
}

// New creates an agent for the given VM. ApplyPlan must be called
// before Start.
func New(sim substrate.Cluster, vm substrate.VMID, cfg Config) *Agent {
	return &Agent{
		sim:       sim,
		vm:        vm,
		dc:        sim.DCOf(vm),
		cfg:       cfg.withDefaults(),
		lastBytes: make(map[substrate.FlowID]float64),
	}
}

// DC returns the agent's data center index.
func (a *Agent) DC() int { return a.dc }

// VM returns the agent's VM.
func (a *Agent) VM() substrate.VMID { return a.vm }

// ApplyPlan installs (or replaces) the optimization window and resets
// targets to the maximum configuration, the AIMD starting state chosen
// "as the initial state ... begins from maximum throughput and
// gradually reduces with congestion" (§3.2.2).
func (a *Agent) ApplyPlan(row PlanRow) {
	n := a.sim.NumDCs()
	if len(row.MinConns) != n || len(row.MaxConns) != n || len(row.MinBW) != n ||
		len(row.MaxBW) != n || len(row.PredBW) != n {
		panic(fmt.Sprintf("agent: plan row width != %d DCs", n))
	}
	a.row = row
	a.conns = append([]int(nil), row.MaxConns...)
	a.targetBW = append([]float64(nil), row.MaxBW...)
	a.epochBytes = make([]float64, n)
	if a.cfg.Throttle {
		a.applyThrottles()
	}
}

// applyThrottles installs `tc` limits on BW-rich destinations: T is the
// mean achievable (max) BW from this DC; richer links are capped at T.
func (a *Agent) applyThrottles() {
	n := a.sim.NumDCs()
	sum, cnt := 0.0, 0
	for j := 0; j < n; j++ {
		if j != a.dc {
			sum += a.row.MaxBW[j]
			cnt++
		}
	}
	if cnt == 0 {
		return
	}
	t := sum / float64(cnt)
	for j := 0; j < n; j++ {
		if j == a.dc {
			continue
		}
		if a.row.MaxBW[j] > t {
			a.sim.SetPairLimit(a.dc, j, t)
		} else {
			a.sim.ClearPairLimit(a.dc, j)
		}
	}
}

// Start begins the AIMD epochs.
func (a *Agent) Start() {
	if a.started {
		return
	}
	if a.conns == nil {
		panic("agent: Start before ApplyPlan")
	}
	a.started = true
	a.cancel = a.sim.Every(a.cfg.EpochS, a.epoch)
}

// Stop halts the AIMD loop and removes this agent's throttles.
func (a *Agent) Stop() {
	if !a.started {
		return
	}
	a.started = false
	a.cancel()
	if a.cfg.Throttle {
		for j := 0; j < a.sim.NumDCs(); j++ {
			if j != a.dc {
				a.sim.ClearPairLimit(a.dc, j)
			}
		}
	}
}

// ConnsTo returns the connection count a new transfer from this VM to
// dstDC should open — the Connections Manager's answer.
func (a *Agent) ConnsTo(dstDC int) int {
	if a.conns == nil || dstDC == a.dc {
		return 1
	}
	c := a.conns[dstDC]
	if c < 1 {
		return 1
	}
	return c
}

// Register adds an active transfer to the agent's pool so the
// Connections Manager can resize it and the WAN Monitor can account its
// bytes. Only flows originating at the agent's VM are accepted.
func (a *Agent) Register(f substrate.Flow) {
	if f.Src() != a.vm {
		panic("agent: registering a flow from another VM")
	}
	a.active = append(a.active, f)
	a.lastBytes[f.ID()] = f.TransferredBytes()
}

// TargetBW returns a copy of the current per-destination target
// bandwidths.
func (a *Agent) TargetBW() []float64 {
	return append([]float64(nil), a.targetBW...)
}

// MonitoredMbps returns a copy of the WAN Monitor's achieved rates from
// the most recent AIMD epoch (Mbps per destination DC), or nil before
// the first epoch has run. The runtime re-gauging controller
// (internal/runtime) aggregates these across agents into the live
// cluster bandwidth matrix it checks the global plan against.
func (a *Agent) MonitoredMbps() []float64 {
	if a.monitored == nil {
		return nil
	}
	return append([]float64(nil), a.monitored...)
}

// ActivePool returns the per-destination count of registered transfers
// still in flight — the Connections Manager's demand signal. The
// re-gauging controller uses it to tell a quiet link (no demand, says
// nothing about the plan) from a dead one (demand present but nothing
// delivered), which would otherwise hide below any live-rate floor.
func (a *Agent) ActivePool() []int {
	out := make([]int, a.sim.NumDCs())
	for _, f := range a.active {
		if !f.Done() {
			out[a.sim.DCOf(f.Dst())]++
		}
	}
	return out
}

// Conns returns a copy of the current per-destination connection
// targets.
func (a *Agent) Conns() []int {
	return append([]int(nil), a.conns...)
}

// History returns the recorded AIMD epochs.
func (a *Agent) History() []EpochRecord { return a.history }

// epoch runs one AIMD step.
func (a *Agent) epoch(now float64) {
	if !a.sim.VMAlive(a.vm) {
		// A dead VM's agent is gone with its host: no AIMD decisions, no
		// throttle writes, no monitor updates — the controller's
		// aggregation skips it and evacuation routes around its DC.
		return
	}
	n := a.sim.NumDCs()
	monitored := make([]float64, n)
	for j := range a.epochBytes {
		a.epochBytes[j] = 0
	}

	// WAN Monitor: account bytes moved by the registered pool since the
	// last epoch, dropping completed flows.
	kept := a.active[:0]
	for _, f := range a.active {
		moved := f.TransferredBytes() - a.lastBytes[f.ID()]
		dst := a.sim.DCOf(f.Dst())
		a.epochBytes[dst] += moved
		if f.Done() {
			delete(a.lastBytes, f.ID())
			continue
		}
		a.lastBytes[f.ID()] = f.TransferredBytes()
		kept = append(kept, f)
	}
	a.active = kept
	for j := 0; j < n; j++ {
		monitored[j] = a.epochBytes[j] * 8 / 1e6 / a.cfg.EpochS // Mbps
	}

	modes := make([]Mode, n)
	for j := 0; j < n; j++ {
		if j == a.dc {
			continue
		}
		// Skip rule: a pair that moved almost nothing tells us nothing.
		if a.epochBytes[j] < a.cfg.MinTransferBytes {
			modes[j] = ModeIdle
			continue
		}
		if a.targetBW[j]-monitored[j] > a.cfg.SignificantMbps {
			// Multiplicative decrease: congestion.
			modes[j] = ModeDecrease
			a.conns[j] = maxInt(a.row.MinConns[j], a.conns[j]/2)
			a.targetBW[j] = math.Max(a.row.MinBW[j], a.targetBW[j]/2)
		} else {
			// Additive increase back toward the maximum configuration.
			modes[j] = ModeIncrease
			if a.conns[j] < a.row.MaxConns[j] {
				a.conns[j]++
			}
			a.targetBW[j] = math.Min(a.row.MaxBW[j],
				math.Max(a.targetBW[j], float64(a.conns[j])*a.row.PredBW[j]))
		}
		// Resize the live pool toward the new target.
		for _, f := range a.active {
			if a.sim.DCOf(f.Dst()) == j {
				f.SetConns(a.conns[j])
			}
		}
	}

	a.monitored = monitored
	a.history = append(a.history, EpochRecord{
		Now:       now,
		TargetBW:  append([]float64(nil), a.targetBW...),
		Monitored: monitored,
		Conns:     append([]int(nil), a.conns...),
		Modes:     modes,
	})
}

// SwapWindow atomically replaces the agent's optimization window with a
// re-gauged plan row while the AIMD loop keeps running — the mid-job
// rebalance path (internal/runtime). Unlike ApplyPlan it preserves the
// AIMD state: the current connection counts and target bandwidths are
// clamped into the new [min, max] window rather than reset to the
// maximum configuration, so a congested pair does not restart at full
// throttle and an upgraded pair is lifted to its new floor. Live
// transfers in the pool are resized to the clamped counts immediately
// (remaining shuffle bytes rebalance without waiting for the next
// epoch), and the tc thresholds are recomputed from the new achievable
// bandwidths when throttling is on.
func (a *Agent) SwapWindow(row PlanRow) {
	if a.conns == nil {
		panic("agent: SwapWindow before ApplyPlan")
	}
	n := a.sim.NumDCs()
	if len(row.MinConns) != n || len(row.MaxConns) != n || len(row.MinBW) != n ||
		len(row.MaxBW) != n || len(row.PredBW) != n {
		panic(fmt.Sprintf("agent: plan row width != %d DCs", n))
	}
	a.row = row
	for j := 0; j < n; j++ {
		if j == a.dc {
			continue
		}
		if a.conns[j] < row.MinConns[j] {
			a.conns[j] = row.MinConns[j]
		}
		if a.conns[j] > row.MaxConns[j] {
			a.conns[j] = row.MaxConns[j]
		}
		a.targetBW[j] = math.Min(row.MaxBW[j], math.Max(row.MinBW[j], a.targetBW[j]))
		for _, f := range a.active {
			if !f.Done() && a.sim.DCOf(f.Dst()) == j {
				f.SetConns(a.conns[j])
			}
		}
	}
	if a.cfg.Throttle {
		a.applyThrottles()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
