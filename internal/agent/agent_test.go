package agent

import (
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *netsim.Sim {
	cfg := netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return netsim.NewSim(cfg)
}

// planRowFor builds a simple plan row: window [1, maxC] with the given
// per-connection predicted BW on every destination.
func planRowFor(n, dc, maxC int, predBW float64) PlanRow {
	row := PlanRow{
		MinConns: make([]int, n), MaxConns: make([]int, n),
		MinBW: make([]float64, n), MaxBW: make([]float64, n),
		PredBW: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		if j == dc {
			row.MinConns[j], row.MaxConns[j] = 1, 1
			continue
		}
		row.MinConns[j], row.MaxConns[j] = 1, maxC
		row.PredBW[j] = predBW
		row.MinBW[j] = predBW
		row.MaxBW[j] = predBW * float64(maxC)
	}
	return row
}

// TestStartsAtMaximum checks the §3.2.2 initial state: targets begin at
// the maximum configuration.
func TestStartsAtMaximum(t *testing.T) {
	sim := frozenSim(3, 1)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 6, 200))
	if got := a.ConnsTo(1); got != 6 {
		t.Errorf("initial conns = %d, want max 6", got)
	}
	if got := a.TargetBW()[1]; got != 1200 {
		t.Errorf("initial target BW = %v, want 1200", got)
	}
	if got := a.ConnsTo(0); got != 1 {
		t.Errorf("own-DC conns = %d, want 1", got)
	}
}

// TestMultiplicativeDecreaseOnCongestion checks the AIMD decrease path:
// when the monitored rate is significantly below target, connections
// halve (not below min) and target BW halves (not below min BW).
func TestMultiplicativeDecreaseOnCongestion(t *testing.T) {
	sim := frozenSim(3, 2)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	// Pretend the link can sustain 8x800 Mbps; reality will deliver far
	// less (per-conn cap to AP SE is ~120), so decrease mode must kick in.
	row := planRowFor(3, 0, 8, 800)
	a.ApplyPlan(row)
	a.Start()
	defer a.Stop()

	// A big transfer toward DC 2 (AP SE), registered with the agent.
	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), a.ConnsTo(2), 10e9, nil)
	a.Register(f)
	sim.RunFor(11) // two epochs

	hist := a.History()
	if len(hist) < 2 {
		t.Fatalf("%d epochs recorded", len(hist))
	}
	if hist[0].Modes[2] != ModeDecrease {
		t.Errorf("epoch 0 mode = %v, want decrease", hist[0].Modes[2])
	}
	if got := a.Conns()[2]; got >= 8 {
		t.Errorf("conns after congestion = %d, want halved", got)
	}
	if got := a.TargetBW()[2]; got >= 6400 {
		t.Errorf("target BW after congestion = %v, want halved", got)
	}
	f.Stop()
}

// TestAdditiveIncreaseWhenHealthy checks the increase path: when the
// monitored rate matches the target, connections climb by one per epoch
// toward the maximum.
func TestAdditiveIncreaseWhenHealthy(t *testing.T) {
	sim := frozenSim(3, 3)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	// Realistic target: per-conn prediction ~matches the actual cap for
	// US East -> US West (1700), so the link delivers what is promised.
	row := planRowFor(3, 0, 4, 1700)
	// Start from the low end to watch the climb.
	a.ApplyPlan(row)
	a.conns[1] = 1
	a.targetBW[1] = 1700
	a.Start()
	defer a.Stop()

	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 1, 20e9, nil)
	a.Register(f)
	sim.RunFor(16) // three epochs

	hist := a.History()
	sawIncrease := false
	for _, rec := range hist {
		if rec.Modes[1] == ModeIncrease {
			sawIncrease = true
		}
	}
	if !sawIncrease {
		t.Error("no additive-increase epoch despite healthy link")
	}
	if got := a.Conns()[1]; got <= 1 {
		t.Errorf("conns did not climb: %d", got)
	}
	f.Stop()
}

// TestIdleSkipRule checks the <1 MB rule: pairs that moved almost
// nothing are skipped, leaving targets untouched.
func TestIdleSkipRule(t *testing.T) {
	sim := frozenSim(3, 4)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 8, 800))
	a.Start()
	defer a.Stop()

	before := a.Conns()[1]
	sim.RunFor(11) // epochs pass with no traffic at all
	hist := a.History()
	for _, rec := range hist {
		if rec.Modes[1] != ModeIdle {
			t.Errorf("idle pair got mode %v", rec.Modes[1])
		}
	}
	if got := a.Conns()[1]; got != before {
		t.Errorf("idle pair's conns changed %d -> %d", before, got)
	}
}

// TestAIMDStaysWithinWindow property-checks the core AIMD invariant:
// connections never leave [minConns, maxConns] regardless of traffic.
func TestAIMDStaysWithinWindow(t *testing.T) {
	f := func(seed uint64, maxC uint8, predBW uint16, epochs uint8) bool {
		sim := frozenSim(3, seed)
		mc := int(maxC%8) + 1
		a := New(sim, sim.FirstVMOfDC(0), Config{})
		a.ApplyPlan(planRowFor(3, 0, mc, float64(predBW%2000)+50))
		a.Start()
		defer a.Stop()
		fl := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), a.ConnsTo(2), 1e12, nil)
		a.Register(fl)
		sim.RunFor(float64(epochs%10)*5 + 6)
		fl.Stop()
		for j, c := range a.Conns() {
			if j == 0 {
				continue
			}
			if c < 1 || c > mc {
				return false
			}
		}
		for j, bw := range a.TargetBW() {
			if j == 0 {
				continue
			}
			if bw < 0 || bw > a.row.MaxBW[j]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestThrottleInstallsAndClears checks §3.2.2's TC throttling: links
// richer than the row mean get capped at the mean; Stop removes caps.
func TestThrottleInstallsAndClears(t *testing.T) {
	sim := frozenSim(3, 5)
	a := New(sim, sim.FirstVMOfDC(0), Config{Throttle: true})
	row := planRowFor(3, 0, 8, 100)
	// Make destination 1 rich (its maxBW far above the mean).
	row.MaxBW[1] = 5000
	row.MaxBW[2] = 500
	a.ApplyPlan(row) // T = (5000+500)/2 = 2750: only dst 1 throttled
	a.Start()

	probe := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 8)
	sim.RunFor(5)
	if got := probe.Rate(); got > 2750.001 {
		t.Errorf("throttled rate %v exceeds threshold 2750", got)
	}
	a.Stop()
	sim.RunFor(5)
	if got := probe.Rate(); got <= 2750.001 && got < 2800 {
		// After clearing, the 8-conn probe should exceed the cap again
		// (per-conn cap to US West is ~1700, egress 2400 binds).
		t.Logf("post-clear rate %v (egress-bound)", got)
	}
	probe.Stop()
}

// TestRowForExtractsPlan checks the optimize.Plan -> PlanRow bridge.
func TestRowForExtractsPlan(t *testing.T) {
	pred := bwmatrix.New(3)
	pred[0] = []float64{0, 400, 120}
	pred[1] = []float64{380, 0, 130}
	pred[2] = []float64{110, 120, 0}
	plan := optimize.GlobalOptimize(pred, optimize.Options{M: 8, D: 30})
	row := RowFor(plan, pred, 0)
	if row.MaxConns[2] != plan.MaxConns[0][2] {
		t.Errorf("row maxConns %d != plan %d", row.MaxConns[2], plan.MaxConns[0][2])
	}
	if row.PredBW[1] != 400 {
		t.Errorf("row predBW = %v", row.PredBW[1])
	}
	if row.MaxBW[2] != plan.MaxBW[0][2] {
		t.Errorf("row maxBW = %v", row.MaxBW[2])
	}
}

// TestRegisterRejectsForeignFlows checks the ownership guard.
func TestRegisterRejectsForeignFlows(t *testing.T) {
	sim := frozenSim(3, 6)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 4, 100))
	f := sim.StartFlow(sim.FirstVMOfDC(1), sim.FirstVMOfDC(2), 1, 1e6, nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic registering another VM's flow")
		}
		f.Stop()
	}()
	a.Register(f)
}

// TestStartBeforePlanPanics checks the usage guard.
func TestStartBeforePlanPanics(t *testing.T) {
	sim := frozenSim(2, 7)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	defer func() {
		if recover() == nil {
			t.Error("no panic on Start before ApplyPlan")
		}
	}()
	a.Start()
}

// TestPoolResizing checks the Connections Manager applies new counts to
// live registered flows.
func TestPoolResizing(t *testing.T) {
	sim := frozenSim(3, 8)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 8, 800)) // wildly optimistic targets
	a.Start()
	defer a.Stop()
	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), 8, 50e9, nil)
	a.Register(f)
	sim.RunFor(6) // one congested epoch halves the pool
	if f.Conns() >= 8 {
		t.Errorf("live flow still at %d conns after decrease epoch", f.Conns())
	}
	f.Stop()
}

// stubFlow is a controllable substrate.Flow for exercising the WAN
// Monitor's byte accounting at exact boundaries.
type stubFlow struct {
	id       substrate.FlowID
	src, dst substrate.VMID
	conns    int
	bytes    float64
	done     bool
}

func (f *stubFlow) ID() substrate.FlowID      { return f.id }
func (f *stubFlow) Src() substrate.VMID       { return f.src }
func (f *stubFlow) Dst() substrate.VMID       { return f.dst }
func (f *stubFlow) Conns() int                { return f.conns }
func (f *stubFlow) SetConns(n int)            { f.conns = n }
func (f *stubFlow) Rate() float64             { return 0 }
func (f *stubFlow) TransferredBytes() float64 { return f.bytes }
func (f *stubFlow) RemainingBytes() float64   { return 0 }
func (f *stubFlow) Done() bool                { return f.done }
func (f *stubFlow) Probe() bool               { return false }
func (f *stubFlow) Stop()                     { f.done = true }
func (f *stubFlow) Failed() bool              { return false }
func (f *stubFlow) OnFail(func())             {}

// TestMinTransferBytesBoundary pins the §3.2.2 skip rule at its exact
// boundary: a pair that moved one byte less than MinTransferBytes is
// skipped as idle, while a pair at exactly MinTransferBytes
// participates in AIMD.
func TestMinTransferBytesBoundary(t *testing.T) {
	const minBytes = 1 << 20
	for _, tc := range []struct {
		name     string
		moved    float64
		wantIdle bool
	}{
		{"one-under", minBytes - 1, true},
		{"exactly-at", minBytes, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim := frozenSim(3, 10)
			a := New(sim, sim.FirstVMOfDC(0), Config{})
			a.ApplyPlan(planRowFor(3, 0, 8, 800))
			f := &stubFlow{src: a.VM(), dst: sim.FirstVMOfDC(1), conns: 1}
			a.Register(f)
			f.bytes = tc.moved
			a.epoch(5)
			rec := a.History()[0]
			if gotIdle := rec.Modes[1] == ModeIdle; gotIdle != tc.wantIdle {
				t.Errorf("moved %.0f bytes: idle = %v, want %v", tc.moved, gotIdle, tc.wantIdle)
			}
			if !tc.wantIdle && rec.Modes[1] != ModeDecrease {
				// 1 MB over 5 s is ~1.7 Mbps against an 800 Mbps target:
				// participating means seeing congestion here.
				t.Errorf("boundary pair mode = %v, want decrease", rec.Modes[1])
			}
		})
	}
}

// TestWindowCollapse pins the degenerate window minCons == maxCons:
// AIMD has no room, so connection counts never move in either mode and
// targets stay pinned to the single configuration.
func TestWindowCollapse(t *testing.T) {
	sim := frozenSim(3, 11)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	row := planRowFor(3, 0, 1, 800)
	for j := 1; j < 3; j++ {
		row.MinConns[j], row.MaxConns[j] = 3, 3
		row.MinBW[j], row.MaxBW[j] = 3*800, 3*800
	}
	a.ApplyPlan(row)
	a.Start()
	defer a.Stop()

	// Congested traffic (way below the 2400 Mbps target) for several
	// epochs: decrease mode fires but cannot leave the window.
	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), a.ConnsTo(2), 100e9, nil)
	a.Register(f)
	sim.RunFor(21)
	sawDecrease := false
	for _, rec := range a.History() {
		if rec.Conns[2] != 3 {
			t.Errorf("collapsed window moved to %d conns", rec.Conns[2])
		}
		if rec.Modes[2] == ModeDecrease {
			sawDecrease = true
		}
		if rec.TargetBW[2] != 2400 {
			t.Errorf("collapsed window target moved to %v", rec.TargetBW[2])
		}
	}
	if !sawDecrease {
		t.Error("congestion never detected (test premise broken)")
	}
	f.Stop()
}

// TestSwapWindowClampsAndResizes checks the mid-job swap path the
// re-gauging controller uses: current state is clamped into the new
// window (not reset), and live flows resize immediately.
func TestSwapWindowClampsAndResizes(t *testing.T) {
	sim := frozenSim(3, 12)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 8, 800)) // starts at 8 conns, target 6400
	a.Start()
	defer a.Stop()
	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), a.ConnsTo(1), 50e9, nil)
	a.Register(f)

	// Shrink: window [1, 2] — conns and target clamp down, pool resizes.
	down := planRowFor(3, 0, 2, 800)
	a.SwapWindow(down)
	if got := a.Conns()[1]; got != 2 {
		t.Errorf("conns after shrink swap = %d, want 2", got)
	}
	if got := f.Conns(); got != 2 {
		t.Errorf("live flow conns after swap = %d, want 2", got)
	}
	if got := a.TargetBW()[1]; got != 1600 {
		t.Errorf("target after shrink swap = %v, want clamped 1600", got)
	}

	// Raise the floor: window [4, 6] — conns lift to the new minimum.
	up := planRowFor(3, 0, 6, 800)
	for j := 1; j < 3; j++ {
		up.MinConns[j] = 4
		up.MinBW[j] = 4 * 800
	}
	a.SwapWindow(up)
	if got := a.Conns()[1]; got != 4 {
		t.Errorf("conns after floor-raise swap = %d, want lifted to 4", got)
	}
	if got := f.Conns(); got != 4 {
		t.Errorf("live flow conns after floor-raise = %d, want 4", got)
	}
	f.Stop()
}

// TestThrottleTracksWindowSwap checks the `tc` interaction with a
// mid-epoch swap: the throttle threshold is recomputed from the new
// achievable bandwidths, re-capping a link that the old plan throttled
// at a now-stale level, and the next AIMD epoch runs against the new
// caps without disturbance.
func TestThrottleTracksWindowSwap(t *testing.T) {
	sim := frozenSim(3, 13)
	a := New(sim, sim.FirstVMOfDC(0), Config{Throttle: true})
	row := planRowFor(3, 0, 8, 100)
	row.MaxBW[1] = 5000 // rich: throttled at T = (5000+500)/2 = 2750
	row.MaxBW[2] = 500
	a.ApplyPlan(row)
	a.Start()
	defer a.Stop()

	probe := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 8)
	sim.RunFor(2.5) // mid-epoch
	if got := probe.Rate(); got > 2750.001 {
		t.Fatalf("pre-swap throttled rate %v exceeds 2750", got)
	}

	// Re-gauged plan: destination 1 is now believed far poorer, so the
	// threshold drops to T = (900+500)/2 = 700 and the cap tightens.
	swapped := planRowFor(3, 0, 8, 100)
	swapped.MaxBW[1] = 900
	swapped.MaxBW[2] = 500
	a.SwapWindow(swapped)
	sim.RunFor(1)
	if got := probe.Rate(); got > 700.001 {
		t.Errorf("post-swap throttled rate %v exceeds new threshold 700", got)
	}

	// The next epoch still runs (mid-epoch swap does not wedge AIMD).
	sim.RunFor(3)
	if len(a.History()) == 0 {
		t.Error("no AIMD epoch after mid-epoch swap")
	}
	probe.Stop()

	// Stop clears the swapped throttle too.
	a.Stop()
	probe2 := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 8)
	sim.RunFor(2)
	if got := probe2.Rate(); got <= 700.001 {
		t.Errorf("throttle survived Stop: rate %v", got)
	}
	probe2.Stop()
}

// TestAIMDReactsToBlackout injects a link failure (a near-zero `tc`
// limit standing in for a blackout) and checks the agent collapses its
// targets toward the minimum, then recovers after the link heals. The
// link under test is US East -> AP SE, whose per-connection cap
// (~120 Mbps) makes the full 8-connection target achievable, so
// recovery can climb all the way back.
func TestAIMDReactsToBlackout(t *testing.T) {
	sim := frozenSim(3, 9)
	perConn := sim.PerConnCapMbps(0, 2)
	a := New(sim, sim.FirstVMOfDC(0), Config{})
	a.ApplyPlan(planRowFor(3, 0, 8, perConn))
	a.Start()
	defer a.Stop()

	f := sim.StartFlow(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), a.ConnsTo(2), 100e9, nil)
	a.Register(f)
	sim.RunFor(6) // healthy epoch first

	// Blackout: the link delivers ~nothing (but >1 MB per epoch so the
	// idle-skip rule does not mask the signal).
	sim.SetPairLimit(0, 2, 5)
	sim.RunFor(21)
	if got := a.Conns()[2]; got != 1 {
		t.Errorf("conns during blackout = %d, want collapsed to 1", got)
	}

	// Heal and watch additive recovery.
	sim.ClearPairLimit(0, 2)
	sim.RunFor(26)
	if got := a.Conns()[2]; got < 3 {
		t.Errorf("conns after heal = %d, want climbing back", got)
	}
	f.Stop()
}

// multiVMSim builds a netsim cluster whose DC dc gets extra VMs, the
// association topology of §3.3.3 / sec583.
func multiVMSim(n int, extraPerDC []int, seed uint64) *netsim.Sim {
	regions := geo.TestbedSubset(n)
	vms := make([][]substrate.VMSpec, n)
	for i := range vms {
		vms[i] = []substrate.VMSpec{substrate.T2Medium}
		for k := 0; k < extraPerDC[i]; k++ {
			vms[i] = append(vms[i], substrate.T2Medium)
		}
	}
	cfg := netsim.Config{Regions: regions, VMs: vms, Seed: seed, Frozen: true}
	return netsim.NewSim(cfg)
}

// TestChunkPlanSumsToGlobalPlan is the property test of the
// oversubscription bugfix: however the VMs are spread over DCs, the
// per-DC sums of the VM-level connection windows must reproduce the
// DC-level plan exactly — in particular, a DC with more VMs than
// connections must NOT hand every VM a floor connection and blow the
// optimizer's cap.
func TestChunkPlanSumsToGlobalPlan(t *testing.T) {
	check := func(seedIn uint64, extraRaw [4]uint8, mRaw uint8) bool {
		n := 4
		extra := make([]int, n)
		for i := range extra {
			extra[i] = int(extraRaw[i] % 6) // 1..6 VMs per DC
		}
		sim := multiVMSim(n, extra, seedIn%64)
		pred := bwmatrix.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					pred[i][j] = 40 + float64((seedIn+uint64(i*7+j*3))%900)
				}
			}
		}
		plan := optimize.GlobalOptimize(pred, optimize.Options{M: 2 + int(mRaw%7)})
		rows := ChunkPlan(sim, pred, plan)
		for dc := 0; dc < n; dc++ {
			vms := sim.VMsOfDC(dc)
			for j := 0; j < n; j++ {
				if j == dc {
					continue
				}
				sumMin, sumMax := 0, 0
				for _, vm := range vms {
					row := rows[vm]
					if row.MinConns[j] > row.MaxConns[j] || row.MinConns[j] < 0 {
						t.Logf("dc %d vm %d pair %d: bad window [%d, %d]",
							dc, vm, j, row.MinConns[j], row.MaxConns[j])
						return false
					}
					sumMin += row.MinConns[j]
					sumMax += row.MaxConns[j]
				}
				if sumMin != plan.MinConns[dc][j] || sumMax != plan.MaxConns[dc][j] {
					t.Logf("dc %d->%d: chunk sums [%d, %d] != plan [%d, %d] (VMs %d)",
						dc, j, sumMin, sumMax, plan.MinConns[dc][j], plan.MaxConns[dc][j], len(vms))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkPlanSpareSlotsGoLow locks the tie-break: with a window of
// one connection over a three-VM DC, VM 0 gets the slot and the others
// a zero window.
func TestChunkPlanSpareSlotsGoLow(t *testing.T) {
	sim := multiVMSim(3, []int{2, 0, 0}, 5)
	pred := bwmatrix.NewFilled(3, 100)
	plan := optimize.GlobalOptimize(pred, optimize.Options{M: 8})
	// Force a one-connection window on DC 0's pairs.
	for j := 1; j < 3; j++ {
		plan.MinConns[0][j], plan.MaxConns[0][j] = 1, 1
		plan.MinBW[0][j], plan.MaxBW[0][j] = pred[0][j], pred[0][j]
	}
	rows := ChunkPlan(sim, pred, plan)
	vms := sim.VMsOfDC(0)
	for j := 1; j < 3; j++ {
		if got := rows[vms[0]].MaxConns[j]; got != 1 {
			t.Errorf("VM 0 pair %d: MaxConns = %d, want the single slot", j, got)
		}
		for _, vm := range vms[1:] {
			if got := rows[vm].MaxConns[j]; got != 0 {
				t.Errorf("VM %d pair %d: MaxConns = %d, want 0 (window capped)", vm, j, got)
			}
			if got := rows[vm].MaxBW[j]; got != 0 {
				t.Errorf("VM %d pair %d: MaxBW = %v, want 0", vm, j, got)
			}
		}
	}
}
