package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

// TestDeterminism checks that the same (seed, name) pair always yields
// the same stream — the property every experiment's reproducibility
// rests on.
func TestDeterminism(t *testing.T) {
	a := Derive(42, "link/0/1")
	b := Derive(42, "link/0/1")
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v", i, av, bv)
		}
	}
}

// TestNamedStreamsDiffer checks that differently named children are
// distinct streams.
func TestNamedStreamsDiffer(t *testing.T) {
	a := Derive(42, "alpha")
	b := Derive(42, "beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws from differently named streams", same)
	}
}

// TestChildDerivation checks that a child stream is deterministic given
// the parent's state.
func TestChildDerivation(t *testing.T) {
	p1 := New(7, 7)
	p2 := New(7, 7)
	c1 := p1.Derive("x")
	c2 := p2.Derive("x")
	for i := 0; i < 10; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("children of identical parents diverged")
		}
	}
}

// TestUniformRange property-checks Uniform's bounds.
func TestUniformRange(t *testing.T) {
	s := Derive(1, "uniform")
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNormMoments sanity-checks the normal sampler's mean and SD.
func TestNormMoments(t *testing.T) {
	s := Derive(3, "norm")
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.1 {
		t.Errorf("sd = %.3f, want ~2", sd)
	}
}

// TestBoolProbability checks Bool's frequency.
func TestBoolProbability(t *testing.T) {
	s := Derive(4, "bool")
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("P(true) = %.3f, want ~0.25", frac)
	}
}

// TestZipfSkew checks that larger alpha concentrates mass on low
// indices, and alpha = 0 is uniform-ish.
func TestZipfSkew(t *testing.T) {
	s := Derive(5, "zipf")
	const n, k = 20000, 8
	countLow := func(alpha float64) int {
		low := 0
		for i := 0; i < n; i++ {
			if s.Zipf(k, alpha) == 0 {
				low++
			}
		}
		return low
	}
	uniform := countLow(0)
	skewed := countLow(1.5)
	if float64(uniform)/n > 0.2 {
		t.Errorf("alpha=0: P(0) = %.3f, want ~1/8", float64(uniform)/n)
	}
	if skewed < 2*uniform {
		t.Errorf("alpha=1.5 should concentrate mass: low counts %d vs %d", skewed, uniform)
	}
}

// TestZipfBounds property-checks Zipf stays in range.
func TestZipfBounds(t *testing.T) {
	s := Derive(6, "zipf-bounds")
	f := func(n uint8, alpha float64) bool {
		k := int(n%16) + 1
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			alpha = 0
		}
		v := s.Zipf(k, math.Abs(alpha))
		return v >= 0 && v < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPermIsPermutation checks Perm returns each index exactly once.
func TestPermIsPermutation(t *testing.T) {
	s := Derive(7, "perm")
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestExpMean sanity-checks the exponential sampler.
func TestExpMean(t *testing.T) {
	s := Derive(8, "exp")
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(30)
	}
	if mean := sum / n; math.Abs(mean-30) > 1.5 {
		t.Errorf("exp mean = %.2f, want ~30", mean)
	}
}
