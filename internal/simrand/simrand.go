// Package simrand provides deterministic, named random-number streams for
// the WANify simulators.
//
// Every stochastic component in the repository (link fluctuation, probe
// noise, workload skew, dataset generation) draws from its own stream,
// derived from a root seed and a stream name. Two runs with the same root
// seed therefore produce identical results regardless of the order in
// which components consume randomness, which keeps every experiment in
// EXPERIMENTS.md reproducible.
package simrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps the stdlib PCG
// generator with a few distribution helpers used across the simulators.
type Source struct {
	rng *rand.Rand
}

// New returns a stream seeded directly with the two given words.
func New(seed1, seed2 uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Derive returns a child stream for the given name. Children with
// different names are statistically independent; the same (seed, name)
// pair always yields the same stream.
func Derive(rootSeed uint64, name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(rootSeed, h.Sum64())
}

// Derive returns a child stream of s for the given name.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(s.rng.Uint64(), h.Sum64())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform value in [lo, hi). The convex form avoids
// overflow even when hi-lo exceeds the float64 range.
func (s *Source) Uniform(lo, hi float64) float64 {
	u := s.rng.Float64()
	return lo*(1-u) + hi*u
}

// IntN returns a uniform int in [0, n). n must be > 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Norm(mean, sd float64) float64 {
	return mean + sd*s.rng.NormFloat64()
}

// LogNorm returns a log-normally distributed value whose underlying
// normal has the given mu and sigma.
func (s *Source) LogNorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// PermInto writes a random permutation of [0, n) into dst (which must
// have length n) and returns it. It consumes exactly the random values
// Perm would — it is the allocation-free twin of Perm, drawing the same
// Fisher-Yates swaps — so the two are interchangeable mid-stream
// without perturbing any downstream draw.
func (s *Source) PermInto(dst []int) []int {
	for i := range dst {
		dst[i] = i
	}
	s.rng.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	return dst
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Zipf returns a value in [0, n) following a Zipf-like distribution with
// skew parameter alpha >= 0. alpha = 0 is uniform; larger values
// concentrate mass on low indices. Used to model skewed input data.
func (s *Source) Zipf(n int, alpha float64) int {
	if n <= 1 {
		return 0
	}
	if alpha <= 0 {
		return s.IntN(n)
	}
	// Inverse-CDF sampling over the (small) discrete support.
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), alpha)
	}
	u := s.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), alpha)
		if u <= acc {
			return i - 1
		}
	}
	return n - 1
}
