package cost

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// TestTable2RuntimeMonitoring verifies that Eq. 1 with the paper's
// stated parameters (30-minute cadence, t3.nano, 20 s duration,
// 200 Mbps average, $0.02/GB) reproduces Table 2's runtime-monitoring
// column: ~$703, ~$1055, ~$1406 for 4, 6, 8 DCs.
func TestTable2RuntimeMonitoring(t *testing.T) {
	r := DefaultRates()
	want := map[int]float64{4: 703, 6: 1055, 8: 1406}
	for n, w := range want {
		got := RuntimeMonitoringAnnualUSD(DefaultMonitoringParams(n), r)
		if math.Abs(got-w) > w*0.05 {
			t.Errorf("runtime monitoring N=%d: $%.0f, want ~$%.0f", n, got, w)
		}
	}
}

// TestTable2TrainingCosts verifies the session-based training cost
// model lands near Table 2's training column ($35/$20/$14) and, most
// importantly, *decreases* with cluster size (larger clusters yield
// more labeled pairs per session).
func TestTable2TrainingCosts(t *testing.T) {
	want := map[int]float64{4: 35, 6: 20, 8: 14}
	prev := math.Inf(1)
	for _, n := range []int{4, 6, 8} {
		got := TrainingCostUSD(DefaultTrainingParams(n))
		if math.Abs(got-want[n]) > want[n]*0.25 {
			t.Errorf("training N=%d: $%.1f, want ~$%.0f", n, got, want[n])
		}
		if got >= prev {
			t.Errorf("training cost should decrease with N; N=%d cost $%.1f >= previous $%.1f", n, got, prev)
		}
		prev = got
	}
}

// TestTable2SavingsRatio verifies the headline claim: prediction
// (training + predictions) saves ~96% versus runtime monitoring.
func TestTable2SavingsRatio(t *testing.T) {
	r := DefaultRates()
	var monitoring, prediction float64
	for _, n := range []int{4, 6, 8} {
		monitoring += RuntimeMonitoringAnnualUSD(DefaultMonitoringParams(n), r)
		prediction += TrainingCostUSD(DefaultTrainingParams(n))
		prediction += PredictionCostUSD(DefaultPredictionParams(n))
	}
	savings := 1 - prediction/monitoring
	if savings < 0.90 {
		t.Errorf("prediction savings = %.1f%%, want >= 90%% (paper: ~96%%)", savings*100)
	}
	t.Logf("monitoring $%.0f vs prediction $%.0f: %.1f%% savings", monitoring, prediction, savings*100)
}

// TestEgressHeterogeneity checks that egress pricing differs by region
// (the property Kimchi exploits) and that prefix matching works.
func TestEgressHeterogeneity(t *testing.T) {
	r := DefaultRates()
	if us, sa := r.EgressPerGBFor(geo.USEast), r.EgressPerGBFor(geo.SAEast); us >= sa {
		t.Errorf("US egress $%.3f should be cheaper than SA $%.3f", us, sa)
	}
	if got := r.EgressPerGBFor(geo.APSE); got != 0.090 {
		t.Errorf("AP SE egress = %v, want 0.090", got)
	}
	unknown := geo.Region{Code: "mars-north-1"}
	if got := r.EgressPerGBFor(unknown); got != r.DefaultEgressPerGB {
		t.Errorf("unknown region egress = %v, want default %v", got, r.DefaultEgressPerGB)
	}
}

// TestComputeIncludesBurstSurcharge checks the §5.1 adjustment: $0.05
// per vCPU-hour on top of the instance price.
func TestComputeIncludesBurstSurcharge(t *testing.T) {
	r := DefaultRates()
	oneHour := r.ComputeUSD(substrate.T2Medium, 3600)
	want := 0.0464 + 0.05*2
	if math.Abs(oneHour-want) > 1e-9 {
		t.Errorf("t2.medium hour = $%.4f, want $%.4f", oneHour, want)
	}
}

// TestSessionsFor checks the rows-per-session arithmetic.
func TestSessionsFor(t *testing.T) {
	cases := []struct{ rows, n, want int }{
		{1000, 4, 84}, // 12 rows/session
		{1000, 6, 34}, // 30 rows/session
		{1000, 8, 18}, // 56 rows/session
		{0, 4, 0},
		{5, 1, 0}, // degenerate: no pairs
	}
	for _, c := range cases {
		if got := SessionsFor(c.rows, c.n); got != c.want {
			t.Errorf("SessionsFor(%d, %d) = %d, want %d", c.rows, c.n, got, c.want)
		}
	}
}

// TestEgressUnknownRegion checks the fallback row of the egress table:
// any code with no matching prefix — including an empty one — prices
// at DefaultEgressPerGB rather than zero or a panic.
func TestEgressUnknownRegion(t *testing.T) {
	r := DefaultRates()
	for _, code := range []string{"mars-north-1", "xx", ""} {
		if got := r.EgressPerGBFor(geo.Region{Code: code}); got != r.DefaultEgressPerGB {
			t.Errorf("EgressPerGBFor(%q) = %v, want default %v", code, got, r.DefaultEgressPerGB)
		}
	}
	if r.DefaultEgressPerGB <= 0 {
		t.Fatalf("DefaultEgressPerGB = %v, want positive", r.DefaultEgressPerGB)
	}
}

// TestBreakdownProperties is the property test for the accounting
// algebra: over seeded random breakdowns, Add must be commutative
// (bit-exact — IEEE addition commutes), keep the zero value as an
// exact identity, stay consistent with Total (the total of a sum
// equals the sum of totals, up to rounding), and associate up to
// rounding.
func TestBreakdownProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := func() Breakdown {
		return Breakdown{
			ComputeUSD: rng.Float64() * 100,
			NetworkUSD: rng.Float64() * 100,
			StorageUSD: rng.Float64() * 100,
		}
	}
	for i := 0; i < 200; i++ {
		a, b, c := random(), random(), random()
		if a.Add(b) != b.Add(a) {
			t.Fatalf("Add not commutative: %+v vs %+v", a.Add(b), b.Add(a))
		}
		if a.Add(Breakdown{}) != a {
			t.Fatalf("zero not identity: %+v", a.Add(Breakdown{}))
		}
		if got, want := a.Add(b).Total(), a.Total()+b.Total(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Total inconsistent with Add: %v vs %v", got, want)
		}
		l, r := a.Add(b).Add(c), a.Add(b.Add(c))
		if math.Abs(l.Total()-r.Total()) > 1e-9*(1+math.Abs(l.Total())) {
			t.Fatalf("Add not associative: %+v vs %+v", l, r)
		}
	}
}

// TestBreakdown checks the Breakdown arithmetic.
func TestBreakdown(t *testing.T) {
	a := Breakdown{ComputeUSD: 1, NetworkUSD: 2, StorageUSD: 3}
	b := Breakdown{ComputeUSD: 10, NetworkUSD: 20, StorageUSD: 30}
	sum := a.Add(b)
	if sum.Total() != 66 {
		t.Errorf("total = %v, want 66", sum.Total())
	}
}

// TestStoragePricing sanity-checks proration.
func TestStoragePricing(t *testing.T) {
	r := DefaultRates()
	month := 30.0 * 24 * 3600
	if got := r.StorageUSD(100, month); math.Abs(got-2.3) > 1e-9 {
		t.Errorf("100 GB-month = $%v, want $2.30", got)
	}
}
