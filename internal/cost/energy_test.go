package cost

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// TestIntensityForPrefix checks the longest-prefix lookup discipline:
// exact codes, prefix families ("eu-", "sa-"), the ap-south-1 vs
// ap-southeast-* near-collision, and the default fallback for unknown
// and empty codes.
func TestIntensityForPrefix(t *testing.T) {
	e := DefaultEnergyRates()
	cases := []struct {
		region geo.Region
		want   float64
	}{
		{geo.USEast, 379},
		{geo.USWest, 220},
		{geo.EUWest, 316},
		{geo.SAEast, 98},
		{geo.APSouth, 708},   // must not be shadowed by ap-southeast-*
		{geo.APSE, 471},      // ap-southeast-1
		{geo.APSE2, 660},     // ap-southeast-2
		{geo.APNE, 462},      // ap-northeast prefix
		{geo.Region{Code: "mars-north-1"}, 475}, // default
		{geo.Region{}, 475},                     // empty code: default
	}
	for _, c := range cases {
		if got := e.IntensityFor(c.region); got != c.want {
			t.Errorf("IntensityFor(%q) = %v, want %v", c.region.Code, got, c.want)
		}
	}
}

// TestEnergyArithmetic pins the unit conversions: watts held over time
// to kWh, bytes to transport kWh, and the two planning coefficients
// the carbon scorer descends on.
func TestEnergyArithmetic(t *testing.T) {
	e := DefaultEnergyRates()
	if got := e.ComputeKWh(substrate.T2Medium, 3600); math.Abs(got-0.011) > 1e-12 {
		t.Errorf("t2.medium hour = %v kWh, want 0.011", got)
	}
	if got := e.NetworkKWh(1e9); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("1 GB transport = %v kWh, want 0.06", got)
	}
	if got, want := e.WANKgCO2PerGB(geo.USEast), 0.06*379/1000; math.Abs(got-want) > 1e-12 {
		t.Errorf("WAN kgCO2/GB from us-east = %v, want %v", got, want)
	}
	// The per-second compute coefficient integrated over an hour must
	// agree with the kWh route through the same intensity.
	perSec := e.ComputeKgCO2PerSec(substrate.T2Medium.Watts, geo.SAEast)
	viaKWh := e.ComputeKWh(substrate.T2Medium, 3600) * e.IntensityFor(geo.SAEast) / 1000
	if math.Abs(perSec*3600-viaKWh) > 1e-12 {
		t.Errorf("coefficient route %v != kWh route %v", perSec*3600, viaKWh)
	}
	// Carbon heterogeneity is the gradient the scorer exploits: the
	// hydro-heavy grid must beat the coal-heavy one by a wide margin.
	if sa, ap := e.IntensityFor(geo.SAEast), e.IntensityFor(geo.APSouth); sa*5 > ap {
		t.Errorf("sa-east (%v) should be <1/5 of ap-south (%v)", sa, ap)
	}
}

// TestEnergyBreakdown checks the itemized account's arithmetic.
func TestEnergyBreakdown(t *testing.T) {
	a := EnergyBreakdown{ComputeKWh: 1, NetworkKWh: 2, ComputeKgCO2: 3, NetworkKgCO2: 4}
	b := EnergyBreakdown{ComputeKWh: 10, NetworkKWh: 20, ComputeKgCO2: 30, NetworkKgCO2: 40}
	sum := a.Add(b)
	if sum.KWh() != 33 {
		t.Errorf("KWh = %v, want 33", sum.KWh())
	}
	if sum.KgCO2() != 77 {
		t.Errorf("KgCO2 = %v, want 77", sum.KgCO2())
	}
	if got := a.Add(EnergyBreakdown{}); got != a {
		t.Errorf("zero identity: %+v != %+v", got, a)
	}
}

// TestEnergyRatesIsZero checks the Config default-filling predicate:
// only the fully unset value reads as zero.
func TestEnergyRatesIsZero(t *testing.T) {
	if !(EnergyRates{}).IsZero() {
		t.Error("zero value should be IsZero")
	}
	if DefaultEnergyRates().IsZero() {
		t.Error("defaults should not be IsZero")
	}
	partials := []EnergyRates{
		{WANKWhPerGB: 0.01},
		{DefaultGPerKWh: 100},
		{GPerKWh: map[string]float64{}},
	}
	for i, e := range partials {
		if e.IsZero() {
			t.Errorf("partial %d should not be IsZero", i)
		}
	}
}
