package cost

import (
	"strings"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// EnergyRates parameterizes the energy/carbon model the same way Rates
// parameterizes dollars: compute energy is an instance's attributable
// watts held over time, WAN energy is a per-GB transport coefficient,
// and both convert to kgCO₂-eq through the grid carbon intensity of
// the region where the energy is drawn (WAN transfers are attributed
// to the sending region, mirroring egress pricing). The per-region
// intensities are the property the carbon-aware placement scorer
// exploits — shifting work toward low-carbon grids the way Kimchi
// shifts bytes toward cheap egress.
type EnergyRates struct {
	// WANKWhPerGB is the end-to-end transport energy of moving one GB
	// across the WAN (routers, amplifiers, transit), attributed to the
	// sender.
	WANKWhPerGB float64
	// DefaultGPerKWh applies to regions without an override.
	DefaultGPerKWh float64
	// GPerKWh maps region-code prefixes to grid carbon intensity in
	// gCO₂-eq per kWh; the longest matching prefix wins (exactly the
	// Rates.EgressPerGB lookup discipline).
	GPerKWh map[string]float64
}

// DefaultEnergyRates returns the intensities used across the
// reproduction: representative public grid averages, heterogeneous
// enough that carbon-aware placement has a real gradient (hydro-heavy
// São Paulo at ~1/7 of coal-heavy Mumbai).
func DefaultEnergyRates() EnergyRates {
	return EnergyRates{
		WANKWhPerGB:    0.06,
		DefaultGPerKWh: 475,
		GPerKWh: map[string]float64{
			"us-east":        379,
			"us-west":        220,
			"eu-":            316,
			"ap-south-1":     708,
			"ap-southeast-1": 471,
			"ap-southeast-2": 660,
			"ap-northeast":   462,
			"sa-":            98,
		},
	}
}

// IsZero reports whether the rates are entirely unset (the Config
// default-filling test).
func (e EnergyRates) IsZero() bool {
	return e.WANKWhPerGB == 0 && e.DefaultGPerKWh == 0 && e.GPerKWh == nil
}

// IntensityFor returns the grid carbon intensity (gCO₂/kWh) of a
// region, by longest matching code prefix.
func (e EnergyRates) IntensityFor(r geo.Region) float64 {
	best, bestLen := e.DefaultGPerKWh, -1
	for prefix, g := range e.GPerKWh {
		if strings.HasPrefix(r.Code, prefix) && len(prefix) > bestLen {
			best, bestLen = g, len(prefix)
		}
	}
	return best
}

// ComputeKWh returns the energy of holding one instance for the given
// seconds.
func (e EnergyRates) ComputeKWh(spec substrate.VMSpec, seconds float64) float64 {
	return spec.Watts * seconds / 3.6e6
}

// NetworkKWh returns the transport energy of the given WAN bytes.
func (e EnergyRates) NetworkKWh(bytes float64) float64 {
	return bytes / 1e9 * e.WANKWhPerGB
}

// WANKgCO2PerGB is the planning coefficient the carbon scorer descends
// on: kgCO₂-eq per GB leaving src.
func (e EnergyRates) WANKgCO2PerGB(src geo.Region) float64 {
	return e.WANKWhPerGB * e.IntensityFor(src) / 1000
}

// ComputeKgCO2PerSec is the planning coefficient for compute: kgCO₂-eq
// per second of the given aggregate watts drawn in region r.
func (e EnergyRates) ComputeKgCO2PerSec(watts float64, r geo.Region) float64 {
	return watts / 3.6e6 * e.IntensityFor(r) / 1000
}

// EnergyBreakdown is an itemized energy/carbon account of a simulated
// activity — the Breakdown counterpart in kWh and kgCO₂-eq.
type EnergyBreakdown struct {
	ComputeKWh   float64
	NetworkKWh   float64
	ComputeKgCO2 float64
	NetworkKgCO2 float64
}

// KWh returns the summed energy.
func (b EnergyBreakdown) KWh() float64 { return b.ComputeKWh + b.NetworkKWh }

// KgCO2 returns the summed carbon.
func (b EnergyBreakdown) KgCO2() float64 { return b.ComputeKgCO2 + b.NetworkKgCO2 }

// Add returns the element-wise sum.
func (b EnergyBreakdown) Add(o EnergyBreakdown) EnergyBreakdown {
	return EnergyBreakdown{
		ComputeKWh:   b.ComputeKWh + o.ComputeKWh,
		NetworkKWh:   b.NetworkKWh + o.NetworkKWh,
		ComputeKgCO2: b.ComputeKgCO2 + o.ComputeKgCO2,
		NetworkKgCO2: b.NetworkKgCO2 + o.NetworkKgCO2,
	}
}
