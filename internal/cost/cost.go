// Package cost prices simulated GDA activity the way the paper does:
// query cost = compute + network + storage (§5.1, "all query costs
// include compute, network, and storage costs", plus the $0.05 per
// vCPU-hour unlimited-burst surcharge), and monitoring cost per Eq. 1,
//
//	annual = O × N × (x×y + z)
//
// where O is yearly monitoring occurrences, N the cluster size, x the
// per-instance-second compute price, y the monitoring duration, and z
// the per-instance network cost of the traffic exchanged while
// monitoring. Table 2's three columns are derived from this model; see
// EXPERIMENTS.md for the parameter interpretation that reproduces the
// paper's dollar figures.
package cost

import (
	"strings"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// Rates bundles the pricing constants (representative public AWS/GCP
// prices; the paper's Table 2 arithmetic reproduces with these).
type Rates struct {
	// BurstPerVCPUHour is the unlimited-CPU-burst surcharge (§5.1).
	BurstPerVCPUHour float64
	// StoragePerGBMonth is the S3-class storage price.
	StoragePerGBMonth float64
	// DefaultEgressPerGB applies to regions without an override.
	DefaultEgressPerGB float64
	// EgressPerGB maps region-code prefixes to inter-region egress
	// prices in USD/GB; the longest matching prefix wins.
	EgressPerGB map[string]float64
}

// DefaultRates returns the pricing used across the reproduction.
// Inter-region egress is heterogeneous — the property Kimchi's
// network-cost-aware placement exploits.
func DefaultRates() Rates {
	return Rates{
		BurstPerVCPUHour:   0.05,
		StoragePerGBMonth:  0.023,
		DefaultEgressPerGB: 0.02,
		EgressPerGB: map[string]float64{
			"us-":            0.02,
			"eu-":            0.02,
			"ap-south-1":     0.086,
			"ap-southeast-1": 0.090,
			"ap-southeast-2": 0.098,
			"ap-northeast-1": 0.090,
			"sa-":            0.138,
		},
	}
}

// EgressPerGBFor returns the egress price for traffic leaving a region.
func (r Rates) EgressPerGBFor(src geo.Region) float64 {
	best, bestLen := r.DefaultEgressPerGB, -1
	for prefix, price := range r.EgressPerGB {
		if strings.HasPrefix(src.Code, prefix) && len(prefix) > bestLen {
			best, bestLen = price, len(prefix)
		}
	}
	return best
}

// ComputeUSD prices `seconds` of one instance, including the burst
// surcharge.
func (r Rates) ComputeUSD(spec substrate.VMSpec, seconds float64) float64 {
	perHour := spec.HourlyUSD + r.BurstPerVCPUHour*float64(spec.VCPUs)
	return perHour / 3600 * seconds
}

// EgressUSD prices bytes leaving the given region over the WAN.
func (r Rates) EgressUSD(src geo.Region, bytes float64) float64 {
	return bytes / 1e9 * r.EgressPerGBFor(src)
}

// StorageUSD prices gb gigabytes held for the given number of seconds.
func (r Rates) StorageUSD(gb, seconds float64) float64 {
	const secPerMonth = 30 * 24 * 3600
	return gb * r.StoragePerGBMonth * seconds / secPerMonth
}

// Breakdown is an itemized price of a simulated activity.
type Breakdown struct {
	ComputeUSD float64
	NetworkUSD float64
	StorageUSD float64
}

// Total returns the summed cost.
func (b Breakdown) Total() float64 { return b.ComputeUSD + b.NetworkUSD + b.StorageUSD }

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		ComputeUSD: b.ComputeUSD + o.ComputeUSD,
		NetworkUSD: b.NetworkUSD + o.NetworkUSD,
		StorageUSD: b.StorageUSD + o.StorageUSD,
	}
}

// --- Eq. 1 and Table 2 ---

// MonitoringParams parameterizes Eq. 1.
type MonitoringParams struct {
	// OccurrencesPerYear is O. The paper follows Tetrium's suggestion of
	// measuring every 30 minutes: 17,520 occurrences per year.
	OccurrencesPerYear int
	// N is the cluster size (1 VM per DC).
	N int
	// DurationS is y, the monitoring duration in seconds (20 for stable
	// runtime BWs, 1 for snapshots).
	DurationS float64
	// AvgMbps sets z: the average per-instance bandwidth during the
	// monitoring window (the paper prices Table 2 at 200 Mbps).
	AvgMbps float64
	// Spec is the monitoring instance (t3.nano in the paper).
	Spec substrate.VMSpec
	// NetPerGB is the inter-region transfer price for probe traffic.
	NetPerGB float64
}

// DefaultMonitoringParams returns Table 2's runtime-monitoring setup
// for a cluster of n DCs.
func DefaultMonitoringParams(n int) MonitoringParams {
	return MonitoringParams{
		OccurrencesPerYear: 2 * 24 * 365, // every 30 minutes
		N:                  n,
		DurationS:          20,
		AvgMbps:            200,
		Spec:               substrate.T3Nano,
		NetPerGB:           0.02,
	}
}

// perInstanceUSD returns x×y + z for one monitoring occurrence. x is
// the raw per-instance-second price (monitoring probes do not incur the
// unlimited-burst surcharge in the paper's Table 2 arithmetic).
func (p MonitoringParams) perInstanceUSD(r Rates) float64 {
	xy := p.Spec.HourlyUSD / 3600 * p.DurationS
	gb := p.AvgMbps * p.DurationS / 8 / 1000
	z := gb * p.NetPerGB
	return xy + z
}

// RuntimeMonitoringAnnualUSD evaluates Eq. 1: O × N × (x×y + z).
func RuntimeMonitoringAnnualUSD(p MonitoringParams, r Rates) float64 {
	return float64(p.OccurrencesPerYear) * float64(p.N) * p.perInstanceUSD(r)
}

// SessionsFor returns how many monitoring sessions a cluster of n DCs
// needs to collect `rows` labeled pairs: each session yields one row
// per ordered DC pair, so larger clusters need fewer sessions — the
// reason Table 2's training and prediction costs *decrease* with N.
func SessionsFor(rows, n int) int {
	perSession := n * (n - 1)
	if perSession <= 0 {
		return 0
	}
	return (rows + perSession - 1) / perSession
}

// TrainingParams prices the one-time collection of the training set.
type TrainingParams struct {
	// Rows is the training-set size (1000 samples in Table 2).
	Rows int
	// N is the cluster size.
	N int
	// SessionS is the per-session duration: 1 s snapshot + 20 s stable
	// label (21 s).
	SessionS float64
	// SessionMbps is the average per-instance traffic while a session's
	// all-pairs probes run (probing saturates the burst NIC; 2000 Mbps
	// reproduces the paper's dollar figures).
	SessionMbps float64
	Spec        substrate.VMSpec
	NetPerGB    float64
}

// DefaultTrainingParams returns Table 2's model-training setup.
func DefaultTrainingParams(n int) TrainingParams {
	return TrainingParams{
		Rows: 1000, N: n, SessionS: 21, SessionMbps: 2000,
		Spec: substrate.T3Nano, NetPerGB: 0.02,
	}
}

// TrainingCostUSD prices training-set collection: sessions × N × (x×y + z).
func TrainingCostUSD(p TrainingParams) float64 {
	sessions := SessionsFor(p.Rows, p.N)
	xy := p.Spec.HourlyUSD / 3600 * p.SessionS
	gb := p.SessionMbps * p.SessionS / 8 / 1000
	return float64(sessions) * float64(p.N) * (xy + gb*p.NetPerGB)
}

// PredictionParams prices a year of online prediction: the snapshot
// sessions taken to feed the model and intermittently validate it
// (§3.3.4). Like training, the session count scales inversely with the
// rows each session yields.
type PredictionParams struct {
	// RowsPerYear is the number of predicted/validated pairs per year
	// (16,500 reproduces the paper's column).
	RowsPerYear int
	N           int
	// SnapshotS is the snapshot duration (1 s).
	SnapshotS float64
	// SessionMbps is the per-instance traffic during the snapshot.
	SessionMbps float64
	Spec        substrate.VMSpec
	NetPerGB    float64
}

// DefaultPredictionParams returns Table 2's prediction setup.
func DefaultPredictionParams(n int) PredictionParams {
	return PredictionParams{
		RowsPerYear: 16500, N: n, SnapshotS: 1, SessionMbps: 2000,
		Spec: substrate.T3Nano, NetPerGB: 0.02,
	}
}

// PredictionCostUSD prices a year of snapshot-driven predictions.
func PredictionCostUSD(p PredictionParams) float64 {
	sessions := SessionsFor(p.RowsPerYear, p.N)
	xy := p.Spec.HourlyUSD / 3600 * p.SnapshotS
	gb := p.SessionMbps * p.SnapshotS / 8 / 1000
	return float64(sessions) * float64(p.N) * (xy + gb*p.NetPerGB)
}
