// Package runtime implements WANify's mid-job re-gauging and
// rebalancing controller: the control loop that keeps the global
// connection plan honest while a job runs.
//
// The paper's headline claim is *runtime* gauging and balancing, but
// the base online path computes the global plan exactly once — at
// enable time — and leaves all mid-job adaptation to the per-VM AIMD
// agents, which can only move inside the [minCons, maxCons] windows
// that plan fixed. When WAN conditions shift materially after the plan
// is built (a diurnal swing, a congestion episode on one inter-region
// link), the windows themselves go stale: AIMD pins against a floor or
// ceiling that no longer matches the network, which is precisely the
// regime cross-layer systems like Terra argue plans must be revisited
// in. The controller closes that loop:
//
//   - Each epoch it aggregates the agents' WAN-monitor achieved rates
//     into a live cluster bandwidth matrix and compares each active
//     pair against the plan's achievable-bandwidth model (Eq. 3
//     evaluated at the agents' current window position — the
//     operational form of the prediction the plan was built from).
//   - Drift on a pair is a relative delta above Config.DriftFrac that
//     is also absolutely significant (Config.SignificantMbps, the
//     paper's 100 Mbps threshold). Hysteresis demands the drift
//     persist for Config.HysteresisEpochs consecutive epochs, and a
//     cooldown keeps replans apart, so transient wobbles and the
//     controller's own plan swaps cause no churn. A staleness clock
//     (Config.StaleAfterS) can additionally force periodic re-gauging
//     even without observed drift, the §3.3.4 spirit applied to the
//     plan instead of the model.
//   - On trigger it re-snapshots the cluster (measure.BeginSnapshot —
//     the probes run concurrently with the job's own transfers, so the
//     sample sees exactly the contended WAN the paper says must be
//     gauged), re-predicts the runtime bandwidth matrix, re-runs
//     global optimization, and atomically swaps the new windows into
//     every running agent (agent.SwapWindow) within one substrate
//     event. Remaining transfers rebalance mid-shuffle; flows in
//     flight keep their identity and their delivered bytes.
//
// The controller is deterministic for a fixed seed and substrate
// history, and entirely passive when nothing drifts: a stable network
// produces zero replans (see controller_test.go invariants).
//
// When several jobs share the cluster (Deps.Groups), one controller
// arbitrates for all of them: the live matrix aggregates every job's
// monitored rates per pair, a trigger re-gauges the cluster once, and
// the swap hands each job its partition of the new windows
// (Deps.Partition) in the same substrate event — N jobs never cost N
// probe sweeps, and no pair's combined windows ever exceed the global
// plan mid-swap.
package runtime

import (
	"fmt"
	"math"

	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/substrate"
)

// Config configures the re-gauging controller. The zero value (with
// Enabled false) is the base WANify behaviour: plan once, never
// revisit.
type Config struct {
	// Enabled turns the controller on. Default off: all existing
	// single-plan runs (and their golden outputs) are untouched.
	Enabled bool
	// EpochS is the controller's aggregation epoch in seconds (default
	// 15 — three 5-second agent epochs per controller look).
	EpochS float64
	// DriftFrac is the relative per-pair delta between the live
	// monitored rate and the plan's achievable-BW target beyond which
	// the pair counts as drifted (default 0.3).
	DriftFrac float64
	// SignificantMbps is the absolute floor a drifted delta must also
	// clear (default 100 Mbps, the paper's significance threshold) so
	// thin links cannot trigger replans on noise.
	SignificantMbps float64
	// MinActiveMbps is the minimum live rate for a pair to participate
	// in drift detection (default 5 Mbps); an idle link says nothing
	// about the plan, exactly as in the agents' skip rule. Pairs with
	// registered transfers still in flight participate regardless of
	// their live rate, so a blackout (demand present, nothing
	// delivered) cannot hide below the activity floor.
	MinActiveMbps float64
	// MinDriftPairs is how many pairs must drift in one epoch for the
	// epoch to count toward the hysteresis streak (default 1).
	MinDriftPairs int
	// HysteresisEpochs is how many consecutive drifted epochs arm the
	// trigger (default 2).
	HysteresisEpochs int
	// CooldownS is the minimum time between a plan swap and the next
	// trigger (default 2×EpochS), bounding replan churn.
	CooldownS float64
	// StaleAfterS forces a re-gauge when the current plan is older than
	// this many seconds even without drift (default 0: disabled).
	StaleAfterS float64
	// MaxReplans caps the number of replans per controller lifetime
	// (default 0: unlimited).
	MaxReplans int

	// --- failure-aware gauging (DESIGN.md §11; default all off) ---

	// Hardened turns on failure-aware gauging: re-gauge snapshots run
	// with probe retry/backoff (measure.BeginSnapshotHardened), come
	// back as tagged partial samples, fuse with the last-known-good
	// belief store, and pass through the coverage gate and circuit
	// breaker below. Default off: the legacy collect-and-swap path is
	// byte-identical to builds that predate hardening.
	Hardened bool
	// Retry is the hardened snapshot's probe retry policy (zero value:
	// measure defaults — 2 retries, 0.1 s base backoff, ×2 growth
	// capped at 1 s).
	Retry measure.RetryPolicy
	// MinCoverage is the measured-pair fraction a snapshot must reach
	// for the controller to replan from it (default 0.6). Below it the
	// controller enters degraded mode for that trigger: the current
	// plan is kept, the rejection is recorded as an incident, and the
	// circuit breaker advances.
	MinCoverage float64
	// BeliefHalfLifeS is the staleness half-life of the per-pair
	// belief store's confidence (default 120 s).
	BeliefHalfLifeS float64
	// BreakerThreshold is how many consecutive rejected snapshots open
	// the circuit breaker (default 3).
	BreakerThreshold int
	// BreakerBackoffS is how long an open breaker suppresses re-gauge
	// triggers before re-arming (default 4×EpochS).
	BreakerBackoffS float64
}

func (c Config) withDefaults() Config {
	if c.EpochS == 0 {
		c.EpochS = 15
	}
	if c.DriftFrac == 0 {
		c.DriftFrac = 0.3
	}
	if c.SignificantMbps == 0 {
		c.SignificantMbps = 100
	}
	if c.MinActiveMbps == 0 {
		c.MinActiveMbps = 5
	}
	if c.MinDriftPairs == 0 {
		c.MinDriftPairs = 1
	}
	if c.HysteresisEpochs == 0 {
		c.HysteresisEpochs = 2
	}
	if c.CooldownS == 0 {
		c.CooldownS = 2 * c.EpochS
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.6
	}
	if c.BeliefHalfLifeS == 0 {
		c.BeliefHalfLifeS = 120
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoffS == 0 {
		c.BreakerBackoffS = 4 * c.EpochS
	}
	return c
}

// Deps are the hooks the controller re-plans through. The framework
// supplies closures over its model and optimizer options so this
// package needs no dependency on the top-level wanify package.
type Deps struct {
	// Cluster is the substrate the job runs on.
	Cluster substrate.Cluster
	// Agents are the deployed local agents whose windows get swapped.
	Agents []*agent.Agent
	// SnapshotOpts yields the measurement options (noise stream
	// included) for one re-gauge snapshot. Called once per replan.
	SnapshotOpts func() measure.Options
	// Predict maps collected snapshot parts to a runtime-BW matrix —
	// the Runtime Bandwidth Determination sub-module.
	Predict func(snap bwmatrix.Matrix, stats []substrate.VMStats) bwmatrix.Matrix
	// Optimize recomputes the global plan from a predicted matrix
	// (Algorithm 1 + Eq. 2–3, with the deployment's skew/rvec options).
	Optimize func(pred bwmatrix.Matrix) optimize.Plan

	// --- multi-job arbitration (nil for single-job deployments) ---

	// Groups are per-job agent slices when several jobs share the
	// cluster under one controller. Agents (above) must then hold the
	// union of all groups: the controller aggregates monitored rates
	// and targets *across jobs* per DC pair — the live matrix it
	// checks the plan against is the cluster's total, exactly the
	// contended WAN the paper says must be gauged — re-gauges ONCE,
	// and swaps each job's partitioned windows atomically within the
	// same substrate event.
	Groups [][]*agent.Agent
	// Partition splits a re-gauged global plan into one plan per
	// group (optimize.PartitionPlan under the deployment's share
	// weights, re-evaluated at swap time so bytes-remaining sharing
	// tracks job progress). Required when Groups is set.
	Partition func(plan optimize.Plan) []optimize.Plan
	// OnPlanSwap, when non-nil, runs after a replan's windows have
	// been swapped in (same substrate event) — the multi-job
	// deployment refreshes its cluster-level throttles here, since
	// per-job agents no longer own the tc limits.
	OnPlanSwap func(pred bwmatrix.Matrix, plan optimize.Plan)
}

// Reason states why a replan fired.
type Reason int8

// Replan reasons. The first three fire replans; the last two tag
// incidents of the hardened path (Incidents), which swap no plan.
const (
	ReasonDrift    Reason = iota // live rates departed from the plan
	ReasonStale                  // the plan aged past StaleAfterS
	ReasonEvacuate               // a DC was confirmed dead; plan routes around it
	ReasonDegraded               // snapshot rejected: coverage below MinCoverage
	ReasonBreaker                // consecutive rejections opened the circuit breaker
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonStale:
		return "stale"
	case ReasonEvacuate:
		return "evacuate"
	case ReasonDegraded:
		return "degraded"
	case ReasonBreaker:
		return "breaker-open"
	default:
		return "drift"
	}
}

// Event records one completed replan.
type Event struct {
	// TriggeredAt is when the drift/staleness trigger armed and the
	// re-gauge snapshot began.
	TriggeredAt float64
	// AppliedAt is when the new windows swapped into the agents
	// (TriggeredAt + snapshot duration).
	AppliedAt float64
	// Reason is what fired the replan.
	Reason Reason
	// DriftedPairs and MaxDriftFrac describe the epoch that armed the
	// trigger (zero for pure staleness replans).
	DriftedPairs int
	MaxDriftFrac float64
	// EvacuatedDCs lists the data centers whose confirmed death fired
	// this replan (nil for drift/staleness replans).
	EvacuatedDCs []int
	// Cost is the measurement bill of the re-gauge snapshot.
	Cost measure.Report
	// Coverage is the measured-pair fraction of the snapshot behind
	// this event (hardened runs only; zero on legacy events).
	Coverage float64
	// ReopenAt is when an opened circuit breaker re-arms
	// (ReasonBreaker incidents only).
	ReopenAt float64
}

// String renders the event for reports.
func (e Event) String() string {
	switch e.Reason {
	case ReasonDegraded:
		return fmt.Sprintf("t=%.0fs degraded (coverage=%.0f%%) plan kept",
			e.TriggeredAt, e.Coverage*100)
	case ReasonBreaker:
		return fmt.Sprintf("t=%.0fs breaker-open until t=%.0fs",
			e.TriggeredAt, e.ReopenAt)
	}
	if len(e.EvacuatedDCs) > 0 {
		return fmt.Sprintf("t=%.0fs %s (dcs=%v) applied t=%.0fs",
			e.TriggeredAt, e.Reason, e.EvacuatedDCs, e.AppliedAt)
	}
	return fmt.Sprintf("t=%.0fs %s (pairs=%d maxΔ=%.0f%%) applied t=%.0fs",
		e.TriggeredAt, e.Reason, e.DriftedPairs, e.MaxDriftFrac*100, e.AppliedAt)
}

// Controller is a running re-gauging loop bound to one deployment.
type Controller struct {
	cfg  Config
	deps Deps

	pred   bwmatrix.Matrix // prediction the current plan was built from
	plan   optimize.Plan
	planAt float64 // when the current plan was installed

	live        bwmatrix.Matrix // latest aggregated monitored rates
	streak      int             // consecutive drifted epochs
	pending     *measure.PendingSnapshot
	deadHandled []bool // per-DC: evacuation replan already fired for it

	events      []Event
	driftEpochs int
	cancel      func()
	stopped     bool

	// --- failure-aware gauging state (Config.Hardened) ---
	belief       *beliefStore
	incidents    []Event // rejected snapshots and breaker openings
	breakerFails int     // consecutive rejected snapshots
	breakerUntil float64 // open breaker suppresses triggers until then
	gauge        GaugeStats
}

// GaugeStats describes the failure-aware gauging state — what serve
// surfaces in /healthz, /v1/cluster and wanify.serve.gauge.* lines.
type GaugeStats struct {
	// Hardened reports whether failure-aware gauging is on.
	Hardened bool
	// Degraded reports whether the controller is refusing to replan:
	// the breaker is open, or the last snapshot was rejected.
	Degraded bool
	// LastCoverage is the measured-pair fraction of the most recent
	// collected snapshot (1 before any hardened snapshot).
	LastCoverage float64
	// RejectedSnapshots counts snapshots refused for low coverage.
	RejectedSnapshots int
	// Retries counts replacement probes across all snapshots.
	Retries int
	// UnmeasurablePairs is the unmeasurable count of the most recent
	// snapshot.
	UnmeasurablePairs int
	// FusedPairs counts pair readings filled from the belief store
	// instead of a measurement, cumulatively.
	FusedPairs int
	// BreakerOpen reports whether the circuit breaker is open.
	BreakerOpen bool
	// BreakerUntil is when an open breaker re-arms (0 when closed).
	BreakerUntil float64
	// ConsecutiveFails is the current run of rejected snapshots.
	ConsecutiveFails int
}

// Start begins the re-gauging loop against the given deployment state:
// pred and plan are the prediction and plan the agents are currently
// running. Config defaults are applied; Start panics on nil deps since
// a controller without a replan path is meaningless.
func Start(deps Deps, cfg Config, pred bwmatrix.Matrix, plan optimize.Plan) *Controller {
	if deps.Cluster == nil || deps.SnapshotOpts == nil || deps.Predict == nil || deps.Optimize == nil {
		panic("runtime: controller needs cluster, snapshot, predict and optimize deps")
	}
	if len(deps.Groups) > 0 && deps.Partition == nil {
		panic("runtime: multi-job controller needs a partition hook")
	}
	c := &Controller{
		cfg:    cfg.withDefaults(),
		deps:   deps,
		pred:   pred.Clone(),
		plan:   plan,
		planAt: deps.Cluster.Now(),
	}
	if c.cfg.Hardened {
		// Seed the belief store with the prediction the current plan
		// was built from: the best last-known-good available before
		// any hardened snapshot lands.
		c.belief = newBeliefStore(deps.Cluster.NumDCs(), c.cfg.BeliefHalfLifeS)
		c.belief.seed(pred, c.planAt, 0.5)
		c.gauge = GaugeStats{Hardened: true, LastCoverage: 1}
	}
	c.cancel = deps.Cluster.Every(c.cfg.EpochS, c.epoch)
	return c
}

// Stop halts the loop. A snapshot in flight is abandoned (its probes
// are torn down without being applied).
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.cancel()
	if c.pending != nil {
		// Tear the probes down; the swap timer will find c.stopped.
		c.pending.Abandon()
		c.pending = nil
	}
}

// SetGroups swaps the controller's arbitration roster while it runs —
// the attach/detach path a serving deployment uses as jobs arrive and
// finish. union is the flat agent list the controller aggregates
// monitored rates over; groups are the per-slot agent slices a replan
// partitions windows across (empty/nil slots are idle and receive
// nothing). The substrate is single-timeline, so calling this from a
// substrate event is ordered with every epoch tick; a re-gauge snapshot
// already in flight applies its swap against the NEW roster, since the
// swap reads the deps at apply time.
func (c *Controller) SetGroups(union []*agent.Agent, groups [][]*agent.Agent) {
	if len(groups) > 0 && c.deps.Partition == nil {
		panic("runtime: SetGroups needs a partition hook")
	}
	c.deps.Agents = union
	c.deps.Groups = groups
}

// Events returns the completed replans.
func (c *Controller) Events() []Event { return c.events }

// Replans returns how many plan swaps have been applied.
func (c *Controller) Replans() int { return len(c.events) }

// Incidents returns the hardened path's degraded-mode record: every
// rejected snapshot and breaker opening (empty on legacy runs). These
// never swap a plan and never count toward Replans.
func (c *Controller) Incidents() []Event { return c.incidents }

// Gauge returns the failure-aware gauging state (zero-valued with
// Hardened false when the controller runs the legacy path).
func (c *Controller) Gauge() GaugeStats {
	g := c.gauge
	if g.Hardened {
		now := c.deps.Cluster.Now()
		g.BreakerOpen = now < c.breakerUntil
		if g.BreakerOpen {
			g.BreakerUntil = c.breakerUntil
		}
		g.ConsecutiveFails = c.breakerFails
		g.Degraded = g.BreakerOpen || c.breakerFails > 0
	}
	return g
}

// Degraded reports whether the hardened controller is currently
// refusing to replan (always false on the legacy path).
func (c *Controller) Degraded() bool { return c.Gauge().Degraded }

// DriftEpochs returns how many epochs counted toward a drift streak —
// a churn diagnostic: on a stable network this stays zero.
func (c *Controller) DriftEpochs() int { return c.driftEpochs }

// CurrentPred returns the prediction the active plan was built from.
func (c *Controller) CurrentPred() bwmatrix.Matrix { return c.pred.Clone() }

// CurrentPlan returns the active global plan.
func (c *Controller) CurrentPlan() optimize.Plan { return c.plan }

// Live returns the latest aggregated live bandwidth matrix (nil before
// the first epoch).
func (c *Controller) Live() bwmatrix.Matrix {
	if c.live == nil {
		return nil
	}
	return c.live.Clone()
}

// epoch is one controller tick: aggregate, compare, maybe trigger.
func (c *Controller) epoch(now float64) {
	if c.stopped || c.pending != nil {
		return
	}
	live, expected, demand := c.aggregate()
	c.live = live
	drifted, maxFrac := c.drift(live, expected, demand)
	if drifted >= c.cfg.MinDriftPairs {
		c.streak++
		c.driftEpochs++
	} else {
		c.streak = 0
	}

	if c.cfg.MaxReplans > 0 && len(c.events) >= c.cfg.MaxReplans {
		return
	}
	// A confirmed-dead DC triggers evacuation: re-gauge, re-optimize
	// over the surviving topology, and swap the evacuated plan in. It
	// bypasses hysteresis and cooldown — waiting cannot resurrect a DC —
	// but still respects MaxReplans (above) and the one-snapshot-at-a-
	// time guard: a blocked detection simply retries next epoch, and the
	// DC is marked handled only when its replan actually starts.
	if evac := c.newlyDead(); len(evac) > 0 {
		c.beginRegauge(now, ReasonEvacuate, drifted, maxFrac, evac)
		return
	}
	// An open circuit breaker suppresses drift and staleness triggers:
	// N consecutive snapshots came back unusable, so re-probing every
	// epoch only burns measurement budget on a WAN that cannot answer.
	// Evacuation (above) still passes — a confirmed-dead DC needs no
	// snapshot quality to be worth routing around.
	if c.cfg.Hardened && now < c.breakerUntil {
		return
	}
	if now-c.planAt < c.cfg.CooldownS {
		return
	}
	switch {
	case c.streak >= c.cfg.HysteresisEpochs:
		c.beginRegauge(now, ReasonDrift, drifted, maxFrac, nil)
	case c.cfg.StaleAfterS > 0 && now-c.planAt >= c.cfg.StaleAfterS:
		c.beginRegauge(now, ReasonStale, drifted, maxFrac, nil)
	}
}

// newlyDead lists DCs with no living VM whose evacuation has not yet
// been handled.
func (c *Controller) newlyDead() []int {
	n := c.deps.Cluster.NumDCs()
	if c.deadHandled == nil {
		c.deadHandled = make([]bool, n)
	}
	var out []int
	for dc := 0; dc < n; dc++ {
		if c.deadHandled[dc] || c.dcAlive(dc) {
			continue
		}
		out = append(out, dc)
	}
	return out
}

// dcAlive reports whether any VM of the DC still accepts flows.
func (c *Controller) dcAlive(dc int) bool {
	for _, vm := range c.deps.Cluster.VMsOfDC(dc) {
		if c.deps.Cluster.VMAlive(vm) {
			return true
		}
	}
	return false
}

// aggregate sums the agents' last-epoch WAN-monitor rates, current
// achievable-BW targets and in-flight transfer counts into DC-level
// matrices.
func (c *Controller) aggregate() (live, expected bwmatrix.Matrix, demand [][]int) {
	n := c.deps.Cluster.NumDCs()
	live = bwmatrix.New(n)
	expected = bwmatrix.New(n)
	demand = make([][]int, n)
	for i := range demand {
		demand[i] = make([]int, n)
	}
	for _, a := range c.deps.Agents {
		if !c.deps.Cluster.VMAlive(a.VM()) {
			continue // a dead VM's agent reports nothing but stale state
		}
		mon := a.MonitoredMbps()
		if mon == nil {
			continue // no AIMD epoch yet
		}
		tgt := a.TargetBW()
		pool := a.ActivePool()
		i := a.DC()
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			live[i][j] += mon[j]
			expected[i][j] += tgt[j]
			demand[i][j] += pool[j]
		}
	}
	return live, expected, demand
}

// drift counts the active pairs whose live rate departs from the
// plan's target both relatively (DriftFrac) and absolutely
// (SignificantMbps), returning the count and the worst relative delta.
// A pair is active when its live rate clears the floor or transfers
// are still in flight on it — a dead-but-demanded link is the
// strongest drift signal there is, not an idle one.
func (c *Controller) drift(live, expected bwmatrix.Matrix, demand [][]int) (pairs int, maxFrac float64) {
	n := live.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || expected[i][j] <= 0 {
				continue
			}
			if live[i][j] < c.cfg.MinActiveMbps && demand[i][j] == 0 {
				continue
			}
			diff := math.Abs(live[i][j] - expected[i][j])
			frac := diff / expected[i][j]
			if frac > c.cfg.DriftFrac && diff > c.cfg.SignificantMbps {
				pairs++
				if frac > maxFrac {
					maxFrac = frac
				}
			}
		}
	}
	return pairs, maxFrac
}

// beginRegauge starts the re-gauge snapshot and schedules the plan
// swap for the moment the probe window closes. evac lists DCs being
// evacuated by this replan (nil otherwise); they are marked handled
// here, when the replan actually starts.
func (c *Controller) beginRegauge(now float64, reason Reason, drifted int, maxFrac float64, evac []int) {
	for _, dc := range evac {
		c.deadHandled[dc] = true
	}
	opts := c.deps.SnapshotOpts()
	if c.cfg.Hardened {
		ps := measure.BeginSnapshotHardened(c.deps.Cluster, opts, c.cfg.Retry)
		c.pending = ps
		c.deps.Cluster.After(ps.DurationS(), func(applied float64) {
			if c.stopped || c.pending != ps {
				return // Stop drained the snapshot already
			}
			c.pending = nil
			c.applyHardened(ps.CollectPartial(), now, applied, reason, drifted, maxFrac, evac)
		})
		return
	}
	ps := measure.BeginSnapshot(c.deps.Cluster, opts)
	c.pending = ps
	c.deps.Cluster.After(ps.DurationS(), func(applied float64) {
		if c.stopped || c.pending != ps {
			return // Stop drained the snapshot already
		}
		c.pending = nil
		snap, stats, rep := ps.Collect()
		c.applyRegauge(snap, stats, rep, now, applied, reason, drifted, maxFrac, evac, 0)
	})
}

// applyHardened consumes a collected partial snapshot: reject it and
// advance the circuit breaker when measured coverage is below the
// threshold (degraded mode — the current plan keeps flying), fuse the
// tagged samples with the belief store otherwise and replan from the
// fused matrix.
func (c *Controller) applyHardened(part *measure.PartialSnapshot, now, applied float64, reason Reason, drifted int, maxFrac float64, evac []int) {
	cov := part.Coverage()
	c.gauge.LastCoverage = cov
	c.gauge.Retries += part.Retries()
	c.gauge.UnmeasurablePairs = part.Unmeasurable()
	// Evacuation bypasses the coverage gate: a dead DC is a fact, not a
	// measurement, and its own pairs are what drag coverage down (2/n of
	// the ordered pairs on an n-DC cluster — a 3- or 4-DC cluster can
	// never clear the 0.6 default with one DC dark). beginRegauge already
	// marked the DC handled, so gating here would refuse the evacuation
	// forever; instead the unmeasurable pairs fall back to the decayed
	// belief below and applyRegauge zeroes the dead DC's rows anyway.
	if cov < c.cfg.MinCoverage && reason != ReasonEvacuate {
		// Degraded mode: too few pairs answered for the snapshot to
		// describe the WAN. Replanning from it would swap a poisoned
		// plan into every agent, so the controller refuses: the
		// current plan is kept (planAt untouched — the staleness that
		// triggered this keeps retriggering once the WAN answers
		// again; the drift streak also survives, so a standing drift
		// signal does not rebuild hysteresis from scratch after every
		// rejection), the rejection is recorded, and enough consecutive
		// rejections open the circuit breaker.
		c.gauge.RejectedSnapshots++
		c.breakerFails++
		c.incidents = append(c.incidents, Event{
			TriggeredAt:  now,
			AppliedAt:    applied,
			Reason:       ReasonDegraded,
			DriftedPairs: drifted,
			MaxDriftFrac: maxFrac,
			EvacuatedDCs: evac,
			Cost:         part.Bill,
			Coverage:     cov,
		})
		if c.breakerFails >= c.cfg.BreakerThreshold {
			c.breakerUntil = applied + c.cfg.BreakerBackoffS
			c.incidents = append(c.incidents, Event{
				TriggeredAt: applied,
				Reason:      ReasonBreaker,
				Coverage:    cov,
				ReopenAt:    c.breakerUntil,
			})
			c.breakerFails = 0 // re-armed fresh after the backoff
		}
		return
	}
	if cov >= c.cfg.MinCoverage {
		// Only a snapshot that genuinely cleared the gate re-arms the
		// breaker counter — an evacuation swapped at low coverage says
		// nothing about whether the WAN can be measured again.
		c.breakerFails = 0
	}
	// Fusion: measured pairs blend with the staleness-decayed belief;
	// unmeasurable pairs fall back to the believed value, floored at
	// the 1 Mbps blackout belief — never a fabricated zero.
	fused := part.BW.Clone()
	for _, p := range part.Pairs {
		s := part.Samples[p]
		if s.Outcome == measure.PairUnmeasurable {
			fused[p[0]][p[1]] = c.belief.value(p[0], p[1])
			c.gauge.FusedPairs++
		} else {
			fused[p[0]][p[1]] = c.belief.fuse(p[0], p[1], s.Mbps, s.Confidence, applied)
		}
	}
	c.applyRegauge(fused, part.Stats, part.Bill, now, applied, reason, drifted, maxFrac, evac, cov)
}

// applyRegauge turns a collected (and, when hardened, fused) snapshot
// into the next plan and swaps it into the agents.
func (c *Controller) applyRegauge(snap bwmatrix.Matrix, stats []substrate.VMStats, rep measure.Report, now, applied float64, reason Reason, drifted int, maxFrac float64, evac []int, coverage float64) {
	pred := c.deps.Predict(snap, stats)
	// A dead DC carries no traffic whatever the model extrapolates:
	// zero its rows and columns so optimization runs over the
	// surviving topology only (the optimizer's bandwidth floor keeps
	// its descent finite on the zeroed pairs).
	for dc := 0; dc < pred.N(); dc++ {
		if c.dcAlive(dc) {
			continue
		}
		for j := 0; j < pred.N(); j++ {
			pred[dc][j], pred[j][dc] = 0, 0
		}
	}
	plan := c.deps.Optimize(pred)
	// Atomic swap: every agent receives its chunk of the new plan
	// within this one substrate event, so no transfer ever observes
	// a half-old, half-new plan. Multi-job deployments re-gauge once
	// and swap each job's partition of the shared windows here —
	// still one event, so no job ever runs against another job's
	// stale share either.
	if len(c.deps.Groups) > 0 {
		parts := c.deps.Partition(plan)
		for g, group := range c.deps.Groups {
			if len(group) == 0 {
				continue // idle slot of a dynamic deployment
			}
			rows := agent.ChunkPlan(c.deps.Cluster, pred, parts[g])
			for _, a := range group {
				a.SwapWindow(rows[a.VM()])
			}
		}
	} else {
		rows := agent.ChunkPlan(c.deps.Cluster, pred, plan)
		for _, a := range c.deps.Agents {
			a.SwapWindow(rows[a.VM()])
		}
	}
	if c.deps.OnPlanSwap != nil {
		c.deps.OnPlanSwap(pred, plan)
	}
	c.pred = pred.Clone()
	c.plan = plan
	c.planAt = applied
	c.streak = 0
	c.events = append(c.events, Event{
		TriggeredAt:  now,
		AppliedAt:    applied,
		Reason:       reason,
		DriftedPairs: drifted,
		MaxDriftFrac: maxFrac,
		EvacuatedDCs: evac,
		Cost:         rep,
		Coverage:     coverage,
	})
}

// TotalCost sums the measurement bills of all replans, plus those of
// rejected snapshots — a snapshot the coverage gate refused still
// moved probe bytes over the WAN.
func (c *Controller) TotalCost() measure.Report {
	var rep measure.Report
	for _, e := range c.events {
		rep = rep.Add(e.Cost)
	}
	for _, e := range c.incidents {
		rep = rep.Add(e.Cost)
	}
	return rep
}
