package runtime_test

import (
	"reflect"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/optimize"
	rgauge "github.com/wanify/wanify/internal/runtime"
)

// TestHardenedHealthyMatchesLegacyBehaviour: on a healthy network the
// hardened controller replans exactly as the legacy one does — full
// coverage, no incidents, no degraded state.
func TestHardenedHealthyMatchesLegacyBehaviour(t *testing.T) {
	sim := frozenSim(3, 51)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 51), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
		Hardened: true,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	sim.RunFor(100)
	if got := ctl.Replans(); got < 2 {
		t.Fatalf("hardened staleness clock fired %d replans, want >= 2", got)
	}
	for _, ev := range ctl.Events() {
		if ev.Coverage != 1 {
			t.Errorf("healthy replan coverage = %v, want 1", ev.Coverage)
		}
	}
	if n := len(ctl.Incidents()); n != 0 {
		t.Errorf("healthy run recorded %d incidents", n)
	}
	g := ctl.Gauge()
	if !g.Hardened || g.Degraded || g.BreakerOpen || g.RejectedSnapshots != 0 {
		t.Errorf("healthy gauge = %+v", g)
	}
	if ctl.Degraded() {
		t.Error("healthy hardened controller reports degraded")
	}
}

// TestLegacyGaugeStaysZero: with Hardened off the gauge surface is
// inert — serve must be able to omit it entirely.
func TestLegacyGaugeStaysZero(t *testing.T) {
	sim := frozenSim(3, 52)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 52), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	sim.RunFor(60)
	if g := ctl.Gauge(); g != (rgauge.GaugeStats{}) {
		t.Errorf("legacy gauge = %+v, want zero value", g)
	}
	if ctl.Degraded() || len(ctl.Incidents()) != 0 {
		t.Error("legacy controller grew hardened state")
	}
}

// TestDegradedModeAndBreaker walks the full state machine: a partition
// poisons every snapshot (coverage far below threshold) → rejections
// accumulate → the breaker opens and suppresses re-gauging → the
// partition heals → the breaker re-arms and the next clean snapshot
// replans. Along the way it locks the acceptance property: no plan
// swap ever consumes a below-coverage-threshold snapshot.
func TestDegradedModeAndBreaker(t *testing.T) {
	sim := frozenSim(4, 53)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))

	snapshots := 0
	d := deps(sim, agents, 53)
	baseSnap := d.SnapshotOpts
	d.SnapshotOpts = func() measure.Options {
		snapshots++
		return baseSnap()
	}
	const minCov = 0.6
	ctl := rgauge.Start(d, rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
		Hardened: true, MinCoverage: minCov,
		// Defaults: BreakerThreshold 3, BreakerBackoffS 4×EpochS = 20.
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	// DCs 1 and 2 partition just before the first stale snapshot
	// (t=30) and heal at t=80: 10 of 12 ordered pairs stall →
	// coverage 1/6, every snapshot rejected until the heal.
	sim.PartitionDC(1, 29, 80)
	sim.PartitionDC(2, 29, 80)

	sim.RunFor(50) // t=50: three rejections behind us, breaker open
	if got := ctl.Replans(); got != 0 {
		t.Fatalf("%d plan swaps from sub-threshold snapshots", got)
	}
	g := ctl.Gauge()
	if !g.BreakerOpen || !g.Degraded {
		t.Fatalf("breaker not open after 3 rejections: %+v", g)
	}
	if g.BreakerUntil != 61 {
		t.Errorf("breaker re-arms at %v, want 61 (opened at 41 + 20s backoff)", g.BreakerUntil)
	}
	if g.RejectedSnapshots != 3 || snapshots != 3 {
		t.Errorf("rejected=%d snapshots=%d, want 3/3 (epochs 30, 35, 40)", g.RejectedSnapshots, snapshots)
	}
	if g.LastCoverage >= minCov {
		t.Errorf("LastCoverage = %v, want below %v", g.LastCoverage, minCov)
	}

	sim.RunFor(12) // t=62: breaker held through the 45–60 epochs
	if snapshots != 3 {
		t.Errorf("open breaker let %d extra snapshots through", snapshots-3)
	}

	sim.RunFor(48) // t=110: healed at 80; breaker from the 2nd burst re-arms, clean replan lands
	if got := ctl.Replans(); got != 1 {
		t.Fatalf("replans after heal = %d, want exactly 1", got)
	}
	ev := ctl.Events()[0]
	if ev.Reason != rgauge.ReasonStale || ev.Coverage != 1 {
		t.Errorf("recovery replan = %+v, want stale at coverage 1", ev)
	}
	if ctl.Degraded() {
		t.Error("controller still degraded after a clean replan")
	}

	// The acceptance property, over everything that happened: swaps
	// only from snapshots at or above the threshold, rejections only
	// below it.
	for _, ev := range ctl.Events() {
		if ev.Coverage < minCov {
			t.Errorf("plan swap consumed a %.0f%%-coverage snapshot", ev.Coverage*100)
		}
	}
	degraded, breakers := 0, 0
	for _, in := range ctl.Incidents() {
		switch in.Reason {
		case rgauge.ReasonDegraded:
			degraded++
			if in.Coverage >= minCov {
				t.Errorf("rejected snapshot had coverage %v >= threshold", in.Coverage)
			}
		case rgauge.ReasonBreaker:
			breakers++
			if in.ReopenAt <= in.TriggeredAt {
				t.Errorf("breaker incident re-arms at %v, before it opened at %v", in.ReopenAt, in.TriggeredAt)
			}
		default:
			t.Errorf("incident with replan reason %v", in.Reason)
		}
	}
	if degraded < 4 || breakers < 1 {
		t.Errorf("incidents = %d degraded + %d breaker, want >= 4 and >= 1", degraded, breakers)
	}
	// Rejected snapshots still cost probe bytes: the bill covers them.
	if ctl.TotalCost().BytesTransferred <= ev.Cost.BytesTransferred {
		t.Error("TotalCost omits the rejected snapshots' probe traffic")
	}
}

// TestBeliefFillsUnmeasurablePairs: a snapshot at exactly the coverage
// threshold is accepted, and its unmeasurable pairs replan on the
// last-known-good belief instead of a fabricated zero.
func TestBeliefFillsUnmeasurablePairs(t *testing.T) {
	sim := frozenSim(5, 54)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 54), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
		Hardened: true,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	// DC 4 partitioned across the snapshot window: 8 of 20 pairs
	// unmeasurable, coverage exactly 0.6 — at the default threshold,
	// so the swap proceeds with belief-filled rows.
	sim.PartitionDC(4, 29, 1e9)
	sim.RunFor(40)

	if got := ctl.Replans(); got != 1 {
		t.Fatalf("replans = %d, want 1 (coverage 0.6 meets the 0.6 threshold)", got)
	}
	ev := ctl.Events()[0]
	if ev.Coverage != 0.6 {
		t.Errorf("event coverage = %v, want 0.6", ev.Coverage)
	}
	got := ctl.CurrentPred()
	for j := 0; j < 4; j++ {
		// The partitioned DC's pairs measured nothing; the fused
		// prediction must carry the seeded last-known-good verbatim.
		if got[4][j] != pred[4][j] || got[j][4] != pred[j][4] {
			t.Errorf("unmeasurable pair (4,%d): pred %v/%v, want last-known-good %v/%v",
				j, got[4][j], got[j][4], pred[4][j], pred[j][4])
		}
		if got[4][j] == 0 {
			t.Errorf("unmeasurable pair (4,%d) replanned on zero", j)
		}
	}
	if g := ctl.Gauge(); g.FusedPairs != 8 || g.UnmeasurablePairs != 8 {
		t.Errorf("gauge fused/unmeasurable = %d/%d, want 8/8", g.FusedPairs, g.UnmeasurablePairs)
	}
}

// TestNoSwapBelowCoverageThresholdProperty is the seed-swept property
// lock: whatever the fault timing does to coverage, every applied
// drift/staleness swap consumed a snapshot at or above MinCoverage and
// every rejection was below it. (Evacuation swaps are exempt by design
// — see TestEvacuationBypassesCoverageGate — but these scenarios only
// partition DCs, never kill VMs, so none fire here.)
func TestNoSwapBelowCoverageThresholdProperty(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		sim := frozenSim(4, seed)
		pred := accuratePred(sim)
		agents := deployAgents(sim, tightRows(sim, pred))
		ctl := rgauge.Start(deps(sim, agents, seed), rgauge.Config{
			Enabled: true, EpochS: 5, StaleAfterS: 15, CooldownS: 5,
			Hardened: true,
		}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))

		// Rolling partitions with varying overlap of the 1 s snapshot
		// windows (those open at 15+5k); some snapshots die, some
		// squeak through, some are clean.
		sim.PartitionDC(1, 14.5, 36)
		sim.PartitionDC(2, 35.2, 55)
		sim.PartitionDC(3, 60, 75.8)
		sim.RunFor(120)

		if ctl.Replans() == 0 {
			t.Errorf("seed %d: scenario produced no replans at all", seed)
		}
		for _, ev := range ctl.Events() {
			if ev.Reason != rgauge.ReasonEvacuate && ev.Coverage < 0.6 {
				t.Errorf("seed %d: swap at t=%.0f consumed coverage %.2f < 0.6", seed, ev.AppliedAt, ev.Coverage)
			}
		}
		for _, in := range ctl.Incidents() {
			if in.Reason == rgauge.ReasonDegraded && in.Coverage >= 0.6 {
				t.Errorf("seed %d: rejection at t=%.0f had coverage %.2f >= 0.6", seed, in.AppliedAt, in.Coverage)
			}
		}
		ctl.Stop()
	}
}

// TestEvacuationBypassesCoverageGate is the regression lock for the
// one sanctioned coverage-gate exception: a dead DC makes its own 2/n
// of the ordered pairs unmeasurable, so on a 3-DC cluster the
// evacuation snapshot can never clear the 0.6 default — and since
// beginRegauge marks the DC handled when the replan *starts*, a gated
// rejection would strand the dead DC in the plan forever. The hardened
// controller must swap the evacuation anyway, filling the unmeasurable
// pairs from belief and zeroing the dead DC, without recording a
// degraded incident or advancing the breaker.
func TestEvacuationBypassesCoverageGate(t *testing.T) {
	sim := frozenSim(3, 56)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 56), rgauge.Config{
		// Cooldown and hysteresis high enough that nothing else can
		// replan inside this run: any event is the evacuation.
		Enabled: true, EpochS: 5, CooldownS: 1000, HysteresisEpochs: 100,
		Hardened: true,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	for _, vm := range sim.VMsOfDC(2) {
		sim.KillVM(vm, 7)
	}
	sim.RunFor(120)

	if got := ctl.Replans(); got != 1 {
		t.Fatalf("DC death fired %d replans, want exactly 1 (coverage gate must not reject the evacuation)", got)
	}
	ev := ctl.Events()[0]
	if ev.Reason != rgauge.ReasonEvacuate || !reflect.DeepEqual(ev.EvacuatedDCs, []int{2}) {
		t.Errorf("replan = %+v, want evacuation of DC2", ev)
	}
	if ev.Coverage >= 0.6 {
		t.Errorf("evacuation snapshot coverage = %v, want below the 0.6 gate (the scenario must exercise the bypass)", ev.Coverage)
	}
	if n := len(ctl.Incidents()); n != 0 {
		t.Errorf("evacuation recorded %d incidents, want 0 (the bypass is not a rejection)", n)
	}
	if ctl.Degraded() {
		t.Error("controller degraded after a clean evacuation")
	}
	newPred := ctl.CurrentPred()
	for j := 0; j < sim.NumDCs(); j++ {
		if newPred[2][j] != 0 || newPred[j][2] != 0 {
			t.Errorf("evacuated pred keeps bandwidth through dead DC2: pred[2][%d]=%.0f pred[%d][2]=%.0f",
				j, newPred[2][j], j, newPred[j][2])
		}
	}
	if newPred[0][1] == 0 || newPred[1][0] == 0 {
		t.Errorf("surviving pair replanned on zero bandwidth: %v/%v", newPred[0][1], newPred[1][0])
	}
}

// TestHardenedDeterminism: the full degraded/breaker history is a pure
// function of the seed.
func TestHardenedDeterminism(t *testing.T) {
	run := func() ([]rgauge.Event, []rgauge.Event, bwmatrix.Matrix) {
		sim := frozenSim(4, 55)
		pred := accuratePred(sim)
		agents := deployAgents(sim, tightRows(sim, pred))
		ctl := rgauge.Start(deps(sim, agents, 55), rgauge.Config{
			Enabled: true, EpochS: 5, StaleAfterS: 15, CooldownS: 5,
			Hardened: true,
		}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
		defer ctl.Stop()
		sim.PartitionDC(1, 14.5, 40)
		sim.PartitionDC(2, 14.5, 40)
		sim.RunFor(90)
		return ctl.Events(), ctl.Incidents(), ctl.CurrentPred()
	}
	ev1, in1, pred1 := run()
	ev2, in2, pred2 := run()
	if len(in1) == 0 {
		t.Fatal("scenario produced no incidents")
	}
	assertDeepEqual(t, "events", ev1, ev2)
	assertDeepEqual(t, "incidents", in1, in2)
	assertDeepEqual(t, "pred", pred1, pred2)
}

func assertDeepEqual(t *testing.T, what string, a, b interface{}) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s diverge:\n%v\n%v", what, a, b)
	}
}
