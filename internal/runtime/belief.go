package runtime

// Last-known-good belief store for failure-aware re-gauging (see
// DESIGN.md §11). When a hardened snapshot comes back partial, the
// controller must still hand the predictor a full matrix — but a pair
// the probes could not measure must not read as zero (the poison this
// machinery exists to stop) nor as the stale value at full weight.
// The store keeps, per ordered DC pair, the last fused bandwidth, the
// time it was observed and a confidence; the belief's WEIGHT decays
// exponentially with staleness (half-life Config.BeliefHalfLifeS)
// while its VALUE holds, floored at the same 1 Mbps blackout belief
// internal/gda locks for believed-blackout pairs — an unmeasurable
// pair degrades gracefully toward "assume blackout", never "assume
// free capacity" and never "assume zero".

import (
	"math"

	"github.com/wanify/wanify/internal/bwmatrix"
)

// blackoutFloorMbps mirrors the gda blackout belief: no fused or
// believed bandwidth is ever reported below 1 Mbps, so the optimizer
// treats a long-unmeasured pair as a blackout, not a hole.
const blackoutFloorMbps = 1.0

// beliefStore holds the per-pair last-known-good bandwidth belief.
type beliefStore struct {
	mbps      bwmatrix.Matrix
	at        [][]float64
	conf      [][]float64
	halfLifeS float64
}

func newBeliefStore(n int, halfLifeS float64) *beliefStore {
	b := &beliefStore{
		mbps:      bwmatrix.New(n),
		at:        make([][]float64, n),
		conf:      make([][]float64, n),
		halfLifeS: halfLifeS,
	}
	for i := range b.at {
		b.at[i] = make([]float64, n)
		b.conf[i] = make([]float64, n)
	}
	return b
}

// seed installs a prior belief for every off-diagonal pair — the
// prediction the current plan was built from, at modest confidence.
func (b *beliefStore) seed(m bwmatrix.Matrix, now, conf float64) {
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			b.mbps[i][j] = m[i][j]
			b.at[i][j] = now
			b.conf[i][j] = conf
		}
	}
}

// weight returns the belief's staleness-decayed confidence:
// conf × 2^(−age/halfLife).
func (b *beliefStore) weight(i, j int, now float64) float64 {
	age := now - b.at[i][j]
	if age < 0 {
		age = 0
	}
	return b.conf[i][j] * math.Exp2(-age/b.halfLifeS)
}

// value returns the believed bandwidth, floored at the blackout
// belief.
func (b *beliefStore) value(i, j int) float64 {
	return math.Max(b.mbps[i][j], blackoutFloorMbps)
}

// fuse blends a fresh measurement into the belief and returns the
// fused value: a confidence-weighted average of the new sample and
// the decayed prior, floored at the blackout belief. The stored
// confidence is the probabilistic union of the two weights, so a
// string of low-confidence samples still converges.
func (b *beliefStore) fuse(i, j int, measured, conf, now float64) float64 {
	wNew := conf
	wOld := b.weight(i, j, now)
	var fused float64
	if wNew+wOld <= 0 {
		fused = measured
	} else {
		fused = (wNew*measured + wOld*b.value(i, j)) / (wNew + wOld)
	}
	fused = math.Max(fused, blackoutFloorMbps)
	b.mbps[i][j] = fused
	b.at[i][j] = now
	c := wNew + wOld*(1-wNew)
	if c > 1 {
		c = 1
	}
	b.conf[i][j] = c
	return fused
}
