package runtime_test

import (
	"reflect"
	"testing"

	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *netsim.Sim {
	cfg := netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return netsim.NewSim(cfg)
}

// accuratePred returns a prediction matrix equal to the simulator's
// actual per-connection caps: a plan built on it promises exactly what
// a single connection delivers.
func accuratePred(sim *netsim.Sim) bwmatrix.Matrix {
	n := sim.NumDCs()
	out := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out[i][j] = sim.PerConnCapMbps(i, j)
			}
		}
	}
	return out
}

// tightRows builds per-VM rows with a collapsed [1, 1] window and
// targets equal to pred — the monitored rate of an uncontended
// single-connection flow matches its target exactly, so a stable
// network produces zero drift.
func tightRows(sim *netsim.Sim, pred bwmatrix.Matrix) map[substrate.VMID]agent.PlanRow {
	n := sim.NumDCs()
	rows := make(map[substrate.VMID]agent.PlanRow)
	for dc := 0; dc < n; dc++ {
		for _, vm := range sim.VMsOfDC(dc) {
			row := agent.PlanRow{
				MinConns: make([]int, n), MaxConns: make([]int, n),
				MinBW: make([]float64, n), MaxBW: make([]float64, n),
				PredBW: make([]float64, n),
			}
			for j := 0; j < n; j++ {
				row.MinConns[j], row.MaxConns[j] = 1, 1
				if j != dc {
					row.PredBW[j] = pred[dc][j]
					row.MinBW[j] = pred[dc][j]
					row.MaxBW[j] = pred[dc][j]
				}
			}
			rows[vm] = row
		}
	}
	return rows
}

func deployAgents(sim *netsim.Sim, rows map[substrate.VMID]agent.PlanRow) []*agent.Agent {
	var out []*agent.Agent
	for dc := 0; dc < sim.NumDCs(); dc++ {
		for _, vm := range sim.VMsOfDC(dc) {
			a := agent.New(sim, vm, agent.Config{})
			a.ApplyPlan(rows[vm])
			a.Start()
			out = append(out, a)
		}
	}
	return out
}

// deps wires fake predict/optimize hooks: the snapshot itself becomes
// the prediction (no model), and optimization is the real Algorithm 1.
func deps(sim *netsim.Sim, agents []*agent.Agent, seed uint64) rgauge.Deps {
	rng := simrand.Derive(seed, "controller-test")
	return rgauge.Deps{
		Cluster: sim,
		Agents:  agents,
		SnapshotOpts: func() measure.Options {
			return measure.SnapshotOptions(rng.Derive("snapshot"))
		},
		Predict: func(snap bwmatrix.Matrix, stats []substrate.VMStats) bwmatrix.Matrix {
			return snap.Clone()
		},
		Optimize: func(pred bwmatrix.Matrix) optimize.Plan {
			return optimize.GlobalOptimize(pred, optimize.Options{})
		},
	}
}

// steadyFlow starts a long transfer on the pair and registers it with
// the source agent so the WAN monitor sees its bytes.
func steadyFlow(sim *netsim.Sim, agents []*agent.Agent, srcDC, dstDC int, bytes float64) substrate.Flow {
	src := sim.FirstVMOfDC(srcDC)
	f := sim.StartFlow(src, sim.FirstVMOfDC(dstDC), 1, bytes, nil)
	for _, a := range agents {
		if a.VM() == src {
			a.Register(f)
		}
	}
	return f
}

// TestStableNetworkNoReplanChurn is the core churn invariant: on a
// frozen network whose plan promises exactly what links deliver, the
// controller observes many epochs and never replans.
func TestStableNetworkNoReplanChurn(t *testing.T) {
	sim := frozenSim(3, 1)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 1), rgauge.Config{
		Enabled: true, EpochS: 5,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	f := steadyFlow(sim, agents, 0, 1, 1e12)
	defer f.Stop()
	sim.RunFor(120) // 24 controller epochs

	if got := ctl.Replans(); got != 0 {
		t.Errorf("stable network replanned %d times", got)
	}
	if got := ctl.DriftEpochs(); got != 0 {
		t.Errorf("stable network counted %d drift epochs", got)
	}
	if live := ctl.Live(); live == nil || live[0][1] < 100 {
		t.Errorf("controller did not aggregate live rates: %v", live)
	}
}

// TestDriftTriggersReplanAndSwapsWindows degrades a link mid-run and
// checks the full loop: persistent drift arms the trigger, a snapshot
// is taken, and the new plan's windows land on the running agents.
func TestDriftTriggersReplanAndSwapsWindows(t *testing.T) {
	sim := frozenSim(3, 2)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 2), rgauge.Config{
		Enabled: true, EpochS: 5, CooldownS: 10,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	f := steadyFlow(sim, agents, 0, 1, 1e12)
	defer f.Stop()
	sim.RunFor(12) // healthy epochs first

	sim.SetPairLimit(0, 1, 300) // the 1700 Mbps link collapses
	sim.RunFor(40)

	if got := ctl.Replans(); got < 1 {
		t.Fatalf("no replan after persistent drift (driftEpochs=%d)", ctl.DriftEpochs())
	}
	ev := ctl.Events()[0]
	if ev.Reason != rgauge.ReasonDrift {
		t.Errorf("replan reason = %v, want drift", ev.Reason)
	}
	if ev.DriftedPairs < 1 || ev.MaxDriftFrac < 0.3 {
		t.Errorf("event records no drift: %+v", ev)
	}
	if ev.AppliedAt <= ev.TriggeredAt {
		t.Errorf("swap applied at %v, triggered at %v", ev.AppliedAt, ev.TriggeredAt)
	}
	if ev.Cost.BytesTransferred <= 0 {
		t.Errorf("re-gauge snapshot moved no probe bytes")
	}
	// The re-gauged prediction reflects the degraded link, and the
	// degraded pair's new window landed on the agent.
	newPred := ctl.CurrentPred()
	if newPred[0][1] >= pred[0][1]*0.5 {
		t.Errorf("re-gauged pred[0][1] = %.0f, want well below the original %.0f", newPred[0][1], pred[0][1])
	}
	plan := ctl.CurrentPlan()
	for _, a := range agents {
		if a.DC() != 0 {
			continue
		}
		c := a.Conns()[1]
		if c < plan.MinConns[0][1] || c > plan.MaxConns[0][1] {
			t.Errorf("agent conns[1] = %d outside swapped window [%d, %d]",
				c, plan.MinConns[0][1], plan.MaxConns[0][1])
		}
	}
}

// TestBlackoutStillTriggersReplan pins the dead-link case: a pair
// whose live rate collapses below the MinActiveMbps floor while
// transfers are still in flight must count as drifted (demand present,
// nothing delivered), not as idle.
func TestBlackoutStillTriggersReplan(t *testing.T) {
	sim := frozenSim(3, 21)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 21), rgauge.Config{
		Enabled: true, EpochS: 5, CooldownS: 10,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	f := steadyFlow(sim, agents, 0, 1, 1e12)
	defer f.Stop()
	sim.RunFor(12)

	sim.SetPairLimit(0, 1, 1) // blackout: ~1 Mbps, far below the 5 Mbps floor
	sim.RunFor(40)

	if got := ctl.Replans(); got < 1 {
		t.Fatalf("blackout hid below the activity floor: no replan (driftEpochs=%d)", ctl.DriftEpochs())
	}
	if ev := ctl.Events()[0]; ev.Reason != rgauge.ReasonDrift {
		t.Errorf("blackout replan reason = %v, want drift", ev.Reason)
	}
}

// TestHysteresisIgnoresTransientBlip checks a one-epoch dip does not
// replan: the streak resets before reaching HysteresisEpochs.
func TestHysteresisIgnoresTransientBlip(t *testing.T) {
	sim := frozenSim(3, 3)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 3), rgauge.Config{
		Enabled: true, EpochS: 5, HysteresisEpochs: 3,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	f := steadyFlow(sim, agents, 0, 1, 1e12)
	defer f.Stop()
	sim.RunFor(11)

	sim.SetPairLimit(0, 1, 300)
	sim.RunFor(5) // exactly one degraded controller epoch
	sim.ClearPairLimit(0, 1)
	sim.RunFor(60)

	if got := ctl.Replans(); got != 0 {
		t.Errorf("transient blip caused %d replans", got)
	}
	if got := ctl.DriftEpochs(); got == 0 {
		t.Errorf("blip not observed at all (expected 1-2 drift epochs)")
	}
}

// TestStalenessClockForcesReplan checks the drift-free path: with
// StaleAfterS set, an idle deployment still re-gauges periodically.
func TestStalenessClockForcesReplan(t *testing.T) {
	sim := frozenSim(3, 4)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 4), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	sim.RunFor(100)
	if got := ctl.Replans(); got < 2 {
		t.Fatalf("staleness clock fired %d replans over 100s with StaleAfterS=30", got)
	}
	for _, ev := range ctl.Events() {
		if ev.Reason != rgauge.ReasonStale {
			t.Errorf("idle replan reason = %v, want stale", ev.Reason)
		}
		if ev.DriftedPairs != 0 {
			t.Errorf("idle replan records %d drifted pairs", ev.DriftedPairs)
		}
	}
}

// TestMaxReplansCap checks the replan budget.
func TestMaxReplansCap(t *testing.T) {
	sim := frozenSim(3, 5)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 5), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 20, CooldownS: 5, MaxReplans: 1,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	sim.RunFor(200)
	if got := ctl.Replans(); got != 1 {
		t.Errorf("MaxReplans=1 but %d replans fired", got)
	}
}

// TestConservationAcrossPlanSwap checks no bytes are lost or invented
// when windows swap mid-transfer: every sized flow still delivers
// exactly its payload.
func TestConservationAcrossPlanSwap(t *testing.T) {
	sim := frozenSim(3, 6)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 6), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 15, CooldownS: 5,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	const payload = 40e9 // ~3 min at 1700 Mbps: several swaps happen mid-flight
	f1 := steadyFlow(sim, agents, 0, 1, payload)
	f2 := steadyFlow(sim, agents, 1, 2, payload)
	if err := sim.AwaitFlows(3600, f1, f2); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Replans(); got < 1 {
		t.Fatalf("scenario exercised no plan swap")
	}
	for i, f := range []substrate.Flow{f1, f2} {
		if got := f.TransferredBytes(); got < payload-1 || got > payload+1 {
			t.Errorf("flow %d delivered %.0f bytes, want %.0f", i, got, payload)
		}
	}
}

// TestDeterminism runs an identical drift scenario twice and demands
// byte-identical controller histories and final predictions.
func TestDeterminism(t *testing.T) {
	run := func() ([]rgauge.Event, bwmatrix.Matrix) {
		sim := frozenSim(3, 7)
		pred := accuratePred(sim)
		agents := deployAgents(sim, tightRows(sim, pred))
		ctl := rgauge.Start(deps(sim, agents, 7), rgauge.Config{
			Enabled: true, EpochS: 5,
		}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
		defer ctl.Stop()
		f := steadyFlow(sim, agents, 0, 1, 1e12)
		defer f.Stop()
		sim.RunFor(12)
		sim.SetPairLimit(0, 1, 250)
		sim.RunFor(60)
		return ctl.Events(), ctl.CurrentPred()
	}
	ev1, pred1 := run()
	ev2, pred2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("event histories diverge:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(pred1, pred2) {
		t.Errorf("final predictions diverge")
	}
	if len(ev1) == 0 {
		t.Fatalf("determinism scenario produced no events")
	}
}

// TestStopMidSnapshotAbandonsProbes stops the controller while a
// re-gauge snapshot is in flight: the probes are torn down, no swap is
// applied, and the simulation keeps running cleanly.
func TestStopMidSnapshotAbandonsProbes(t *testing.T) {
	sim := frozenSim(3, 8)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 8), rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 10,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))

	// StaleAfterS=10 with cooldown 10: the trigger arms at the t=10
	// epoch and the snapshot window is (10, 11]. Stop inside it.
	sim.RunFor(10.5)
	if sim.ActiveFlows() == 0 {
		t.Fatalf("no probes in flight at t=10.5 (trigger did not arm)")
	}
	ctl.Stop()
	if got := sim.ActiveFlows(); got != 0 {
		t.Errorf("%d probes left after Stop", got)
	}
	sim.RunFor(20) // the orphaned swap timer must be a no-op
	if got := ctl.Replans(); got != 0 {
		t.Errorf("replan applied after Stop")
	}
	for _, a := range agents {
		a.Stop()
	}
}

// TestEvacuationBypassesCooldown kills every VM of one DC and checks
// the controller fires an evacuation replan at the very next epoch —
// through a cooldown and hysteresis that would block any drift or
// staleness trigger — zeroes the dead DC out of the prediction, and
// never fires for the same DC twice.
func TestEvacuationBypassesCooldown(t *testing.T) {
	sim := frozenSim(3, 41)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 41), rgauge.Config{
		// Cooldown and hysteresis high enough that nothing else can
		// possibly replan inside this run: any event is the evacuation.
		Enabled: true, EpochS: 5, CooldownS: 1000, HysteresisEpochs: 100,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	for _, vm := range sim.VMsOfDC(2) {
		sim.KillVM(vm, 7)
	}
	sim.RunFor(120)

	if got := ctl.Replans(); got != 1 {
		t.Fatalf("DC death fired %d replans, want exactly 1 (deadHandled must stop re-fires)", got)
	}
	ev := ctl.Events()[0]
	if ev.Reason != rgauge.ReasonEvacuate {
		t.Errorf("replan reason = %v, want evacuate", ev.Reason)
	}
	if !reflect.DeepEqual(ev.EvacuatedDCs, []int{2}) {
		t.Errorf("EvacuatedDCs = %v, want [2]", ev.EvacuatedDCs)
	}
	// Kill at t=7, epochs every 5s: the t=10 epoch must trigger despite
	// the 1000s cooldown.
	if ev.TriggeredAt != 10 {
		t.Errorf("evacuation triggered at t=%v, want the first epoch after death (t=10)", ev.TriggeredAt)
	}
	newPred := ctl.CurrentPred()
	for j := 0; j < sim.NumDCs(); j++ {
		if newPred[2][j] != 0 || newPred[j][2] != 0 {
			t.Errorf("evacuated pred keeps bandwidth through dead DC2: pred[2][%d]=%.0f pred[%d][2]=%.0f",
				j, newPred[2][j], j, newPred[j][2])
		}
	}
}

// TestStaleFiresAtZeroLiveRate pins the satellite invariant: a full DC
// partition drops every live rate on its pairs to zero, and the
// staleness clock must keep firing anyway — StaleAfterS compares plan
// age, not traffic, so a silent network cannot starve re-gauging.
func TestStaleFiresAtZeroLiveRate(t *testing.T) {
	sim := frozenSim(3, 42)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 42), rgauge.Config{
		// Hysteresis high enough that the (very real) drift signal of a
		// stalled pair never arms: every replan here is pure staleness.
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
		HysteresisEpochs: 100,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	f := steadyFlow(sim, agents, 0, 1, 1e12)
	defer f.Stop()
	sim.PartitionDC(1, 2, 1e9) // effectively forever; flows stall at rate 0
	sim.RunFor(100)

	if live := ctl.Live(); live == nil || live[0][1] != 0 {
		t.Fatalf("partitioned pair still shows live rate %v (scenario did not stall)", live)
	}
	if got := ctl.Replans(); got < 2 {
		t.Fatalf("staleness fired %d replans over 100s at zero live rate, want >= 2", got)
	}
	for _, ev := range ctl.Events() {
		if ev.Reason != rgauge.ReasonStale {
			t.Errorf("replan reason = %v, want stale (hysteresis should have blocked drift)", ev.Reason)
		}
	}
}

// TestMaxReplansCapsEvacuation checks the replan budget binds
// evacuations too: with MaxReplans=1 spent on the first dead DC, a
// second DC death must not schedule another replan, however justified.
func TestMaxReplansCapsEvacuation(t *testing.T) {
	sim := frozenSim(3, 43)
	pred := accuratePred(sim)
	agents := deployAgents(sim, tightRows(sim, pred))
	ctl := rgauge.Start(deps(sim, agents, 43), rgauge.Config{
		Enabled: true, EpochS: 5, MaxReplans: 1,
	}, pred, optimize.GlobalOptimize(pred, optimize.Options{}))
	defer ctl.Stop()

	for _, vm := range sim.VMsOfDC(1) {
		sim.KillVM(vm, 7)
	}
	for _, vm := range sim.VMsOfDC(2) {
		sim.KillVM(vm, 40)
	}
	sim.RunFor(150)

	if got := ctl.Replans(); got != 1 {
		t.Fatalf("MaxReplans=1 but %d replans fired across two DC deaths", got)
	}
	ev := ctl.Events()[0]
	if ev.Reason != rgauge.ReasonEvacuate || !reflect.DeepEqual(ev.EvacuatedDCs, []int{1}) {
		t.Errorf("sole replan = %v, want evacuation of DC1", ev)
	}
}

// deployJobGroups starts one agent per (job, VM), each loaded with its
// job's chunk of a partitioned plan — the wanify.DeployJobSetAgents
// shape without the framework.
func deployJobGroups(sim *netsim.Sim, pred bwmatrix.Matrix, parts []optimize.Plan) [][]*agent.Agent {
	var groups [][]*agent.Agent
	for _, part := range parts {
		rows := agent.ChunkPlan(sim, pred, part)
		var group []*agent.Agent
		for dc := 0; dc < sim.NumDCs(); dc++ {
			for _, vm := range sim.VMsOfDC(dc) {
				a := agent.New(sim, vm, agent.Config{})
				a.ApplyPlan(rows[vm])
				a.Start()
				group = append(group, a)
			}
		}
		groups = append(groups, group)
	}
	return groups
}

// TestMultiJobRegaugeOnceAndPartition locks the arbitration contract:
// with two jobs sharing the controller, a trigger re-gauges the
// cluster ONCE (one snapshot, one optimize), partitions the new plan
// once, swaps every group in the same event, runs OnPlanSwap — and the
// per-pair sum of the jobs' connection targets never exceeds the
// global window afterwards.
func TestMultiJobRegaugeOnceAndPartition(t *testing.T) {
	sim := frozenSim(3, 31)
	pred := accuratePred(sim)
	plan := optimize.GlobalOptimize(pred, optimize.Options{})
	shares := optimize.ShareWeights(optimize.ShareFair, 2, nil, nil)
	groups := deployJobGroups(sim, pred, optimize.PartitionPlan(plan, shares))
	var union []*agent.Agent
	for _, g := range groups {
		union = append(union, g...)
	}

	var snapshots, optimizes, partitions, swaps int
	d := deps(sim, union, 31)
	baseSnap := d.SnapshotOpts
	d.SnapshotOpts = func() measure.Options {
		snapshots++
		return baseSnap()
	}
	baseOpt := d.Optimize
	d.Optimize = func(p bwmatrix.Matrix) optimize.Plan {
		optimizes++
		return baseOpt(p)
	}
	d.Groups = groups
	d.Partition = func(p optimize.Plan) []optimize.Plan {
		partitions++
		return optimize.PartitionPlan(p, shares)
	}
	d.OnPlanSwap = func(bwmatrix.Matrix, optimize.Plan) { swaps++ }

	ctl := rgauge.Start(d, rgauge.Config{
		Enabled: true, EpochS: 5, StaleAfterS: 30, CooldownS: 10,
	}, pred, plan)
	defer ctl.Stop()

	sim.RunFor(80)
	replans := ctl.Replans()
	if replans < 1 {
		t.Fatal("staleness produced no replans")
	}
	if snapshots != replans || optimizes != replans || partitions != replans || swaps != replans {
		t.Errorf("per replan want exactly one snapshot/optimize/partition/swap, got %d/%d/%d/%d over %d replans",
			snapshots, optimizes, partitions, swaps, replans)
	}

	// Oversubscription invariant after the swap: summed per-job conns
	// within the re-gauged global window on every pair.
	global := ctl.CurrentPlan()
	n := sim.NumDCs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sum := 0
			for _, g := range groups {
				for _, a := range g {
					if a.DC() == i {
						sum += a.Conns()[j]
					}
				}
			}
			if sum > global.MaxConns[i][j] {
				t.Errorf("pair (%d,%d): jobs hold %d conns > global window %d",
					i, j, sum, global.MaxConns[i][j])
			}
		}
	}
	for _, g := range groups {
		for _, a := range g {
			a.Stop()
		}
	}
}

// TestMultiJobAggregatesLiveAcrossJobs checks the live matrix the
// controller compares against the plan is the SUM of all jobs' rates
// per pair: two jobs each moving half a link's traffic must not look
// like cluster-wide drift.
func TestMultiJobAggregatesLiveAcrossJobs(t *testing.T) {
	sim := frozenSim(3, 32)
	pred := accuratePred(sim)
	plan := optimize.GlobalOptimize(pred, optimize.Options{})
	shares := optimize.ShareWeights(optimize.ShareFair, 2, nil, nil)
	groups := deployJobGroups(sim, pred, optimize.PartitionPlan(plan, shares))
	var union []*agent.Agent
	for _, g := range groups {
		union = append(union, g...)
	}
	d := deps(sim, union, 32)
	d.Groups = groups
	d.Partition = func(p optimize.Plan) []optimize.Plan {
		return optimize.PartitionPlan(p, shares)
	}
	ctl := rgauge.Start(d, rgauge.Config{Enabled: true, EpochS: 5}, pred, plan)
	defer ctl.Stop()

	// One long flow per job on the same pair; each is registered with
	// its own job's source agent.
	src := sim.FirstVMOfDC(0)
	for _, g := range groups {
		f := sim.StartFlow(src, sim.FirstVMOfDC(1), 1, 1e12, nil)
		for _, a := range g {
			if a.VM() == src {
				a.Register(f)
			}
		}
		defer f.Stop()
	}
	sim.RunFor(16)

	live := ctl.Live()
	if live == nil {
		t.Fatal("no live matrix after controller epochs")
	}
	pairRate := sim.PairRate(0, 1)
	if live[0][1] < pairRate*0.8 || live[0][1] > pairRate*1.2 {
		t.Errorf("aggregated live[0][1] = %.0f Mbps, want the pair's total ~%.0f (both jobs summed)",
			live[0][1], pairRate)
	}
}
