package runtime

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/bwmatrix"
)

func seededStore(n int, mbps, conf, at float64) *beliefStore {
	m := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m[i][j] = mbps
			}
		}
	}
	b := newBeliefStore(n, 120)
	b.seed(m, at, conf)
	return b
}

// TestBeliefWeightDecay: the belief's weight halves every half-life
// while its value holds.
func TestBeliefWeightDecay(t *testing.T) {
	b := seededStore(3, 800, 0.5, 0)
	if got := b.weight(0, 1, 0); got != 0.5 {
		t.Errorf("weight at age 0 = %v, want the seeded 0.5", got)
	}
	if got := b.weight(0, 1, 120); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("weight after one half-life = %v, want 0.25", got)
	}
	if got := b.weight(0, 1, 360); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("weight after three half-lives = %v, want 0.0625", got)
	}
	if got := b.value(0, 1); got != 800 {
		t.Errorf("value decayed to %v; staleness must decay weight, not value", got)
	}
}

// TestBeliefBlackoutFloor: an unseeded or zero-valued belief reads as
// the 1 Mbps blackout belief, never zero, and fusion cannot go below
// the floor either.
func TestBeliefBlackoutFloor(t *testing.T) {
	b := newBeliefStore(3, 120)
	if got := b.value(0, 1); got != blackoutFloorMbps {
		t.Errorf("unseeded value = %v, want the %v Mbps floor", got, blackoutFloorMbps)
	}
	if got := b.fuse(0, 1, 0, 1, 0); got != blackoutFloorMbps {
		t.Errorf("fusing a zero reading = %v, want floored at %v", got, blackoutFloorMbps)
	}
}

// TestBeliefFusionBlend: fusing a fresh confident reading with a
// decayed prior lands at the confidence-weighted average, and the
// stored confidence is the probabilistic union of the weights.
func TestBeliefFusionBlend(t *testing.T) {
	b := seededStore(3, 1000, 0.5, 0)
	// One half-life later the prior weighs 0.25; a confidence-1 sample
	// of 400 Mbps fuses to (1*400 + 0.25*1000) / 1.25 = 520.
	got := b.fuse(0, 1, 400, 1, 120)
	if math.Abs(got-520) > 1e-9 {
		t.Errorf("fused = %v, want 520", got)
	}
	if c := b.conf[0][1]; c != 1 {
		t.Errorf("stored confidence = %v, want capped at 1", c)
	}
	if at := b.at[0][1]; at != 120 {
		t.Errorf("observation time = %v, want 120", at)
	}
	// A second low-confidence sample right away: prior weight is now 1.
	got = b.fuse(0, 1, 100, 0.2, 120)
	want := (0.2*100 + 1*520) / 1.2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("low-confidence refuse = %v, want %v", got, want)
	}
}

// TestBeliefConfidenceConverges: repeated low-confidence samples drive
// the stored confidence up (probabilistic union), not down.
func TestBeliefConfidenceConverges(t *testing.T) {
	b := seededStore(3, 500, 0.1, 0)
	prev := b.conf[0][1]
	for k := 0; k < 5; k++ {
		b.fuse(0, 1, 500, 0.3, 0)
		if b.conf[0][1] < prev {
			t.Fatalf("confidence fell from %v to %v on a fresh sample", prev, b.conf[0][1])
		}
		prev = b.conf[0][1]
	}
	if prev <= 0.5 {
		t.Errorf("confidence after 5 samples = %v, want converging toward 1", prev)
	}
}
