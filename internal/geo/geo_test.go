package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestTestbedShape checks the canonical 8-region deployment.
func TestTestbedShape(t *testing.T) {
	tb := Testbed()
	if len(tb) != 8 {
		t.Fatalf("testbed has %d regions, want 8", len(tb))
	}
	if tb[0] != USEast || tb[3] != APSE || tb[7] != SAEast {
		t.Errorf("testbed order changed: %v", tb)
	}
	codes := map[string]bool{}
	for _, r := range tb {
		if codes[r.Code] {
			t.Errorf("duplicate region code %s", r.Code)
		}
		codes[r.Code] = true
		if r.Provider != "aws" {
			t.Errorf("region %s provider = %q, want aws", r.Name, r.Provider)
		}
	}
}

// TestKnownDistances checks a few well-known great-circle distances
// within tolerance.
func TestKnownDistances(t *testing.T) {
	cases := []struct {
		a, b   Region
		wantKm float64
		tolKm  float64
	}{
		{USEast, USWest, 3870, 200}, // Virginia - N. California
		{USEast, APSE, 15540, 500},  // Virginia - Singapore
		{USEast, EUWest, 5470, 300}, // Virginia - Dublin
		{APSE, APSE2, 6300, 400},    // Singapore - Sydney
		{SAEast, EUWest, 9400, 500}, // Sao Paulo - Dublin
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.tolKm {
			t.Errorf("distance %s-%s = %.0f km, want %.0f±%.0f", c.a.Name, c.b.Name, got, c.wantKm, c.tolKm)
		}
	}
}

// TestDistanceProperties property-checks symmetry, non-negativity and
// the zero diagonal.
func TestDistanceProperties(t *testing.T) {
	tb := Testbed()
	f := func(ai, bi uint8) bool {
		a := tb[int(ai)%len(tb)]
		b := tb[int(bi)%len(tb)]
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		if dab < 0 {
			return false
		}
		if a.Code == b.Code && dab != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTriangleInequality checks the haversine metric over the testbed.
func TestTriangleInequality(t *testing.T) {
	tb := Testbed()
	for _, a := range tb {
		for _, b := range tb {
			for _, c := range tb {
				if DistanceKm(a, c) > DistanceKm(a, b)+DistanceKm(b, c)+1e-6 {
					t.Fatalf("triangle inequality violated for %s-%s-%s", a.Name, b.Name, c.Name)
				}
			}
		}
	}
}

// TestMilesConversion checks the Table 3 D_ij unit.
func TestMilesConversion(t *testing.T) {
	km := DistanceKm(USEast, USWest)
	mi := DistanceMiles(USEast, USWest)
	if math.Abs(mi*1.60934-km) > 1e-6 {
		t.Errorf("miles conversion off: %.2f mi vs %.2f km", mi, km)
	}
}

// TestRTTMonotoneInDistance checks that farther pairs have higher RTT
// and that absolute values are plausible (US East - AP SE ~ 220 ms).
func TestRTTMonotoneInDistance(t *testing.T) {
	near := RTT(USEast, USWest)
	far := RTT(USEast, APSE)
	if near >= far {
		t.Errorf("RTT(USE-USW)=%v >= RTT(USE-APSE)=%v", near, far)
	}
	if far < 180*time.Millisecond || far > 260*time.Millisecond {
		t.Errorf("RTT(USE-APSE) = %v, want ~220ms", far)
	}
	if near < 40*time.Millisecond || near > 80*time.Millisecond {
		t.Errorf("RTT(USE-USW) = %v, want ~55ms", near)
	}
	if same := RTT(USEast, USEast); same > time.Millisecond {
		t.Errorf("intra-region RTT = %v, want sub-millisecond floor", same)
	}
}

// TestDistanceMatrix checks shape and symmetry of the matrix helper.
func TestDistanceMatrix(t *testing.T) {
	m := DistanceMatrixMiles(TestbedSubset(4))
	if len(m) != 4 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at [%d][%d]", i, j)
			}
		}
	}
}

// TestTestbedSubsetPanics checks range validation.
func TestTestbedSubsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TestbedSubset(9) did not panic")
		}
	}()
	TestbedSubset(9)
}
