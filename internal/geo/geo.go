// Package geo models the geography of the data centers used throughout
// the WANify reproduction: region coordinates, great-circle distances,
// and wide-area round-trip-time estimation.
//
// The canonical topology is the 8-region AWS deployment of the paper's
// Figure 1: US East (N. Virginia), US West (N. California), AP South
// (Mumbai), AP Southeast (Singapore), AP Southeast 2 (Sydney), AP
// Northeast (Tokyo), EU West (Ireland) and SA East (São Paulo).
package geo

import (
	"fmt"
	"math"
	"time"
)

// Region identifies a cloud data-center region.
type Region struct {
	// Name is the human-readable region name, e.g. "US East".
	Name string
	// Code is the provider region code, e.g. "us-east-1".
	Code string
	// Provider is the cloud provider hosting the region ("aws", "gcp", ...).
	Provider string
	// Lat and Lon are the approximate geographic coordinates of the
	// region's data centers, in degrees.
	Lat, Lon float64
}

// String returns the region name.
func (r Region) String() string { return r.Name }

// The 8 AWS regions of the paper's testbed (Fig. 1), in the order used
// by every experiment. Coordinates are approximate metro locations.
var (
	USEast  = Region{Name: "US East", Code: "us-east-1", Provider: "aws", Lat: 38.95, Lon: -77.45}
	USWest  = Region{Name: "US West", Code: "us-west-1", Provider: "aws", Lat: 37.35, Lon: -121.96}
	APSouth = Region{Name: "AP South", Code: "ap-south-1", Provider: "aws", Lat: 19.08, Lon: 72.88}
	APSE    = Region{Name: "AP SE", Code: "ap-southeast-1", Provider: "aws", Lat: 1.35, Lon: 103.82}
	APSE2   = Region{Name: "AP SE-2", Code: "ap-southeast-2", Provider: "aws", Lat: -33.87, Lon: 151.21}
	APNE    = Region{Name: "AP NE", Code: "ap-northeast-1", Provider: "aws", Lat: 35.68, Lon: 139.69}
	EUWest  = Region{Name: "EU West", Code: "eu-west-1", Provider: "aws", Lat: 53.35, Lon: -6.26}
	SAEast  = Region{Name: "SA East", Code: "sa-east-1", Provider: "aws", Lat: -23.55, Lon: -46.63}
)

// Testbed returns the paper's 8-region deployment in canonical order.
func Testbed() []Region {
	return []Region{USEast, USWest, APSouth, APSE, APSE2, APNE, EUWest, SAEast}
}

// TestbedSubset returns the first n regions of the canonical testbed.
// It panics if n is out of range; the paper's experiments use n in [2, 8].
func TestbedSubset(n int) []Region {
	tb := Testbed()
	if n < 1 || n > len(tb) {
		panic(fmt.Sprintf("geo: testbed subset size %d out of range [1, %d]", n, len(tb)))
	}
	return tb[:n]
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// kmPerMile converts miles to kilometers.
const kmPerMile = 1.60934

// DistanceKm returns the great-circle (haversine) distance between two
// regions in kilometers.
func DistanceKm(a, b Region) float64 {
	if a.Code == b.Code {
		return 0
	}
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// DistanceMiles returns the great-circle distance in miles. This is the
// D_ij feature of the paper's Table 3 ("physical distance (in miles)
// between VMs at DCs i and j").
func DistanceMiles(a, b Region) float64 {
	return DistanceKm(a, b) / kmPerMile
}

// RTT estimates the wide-area round-trip time between two regions.
//
// Light in fiber travels at roughly 2/3 c (~5 µs/km one way), and real
// WAN routes are longer than great circles; routeInflation captures
// that detour factor (~1.4 for well-peered clouds). A small constant
// floor models intra-metro switching latency.
func RTT(a, b Region) time.Duration {
	const (
		usPerKmOneWay  = 5.0 // microseconds per km, in fiber
		routeInflation = 1.4
		floorMicros    = 500.0 // same-metro latency floor
	)
	d := DistanceKm(a, b)
	micros := 2*d*usPerKmOneWay*routeInflation + floorMicros
	return time.Duration(micros * float64(time.Microsecond))
}

// DistanceMatrixMiles returns the symmetric pairwise distance matrix in
// miles for the given regions.
func DistanceMatrixMiles(regions []Region) [][]float64 {
	n := len(regions)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = DistanceMiles(regions[i], regions[j])
		}
	}
	return m
}
