package geo

import (
	"fmt"

	"github.com/wanify/wanify/internal/simrand"
)

// Synthetic fleet topologies: deterministic continent → metro → DC
// hierarchies far larger than the paper's 8-region testbed, for
// exercising scale behavior (sharded allocation, sparse planning) on
// clusters of tens to hundreds of data centers.
//
// A fleet is generated from real cloud metro anchors: DCs are
// apportioned to metros by footprint weight and placed with a small
// seeded jitter around the metro (distinct facilities in one metro
// area, tens to ~150 km apart). Everything downstream — RTT, per-
// connection bandwidth, distance features — derives from the generated
// coordinates through the same geo physics the testbed uses, so fleet
// clusters need no hand-tuned matrices. Generation is a pure function
// of (n, seed).

// metro is a fleet anchor: a real cloud metro with a footprint weight
// controlling how many of the fleet's DCs land there.
type metro struct {
	name      string
	code      string
	continent string
	lat, lon  float64
	weight    int
}

// fleetMetros lists the anchors grouped by continent, heaviest
// footprints (North America, Europe) first within each group. Order is
// part of the deterministic output: reordering changes generated
// fleets.
var fleetMetros = []metro{
	{"Virginia", "na-virginia", "NA", 38.95, -77.45, 3},
	{"Oregon", "na-oregon", "NA", 45.60, -122.60, 2},
	{"California", "na-california", "NA", 37.35, -121.96, 2},
	{"Ohio", "na-ohio", "NA", 40.00, -82.90, 2},
	{"Montreal", "na-montreal", "NA", 45.50, -73.57, 1},
	{"Texas", "na-texas", "NA", 32.80, -96.80, 1},
	{"Ireland", "eu-ireland", "EU", 53.35, -6.26, 3},
	{"Frankfurt", "eu-frankfurt", "EU", 50.11, 8.68, 3},
	{"London", "eu-london", "EU", 51.51, -0.13, 2},
	{"Paris", "eu-paris", "EU", 48.86, 2.35, 1},
	{"Stockholm", "eu-stockholm", "EU", 59.33, 18.07, 1},
	{"Milan", "eu-milan", "EU", 45.46, 9.19, 1},
	{"Mumbai", "ap-mumbai", "AP", 19.08, 72.88, 2},
	{"Singapore", "ap-singapore", "AP", 1.35, 103.82, 2},
	{"Tokyo", "ap-tokyo", "AP", 35.68, 139.69, 2},
	{"Seoul", "ap-seoul", "AP", 37.57, 126.98, 1},
	{"Hong Kong", "ap-hongkong", "AP", 22.32, 114.17, 1},
	{"Jakarta", "ap-jakarta", "AP", -6.21, 106.85, 1},
	{"São Paulo", "sa-saopaulo", "SA", -23.55, -46.63, 2},
	{"Santiago", "sa-santiago", "SA", -33.45, -70.67, 1},
	{"Sydney", "oc-sydney", "OC", -33.87, 151.21, 2},
	{"Melbourne", "oc-melbourne", "OC", -37.81, 144.96, 1},
	{"Bahrain", "me-bahrain", "ME", 26.07, 50.55, 1},
	{"Tel Aviv", "me-telaviv", "ME", 32.08, 34.78, 1},
	{"Cape Town", "af-capetown", "AF", -33.92, 18.42, 1},
}

// Fleet generates a synthetic n-DC topology. DCs are apportioned to
// metros proportionally to footprint weight (largest-remainder
// rounding, so small fleets still land in the heavyweight metros) and
// jittered around their anchor with the seeded stream "geo-fleet".
// The same (n, seed) always yields the same fleet; codes are unique
// ("fleet-na-virginia-2"). It panics if n < 1.
func Fleet(n int, seed uint64) []Region {
	if n < 1 {
		panic(fmt.Sprintf("geo: fleet size %d out of range", n))
	}
	totalW := 0
	for _, m := range fleetMetros {
		totalW += m.weight
	}
	// Apportion by weight: floor shares first, then hand out the
	// remainder by descending fractional part (ties to list order).
	counts := make([]int, len(fleetMetros))
	fracs := make([]float64, len(fleetMetros))
	assigned := 0
	for i, m := range fleetMetros {
		exact := float64(n) * float64(m.weight) / float64(totalW)
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := -1
		for i := range fleetMetros {
			if best < 0 || fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}

	rng := simrand.Derive(seed, "geo-fleet")
	regions := make([]Region, 0, n)
	for i, m := range fleetMetros {
		for k := 0; k < counts[i]; k++ {
			// Jitter within the metro area: up to ~0.7° (~75 km) each
			// way, so same-metro DCs are distinct but close.
			lat := m.lat + rng.Uniform(-0.7, 0.7)
			lon := m.lon + rng.Uniform(-0.7, 0.7)
			regions = append(regions, Region{
				Name:     fmt.Sprintf("%s %d", m.name, k+1),
				Code:     fmt.Sprintf("fleet-%s-%d", m.code, k+1),
				Provider: "fleet",
				Lat:      lat,
				Lon:      lon,
			})
		}
	}
	return regions
}

// FleetTiers are the canonical fleet sizes used by scale-tiered
// benchmarks and the fleet experiment driver.
var FleetTiers = []int{10, 100, 500}
