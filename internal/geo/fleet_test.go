package geo

import (
	"math"
	"testing"
)

func TestFleetDeterministic(t *testing.T) {
	a := Fleet(100, 7)
	b := Fleet(100, 7)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("fleet sizes %d/%d, want 100", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fleet not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Fleet(100, 8)
	same := 0
	for i := range a {
		if a[i].Lat == c[i].Lat && a[i].Lon == c[i].Lon {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical coordinates")
	}
}

func TestFleetShape(t *testing.T) {
	for _, n := range FleetTiers {
		fleet := Fleet(n, 1)
		if len(fleet) != n {
			t.Fatalf("Fleet(%d) returned %d regions", n, len(fleet))
		}
		codes := make(map[string]bool, n)
		for _, r := range fleet {
			if codes[r.Code] {
				t.Fatalf("duplicate code %q in %d-DC fleet", r.Code, n)
			}
			codes[r.Code] = true
			if math.Abs(r.Lat) > 90 || math.Abs(r.Lon) > 180+1 {
				t.Fatalf("region %q has out-of-range coordinates (%v, %v)", r.Code, r.Lat, r.Lon)
			}
		}
	}
}

// TestFleetSpread checks the apportionment: small fleets land in the
// heavyweight metros, and every metro participates once the fleet is
// large enough.
func TestFleetSpread(t *testing.T) {
	small := Fleet(10, 3)
	hasVirginia, hasIreland := false, false
	for _, r := range small {
		switch r.Code {
		case "fleet-na-virginia-1":
			hasVirginia = true
		case "fleet-eu-ireland-1":
			hasIreland = true
		}
	}
	if !hasVirginia || !hasIreland {
		t.Fatalf("10-DC fleet missing heavyweight metros (virginia=%v ireland=%v)", hasVirginia, hasIreland)
	}

	large := Fleet(500, 3)
	prefixes := make(map[string]int)
	for _, r := range large {
		// Trim the trailing "-<k>" ordinal to count DCs per metro.
		code := r.Code
		for i := len(code) - 1; i >= 0; i-- {
			if code[i] == '-' {
				code = code[:i]
				break
			}
		}
		prefixes[code]++
	}
	if len(prefixes) != len(fleetMetros) {
		t.Fatalf("500-DC fleet uses %d metros, want all %d", len(prefixes), len(fleetMetros))
	}
	// Geo distances between distinct metros must be meaningful (the
	// whole point of geo-derived RTT/BW).
	if d := DistanceKm(large[0], large[len(large)-1]); d < 1000 {
		t.Fatalf("first/last fleet DCs only %v km apart; expected cross-continent distance", d)
	}
}
