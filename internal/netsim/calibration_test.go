package netsim_test

import (
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/substrate"
)

// TestAnchorBandwidths checks the two calibration anchors from the
// paper's §1/§2.1: a single connection US East↔US West achieves
// ≈1700 Mbps and US East↔AP SE ≈121 Mbps.
func TestAnchorBandwidths(t *testing.T) {
	cfg := netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, 7)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)

	east, west, apse := 0, 1, 3
	if got := sim.PerConnCapMbps(east, west); got < 1600 || got > 1800 {
		t.Errorf("US East->US West per-conn cap = %.1f Mbps, want ~1700", got)
	}
	if got := sim.PerConnCapMbps(east, apse); got < 105 || got > 140 {
		t.Errorf("US East->AP SE per-conn cap = %.1f Mbps, want ~121", got)
	}
}

// TestStaticVsRuntimeGap reproduces the shape of the paper's Table 1 /
// §2.2 motivation: statically+independently measured bandwidths differ
// significantly (>100 Mbps) from simultaneous runtime measurements on
// many links, because concurrent transfers contend.
func TestStaticVsRuntimeGap(t *testing.T) {
	cfg := netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, 11)
	sim := netsim.NewSim(cfg)

	static, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 10, Conns: 1})
	runtime, _ := measure.StaticSimultaneous(sim, measure.Options{DurationS: 20, Conns: 1})

	diff := static.AbsDiff(runtime)
	sig := diff.CountOffDiagAbove(100)
	if sig < 8 {
		t.Errorf("significant (>100 Mbps) static-vs-runtime gaps = %d, want >= 8 of 56 ordered pairs", sig)
	}
	// The strongest links must lose the most: runtime min BW should be
	// close to static min BW (weak links are per-conn capped either
	// way), while the max drops.
	if runtime.MaxOffDiagonal() > 0.95*static.MaxOffDiagonal() {
		t.Errorf("runtime max %.0f not below static max %.0f: contention too weak",
			runtime.MaxOffDiagonal(), static.MaxOffDiagonal())
	}
	t.Logf("static min/max = %.0f/%.0f, runtime min/max = %.0f/%.0f, significant gaps = %d",
		static.MinOffDiagonal(), static.MaxOffDiagonal(),
		runtime.MinOffDiagonal(), runtime.MaxOffDiagonal(), sig)
}

// TestParallelConnectionsScaleWeakLink reproduces §1: the weakest link
// (US East↔AP SE) rises toward ~1 Gbps with 9 connections when probed
// alone — parallel connections scale weak-link throughput near-linearly.
func TestParallelConnectionsScaleWeakLink(t *testing.T) {
	cfg := netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, 7)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)

	east, apse := 0, 3
	f1 := sim.StartProbe(sim.FirstVMOfDC(east), sim.FirstVMOfDC(apse), 1)
	sim.RunFor(5)
	r1 := f1.Rate()
	f1.Stop()

	f9 := sim.StartProbe(sim.FirstVMOfDC(east), sim.FirstVMOfDC(apse), 9)
	sim.RunFor(5)
	r9 := f9.Rate()
	f9.Stop()

	if r9 < 7*r1 {
		t.Errorf("9-conn rate %.0f Mbps is not ~9x the 1-conn rate %.0f Mbps", r9, r1)
	}
	if r9 < 900 || r9 > 1300 {
		t.Errorf("9-conn US East->AP SE = %.0f Mbps, want ~1 Gbps (paper anchor)", r9)
	}
}

// TestUniformParallelismLittleBenefit reproduces Fig. 2(b): raising
// every link to 8 connections barely helps the weak links under
// contention, because the RTT bias lets nearby DCs keep most of the
// capacity.
func TestUniformParallelismLittleBenefit(t *testing.T) {
	regions := []geo.Region{geo.USEast, geo.USWest, geo.APSE}
	cfg := netsim.UniformCluster(regions, substrate.T3Nano, 13)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)

	minRate := func(conns int) float64 {
		var flows []substrate.Flow
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					flows = append(flows, sim.StartProbe(sim.FirstVMOfDC(i), sim.FirstVMOfDC(j), conns))
				}
			}
		}
		sim.RunFor(5)
		min := -1.0
		for _, f := range flows {
			if r := f.Rate(); min < 0 || r < min {
				min = r
			}
		}
		for _, f := range flows {
			f.Stop()
		}
		return min
	}

	single := minRate(1)
	uniform8 := minRate(8)
	if uniform8 > 1.5*single {
		t.Errorf("uniform 8-conn min BW %.0f vs single-conn %.0f: uniform parallelism should have little benefit", uniform8, single)
	}
	t.Logf("3-DC min BW: single=%.1f uniform8=%.1f", single, uniform8)
}

// TestHeterogeneousConnectionsRaiseMinBW reproduces Fig. 2(c): the same
// total connection budget, redistributed toward far links, raises the
// cluster's minimum BW by roughly 2x.
func TestHeterogeneousConnectionsRaiseMinBW(t *testing.T) {
	regions := []geo.Region{geo.USEast, geo.USWest, geo.APSE}
	cfg := netsim.UniformCluster(regions, substrate.T3Nano, 13)
	cfg.Frozen = true
	sim := netsim.NewSim(cfg)

	run := func(conns func(i, j int) int) (min, max float64) {
		var flows []substrate.Flow
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					flows = append(flows, sim.StartProbe(sim.FirstVMOfDC(i), sim.FirstVMOfDC(j), conns(i, j)))
				}
			}
		}
		sim.RunFor(5)
		min, max = -1, 0
		for _, f := range flows {
			r := f.Rate()
			if min < 0 || r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		for _, f := range flows {
			f.Stop()
		}
		return min, max
	}

	singleMin, singleMax := run(func(i, j int) int { return 1 })
	uniMin, uniMax := run(func(i, j int) int { return 8 })
	// Far DC (index 2, AP SE) gets the bulk of the 48-connection budget.
	hetMin, hetMax := run(func(i, j int) int {
		if i == 2 || j == 2 {
			return 11
		}
		return 2
	})
	if hetMin < 1.6*uniMin {
		t.Errorf("heterogeneous min BW %.0f < 1.6x uniform min %.0f; want ~2.1x (Fig 2c)", hetMin, uniMin)
	}
	// "Although this leads to a reduction in the maximum BW between DC1
	// and DC2, it improves the weak BW links" — the strong link is
	// traded down relative to its uncontended single-connection rate.
	if hetMax >= singleMax {
		t.Errorf("heterogeneous should trade max BW down: het max %.0f >= single-conn max %.0f", hetMax, singleMax)
	}
	if hetMin < singleMin {
		t.Errorf("heterogeneous min BW %.0f below single-conn min %.0f", hetMin, singleMin)
	}
	t.Logf("single min/max = %.1f/%.1f; uniform min/max = %.1f/%.1f; heterogeneous min/max = %.1f/%.1f (%.2fx min)",
		singleMin, singleMax, uniMin, uniMax, hetMin, hetMax, hetMin/uniMin)
}
