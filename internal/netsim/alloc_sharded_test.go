package netsim

import (
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// Tests for the sharded water-filling path: bottleneck-group
// partitioning, worker-pool dispatch, and group-scoped refills. The
// churn here uses a multi-VM topology with random VM endpoints so the
// flow set genuinely decomposes into several groups (the single-VM
// churnSim workload is usually one component).

// shardedSim builds an 8-DC × 3-VM simulator (24 VMs) with the given
// allocator worker count.
func shardedSim(seed uint64, workers int) *Sim {
	regions := geo.TestbedSubset(8)
	vms := make([][]VMSpec, len(regions))
	for i := range vms {
		vms[i] = []VMSpec{substrate.T2Medium, substrate.T2Medium, substrate.T2Medium}
	}
	return NewSim(Config{Regions: regions, VMs: vms, Seed: seed, Workers: workers})
}

// TestShardedMatchesSequentialLockstep drives identical churn schedules
// through simulators that differ only in Workers and checks after every
// step that all rates and retransmission attributions are bit-identical
// across worker counts and to the from-scratch reference. It also
// asserts the schedule actually produced multi-group allocations, so
// the parallel dispatch path is known to have run.
func TestShardedMatchesSequentialLockstep(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		workerCounts := []int{0, 2, 7}
		sims := make([]*Sim, len(workerCounts))
		for i, w := range workerCounts {
			sims[i] = shardedSim(seed, w)
		}
		base := sims[0]
		nVMs := base.NumVMs()
		rng := simrand.Derive(seed, "sharded-lockstep")
		live := make([][]*Flow, len(sims)) // live[i][k] is the same flow in sim i
		maxGroups := 0
		parallelAllocs := 0
		for step := 0; step < 150; step++ {
			switch op := rng.IntN(10); {
			case op < 4 || len(live[0]) == 0: // start a random VM-to-VM flow
				src := rng.IntN(nVMs)
				dst := rng.IntN(nVMs)
				for base.DCOf(VMID(dst)) == base.DCOf(VMID(src)) {
					dst = rng.IntN(nVMs)
				}
				conns := rng.IntN(8) + 1
				probe := rng.IntN(2) == 0
				bytes := float64(rng.IntN(200)+1) * 1e6
				for i, s := range sims {
					if probe {
						live[i] = append(live[i], s.startProbe(VMID(src), VMID(dst), conns))
					} else {
						live[i] = append(live[i], s.startFlow(VMID(src), VMID(dst), conns, bytes, nil))
					}
				}
			case op < 6: // finish
				k := rng.IntN(len(live[0]))
				for i := range sims {
					live[i][k].Stop()
					live[i] = append(live[i][:k], live[i][k+1:]...)
				}
			case op < 7: // resize
				k := rng.IntN(len(live[0]))
				n := rng.IntN(10) + 1
				for i := range sims {
					live[i][k].SetConns(n)
				}
			case op < 8: // CPU load
				v := VMID(rng.IntN(nVMs))
				load := rng.Float64()
				for _, s := range sims {
					s.SetCPULoad(v, load)
				}
			case op < 9: // pair limit
				src := rng.IntN(8)
				dst := (src + rng.IntN(7) + 1) % 8
				clear := rng.IntN(3) == 0
				limit := float64(rng.IntN(900) + 100)
				for _, s := range sims {
					if clear {
						s.ClearPairLimit(src, dst)
					} else {
						s.SetPairLimit(src, dst, limit)
					}
				}
			default: // let time pass (same seed ⇒ same fluctuation weather)
				d := rng.Float64() * 2
				for _, s := range sims {
					s.RunFor(d)
				}
			}
			for i := range sims {
				kept := live[i][:0]
				for _, f := range live[i] {
					if !f.Done() {
						kept = append(kept, f)
					}
				}
				live[i] = kept
			}
			for _, s := range sims {
				s.ensureAllocated()
			}
			wantRates, wantRetrans := base.allocateReference()
			for i, s := range sims {
				for j, f := range s.flowsOrdered() {
					if f.rate != wantRates[j] {
						t.Fatalf("seed %d step %d: workers=%d flow %d rate %v != reference %v",
							seed, step, workerCounts[i], f.id, f.rate, wantRates[j])
					}
				}
				for v := 0; v < nVMs; v++ {
					if got := s.vms[v].lastRetrans; got != wantRetrans[v] {
						t.Fatalf("seed %d step %d: workers=%d vm %d retrans %v != reference %v",
							seed, step, workerCounts[i], v, got, wantRetrans[v])
					}
				}
			}
			if g, refilled := sims[len(sims)-1].AllocGroups(); g > maxGroups {
				maxGroups = g
				_ = refilled
			} else if g > 1 && refilled > 1 {
				parallelAllocs++
			}
		}
		if maxGroups < 2 {
			t.Fatalf("seed %d: churn never produced a multi-group allocation (max groups %d)", seed, maxGroups)
		}
		if parallelAllocs == 0 {
			t.Fatalf("seed %d: no allocation refilled more than one group; parallel dispatch untested", seed)
		}
	}
}

// TestShardedChurnInvariants runs the standard allocator invariants —
// reference equivalence, repeated-allocate determinism and resource
// conservation — against the sharded path at Workers>1 on the churnSim
// workload (mirrors the Workers=0 tests in alloc_invariants_test.go).
func TestShardedChurnInvariants(t *testing.T) {
	churnSimWorkers(t, 17, 120, 4, func(s *Sim) {
		s.ensureAllocated()
		wantRates, wantRetrans := s.allocateReference()
		for i, f := range s.flowsOrdered() {
			if f.rate != wantRates[i] {
				t.Fatalf("flow %d rate %v != reference %v", f.id, f.rate, wantRates[i])
			}
		}
		for v := 0; v < s.NumVMs(); v++ {
			if got := s.vms[v].lastRetrans; got != wantRetrans[v] {
				t.Fatalf("vm %d retrans %v != reference %v", v, got, wantRetrans[v])
			}
		}
		// Repeated allocation with unchanged inputs must reproduce the
		// same rates (worker scratch slabs must not leak state).
		first := make(map[FlowID]float64, len(s.flows))
		for _, f := range s.flows {
			first[f.id] = f.rate
		}
		s.invalidate()
		s.ensureAllocated()
		for _, f := range s.flows {
			if f.rate != first[f.id] {
				t.Fatalf("flow %d rate changed across identical sharded allocations: %v vs %v", f.id, f.rate, first[f.id])
			}
		}
	})
}

// TestScopedRefillCounters pins the group-scoped invalidation contract
// on a hand-built multi-group workload: disjoint flows form separate
// groups, an event on one group refills only that group, untouched
// groups keep their rates verbatim, and merges/splits are tracked.
func TestScopedRefillCounters(t *testing.T) {
	cfg := UniformCluster(geo.TestbedSubset(8), substrate.T2Medium, 3)
	cfg.Frozen = true
	s := NewSim(cfg)

	// Four disjoint DC pairs → four bottleneck groups.
	flows := []*Flow{
		s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2),
		s.startProbe(s.FirstVMOfDC(2), s.FirstVMOfDC(3), 3),
		s.startProbe(s.FirstVMOfDC(4), s.FirstVMOfDC(5), 4),
		s.startProbe(s.FirstVMOfDC(6), s.FirstVMOfDC(7), 5),
	}
	s.ensureAllocated()
	if g, refilled := s.AllocGroups(); g != 4 || refilled != 4 {
		t.Fatalf("initial allocation: groups=%d refilled=%d, want 4/4", g, refilled)
	}
	before := make([]float64, len(flows))
	for i, f := range flows {
		before[i] = f.rate
	}

	// Resize one flow: only its group refills; the others keep their
	// rates bit-for-bit.
	flows[0].SetConns(6)
	s.ensureAllocated()
	if g, refilled := s.AllocGroups(); g != 4 || refilled != 1 {
		t.Fatalf("after resize: groups=%d refilled=%d, want 4/1", g, refilled)
	}
	if flows[0].rate == before[0] {
		t.Fatal("resized flow rate did not change")
	}
	for i := 1; i < 4; i++ {
		if flows[i].rate != before[i] {
			t.Fatalf("untouched flow %d rate changed: %v vs %v", i, flows[i].rate, before[i])
		}
	}

	// A flow bridging DC1 and DC2 merges two groups into one.
	bridge := s.startProbe(s.FirstVMOfDC(1), s.FirstVMOfDC(2), 1)
	s.ensureAllocated()
	if g, refilled := s.AllocGroups(); g != 3 || refilled != 1 {
		t.Fatalf("after merge: groups=%d refilled=%d, want 3/1", g, refilled)
	}

	// Removing the bridge splits the merged group back into two; both
	// fragments refill, the untouched groups do not.
	bridge.Stop()
	s.ensureAllocated()
	if g, refilled := s.AllocGroups(); g != 4 || refilled != 2 {
		t.Fatalf("after split: groups=%d refilled=%d, want 4/2", g, refilled)
	}

	// A tc limit covering the DC4→DC5 pair dirties that group only.
	s.SetPairLimit(4, 5, 200)
	s.ensureAllocated()
	if g, refilled := s.AllocGroups(); g != 4 || refilled != 1 {
		t.Fatalf("after tc limit: groups=%d refilled=%d, want 4/1", g, refilled)
	}
	if flows[2].rate > 200*1.0001 {
		t.Fatalf("tc-limited flow rate %v exceeds limit", flows[2].rate)
	}
}
