// Package netsim is the reference substrate.Cluster backend of the
// WANify reproduction: a deterministic fluid-flow simulator of
// wide-area traffic between geo-distributed data centers. (The
// trace-replay backend, internal/tracesim, layers recorded bandwidth
// timeseries over this same machinery.)
//
// It stands in for the paper's AWS VPC testbed and models exactly the
// three mechanisms WANify exploits:
//
//  1. Per-connection WAN throughput decays with distance. A single TCP
//     connection between nearby regions achieves far more than between
//     distant ones (the paper's 1700 Mbps US East↔US West vs 121 Mbps
//     US East↔AP SE anchors, §1).
//  2. Concurrent transfers contend with an RTT bias: when flows share a
//     VM's WAN capacity, short-RTT connections take a super-linear
//     share, so "nearby DCs occupy most of the available network"
//     (§2.2, Fig. 2(b)).
//  3. Parallel connections scale a flow's achievable bandwidth roughly
//     linearly (§3.2.1) until VM NIC caps, memory pressure, or the
//     congestion knee bind (">8 connections stopped helping", §2.2).
//
// The simulator is event-driven and fully deterministic for a given
// seed. All bandwidth values are in Mbps; sizes in bytes; time in
// (simulated) seconds.
//
// Rate allocation — the hot path exercised on every flow start/finish,
// connection resize and fluctuation tick — is incremental: per-VM
// connection counts and per-DC-pair flow indexes are maintained as
// flows churn, invalidations are scoped to events that can actually
// change rates, and the progressive-filling allocator recycles its
// working state across invocations (zero steady-state allocations)
// while producing bit-identical rates to a from-scratch recomputation.
// See the architecture comment in alloc.go and DESIGN.md §2.
package netsim

import (
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// The simulator speaks the substrate vocabulary: VM identifiers, specs
// and host-metric snapshots are the shared types every backend uses
// (instance shapes live in internal/substrate next to the Cluster
// interface). The aliases keep netsim's own code and tests terse.
type (
	// VMID identifies a virtual machine within a Sim.
	VMID = substrate.VMID
	// FlowID identifies a flow within a Sim.
	FlowID = substrate.FlowID
	// VMSpec describes the network-relevant shape of a virtual machine.
	VMSpec = substrate.VMSpec
	// VMStats is a snapshot of a VM's host-level metrics (Md, Ci, Nr).
	VMStats = substrate.VMStats
)

// Config configures a Sim. Zero-valued physics knobs take the defaults
// listed on each field (applied by NewSim).
type Config struct {
	// Regions lists the data centers in cluster order.
	Regions []geo.Region
	// VMs lists the virtual machines per DC; VMs[i] are the machines in
	// Regions[i]. Every DC must have at least one VM.
	VMs [][]VMSpec
	// Seed feeds all stochastic processes. The same seed reproduces the
	// same network weather.
	Seed uint64

	// PerConnRefMbps is the single-connection throughput at the
	// reference distance (default 1700, the paper's US East↔US West).
	PerConnRefMbps float64
	// PerConnRefKm is the reference distance (default: the haversine
	// US East↔US West distance, ≈3877 km).
	PerConnRefKm float64
	// PerConnExp is the distance-decay exponent of per-connection
	// throughput (default 1.9; reproduces the paper's 121 Mbps
	// US East↔AP SE anchor within 2%).
	PerConnExp float64
	// MinPathKm floors the effective path distance so nearby DCs do not
	// get unbounded per-connection caps (default 500).
	MinPathKm float64
	// RTTBiasExp is the exponent of the RTT bias in contention shares:
	// a connection's weight is 1/RTT^RTTBiasExp (default 1.5, between
	// ACK-clocking (1) and loss-synchronized (2) regimes).
	RTTBiasExp float64

	// FluctSigma is the volatility of the per-link Ornstein–Uhlenbeck
	// bandwidth factor (default 0.13, which yields a stable-runtime-BW
	// standard deviation near the ~184 Mbps the paper reports for its
	// collected datasets, §5.1).
	FluctSigma float64
	// FluctTheta is the mean-reversion rate of the factor per second
	// (default 0.25).
	FluctTheta float64
	// SpikeProbPerSec is the per-second probability that a link enters
	// a transient degradation episode (default 0.002).
	SpikeProbPerSec float64
	// SpikeMeanDurS is the mean duration of a degradation episode in
	// seconds (default 30).
	SpikeMeanDurS float64

	// CongestionKnee is the per-VM total connection count beyond which
	// effective NIC capacity degrades (default 24).
	CongestionKnee int
	// CongestionSlope is the capacity degradation per connection beyond
	// the knee (default 0.045). This is what makes blind uniform
	// parallelism (WANify-P) lose to AIMD-managed pools: 8 connections
	// to every peer drives a VM far past the knee (§5.3.1).
	CongestionSlope float64
	// BufferMBPerConn is the memory each connection's socket buffers
	// consume (default 3 MB), feeding the Md feature.
	BufferMBPerConn float64

	// RampRTTs models TCP slow start: a new flow's per-connection cap
	// ramps to full over roughly RampRTTs round trips (default 4).
	// Opening parallel connections shortens the ramp (aggregate initial
	// window grows with the connection count), which is part of why
	// parallel connections help small WAN transfers.
	RampRTTs float64
	// RampMinFactor is the cap fraction at flow start (default 0.35).
	RampMinFactor float64

	// Frozen disables link fluctuation and degradation episodes,
	// giving a perfectly stable network. Useful in unit tests.
	Frozen bool

	// Workers caps the goroutines water-filling independent bottleneck
	// groups concurrently inside one rate allocation (0 or 1 runs
	// sequentially). Rates are bit-identical at every setting — groups
	// share no state — so the knob trades CPU for latency only. Useful
	// on fleet-scale topologies where traffic decomposes into many
	// groups; at paper scale the flow set is usually one group and
	// extra workers have nothing to do.
	Workers int
}

// withDefaults returns a copy of c with zero physics knobs replaced by
// their documented defaults.
func (c Config) withDefaults() Config {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.PerConnRefMbps, 1700)
	if c.PerConnRefKm == 0 {
		c.PerConnRefKm = geo.DistanceKm(geo.USEast, geo.USWest)
	}
	def(&c.PerConnExp, 1.9)
	def(&c.MinPathKm, 500)
	def(&c.RTTBiasExp, 1.5)
	def(&c.FluctSigma, 0.13)
	def(&c.FluctTheta, 0.25)
	def(&c.SpikeProbPerSec, 0.002)
	def(&c.SpikeMeanDurS, 30)
	if c.CongestionKnee == 0 {
		c.CongestionKnee = 24
	}
	def(&c.CongestionSlope, 0.045)
	def(&c.BufferMBPerConn, 3)
	def(&c.RampRTTs, 4)
	def(&c.RampMinFactor, 0.35)
	return c
}

// UniformCluster returns a Config with one VM of the given spec in each
// region — the paper's default deployment (1 worker per DC).
func UniformCluster(regions []geo.Region, spec VMSpec, seed uint64) Config {
	vms := make([][]VMSpec, len(regions))
	for i := range vms {
		vms[i] = []VMSpec{spec}
	}
	return Config{Regions: regions, VMs: vms, Seed: seed}
}

// FleetCluster returns a Config for a synthetic fleet topology
// (geo.Fleet): dcs data centers with vmsPerDC identical VMs each, link
// fluctuation frozen (fleet-scale runs exercise allocation and
// planning, not network weather), and the allocator worker pool
// enabled. RTT and per-connection bandwidth derive from the generated
// geography exactly as on the testbed.
func FleetCluster(dcs, vmsPerDC int, spec VMSpec, seed uint64) Config {
	if vmsPerDC < 1 {
		vmsPerDC = 1
	}
	regions := geo.Fleet(dcs, seed)
	vms := make([][]VMSpec, len(regions))
	for i := range vms {
		vms[i] = make([]VMSpec, vmsPerDC)
		for j := range vms[i] {
			vms[i][j] = spec
		}
	}
	return Config{Regions: regions, VMs: vms, Seed: seed, Frozen: true, Workers: 8}
}
