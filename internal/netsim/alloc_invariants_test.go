package netsim

import (
	"math"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// churnSim drives a simulator through a deterministic random schedule
// of flow starts/finishes, connection resizes, CPU-load changes and
// pair-limit changes — the full invalidation surface of the allocator —
// calling check after each step. Fluctuation is on, so the incremental
// invalidation scoping is exercised too.
func churnSim(t *testing.T, seed uint64, steps int, check func(s *Sim)) {
	t.Helper()
	churnSimWorkers(t, seed, steps, 0, check)
}

// churnSimWorkers is churnSim with an allocator worker-pool size, so
// the same invariants can be run against the sharded parallel path.
func churnSimWorkers(t *testing.T, seed uint64, steps int, workers int, check func(s *Sim)) {
	t.Helper()
	cfg := UniformCluster(geo.TestbedSubset(6), substrate.T2Medium, seed)
	cfg.Workers = workers
	s := NewSim(cfg)
	rng := simrand.Derive(seed, "churn-test")
	var live []*Flow
	for step := 0; step < steps; step++ {
		switch op := rng.IntN(10); {
		case op < 4 || len(live) == 0: // start
			src := rng.IntN(6)
			dst := rng.IntN(6)
			if src == dst {
				dst = (dst + 1) % 6
			}
			conns := rng.IntN(8) + 1
			if rng.IntN(2) == 0 {
				live = append(live, s.startProbe(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), conns))
			} else {
				live = append(live, s.startFlow(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), conns, float64(rng.IntN(200)+1)*1e6, nil))
			}
		case op < 6: // finish
			i := rng.IntN(len(live))
			live[i].Stop()
			live = append(live[:i], live[i+1:]...)
		case op < 7: // resize
			live[rng.IntN(len(live))].SetConns(rng.IntN(10) + 1)
		case op < 8: // CPU load
			s.SetCPULoad(VMID(rng.IntN(s.NumVMs())), rng.Float64())
		case op < 9: // pair limit
			src := rng.IntN(6)
			dst := (src + rng.IntN(5) + 1) % 6
			if rng.IntN(3) == 0 {
				s.ClearPairLimit(src, dst)
			} else {
				s.SetPairLimit(src, dst, float64(rng.IntN(900)+100))
			}
		default: // let time pass (fires ramps, fluct steps, completions)
			s.RunFor(rng.Float64() * 2)
		}
		// Drop flows that completed on their own during RunFor.
		kept := live[:0]
		for _, f := range live {
			if !f.Done() {
				kept = append(kept, f)
			}
		}
		live = kept
		check(s)
	}
}

// TestIncrementalMatchesFromScratch locks the core refactoring
// contract: under arbitrary churn, the incremental allocator produces
// bit-identical rates and retransmission attributions to the original
// from-scratch allocator (allocateReference).
func TestIncrementalMatchesFromScratch(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		churnSim(t, seed, 120, func(s *Sim) {
			s.ensureAllocated()
			wantRates, wantRetrans := s.allocateReference()
			for i, f := range s.flowsOrdered() {
				if f.rate != wantRates[i] {
					t.Fatalf("seed %d: flow %d rate %v != reference %v", seed, f.id, f.rate, wantRates[i])
				}
			}
			for v := 0; v < s.NumVMs(); v++ {
				if got := s.vms[v].lastRetrans; got != wantRetrans[v] {
					t.Fatalf("seed %d: vm %d retrans %v != reference %v", seed, v, got, wantRetrans[v])
				}
			}
		})
	}
}

// TestIncrementalCountersMatchScan checks the incrementally maintained
// per-VM connection counts and per-pair flow lists against full
// rescans of the active flow set.
func TestIncrementalCountersMatchScan(t *testing.T) {
	churnSim(t, 7, 150, func(s *Sim) {
		n := s.NumDCs()
		conns := make([]int, s.NumVMs())
		pairs := make([]int, n*n)
		interDC := 0
		for _, f := range s.flows {
			conns[f.src] += f.conns
			conns[f.dst] += f.conns
			pairs[s.pairKey(f.srcDC, f.dstDC)]++
			if f.srcDC != f.dstDC {
				interDC++
			}
		}
		for v := range conns {
			if s.vmConns[v] != conns[v] {
				t.Fatalf("vmConns[%d] = %d, scan says %d", v, s.vmConns[v], conns[v])
			}
		}
		for k := range pairs {
			if len(s.pairFlows[k]) != pairs[k] {
				t.Fatalf("pairFlows[%d] has %d flows, scan says %d", k, len(s.pairFlows[k]), pairs[k])
			}
		}
		if s.interDCFlow != interDC {
			t.Fatalf("interDCFlow = %d, scan says %d", s.interDCFlow, interDC)
		}
	})
}

// TestAllocationConservation property-checks resource conservation
// under churn: no VM NIC, pair limit or per-flow cap envelope is ever
// exceeded by the allocated rates.
func TestAllocationConservation(t *testing.T) {
	const slack = 1.0001
	churnSim(t, 11, 120, func(s *Sim) {
		s.ensureAllocated()
		egress := make([]float64, s.NumVMs())
		ingress := make([]float64, s.NumVMs())
		n := s.NumDCs()
		pairRate := make([]float64, n*n)
		for _, f := range s.flows {
			if f.rate < 0 {
				t.Fatalf("flow %d has negative rate %v", f.id, f.rate)
			}
			egress[f.src] += f.rate
			ingress[f.dst] += f.rate
			pairRate[s.pairKey(f.srcDC, f.dstDC)] += f.rate
			// Per-flow cap envelope (fluctuation can only cut below the
			// nominal per-connection cap by a bounded factor; use the
			// exact current factor).
			fl := 1.0
			if p := s.fluct[f.srcDC][f.dstDC]; p != nil {
				fl = p.factor()
			}
			capF := float64(f.conns) * s.perConnBase[f.srcDC][f.dstDC] * fl
			if f.rate > capF*slack {
				t.Fatalf("flow %d rate %v exceeds cap envelope %v", f.id, f.rate, capF)
			}
		}
		for v := 0; v < s.NumVMs(); v++ {
			over := float64(s.vmConns[v] - s.cfg.CongestionKnee)
			if over < 0 {
				over = 0
			}
			cong := 1 / (1 + s.cfg.CongestionSlope*over)
			if egress[v] > s.vms[v].spec.EgressMbps*cong*slack {
				t.Fatalf("vm %d egress %v exceeds %v", v, egress[v], s.vms[v].spec.EgressMbps*cong)
			}
			if ingress[v] > s.vms[v].spec.IngressMbps*cong*slack {
				t.Fatalf("vm %d ingress %v exceeds %v", v, ingress[v], s.vms[v].spec.IngressMbps*cong)
			}
		}
		for k, limit := range s.pairLimits {
			if !math.IsNaN(limit) && pairRate[k] > limit*slack {
				t.Fatalf("pair %d rate %v exceeds tc limit %v", k, pairRate[k], limit)
			}
		}
	})
}

// TestRepeatedAllocateDeterministic checks that re-running the
// allocator with unchanged inputs reproduces identical rates — the
// scratch slabs must not leak state between invocations.
func TestRepeatedAllocateDeterministic(t *testing.T) {
	churnSim(t, 13, 60, func(s *Sim) {
		s.ensureAllocated()
		first := make(map[FlowID]float64, len(s.flows))
		for _, f := range s.flows {
			first[f.id] = f.rate
		}
		retrans := make([]float64, s.NumVMs())
		for v := range retrans {
			retrans[v] = s.vms[v].lastRetrans
		}
		s.invalidate()
		s.ensureAllocated()
		for _, f := range s.flows {
			if f.rate != first[f.id] {
				t.Fatalf("flow %d rate changed across identical allocations: %v vs %v", f.id, f.rate, first[f.id])
			}
		}
		for v := range retrans {
			if s.vms[v].lastRetrans != retrans[v] {
				t.Fatalf("vm %d retrans changed across identical allocations", v)
			}
		}
	})
}

// TestScopedInvalidationSkipsCleanAllocations checks the dirty-set
// scoping: fluctuation steps with no inter-DC flows, CPU changes on
// idle VMs and tc changes on empty pairs must not mark the allocation
// dirty, while the same events with affected flows must.
func TestScopedInvalidationSkipsCleanAllocations(t *testing.T) {
	cfg := UniformCluster(geo.TestbedSubset(3), substrate.T2Medium, 5)
	s := NewSim(cfg) // fluctuation on
	s.RunFor(2)      // let a fluct step fire with zero flows
	s.ensureAllocated()
	if s.allocDirty {
		t.Fatal("allocation dirty after ensureAllocated")
	}
	s.RunFor(1.1) // another fluct step, still no flows
	if s.allocDirty {
		t.Error("fluct step with no inter-DC flows dirtied the allocation")
	}
	s.SetCPULoad(s.FirstVMOfDC(0), 0.8)
	if s.allocDirty {
		t.Error("CPU change on a VM with no flows dirtied the allocation")
	}
	s.SetPairLimit(0, 1, 500)
	if s.allocDirty {
		t.Error("tc limit on a pair with no flows dirtied the allocation")
	}
	f := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2)
	if !s.allocDirty {
		t.Error("starting a flow did not dirty the allocation")
	}
	s.ensureAllocated()
	s.SetCPULoad(s.FirstVMOfDC(0), 0.3)
	if !s.allocDirty {
		t.Error("CPU change on a VM with flows did not dirty the allocation")
	}
	s.ensureAllocated()
	s.SetPairLimit(0, 1, 400)
	if !s.allocDirty {
		t.Error("tc change on a pair with flows did not dirty the allocation")
	}
	f.Stop()
}
