package netsim

import (
	"math"

	"github.com/wanify/wanify/internal/simrand"
)

// ouProcess is a mean-reverting (Ornstein–Uhlenbeck) process on the log
// of a per-link bandwidth factor, plus an occasional multiplicative
// degradation episode. It models the paper's "fluctuating BWs" [38]:
// links drift around their nominal capacity on the scale of minutes,
// with rare sharper dips (routing events, cross-traffic bursts).
type ouProcess struct {
	rng   *simrand.Source
	theta float64 // mean reversion per second
	sigma float64 // volatility per sqrt(second)

	x float64 // current log-factor

	spikeProb    float64 // per-second episode probability
	spikeMeanDur float64 // seconds
	spikeUntil   float64 // sim time the current episode ends
	spikeDepth   float64 // multiplicative factor during the episode
}

func newOUProcess(rng *simrand.Source, theta, sigma, spikeProb, spikeMeanDur float64) *ouProcess {
	p := &ouProcess{
		rng:          rng,
		theta:        theta,
		sigma:        sigma,
		spikeProb:    spikeProb,
		spikeMeanDur: spikeMeanDur,
		spikeDepth:   1,
	}
	// Start from the stationary distribution so early samples are not
	// biased toward factor == 1.
	sd := sigma / math.Sqrt(2*theta)
	p.x = rng.Norm(0, sd)
	return p
}

// advance steps the process by dt seconds ending at sim time now.
func (p *ouProcess) advance(now, dt float64) {
	if dt <= 0 {
		return
	}
	p.x += p.theta*(0-p.x)*dt + p.sigma*math.Sqrt(dt)*p.rng.Norm(0, 1)
	// Clamp the log-factor so a pathological random walk cannot produce
	// absurd capacities (factor stays within [e^-1.2, e^+1.2] ≈ [0.3, 3.3]).
	if p.x > 1.2 {
		p.x = 1.2
	}
	if p.x < -1.2 {
		p.x = -1.2
	}
	if now >= p.spikeUntil {
		p.spikeDepth = 1
		if p.rng.Bool(p.spikeProb * dt) {
			p.spikeDepth = p.rng.Uniform(0.3, 0.7)
			p.spikeUntil = now + p.rng.Exp(p.spikeMeanDur)
		}
	}
}

// factor returns the current multiplicative bandwidth factor.
func (p *ouProcess) factor() float64 {
	return math.Exp(p.x) * p.spikeDepth
}
