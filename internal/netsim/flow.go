package netsim

import (
	"math"

	"github.com/wanify/wanify/internal/substrate"
)

// Flow implements substrate.Flow on the simulator.
var _ substrate.Flow = (*Flow)(nil)

// Flow is an active WAN transfer between two VMs. A flow aggregates all
// parallel connections a sender maintains toward one receiver; the
// Conns count is the paper's per-pair connection number (§2.3).
//
// A flow with unbounded size (see StartProbe) runs until stopped and is
// used by measurement tools; a sized flow completes when its bytes have
// been delivered.
type Flow struct {
	id    FlowID
	src   VMID
	dst   VMID
	srcDC int // DC of src, cached for the allocator and pair indexes
	dstDC int // DC of dst
	idx   int // position in Sim.flows, maintained for O(1) swap-delete
	conns int

	remainingBits float64 // +Inf for probes
	sentBits      float64 // cumulative
	rate          float64 // current allocation, Mbps
	done          bool
	stopped       bool
	failed        bool // terminated by a fault (endpoint death, pair reset)

	startedAt float64 // sim time the flow was created
	rampS     float64 // slow-start ramp duration (0 = instant)

	onDone func()
	onFail func()

	sim *Sim
}

// ID returns the flow's identifier.
func (f *Flow) ID() FlowID { return f.id }

// Src returns the sending VM.
func (f *Flow) Src() VMID { return f.src }

// Dst returns the receiving VM.
func (f *Flow) Dst() VMID { return f.dst }

// Conns returns the current number of parallel connections.
func (f *Flow) Conns() int { return f.conns }

// SetConns changes the number of parallel connections. The Connections
// Manager of a WANify local agent calls this when the AIMD optimizer
// adds or removes connections. n is clamped to at least 1.
func (f *Flow) SetConns(n int) {
	if n < 1 {
		n = 1
	}
	if n == f.conns {
		return
	}
	if !f.done {
		delta := n - f.conns
		f.sim.vmConns[f.src] += delta
		f.sim.vmConns[f.dst] += delta
		f.sim.dirtyFlow(f)
	}
	f.conns = n
}

// Rate returns the currently allocated rate in Mbps.
func (f *Flow) Rate() float64 {
	f.sim.ensureAllocated()
	return f.rate
}

// TransferredBytes returns the cumulative bytes delivered so far.
// Progress is always current: timers fire exactly at Sim.now and
// advanceTo credits flows before time moves, so there is never pending
// progress to flush.
func (f *Flow) TransferredBytes() float64 {
	return f.sentBits / 8
}

// RemainingBytes returns the bytes still to deliver (+Inf for probes).
func (f *Flow) RemainingBytes() float64 {
	return f.remainingBits / 8
}

// Done reports whether the flow has completed or been stopped.
func (f *Flow) Done() bool { return f.done }

// Probe reports whether this is an unbounded measurement flow.
func (f *Flow) Probe() bool { return math.IsInf(f.remainingBits, 1) }

// Stop terminates the flow immediately (probe tear-down or cancelled
// transfer). Remaining bytes are not delivered.
func (f *Flow) Stop() {
	if f.done {
		return
	}
	f.stopped = true
	f.sim.finishFlow(f)
}

// Failed reports whether the flow was terminated by a fault.
func (f *Flow) Failed() bool { return f.failed }

// OnFail registers fn to run when the flow fails. A flow that is
// already failed (started against a dead endpoint) fires fn
// immediately. At most one handler is held.
func (f *Flow) OnFail(fn func()) {
	f.onFail = fn
	if f.failed && fn != nil {
		fn()
	}
}

// vm is the internal VM state.
type vm struct {
	id   VMID
	dc   int
	spec VMSpec

	cpuLoad      float64 // [0,1], set by the compute engine
	retransAccum float64 // cumulative retransmission events
	lastRetrans  float64 // retrans rate per second, from last allocation
	dead         bool    // killed by a KillVM fault; permanent
}
