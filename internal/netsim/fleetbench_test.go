package netsim

import (
	"math"
	"slices"
	"testing"
)

// TestFleetAllocStatsShape checks the scale-tier benchmark's
// structural output without gating on wall-clock: cluster shape, flow
// count, group decomposition, and that every timer actually ran.
func TestFleetAllocStatsShape(t *testing.T) {
	st := FleetAllocNsPerFlow(10, 2)
	if st.DCs != 10 || st.VMsPerDC != fleetBenchVMs {
		t.Fatalf("tier shape %dx%d, want 10x%d", st.DCs, st.VMsPerDC, fleetBenchVMs)
	}
	// 5 DC blocks x (fleetBenchVMs x 2 directions) flows.
	if want := 5 * fleetBenchVMs * 2; st.Flows != want {
		t.Fatalf("flows = %d, want %d", st.Flows, want)
	}
	// The VM chaining splits each block into two 4-VM cycles.
	if st.Groups != 10 {
		t.Fatalf("groups = %d, want 10", st.Groups)
	}
	if st.NsPerFlow <= 0 || st.SequentialNsPerFlow <= 0 || st.UnshardedNsPerFlow <= 0 {
		t.Fatalf("non-positive timings: %+v", st)
	}
	if st.ParallelSpeedup() <= 0 || st.ShardedSpeedup() <= 0 {
		t.Fatalf("non-positive speedups: par=%v shard=%v", st.ParallelSpeedup(), st.ShardedSpeedup())
	}
}

// TestUnshardedFillMatchesReference locks the claim the scale-tier
// benchmark's baseline rests on: running the reference filler over the
// whole flow set as a single group — the pre-sharding global round
// loop — answers the same allocation as the group-decomposed
// reference. Independent components never constrain each other's
// theta, so the global formulation only changes how a flow's rate is
// split across filling rounds; the comparison is to a relative 1e-9
// (the round boundaries differ, so the float accumulation order does
// too — this is the divergence that makes the per-group formulation
// the semantic definition and the global loop only a baseline).
func TestUnshardedFillMatchesReference(t *testing.T) {
	s, nFlows := fleetBenchSim(20, 0)

	wantRates, wantRetrans := s.allocateReference()

	order := make([]*Flow, len(s.flows))
	copy(order, s.flows)
	slices.SortFunc(order, func(x, y *Flow) int { return int(x.id - y.id) })
	congFactor := make([]float64, len(s.vms))
	totalConns := make([]int, len(s.vms))
	for _, f := range order {
		totalConns[f.src] += f.conns
		totalConns[f.dst] += f.conns
	}
	for i := range s.vms {
		over := float64(totalConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		congFactor[i] = 1 / (1 + s.cfg.CongestionSlope*over)
	}
	members := make([]int, nFlows)
	for i := range members {
		members[i] = i
	}
	gotRates := make([]float64, nFlows)
	gotRetrans := make([]float64, len(s.vms))
	s.refFillGroup(order, members, congFactor, gotRates, gotRetrans)

	close := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		m := math.Max(math.Abs(a), math.Abs(b))
		return d <= 1e-9*math.Max(1, m)
	}
	for i := range wantRates {
		if !close(gotRates[i], wantRates[i]) {
			t.Fatalf("flow %d: unsharded rate %v != reference %v", i, gotRates[i], wantRates[i])
		}
	}
	for v := range wantRetrans {
		if !close(gotRetrans[v], wantRetrans[v]) {
			t.Fatalf("vm %d: unsharded retrans %v != reference %v", v, gotRetrans[v], wantRetrans[v])
		}
	}
}
