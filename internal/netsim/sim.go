package netsim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

// Sim is the reference implementation of the substrate contract.
var _ substrate.Cluster = (*Sim)(nil)

// Sim is a deterministic event-driven fluid simulator of WAN traffic
// among geo-distributed data centers. See the package comment for the
// model; see Config for the knobs.
//
// Sim is not safe for concurrent use: the analytics engine, agents and
// probes all run inside the single simulated timeline. Concurrency
// lives one level up — independent experiment drivers each own a Sim
// (see internal/experiments.RunConcurrent).
type Sim struct {
	cfg     Config
	regions []geo.Region

	vms     []*vm
	vmsOfDC [][]VMID

	// Pairwise physics, indexed [srcDC][dstDC].
	perConnBase [][]float64 // Mbps per connection at nominal conditions
	rttSec      [][]float64
	rttBiasPow  [][]float64 // RTT^RTTBiasExp, precomputed (hot in allocate)
	distKm      [][]float64
	fluct       [][]*ouProcess

	// pairLimits holds the simulated `tc` rate limits in Mbps, indexed
	// by pairKey(srcDC, dstDC); NaN means unlimited. numLimits counts
	// the non-NaN entries so the common no-limits case stays O(1).
	pairLimits []float64
	numLimits  int

	// partActive counts the currently-active PartitionDC faults per DC;
	// while any is nonzero every inter-DC pair involving the DC has
	// achievable rate zero (see faults.go).
	partActive []int

	// flows is the active set in arbitrary order: finishFlow swap-
	// deletes through Flow.idx, so starts and finishes are O(1). The
	// allocator re-derives start (id) order when it runs; everything
	// order-sensitive goes through flowsOrdered or pairFlows.
	flows      []*Flow
	nextFlowID FlowID

	// Incrementally maintained flow indexes (updated on start/finish/
	// SetConns rather than recomputed per allocation):
	vmConns     []int     // connections terminating at each VM (both directions)
	pairFlows   [][]*Flow // active flows per DC pair, in start order
	interDCFlow int       // active flows whose endpoints sit in different DCs

	now        float64
	timers     timerHeap
	timerSeq   int64
	fluctEvery float64 // seconds between fluctuation steps

	allocDirty     bool
	flowSetChanged bool    // active-flow membership changed since last flowsOrdered
	orderBuf       []*Flow // cached start-order view of flows

	// Bottleneck-group machinery (churn.go, alloc.go): the group index,
	// the per-worker filling scratches, and the shape of the last
	// allocation for AllocGroups.
	groups       groupIndex
	scratches    []*fillScratch
	workers      int
	lastGroups   int
	lastRefilled int

	rng *simrand.Source
}

// NewSim builds a simulator from the given configuration.
func NewSim(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	if len(cfg.Regions) == 0 {
		panic("netsim: config has no regions")
	}
	if len(cfg.VMs) != len(cfg.Regions) {
		panic(fmt.Sprintf("netsim: VMs for %d DCs but %d regions", len(cfg.VMs), len(cfg.Regions)))
	}
	s := &Sim{
		cfg:        cfg,
		regions:    append([]geo.Region(nil), cfg.Regions...),
		fluctEvery: 1.0,
		allocDirty: true,
		workers:    max(cfg.Workers, 1),
		rng:        simrand.Derive(cfg.Seed, "netsim"),
	}
	s.groups.dirtyAll = true
	n := len(cfg.Regions)
	s.vmsOfDC = make([][]VMID, n)
	for dc, specs := range cfg.VMs {
		if len(specs) == 0 {
			panic(fmt.Sprintf("netsim: DC %d (%s) has no VMs", dc, cfg.Regions[dc].Name))
		}
		for _, spec := range specs {
			id := VMID(len(s.vms))
			s.vms = append(s.vms, &vm{id: id, dc: dc, spec: spec})
			s.vmsOfDC[dc] = append(s.vmsOfDC[dc], id)
		}
	}
	s.vmConns = make([]int, len(s.vms))
	s.pairFlows = make([][]*Flow, n*n)
	s.partActive = make([]int, n)
	s.pairLimits = make([]float64, n*n)
	for i := range s.pairLimits {
		s.pairLimits[i] = math.NaN()
	}
	a := cfg.PerConnRefMbps * math.Pow(cfg.PerConnRefKm, cfg.PerConnExp)
	s.perConnBase = make([][]float64, n)
	s.rttSec = make([][]float64, n)
	s.rttBiasPow = make([][]float64, n)
	s.distKm = make([][]float64, n)
	s.fluct = make([][]*ouProcess, n)
	for i := 0; i < n; i++ {
		s.perConnBase[i] = make([]float64, n)
		s.rttSec[i] = make([]float64, n)
		s.rttBiasPow[i] = make([]float64, n)
		s.distKm[i] = make([]float64, n)
		s.fluct[i] = make([]*ouProcess, n)
		for j := 0; j < n; j++ {
			d := geo.DistanceKm(cfg.Regions[i], cfg.Regions[j])
			s.distKm[i][j] = d
			eff := math.Max(d, cfg.MinPathKm)
			s.perConnBase[i][j] = a / math.Pow(eff, cfg.PerConnExp)
			s.rttSec[i][j] = geo.RTT(cfg.Regions[i], cfg.Regions[j]).Seconds()
			rtt := s.rttSec[i][j]
			if rtt <= 0 {
				rtt = 1e-3
			}
			s.rttBiasPow[i][j] = math.Pow(rtt, cfg.RTTBiasExp)
			if i != j && !cfg.Frozen {
				// Frozen networks have no fluctuation processes at all:
				// factor is exactly 1 everywhere, forever.
				s.fluct[i][j] = newOUProcess(
					s.rng.Derive(fmt.Sprintf("fluct/%d/%d", i, j)),
					cfg.FluctTheta, cfg.FluctSigma, cfg.SpikeProbPerSec, cfg.SpikeMeanDurS)
			}
		}
	}
	if !cfg.Frozen {
		s.scheduleFluct()
	}
	return s
}

// pairKey flattens a DC pair into an index for pairLimits/pairFlows.
func (s *Sim) pairKey(srcDC, dstDC int) int { return srcDC*len(s.regions) + dstDC }

// scheduleFluct installs the recurring fluctuation step.
func (s *Sim) scheduleFluct() {
	var step func(now float64)
	step = func(now float64) {
		for i := range s.fluct {
			for j := range s.fluct[i] {
				if s.fluct[i][j] != nil {
					s.fluct[i][j].advance(now, s.fluctEvery)
				}
			}
		}
		// Fluctuation only moves inter-DC factors, so the step dirties
		// exactly the flows crossing DC boundaries; if none are active
		// the current allocation is still valid and no recompute runs.
		if s.interDCFlow > 0 {
			s.invalidate()
		}
		s.at(now+s.fluctEvery, step)
	}
	s.at(s.now+s.fluctEvery, step)
}

// --- topology accessors ---

// NumDCs returns the number of data centers.
func (s *Sim) NumDCs() int { return len(s.regions) }

// NumVMs returns the total number of virtual machines.
func (s *Sim) NumVMs() int { return len(s.vms) }

// Regions returns the simulated regions in cluster order.
func (s *Sim) Regions() []geo.Region { return s.regions }

// VMsOfDC returns the VM ids hosted in the given DC.
func (s *Sim) VMsOfDC(dc int) []VMID { return s.vmsOfDC[dc] }

// FirstVMOfDC returns the first (primary) VM of a DC.
func (s *Sim) FirstVMOfDC(dc int) VMID { return s.vmsOfDC[dc][0] }

// DCOf returns the DC index hosting the given VM.
func (s *Sim) DCOf(id VMID) int { return s.vms[id].dc }

// Spec returns the VMSpec of the given VM.
func (s *Sim) Spec(id VMID) VMSpec { return s.vms[id].spec }

// DistanceKm returns the great-circle distance between two DCs.
func (s *Sim) DistanceKm(i, j int) float64 { return s.distKm[i][j] }

// RTTSeconds returns the modelled round-trip time between two DCs.
func (s *Sim) RTTSeconds(i, j int) float64 { return s.rttSec[i][j] }

// PerConnCapMbps returns the nominal (fluctuation-free) single
// connection throughput cap between two DCs.
func (s *Sim) PerConnCapMbps(i, j int) float64 { return s.perConnBase[i][j] }

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// --- host metrics ---

// SetCPULoad sets a VM's CPU utilization in [0, 1]. The analytics
// engine calls this while tasks execute; high CPU load slightly
// degrades achievable sending rate (sender-limited TCP).
func (s *Sim) SetCPULoad(id VMID, load float64) {
	load = math.Max(0, math.Min(1, load))
	if s.vms[id].cpuLoad == load {
		return
	}
	s.vms[id].cpuLoad = load
	// CPU load only enters the allocation through flows that send from
	// or terminate at this VM; with none attached, current rates stand,
	// and with some, only this VM's bottleneck group is refilled.
	if s.vmConns[id] > 0 {
		s.dirtyVM(id)
	}
}

// connsAt returns the total connections terminating at the VM. O(1):
// the count is maintained incrementally as flows start, finish and
// resize their connection pools.
func (s *Sim) connsAt(id VMID) int { return s.vmConns[id] }

// memUtil returns the VM's memory utilization including connection
// buffers (feature Md).
func (s *Sim) memUtil(id VMID) float64 {
	v := s.vms[id]
	base := 0.20 + 0.25*v.cpuLoad // resident engine + task working set
	buf := float64(s.vmConns[id]) * s.cfg.BufferMBPerConn / (v.spec.MemGB * 1024)
	return math.Min(1, base+buf)
}

// VMStats returns the current host metrics of a VM.
func (s *Sim) VMStats(id VMID) VMStats {
	s.ensureAllocated()
	v := s.vms[id]
	return VMStats{
		CPULoad:       v.cpuLoad,
		MemUtil:       s.memUtil(id),
		RetransPerSec: v.lastRetrans,
		ActiveConns:   s.connsAt(id),
	}
}

// --- traffic control ---

// SetPairLimit installs a rate limit (simulated `tc`) on all traffic
// from srcDC to dstDC, in Mbps. WANify's local agents use this to
// throttle BW-rich links (§3.2.2).
func (s *Sim) SetPairLimit(srcDC, dstDC int, mbps float64) {
	k := s.pairKey(srcDC, dstDC)
	if math.IsNaN(s.pairLimits[k]) {
		s.numLimits++
	}
	s.pairLimits[k] = mbps
	if len(s.pairFlows[k]) > 0 {
		s.dirtyPair(k)
	}
}

// ClearPairLimit removes a pair rate limit.
func (s *Sim) ClearPairLimit(srcDC, dstDC int) {
	k := s.pairKey(srcDC, dstDC)
	if math.IsNaN(s.pairLimits[k]) {
		return
	}
	// Dirty before clearing: the limit's flows may span several groups
	// only while the shared resource still links them.
	if len(s.pairFlows[k]) > 0 {
		s.dirtyPair(k)
	}
	s.pairLimits[k] = math.NaN()
	s.numLimits--
}

// ClearAllPairLimits removes every pair rate limit.
func (s *Sim) ClearAllPairLimits() {
	if s.numLimits == 0 {
		return
	}
	for k := range s.pairLimits {
		if !math.IsNaN(s.pairLimits[k]) {
			if len(s.pairFlows[k]) > 0 {
				s.dirtyPair(k)
			}
			s.pairLimits[k] = math.NaN()
		}
	}
	s.numLimits = 0
}

// pairLimitAt returns the rate limit for a DC pair, or NaN if none.
func (s *Sim) pairLimitAt(srcDC, dstDC int) float64 {
	return s.pairLimits[s.pairKey(srcDC, dstDC)]
}

// SetPerConnCap overrides the nominal single-connection throughput cap
// between two DCs (normally derived from geography at construction).
// The trace-replay backend (internal/tracesim) drives this from
// recorded per-pair timeseries; contention, host factors and tc limits
// still apply on top. The invalidation is scoped like SetPairLimit's:
// with no flows on the pair, current rates stand.
func (s *Sim) SetPerConnCap(srcDC, dstDC int, mbps float64) {
	if mbps < 0 {
		mbps = 0
	}
	if s.perConnBase[srcDC][dstDC] == mbps {
		return
	}
	s.perConnBase[srcDC][dstDC] = mbps
	if k := s.pairKey(srcDC, dstDC); len(s.pairFlows[k]) > 0 {
		s.dirtyPair(k)
	}
}

// --- flows ---

// StartFlow starts a sized transfer of the given bytes from src to dst
// using conns parallel connections. onDone, if non-nil, fires when the
// transfer completes (not when it is stopped early).
func (s *Sim) StartFlow(src, dst VMID, conns int, bytes float64, onDone func()) substrate.Flow {
	return s.startFlow(src, dst, conns, bytes, onDone)
}

// startFlow is StartFlow with the concrete return type, for in-package
// callers (tests, benchmarks) that reach into flow internals.
func (s *Sim) startFlow(src, dst VMID, conns int, bytes float64, onDone func()) *Flow {
	if src == dst {
		panic("netsim: flow src == dst")
	}
	if conns < 1 {
		conns = 1
	}
	if bytes <= 0 {
		panic("netsim: StartFlow needs positive size; use StartProbe for unbounded flows")
	}
	return s.addFlow(src, dst, conns, bytes*8, onDone)
}

// StartProbe starts an unbounded measurement flow (iPerf-style) that
// runs until stopped.
func (s *Sim) StartProbe(src, dst VMID, conns int) substrate.Flow {
	return s.startProbe(src, dst, conns)
}

// startProbe is StartProbe with the concrete return type.
func (s *Sim) startProbe(src, dst VMID, conns int) *Flow {
	if src == dst {
		panic("netsim: probe src == dst")
	}
	if conns < 1 {
		conns = 1
	}
	return s.addFlow(src, dst, conns, math.Inf(1), nil)
}

func (s *Sim) addFlow(src, dst VMID, conns int, bits float64, onDone func()) *Flow {
	srcDC, dstDC := s.vms[src].dc, s.vms[dst].dc
	if s.vms[src].dead || s.vms[dst].dead {
		// A dead VM accepts no flows: the flow is born failed, never
		// enters the active set, and fires OnFail as soon as a handler
		// registers. The id is still consumed so flow identities stay
		// unique and ascending regardless of faults.
		f := &Flow{
			id: s.nextFlowID, src: src, dst: dst, srcDC: srcDC, dstDC: dstDC,
			conns: conns, remainingBits: bits, sim: s, onDone: onDone,
			startedAt: s.now, done: true, failed: true,
		}
		s.nextFlowID++
		return f
	}
	f := &Flow{
		id:            s.nextFlowID,
		src:           src,
		dst:           dst,
		srcDC:         srcDC,
		dstDC:         dstDC,
		conns:         conns,
		remainingBits: bits,
		sim:           s,
		onDone:        onDone,
		startedAt:     s.now,
	}
	s.nextFlowID++

	// TCP slow start: the flow's cap ramps up over a few RTTs; more
	// parallel connections shorten the ramp (larger aggregate initial
	// window). The ramp is quantized into three cap levels, so we
	// schedule re-allocations at the level boundaries.
	rtt := s.rttSec[srcDC][dstDC]
	f.rampS = s.cfg.RampRTTs * rtt / (1 + math.Log2(float64(conns)))
	if f.rampS > 0 {
		for _, frac := range []float64{1.0 / 3, 2.0 / 3, 1} {
			s.at(s.now+f.rampS*frac, func(float64) {
				if !f.done {
					s.dirtyFlow(f)
				}
			})
		}
	}

	f.idx = len(s.flows)
	s.flows = append(s.flows, f)
	s.flowSetChanged = true
	s.vmConns[src] += conns
	s.vmConns[dst] += conns
	k := s.pairKey(srcDC, dstDC)
	s.pairFlows[k] = append(s.pairFlows[k], f) // ids ascend: start order kept
	if srcDC != dstDC {
		s.interDCFlow++
	}
	s.dirtyFlow(f)
	return f
}

// rampFactor returns the slow-start cap fraction for a flow at the
// current sim time: three quantized steps from RampMinFactor to 1.
func (s *Sim) rampFactor(f *Flow) float64 {
	if f.rampS <= 0 {
		return 1
	}
	age := s.now - f.startedAt
	progress := age / f.rampS
	min := s.cfg.RampMinFactor
	// The level boundaries are scheduled as timers at exactly these
	// progress fractions; tolerate float round-off so the flow cannot
	// get stuck one epsilon below a level with no further event coming.
	const eps = 1e-9
	switch {
	case progress >= 1-eps:
		return 1
	case progress >= 2.0/3-eps:
		return min + (1-min)*0.75
	case progress >= 1.0/3-eps:
		return min + (1-min)*0.45
	default:
		return min
	}
}

// finishFlow removes a flow from the active set in O(1) by swapping the
// last flow into its slot (Flow.idx tracks positions).
func (s *Sim) finishFlow(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.rate = 0
	// Dirty while the flow's endpoints still carry their last-allocation
	// grouping; the whole former group refills (a finish can split it).
	s.dirtyFlow(f)
	last := len(s.flows) - 1
	moved := s.flows[last]
	s.flows[f.idx] = moved
	moved.idx = f.idx
	s.flows[last] = nil
	s.flows = s.flows[:last]
	s.flowSetChanged = true

	s.vmConns[f.src] -= f.conns
	s.vmConns[f.dst] -= f.conns
	// A VM with no remaining flows joins no bottleneck group, so no
	// refill would reset its attribution; zero it at departure.
	if s.vmConns[f.src] == 0 {
		s.vms[f.src].lastRetrans = 0
	}
	if s.vmConns[f.dst] == 0 {
		s.vms[f.dst].lastRetrans = 0
	}
	k := s.pairKey(f.srcDC, f.dstDC)
	pf := s.pairFlows[k]
	for i, g := range pf {
		if g == f {
			// Order-preserving removal: pair lists stay in start order
			// so PairRate sums deterministically. Lists are per-pair and
			// short, so the copy is cheap.
			s.pairFlows[k] = append(pf[:i], pf[i+1:]...)
			break
		}
	}
	if f.srcDC != f.dstDC {
		s.interDCFlow--
	}
	switch {
	case f.failed:
		if f.onFail != nil {
			f.onFail()
		}
	case !f.stopped:
		if f.onDone != nil {
			f.onDone()
		}
	}
}

// ActiveFlows returns the number of currently active flows.
func (s *Sim) ActiveFlows() int { return len(s.flows) }

// PairRate returns the current aggregate rate (Mbps) of all active
// flows from srcDC to dstDC. The per-pair flow index makes this
// O(flows on the pair) rather than O(all flows).
func (s *Sim) PairRate(srcDC, dstDC int) float64 {
	s.ensureAllocated()
	total := 0.0
	for _, f := range s.pairFlows[s.pairKey(srcDC, dstDC)] {
		total += f.rate
	}
	return total
}

// --- timers and the event loop ---

type timerEvent struct {
	at  float64
	seq int64
	fn  func(now float64)
}

// timerHeap is a binary min-heap of timer events ordered by (at, seq).
// It replaces the earlier container/heap implementation, whose
// heap.Interface methods forced every event through an interface{}
// (now spelled any) box — one allocation per scheduled timer. The
// typed sift operations below allocate only on slice growth.
type timerHeap []timerEvent

func (h timerHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *timerHeap) push(ev timerEvent) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *timerHeap) pop() timerEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = timerEvent{} // release the closure
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

func (s *Sim) at(t float64, fn func(now float64)) {
	s.timerSeq++
	s.timers.push(timerEvent{at: t, seq: s.timerSeq, fn: fn})
}

// After schedules fn to run once, delay seconds from now.
func (s *Sim) After(delay float64, fn func(now float64)) {
	s.at(s.now+delay, fn)
}

// Every schedules fn to run every interval seconds, starting one
// interval from now. The returned cancel function stops future firings.
func (s *Sim) Every(interval float64, fn func(now float64)) (cancel func()) {
	stopped := false
	var tick func(now float64)
	tick = func(now float64) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			s.at(now+interval, tick)
		}
	}
	s.at(s.now+interval, tick)
	return func() { stopped = true }
}

// RunFor advances the simulation by d seconds.
func (s *Sim) RunFor(d float64) { s.RunUntil(s.now + d) }

// RunUntil advances the simulation until time t.
func (s *Sim) RunUntil(t float64) {
	const eps = 1e-9
	for s.now < t-eps {
		s.stepOnce(t)
	}
	if t > s.now {
		s.now = t
	}
}

// stepOnce advances simulated time to the next event (flow completion
// or timer), bounded by limit, firing due timers. It guarantees
// progress: when no event precedes limit, time jumps to limit.
func (s *Sim) stepOnce(limit float64) {
	const eps = 1e-9
	s.ensureAllocated()

	next := limit
	// Earliest sized-flow completion at current rates.
	for _, f := range s.flows {
		if f.Probe() || f.rate <= 0 {
			continue
		}
		tc := s.now + f.remainingBits/(f.rate*1e6)
		if tc < next {
			next = tc
		}
	}
	// Earliest timer.
	if len(s.timers) > 0 && s.timers[0].at < next {
		next = s.timers[0].at
	}
	if next < s.now {
		next = s.now
	}
	s.advanceTo(next)

	// Fire all timers due at the new time.
	for len(s.timers) > 0 && s.timers[0].at <= s.now+eps {
		ev := s.timers.pop()
		ev.fn(s.now)
	}
}

// advanceTo moves time forward to tNext, crediting flow progress at the
// current (valid) rates and completing flows that drain.
func (s *Sim) advanceTo(tNext float64) {
	dt := tNext - s.now
	if dt <= 0 {
		s.now = math.Max(s.now, tNext)
		return
	}
	var completed []*Flow
	for _, f := range s.flows {
		bits := f.rate * 1e6 * dt
		f.sentBits += bits
		if !f.Probe() {
			f.remainingBits -= bits
			if f.remainingBits <= 1 { // sub-bit residue: done
				f.remainingBits = 0
				completed = append(completed, f)
			}
		}
	}
	for _, v := range s.vms {
		v.retransAccum += v.lastRetrans * dt
	}
	s.now = tNext
	// s.flows is unordered (swap-delete), so restore start order before
	// completing: onDone callbacks must fire in the same deterministic
	// sequence they always have.
	if len(completed) > 1 {
		slices.SortFunc(completed, func(a, b *Flow) int { return int(a.id - b.id) })
	}
	for _, f := range completed {
		s.finishFlow(f)
	}
}

// AwaitFlows runs the simulation until all given flows are done, or
// until maxWait seconds have elapsed (returning an error in that case).
// It stops at the exact completion instant of the last flow, so no
// simulated time is wasted.
func (s *Sim) AwaitFlows(maxWait float64, flows ...substrate.Flow) error {
	deadline := s.now + maxWait
	for {
		all := true
		for _, f := range flows {
			if !f.Done() {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		if s.now >= deadline {
			return fmt.Errorf("netsim: flows not drained after %.1fs of simulated time (pending: %s)",
				maxWait, describePending(s, flows))
		}
		s.stepOnce(deadline)
	}
}

// describePending names the still-undrained flows for AwaitFlows'
// timeout error: flow ids with their src/dst DCs, capped so a stuck
// thousand-flow shuffle stays readable.
func describePending(s *Sim, flows []substrate.Flow) string {
	const maxNamed = 8
	var b []byte
	named, pending := 0, 0
	for _, f := range flows {
		if f.Done() {
			continue
		}
		pending++
		if named == maxNamed {
			continue
		}
		if named > 0 {
			b = append(b, ", "...)
		}
		b = fmt.Appendf(b, "#%d dc%d->dc%d", f.ID(), s.DCOf(f.Src()), s.DCOf(f.Dst()))
		named++
	}
	if pending > named {
		b = fmt.Appendf(b, " and %d more", pending-named)
	}
	return string(b)
}

// RTTOf returns the modelled RTT between two DCs as a time.Duration.
func (s *Sim) RTTOf(i, j int) time.Duration {
	return time.Duration(s.rttSec[i][j] * float64(time.Second))
}
