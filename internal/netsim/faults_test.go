package netsim

import (
	"math"
	"strings"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// TestKillVMFailsActiveFlows: a VM death fails every flow touching it
// at the scheduled instant — onFail fires, onDone never does, and the
// survivors keep running.
func TestKillVMFailsActiveFlows(t *testing.T) {
	s := frozenSim(3, 1)
	var done, failed int
	victim := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2, 500e9, func() { done++ })
	victim.OnFail(func() { failed++ })
	bystander := s.startFlow(s.FirstVMOfDC(2), s.FirstVMOfDC(1), 2, 500e9, nil)

	s.KillVM(s.FirstVMOfDC(0), s.Now()+10)
	s.RunFor(9)
	if victim.Done() || failed != 0 {
		t.Fatal("flow failed before the scheduled kill")
	}
	s.RunFor(2)
	if !victim.Done() || !victim.Failed() {
		t.Fatalf("victim done=%v failed=%v after kill", victim.Done(), victim.Failed())
	}
	if failed != 1 || done != 0 {
		t.Errorf("onFail=%d onDone=%d, want 1/0", failed, done)
	}
	if s.VMAlive(s.FirstVMOfDC(0)) {
		t.Error("killed VM still alive")
	}
	if bystander.Done() {
		t.Error("bystander flow was killed too")
	}
	if bystander.Rate() <= 0 {
		t.Error("bystander stalled by unrelated VM death")
	}
}

// TestDeadVMRejectsNewFlows: flows and probes against a dead endpoint
// are born failed; OnFail registered afterwards still fires.
func TestDeadVMRejectsNewFlows(t *testing.T) {
	s := frozenSim(3, 2)
	dead := s.FirstVMOfDC(1)
	s.KillVM(dead, 0) // immediate
	for _, f := range []*Flow{
		s.startFlow(s.FirstVMOfDC(0), dead, 1, 1e9, nil),
		s.startFlow(dead, s.FirstVMOfDC(2), 1, 1e9, nil),
		s.startProbe(s.FirstVMOfDC(0), dead, 1),
	} {
		if !f.Done() || !f.Failed() {
			t.Fatalf("flow #%d against dead VM: done=%v failed=%v", f.ID(), f.Done(), f.Failed())
		}
		fired := 0
		f.OnFail(func() { fired++ })
		if fired != 1 {
			t.Errorf("flow #%d: OnFail after failure fired %d times", f.ID(), fired)
		}
	}
	if s.ActiveFlows() != 0 {
		t.Errorf("%d active flows leaked from dead-VM starts", s.ActiveFlows())
	}
}

// TestPartitionStallsAndHeals: a DC partition zeroes the pair's
// achievable rate without failing flows; when it lifts, the flow
// resumes and completes with exact byte accounting.
func TestPartitionStallsAndHeals(t *testing.T) {
	s := frozenSim(3, 3)
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 4, 30e9, nil)
	s.RunFor(5)
	if f.Rate() <= 0 {
		t.Fatal("flow not running before partition")
	}
	s.PartitionDC(1, s.Now()+5, s.Now()+65)
	s.RunFor(20)
	if got := f.Rate(); got != 0 {
		t.Fatalf("rate %.1f Mbps during partition, want 0", got)
	}
	if got := s.PairRate(0, 1); got != 0 {
		t.Fatalf("PairRate %.1f during partition, want 0", got)
	}
	atPartition := f.TransferredBytes()
	s.RunFor(30) // still partitioned: no progress at all
	if got := f.TransferredBytes(); got != atPartition {
		t.Fatalf("flow progressed %.0f bytes through a partition", got-atPartition)
	}
	if f.Done() || f.Failed() {
		t.Fatal("partition failed the flow; it must only stall")
	}
	if err := s.AwaitFlows(3600, f); err != nil {
		t.Fatalf("flow never recovered after partition healed: %v", err)
	}
	if got := f.TransferredBytes(); math.Abs(got-30e9) > 1 {
		t.Errorf("transferred %.0f bytes, want 30e9", got)
	}
}

// TestResetPairFailsOnlyThatPair: a pair reset fails the pair's active
// flows and nothing else; flows started afterwards run normally.
func TestResetPairFailsOnlyThatPair(t *testing.T) {
	s := frozenSim(3, 4)
	onPair := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2, 500e9, nil)
	other := s.startFlow(s.FirstVMOfDC(1), s.FirstVMOfDC(2), 2, 500e9, nil)
	s.ResetPair(0, 1, s.Now()+10)
	s.RunFor(11)
	if !onPair.Failed() {
		t.Error("pair flow survived the reset")
	}
	if other.Done() || other.Failed() {
		t.Error("reset leaked onto another pair")
	}
	relaunch := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2, 1e9, nil)
	if err := s.AwaitFlows(3600, relaunch); err != nil {
		t.Fatalf("post-reset flow on the pair: %v", err)
	}
}

// TestFaultDeterminism: the same fault schedule against the same seed
// reproduces the exact same trajectory (byte-for-byte rates and
// callback ordering), and a run with an empty schedule is identical to
// one on a build with no faults armed at all.
func TestFaultDeterminism(t *testing.T) {
	run := func() (transferred []float64, order []int) {
		cfg := UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 7)
		s := NewSim(cfg) // unfrozen: fault determinism must hold under weather too
		var flows []*Flow
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i == j {
					continue
				}
				f := s.startFlow(s.FirstVMOfDC(i), s.FirstVMOfDC(j), 2, 5e9, nil)
				id := int(f.ID())
				f.OnFail(func() { order = append(order, id) })
				flows = append(flows, f)
			}
		}
		s.KillVM(s.FirstVMOfDC(2), 20)
		s.PartitionDC(1, 30, 60)
		s.ResetPair(0, 3, 40)
		s.RunFor(120)
		for _, f := range flows {
			transferred = append(transferred, f.TransferredBytes())
		}
		return transferred, order
	}
	t1, o1 := run()
	t2, o2 := run()
	if len(o1) == 0 {
		t.Fatal("schedule failed no flows; test exercises nothing")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("flow %d transferred %.0f vs %.0f across identical runs", i, t1[i], t2[i])
		}
	}
	if len(o1) != len(o2) {
		t.Fatalf("failure counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("failure order diverged at %d: %v vs %v", i, o1, o2)
		}
	}
}

// TestAwaitFlowsNamesPendingFlows: the timeout error identifies which
// flows were still pending and where they were headed.
func TestAwaitFlowsNamesPendingFlows(t *testing.T) {
	s := frozenSim(3, 5)
	s.PartitionDC(1, 0, 1e9) // permanent partition: the flow can never drain
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1, 1e9, nil)
	err := s.AwaitFlows(30, f)
	if err == nil {
		t.Fatal("AwaitFlows returned nil for an undrainable flow")
	}
	for _, want := range []string{"#0", "dc0->dc1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("timeout error %q does not name %q", err, want)
		}
	}
}

// TestAllocatorEquivalenceUnderPartition: the incremental allocator
// must match the reference oracle bit for bit while a partition holds
// (the severed pair's zero cap goes through both implementations).
func TestAllocatorEquivalenceUnderPartition(t *testing.T) {
	cfg := UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 9)
	cfg.Frozen = true
	s := NewSim(cfg)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				s.startFlow(s.FirstVMOfDC(i), s.FirstVMOfDC(j), 2, 50e9, nil)
			}
		}
	}
	s.PartitionDC(2, 0, 1e9)
	s.RunFor(10)
	s.invalidate()
	s.ensureAllocated()
	refRates, _ := s.allocateReference()
	for fi, f := range s.flowsOrdered() {
		if f.rate != refRates[fi] {
			t.Fatalf("flow #%d: incremental %.9f != reference %.9f under partition", f.ID(), f.rate, refRates[fi])
		}
		if (f.srcDC == 2 || f.dstDC == 2) && f.rate != 0 {
			t.Errorf("flow #%d touches partitioned DC but has rate %.3f", f.ID(), f.rate)
		}
	}
}
