package netsim

import (
	"math"
	"slices"
)

// allocateReference is the from-scratch allocator, preserved as the
// oracle for the incremental sharded allocator — equivalence tests
// require bit-identical rates — and as the baseline for
// BenchmarkAllocatorChurn. It rebuilds everything on every call: the
// bottleneck-group partition is re-derived with a throwaway union-find,
// per-VM connection totals come from O(flows) rescans of the flow list
// (O(flows²) per allocation), and every resource's unfrozen weight sum
// is recomputed each filling round.
//
// Groups are water-filled one after another, exactly as the production
// path defines the allocation: each group's progressive filling sees
// only its own resources, so its float sequence is a pure function of
// group-local state. (Before the sharded allocator, filling ran one
// global round loop over all flows; on a single-group flow set — every
// dense paper-scale workload — the two formulations execute the same
// arithmetic, which is what kept the historical goldens byte-stable.)
//
// It does not mutate simulator state: rates[i] is the rate of the i-th
// active flow in start (id) order, retrans[v] the per-VM
// retransmission rate the allocation implies.
func (s *Sim) allocateReference() (rates []float64, retrans []float64) {
	order := make([]*Flow, len(s.flows))
	copy(order, s.flows)
	slices.SortFunc(order, func(x, y *Flow) int {
		switch {
		case x.id < y.id:
			return -1
		case x.id > y.id:
			return 1
		default:
			return 0
		}
	})
	nf := len(order)
	retrans = make([]float64, len(s.vms))
	if nf == 0 {
		return nil, retrans
	}

	// Congestion factor per VM, from a full rescan of the flow list.
	// A VM's flows all live in its own group, so the global scan equals
	// a group-local one.
	congFactor := make([]float64, len(s.vms))
	totalConns := make([]int, len(s.vms))
	for _, f := range order {
		totalConns[f.src] += f.conns
		totalConns[f.dst] += f.conns
	}
	for i := range s.vms {
		over := float64(totalConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		congFactor[i] = 1 / (1 + s.cfg.CongestionSlope*over)
	}

	// Bottleneck groups: connected components over VMs joined by flows,
	// plus links between flows sharing a rate-limited DC pair — the
	// same partition rule the production allocator applies (churn.go).
	parent := make([]int, len(s.vms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, f := range order {
		union(int(f.src), int(f.dst))
	}
	if s.numLimits > 0 {
		pairFirst := make(map[int]int)
		for _, f := range order {
			if math.IsNaN(s.pairLimitAt(f.srcDC, f.dstDC)) {
				continue
			}
			k := s.pairKey(f.srcDC, f.dstDC)
			if v, ok := pairFirst[k]; ok {
				union(int(f.src), v)
			} else {
				pairFirst[k] = int(f.src)
			}
		}
	}
	groupIdx := make(map[int]int)
	var groups [][]int // per group: member flow indices, ascending
	for fi, f := range order {
		r := find(int(f.src))
		gi, ok := groupIdx[r]
		if !ok {
			gi = len(groups)
			groupIdx[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], fi)
	}

	rates = make([]float64, nf)
	for _, members := range groups {
		s.refFillGroup(order, members, congFactor, rates, retrans)
	}
	return rates, retrans
}

// refFillGroup water-fills one bottleneck group the original way:
// every weight sum recomputed every round, per-flow host factors from
// full rescans. members lists the group's flow indices into order,
// ascending (id order).
func (s *Sim) refFillGroup(order []*Flow, members []int, congFactor []float64, rates, retrans []float64) {
	// connsScan/memScan rescan the flow list per call, exactly like the
	// original connsAt/memUtil did.
	connsScan := func(id VMID) int {
		total := 0
		for _, f := range order {
			if f.src == id || f.dst == id {
				total += f.conns
			}
		}
		return total
	}
	memScan := func(id VMID) float64 {
		v := s.vms[id]
		base := 0.20 + 0.25*v.cpuLoad
		buf := float64(connsScan(id)) * s.cfg.BufferMBPerConn / (v.spec.MemGB * 1024)
		return math.Min(1, base+buf)
	}

	// Build resources: egress/ingress per group VM (first-appearance
	// order), then per-flow caps and lazily materialized pair limits in
	// flow order.
	type refResource struct {
		kind    resKind
		vm      VMID
		cap     float64
		members []int // local flow ordinals
	}
	var resources []refResource
	egressIdx := make(map[VMID]int)
	ingressIdx := make(map[VMID]int)
	addVM := func(v VMID) {
		if _, ok := egressIdx[v]; ok {
			return
		}
		egressIdx[v] = len(resources)
		resources = append(resources, refResource{kind: resEgress, vm: v, cap: s.vms[v].spec.EgressMbps * congFactor[v]})
		ingressIdx[v] = len(resources)
		resources = append(resources, refResource{kind: resIngress, vm: v, cap: s.vms[v].spec.IngressMbps * congFactor[v]})
	}
	for _, fi := range members {
		addVM(order[fi].src)
		addVM(order[fi].dst)
	}
	pairIdx := make(map[[2]int]int)

	ng := len(members)
	weights := make([]float64, ng)
	flowRes := make([][]int, ng) // resource indices per local flow
	for li, fi := range members {
		f := order[fi]
		srcDC, dstDC := f.srcDC, f.dstDC
		fluct := 1.0
		if p := s.fluct[srcDC][dstDC]; p != nil {
			fluct = p.factor()
		}
		memF := memFactor(memScan(f.dst))
		cpuF := cpuFactor(s.vms[f.src].cpuLoad)
		capF := float64(f.conns) * s.perConnBase[srcDC][dstDC] * fluct * memF * cpuF * s.rampFactor(f)
		if s.severed(srcDC, dstDC) {
			capF = 0
		}
		// Per-flow cap resource.
		capRes := len(resources)
		resources = append(resources, refResource{kind: resFlowCap, cap: capF})

		rtt := s.rttSec[srcDC][dstDC]
		if rtt <= 0 {
			rtt = 1e-3
		}
		weights[li] = float64(f.conns) / math.Pow(rtt, s.cfg.RTTBiasExp)

		rs := []int{egressIdx[f.src], ingressIdx[f.dst], capRes}
		if limit := s.pairLimitAt(srcDC, dstDC); !math.IsNaN(limit) {
			idx, ok := pairIdx[[2]int{srcDC, dstDC}]
			if !ok {
				idx = len(resources)
				resources = append(resources, refResource{kind: resPairLimit, cap: limit})
				pairIdx[[2]int{srcDC, dstDC}] = idx
			}
			rs = append(rs, idx)
		}
		flowRes[li] = rs
	}
	for li, rs := range flowRes {
		for _, r := range rs {
			resources[r].members = append(resources[r].members, li)
		}
	}

	// Progressive filling, recomputing every weight sum every round.
	groupRates := make([]float64, ng)
	frozen := make([]bool, ng)
	avail := make([]float64, len(resources))
	for i := range resources {
		avail[i] = resources[i].cap
	}
	remaining := ng
	const eps = 1e-9
	for remaining > 0 {
		theta := math.Inf(1)
		for ri := range resources {
			sumW := 0.0
			for _, li := range resources[ri].members {
				if !frozen[li] {
					sumW += weights[li]
				}
			}
			if sumW > 0 {
				if t := avail[ri] / sumW; t < theta {
					theta = t
				}
			}
		}
		if math.IsInf(theta, 1) {
			break
		}
		if theta < 0 {
			theta = 0
		}
		for li := range groupRates {
			if frozen[li] {
				continue
			}
			inc := theta * weights[li]
			groupRates[li] += inc
			for _, ri := range flowRes[li] {
				avail[ri] -= inc
			}
		}
		frozeAny := false
		for ri := range resources {
			if avail[ri] > eps*math.Max(1, resources[ri].cap) {
				continue
			}
			for _, li := range resources[ri].members {
				if !frozen[li] {
					frozen[li] = true
					remaining--
					frozeAny = true
				}
			}
		}
		if !frozeAny {
			for li := range frozen {
				if !frozen[li] {
					frozen[li] = true
					remaining--
				}
			}
		}
	}
	for li, fi := range members {
		rates[fi] = groupRates[li]
	}

	// Retransmission attribution.
	for ri := range resources {
		r := &resources[ri]
		if r.kind != resEgress && r.kind != resIngress {
			continue
		}
		demand := 0.0
		conns := 0
		for _, li := range r.members {
			demand += resources[flowRes[li][2]].cap
			conns += order[members[li]].conns
		}
		if r.cap <= 0 {
			continue
		}
		pressure := demand/r.cap - 1
		if pressure > 0 {
			retrans[r.vm] += 2.0 * pressure * float64(conns)
		}
	}
}
