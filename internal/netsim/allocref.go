package netsim

import (
	"math"
	"slices"
)

// allocateReference is the original from-scratch allocator, preserved
// verbatim in behavior: it rebuilds the whole resource graph on every
// call, rescans the flow list for per-VM connection totals (O(flows)
// per flow, O(flows²) per allocation) and recomputes every resource's
// unfrozen weight sum each filling round. It exists as the oracle for
// the incremental allocator — equivalence tests require bit-identical
// rates — and as the baseline for BenchmarkAllocatorChurn.
//
// It does not mutate simulator state: rates[i] is the rate of the i-th
// active flow in start (id) order, retrans[v] the per-VM
// retransmission rate the allocation implies.
func (s *Sim) allocateReference() (rates []float64, retrans []float64) {
	order := make([]*Flow, len(s.flows))
	copy(order, s.flows)
	slices.SortFunc(order, func(x, y *Flow) int {
		switch {
		case x.id < y.id:
			return -1
		case x.id > y.id:
			return 1
		default:
			return 0
		}
	})
	nf := len(order)
	retrans = make([]float64, len(s.vms))
	if nf == 0 {
		return nil, retrans
	}

	// Congestion factor per VM, from a full rescan of the flow list.
	congFactor := make([]float64, len(s.vms))
	totalConns := make([]int, len(s.vms))
	for _, f := range order {
		totalConns[f.src] += f.conns
		totalConns[f.dst] += f.conns
	}
	for i := range s.vms {
		over := float64(totalConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		congFactor[i] = 1 / (1 + s.cfg.CongestionSlope*over)
	}

	// connsScan/memScan rescan the flow list per call, exactly like the
	// original connsAt/memUtil did.
	connsScan := func(id VMID) int {
		total := 0
		for _, f := range order {
			if f.src == id || f.dst == id {
				total += f.conns
			}
		}
		return total
	}
	memScan := func(id VMID) float64 {
		v := s.vms[id]
		base := 0.20 + 0.25*v.cpuLoad
		buf := float64(connsScan(id)) * s.cfg.BufferMBPerConn / (v.spec.MemGB * 1024)
		return math.Min(1, base+buf)
	}

	// Build resources.
	type refResource struct {
		kind    resKind
		vm      VMID
		cap     float64
		members []int
	}
	var resources []refResource
	egressIdx := make([]int, len(s.vms))
	ingressIdx := make([]int, len(s.vms))
	for i, v := range s.vms {
		egressIdx[i] = len(resources)
		resources = append(resources, refResource{kind: resEgress, vm: v.id, cap: v.spec.EgressMbps * congFactor[i]})
		ingressIdx[i] = len(resources)
		resources = append(resources, refResource{kind: resIngress, vm: v.id, cap: v.spec.IngressMbps * congFactor[i]})
	}
	pairIdx := make(map[[2]int]int)

	weights := make([]float64, nf)
	flowRes := make([][]int, nf) // resource indices per flow
	for fi, f := range order {
		srcDC, dstDC := f.srcDC, f.dstDC
		fluct := 1.0
		if p := s.fluct[srcDC][dstDC]; p != nil {
			fluct = p.factor()
		}
		memF := memFactor(memScan(f.dst))
		cpuF := cpuFactor(s.vms[f.src].cpuLoad)
		capF := float64(f.conns) * s.perConnBase[srcDC][dstDC] * fluct * memF * cpuF * s.rampFactor(f)
		if s.severed(srcDC, dstDC) {
			capF = 0
		}
		// Per-flow cap resource.
		capRes := len(resources)
		resources = append(resources, refResource{kind: resFlowCap, cap: capF})

		rtt := s.rttSec[srcDC][dstDC]
		if rtt <= 0 {
			rtt = 1e-3
		}
		weights[fi] = float64(f.conns) / math.Pow(rtt, s.cfg.RTTBiasExp)

		rs := []int{egressIdx[f.src], ingressIdx[f.dst], capRes}
		if limit := s.pairLimitAt(srcDC, dstDC); !math.IsNaN(limit) {
			idx, ok := pairIdx[[2]int{srcDC, dstDC}]
			if !ok {
				idx = len(resources)
				resources = append(resources, refResource{kind: resPairLimit, cap: limit})
				pairIdx[[2]int{srcDC, dstDC}] = idx
			}
			rs = append(rs, idx)
		}
		flowRes[fi] = rs
	}
	for fi, rs := range flowRes {
		for _, r := range rs {
			resources[r].members = append(resources[r].members, fi)
		}
	}

	// Progressive filling, recomputing every weight sum every round.
	rates = make([]float64, nf)
	frozen := make([]bool, nf)
	avail := make([]float64, len(resources))
	for i := range resources {
		avail[i] = resources[i].cap
	}
	remaining := nf
	const eps = 1e-9
	for remaining > 0 {
		theta := math.Inf(1)
		for ri := range resources {
			sumW := 0.0
			for _, fi := range resources[ri].members {
				if !frozen[fi] {
					sumW += weights[fi]
				}
			}
			if sumW > 0 {
				if t := avail[ri] / sumW; t < theta {
					theta = t
				}
			}
		}
		if math.IsInf(theta, 1) {
			break
		}
		if theta < 0 {
			theta = 0
		}
		for fi := range rates {
			if frozen[fi] {
				continue
			}
			inc := theta * weights[fi]
			rates[fi] += inc
			for _, ri := range flowRes[fi] {
				avail[ri] -= inc
			}
		}
		frozeAny := false
		for ri := range resources {
			if avail[ri] > eps*math.Max(1, resources[ri].cap) {
				continue
			}
			for _, fi := range resources[ri].members {
				if !frozen[fi] {
					frozen[fi] = true
					remaining--
					frozeAny = true
				}
			}
		}
		if !frozeAny {
			for fi := range frozen {
				if !frozen[fi] {
					frozen[fi] = true
					remaining--
				}
			}
		}
	}

	// Retransmission attribution.
	for ri := range resources {
		r := &resources[ri]
		if r.kind != resEgress && r.kind != resIngress {
			continue
		}
		demand := 0.0
		conns := 0
		for _, fi := range r.members {
			demand += resources[flowRes[fi][2]].cap
			conns += order[fi].conns
		}
		if r.cap <= 0 {
			continue
		}
		pressure := demand/r.cap - 1
		if pressure > 0 {
			retrans[r.vm] += 2.0 * pressure * float64(conns)
		}
	}
	return rates, retrans
}
