package netsim

import (
	"math"
	"time"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// Flow-churn bookkeeping: the bottleneck-group index maintained as
// flows start and finish, plus the out-of-framework churn timers that
// cmd/wanify-bench records into BENCH_netsim.json.
//
// # Bottleneck groups
//
// Two flows interact in the allocator only when they share a resource:
// a VM's egress/ingress capacity, or a per-DC-pair `tc` limit. The
// transitive closure of "shares a resource" partitions the active flow
// set into independent bottleneck groups — connected components of the
// graph whose vertices are VMs and whose edges are (src, dst) per flow,
// plus links between flows on the same rate-limited DC pair. Groups
// share no state, so each can be water-filled on its own: sequentially
// in any order, or concurrently on a worker pool, with bit-identical
// results either way (see alloc.go).
//
// At paper scale (≤8 DCs, all-to-all shuffles) the whole flow set is
// one group and grouping changes nothing; the win appears at fleet
// scale, where traffic decomposes into many independent components and
// allocation cost drops from (total rounds × total flows) to the sum
// of each group's own rounds × flows.
//
// The index is maintained across churn with epoch-stamped slabs: a
// flow start unions its endpoints (and can only merge groups, which
// union-find handles incrementally), while a finish can split a group,
// so component assignment is re-derived from the live flow set at the
// next allocation — an O(flows α(VMs)) sweep, negligible next to the
// filling it feeds. What persists between allocations is the dirty
// set: events record the group they touched (via the owning VM's root
// at the last allocation), and the next allocation refills only groups
// containing a dirtied or regrouped VM, keeping every other group's
// rates and retransmission attributions untouched.

// groupIndex is the Sim's bottleneck-group state. All slabs are epoch
// stamped so per-allocation resets cost O(touched), not O(VMs).
type groupIndex struct {
	// Union-find over VM ids, rebuilt each allocation.
	parent  []VMID
	ufEpoch []uint32
	epoch   uint32

	// vmRoot[v] is v's group root at the last completed allocation,
	// valid while vmRootEpoch[v] == rootEpoch. Scoped invalidation keys
	// dirt by these roots.
	vmRoot      []VMID
	vmRootEpoch []uint32
	rootEpoch   uint32

	// Dirt accumulated since the last allocation. dirtyRoots holds the
	// last-allocation roots of touched groups (duplicates are fine);
	// dirtyAll refills everything (fluctuation ticks, partitions).
	dirtyRoots []VMID
	rootDirty  []bool // scratch keyed by root VM during one allocation
	dirtyAll   bool

	// pairFirst links flows that share a rate-limited DC pair during
	// grouping: first source VM seen per pair key, reset via the
	// touched list. Sized numDCs² lazily, only when limits exist.
	pairFirst   []VMID
	pairFirstOK []bool
	pairTouched []int

	// Group assembly scratch for one allocation.
	ordOf    []int32 // per root VM: group ordinal (epoch-stamped)
	ordEpoch []uint32
	flowOrd  []int32 // per ordered-flow index: group ordinal
	roots    []VMID  // per ordinal: root VM
	counts   []int32 // per ordinal: member flows
	offsets  []int32 // per ordinal: start offset into bucketed
	cursor   []int32 // bucketing write cursors
	bucketed []*Flow // flows grouped by ordinal, id order within each
	needFill []bool  // per ordinal: group must be refilled
	dirtyG   []int32 // ordinals needing refill
}

func (g *groupIndex) grow(nVMs int) {
	if len(g.parent) < nVMs {
		g.parent = make([]VMID, nVMs)
		g.ufEpoch = make([]uint32, nVMs)
		g.vmRoot = make([]VMID, nVMs)
		g.vmRootEpoch = make([]uint32, nVMs)
		g.rootDirty = make([]bool, nVMs)
		g.ordOf = make([]int32, nVMs)
		g.ordEpoch = make([]uint32, nVMs)
	}
}

// beginEpoch starts a fresh union-find pass over the live flow set.
func (g *groupIndex) beginEpoch(nVMs int) {
	g.grow(nVMs)
	g.epoch++
}

// find returns v's current root, lazily initializing the slot for this
// epoch and halving paths as it walks.
func (g *groupIndex) find(v VMID) VMID {
	if g.ufEpoch[v] != g.epoch {
		g.ufEpoch[v] = g.epoch
		g.parent[v] = v
		return v
	}
	for g.parent[v] != v {
		p := g.parent[v]
		if g.ufEpoch[p] != g.epoch {
			// Cannot happen (parents are always initialized), but keep
			// the walk safe against stale slabs.
			g.ufEpoch[p] = g.epoch
			g.parent[p] = p
		}
		g.parent[v] = g.parent[p] // path halving
		v = g.parent[v]
	}
	return v
}

func (g *groupIndex) union(a, b VMID) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		// Deterministic tie-break (lower VM id wins) so the root of a
		// component is a pure function of its edge set.
		if ra < rb {
			g.parent[rb] = ra
		} else {
			g.parent[ra] = rb
		}
	}
}

// linkLimitedPairs adds the pair-limit edges: every flow on a
// rate-limited DC pair is linked to the first flow seen on that pair,
// so the shared `tc` resource keeps its users in one group even when
// they touch disjoint VMs (multi-VM DCs).
func (g *groupIndex) linkLimitedPairs(s *Sim, order []*Flow) {
	if s.numLimits == 0 {
		return
	}
	if n := len(s.regions) * len(s.regions); len(g.pairFirst) < n {
		g.pairFirst = make([]VMID, n)
		g.pairFirstOK = make([]bool, n)
	}
	for _, f := range order {
		if math.IsNaN(s.pairLimitAt(f.srcDC, f.dstDC)) {
			continue
		}
		k := s.pairKey(f.srcDC, f.dstDC)
		if g.pairFirstOK[k] {
			g.union(f.src, g.pairFirst[k])
		} else {
			g.pairFirst[k] = f.src
			g.pairFirstOK[k] = true
			g.pairTouched = append(g.pairTouched, k)
		}
	}
	for _, k := range g.pairTouched {
		g.pairFirstOK[k] = false
	}
	g.pairTouched = g.pairTouched[:0]
}

// dirtyVM records that an event touched VM v's group: the group v
// belonged to at the last allocation is refilled next time. A VM that
// was not grouped then (its flows are all new) needs no record — the
// refill decision treats unstamped VMs as dirty.
func (s *Sim) dirtyVM(v VMID) {
	s.allocDirty = true
	g := &s.groups
	if g.dirtyAll {
		return
	}
	if int(v) < len(g.vmRootEpoch) && g.vmRootEpoch[v] == g.rootEpoch {
		g.dirtyRoots = append(g.dirtyRoots, g.vmRoot[v])
	}
}

// dirtyFlow records an event scoped to one flow (ramp step, resize).
func (s *Sim) dirtyFlow(f *Flow) {
	s.dirtyVM(f.src)
	s.dirtyVM(f.dst)
}

// dirtyPair records an event scoped to one DC pair (tc limit change,
// per-connection cap override): every group with a flow on the pair is
// refilled. Connectivity may also change (a limit appearing can merge
// groups, one clearing can split), which needs no extra handling: the
// re-derived groups refill whenever they contain a dirtied VM.
func (s *Sim) dirtyPair(k int) {
	for _, f := range s.pairFlows[k] {
		s.dirtyVM(f.src)
	}
}

// invalidate marks the whole rate allocation stale.
func (s *Sim) invalidate() {
	s.allocDirty = true
	s.groups.dirtyAll = true
}

// AllocGroups reports the shape of the most recent allocation: how
// many independent bottleneck groups the live flow set decomposed
// into, and how many of them were actually refilled (the rest kept
// their rates under scoped invalidation).
func (s *Sim) AllocGroups() (groups, refilled int) {
	return s.lastGroups, s.lastRefilled
}

// ChurnNsPerOp times the allocator hot path outside the testing
// framework: one rate recomputation per flow start/finish churn event
// with 336 concurrent flows on the frozen 8-DC testbed, the same loop
// as BenchmarkAllocatorChurn. incremental selects the production path;
// false runs the from-scratch reference allocator (allocateReference).
//
// cmd/wanify-bench records both numbers into BENCH_netsim.json, and
// the CI regression guard compares the incremental/reference *ratio*
// against that committed baseline — the ratio cancels hardware speed,
// so the gate tracks the code property (how much the incremental
// architecture buys) rather than the runner the baseline happened to
// be recorded on.
func ChurnNsPerOp(incremental bool, rounds int) float64 {
	const nFlows = 336
	cfg := UniformCluster(geo.TestbedSubset(8), substrate.T2Medium, 99)
	cfg.Frozen = true
	s := NewSim(cfg)
	var pairs [][2]int
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	flows := make([]*Flow, nFlows)
	for k := range flows {
		p := pairs[k%len(pairs)]
		flows[k] = s.startProbe(s.FirstVMOfDC(p[0]), s.FirstVMOfDC(p[1]), k%7+1)
	}
	s.ensureAllocated()

	start := time.Now()
	for n := 0; n < rounds; n++ {
		k := n % nFlows
		old := flows[k]
		src, dst := old.src, old.dst
		old.Stop()
		flows[k] = s.startProbe(src, dst, n%7+1)
		if incremental {
			s.ensureAllocated()
		} else {
			s.allocateReference()
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}
