package netsim

import (
	"time"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// ChurnNsPerOp times the allocator hot path outside the testing
// framework: one rate recomputation per flow start/finish churn event
// with 336 concurrent flows on the frozen 8-DC testbed, the same loop
// as BenchmarkAllocatorChurn. incremental selects the production path;
// false runs the from-scratch reference allocator (allocateReference).
//
// cmd/wanify-bench records both numbers into BENCH_netsim.json, and
// the CI regression guard compares the incremental/reference *ratio*
// against that committed baseline — the ratio cancels hardware speed,
// so the gate tracks the code property (how much the incremental
// architecture buys) rather than the runner the baseline happened to
// be recorded on.
func ChurnNsPerOp(incremental bool, rounds int) float64 {
	const nFlows = 336
	cfg := UniformCluster(geo.TestbedSubset(8), substrate.T2Medium, 99)
	cfg.Frozen = true
	s := NewSim(cfg)
	var pairs [][2]int
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	flows := make([]*Flow, nFlows)
	for k := range flows {
		p := pairs[k%len(pairs)]
		flows[k] = s.startProbe(s.FirstVMOfDC(p[0]), s.FirstVMOfDC(p[1]), k%7+1)
	}
	s.ensureAllocated()

	start := time.Now()
	for n := 0; n < rounds; n++ {
		k := n % nFlows
		old := flows[k]
		src, dst := old.src, old.dst
		old.Stop()
		flows[k] = s.startProbe(src, dst, n%7+1)
		if incremental {
			s.ensureAllocated()
		} else {
			s.allocateReference()
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds)
}
