package netsim

import (
	"slices"
)

// Fault injection. Faults are part of the experiment configuration —
// nothing in the simulator's own stochastic machinery ever kills a VM
// or severs a pair — and they act through the ordinary timer queue, so
// a run with a fault schedule is exactly as deterministic as one
// without, and a run with an empty schedule is byte-identical to a
// build that predates the fault model.
//
// Semantics (the substrate contract, substrate.Cluster):
//
//   - KillVM: the VM dies at t, permanently. Every active flow with an
//     endpoint on it fails at that instant (onFail fires, onDone never
//     does); new flows against it are born failed. Failures are applied
//     in flow-id order so callbacks observe a deterministic sequence.
//   - PartitionDC: while a partition covers a DC, every inter-DC pair
//     involving it has achievable rate zero — the allocator forces the
//     per-flow cap to 0, so flows stall rather than fail, and resume
//     when the partition heals. The severing is held as separate state
//     (not via SetPerConnCap) so a trace replay's sample-boundary cap
//     updates cannot resurrect a partitioned pair mid-partition.
//   - ResetPair: every flow active on the pair at t fails — the
//     mid-transfer connection-reset fault.

// KillVM schedules the VM to die at absolute simulated time t (or
// immediately when t <= Now). Death is permanent.
func (s *Sim) KillVM(id VMID, t float64) {
	if t <= s.now {
		s.killVM(id)
		return
	}
	s.at(t, func(float64) { s.killVM(id) })
}

func (s *Sim) killVM(id VMID) {
	v := s.vms[id]
	if v.dead {
		return
	}
	v.dead = true
	var victims []*Flow
	for _, f := range s.flows {
		if f.src == id || f.dst == id {
			victims = append(victims, f)
		}
	}
	// s.flows is permuted by swap-deletes; fail in id order so onFail
	// callbacks fire in the same deterministic sequence as completions.
	slices.SortFunc(victims, func(a, b *Flow) int { return int(a.id - b.id) })
	for _, f := range victims {
		s.failFlow(f)
	}
}

// VMAlive reports whether the VM is accepting flows.
func (s *Sim) VMAlive(id VMID) bool { return !s.vms[id].dead }

// PartitionDC severs dc from the rest of the cluster during
// [from, until): every inter-DC pair involving it has achievable rate
// zero while the partition holds. Overlapping partitions compose.
func (s *Sim) PartitionDC(dc int, from, until float64) {
	if until <= from {
		return
	}
	begin := func(float64) {
		s.partActive[dc]++
		if s.partActive[dc] == 1 && s.interDCFlow > 0 {
			s.invalidate()
		}
	}
	if from <= s.now {
		begin(s.now)
	} else {
		s.at(from, begin)
	}
	s.at(until, func(float64) {
		s.partActive[dc]--
		if s.partActive[dc] == 0 && s.interDCFlow > 0 {
			s.invalidate()
		}
	})
}

// severed reports whether a pair's achievable rate is currently forced
// to zero by an active partition. Intra-DC traffic is never severed.
func (s *Sim) severed(srcDC, dstDC int) bool {
	return srcDC != dstDC && (s.partActive[srcDC] > 0 || s.partActive[dstDC] > 0)
}

// ResetPair aborts every flow active on the (srcDC, dstDC) pair at
// absolute time t. The affected flows fail; later flows on the pair
// are unaffected.
func (s *Sim) ResetPair(srcDC, dstDC int, t float64) {
	fire := func(float64) {
		// Copy: failFlow edits the pair list. Pair lists are kept in
		// start order, so the failure sequence is deterministic.
		victims := append([]*Flow(nil), s.pairFlows[s.pairKey(srcDC, dstDC)]...)
		for _, f := range victims {
			s.failFlow(f)
		}
	}
	if t <= s.now {
		fire(s.now)
	} else {
		s.at(t, fire)
	}
}

// failFlow terminates a flow with failure semantics: it leaves the
// active set like any finished flow, but Failed() turns true, onDone
// never fires and onFail does.
func (s *Sim) failFlow(f *Flow) {
	if f.done {
		return
	}
	f.failed = true
	s.finishFlow(f)
}
