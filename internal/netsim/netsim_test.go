package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *Sim {
	cfg := UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return NewSim(cfg)
}

// TestFlowLifecycle checks a sized flow transfers exactly its bytes and
// fires its completion callback once.
func TestFlowLifecycle(t *testing.T) {
	s := frozenSim(3, 1)
	done := 0
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1, 100e6, func() { done++ })
	if f.Done() {
		t.Fatal("flow done before running")
	}
	if err := s.AwaitFlows(600, f); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("onDone fired %d times", done)
	}
	if got := f.TransferredBytes(); math.Abs(got-100e6) > 1 {
		t.Errorf("transferred %.0f bytes, want 100e6", got)
	}
	if f.RemainingBytes() != 0 {
		t.Errorf("remaining %.0f", f.RemainingBytes())
	}
	if s.ActiveFlows() != 0 {
		t.Errorf("%d active flows after completion", s.ActiveFlows())
	}
}

// TestStoppedFlowDoesNotComplete checks Stop suppresses onDone.
func TestStoppedFlowDoesNotComplete(t *testing.T) {
	s := frozenSim(3, 1)
	done := false
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1, 1e12, func() { done = true })
	s.RunFor(1)
	f.Stop()
	s.RunFor(5)
	if done {
		t.Error("onDone fired for a stopped flow")
	}
	if !f.Done() {
		t.Error("stopped flow not marked done")
	}
}

// TestByteConservation property-checks that a completed flow's
// transferred bytes equal its requested size, across random sizes,
// connection counts and pairs.
func TestByteConservation(t *testing.T) {
	f := func(seed uint64, sizeKB uint32, conns uint8, si, di uint8) bool {
		s := frozenSim(4, seed)
		src := int(si) % 4
		dst := int(di) % 4
		if src == dst {
			return true
		}
		size := float64(sizeKB%100000+1) * 1024
		fl := s.startFlow(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), int(conns%10)+1, size, nil)
		if err := s.AwaitFlows(36000, fl); err != nil {
			return false
		}
		return math.Abs(fl.TransferredBytes()-size) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAllocationRespectsCaps property-checks the allocator: total
// egress/ingress per VM never exceeds spec capacity, and every flow
// stays within its per-connection cap envelope.
func TestAllocationRespectsCaps(t *testing.T) {
	f := func(seed uint64, connChoices [6]uint8) bool {
		s := frozenSim(4, seed)
		var flows []*Flow
		k := 0
		for i := 0; i < 4 && k < 6; i++ {
			for j := 0; j < 4 && k < 6; j++ {
				if i == j {
					continue
				}
				flows = append(flows, s.startProbe(s.FirstVMOfDC(i), s.FirstVMOfDC(j), int(connChoices[k]%8)+1))
				k++
			}
		}
		s.RunFor(10) // past every ramp
		egress := make(map[VMID]float64)
		ingress := make(map[VMID]float64)
		for _, fl := range flows {
			r := fl.Rate()
			if r < 0 {
				return false
			}
			egress[fl.Src()] += r
			ingress[fl.Dst()] += r
			srcDC, dstDC := s.DCOf(fl.Src()), s.DCOf(fl.Dst())
			if r > float64(fl.Conns())*s.PerConnCapMbps(srcDC, dstDC)*1.0001 {
				return false // exceeded its connection-cap envelope
			}
		}
		for vmid, r := range egress {
			if r > s.Spec(vmid).EgressMbps*1.0001 {
				return false
			}
		}
		for vmid, r := range ingress {
			if r > s.Spec(vmid).IngressMbps*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPairLimitEnforced checks simulated `tc` throttling.
func TestPairLimitEnforced(t *testing.T) {
	s := frozenSim(3, 2)
	f := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 4)
	s.RunFor(5)
	unlimited := f.Rate()
	s.SetPairLimit(0, 1, 100)
	s.RunFor(1)
	if got := f.Rate(); got > 100.0001 {
		t.Errorf("rate %v exceeds 100 Mbps pair limit", got)
	}
	s.ClearPairLimit(0, 1)
	s.RunFor(5)
	if got := f.Rate(); got < unlimited*0.9 {
		t.Errorf("rate %v did not recover after clearing limit (was %v)", got, unlimited)
	}
	f.Stop()
}

// TestSetConnsChangesRate checks the Connections Manager lever: more
// connections on an uncontended weak link raise throughput linearly
// (the paper's empirical observation behind Eq. 3).
func TestSetConnsChangesRate(t *testing.T) {
	s := frozenSim(4, 3)
	// DC0 (US East) -> DC3 (AP SE): far, per-connection capped.
	f := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(3), 1)
	s.RunFor(10)
	r1 := f.Rate()
	f.SetConns(4)
	s.RunFor(10)
	r4 := f.Rate()
	if r4 < 3.5*r1 {
		t.Errorf("4-conn rate %v is not ~4x 1-conn rate %v", r4, r1)
	}
	f.Stop()
}

// TestTimers checks After and Every scheduling semantics.
func TestTimers(t *testing.T) {
	s := frozenSim(2, 4)
	var fired []float64
	s.After(2.5, func(now float64) { fired = append(fired, now) })
	cancel := s.Every(1.0, func(now float64) { fired = append(fired, now) })
	s.RunFor(3.2)
	cancel()
	s.RunFor(2)
	// Expect Every at 1, 2, 3 and After at 2.5: four firings total.
	if len(fired) != 4 {
		t.Fatalf("fired %d times at %v, want 4", len(fired), fired)
	}
	want := []float64{1, 2, 2.5, 3}
	for i, w := range want {
		if math.Abs(fired[i]-w) > 1e-6 {
			t.Errorf("firing %d at %v, want %v", i, fired[i], w)
		}
	}
}

// TestCongestionKneeDegradesThroughput checks that a VM loaded far past
// the knee achieves less total throughput than a moderately loaded one
// — the §2.2 "beyond 8 connections no improvement" effect.
func TestCongestionKneeDegradesThroughput(t *testing.T) {
	total := func(connsPerPeer int) float64 {
		s := frozenSim(8, 5)
		var flows []*Flow
		for d := 1; d < 8; d++ {
			flows = append(flows, s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(d), connsPerPeer))
		}
		s.RunFor(10)
		sum := 0.0
		for _, f := range flows {
			sum += f.Rate()
		}
		return sum
	}
	moderate := total(2) // 14 out-conns: under the knee
	heavy := total(16)   // 112 out-conns: far past it
	if heavy > moderate {
		t.Errorf("112-conn total %v should not beat 14-conn total %v", heavy, moderate)
	}
}

// TestRetransmissionsRiseUnderOverload checks the Nr feature source.
func TestRetransmissionsRiseUnderOverload(t *testing.T) {
	s := frozenSim(8, 6)
	idle := s.VMStats(s.FirstVMOfDC(0)).RetransPerSec
	var flows []*Flow
	for d := 1; d < 8; d++ {
		flows = append(flows, s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(d), 8))
	}
	s.RunFor(5)
	loaded := s.VMStats(s.FirstVMOfDC(0)).RetransPerSec
	if loaded <= idle {
		t.Errorf("retrans under load %v not above idle %v", loaded, idle)
	}
	for _, f := range flows {
		f.Stop()
	}
}

// TestMemUtilGrowsWithConnections checks the Md feature source.
func TestMemUtilGrowsWithConnections(t *testing.T) {
	s := frozenSim(3, 7)
	vm := s.FirstVMOfDC(1)
	before := s.VMStats(vm).MemUtil
	f := s.startProbe(s.FirstVMOfDC(0), vm, 30)
	s.RunFor(1)
	after := s.VMStats(vm).MemUtil
	if after <= before {
		t.Errorf("mem util %v did not grow from %v with 30 connections", after, before)
	}
	f.Stop()
}

// TestCPULoadReducesRate checks the Ci coupling: a busy sender achieves
// a lower uncontended rate.
func TestCPULoadReducesRate(t *testing.T) {
	s := frozenSim(4, 8)
	f := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(3), 1)
	s.RunFor(10)
	freeRate := f.Rate()
	s.SetCPULoad(s.FirstVMOfDC(0), 1.0)
	s.RunFor(1)
	busyRate := f.Rate()
	if busyRate >= freeRate {
		t.Errorf("busy sender rate %v not below idle rate %v", busyRate, freeRate)
	}
	f.Stop()
}

// TestSlowStartRamp checks that a freshly started flow transfers less
// in its first RTTs than a warmed-up one — the TCP slow-start model
// behind the small-transfer experiments (Fig. 6).
func TestSlowStartRamp(t *testing.T) {
	s := frozenSim(4, 9)
	src, dst := s.FirstVMOfDC(0), s.FirstVMOfDC(3) // long RTT
	f := s.startProbe(src, dst, 1)
	rampWindow := 4 * s.RTTSeconds(0, 3)
	s.RunFor(rampWindow / 4)
	early := f.Rate()
	s.RunFor(rampWindow * 3)
	late := f.Rate()
	if early >= late {
		t.Errorf("early rate %v not below warmed rate %v", early, late)
	}
	f.Stop()

	// More connections shorten the ramp.
	f8 := s.startProbe(src, dst, 8)
	s.RunFor(rampWindow / 4)
	early8 := f8.Rate()
	perConnEarly8 := early8 / 8
	if perConnEarly8 <= early {
		t.Errorf("8-conn early per-conn rate %v should beat 1-conn early rate %v (shorter ramp)", perConnEarly8, early)
	}
	f8.Stop()
}

// TestDeterminism checks that two sims with the same seed evolve
// identically through fluctuation and flows.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := UniformCluster(geo.TestbedSubset(4), substrate.T2Medium, 31)
		s := NewSim(cfg) // fluctuation ON
		var flows []*Flow
		for d := 1; d < 4; d++ {
			flows = append(flows, s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(d), d))
		}
		s.RunFor(30)
		out := make([]float64, len(flows))
		for i, f := range flows {
			out[i] = f.TransferredBytes()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("flow %d bytes differ: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRunUntilExactness checks time bookkeeping: RunUntil lands exactly
// on the requested instant.
func TestRunUntilExactness(t *testing.T) {
	s := frozenSim(2, 10)
	s.RunUntil(12.34)
	if s.Now() != 12.34 {
		t.Errorf("now = %v, want 12.34", s.Now())
	}
	s.RunUntil(12.0) // moving backwards is a no-op
	if s.Now() != 12.34 {
		t.Errorf("now moved backwards to %v", s.Now())
	}
}

// TestAwaitFlowsStopsAtCompletion checks the engine-facing property
// that no simulated time is wasted after the last flow drains.
func TestAwaitFlowsStopsAtCompletion(t *testing.T) {
	s := frozenSim(3, 11)
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1, 50e6, nil)
	start := s.Now()
	if err := s.AwaitFlows(3600, f); err != nil {
		t.Fatal(err)
	}
	elapsed := s.Now() - start
	// 50 MB over a ~1.7 Gbps link ≈ 0.24 s (+ramp); anything over 2 s
	// means AwaitFlows overshot.
	if elapsed > 2 {
		t.Errorf("AwaitFlows consumed %.2f s for a sub-second transfer", elapsed)
	}
}

// TestAwaitFlowsTimeout checks the deadline error path.
func TestAwaitFlowsTimeout(t *testing.T) {
	s := frozenSim(3, 12)
	s.SetPairLimit(0, 1, 0.001) // effectively stalled
	f := s.startFlow(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1, 1e12, nil)
	if err := s.AwaitFlows(5, f); err == nil {
		t.Error("expected timeout error")
	}
	f.Stop()
}

// TestPairRateAggregation checks DC-level rate reporting.
func TestPairRateAggregation(t *testing.T) {
	s := frozenSim(3, 13)
	f1 := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1)
	f2 := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2)
	s.RunFor(5)
	if got, want := s.PairRate(0, 1), f1.Rate()+f2.Rate(); math.Abs(got-want) > 1e-6 {
		t.Errorf("PairRate = %v, want %v", got, want)
	}
	if s.PairRate(1, 0) != 0 {
		t.Error("reverse direction should be 0")
	}
	f1.Stop()
	f2.Stop()
}

// TestConfigValidation checks constructor panics on malformed configs.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no regions": {},
		"vm mismatch": {
			Regions: geo.TestbedSubset(2),
			VMs:     [][]VMSpec{{substrate.T2Medium}},
		},
		"empty DC": {
			Regions: geo.TestbedSubset(2),
			VMs:     [][]VMSpec{{substrate.T2Medium}, {}},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewSim(cfg)
		}()
	}
}

// TestAddingFlowNeverHelpsOthers property-checks a core water-filling
// invariant: adding a competing flow can only reduce (or preserve)
// every existing flow's rate.
func TestAddingFlowNeverHelpsOthers(t *testing.T) {
	f := func(seed uint64, si, di uint8, conns uint8) bool {
		s := frozenSim(4, seed)
		f1 := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 2)
		f2 := s.startProbe(s.FirstVMOfDC(2), s.FirstVMOfDC(3), 2)
		s.RunFor(6)
		r1, r2 := f1.Rate(), f2.Rate()

		src := int(si) % 4
		dst := int(di) % 4
		if src == dst {
			return true
		}
		s.startProbe(s.FirstVMOfDC(src), s.FirstVMOfDC(dst), int(conns%8)+1)
		s.RunFor(6)
		const eps = 1e-6
		return f1.Rate() <= r1+eps && f2.Rate() <= r2+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFluctuationStationarity checks the OU process keeps long-run
// factors near 1 (no drift) while producing real variance, by observing
// a probe's rate over several minutes of weather.
func TestFluctuationStationarity(t *testing.T) {
	cfg := UniformCluster(geo.TestbedSubset(2), substrate.T2Medium, 21)
	s := NewSim(cfg)
	f := s.startProbe(s.FirstVMOfDC(0), s.FirstVMOfDC(1), 1)
	var rates []float64
	for i := 0; i < 300; i++ {
		s.RunFor(1)
		rates = append(rates, f.Rate())
	}
	f.Stop()
	mean, sd := 0.0, 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	for _, r := range rates {
		sd += (r - mean) * (r - mean)
	}
	sd = math.Sqrt(sd / float64(len(rates)))
	base := s.PerConnCapMbps(0, 1)
	if mean < base*0.8 || mean > base*1.25 {
		t.Errorf("long-run mean %.0f far from nominal %.0f: OU drifted", mean, base)
	}
	if sd < base*0.05 {
		t.Errorf("rate SD %.0f too small: fluctuation not visible", sd)
	}
	t.Logf("nominal %.0f, observed mean %.0f, SD %.0f (%.0f%%)", base, mean, sd, sd/mean*100)
}

// TestMultiVMEgressIndependent checks VMs of one DC contend only via
// their own NICs: two VMs in one DC can together exceed a single VM's
// egress cap.
func TestMultiVMEgressIndependent(t *testing.T) {
	regions := geo.TestbedSubset(2)
	cfg := Config{
		Regions: regions,
		VMs:     [][]VMSpec{{substrate.T2Medium, substrate.T2Medium}, {substrate.T2Medium, substrate.T2Medium}},
		Seed:    22, Frozen: true,
	}
	s := NewSim(cfg)
	vms0 := s.VMsOfDC(0)
	vms1 := s.VMsOfDC(1)
	f1 := s.startProbe(vms0[0], vms1[0], 4)
	f2 := s.startProbe(vms0[1], vms1[1], 4)
	s.RunFor(6)
	total := f1.Rate() + f2.Rate()
	if total <= substrate.T2Medium.EgressMbps*1.05 {
		t.Errorf("two-VM DC egress %.0f did not exceed one VM's cap %.0f", total, substrate.T2Medium.EgressMbps)
	}
	f1.Stop()
	f2.Stop()
}
