package netsim

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// The rate allocator distributes WAN capacity among active flows by
// weighted progressive filling (water-filling). It captures how TCP
// shares a bottleneck in practice rather than ideal max-min fairness:
//
//   - A flow's weight is conns/RTT^RTTBiasExp: more parallel
//     connections claim proportionally more, and short-RTT connections
//     out-compete long-RTT ones (the bias WANify's heterogeneous
//     connections exist to counteract).
//   - A flow can never exceed conns × perConnCap(src,dst) — the window
//     and path-quality limit of each connection — scaled by the link's
//     fluctuation factor, the receiver's memory pressure, and the
//     sender's CPU load.
//   - Per-VM egress/ingress capacities (degraded past the congestion
//     knee) and per-DC-pair `tc` limits are shared resources.
//
// Water-filling raises every unfrozen flow's rate in proportion to its
// weight until some resource saturates; flows crossing a saturated
// resource freeze; repeat until all flows freeze.
//
// # Sharded incremental architecture
//
// The allocator is the simulator's hot path: the evaluation drivers
// invalidate it on every flow start/finish, connection resize, ramp
// step and fluctuation tick, often with hundreds of concurrent shuffle
// flows in play. Four layers keep a recomputation amortized-cheap
// while producing bit-identical rates to the from-scratch oracle
// (allocateReference, kept for tests and benchmarks):
//
//  1. Incremental indexes. Per-VM terminating-connection counts
//     (Sim.vmConns) and per-DC-pair flow lists (Sim.pairFlows) are
//     maintained as flows start/finish/resize, so congestion factors
//     and memory utilization — previously an O(flows) rescan per flow,
//     making each allocation O(flows²) — are O(1) lookups.
//  2. Bottleneck groups (churn.go). The live flows partition into
//     connected components over shared resources; each group is
//     water-filled independently. Filling is a pure function of
//     group-local state, so groups run sequentially or concurrently on
//     a worker pool (Config.Workers) with bit-identical results at any
//     worker count, and scoped invalidation refills only the groups an
//     event touched — clean groups keep their rates and
//     retransmission attributions verbatim.
//  3. Slab reuse. Each worker owns a fillScratch: resource tables,
//     membership lists, weights, rates and freeze bitmaps are recycled
//     across invocations, so a steady-state allocation performs no
//     heap allocation at all. Resources exist only for the VMs and
//     pairs a group actually uses — idle VMs and pairs cost nothing,
//     which is what keeps a 500-DC topology with sparse traffic from
//     paying for 250k pair slots per allocation.
//  4. Incremental weight sums in the filling loop. Each resource's
//     unfrozen-weight sum is cached and recomputed only after one of
//     its member flows froze in the previous round (the recompute
//     rescans that resource's members in original order, which keeps
//     the floating-point summation identical to a from-scratch pass).
//     Unfrozen flows are also kept in a compacted order-preserving
//     list, so late rounds stop paying for flows frozen early.
//
// Determinism: within a group, every floating-point operation happens
// in the same order as the from-scratch reference, with flows visited
// in start (id) order; across groups no state is shared, so neither
// group execution order nor the worker count can perturb a result.
// The merge is trivially deterministic — each group writes rates for
// its own flows and retransmission attributions for its own VMs, and
// the partition guarantees those sets are disjoint.

// resKind distinguishes allocator resource types (for retransmission
// attribution).
type resKind uint8

const (
	resEgress resKind = iota
	resIngress
	resPairLimit
	resFlowCap
)

// allocEps is the relative tolerance deciding when a resource counts
// as saturated in the progressive-filling loop.
const allocEps = 1e-9

// fillScratch is one worker's reusable filling state (layer 3 of the
// architecture above). Resources are stored struct-of-arrays; nRes
// tracks the live prefix so slabs shrink without freeing. A scratch is
// owned by exactly one worker for the duration of an allocation; the
// sequential path uses scratch 0.
type fillScratch struct {
	// Group VM table: local ordinal per VM (epoch-stamped), member VMs
	// in first-appearance order, and their receiver memory factors.
	vmLocal []int32
	vmEpoch []uint32
	epoch   uint32
	vms     []VMID
	memF    []float64

	// Resource slabs, parallel arrays of length >= nRes. VM resources
	// occupy indices 2l (egress) and 2l+1 (ingress) for local VM l.
	nRes     int
	kind     []resKind
	resVM    []VMID
	resCap   []float64
	avail    []float64
	availMin []float64 // saturation threshold eps*max(1, cap), precomputed
	members  [][]int   // flow indices using each resource, in id order
	sumW     []float64 // cached unfrozen weight sum per resource
	dirty    []bool    // sumW must be rescanned (a member froze)
	liveRes  []int     // resources that still have unfrozen members

	// pairRes maps pairKey -> pair-limit resource index for the current
	// group (-1 when not materialized); touched lists the keys to reset
	// afterwards. Sized numDCs² lazily, only when limits exist.
	pairRes []int32
	touched []int

	weights []float64
	flowRes [][]int // resource indices per flow; [2] is the flow's cap
	rates   []float64
	frozen  []bool
	active  []int // unfrozen flow indices, compacted, in id order
}

// localVM returns the group-local ordinal of v, adding it to the group
// VM table on first sight.
func (a *fillScratch) localVM(v VMID) int32 {
	if len(a.vmEpoch) <= int(v) {
		grown := make([]uint32, int(v)+1)
		copy(grown, a.vmEpoch)
		a.vmEpoch = grown
		l := make([]int32, int(v)+1)
		copy(l, a.vmLocal)
		a.vmLocal = l
	}
	if a.vmEpoch[v] != a.epoch {
		a.vmEpoch[v] = a.epoch
		a.vmLocal[v] = int32(len(a.vms))
		a.vms = append(a.vms, v)
	}
	return a.vmLocal[v]
}

// addRes appends a resource to the slab, recycling member storage.
func (a *fillScratch) addRes(k resKind, vm VMID, capMbps float64) int {
	i := a.nRes
	if i == len(a.kind) {
		a.kind = append(a.kind, 0)
		a.resVM = append(a.resVM, 0)
		a.resCap = append(a.resCap, 0)
		a.avail = append(a.avail, 0)
		a.availMin = append(a.availMin, 0)
		a.members = append(a.members, nil)
		a.sumW = append(a.sumW, 0)
		a.dirty = append(a.dirty, false)
	}
	a.kind[i] = k
	a.resVM[i] = vm
	a.resCap[i] = capMbps
	a.avail[i] = capMbps
	a.availMin[i] = allocEps * math.Max(1, capMbps)
	a.members[i] = a.members[i][:0]
	a.sumW[i] = 0
	a.dirty[i] = true
	a.nRes++
	return i
}

// growFlows sizes the per-flow slabs for nf flows.
func (a *fillScratch) growFlows(nf int) {
	if cap(a.weights) < nf {
		a.weights = make([]float64, nf)
		a.rates = make([]float64, nf)
		a.frozen = make([]bool, nf)
		fr := make([][]int, nf)
		copy(fr, a.flowRes)
		a.flowRes = fr
	}
	a.weights = a.weights[:nf]
	a.rates = a.rates[:nf]
	a.frozen = a.frozen[:nf]
	a.flowRes = a.flowRes[:nf]
}

// flowsOrdered returns the active flows in start (id) order, reusing
// the cached slice. Sim.flows is permuted by swap-deletes; the
// allocator's float arithmetic must not depend on that permutation.
// The sorted view is kept until the flow set changes, so invalidations
// that touch no flows (fluct ticks, CPU/tc changes) skip the sort.
func (s *Sim) flowsOrdered() []*Flow {
	if !s.flowSetChanged && len(s.orderBuf) == len(s.flows) {
		return s.orderBuf
	}
	s.orderBuf = append(s.orderBuf[:0], s.flows...)
	slices.SortFunc(s.orderBuf, func(x, y *Flow) int {
		switch {
		case x.id < y.id:
			return -1
		case x.id > y.id:
			return 1
		default:
			return 0
		}
	})
	s.flowSetChanged = false
	return s.orderBuf
}

// ensureAllocated recomputes flow rates if anything changed.
func (s *Sim) ensureAllocated() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.allocate()
}

// scratchFor returns worker w's fillScratch, growing the pool.
func (s *Sim) scratchFor(w int) *fillScratch {
	for len(s.scratches) <= w {
		s.scratches = append(s.scratches, &fillScratch{})
	}
	return s.scratches[w]
}

// allocate recomputes flow rates: partition the live flows into
// bottleneck groups, decide which groups an event since the last
// allocation touched, and water-fill exactly those, concurrently when
// Config.Workers allows.
func (s *Sim) allocate() {
	order := s.flowsOrdered()
	nf := len(order)
	g := &s.groups
	if nf == 0 {
		for _, v := range s.vms {
			v.lastRetrans = 0
		}
		g.dirtyRoots = g.dirtyRoots[:0]
		g.dirtyAll = false
		g.rootEpoch++ // no VM stays stamped: everything is ungrouped
		s.lastGroups, s.lastRefilled = 0, 0
		return
	}

	// Partition the live flow set into bottleneck groups.
	g.beginEpoch(len(s.vms))
	for _, f := range order {
		g.union(f.src, f.dst)
	}
	g.linkLimitedPairs(s, order)

	// Assign group ordinals by first appearance in id order and count
	// members.
	if cap(g.flowOrd) < nf {
		g.flowOrd = make([]int32, nf)
	}
	g.flowOrd = g.flowOrd[:nf]
	g.roots = g.roots[:0]
	g.counts = g.counts[:0]
	for fi, f := range order {
		r := g.find(f.src)
		var ord int32
		if g.ordEpoch[r] != g.epoch {
			g.ordEpoch[r] = g.epoch
			ord = int32(len(g.roots))
			g.ordOf[r] = ord
			g.roots = append(g.roots, r)
			g.counts = append(g.counts, 0)
		} else {
			ord = g.ordOf[r]
		}
		g.flowOrd[fi] = ord
		g.counts[ord]++
	}
	ng := len(g.roots)

	// Decide which groups to refill: those touched by a recorded event
	// (via their last-allocation root) or containing a VM that was not
	// grouped last time (its flows are new).
	if cap(g.needFill) < ng {
		g.needFill = make([]bool, ng)
	}
	g.needFill = g.needFill[:ng]
	for i := range g.needFill {
		g.needFill[i] = g.dirtyAll
	}
	if !g.dirtyAll {
		for _, r := range g.dirtyRoots {
			g.rootDirty[r] = true
		}
		for fi, f := range order {
			ord := g.flowOrd[fi]
			if g.needFill[ord] {
				continue
			}
			if g.vmDirty(f.src) || g.vmDirty(f.dst) {
				g.needFill[ord] = true
			}
		}
		for _, r := range g.dirtyRoots {
			g.rootDirty[r] = false
		}
	}
	g.dirtyRoots = g.dirtyRoots[:0]
	g.dirtyAll = false

	// Bucket flows by group, preserving id order within each group.
	if cap(g.offsets) < ng+1 {
		g.offsets = make([]int32, ng+1)
		g.cursor = make([]int32, ng+1)
	}
	g.offsets = g.offsets[:ng+1]
	g.cursor = g.cursor[:ng]
	off := int32(0)
	for ord := 0; ord < ng; ord++ {
		g.offsets[ord] = off
		g.cursor[ord] = off
		off += g.counts[ord]
	}
	g.offsets[ng] = off
	if cap(g.bucketed) < nf {
		g.bucketed = make([]*Flow, nf)
	}
	g.bucketed = g.bucketed[:nf]
	for fi, f := range order {
		ord := g.flowOrd[fi]
		g.bucketed[g.cursor[ord]] = f
		g.cursor[ord]++
	}
	g.dirtyG = g.dirtyG[:0]
	for ord := 0; ord < ng; ord++ {
		if g.needFill[ord] {
			g.dirtyG = append(g.dirtyG, int32(ord))
		}
	}

	// Fill the dirty groups. Each group writes only its own flows'
	// rates and its own VMs' retransmission attributions, so the
	// worker assignment cannot influence results.
	if nw := min(s.workers, len(g.dirtyG)); nw > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			ws := s.scratchFor(w)
			wg.Add(1)
			go func(ws *fillScratch) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(g.dirtyG) {
						return
					}
					ord := g.dirtyG[i]
					ws.fillGroup(s, g.bucketed[g.offsets[ord]:g.offsets[ord+1]])
				}
			}(ws)
		}
		wg.Wait()
	} else {
		ws := s.scratchFor(0)
		for _, ord := range g.dirtyG {
			ws.fillGroup(s, g.bucketed[g.offsets[ord]:g.offsets[ord+1]])
		}
	}

	// Stamp the new grouping for the next round of scoped dirt.
	g.rootEpoch++
	for _, f := range order {
		for _, v := range [2]VMID{f.src, f.dst} {
			if g.vmRootEpoch[v] != g.rootEpoch {
				g.vmRootEpoch[v] = g.rootEpoch
				g.vmRoot[v] = g.find(v)
			}
		}
	}
	s.lastGroups, s.lastRefilled = ng, len(g.dirtyG)
}

// vmDirty reports whether v's group must be refilled: v was not part
// of the last allocation's grouping, or its then-group was dirtied.
func (g *groupIndex) vmDirty(v VMID) bool {
	if g.vmRootEpoch[v] != g.rootEpoch {
		return true
	}
	return g.rootDirty[g.vmRoot[v]]
}

// fillGroup water-fills one bottleneck group: flows is the group's
// member flows in start (id) order. It writes each flow's rate and the
// retransmission attribution of every VM the group touches, and no
// other simulator state. It reads only immutable-within-allocation
// state from s, so concurrent calls on disjoint groups are safe.
func (a *fillScratch) fillGroup(s *Sim, flows []*Flow) {
	nf := len(flows)
	a.epoch++
	a.vms = a.vms[:0]

	// Group VM table in first-appearance order. Values (congestion
	// factor, memory factor) depend only on the VM's own state, so the
	// table order is free — only per-resource arithmetic must match
	// the reference, and it does, member lists being in flow order.
	for _, f := range flows {
		a.localVM(f.src)
		a.localVM(f.dst)
	}
	a.nRes = 0
	if cap(a.memF) < len(a.vms) {
		a.memF = make([]float64, len(a.vms))
	}
	a.memF = a.memF[:len(a.vms)]
	for l, v := range a.vms {
		over := float64(s.vmConns[v] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		cong := 1 / (1 + s.cfg.CongestionSlope*over)
		spec := &s.vms[v].spec
		a.addRes(resEgress, v, spec.EgressMbps*cong)
		a.addRes(resIngress, v, spec.IngressMbps*cong)
		a.memF[l] = memFactor(s.memUtil(v))
	}

	// Per-flow caps and lazily materialized pair limits, in flow order.
	a.growFlows(nf)
	for fi, f := range flows {
		srcDC, dstDC := f.srcDC, f.dstDC
		fluct := 1.0
		if p := s.fluct[srcDC][dstDC]; p != nil {
			fluct = p.factor()
		}
		memF := a.memF[a.vmLocal[f.dst]]
		cpuF := cpuFactor(s.vms[f.src].cpuLoad)
		capF := float64(f.conns) * s.perConnBase[srcDC][dstDC] * fluct * memF * cpuF * s.rampFactor(f)
		if s.severed(srcDC, dstDC) {
			capF = 0 // active DC partition: the pair delivers nothing
		}
		capRes := a.addRes(resFlowCap, 0, capF)

		a.weights[fi] = float64(f.conns) / s.rttBiasPow[srcDC][dstDC]

		rs := append(a.flowRes[fi][:0], int(2*a.vmLocal[f.src]), int(2*a.vmLocal[f.dst]+1), capRes)
		if limit := s.pairLimitAt(srcDC, dstDC); !math.IsNaN(limit) {
			if n := len(s.regions) * len(s.regions); len(a.pairRes) < n {
				a.pairRes = make([]int32, n)
				for i := range a.pairRes {
					a.pairRes[i] = -1
				}
			}
			k := s.pairKey(srcDC, dstDC)
			ri := a.pairRes[k]
			if ri < 0 {
				ri = int32(a.addRes(resPairLimit, 0, limit))
				a.pairRes[k] = ri
				a.touched = append(a.touched, k)
			}
			rs = append(rs, int(ri))
		}
		a.flowRes[fi] = rs
	}
	for _, k := range a.touched {
		a.pairRes[k] = -1
	}
	a.touched = a.touched[:0]
	for fi := range flows {
		for _, ri := range a.flowRes[fi] {
			a.members[ri] = append(a.members[ri], fi)
		}
	}

	// Progressive filling.
	a.active = a.active[:0]
	for fi := 0; fi < nf; fi++ {
		a.rates[fi] = 0
		a.frozen[fi] = false
		a.active = append(a.active, fi)
	}
	remaining := nf
	a.liveRes = a.liveRes[:0]
	for ri := 0; ri < a.nRes; ri++ {
		a.liveRes = append(a.liveRes, ri)
	}
	for remaining > 0 {
		// Weight sums per resource over unfrozen members: cached, and
		// rescanned (in member order, for bit-stable summation) only
		// for resources that lost a member last round. Resources whose
		// members all froze leave the live list: a weight is strictly
		// positive, so sumW == 0 exactly when no unfrozen member is
		// left, and such a resource can never constrain theta or
		// freeze anything again.
		theta := math.Inf(1)
		live := a.liveRes[:0]
		for _, ri := range a.liveRes {
			if a.dirty[ri] {
				sum := 0.0
				for _, fi := range a.members[ri] {
					if !a.frozen[fi] {
						sum += a.weights[fi]
					}
				}
				a.sumW[ri] = sum
				a.dirty[ri] = false
			}
			if a.sumW[ri] > 0 {
				live = append(live, ri)
				if t := a.avail[ri] / a.sumW[ri]; t < theta {
					theta = t
				}
			}
		}
		a.liveRes = live
		if math.IsInf(theta, 1) {
			break
		}
		if theta < 0 {
			theta = 0
		}
		// Raise the water level for the (compacted) unfrozen flows.
		for _, fi := range a.active {
			inc := theta * a.weights[fi]
			a.rates[fi] += inc
			for _, ri := range a.flowRes[fi] {
				a.avail[ri] -= inc
			}
		}
		// Freeze flows on exhausted resources.
		frozeAny := false
		for _, ri := range a.liveRes {
			if a.avail[ri] > a.availMin[ri] {
				continue
			}
			for _, fi := range a.members[ri] {
				if !a.frozen[fi] {
					a.frozen[fi] = true
					remaining--
					frozeAny = true
					for _, r2 := range a.flowRes[fi] {
						a.dirty[r2] = true
					}
				}
			}
		}
		if !frozeAny {
			// Numerical stall: freeze everything to guarantee progress.
			for _, fi := range a.active {
				if !a.frozen[fi] {
					a.frozen[fi] = true
					remaining--
				}
			}
		}
		unfrozen := a.active[:0]
		for _, fi := range a.active {
			if !a.frozen[fi] {
				unfrozen = append(unfrozen, fi)
			}
		}
		a.active = unfrozen
	}
	for fi, f := range flows {
		f.rate = a.rates[fi]
	}

	// Retransmission rates: attribute overload pressure at each VM
	// resource to that VM, proportional to how much demand (per-flow
	// caps) exceeds effective capacity.
	for _, v := range a.vms {
		s.vms[v].lastRetrans = 0
	}
	for ri := 0; ri < 2*len(a.vms); ri++ {
		demand := 0.0
		conns := 0
		for _, fi := range a.members[ri] {
			demand += a.resCap[a.flowRes[fi][2]] // the flow's own cap resource
			conns += flows[fi].conns
		}
		if a.resCap[ri] <= 0 {
			continue
		}
		pressure := demand/a.resCap[ri] - 1
		if pressure > 0 {
			s.vms[a.resVM[ri]].lastRetrans += 2.0 * pressure * float64(conns)
		}
	}
}

// memFactor degrades per-connection throughput when the receiver runs
// out of buffer headroom (the paper's observation that "each connection
// requires a memory buffer, affecting runtime BW" [17]).
func memFactor(memUtil float64) float64 {
	if memUtil <= 0.85 {
		return 1
	}
	f := 1 - (memUtil-0.85)*2.5
	return math.Max(0.4, f)
}

// cpuFactor degrades sending rate under CPU pressure (sender-limited
// TCP; feature Ci of Table 3 exists because of this coupling).
func cpuFactor(cpuLoad float64) float64 {
	return 1 - 0.25*cpuLoad*cpuLoad
}
