package netsim

import "math"

// The rate allocator distributes WAN capacity among active flows by
// weighted progressive filling (water-filling). It captures how TCP
// shares a bottleneck in practice rather than ideal max-min fairness:
//
//   - A flow's weight is conns/RTT^RTTBiasExp: more parallel
//     connections claim proportionally more, and short-RTT connections
//     out-compete long-RTT ones (the bias WANify's heterogeneous
//     connections exist to counteract).
//   - A flow can never exceed conns × perConnCap(src,dst) — the window
//     and path-quality limit of each connection — scaled by the link's
//     fluctuation factor, the receiver's memory pressure, and the
//     sender's CPU load.
//   - Per-VM egress/ingress capacities (degraded past the congestion
//     knee) and per-DC-pair `tc` limits are shared resources.
//
// Water-filling raises every unfrozen flow's rate in proportion to its
// weight until some resource saturates; flows crossing a saturated
// resource freeze; repeat until all flows freeze.

// resKind distinguishes allocator resource types (for retransmission
// attribution).
type resKind uint8

const (
	resEgress resKind = iota
	resIngress
	resPairLimit
	resFlowCap
)

type resource struct {
	kind resKind
	vm   VMID // for egress/ingress
	cap  float64
	used float64
	// flows using this resource (indices into the allocator flow list)
	members []int
}

// ensureAllocated recomputes flow rates if anything changed.
func (s *Sim) ensureAllocated() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.allocate()
}

func (s *Sim) allocate() {
	nf := len(s.flows)
	if nf == 0 {
		for _, v := range s.vms {
			v.lastRetrans = 0
		}
		return
	}

	// Congestion factor per VM: effective capacity degrades once the
	// total connection count passes the knee.
	congFactor := make([]float64, len(s.vms))
	totalConns := make([]int, len(s.vms))
	for _, f := range s.flows {
		totalConns[f.src] += f.conns
		totalConns[f.dst] += f.conns
	}
	for i := range s.vms {
		over := float64(totalConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		congFactor[i] = 1 / (1 + s.cfg.CongestionSlope*over)
	}

	// Build resources.
	var resources []resource
	egressIdx := make([]int, len(s.vms))
	ingressIdx := make([]int, len(s.vms))
	for i, v := range s.vms {
		egressIdx[i] = len(resources)
		resources = append(resources, resource{kind: resEgress, vm: v.id, cap: v.spec.EgressMbps * congFactor[i]})
		ingressIdx[i] = len(resources)
		resources = append(resources, resource{kind: resIngress, vm: v.id, cap: v.spec.IngressMbps * congFactor[i]})
	}
	pairIdx := make(map[[2]int]int)
	for pair, limit := range s.pairLimits {
		pairIdx[pair] = -1
		_ = limit
	}

	weights := make([]float64, nf)
	flowRes := make([][]int, nf) // resource indices per flow
	for fi, f := range s.flows {
		srcDC, dstDC := s.vms[f.src].dc, s.vms[f.dst].dc
		fluct := 1.0
		if p := s.fluct[srcDC][dstDC]; p != nil {
			fluct = p.factor()
		}
		memF := memFactor(s.memUtil(f.dst))
		cpuF := cpuFactor(s.vms[f.src].cpuLoad)
		capF := float64(f.conns) * s.perConnBase[srcDC][dstDC] * fluct * memF * cpuF * s.rampFactor(f)
		// Per-flow cap resource.
		capRes := len(resources)
		resources = append(resources, resource{kind: resFlowCap, cap: capF})

		rtt := s.rttSec[srcDC][dstDC]
		if rtt <= 0 {
			rtt = 1e-3
		}
		weights[fi] = float64(f.conns) / math.Pow(rtt, s.cfg.RTTBiasExp)

		rs := []int{egressIdx[f.src], ingressIdx[f.dst], capRes}
		if _, limited := s.pairLimits[[2]int{srcDC, dstDC}]; limited {
			idx, ok := pairIdx[[2]int{srcDC, dstDC}]
			if !ok || idx < 0 {
				idx = len(resources)
				resources = append(resources, resource{kind: resPairLimit, cap: s.pairLimits[[2]int{srcDC, dstDC}]})
				pairIdx[[2]int{srcDC, dstDC}] = idx
			}
			rs = append(rs, idx)
		}
		flowRes[fi] = rs
	}
	for fi, rs := range flowRes {
		for _, r := range rs {
			resources[r].members = append(resources[r].members, fi)
		}
	}

	// Progressive filling.
	rates := make([]float64, nf)
	frozen := make([]bool, nf)
	avail := make([]float64, len(resources))
	for i := range resources {
		avail[i] = resources[i].cap
	}
	remaining := nf
	const eps = 1e-9
	for remaining > 0 {
		// Weight sums per resource over unfrozen members.
		theta := math.Inf(1)
		for ri := range resources {
			sumW := 0.0
			for _, fi := range resources[ri].members {
				if !frozen[fi] {
					sumW += weights[fi]
				}
			}
			if sumW > 0 {
				if t := avail[ri] / sumW; t < theta {
					theta = t
				}
			}
		}
		if math.IsInf(theta, 1) {
			break
		}
		if theta < 0 {
			theta = 0
		}
		// Raise the water level.
		for fi := range rates {
			if frozen[fi] {
				continue
			}
			inc := theta * weights[fi]
			rates[fi] += inc
			for _, ri := range flowRes[fi] {
				avail[ri] -= inc
			}
		}
		// Freeze flows on exhausted resources.
		frozeAny := false
		for ri := range resources {
			if avail[ri] > eps*math.Max(1, resources[ri].cap) {
				continue
			}
			for _, fi := range resources[ri].members {
				if !frozen[fi] {
					frozen[fi] = true
					remaining--
					frozeAny = true
				}
			}
		}
		if !frozeAny {
			// Numerical stall: freeze everything to guarantee progress.
			for fi := range frozen {
				if !frozen[fi] {
					frozen[fi] = true
					remaining--
				}
			}
		}
	}
	for fi, f := range s.flows {
		f.rate = rates[fi]
	}

	// Retransmission rates: attribute overload pressure at each VM
	// resource to that VM, proportional to how much demand (per-flow
	// caps) exceeds effective capacity.
	for _, v := range s.vms {
		v.lastRetrans = 0
	}
	for ri := range resources {
		r := &resources[ri]
		if r.kind != resEgress && r.kind != resIngress {
			continue
		}
		demand := 0.0
		conns := 0
		for _, fi := range r.members {
			demand += resources[flowRes[fi][2]].cap // the flow's own cap resource
			conns += s.flows[fi].conns
		}
		if r.cap <= 0 {
			continue
		}
		pressure := demand/r.cap - 1
		if pressure > 0 {
			s.vms[r.vm].lastRetrans += 2.0 * pressure * float64(conns)
		}
	}
}

// memFactor degrades per-connection throughput when the receiver runs
// out of buffer headroom (the paper's observation that "each connection
// requires a memory buffer, affecting runtime BW" [17]).
func memFactor(memUtil float64) float64 {
	if memUtil <= 0.85 {
		return 1
	}
	f := 1 - (memUtil-0.85)*2.5
	return math.Max(0.4, f)
}

// cpuFactor degrades sending rate under CPU pressure (sender-limited
// TCP; feature Ci of Table 3 exists because of this coupling).
func cpuFactor(cpuLoad float64) float64 {
	return 1 - 0.25*cpuLoad*cpuLoad
}
