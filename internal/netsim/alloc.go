package netsim

import (
	"math"
	"slices"
)

// The rate allocator distributes WAN capacity among active flows by
// weighted progressive filling (water-filling). It captures how TCP
// shares a bottleneck in practice rather than ideal max-min fairness:
//
//   - A flow's weight is conns/RTT^RTTBiasExp: more parallel
//     connections claim proportionally more, and short-RTT connections
//     out-compete long-RTT ones (the bias WANify's heterogeneous
//     connections exist to counteract).
//   - A flow can never exceed conns × perConnCap(src,dst) — the window
//     and path-quality limit of each connection — scaled by the link's
//     fluctuation factor, the receiver's memory pressure, and the
//     sender's CPU load.
//   - Per-VM egress/ingress capacities (degraded past the congestion
//     knee) and per-DC-pair `tc` limits are shared resources.
//
// Water-filling raises every unfrozen flow's rate in proportion to its
// weight until some resource saturates; flows crossing a saturated
// resource freeze; repeat until all flows freeze.
//
// # Incremental architecture
//
// The allocator is the simulator's hot path: the evaluation drivers
// invalidate it on every flow start/finish, connection resize, ramp
// step and fluctuation tick, often with hundreds of concurrent shuffle
// flows in play. Three layers keep a recomputation amortized-cheap
// while producing bit-identical rates to the original from-scratch
// implementation (kept as allocateReference for tests and benchmarks):
//
//  1. Incremental indexes. Per-VM terminating-connection counts
//     (Sim.vmConns) and per-DC-pair flow lists (Sim.pairFlows) are
//     maintained as flows start/finish/resize, so congestion factors
//     and memory utilization — previously an O(flows) rescan per flow,
//     making each allocation O(flows²) — are O(1) lookups.
//  2. Slab reuse. The resource table, membership lists, weights, rates
//     and freeze bitmaps live in allocScratch and are recycled across
//     invocations; a steady-state allocation performs no heap
//     allocation at all.
//  3. Incremental weight sums in the filling loop. Each resource's
//     unfrozen-weight sum is cached and recomputed only after one of
//     its member flows froze in the previous round (the recompute
//     rescans that resource's members in original order, which keeps
//     the floating-point summation identical to a from-scratch pass).
//     Unfrozen flows are also kept in a compacted order-preserving
//     list, so late rounds stop paying for flows frozen early.
//
// Determinism: every floating-point operation happens in the same
// order as the from-scratch allocator, with flows visited in start
// (id) order, so rates are reproducible bit for bit — allocation
// results do not depend on how the unordered Sim.flows slab happens to
// be permuted by swap-deletes.

// resKind distinguishes allocator resource types (for retransmission
// attribution).
type resKind uint8

const (
	resEgress resKind = iota
	resIngress
	resPairLimit
	resFlowCap
)

// allocEps is the relative tolerance deciding when a resource counts
// as saturated in the progressive-filling loop.
const allocEps = 1e-9

// allocScratch is the allocator's reusable working state (layer 2 of
// the architecture above). Resources are stored struct-of-arrays;
// nRes tracks the live prefix so slabs shrink without freeing.
type allocScratch struct {
	order []*Flow // active flows in start (id) order

	cong []float64 // per-VM effective-capacity factor this round
	memF []float64 // per-VM receiver memory factor this round

	// Resource slabs, parallel arrays of length >= nRes.
	nRes     int
	kind     []resKind
	resVM    []VMID
	resCap   []float64
	avail    []float64
	availMin []float64 // saturation threshold eps*max(1, cap), precomputed
	members  [][]int   // flow indices using each resource, in id order
	sumW     []float64 // cached unfrozen weight sum per resource
	dirty    []bool    // sumW must be rescanned (a member froze)
	liveRes  []int     // resources that still have unfrozen members

	// pairRes maps pairKey -> pair-limit resource index for the current
	// build (-1 when not yet materialized); touched lists the keys to
	// reset afterwards so the map stays O(pairs actually limited).
	pairRes []int
	touched []int

	weights []float64
	flowRes [][]int // resource indices per flow; [2] is the flow's cap
	rates   []float64
	frozen  []bool
	active  []int // unfrozen flow indices, compacted, in id order
}

func (a *allocScratch) init(numDCs int) {
	a.pairRes = make([]int, numDCs*numDCs)
	for i := range a.pairRes {
		a.pairRes[i] = -1
	}
}

// addRes appends a resource to the slab, recycling member storage.
func (a *allocScratch) addRes(k resKind, vm VMID, capMbps float64) int {
	i := a.nRes
	if i == len(a.kind) {
		a.kind = append(a.kind, 0)
		a.resVM = append(a.resVM, 0)
		a.resCap = append(a.resCap, 0)
		a.avail = append(a.avail, 0)
		a.availMin = append(a.availMin, 0)
		a.members = append(a.members, nil)
		a.sumW = append(a.sumW, 0)
		a.dirty = append(a.dirty, false)
	}
	a.kind[i] = k
	a.resVM[i] = vm
	a.resCap[i] = capMbps
	a.avail[i] = capMbps
	a.availMin[i] = allocEps * math.Max(1, capMbps)
	a.members[i] = a.members[i][:0]
	a.sumW[i] = 0
	a.dirty[i] = true
	a.nRes++
	return i
}

// growFlows sizes the per-flow slabs for nf flows.
func (a *allocScratch) growFlows(nf int) {
	if cap(a.weights) < nf {
		a.weights = make([]float64, nf)
		a.rates = make([]float64, nf)
		a.frozen = make([]bool, nf)
		fr := make([][]int, nf)
		copy(fr, a.flowRes)
		a.flowRes = fr
	}
	a.weights = a.weights[:nf]
	a.rates = a.rates[:nf]
	a.frozen = a.frozen[:nf]
	a.flowRes = a.flowRes[:nf]
}

// flowsOrdered returns the active flows in start (id) order, reusing
// the scratch slice. Sim.flows is permuted by swap-deletes; the
// allocator's float arithmetic must not depend on that permutation.
// The sorted view is kept until the flow set changes, so invalidations
// that touch no flows (fluct ticks, CPU/tc changes) skip the sort.
func (s *Sim) flowsOrdered() []*Flow {
	a := &s.scratch
	if !s.flowSetChanged && len(a.order) == len(s.flows) {
		return a.order
	}
	a.order = append(a.order[:0], s.flows...)
	slices.SortFunc(a.order, func(x, y *Flow) int {
		switch {
		case x.id < y.id:
			return -1
		case x.id > y.id:
			return 1
		default:
			return 0
		}
	})
	s.flowSetChanged = false
	return a.order
}

// ensureAllocated recomputes flow rates if anything changed.
func (s *Sim) ensureAllocated() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.allocate()
}

func (s *Sim) allocate() {
	order := s.flowsOrdered()
	nf := len(order)
	if nf == 0 {
		for _, v := range s.vms {
			v.lastRetrans = 0
		}
		return
	}
	a := &s.scratch

	// Congestion factor per VM: effective capacity degrades once the
	// total connection count passes the knee. vmConns is maintained
	// incrementally, so this is O(VMs), not O(flows).
	if cap(a.cong) < len(s.vms) {
		a.cong = make([]float64, len(s.vms))
		a.memF = make([]float64, len(s.vms))
	}
	a.cong = a.cong[:len(s.vms)]
	a.memF = a.memF[:len(s.vms)]
	for i := range s.vms {
		over := float64(s.vmConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		a.cong[i] = 1 / (1 + s.cfg.CongestionSlope*over)
		a.memF[i] = memFactor(s.memUtil(VMID(i)))
	}

	// Build the resource table into the recycled slabs: per-VM egress
	// (index 2i) and ingress (2i+1), then per-flow caps and lazily
	// materialized pair limits, in flow order.
	a.nRes = 0
	for i, v := range s.vms {
		a.addRes(resEgress, v.id, v.spec.EgressMbps*a.cong[i])
		a.addRes(resIngress, v.id, v.spec.IngressMbps*a.cong[i])
	}
	a.growFlows(nf)
	for fi, f := range order {
		srcDC, dstDC := f.srcDC, f.dstDC
		fluct := 1.0
		if p := s.fluct[srcDC][dstDC]; p != nil {
			fluct = p.factor()
		}
		memF := a.memF[f.dst]
		cpuF := cpuFactor(s.vms[f.src].cpuLoad)
		capF := float64(f.conns) * s.perConnBase[srcDC][dstDC] * fluct * memF * cpuF * s.rampFactor(f)
		if s.severed(srcDC, dstDC) {
			capF = 0 // active DC partition: the pair delivers nothing
		}
		capRes := a.addRes(resFlowCap, 0, capF)

		a.weights[fi] = float64(f.conns) / s.rttBiasPow[srcDC][dstDC]

		rs := append(a.flowRes[fi][:0], 2*int(f.src), 2*int(f.dst)+1, capRes)
		if limit := s.pairLimitAt(srcDC, dstDC); !math.IsNaN(limit) {
			k := s.pairKey(srcDC, dstDC)
			ri := a.pairRes[k]
			if ri < 0 {
				ri = a.addRes(resPairLimit, 0, limit)
				a.pairRes[k] = ri
				a.touched = append(a.touched, k)
			}
			rs = append(rs, ri)
		}
		a.flowRes[fi] = rs
	}
	for _, k := range a.touched {
		a.pairRes[k] = -1
	}
	a.touched = a.touched[:0]
	for fi := range order {
		for _, ri := range a.flowRes[fi] {
			a.members[ri] = append(a.members[ri], fi)
		}
	}

	// Progressive filling.
	a.active = a.active[:0]
	for fi := 0; fi < nf; fi++ {
		a.rates[fi] = 0
		a.frozen[fi] = false
		a.active = append(a.active, fi)
	}
	remaining := nf
	a.liveRes = a.liveRes[:0]
	for ri := 0; ri < a.nRes; ri++ {
		a.liveRes = append(a.liveRes, ri)
	}
	for remaining > 0 {
		// Weight sums per resource over unfrozen members: cached, and
		// rescanned (in member order, for bit-stable summation) only
		// for resources that lost a member last round. Resources whose
		// members all froze leave the live list: a weight is strictly
		// positive, so sumW == 0 exactly when no unfrozen member is
		// left, and such a resource can never constrain theta or
		// freeze anything again.
		theta := math.Inf(1)
		live := a.liveRes[:0]
		for _, ri := range a.liveRes {
			if a.dirty[ri] {
				sum := 0.0
				for _, fi := range a.members[ri] {
					if !a.frozen[fi] {
						sum += a.weights[fi]
					}
				}
				a.sumW[ri] = sum
				a.dirty[ri] = false
			}
			if a.sumW[ri] > 0 {
				live = append(live, ri)
				if t := a.avail[ri] / a.sumW[ri]; t < theta {
					theta = t
				}
			}
		}
		a.liveRes = live
		if math.IsInf(theta, 1) {
			break
		}
		if theta < 0 {
			theta = 0
		}
		// Raise the water level for the (compacted) unfrozen flows.
		for _, fi := range a.active {
			inc := theta * a.weights[fi]
			a.rates[fi] += inc
			for _, ri := range a.flowRes[fi] {
				a.avail[ri] -= inc
			}
		}
		// Freeze flows on exhausted resources.
		frozeAny := false
		for _, ri := range a.liveRes {
			if a.avail[ri] > a.availMin[ri] {
				continue
			}
			for _, fi := range a.members[ri] {
				if !a.frozen[fi] {
					a.frozen[fi] = true
					remaining--
					frozeAny = true
					for _, r2 := range a.flowRes[fi] {
						a.dirty[r2] = true
					}
				}
			}
		}
		if !frozeAny {
			// Numerical stall: freeze everything to guarantee progress.
			for _, fi := range a.active {
				if !a.frozen[fi] {
					a.frozen[fi] = true
					remaining--
				}
			}
		}
		unfrozen := a.active[:0]
		for _, fi := range a.active {
			if !a.frozen[fi] {
				unfrozen = append(unfrozen, fi)
			}
		}
		a.active = unfrozen
	}
	for fi, f := range order {
		f.rate = a.rates[fi]
	}

	// Retransmission rates: attribute overload pressure at each VM
	// resource to that VM, proportional to how much demand (per-flow
	// caps) exceeds effective capacity.
	for _, v := range s.vms {
		v.lastRetrans = 0
	}
	for ri := 0; ri < a.nRes; ri++ {
		if a.kind[ri] != resEgress && a.kind[ri] != resIngress {
			continue
		}
		demand := 0.0
		conns := 0
		for _, fi := range a.members[ri] {
			demand += a.resCap[a.flowRes[fi][2]] // the flow's own cap resource
			conns += order[fi].conns
		}
		if a.resCap[ri] <= 0 {
			continue
		}
		pressure := demand/a.resCap[ri] - 1
		if pressure > 0 {
			s.vms[a.resVM[ri]].lastRetrans += 2.0 * pressure * float64(conns)
		}
	}
}

// memFactor degrades per-connection throughput when the receiver runs
// out of buffer headroom (the paper's observation that "each connection
// requires a memory buffer, affecting runtime BW" [17]).
func memFactor(memUtil float64) float64 {
	if memUtil <= 0.85 {
		return 1
	}
	f := 1 - (memUtil-0.85)*2.5
	return math.Max(0.4, f)
}

// cpuFactor degrades sending rate under CPU pressure (sender-limited
// TCP; feature Ci of Table 3 exists because of this coupling).
func cpuFactor(cpuLoad float64) float64 {
	return 1 - 0.25*cpuLoad*cpuLoad
}
