package netsim

import (
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/substrate"
)

// benchChurnSim builds an 8-DC cluster saturated with nFlows probes
// spread round-robin across all ordered DC pairs — the shape of the
// paper's Fig. 5-10 shuffle phases.
func benchChurnSim(nFlows int) (*Sim, []*Flow) {
	cfg := UniformCluster(geo.TestbedSubset(8), substrate.T2Medium, 99)
	cfg.Frozen = true
	s := NewSim(cfg)
	var pairs [][2]int
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	flows := make([]*Flow, nFlows)
	for k := range flows {
		p := pairs[k%len(pairs)]
		flows[k] = s.startProbe(s.FirstVMOfDC(p[0]), s.FirstVMOfDC(p[1]), k%7+1)
	}
	s.ensureAllocated()
	return s, flows
}

// BenchmarkAllocatorChurn measures one allocator recomputation per
// start/finish churn event with 336 concurrent flows — the netsim hot
// path (Figs. 5-10 spawn hundreds of concurrent shuffle flows). The
// "fromscratch" variant runs the original allocator
// (allocateReference); "incremental" runs the production path. The
// ratio is the PR's headline speedup (target >= 5x).
func BenchmarkAllocatorChurn(b *testing.B) {
	const nFlows = 336
	bench := func(b *testing.B, incremental bool) {
		s, flows := benchChurnSim(nFlows)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			// Churn: the oldest flow finishes, a replacement starts.
			k := n % nFlows
			old := flows[k]
			src, dst := old.Src(), old.Dst()
			old.Stop()
			flows[k] = s.startProbe(src, dst, n%7+1)
			if incremental {
				s.ensureAllocated()
			} else {
				s.allocateReference()
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { bench(b, true) })
	b.Run("fromscratch", func(b *testing.B) { bench(b, false) })
}

// BenchmarkAllocatorSteadyState measures a bare recomputation with no
// churn (e.g. a fluctuation tick): the same flow set reallocated.
func BenchmarkAllocatorSteadyState(b *testing.B) {
	s, _ := benchChurnSim(224)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.invalidate()
		s.ensureAllocated()
	}
}

// BenchmarkTimerHeap measures a push/pop cycle on a 512-deep timer
// heap — the event loop's core data structure, hand-rolled to avoid
// the per-event boxing of the old container/heap implementation.
func BenchmarkTimerHeap(b *testing.B) {
	var h timerHeap
	fn := func(float64) {}
	for i := 0; i < 512; i++ {
		h.push(timerEvent{at: float64(i % 97), seq: int64(i), fn: fn})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h.push(timerEvent{at: float64(n % 89), seq: int64(n + 512), fn: fn})
		h.pop()
	}
}

// BenchmarkTimerLoop measures the full event loop driving 64 recurring
// timers through one simulated second per iteration.
func BenchmarkTimerLoop(b *testing.B) {
	s := frozenSim(2, 1)
	for i := 0; i < 64; i++ {
		s.Every(0.05+0.01*float64(i%10), func(float64) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.RunFor(1)
	}
}
