package netsim

import (
	"slices"
	"time"

	"github.com/wanify/wanify/internal/substrate"
)

// Scale-tiered allocator timing on synthetic fleet topologies
// (geo.Fleet via FleetCluster). Where ChurnNsPerOp measures the
// incremental path's scoped-invalidation win at paper scale, these
// timers measure what sharding itself buys when the flow set
// decomposes into many independent bottleneck groups: the cost of a
// full refill (every group dirty) under the production allocator
// against the pre-sharding formulation — one global filling loop over
// all flows, which answers the same allocation (to float rounding;
// independent components never constrain each other's theta) but pays
// every filling round on the whole flow set instead of per group.
//
// cmd/wanify-bench records one FleetAllocStats per tier (10/100/500
// DCs by default) into BENCH_netsim.json as the fleet_alloc_* keys,
// and the CI guard gates on the sharded/unsharded ratio per tier.

// FleetAllocStats is one scale tier's allocator timing.
type FleetAllocStats struct {
	// DCs and VMsPerDC describe the FleetCluster the tier ran on;
	// Flows and Groups the steady-state traffic it timed (Groups is
	// the bottleneck-group count the sharded allocator decomposed the
	// flow set into).
	DCs, VMsPerDC, Flows, Groups int
	// NsPerFlow is the production sharded allocator's cost per flow
	// for a full refill (all groups dirty), at the FleetCluster
	// default worker count.
	NsPerFlow float64
	// SequentialNsPerFlow is the same full refill at Workers=0. The
	// NsPerFlow/SequentialNsPerFlow ratio is the parallel speedup;
	// on a single-core runner it sits at or slightly below 1.
	SequentialNsPerFlow float64
	// UnshardedNsPerFlow is the pre-sharding algorithm: one global
	// progressive-filling pass over the whole flow set (same rates to
	// float rounding, no group decomposition), timed via the reference
	// filler with all flows as a single group.
	UnshardedNsPerFlow float64
}

// ParallelSpeedup is the sequential/parallel full-refill ratio (>1
// means the worker pool helped).
func (t FleetAllocStats) ParallelSpeedup() float64 {
	if t.NsPerFlow <= 0 {
		return 0
	}
	return t.SequentialNsPerFlow / t.NsPerFlow
}

// ShardedSpeedup is the unsharded/sharded full-refill ratio: how much
// cheaper the per-group formulation makes a full allocation at this
// tier. This is the number the 100-DC acceptance gate (>=2x) and the
// CI bench guard track.
func (t FleetAllocStats) ShardedSpeedup() float64 {
	if t.NsPerFlow <= 0 {
		return 0
	}
	return t.UnshardedNsPerFlow / t.NsPerFlow
}

// fleetBenchVMs is the per-DC VM count of the benchmark topology,
// matching the fleet experiment driver's cluster shape.
const fleetBenchVMs = 4

// fleetBenchSim builds a fleet tier with steady regional traffic:
// consecutive DC pairs exchange flows whose endpoints chain the pair's
// VMs into one component, so a 2k-DC tier decomposes into k bottleneck
// groups of 8 VMs / 8 flows each — the many-small-groups shape fleet
// workloads produce (regional shuffles, disjoint job footprints).
func fleetBenchSim(dcs, workers int) (*Sim, int) {
	cfg := FleetCluster(dcs, fleetBenchVMs, substrate.T2Medium, 7)
	cfg.Workers = workers
	s := NewSim(cfg)
	nFlows := 0
	for b := 0; b+1 < dcs; b += 2 {
		for v := 0; v < fleetBenchVMs; v++ {
			w := (v + 1) % fleetBenchVMs
			s.startProbe(s.vmsOfDC[b][v], s.vmsOfDC[b+1][w], v%7+1)
			s.startProbe(s.vmsOfDC[b+1][v], s.vmsOfDC[b][w], (v+3)%7+1)
			nFlows += 2
		}
	}
	s.ensureAllocated()
	return s, nFlows
}

// FleetAllocNsPerFlow times full rate allocations on one fleet tier:
// the production sharded path at the FleetCluster default worker count
// and at Workers=0, plus the unsharded global filling baseline, each
// averaged over rounds full refills and normalized per flow.
func FleetAllocNsPerFlow(dcs, rounds int) FleetAllocStats {
	if rounds < 1 {
		rounds = 1
	}
	out := FleetAllocStats{DCs: dcs, VMsPerDC: fleetBenchVMs}

	refill := func(workers int) (nsPerFlow float64) {
		s, nFlows := fleetBenchSim(dcs, workers)
		out.Flows = nFlows
		start := time.Now()
		for r := 0; r < rounds; r++ {
			s.invalidate()
			s.ensureAllocated()
		}
		out.Groups, _ = s.AllocGroups()
		return float64(time.Since(start).Nanoseconds()) / float64(rounds) / float64(nFlows)
	}
	out.NsPerFlow = refill(FleetCluster(dcs, fleetBenchVMs, substrate.T2Medium, 7).Workers)
	out.SequentialNsPerFlow = refill(0)

	// Unsharded baseline: the reference filler over all flows as one
	// group — the global round loop the allocator ran before sharding.
	// Rates come out the same to float rounding (independent
	// components never constrain each other's theta), but every
	// filling round walks the entire flow set.
	s, nFlows := fleetBenchSim(dcs, 0)
	order := make([]*Flow, len(s.flows))
	copy(order, s.flows)
	slices.SortFunc(order, func(x, y *Flow) int { return int(x.id - y.id) })
	congFactor := make([]float64, len(s.vms))
	totalConns := make([]int, len(s.vms))
	for _, f := range order {
		totalConns[f.src] += f.conns
		totalConns[f.dst] += f.conns
	}
	for i := range s.vms {
		over := float64(totalConns[i] - s.cfg.CongestionKnee)
		if over < 0 {
			over = 0
		}
		congFactor[i] = 1 / (1 + s.cfg.CongestionSlope*over)
	}
	members := make([]int, nFlows)
	for i := range members {
		members[i] = i
	}
	rates := make([]float64, nFlows)
	retrans := make([]float64, len(s.vms))
	// The unsharded pass costs O(flows) per filling round with rounds
	// proportional to the resource count, so a handful of repetitions
	// is enough for a stable per-flow figure.
	unRounds := max(1, rounds/10)
	start := time.Now()
	for r := 0; r < unRounds; r++ {
		clear(rates)
		clear(retrans)
		s.refFillGroup(order, members, congFactor, rates, retrans)
	}
	out.UnshardedNsPerFlow = float64(time.Since(start).Nanoseconds()) / float64(unRounds) / float64(nFlows)
	return out
}
