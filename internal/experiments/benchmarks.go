package experiments

import (
	"time"

	"github.com/wanify/wanify/internal/substrate"
)

// AllocatorChurnNsPerOp measures the substrate's allocator hot path —
// one rate recomputation per flow start/finish churn event with 336
// concurrent flows on the testbed (8 DCs, or the backend's full size
// when a trace records fewer) — through the public Cluster API,
// mirroring netsim's in-package churn loop (netsim.ChurnNsPerOp).
// cmd/wanify-bench records one entry per trace backend so every
// substrate's perf trajectory is tracked alongside netsim's.
func AllocatorChurnNsPerOp(b Backend, rounds int) (float64, error) {
	const nFlows = 336
	n := b.NumDCs()
	if n > 8 {
		n = 8
	}
	c, err := testbedCluster(Params{Backend: b}, n, 99)
	if err != nil {
		return 0, err
	}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	flows := make([]substrate.Flow, nFlows)
	for k := range flows {
		p := pairs[k%len(pairs)]
		flows[k] = c.StartProbe(c.FirstVMOfDC(p[0]), c.FirstVMOfDC(p[1]), k%7+1)
	}
	flows[0].Rate() // settle the initial allocation outside the timer

	start := time.Now()
	for n := 0; n < rounds; n++ {
		// Churn: the oldest flow finishes, a replacement starts, and
		// reading a rate forces the recomputation.
		k := n % nFlows
		old := flows[k]
		src, dst := old.Src(), old.Dst()
		old.Stop()
		flows[k] = c.StartProbe(src, dst, n%7+1)
		flows[k].Rate()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds), nil
}
