package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// --- Fig. 10: heterogeneous (skewed) data distribution ---

// Fig10Row is one variant of the skew experiment.
type Fig10Row struct {
	Variant string
	System  string
	JCT     float64
	Cost    float64
	MinBW   float64
}

// Fig10Result compares skew handling on WordCount (600 MB, blocks
// concentrated on 4 DCs).
type Fig10Result struct{ Rows []Fig10Row }

// Fig10 runs the §5.8.1 experiment: WordCount with skewed input under
// {single-connection, uniform-parallel, WANify-without-skew-weights,
// WANify-with-skew-weights} for Tetrium and Kimchi.
func Fig10(p Params) (*Fig10Result, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	// 600 MB moved toward US East, US West, AP South, AP SE (§5.8.1),
	// 64 MB HDFS blocks -> ~9 blocks on the 4 hot DCs. The input is
	// scaled 4x relative to the paper: our engine has none of Spark's
	// per-task launch overheads, so the raw 600 MB job would finish
	// before the first 5-second AIMD epoch ever fires; the scaling
	// restores the multi-epoch duration the paper's runs had.
	input := workloads.SkewedInput(8, 4*600e6, []int{0, 1, 2, 3}, 0.95)
	shuffle := 4 * 600e6 // all-distinct words: intermediate ~= input (§5.1)
	job := workloads.WordCount(input, shuffle)
	ws := workloads.SkewWeights(input)

	res := &Fig10Result{}
	for _, system := range []string{"tetrium", "kimchi"} {
		run := func(variant string, policyFor func(sim substrate.Cluster, fw *wanify.Framework) spark.ConnPolicy, skew []float64) error {
			sim, err := testbedCluster(p, 8, p.Seed)
			if err != nil {
				return err
			}
			fw, err := wanify.New(wanify.Config{
				Cluster: sim, Rates: rates, Seed: p.Seed,
				Agent: agent.Config{Throttle: true},
			}, model)
			if err != nil {
				return err
			}
			sim.RunUntil(queryStart - 1)
			pred, _ := fw.DetermineRuntimeBW()
			plan := fw.Optimize(pred, wanify.OptimizeOptions{SkewWeights: skew})
			policy := policyFor(sim, fw)
			if policy == nil { // agent-managed variants
				fw.DeployAgents(pred, plan)
				defer fw.StopAgents()
				policy = fw.ConnPolicy()
			}
			eng := spark.NewEngine(sim, rates)
			info := gda.NewClusterInfo(sim, rates)
			sched := schedFor(system, fmt.Sprintf("%s(%s)", system, variant), pred, info)
			r, err := eng.RunJob(job, sched, policy)
			if err != nil {
				return err
			}
			res.Rows = append(res.Rows, Fig10Row{
				Variant: variant, System: system,
				JCT: r.JCTSeconds, Cost: r.Cost.Total(), MinBW: r.MinShuffleMbps,
			})
			return nil
		}
		if err := run("single", func(substrate.Cluster, *wanify.Framework) spark.ConnPolicy { return spark.SingleConn{} }, nil); err != nil {
			return nil, err
		}
		if err := run("uniform-p", func(substrate.Cluster, *wanify.Framework) spark.ConnPolicy { return spark.UniformConn{K: 8} }, nil); err != nil {
			return nil, err
		}
		if err := run("wanify-wns", func(substrate.Cluster, *wanify.Framework) spark.ConnPolicy { return nil }, nil); err != nil {
			return nil, err
		}
		if err := run("wanify-w", func(substrate.Cluster, *wanify.Framework) spark.ConnPolicy { return nil }, ws); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the skew comparison.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 10: skewed inputs (WordCount 600 MB, 4 hot DCs)\n")
	fmt.Fprintf(&b, "%-12s%-10s%12s%12s%14s\n", "variant", "system", "JCT(s)", "cost($)", "min BW(Mbps)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s%-10s%12.1f%12.3f%14.0f\n", row.Variant, row.System, row.JCT, row.Cost, row.MinBW)
	}
	b.WriteString("(paper: Tetrium-W latency -26.5/-20.3/-7.1% vs Tetrium/-P/-WNS; 1.2-2.1x min BW)\n")
	return b.String()
}

// --- Fig. 11(a): accuracy across cluster sizes ---

// Fig11aRow is one cluster size's significant-difference counts.
type Fig11aRow struct {
	N            int
	StaticSig    int
	PredictedSig int
	OrderedPairs int
}

// Fig11aResult compares static vs predicted accuracy per cluster size.
type Fig11aResult struct{ Rows []Fig11aRow }

// Fig11a measures, for clusters of 4..8 DCs, how many pairwise BWs
// differ significantly (>100 Mbps) from the actual runtime values under
// (1) static-independent measurement and (2) WANify prediction.
func Fig11a(p Params) (*Fig11aResult, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	res := &Fig11aResult{}
	for _, n := range []int{4, 5, 6, 7, 8} {
		sim, err := testbedCluster(p, n, p.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		static, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
		sim.RunUntil(queryStart - 21)
		feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(p.Seed, "fig11a"))
		predicted := model.PredictMatrix(feats)
		actual, _ := measure.StaticSimultaneous(sim, measure.StableOptions())

		res.Rows = append(res.Rows, Fig11aRow{
			N:            n,
			StaticSig:    static.AbsDiff(actual).CountOffDiagAbove(100),
			PredictedSig: predicted.AbsDiff(actual).CountOffDiagAbove(100),
			OrderedPairs: n * (n - 1),
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *Fig11aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 11(a): significant (>100 Mbps) differences from actual runtime BWs\n")
	fmt.Fprintf(&b, "%-8s%10s%14s%16s\n", "DCs", "pairs", "static sig", "predicted sig")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d%10d%14d%16d\n", row.N, row.OrderedPairs, row.StaticSig, row.PredictedSig)
	}
	b.WriteString("(paper: predicted beats static for every cluster size)\n")
	return b.String()
}

// --- Fig. 11(b): heterogeneous numbers of VMs ---

// Fig11bRow is one extra-VM configuration.
type Fig11bRow struct {
	ExtraVMs     int
	StaticSig    int
	PredictedSig int
}

// Fig11bResult compares accuracy under non-uniform VM deployments.
type Fig11bResult struct{ Rows []Fig11bRow }

// Fig11b adds 1–5 extra VMs to 3 fixed DCs and repeats the Fig. 11(a)
// comparison, using VM-level association (§3.3.3): per-VM-pair
// predictions summed per DC pair.
func Fig11b(p Params) (*Fig11bResult, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	res := &Fig11bResult{}
	augmented := []int{1, 3, 6} // US West, AP SE, EU West get the extra VMs
	for extra := 1; extra <= 5; extra++ {
		regions := geo.Testbed()
		vms := make([][]substrate.VMSpec, len(regions))
		for i := range vms {
			vms[i] = []substrate.VMSpec{substrate.T2Medium}
		}
		for _, dc := range augmented {
			for k := 0; k < extra; k++ {
				vms[dc] = append(vms[dc], substrate.T2Medium)
			}
		}
		sim := netsim.NewSim(netsim.Config{Regions: regions, VMs: vms, Seed: p.Seed + uint64(extra)})

		static, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 6, Conns: 1})
		sim.RunUntil(queryStart + 200) // independent probing takes longer here
		featsVM, _ := dataset.SnapshotFeaturesByVM(sim, simrand.Derive(p.Seed, "fig11b"))
		dcOf := make([]int, sim.NumVMs())
		for v := range dcOf {
			dcOf[v] = sim.DCOf(netsim.VMID(v))
		}
		predicted := model.PredictDCMatrixByVM(featsVM, dcOf, sim.NumDCs())
		actual, _ := measure.StaticSimultaneous(sim, measure.StableOptions())

		res.Rows = append(res.Rows, Fig11bRow{
			ExtraVMs:     extra,
			StaticSig:    static.AbsDiff(actual).CountOffDiagAbove(100),
			PredictedSig: predicted.AbsDiff(actual).CountOffDiagAbove(100),
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *Fig11bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 11(b): accuracy with 1-5 extra VMs at 3 DCs (association)\n")
	fmt.Fprintf(&b, "%-10s%14s%16s\n", "extraVMs", "static sig", "predicted sig")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d%14d%16d\n", row.ExtraVMs, row.StaticSig, row.PredictedSig)
	}
	b.WriteString("(paper: predicted BW significantly closer to runtime than static)\n")
	return b.String()
}

// --- §5.8.3: heterogeneous compute in GDA ---

// Sec583Result compares vanilla Tetrium, Tetrium on predicted BWs
// (Tetrium-r) and full WANify-enabled Tetrium with an extra worker in
// US East.
type Sec583Result struct {
	VanillaJCT, TetriumRJCT, WANifyJCT       float64
	VanillaCost, TetriumRCost, WANifyCost    float64
	VanillaMinBW, TetriumRMinBW, WANifyMinBW float64
}

// Sec583 runs TPC-DS query 78 with an extra t2.medium in US East.
func Sec583(p Params) (*Sec583Result, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	input := workloads.UniformInput(8, 100e9*p.Scale)
	job, err := workloads.TPCDS(78, input)
	if err != nil {
		return nil, err
	}

	newSim := func() *netsim.Sim {
		regions := geo.Testbed()
		vms := make([][]substrate.VMSpec, len(regions))
		for i := range vms {
			vms[i] = []substrate.VMSpec{substrate.T2Medium}
		}
		vms[0] = append(vms[0], substrate.T2Medium) // extra worker in US East
		return netsim.NewSim(netsim.Config{Regions: regions, VMs: vms, Seed: p.Seed + 583})
	}

	res := &Sec583Result{}

	{ // vanilla: static-independent, single connection
		sim := newSim()
		believed, err := obtainBelief(sim, beliefStaticIndependent, model, p.Seed)
		if err != nil {
			return nil, err
		}
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(vanilla)", Believed: believed, Info: gda.NewClusterInfo(sim, rates)}
		run, err := eng.RunJob(job, sched, spark.SingleConn{})
		if err != nil {
			return nil, err
		}
		res.VanillaJCT, res.VanillaCost, res.VanillaMinBW = run.JCTSeconds, run.Cost.Total(), run.MinShuffleMbps
	}
	{ // Tetrium-r: predicted BWs (VM-level association), single connection
		sim := newSim()
		sim.RunUntil(queryStart - 1)
		featsVM, _ := dataset.SnapshotFeaturesByVM(sim, simrand.Derive(p.Seed, "sec583"))
		dcOf := make([]int, sim.NumVMs())
		for v := range dcOf {
			dcOf[v] = sim.DCOf(netsim.VMID(v))
		}
		pred := model.PredictDCMatrixByVM(featsVM, dcOf, sim.NumDCs())
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium-r", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		run, err := eng.RunJob(job, sched, spark.SingleConn{})
		if err != nil {
			return nil, err
		}
		res.TetriumRJCT, res.TetriumRCost, res.TetriumRMinBW = run.JCTSeconds, run.Cost.Total(), run.MinShuffleMbps
	}
	{ // full WANify: predicted + agents + throttling
		sim := newSim()
		fw, err := wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: p.Seed,
			Agent: agent.Config{Throttle: true},
		}, model)
		if err != nil {
			return nil, err
		}
		sim.RunUntil(queryStart - 1)
		pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
		defer fw.StopAgents()
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		run, err := eng.RunJob(job, sched, policy)
		if err != nil {
			return nil, err
		}
		res.WANifyJCT, res.WANifyCost, res.WANifyMinBW = run.JCTSeconds, run.Cost.Total(), run.MinShuffleMbps
	}
	return res, nil
}

// String renders the §5.8.3 comparison.
func (r *Sec583Result) String() string {
	var b strings.Builder
	b.WriteString("Sec 5.8.3: heterogeneous compute (extra t2.medium in US East), TPC-DS q78\n")
	fmt.Fprintf(&b, "%-18s%12s%12s%14s\n", "variant", "JCT(s)", "cost($)", "min BW(Mbps)")
	fmt.Fprintf(&b, "%-18s%12.1f%12.3f%14.0f\n", "vanilla-tetrium", r.VanillaJCT, r.VanillaCost, r.VanillaMinBW)
	fmt.Fprintf(&b, "%-18s%12.1f%12.3f%14.0f\n", "tetrium-r", r.TetriumRJCT, r.TetriumRCost, r.TetriumRMinBW)
	fmt.Fprintf(&b, "%-18s%12.1f%12.3f%14.0f\n", "wanify-tetrium", r.WANifyJCT, r.WANifyCost, r.WANifyMinBW)
	fmt.Fprintf(&b, "tetrium-r: %.1f%% latency, %.1f%% cost vs vanilla (paper: 5%%/1%%, 1.2x min BW)\n",
		pct(r.VanillaJCT, r.TetriumRJCT), pct(r.VanillaCost, r.TetriumRCost))
	fmt.Fprintf(&b, "wanify:    %.1f%% latency, %.1f%% cost vs vanilla (paper: 15%%/7.4%%, 2x min BW)\n",
		pct(r.VanillaJCT, r.WANifyJCT), pct(r.VanillaCost, r.WANifyCost))
	return b.String()
}
