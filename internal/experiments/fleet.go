package experiments

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// --- fleet: staggered multi-job shuffle at fleet scale ---
//
// Every paper-scale driver runs ≤8 DCs; this one runs the synthetic
// 100-DC fleet (geo.Fleet via netsim.FleetCluster) to exercise the
// machinery the scale tier introduces end to end: regional jobs whose
// disjoint footprints decompose the live flow set into many
// independent bottleneck groups (sharded water-filling), sparse
// layouts over a 100-wide cluster (gda's nzRows fast paths), and
// staggered starts so the group population churns as jobs enter and
// drain. The driver is model-free — schedulers plan from the oracle
// belief, like chaos — so a run costs no training at any cluster size.

func init() {
	Registry["fleet"] = func(p Params) (Result, error) { return Fleet(p) }
}

// Fleet cluster and workload shape. Jobs are regional: each TeraSort's
// input lives on fleetJobDCs consecutive DCs (consecutive fleet ids
// share a metro/continent), with footprints spread across the fleet
// and starts staggered so early jobs are mid-shuffle when later ones
// arrive.
const (
	fleetDCs      = 100
	fleetVMsPerDC = 4
	fleetJobs     = 6
	fleetJobDCs   = 6
	fleetStaggerS = 6.0
	fleetStart    = 30.0
	fleetJobGB    = 150.0 // per-job input at scale 1.0
)

// fleetRegionalSched confines a job to its regional subcluster: the
// inner scheduler plans over the whole fleet, and the wrapper masks
// the placement down to the job's DC quota (renormalizing; uniform
// over the region if the inner placement put everything elsewhere) —
// the per-job capacity quota a shared fleet enforces in practice.
// Without the quota a compute-heavy stage spreads over all 100 DCs
// and every job's shuffle becomes a fleet-wide all-to-all: ~40k
// concurrent flows in one bottleneck group, which is neither how
// fleets are operated nor a feasible golden.
type fleetRegionalSched struct {
	inner   spark.Scheduler
	allowed []bool
}

func (s fleetRegionalSched) Name() string { return s.inner.Name() + "@region" }

func (s fleetRegionalSched) Place(stage int, st spark.Stage, layout []float64) spark.Placement {
	p := s.inner.Place(stage, st, layout)
	total := 0.0
	for i := range p {
		if !s.allowed[i] {
			p[i] = 0
		}
		total += p[i]
	}
	if total <= 0 {
		for i := range p {
			if s.allowed[i] {
				p[i] = 1
			}
		}
	}
	return p.Normalize()
}

// FleetJobRow is one regional job's outcome.
type FleetJobRow struct {
	Name       string
	FirstDC    int // start of the job's input footprint
	StartS     float64
	JCTSeconds float64
	WANBytes   float64
	OutputB    float64
}

// FleetResult is the fleet driver's rendered outcome: per-job rows
// plus the allocator-shape telemetry the scale tier is about.
type FleetResult struct {
	Scenario   string
	Rows       []FleetJobRow
	MakespanS  float64
	PeakGroups int // most bottleneck groups one allocation decomposed into
	PeakFlows  int // most concurrent flows observed
}

// String renders the job table and allocator shape.
func (r *FleetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet-scale multi-job shuffle on %s\n", r.Scenario)
	fmt.Fprintf(&b, "%-10s%8s%10s%10s%10s%12s\n", "job", "DCs", "start(s)", "JCT(s)", "WAN(GB)", "output(GB)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s%3d-%-4d%10.0f%10.1f%10.2f%12.2f\n",
			row.Name, row.FirstDC, row.FirstDC+fleetJobDCs-1, row.StartS,
			row.JCTSeconds, row.WANBytes/1e9, row.OutputB/1e9)
	}
	fmt.Fprintf(&b, "makespan %.1fs; allocator peak: %d bottleneck groups, %d concurrent flows\n",
		r.MakespanS, r.PeakGroups, r.PeakFlows)
	return b.String()
}

// Fleet runs the staggered regional TeraSorts concurrently over one
// 100-DC fleet cluster and reports per-job outcomes plus the peak
// allocator decomposition. Deterministic in (seed, scale).
func Fleet(p Params) (*FleetResult, error) {
	p = p.withDefaults()
	sim := netsim.NewSim(netsim.FleetCluster(fleetDCs, fleetVMsPerDC, substrate.T2Medium, p.Seed))
	sim.RunUntil(fleetStart)

	believed := oracleBelief(sim)
	info := gda.NewClusterInfo(sim, rates)
	eng := spark.NewEngine(sim, rates)

	var runs []spark.JobRun
	stride := fleetDCs / fleetJobs
	for j := 0; j < fleetJobs; j++ {
		first := j * stride
		hot := make([]int, fleetJobDCs)
		for k := range hot {
			hot[k] = first + k
		}
		allowed := make([]bool, fleetDCs)
		for _, dc := range hot {
			allowed[dc] = true
		}
		job := workloads.TeraSort(workloads.SkewedInput(fleetDCs, fleetJobGB*1e9*p.Scale, hot, 1.0))
		job.Name = fmt.Sprintf("sort-%d", j)
		runs = append(runs, spark.JobRun{
			Job: job,
			Sched: fleetRegionalSched{
				inner:   gda.Tetrium{Label: "tetrium(oracle)", Believed: believed, Info: info},
				allowed: allowed,
			},
			Policy:      spark.UniformConn{K: 4},
			StartDelayS: float64(j) * fleetStaggerS,
		})
	}

	// Sample the allocator shape while the set runs: the probe
	// reschedules itself on the substrate clock every simulated
	// second, fine enough to catch the staggered transfer phases
	// while they overlap.
	res := &FleetResult{
		Scenario: fmt.Sprintf("netsim %d-DC fleet, %d VMs/DC, %d staggered regional terasorts",
			fleetDCs, fleetVMsPerDC, fleetJobs),
	}
	var probe func(now float64)
	probe = func(now float64) {
		if g, _ := sim.AllocGroups(); g > res.PeakGroups {
			res.PeakGroups = g
		}
		if f := sim.ActiveFlows(); f > res.PeakFlows {
			res.PeakFlows = f
		}
		sim.After(1, probe)
	}
	sim.After(1, probe)

	set, err := eng.RunJobSet(runs)
	if err != nil {
		return nil, err
	}
	res.MakespanS = set.MakespanS
	for j, rr := range set.Results {
		res.Rows = append(res.Rows, FleetJobRow{
			Name:       rr.Job,
			FirstDC:    j * stride,
			StartS:     runs[j].StartDelayS,
			JCTSeconds: rr.JCTSeconds,
			WANBytes:   rr.WANBytes,
			OutputB:    rr.OutputBytes,
		})
	}
	return res, nil
}
