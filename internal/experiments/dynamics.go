package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/stats"
	"github.com/wanify/wanify/internal/workloads"
)

// --- Fig. 9: handling dynamics (AIMD tracking) ---

// Fig9Epoch is one local-optimizer epoch of the US East agent.
type Fig9Epoch struct {
	Now         float64
	TargetSD    float64 // SD of target BWs across destinations
	ActualSD    float64 // SD of ifTop-monitored BWs across destinations
	ErrTargetSD float64 // SD with 20% random error injected
	SigDelta    bool    // |err target − actual| > 100 Mbps on some link
}

// Fig9Result holds the epoch series and the significant-delta count of
// the 20%-error variant.
type Fig9Result struct {
	Epochs           []Fig9Epoch
	SigDeltasWithErr int
	MeanAbsSDGap     float64 // |targetSD − actualSD| averaged over epochs
}

// Fig9 runs WANify-enabled Tetrium on query 78 and tracks, per 5-second
// AIMD epoch, the standard deviation of the US East agent's target BWs
// versus the SD of the actual monitored rates, plus a 20%-error variant
// (Fig. 9(b)).
func Fig9(p Params) (*Fig9Result, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	input := workloads.UniformInput(8, 100e9*p.Scale)
	job, err := workloads.TPCDS(78, input)
	if err != nil {
		return nil, err
	}

	sim, err := testbedCluster(p, 8, p.Seed)
	if err != nil {
		return nil, err
	}
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: true},
	}, model)
	if err != nil {
		return nil, err
	}
	sim.RunUntil(queryStart - 1)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()

	// ifTop-equivalent monitor on US East (DC 0), sampled every second
	// over 5-second windows to match the agent epochs.
	mon := measure.NewMonitor(sim, 0, 1.0, 5)
	defer mon.Close()

	// Record actual rates at each agent epoch by sampling the monitor
	// on the same cadence.
	var actualSDs []float64
	cancel := sim.Every(5.0, func(now float64) {
		rts := mon.Rates()
		var nonzero []float64
		for d, r := range rts {
			if d != 0 {
				nonzero = append(nonzero, r)
			}
		}
		actualSDs = append(actualSDs, stats.StdDev(nonzero))
	})
	defer cancel()

	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: info}
	if _, err := eng.RunJob(job, sched, policy); err != nil {
		return nil, err
	}

	// Pull the US East agent's history.
	var east *agent.Agent
	for _, a := range fw.Agents() {
		if a.DC() == 0 {
			east = a
			break
		}
	}
	if east == nil {
		return nil, fmt.Errorf("fig9: no US East agent")
	}
	hist := east.History()
	rng := simrand.Derive(p.Seed, "fig9-20pct")
	res := &Fig9Result{}
	for i, rec := range hist {
		var targets, errTargets []float64
		sig := false
		for d, t := range rec.TargetBW {
			if d == 0 {
				continue
			}
			targets = append(targets, t)
			et := t * rng.Uniform(0.8, 1.2) // 20% random error
			errTargets = append(errTargets, et)
			if d < len(rec.Monitored) && rec.Monitored[d] > 0 {
				if diff := et - rec.Monitored[d]; diff > 100 || diff < -100 {
					sig = true
				}
			}
		}
		ep := Fig9Epoch{
			Now:         rec.Now,
			TargetSD:    stats.StdDev(targets),
			ErrTargetSD: stats.StdDev(errTargets),
			SigDelta:    sig,
		}
		if i < len(actualSDs) {
			ep.ActualSD = actualSDs[i]
		}
		res.Epochs = append(res.Epochs, ep)
		if sig {
			res.SigDeltasWithErr++
		}
		res.MeanAbsSDGap += abs(ep.TargetSD - ep.ActualSD)
	}
	if len(res.Epochs) > 0 {
		res.MeanAbsSDGap /= float64(len(res.Epochs))
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String renders the epoch series.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 9: SD of local-optimizer target BWs vs monitored BWs (US East), 5s epochs\n")
	fmt.Fprintf(&b, "%-8s%14s%14s%16s%6s\n", "epoch", "targetSD", "actualSD", "20%%-err SD", "sig")
	for i, ep := range r.Epochs {
		mark := ""
		if ep.SigDelta {
			mark = "|"
		}
		fmt.Fprintf(&b, "%-8d%14.1f%14.1f%16.1f%6s\n", i, ep.TargetSD, ep.ActualSD, ep.ErrTargetSD, mark)
	}
	fmt.Fprintf(&b, "epochs=%d, significant (>100 Mbps) deltas with 20%% error: %d (paper: 6 verticals)\n",
		len(r.Epochs), r.SigDeltasWithErr)
	fmt.Fprintf(&b, "mean |targetSD - actualSD| = %.1f Mbps (close tracking = accurate modelling)\n", r.MeanAbsSDGap)
	return b.String()
}
