package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// pdtVariant names the §5.3 connection strategies.
type pdtVariant string

const (
	variantVanilla  pdtVariant = "no-wan-aware"   // single connection, locality
	variantUniform  pdtVariant = "wanify-p"       // uniform 8 connections
	variantDynamic  pdtVariant = "wanify-dynamic" // heterogeneous + AIMD, no throttling
	variantThrottle pdtVariant = "wanify-tc"      // heterogeneous + AIMD + TC throttling
)

// pdtRun executes one job under one §5.3 variant on a fresh testbed
// sim, using locality scheduling throughout ("avoids WAN-aware GDA
// systems", §5.3).
func pdtRun(p Params, job func(n int) spark.Job, variant pdtVariant) (spark.RunResult, error) {
	model, err := sharedModel(p)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim, err := testbedCluster(p, 8, p.Seed)
	if err != nil {
		return spark.RunResult{}, err
	}
	var policy spark.ConnPolicy = spark.SingleConn{}
	var fw *wanify.Framework

	switch variant {
	case variantVanilla:
		sim.RunUntil(queryStart)
	case variantUniform:
		sim.RunUntil(queryStart)
		policy = spark.UniformConn{K: 8}
	case variantDynamic, variantThrottle:
		fw, err = wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: p.Seed,
			Agent: agent.Config{Throttle: variant == variantThrottle},
		}, model)
		if err != nil {
			return spark.RunResult{}, err
		}
		sim.RunUntil(queryStart - 1)
		_, pol, _ := fw.Enable(wanify.OptimizeOptions{})
		policy = pol
		defer fw.StopAgents()
	}

	eng := spark.NewEngine(sim, rates)
	return eng.RunJob(job(sim.NumDCs()), gda.Locality{}, policy)
}

// --- Fig. 5: comparing data transfer approaches on TeraSort ---

// Fig5Row is one variant's outcome.
type Fig5Row struct {
	Variant   pdtVariant
	JCTMin    float64
	CostUSD   float64
	MinBWMbps float64
}

// Fig5Result compares the §5.3.1 approaches.
type Fig5Result struct {
	Rows    []Fig5Row
	InputGB float64
}

// Fig5 runs TeraSort under the four §5.3.1 variants.
func Fig5(p Params) (*Fig5Result, error) {
	p = p.withDefaults()
	inputBytes := 100e9 * p.Scale
	job := func(n int) spark.Job {
		return workloads.TeraSort(workloads.UniformInput(n, inputBytes))
	}
	res := &Fig5Result{InputGB: inputBytes / 1e9}
	for _, v := range []pdtVariant{variantVanilla, variantUniform, variantDynamic, variantThrottle} {
		run, err := pdtRun(p, job, v)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", v, err)
		}
		res.Rows = append(res.Rows, Fig5Row{
			Variant:   v,
			JCTMin:    run.JCTSeconds / 60,
			CostUSD:   run.Cost.Total(),
			MinBWMbps: run.MinShuffleMbps,
		})
	}
	return res, nil
}

// String renders Fig. 5's two panels as a table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: parallel data transfer approaches, TeraSort %.0f GB\n", r.InputGB)
	fmt.Fprintf(&b, "%-16s%12s%12s%14s\n", "variant", "latency(m)", "cost($)", "min BW(Mbps)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s%12.1f%12.2f%14.0f\n", row.Variant, row.JCTMin, row.CostUSD, row.MinBWMbps)
	}
	b.WriteString("(paper: WANify-TC best on all three; 61 min, $4.7, 790 Mbps min BW)\n")
	return b.String()
}

// --- Fig. 6: intermediate data sizes (WordCount) ---

// Fig6Row is one shuffle size's comparison.
type Fig6Row struct {
	ShuffleMB                 float64
	VanillaJCT, WANifyJCT     float64 // seconds
	VanillaCost, WANifyCost   float64
	VanillaMinBW, WANifyMinBW float64
}

// Fig6Result compares WANify-TC against vanilla Spark across
// intermediate data sizes.
type Fig6Result struct{ Rows []Fig6Row }

// Fig6 runs WordCount with controlled shuffle sizes (the paper's 2.06
// to ~30 MB range) under vanilla single-connection Spark and WANify-TC.
func Fig6(p Params) (*Fig6Result, error) {
	p = p.withDefaults()
	res := &Fig6Result{}
	// The paper controls per-pair intermediate data via all-distinct
	// WordCount inputs of 100..600 MB: shuffle ~= input, so an 8-DC
	// cluster (56 ordered pairs) sees ~input/56 per pair. The x-axis
	// values follow the paper's 2.06/3.63/7.4-and-beyond progression.
	for _, perPairMB := range []float64{2.06, 3.63, 7.4, 10.7} {
		shuffle := perPairMB * 56 * 1e6
		job := func(n int) spark.Job {
			input := workloads.UniformInput(n, shuffle)
			return workloads.WordCount(input, shuffle)
		}
		van, err := pdtRun(p, job, variantVanilla)
		if err != nil {
			return nil, err
		}
		wan, err := pdtRun(p, job, variantThrottle)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			ShuffleMB:    perPairMB,
			VanillaJCT:   van.JCTSeconds,
			WANifyJCT:    wan.JCTSeconds,
			VanillaCost:  van.Cost.Total(),
			WANifyCost:   wan.Cost.Total(),
			VanillaMinBW: van.MinShuffleMbps,
			WANifyMinBW:  wan.MinShuffleMbps,
		})
	}
	return res, nil
}

// String renders Fig. 6.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 6: efficacy against various shuffle sizes (WordCount)\n")
	fmt.Fprintf(&b, "%-14s%14s%14s%12s%12s%14s%14s\n",
		"perPair(MB)", "vanilla(s)", "wanify(s)", "van($)", "wan($)", "van minBW", "wan minBW")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12.2f%14.1f%14.1f%12.3f%12.3f%14.0f%14.0f\n",
			row.ShuffleMB, row.VanillaJCT, row.WANifyJCT,
			row.VanillaCost, row.WANifyCost, row.VanillaMinBW, row.WANifyMinBW)
	}
	b.WriteString("(paper: gains appear for shuffle > 7.4 MB; similar below)\n")
	return b.String()
}
