package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/tracesim"
	"github.com/wanify/wanify/internal/workloads"
)

// --- multijob / multijob-trace: concurrent jobs over one shared WAN ---
//
// The paper's motivating observation — achievable WAN bandwidth shifts
// at runtime because the WAN is shared infrastructure — is a multi-
// tenant story, yet every driver above runs exactly one job per
// cluster. These two drivers measure what happens when the tenants are
// our own jobs and WANify arbitrates among them:
//
//   - multijob runs three concurrent jobs (a TeraSort and two TPC-DS
//     queries, staggered starts) on the netsim 8-DC testbed and
//     compares: each job alone (zero-contention floor), all jobs
//     deployed with the WHOLE global window each (the naive
//     oversubscribed deployment every single-tenant system produces),
//     and the partitioned deployments (fair, priority,
//     bytes-remaining) where the per-pair windows split across jobs
//     (optimize.PartitionPlan) so their combined connection counts
//     respect the optimizer's congestion knee.
//   - multijob-trace replays the bundled cloud4 recording with two
//     concurrent jobs launched just before its 600–900 s US East ->
//     EU West congestion episode, and compares the fair-partitioned
//     deployment with and without the SHARED re-gauging controller
//     (one controller arbitrating for all jobs: rates aggregated
//     across jobs per pair, one re-gauge, per-job window swaps).

func init() {
	Registry["multijob"] = func(p Params) (Result, error) { return Multijob(p) }
	Registry["multijob-trace"] = func(p Params) (Result, error) { return MultijobTrace(p) }
}

// MultijobJobRow is one job's outcome under one sharing variant.
type MultijobJobRow struct {
	Job        string
	JCTSeconds float64
	MinBW      float64
	WANBytes   float64
}

// MultijobVariant is one compared deployment of the whole job set.
type MultijobVariant struct {
	Name      string
	MakespanS float64
	Rows      []MultijobJobRow
	// Replans / RegaugeBytes describe the shared controller (zero when
	// the variant runs without one).
	Replans      int
	RegaugeBytes float64
}

// MultijobResult compares sharing policies for a concurrent job set.
type MultijobResult struct {
	Scenario string
	Jobs     string
	Variants []MultijobVariant
}

// String renders the comparison.
func (r *MultijobResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-job WAN sharing on %s (%s)\n", r.Scenario, r.Jobs)
	fmt.Fprintf(&b, "%-14s%-12s%12s%14s%12s\n", "variant", "job", "JCT(s)", "minBW(Mbps)", "WAN(GB)")
	for _, v := range r.Variants {
		for _, row := range v.Rows {
			fmt.Fprintf(&b, "%-14s%-12s%12.1f%14.1f%12.2f\n",
				v.Name, row.Job, row.JCTSeconds, row.MinBW, row.WANBytes/1e9)
		}
		fmt.Fprintf(&b, "%-14s%-12s%12.1f", v.Name, "makespan", v.MakespanS)
		if v.Replans > 0 || v.RegaugeBytes > 0 {
			fmt.Fprintf(&b, "   (replans=%d, probe traffic %.1f MB)", v.Replans, v.RegaugeBytes/1e6)
		}
		b.WriteByte('\n')
	}
	if len(r.Variants) >= 2 {
		base := r.Variants[1] // the oversubscribed / static deployment
		for _, v := range r.Variants[2:] {
			fmt.Fprintf(&b, "%s makespan %+.1f%% vs %s\n", v.Name, -pct(base.MakespanS, v.MakespanS), base.Name)
		}
	}
	return b.String()
}

// multijobSpec is one job of the set.
type multijobSpec struct {
	name     string
	job      spark.Job
	delayS   float64
	priority float64
}

// multijobJobs builds the shared job mix for a cluster of n DCs:
// a heavy TeraSort entering first and two TPC-DS queries behind it,
// the lightest with the highest priority (the priority variant shows
// it cutting ahead).
func multijobJobs(n int, scale float64) ([]multijobSpec, error) {
	q78, err := workloads.TPCDS(78, workloads.UniformInput(n, 200e9*scale))
	if err != nil {
		return nil, err
	}
	q95, err := workloads.TPCDS(95, workloads.UniformInput(n, 160e9*scale))
	if err != nil {
		return nil, err
	}
	return []multijobSpec{
		{name: "terasort", job: workloads.TeraSort(workloads.UniformInput(n, 300e9*scale)), delayS: 0, priority: 1},
		{name: "tpcds-78", job: q78, delayS: 30, priority: 1},
		{name: "tpcds-95", job: q95, delayS: 60, priority: 4},
	}, nil
}

// runMultijobSolo runs each job alone on a fresh, identically-seeded
// cluster — the zero-contention floor.
func runMultijobSolo(p Params, mk func() (substrate.Cluster, error), startAt float64, specs []multijobSpec) (MultijobVariant, error) {
	model, err := sharedModel(p)
	if err != nil {
		return MultijobVariant{}, err
	}
	v := MultijobVariant{Name: "solo"}
	for _, spec := range specs {
		sim, err := mk()
		if err != nil {
			return MultijobVariant{}, err
		}
		fw, err := wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: p.Seed,
			Agent: agent.Config{Throttle: true},
		}, model)
		if err != nil {
			return MultijobVariant{}, err
		}
		sim.RunUntil(startAt - 1)
		pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		res, err := eng.RunJob(spec.job, sched, policy)
		fw.StopAgents()
		if err != nil {
			return MultijobVariant{}, err
		}
		v.Rows = append(v.Rows, MultijobJobRow{
			Job: spec.name, JCTSeconds: res.JCTSeconds,
			MinBW: res.MinShuffleMbps, WANBytes: res.WANBytes,
		})
		if res.JCTSeconds > v.MakespanS {
			v.MakespanS = res.JCTSeconds // jobs run in separate universes: max, not sum
		}
	}
	return v, nil
}

// runMultijobVariant runs the whole set concurrently under one sharing
// policy (oversubscribed when whole is set), optionally with the
// shared re-gauging controller.
func runMultijobVariant(p Params, name string, mk func() (substrate.Cluster, error), startAt float64,
	specs []multijobSpec, share optimize.ShareMode, whole, regauge bool) (MultijobVariant, error) {
	model, err := sharedModel(p)
	if err != nil {
		return MultijobVariant{}, err
	}
	sim, err := mk()
	if err != nil {
		return MultijobVariant{}, err
	}
	cfg := wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: true},
	}
	if regauge {
		cfg.Runtime = rebalanceRuntime()
	}
	fw, err := wanify.New(cfg, model)
	if err != nil {
		return MultijobVariant{}, err
	}
	sim.RunUntil(startAt - 1)

	priorities := make([]float64, len(specs))
	for i, spec := range specs {
		priorities[i] = spec.priority
	}
	var js *spark.JobSet
	pred, policies, _, err := fw.EnableJobSet(wanify.JobSetOptions{
		Jobs:       len(specs),
		Share:      share,
		Priorities: priorities,
		Remaining: func() []float64 {
			if js == nil {
				// Deploy-time seed, before the runner exists: everything
				// is still remaining, so weigh by total input bytes.
				out := make([]float64, len(specs))
				for i, spec := range specs {
					out[i] = spec.job.TotalInputBytes()
				}
				return out
			}
			return js.RemainingBytes()
		},
		Oversubscribe: whole,
	})
	if err != nil {
		return MultijobVariant{}, err
	}
	defer fw.StopAgents()

	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	var runs []spark.JobRun
	for i, spec := range specs {
		runs = append(runs, spark.JobRun{
			Job:         spec.job,
			Sched:       gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: info},
			Policy:      policies[i],
			StartDelayS: spec.delayS,
		})
	}
	js, err = spark.NewJobSet(eng, runs)
	if err != nil {
		return MultijobVariant{}, err
	}
	res, err := js.Run()
	if err != nil {
		return MultijobVariant{}, err
	}
	v := MultijobVariant{Name: name, MakespanS: res.MakespanS}
	for i, r := range res.Results {
		v.Rows = append(v.Rows, MultijobJobRow{
			Job: specs[i].name, JCTSeconds: r.JCTSeconds,
			MinBW: r.MinShuffleMbps, WANBytes: r.WANBytes,
		})
	}
	if ctl := fw.Controller(); ctl != nil {
		v.Replans = ctl.Replans()
		v.RegaugeBytes = ctl.TotalCost().BytesTransferred
	}
	return v, nil
}

// Multijob is the netsim contention scenario: three staggered jobs on
// the 8-DC testbed under solo / oversubscribed / fair / priority /
// bytes-remaining deployments.
func Multijob(p Params) (*MultijobResult, error) {
	p = p.withDefaults()
	mk := func() (substrate.Cluster, error) {
		return netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, p.Seed)), nil
	}
	specs, err := multijobJobs(len(geo.Testbed()), p.Scale)
	if err != nil {
		return nil, err
	}
	res := &MultijobResult{
		Scenario: "netsim 8-DC testbed",
		Jobs:     "terasort + tpcds-78 (+30s) + tpcds-95 (+60s, priority 4)",
	}
	solo, err := runMultijobSolo(p, mk, queryStart, specs)
	if err != nil {
		return nil, err
	}
	res.Variants = append(res.Variants, solo)
	for _, variant := range []struct {
		name  string
		share optimize.ShareMode
		whole bool
	}{
		{"whole", optimize.ShareFair, true},
		{"fair", optimize.ShareFair, false},
		{"priority", optimize.SharePriority, false},
		{"remaining", optimize.ShareRemaining, false},
	} {
		v, err := runMultijobVariant(p, variant.name, mk, queryStart, specs, variant.share, variant.whole, false)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	return res, nil
}

// MultijobTrace is the cloud4 scenario: two concurrent jobs launched
// 40 s before the recorded congestion episode, fair-partitioned, with
// and without the shared re-gauging controller.
func MultijobTrace(p Params) (*MultijobResult, error) {
	p = p.withDefaults()
	const startAt = 560.0
	mk := func() (substrate.Cluster, error) {
		return tracesim.New(tracesim.Config{
			Trace: tracesim.Cloud4(),
			Spec:  substrate.T2Medium,
			Seed:  p.Seed,
		})
	}
	n := tracesim.Cloud4().N()
	q95, err := workloads.TPCDS(95, workloads.UniformInput(n, 160e9*p.Scale))
	if err != nil {
		return nil, err
	}
	specs := []multijobSpec{
		{name: "terasort", job: workloads.TeraSort(workloads.UniformInput(n, 240e9*p.Scale)), delayS: 0, priority: 1},
		{name: "tpcds-95", job: q95, delayS: 20, priority: 1},
	}
	res := &MultijobResult{
		Scenario: "trace:cloud4 4-DC replay",
		Jobs:     "terasort + tpcds-95 (+20s), recorded congestion episode at t=[600, 900]s",
	}
	solo, err := runMultijobSolo(p, mk, startAt, specs)
	if err != nil {
		return nil, err
	}
	res.Variants = append(res.Variants, solo)
	for _, variant := range []struct {
		name    string
		regauge bool
	}{
		{"static", false},
		{"regauge", true},
	} {
		v, err := runMultijobVariant(p, variant.name, mk, startAt, specs, optimize.ShareFair, false, variant.regauge)
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	return res, nil
}
