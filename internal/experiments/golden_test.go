package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// goldenScale keeps the golden suite fast while exercising every driver
// end to end (the same reduced scale the benchmarks use).
const goldenScale = 0.1

// separateGolden lists experiments locked by their own golden files
// (TestGoldenMultijobOutputs) instead of the concatenated per-seed
// files: drivers added after the per-seed files were captured stay out
// of renderAll so the pre-existing goldens remain byte-identical.
var separateGolden = map[string]bool{
	"multijob":       true,
	"multijob-trace": true,
	"failover":       true,
	"chaos":          true,
	"fleet":          true,
	"serve":          true,
	"pareto":         true,
	"degrade":        true,
}

// renderAll runs every registered experiment at the given seed and
// concatenates the rendered results in registry order.
func renderAll(t *testing.T, seed uint64) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range IDs() {
		if separateGolden[id] {
			continue
		}
		res, err := Registry[id](Params{Seed: seed, Scale: goldenScale})
		if err != nil {
			t.Fatalf("%s (seed %d): %v", id, seed, err)
		}
		fmt.Fprintf(&sb, "=== %s ===\n%s\n", id, res)
	}
	return sb.String()
}

// TestGoldenOutputs locks the rendered output of the full experiment
// suite for seeds 1-3. The files under testdata/ were captured from the
// original from-scratch allocator; the incremental allocator must
// reproduce them byte for byte (regenerate deliberately with
// `go test -run TestGoldenOutputs -update`).
func TestGoldenOutputs(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			got := renderAll(t, seed)
			path := filepath.Join("testdata", fmt.Sprintf("golden_seed%d.txt", seed))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				dumpGoldenDiff(t, filepath.Base(path), got, string(want))
				t.Errorf("seed %d output diverged from golden file %s;\nfirst divergence near byte %d",
					seed, path, firstDiff(got, string(want)))
			}
		})
	}
}

// dumpGoldenDiff writes the got and want sides of a golden mismatch
// into $WANIFY_GOLDEN_DIFF_DIR (when set) so CI can upload them as
// workflow artifacts and a failure is debuggable without a local
// reproduction.
func dumpGoldenDiff(t *testing.T, name, got, want string) {
	t.Helper()
	dir := os.Getenv("WANIFY_GOLDEN_DIFF_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("golden-diff dir: %v", err)
		return
	}
	for _, f := range []struct{ prefix, content string }{
		{"got_", got},
		{"want_", want},
	} {
		p := filepath.Join(dir, f.prefix+name)
		if err := os.WriteFile(p, []byte(f.content), 0o644); err != nil {
			t.Logf("golden-diff dump: %v", err)
			return
		}
	}
	t.Logf("golden got/want dumped to %s for artifact upload", dir)
}

// TestGoldenTraceOutputs locks the trace-backend scenarios: every
// trace-capable driver runs end-to-end on the bundled diurnal8 replay
// (seed 1) and must reproduce its own golden file byte for byte — the
// backend-equivalence counterpart of TestGoldenOutputs.
func TestGoldenTraceOutputs(t *testing.T) {
	backend, err := ParseBackend("trace:diurnal8")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, id := range IDs() {
		if !SupportsBackend(id, backend) {
			continue
		}
		res, err := Registry[id](Params{Seed: 1, Scale: goldenScale, Backend: backend})
		if err != nil {
			t.Fatalf("%s on %s: %v", id, backend, err)
		}
		fmt.Fprintf(&sb, "=== %s ===\n%s\n", Scenario{ID: id, Backend: backend}.Name(), res)
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden_trace_diurnal8_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("trace-backend output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenMultijobOutputs locks the multi-job drivers on their
// respective backends (multijob on netsim, multijob-trace on the
// bundled cloud4 replay) byte for byte, in their own golden file so
// the pre-existing per-seed goldens stay untouched. Regenerate
// deliberately with `go test -run TestGoldenMultijobOutputs -update`.
func TestGoldenMultijobOutputs(t *testing.T) {
	var sb strings.Builder
	for _, id := range []string{"multijob", "multijob-trace"} {
		res, err := Registry[id](Params{Seed: 1, Scale: goldenScale})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(&sb, "=== %s ===\n%s\n", id, res)
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden_multijob_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("multijob output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenFaultOutputs locks the fault-injection drivers (failover,
// chaos) byte for byte in their own golden file, keeping the
// pre-existing per-seed goldens untouched. Regenerate deliberately
// with `go test -run TestGoldenFaultOutputs -update`.
func TestGoldenFaultOutputs(t *testing.T) {
	var sb strings.Builder
	for _, id := range []string{"failover", "chaos"} {
		res, err := Registry[id](Params{Seed: 1, Scale: goldenScale})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(&sb, "=== %s ===\n%s\n", id, res)
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden_faults_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("fault-driver output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenFleetOutputs locks the fleet-scale driver byte for byte in
// its own golden file: 100 DCs, staggered regional jobs, the sharded
// allocator decomposing the flow set into many bottleneck groups.
// Regenerate deliberately with `go test -run TestGoldenFleetOutputs
// -update`.
func TestGoldenFleetOutputs(t *testing.T) {
	res, err := Registry["fleet"](Params{Seed: 1, Scale: goldenScale})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	got := fmt.Sprintf("=== fleet ===\n%s\n", res)
	path := filepath.Join("testdata", "golden_fleet_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("fleet-driver output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenServeOutputs locks the control-plane load test byte for
// byte in its own golden file: 1100 scripted submissions through the
// Plane's admission machinery, with queue overflow, quota rejections,
// cancels, model refreshes, and the shared re-gauging controller all
// on one substrate timeline. Regenerate deliberately with
// `go test -run TestGoldenServeOutputs -update`.
func TestGoldenServeOutputs(t *testing.T) {
	res, err := Registry["serve"](Params{Seed: 1, Scale: goldenScale})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := fmt.Sprintf("=== serve ===\n%s\n", res)
	path := filepath.Join("testdata", "golden_serve_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("serve-driver output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenParetoOutputs locks the multi-objective scheduler sweep
// byte for byte in its own golden file: 13 descent objectives (classic
// schedulers, single-objective scorers, blend weights) each placing the
// same TeraSort on the 8-DC testbed, with the JCT-vs-$-vs-kgCO2
// frontier marked. Regenerate deliberately with
// `go test -run TestGoldenParetoOutputs -update`.
func TestGoldenParetoOutputs(t *testing.T) {
	res, err := Registry["pareto"](Params{Seed: 1, Scale: goldenScale})
	if err != nil {
		t.Fatalf("pareto: %v", err)
	}
	got := fmt.Sprintf("=== pareto ===\n%s\n", res)
	path := filepath.Join("testdata", "golden_pareto_seed1.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		dumpGoldenDiff(t, filepath.Base(path), got, string(want))
		t.Errorf("pareto-driver output diverged from golden file %s;\nfirst divergence near byte %d",
			path, firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
