package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// runWANifyQuery runs one TPC-DS query on a WAN-aware system with full
// WANify enabled (predicted BWs + agents). perturb optionally modifies
// the predicted matrix before use (Fig 8(b)'s WANify-err), and
// skewWeights feeds §3.3.1.
func runWANifyQuery(p Params, system string, query int, input []float64,
	perturb func(bwmatrix.Matrix) bwmatrix.Matrix,
	skewWeights []float64, throttle bool) (spark.RunResult, error) {

	model, err := sharedModel(p)
	if err != nil {
		return spark.RunResult{}, err
	}
	job, err := workloads.TPCDS(query, input)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim, err := testbedCluster(p, 8, p.Seed+uint64(query)*13)
	if err != nil {
		return spark.RunResult{}, err
	}
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: throttle},
	}, model)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim.RunUntil(queryStart - 1)
	pred, _ := fw.DetermineRuntimeBW()
	if perturb != nil {
		pred = perturb(pred)
	}
	plan := fw.Optimize(pred, wanify.OptimizeOptions{SkewWeights: skewWeights})
	fw.DeployAgents(pred, plan)
	defer fw.StopAgents()

	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	sched := schedFor(system, system+"(wanify)", pred, info)
	return eng.RunJob(job, sched, fw.ConnPolicy())
}

// runVanillaQuery runs one TPC-DS query on a WAN-aware system with
// static-independent beliefs and a single connection.
func runVanillaQuery(p Params, system string, query int, input []float64) (spark.RunResult, error) {
	model, err := sharedModel(p)
	if err != nil {
		return spark.RunResult{}, err
	}
	job, err := workloads.TPCDS(query, input)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim, err := testbedCluster(p, 8, p.Seed+uint64(query)*13)
	if err != nil {
		return spark.RunResult{}, err
	}
	believed, err := obtainBelief(sim, beliefStaticIndependent, model, p.Seed)
	if err != nil {
		return spark.RunResult{}, err
	}
	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	sched := schedFor(system, system+"(vanilla)", believed, info)
	return eng.RunJob(job, sched, spark.SingleConn{})
}

// --- Fig. 7: state-of-the-art systems with/without WANify ---

// Fig7Row is one query × system comparison.
type Fig7Row struct {
	System                  string
	Query                   int
	VanillaJCT, WANifyJCT   float64
	VanillaCost, WANifyCost float64
	MinBWRatio              float64
}

// Fig7Result holds the grid.
type Fig7Result struct {
	Rows    []Fig7Row
	InputGB float64
}

// Fig7 compares Tetrium and Kimchi on TPC-DS with and without WANify
// (predicted BWs + heterogeneous parallel connections + throttling).
func Fig7(p Params) (*Fig7Result, error) {
	p = p.withDefaults()
	input := workloads.UniformInput(8, 100e9*p.Scale)
	res := &Fig7Result{InputGB: 100 * p.Scale}
	for _, system := range []string{"tetrium", "kimchi"} {
		for _, q := range workloads.TPCDSQueries() {
			van, err := runVanillaQuery(p, system, q, input)
			if err != nil {
				return nil, err
			}
			wan, err := runWANifyQuery(p, system, q, input, nil, nil, true)
			if err != nil {
				return nil, err
			}
			row := Fig7Row{
				System: system, Query: q,
				VanillaJCT: van.JCTSeconds, WANifyJCT: wan.JCTSeconds,
				VanillaCost: van.Cost.Total(), WANifyCost: wan.Cost.Total(),
			}
			if van.MinShuffleMbps > 0 {
				row.MinBWRatio = wan.MinShuffleMbps / van.MinShuffleMbps
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// String renders Fig. 7's latency and cost panels.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: Tetrium/Kimchi on TPC-DS (%.0f GB) with and without WANify\n", r.InputGB)
	fmt.Fprintf(&b, "%-10s%-7s%14s%14s%10s%10s%12s%10s\n",
		"system", "query", "vanilla(s)", "wanify(s)", "gain(%)", "van($)", "wanify($)", "minBW x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s%-7d%14.1f%14.1f%10.1f%10.3f%12.3f%10.2f\n",
			row.System, row.Query, row.VanillaJCT, row.WANifyJCT,
			pct(row.VanillaJCT, row.WANifyJCT), row.VanillaCost, row.WANifyCost, row.MinBWRatio)
	}
	b.WriteString("(paper: latency up to 24% lower, cost up to 8% lower, 3.3x min BW)\n")
	return b.String()
}

// --- Fig. 8(a): ablation of global and local optimization ---

// Fig8aRow is one variant of the ablation.
type Fig8aRow struct {
	Variant    string
	System     string
	JCT        float64
	GainPct    float64 // vs vanilla
	MinBWRatio float64 // vs vanilla
}

// Fig8aResult is the §5.5 ablation on query 78.
type Fig8aResult struct{ Rows []Fig8aRow }

// Fig8a runs query 78 under Vanilla / Global-only / Local-only / full
// WANify for both systems.
func Fig8a(p Params) (*Fig8aResult, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	input := workloads.UniformInput(8, 100e9*p.Scale)
	const query = 78
	res := &Fig8aResult{}

	for _, system := range []string{"tetrium", "kimchi"} {
		van, err := runVanillaQuery(p, system, query, input)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig8aRow{Variant: "vanilla", System: system, JCT: van.JCTSeconds, MinBWRatio: 1})

		type variantRun struct {
			name string
			run  func() (spark.RunResult, error)
		}
		variants := []variantRun{
			{"global-only", func() (spark.RunResult, error) {
				return runGlobalOnly(p, model, system, query, input)
			}},
			{"local-only", func() (spark.RunResult, error) {
				return runLocalOnly(p, model, system, query, input)
			}},
			{"wanify", func() (spark.RunResult, error) {
				return runWANifyQuery(p, system, query, input, nil, nil, true)
			}},
		}
		for _, v := range variants {
			run, err := v.run()
			if err != nil {
				return nil, fmt.Errorf("fig8a %s/%s: %w", system, v.name, err)
			}
			row := Fig8aRow{Variant: v.name, System: system, JCT: run.JCTSeconds,
				GainPct: pct(van.JCTSeconds, run.JCTSeconds)}
			if van.MinShuffleMbps > 0 {
				row.MinBWRatio = run.MinShuffleMbps / van.MinShuffleMbps
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// runGlobalOnly applies the global optimizer's heterogeneous solution
// as a static connection matrix (no agents, no AIMD, no throttling).
func runGlobalOnly(p Params, model *predict.Model, system string, query int, input []float64) (spark.RunResult, error) {
	job, err := workloads.TPCDS(query, input)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim, err := testbedCluster(p, 8, p.Seed+uint64(query)*13)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim.RunUntil(queryStart - 1)
	pred, err := predictOn(sim, model, p.Seed)
	if err != nil {
		return spark.RunResult{}, err
	}
	plan := optimize.GlobalOptimize(pred, optimize.Options{})
	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	sched := schedFor(system, system+"(global-only)", pred, info)
	return eng.RunJob(job, sched, spark.FixedConn{Cluster: sim, Matrix: plan.MaxConns})
}

// runLocalOnly runs agents with the §5.5 static window (1–8 connections
// for every pair) and no global closeness inference.
func runLocalOnly(p Params, model *predict.Model, system string, query int, input []float64) (spark.RunResult, error) {
	job, err := workloads.TPCDS(query, input)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim, err := testbedCluster(p, 8, p.Seed+uint64(query)*13)
	if err != nil {
		return spark.RunResult{}, err
	}
	sim.RunUntil(queryStart - 1)
	pred, err := predictOn(sim, model, p.Seed)
	if err != nil {
		return spark.RunResult{}, err
	}
	n := sim.NumDCs()
	var agents []*agent.Agent
	for dc := 0; dc < n; dc++ {
		for _, vm := range sim.VMsOfDC(dc) {
			row := agent.PlanRow{
				MinConns: make([]int, n), MaxConns: make([]int, n),
				MinBW: make([]float64, n), MaxBW: make([]float64, n),
				PredBW: make([]float64, n),
			}
			for j := 0; j < n; j++ {
				row.MinConns[j], row.MaxConns[j] = 1, 8
				if j != dc {
					row.PredBW[j] = pred[dc][j]
					row.MinBW[j] = pred[dc][j]
					row.MaxBW[j] = pred[dc][j] * 8
				}
			}
			a := agent.New(sim, vm, agent.Config{})
			a.ApplyPlan(row)
			a.Start()
			agents = append(agents, a)
		}
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()
	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	sched := schedFor(system, system+"(local-only)", pred, info)
	return eng.RunJob(job, sched, spark.NewAgentConn(agents))
}

// String renders the ablation.
func (r *Fig8aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 8(a): ablation on TPC-DS query 78\n")
	fmt.Fprintf(&b, "%-14s%-10s%12s%10s%10s\n", "variant", "system", "JCT(s)", "gain(%)", "minBW x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s%-10s%12.1f%10.1f%10.2f\n", row.Variant, row.System, row.JCT, row.GainPct, row.MinBWRatio)
	}
	b.WriteString("(paper: global-only ~16%, local-only ~11%, full WANify ~23% latency gain)\n")
	return b.String()
}

// --- Fig. 8(b): impact of prediction error ---

// Fig8bResult compares WANify with WANify-err (±100 Mbps random error
// injected into predictions).
type Fig8bResult struct {
	System                string
	WANifyJCT, ErrJCT     float64
	WANifyCost, ErrCost   float64
	WANifyMinBW, ErrMinBW float64
}

// Fig8b injects significant (±100 Mbps) random errors into the
// predicted BWs and measures the damage on query 78.
func Fig8b(p Params) (*Fig8bResult, error) {
	p = p.withDefaults()
	input := workloads.UniformInput(8, 100e9*p.Scale)
	const query = 78

	good, err := runWANifyQuery(p, "tetrium", query, input, nil, nil, true)
	if err != nil {
		return nil, err
	}
	rng := simrand.Derive(p.Seed, "fig8b-error")
	perturb := func(m bwmatrix.Matrix) bwmatrix.Matrix {
		out := m.Clone()
		for i := range out {
			for j := range out[i] {
				if i == j {
					continue
				}
				if rng.Bool(0.5) {
					out[i][j] += 100
				} else {
					out[i][j] -= 100
					if out[i][j] < 10 {
						out[i][j] = 10
					}
				}
			}
		}
		return out
	}
	bad, err := runWANifyQuery(p, "tetrium", query, input, perturb, nil, true)
	if err != nil {
		return nil, err
	}
	return &Fig8bResult{
		System:    "tetrium",
		WANifyJCT: good.JCTSeconds, ErrJCT: bad.JCTSeconds,
		WANifyCost: good.Cost.Total(), ErrCost: bad.Cost.Total(),
		WANifyMinBW: good.MinShuffleMbps, ErrMinBW: bad.MinShuffleMbps,
	}, nil
}

// String renders the comparison.
func (r *Fig8bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 8(b): impact of ±100 Mbps prediction error (query 78)\n")
	fmt.Fprintf(&b, "%-12s%12s%12s%14s\n", "variant", "JCT(s)", "cost($)", "min BW(Mbps)")
	fmt.Fprintf(&b, "%-12s%12.1f%12.3f%14.0f\n", "wanify", r.WANifyJCT, r.WANifyCost, r.WANifyMinBW)
	fmt.Fprintf(&b, "%-12s%12.1f%12.3f%14.0f\n", "wanify-err", r.ErrJCT, r.ErrCost, r.ErrMinBW)
	fmt.Fprintf(&b, "latency +%.1f%%, cost +%.1f%%, min BW %.0f%% of accurate (paper: +18%% latency, +5%% cost, -38%% min BW)\n",
		-pct(r.WANifyJCT, r.ErrJCT), -pct(r.WANifyCost, r.ErrCost), 100*r.ErrMinBW/nonZero(r.WANifyMinBW))
	return b.String()
}

// --- shared helper: predict on a live sim ---

// predictOn snapshots the sim and predicts the runtime BW matrix.
func predictOn(sim substrate.Cluster, model *predict.Model, seed uint64) (bwmatrix.Matrix, error) {
	feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(seed, "ablation-snapshot"))
	return model.PredictMatrix(feats), nil
}
