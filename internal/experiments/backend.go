package experiments

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/tracesim"
)

// Backend selects the WAN substrate experiment drivers run on. The
// zero value is the netsim simulator, so existing Params literals keep
// their meaning (and the netsim golden outputs their bytes). A trace
// backend replays a recorded per-pair bandwidth timeseries instead of
// the synthetic weather, turning every figure/table into a family of
// scenarios: the same driver logic under different network histories.
type Backend struct {
	// Trace, when non-nil, replays this recording via tracesim; nil
	// selects netsim.
	Trace *tracesim.Trace
}

// ParseBackend resolves a -backend flag value:
//
//	netsim           the simulator (default)
//	trace            the bundled diurnal8 trace
//	trace:<name>     a bundled trace (diurnal8, cloud4)
//	trace:<path>     a trace file (.json or .csv)
func ParseBackend(s string) (Backend, error) {
	switch {
	case s == "" || s == "netsim":
		return Backend{}, nil
	case s == "trace":
		return Backend{Trace: tracesim.Diurnal8()}, nil
	case strings.HasPrefix(s, "trace:"):
		ref := strings.TrimPrefix(s, "trace:")
		if tr, err := tracesim.Bundled(ref); err == nil {
			return Backend{Trace: tr}, nil
		}
		tr, err := tracesim.Load(ref)
		if err != nil {
			return Backend{}, err
		}
		return Backend{Trace: tr}, nil
	default:
		return Backend{}, fmt.Errorf("experiments: unknown backend %q (want netsim, trace, or trace:<name|file>)", s)
	}
}

// String renders the backend for scenario labels and reports.
func (b Backend) String() string {
	if b.Trace == nil {
		return "netsim"
	}
	return "trace:" + b.Trace.Name
}

// NewTestbed builds the standard n-DC worker cluster (one t2.medium
// per DC) on this backend. On netsim that is the canonical testbed
// subset; on a trace backend the trace's first n regions, so drivers
// that sweep cluster sizes replay consistently.
func (b Backend) NewTestbed(n int, seed uint64) (substrate.Cluster, error) {
	if b.Trace == nil {
		return netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)), nil
	}
	sub, err := b.Trace.Subset(n)
	if err != nil {
		return nil, err
	}
	return tracesim.New(tracesim.Config{Trace: sub, Spec: substrate.T2Medium, Seed: seed})
}

// NumDCs returns the backend's natural cluster size: the full testbed
// on netsim, the recorded region count on a trace.
func (b Backend) NumDCs() int {
	if b.Trace == nil {
		return len(geo.Testbed())
	}
	return b.Trace.N()
}

// testbedCluster builds the n-DC worker cluster on p's backend.
func testbedCluster(p Params, n int, seed uint64) (substrate.Cluster, error) {
	return p.Backend.NewTestbed(n, seed)
}

// netsimOnly lists experiments pinned to the simulator backend: they
// construct bespoke topologies or sweep simulator physics that a
// recorded trace cannot express (custom VM mixes, provider swaps,
// design-knob ablations, or no cluster at all).
var netsimOnly = map[string]bool{
	"fig2":            true, // bespoke 3-DC t3.nano probing cluster
	"table2":          true, // pure cost-model arithmetic, no cluster
	"fig11b":          true, // non-uniform VM counts per DC
	"sec583":          true, // extra US East worker
	"multicloud":      true, // AWS+GCP VM mix with provider rvec
	"ablation-model":  true, // offline dataset generation only
	"ablation-netsim": true, // sweeps netsim physics knobs
	"rebalance":       true, // injects a netsim cap-cut episode
	"rebalance-trace": true, // pinned to the bundled cloud4 replay
	"multijob":        true, // netsim contention scenario (bespoke episode-free testbed mix)
	"multijob-trace":  true, // pinned to the bundled cloud4 replay
	"failover":        true, // injects a netsim DC-death fault schedule
	"chaos":           true, // bespoke 6x2 cluster with randomized netsim faults
	"fleet":           true, // synthetic 100-DC fleet topology (geo.Fleet)
	"serve":           true, // control-plane load test (scripted netsim arrivals)
	"pareto":          true, // oracle beliefs read netsim's true per-connection caps
	"degrade":         true, // fault schedule cut against the netsim testbed's re-gauge window
}

// SupportsBackend reports whether an experiment can run on b. The
// standard drivers reproduce the paper's 8-DC testbed, so a trace must
// record at least 8 regions to back them (smaller traces still drive
// wanify-sim, which sizes the job to the backend).
func SupportsBackend(id string, b Backend) bool {
	if b.Trace == nil {
		return true
	}
	return !netsimOnly[id] && b.Trace.N() >= 8
}

// Scenario pairs an experiment with the backend it runs on.
type Scenario struct {
	ID      string
	Backend Backend
}

// Name labels the scenario: the bare experiment id on netsim (keeping
// historical report ids stable), id@backend otherwise.
func (s Scenario) Name() string {
	if s.Backend.Trace == nil {
		return s.ID
	}
	return s.ID + "@" + s.Backend.String()
}

// Scenarios expands experiment ids over backends, dropping pairs the
// experiment does not support. The order is backends-major, matching
// how reports group runs.
func Scenarios(ids []string, backends []Backend) []Scenario {
	var out []Scenario
	for _, b := range backends {
		for _, id := range ids {
			if SupportsBackend(id, b) {
				out = append(out, Scenario{ID: id, Backend: b})
			}
		}
	}
	return out
}
