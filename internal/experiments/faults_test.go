package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFailoverRecovers locks the failover contract across seeds: the
// no-recovery baseline fails the job when a DC dies mid-run, while the
// recovery stack completes it, accounts the voided bytes and re-routes
// exactly that much.
func TestFailoverRecovers(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Failover(Params{Seed: seed, Scale: goldenScale})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 2 {
				t.Fatalf("failover produced %d rows, want 2", len(res.Rows))
			}
			base, rec := res.Rows[0], res.Rows[1]
			if base.Completed {
				t.Errorf("no-recovery baseline survived the DC death (JCT %.1fs)", base.JCTSeconds)
			}
			if base.Err == "" {
				t.Errorf("no-recovery baseline reported no failure")
			}
			if !rec.Completed {
				t.Fatalf("recovery variant failed: %s", rec.Err)
			}
			if rec.JCTSeconds <= 0 {
				t.Errorf("recovery JCT = %.1f, want > 0", rec.JCTSeconds)
			}
			if rec.LostBytes <= 0 {
				t.Errorf("DC death voided no bytes (lost=%.0f)", rec.LostBytes)
			}
			tol := 64 + 1e-6*rec.WANBytes
			if math.Abs(rec.RecoveredB-rec.LostBytes) > tol {
				t.Errorf("recovery moved %.0f bytes for %.0f lost", rec.RecoveredB, rec.LostBytes)
			}
			if rec.Replans < 1 {
				t.Errorf("controller never replanned around the dead DC")
			}
		})
	}
}

// TestChaosSoak is the randomized-fault soak: >= 20 seeded schedules,
// each of which must terminate with every conservation invariant
// intact, and reproduce byte-identically when re-run. A failing
// schedule is dumped as JSON into $WANIFY_CHAOS_DIR so CI can upload
// it as a repro artifact.
func TestChaosSoak(t *testing.T) {
	const seeds = 24
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			out := ChaosRun(seed, goldenScale)
			if !out.Completed {
				dumpChaosSchedule(t, out)
				t.Fatalf("schedule did not complete: %s\nfaults: %s", out.Err, out.Schedule)
			}
			if len(out.Violations) > 0 {
				dumpChaosSchedule(t, out)
				t.Fatalf("invariants violated: %v\nfaults: %s", out.Violations, out.Schedule)
			}
			// Determinism: the same seed reproduces the identical run.
			if seed%8 == 0 {
				again := ChaosRun(seed, goldenScale)
				if !reflect.DeepEqual(out, again) {
					dumpChaosSchedule(t, out)
					t.Errorf("seed %d is not deterministic:\n%v\n%v", seed, out, again)
				}
			}
		})
	}
}

// dumpChaosSchedule writes the failing schedule (JSON) into
// $WANIFY_CHAOS_DIR when set, so the exact fault sequence travels with
// the CI failure.
func dumpChaosSchedule(t *testing.T, out ChaosOutcome) {
	t.Helper()
	dir := os.Getenv("WANIFY_CHAOS_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos dump dir: %v", err)
		return
	}
	blob, err := json.MarshalIndent(map[string]any{
		"schedSeed":  out.SchedSeed,
		"schedule":   out.Schedule,
		"err":        out.Err,
		"violations": out.Violations,
	}, "", "  ")
	if err != nil {
		t.Logf("chaos dump marshal: %v", err)
		return
	}
	p := filepath.Join(dir, fmt.Sprintf("chaos_seed%d.json", out.SchedSeed))
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Logf("chaos dump write: %v", err)
		return
	}
	t.Logf("failing fault schedule dumped to %s", p)
}
