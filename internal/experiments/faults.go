package experiments

import (
	"fmt"
	"math"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// --- failover / chaos: fault injection and recovery ---
//
// The paper's testbed never loses a machine, but a geo-distributed
// deployment does: spot reclaims, AZ incidents, inter-region
// partitions. These two drivers measure the fault model the substrate
// contract now carries (substrate.FaultSchedule) against the recovery
// machinery built above it:
//
//   - failover kills every VM of one DC mid-shuffle and compares the
//     full recovery stack (spark re-replication + controller
//     evacuation replan) against the no-recovery baseline, which
//     loses the in-flight bytes and fails the job.
//   - chaos soaks the engine under randomized-but-seeded fault
//     schedules (VM kills, a DC partition, connection resets) and
//     checks the conservation invariants hold on every one: no byte
//     silently vanishes, recovery re-routes exactly what was lost,
//     and the job's output volume is conserved.

func init() {
	Registry["failover"] = func(p Params) (Result, error) { return Failover(p) }
	Registry["chaos"] = func(p Params) (Result, error) { return Chaos(p) }
}

// failoverVictimDC is the data center failover kills. DC 2 holds an
// even share of the uniform input, so its death voids both in-flight
// transfers and resident stage outputs.
const failoverVictimDC = 2

// FailoverVariant is one compared execution of the failover scenario.
type FailoverVariant struct {
	Variant    string // norecovery | recovery
	Completed  bool
	Err        string // the failure the norecovery baseline reports
	JCTSeconds float64
	WANBytes   float64
	LostBytes  float64
	RecoveredB float64
	Recoveries int
	Replans    int
	Events     []string
}

// FailoverResult compares recovery on vs off under one DC death.
type FailoverResult struct {
	Scenario string
	Fault    string
	Rows     []FailoverVariant
}

// String renders the comparison.
func (r *FailoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DC failover on %s (%s)\n", r.Scenario, r.Fault)
	fmt.Fprintf(&b, "%-12s%-10s%10s%10s%10s%10s%7s%9s\n",
		"variant", "outcome", "JCT(s)", "WAN(GB)", "lost(GB)", "rcov(GB)", "waves", "replans")
	for _, row := range r.Rows {
		outcome := "ok"
		if !row.Completed {
			outcome = "FAILED"
		}
		fmt.Fprintf(&b, "%-12s%-10s%10.1f%10.2f%10.2f%10.2f%7d%9d\n",
			row.Variant, outcome, row.JCTSeconds, row.WANBytes/1e9,
			row.LostBytes/1e9, row.RecoveredB/1e9, row.Recoveries, row.Replans)
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			fmt.Fprintf(&b, "  %s: %s\n", row.Variant, row.Err)
		}
		for _, ev := range row.Events {
			fmt.Fprintf(&b, "  %s replan %s\n", row.Variant, ev)
		}
	}
	return b.String()
}

// runFailoverVariant executes the TeraSort under the DC-death schedule,
// with or without the recovery stack (spark recovery + the evacuation-
// capable re-gauging controller).
func runFailoverVariant(p Params, recover bool) (FailoverVariant, error) {
	model, err := sharedModel(p)
	if err != nil {
		return FailoverVariant{}, err
	}
	sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, p.Seed))
	var schedule substrate.FaultSchedule
	for _, vm := range sim.VMsOfDC(failoverVictimDC) {
		schedule = append(schedule, substrate.Fault{
			Kind: substrate.FaultKillVM, VM: vm, At: queryStart + 60,
		})
	}
	schedule.Apply(sim)

	cfg := wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: true},
	}
	if recover {
		cfg.Runtime = rebalanceRuntime()
	}
	fw, err := wanify.New(cfg, model)
	if err != nil {
		return FailoverVariant{}, err
	}
	sim.RunUntil(queryStart - 1)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()

	job := workloads.TeraSort(workloads.UniformInput(sim.NumDCs(), 1000e9*p.Scale))
	eng := spark.NewEngine(sim, rates)
	if recover {
		eng.Recovery = spark.RecoveryConfig{Enabled: true}
	}
	sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
	name := "norecovery"
	if recover {
		name = "recovery"
	}
	res, err := eng.RunJob(job, sched, policy)
	if err != nil {
		// The baseline's expected fate: the fault error is the result.
		return FailoverVariant{Variant: name, Err: err.Error()}, nil
	}
	v := FailoverVariant{
		Variant: name, Completed: true,
		JCTSeconds: res.JCTSeconds, WANBytes: res.WANBytes,
		LostBytes: res.LostBytes, RecoveredB: res.RecoveredBytes,
		Recoveries: res.Recoveries,
	}
	if ctl := fw.Controller(); ctl != nil {
		v.Replans = ctl.Replans()
		for _, ev := range ctl.Events() {
			v.Events = append(v.Events, ev.String())
		}
	}
	return v, nil
}

// Failover is the DC-death scenario: a TeraSort on the 8-DC testbed
// loses all of DC 2 sixty seconds into its shuffle.
func Failover(p Params) (*FailoverResult, error) {
	p = p.withDefaults()
	res := &FailoverResult{
		Scenario: "netsim 8-DC testbed",
		Fault:    fmt.Sprintf("all VMs of dc%d killed at t=%.0fs, job at t=%.0fs", failoverVictimDC, queryStart+60, queryStart),
	}
	for _, recover := range []bool{false, true} {
		row, err := runFailoverVariant(p, recover)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// --- chaos ---

// chaos cluster shape: 6 DCs x 2 VMs, so a single VM kill and a whole-
// DC death are distinct fault classes.
const (
	chaosDCs      = 6
	chaosVMsPerDC = 2
	chaosStart    = 50.0
)

// ChaosOutcome is one soak run under one generated fault schedule.
type ChaosOutcome struct {
	SchedSeed  uint64
	Schedule   substrate.FaultSchedule
	Completed  bool
	Err        string
	JCTSeconds float64
	WANBytes   float64
	DeliveredB float64
	LostBytes  float64
	RecoveredB float64
	RecomputeS float64
	OutputB    float64
	Recoveries int
	// Violations lists the conservation invariants the run broke
	// (empty = the run passed).
	Violations []string
}

// String renders one soak row plus its schedule.
func (o ChaosOutcome) String() string {
	var b strings.Builder
	outcome := "ok"
	if !o.Completed {
		outcome = "FAILED"
	}
	status := "pass"
	if len(o.Violations) > 0 {
		status = "VIOLATED " + strings.Join(o.Violations, ",")
	}
	fmt.Fprintf(&b, "seed=%-6d %-7s JCT=%8.1fs WAN=%7.2fGB lost=%6.2fGB rcov=%6.2fGB waves=%d %s\n",
		o.SchedSeed, outcome, o.JCTSeconds, o.WANBytes/1e9, o.LostBytes/1e9, o.RecoveredB/1e9, o.Recoveries, status)
	fmt.Fprintf(&b, "  faults: %s", o.Schedule)
	if o.Err != "" {
		fmt.Fprintf(&b, "\n  error: %s", o.Err)
	}
	return b.String()
}

// ChaosResult is the rendered soak table.
type ChaosResult struct {
	Scenario string
	Rows     []ChaosOutcome
}

// String renders the soak report.
func (r *ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak on %s\n", r.Scenario)
	passed := 0
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
		if row.Completed && len(row.Violations) == 0 {
			passed++
		}
	}
	fmt.Fprintf(&b, "%d/%d schedules completed with all invariants intact\n", passed, len(r.Rows))
	return b.String()
}

// chaosSchedule draws a bounded randomized fault schedule: 1-3 VM
// kills, at most one DC partition and up to three connection resets,
// all inside the job's early window. The draw order is fixed, so a
// schedule is fully determined by its seed.
func chaosSchedule(rng *simrand.Source, sim *netsim.Sim) substrate.FaultSchedule {
	var s substrate.FaultSchedule
	var vms []substrate.VMID
	for dc := 0; dc < sim.NumDCs(); dc++ {
		vms = append(vms, sim.VMsOfDC(dc)...)
	}
	kills := 1 + rng.IntN(3)
	for _, idx := range rng.Perm(len(vms))[:kills] {
		s = append(s, substrate.Fault{
			Kind: substrate.FaultKillVM, VM: vms[idx],
			At: chaosStart + rng.Uniform(5, 90),
		})
	}
	if rng.Bool(0.5) {
		at := chaosStart + rng.Uniform(5, 60)
		s = append(s, substrate.Fault{
			Kind: substrate.FaultPartitionDC, DC: rng.IntN(sim.NumDCs()),
			At: at, Until: at + rng.Uniform(15, 45),
		})
	}
	resets := rng.IntN(4)
	for i := 0; i < resets; i++ {
		src := rng.IntN(sim.NumDCs())
		dst := (src + 1 + rng.IntN(sim.NumDCs()-1)) % sim.NumDCs()
		s = append(s, substrate.Fault{
			Kind: substrate.FaultResetPair, SrcDC: src, DstDC: dst,
			At: chaosStart + rng.Uniform(5, 90),
		})
	}
	return s
}

// oracleBelief builds a scheduler belief from the simulator's actual
// single-connection caps — no model, so a soak run costs no training.
func oracleBelief(sim *netsim.Sim) bwmatrix.Matrix {
	n := sim.NumDCs()
	out := bwmatrix.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out[i][j] = sim.PerConnCapMbps(i, j)
			}
		}
	}
	return out
}

// ChaosRun executes one soak: generate the schedule for schedSeed,
// run a TeraSort with recovery enabled underneath it, and check the
// conservation invariants. The whole run — cluster weather, schedule
// and recovery decisions — is deterministic in (schedSeed, scale).
func ChaosRun(schedSeed uint64, scale float64) ChaosOutcome {
	rng := simrand.Derive(schedSeed, "chaos-schedule")
	cfg := netsim.UniformCluster(geo.TestbedSubset(chaosDCs), substrate.T2Medium, schedSeed)
	for i := range cfg.VMs {
		for len(cfg.VMs[i]) < chaosVMsPerDC {
			cfg.VMs[i] = append(cfg.VMs[i], substrate.T2Medium)
		}
	}
	sim := netsim.NewSim(cfg)
	schedule := chaosSchedule(rng, sim)
	schedule.Apply(sim)
	sim.RunUntil(chaosStart)

	const totalBytes = 240e9
	job := workloads.TeraSort(workloads.UniformInput(chaosDCs, totalBytes*scale))
	eng := spark.NewEngine(sim, rates)
	eng.Recovery = spark.RecoveryConfig{Enabled: true}
	sched := gda.Tetrium{Label: "tetrium(oracle)", Believed: oracleBelief(sim), Info: gda.NewClusterInfo(sim, rates)}
	res, err := eng.RunJob(job, sched, spark.UniformConn{K: 4})

	out := ChaosOutcome{SchedSeed: schedSeed, Schedule: schedule}
	if err != nil {
		out.Err = err.Error()
		if sim.ActiveFlows() != 0 {
			out.Violations = append(out.Violations, "flow-leak")
		}
		return out
	}
	out.Completed = true
	out.JCTSeconds = res.JCTSeconds
	out.WANBytes = res.WANBytes
	out.LostBytes = res.LostBytes
	out.RecoveredB = res.RecoveredBytes
	out.RecomputeS = res.RecomputeS
	out.OutputB = res.OutputBytes
	out.Recoveries = res.Recoveries
	for _, st := range res.Stages {
		out.DeliveredB += st.DeliveredBytes
	}
	out.Violations = chaosViolations(sim, out, job)
	return out
}

// chaosViolations checks the soak invariants on a completed run:
//
//   - lost-accounting: every launched byte is either delivered or
//     counted lost — nothing vanishes silently.
//   - recovery-balance: recovery re-routes (or re-executes) exactly
//     the bytes the faults voided.
//   - output-conservation: the job's final resident volume equals
//     input x the product of stage selectivities, faults or not.
//   - flow-leak: the substrate is quiet after the job returns.
func chaosViolations(sim *netsim.Sim, o ChaosOutcome, job spark.Job) []string {
	var v []string
	tol := 64 + 1e-6*o.WANBytes
	if o.LostBytes < o.WANBytes-o.DeliveredB-tol {
		v = append(v, "lost-accounting")
	}
	if math.Abs(o.RecoveredB-o.LostBytes) > tol {
		v = append(v, "recovery-balance")
	}
	want := job.TotalInputBytes()
	for _, st := range job.Stages {
		want *= st.Selectivity
	}
	if math.Abs(o.OutputB-want) > 1e-6*want+1 {
		v = append(v, "output-conservation")
	}
	if sim.ActiveFlows() != 0 {
		v = append(v, "flow-leak")
	}
	return v
}

// Chaos renders a small soak (five schedules derived from the params
// seed); the full-width soak lives in TestChaosSoak.
func Chaos(p Params) (*ChaosResult, error) {
	p = p.withDefaults()
	res := &ChaosResult{
		Scenario: fmt.Sprintf("netsim %d-DC x %d-VM cluster, terasort with recovery enabled", chaosDCs, chaosVMsPerDC),
	}
	for i := uint64(0); i < 5; i++ {
		res.Rows = append(res.Rows, ChaosRun(p.Seed*1000+i, p.Scale))
	}
	return res, nil
}
